// Package twochains_test hosts the testing.B entry points that regenerate
// the paper's evaluation: one benchmark per figure (Fig. 5-14 plus the
// §VII-A convergence observation), each running a representative point of
// the corresponding sweep and reporting the figure's headline metric, and
// a set of micro-benchmarks for the framework's hot paths.
//
// The full sweeps (every size on the x-axis of every figure) are produced
// by `go run ./cmd/tcperf -e all`; these benchmarks exist so `go test
// -bench .` exercises every experiment through the standard tooling.
package twochains_test

import (
	"runtime"
	"testing"

	"twochains/internal/asm"
	"twochains/internal/core"
	"twochains/internal/cpusim"
	"twochains/internal/isa"
	"twochains/internal/linker"
	"twochains/internal/mailbox"
	"twochains/internal/perf"
	"twochains/internal/sim"
	"twochains/internal/tc"
	"twochains/internal/workload"
)

// run executes one benchmark point per b.N iteration batch: the simulated
// workload is deterministic, so a single run per invocation suffices; b.N
// repetitions measure the simulator's host-side cost while the reported
// custom metrics carry the paper-relevant simulated results.
func runPingPong(b *testing.B, cfg perf.RunConfig) *perf.RunResult {
	b.Helper()
	var res *perf.RunResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = perf.PingPong(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func runRate(b *testing.B, cfg perf.RunConfig) *perf.RunResult {
	b.Helper()
	var res *perf.RunResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = perf.InjectionRate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func baseCfg(kind perf.WorkloadKind, elem string, payload int) perf.RunConfig {
	cfg := perf.DefaultRunConfig()
	cfg.Warmup, cfg.Iters = 30, 150
	cfg.Kind = kind
	cfg.Elem = elem
	cfg.PayloadBytes = payload
	return cfg
}

// BenchmarkFig05AmPutLatency: AM put (without-execution) vs UCX put
// one-way latency at 4KB.
func BenchmarkFig05AmPutLatency(b *testing.B) {
	cfg := baseCfg(perf.WkData, "", 4096)
	var ucxUs float64
	for i := 0; i < b.N; i++ {
		res, err := perf.UcxPutLatency(cfg, 4096)
		if err != nil {
			b.Fatal(err)
		}
		ucxUs = res.Samples.Median().Microseconds()
	}
	am := runPingPong(b, cfg)
	b.ReportMetric(am.Samples.Median().Microseconds(), "am_us")
	b.ReportMetric(ucxUs, "ucxput_us")
}

// BenchmarkFig06AmPutBandwidth: streaming bandwidth of both paths at 4KB.
func BenchmarkFig06AmPutBandwidth(b *testing.B) {
	cfg := baseCfg(perf.WkData, "", 4096)
	cfg.Iters = 300
	var ucxMBs float64
	for i := 0; i < b.N; i++ {
		res, err := perf.UcxPutBandwidth(cfg, 4096)
		if err != nil {
			b.Fatal(err)
		}
		ucxMBs = res.Bandwidth / 1e6
	}
	am := runRate(b, cfg)
	b.ReportMetric(am.Bandwidth/1e6, "am_MBps")
	b.ReportMetric(ucxMBs, "ucxput_MBps")
}

// BenchmarkFig07InjectedVsLocalLatency: Indirect Put at 1 integer, both
// invocation methods.
func BenchmarkFig07InjectedVsLocalLatency(b *testing.B) {
	loc := runPingPong(b, baseCfg(perf.WkLocal, "jam_iput", 4))
	inj := runPingPong(b, baseCfg(perf.WkInjected, "jam_iput", 4))
	b.ReportMetric(loc.Samples.Median().Microseconds(), "local_us")
	b.ReportMetric(inj.Samples.Median().Microseconds(), "injected_us")
}

// BenchmarkFig08InjectedVsLocalRate: message rates of both methods.
func BenchmarkFig08InjectedVsLocalRate(b *testing.B) {
	loc := runRate(b, baseCfg(perf.WkLocal, "jam_iput", 4))
	inj := runRate(b, baseCfg(perf.WkInjected, "jam_iput", 4))
	b.ReportMetric(loc.Rate, "local_msgs")
	b.ReportMetric(inj.Rate, "injected_msgs")
}

// BenchmarkFig09StashLatency: Indirect Put latency with stashing on/off.
func BenchmarkFig09StashLatency(b *testing.B) {
	non := baseCfg(perf.WkInjected, "jam_iput", 64)
	non.NodeCfg.Stash = false
	st := baseCfg(perf.WkInjected, "jam_iput", 64)
	nres := runPingPong(b, non)
	sres := runPingPong(b, st)
	b.ReportMetric(nres.Samples.Median().Microseconds(), "nonstash_us")
	b.ReportMetric(sres.Samples.Median().Microseconds(), "stash_us")
}

// BenchmarkFig10StashRate: Indirect Put message rate with stashing on/off.
func BenchmarkFig10StashRate(b *testing.B) {
	non := baseCfg(perf.WkInjected, "jam_iput", 64)
	non.NodeCfg.Stash = false
	st := baseCfg(perf.WkInjected, "jam_iput", 64)
	nres := runRate(b, non)
	sres := runRate(b, st)
	b.ReportMetric(nres.Rate, "nonstash_msgs")
	b.ReportMetric(sres.Rate, "stash_msgs")
}

// BenchmarkFig11TailLatency: loaded-system tails, Indirect Put at 256
// integers.
func BenchmarkFig11TailLatency(b *testing.B) {
	mk := func(stash bool) perf.RunConfig {
		cfg := baseCfg(perf.WkInjected, "jam_iput", 1024)
		cfg.Iters = 1200
		cfg.Stress = true
		cfg.NodeCfg.Stash = stash
		return cfg
	}
	non := runPingPong(b, mk(false))
	st := runPingPong(b, mk(true))
	b.ReportMetric(non.Samples.Tail().Microseconds(), "nonstash_tail_us")
	b.ReportMetric(st.Samples.Tail().Microseconds(), "stash_tail_us")
}

// BenchmarkFig12TailLatencySum: loaded-system tails, Server-Side Sum 2KB.
func BenchmarkFig12TailLatencySum(b *testing.B) {
	mk := func(stash bool) perf.RunConfig {
		cfg := baseCfg(perf.WkInjected, "jam_sssum", 2048)
		cfg.Iters = 1200
		cfg.Stress = true
		cfg.NodeCfg.Stash = stash
		return cfg
	}
	non := runPingPong(b, mk(false))
	st := runPingPong(b, mk(true))
	b.ReportMetric(non.Samples.TailSpread()*100, "nonstash_spread_pct")
	b.ReportMetric(st.Samples.TailSpread()*100, "stash_spread_pct")
}

// BenchmarkFig13WfeCycles: WFE vs polling on Indirect Put.
func BenchmarkFig13WfeCycles(b *testing.B) {
	mk := func(mode cpusim.WaitMode) perf.RunConfig {
		cfg := baseCfg(perf.WkInjected, "jam_iput", 64)
		cfg.WaitMode = mode
		return cfg
	}
	poll := runPingPong(b, mk(cpusim.Poll))
	wfe := runPingPong(b, mk(cpusim.WFE))
	b.ReportMetric((poll.CyclesA+poll.CyclesB)/(wfe.CyclesA+wfe.CyclesB), "cycle_reduction_x")
	b.ReportMetric(wfe.Samples.Median().Microseconds(), "wfe_us")
	b.ReportMetric(poll.Samples.Median().Microseconds(), "poll_us")
}

// BenchmarkFig14WfeCyclesSum: WFE vs polling on Server-Side Sum at 2KB.
func BenchmarkFig14WfeCyclesSum(b *testing.B) {
	mk := func(mode cpusim.WaitMode) perf.RunConfig {
		cfg := baseCfg(perf.WkInjected, "jam_sssum", 2048)
		cfg.WaitMode = mode
		return cfg
	}
	poll := runPingPong(b, mk(cpusim.Poll))
	wfe := runPingPong(b, mk(cpusim.WFE))
	b.ReportMetric((poll.CyclesA+poll.CyclesB)/(wfe.CyclesA+wfe.CyclesB), "cycle_reduction_x")
}

// BenchmarkSSSumConvergence: §VII-A text — Server-Side Sum injected/local
// gap at 64 integers.
func BenchmarkSSSumConvergence(b *testing.B) {
	loc := runPingPong(b, baseCfg(perf.WkLocal, "jam_sssum", 256))
	inj := runPingPong(b, baseCfg(perf.WkInjected, "jam_sssum", 256))
	gap := (float64(inj.Samples.Median()) - float64(loc.Samples.Median())) /
		float64(loc.Samples.Median()) * 100
	b.ReportMetric(gap, "gap_pct")
}

// --- mesh workload benchmarks (sharded many-node fabric) ---

// runMesh executes one workload scenario per b.N batch and reports the
// simulated injection rate. The scenario is seeded, so the reported
// metrics are identical across runs.
func runMesh(b *testing.B, p workload.Pattern, nodes int) {
	b.Helper()
	b.ReportAllocs()
	sc := workload.DefaultScenario(p, nodes)
	sc.Rounds = 2
	var res *workload.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = workload.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RatePerSec, "sim_inj_per_sec")
	b.ReportMetric(float64(res.Injections), "msgs")
	b.ReportMetric(res.SimTime.Microseconds(), "sim_us")
}

// BenchmarkMeshFanout: node 0 broadcasts batched bursts to 7 peers.
func BenchmarkMeshFanout(b *testing.B) { runMesh(b, workload.Fanout, 8) }

// BenchmarkMeshAllToAll: dense exchange over the full 8-node channel mesh.
func BenchmarkMeshAllToAll(b *testing.B) { runMesh(b, workload.AllToAll, 8) }

// BenchmarkMeshHotspot: skewed traffic with a mid-run ried hot-swap on
// the hot node.
func BenchmarkMeshHotspot(b *testing.B) { runMesh(b, workload.Hotspot, 8) }

// runMeshScale executes one large-mesh scenario per b.N batch on the
// multi-core conservative engine and reports the simulated injection
// rate plus the worker count actually engaged. The digests are
// bit-identical at every worker count (the parallel property tests pin
// it), so the sim_* metrics are comparable across the W1/WN pairs and
// the wall-clock ns/op difference is the engine speedup.
func runMeshScale(b *testing.B, p workload.Pattern, nodes, rounds, shards, workers int) {
	runMeshScaleSpec(b, p, nodes, rounds, shards, workers, 0)
}

// runMeshScaleSpec is runMeshScale with a speculative-window budget; the
// sim_* metrics stay bit-identical to the conservative (and sequential)
// twins — speculation only changes wall-clock.
func runMeshScaleSpec(b *testing.B, p workload.Pattern, nodes, rounds, shards, workers int, spec sim.Duration) {
	b.Helper()
	b.ReportAllocs()
	sc := workload.DefaultScenario(p, nodes)
	sc.Rounds = rounds
	sc.Shards = shards
	sc.Workers = workers
	sc.Speculation = spec
	var res *workload.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = workload.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RatePerSec, "sim_inj_per_sec")
	b.ReportMetric(float64(res.Injections), "msgs")
	b.ReportMetric(res.SimTime.Microseconds(), "sim_us")
	b.ReportMetric(float64(res.Workers), "workers")
}

// BenchmarkMeshAllToAll64: dense exchange over a 64-node, 8-shard mesh
// on the parallel engine (workers = NumCPU); the W1 twin below is the
// same simulation on one core — the pair records the engine speedup.
func BenchmarkMeshAllToAll64(b *testing.B) {
	runMeshScale(b, workload.AllToAll, 64, 2, 8, runtime.NumCPU())
}

// BenchmarkMeshAllToAll64W1: the sequential twin of MeshAllToAll64.
func BenchmarkMeshAllToAll64W1(b *testing.B) {
	runMeshScale(b, workload.AllToAll, 64, 2, 8, 1)
}

// BenchmarkMeshAllToAll64Spec: MeshAllToAll64 with speculative windows
// (a two-lookahead budget); the sim_* metrics must match the
// conservative twin exactly.
func BenchmarkMeshAllToAll64Spec(b *testing.B) {
	runMeshScaleSpec(b, workload.AllToAll, 64, 2, 8, runtime.NumCPU(), 2*sim.Microsecond)
}

// BenchmarkMeshFanout64: 64-node broadcast (single sender; receiver-side
// parallelism only).
func BenchmarkMeshFanout64(b *testing.B) {
	runMeshScale(b, workload.Fanout, 64, 2, 8, runtime.NumCPU())
}

// BenchmarkMeshFanout64Spec: the speculative twin of MeshFanout64 — the
// asymmetric (lookahead-poor) shape where the reachability bound lets
// the leading shard run past the horizon.
func BenchmarkMeshFanout64Spec(b *testing.B) {
	runMeshScaleSpec(b, workload.Fanout, 64, 2, 8, runtime.NumCPU(), 2*sim.Microsecond)
}

// BenchmarkMeshHotspot64: 64-node skewed traffic with the mid-run RIED
// hot-swap (the swap holds the engine serial until it fires).
func BenchmarkMeshHotspot64(b *testing.B) {
	runMeshScale(b, workload.Hotspot, 64, 2, 8, runtime.NumCPU())
}

// BenchmarkMeshChaos64: the 64-node exchange under chaos fabric
// perturbation (every put delayed 20-120ns from the deterministic
// per-port RNG, order preserved) plus a mid-run node failure and
// rejoin. Records what the robustness machinery costs on the parallel
// engine; sim_lost rides the history so the loss ledger is visible in
// the trajectory.
func BenchmarkMeshChaos64(b *testing.B) {
	b.ReportAllocs()
	sc := workload.DefaultScenario(workload.AllToAll, 64)
	sc.Rounds = 2
	sc.Shards = 8
	sc.Workers = runtime.NumCPU()
	sc.Chaos = &workload.ChaosSpec{MinDelay: 20 * sim.Nanosecond, MaxDelay: 120 * sim.Nanosecond}
	sc.Phases = []workload.Phase{
		{Name: "steady"},
		{Name: "failing", Fail: []workload.Fail{{Node: 5, At: sim.Microsecond}}},
		{Name: "drain", Rejoin: []workload.Rejoin{{Node: 5}}},
	}
	var res *workload.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = workload.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RatePerSec, "sim_inj_per_sec")
	b.ReportMetric(float64(res.Injections), "msgs")
	b.ReportMetric(float64(res.Lost), "sim_lost")
	b.ReportMetric(res.SimTime.Microseconds(), "sim_us")
	b.ReportMetric(float64(res.Workers), "workers")
}

// BenchmarkMeshAllToAll128: the 128-node, 16-shard exchange — the
// largest recorded point. Skipped under -short (bench-smoke) to keep
// the CI gate fast; bench-json records it.
func BenchmarkMeshAllToAll128(b *testing.B) {
	if testing.Short() {
		b.Skip("128-node mesh skipped in short mode")
	}
	runMeshScale(b, workload.AllToAll, 128, 2, 16, runtime.NumCPU())
}

// BenchmarkMeshAllToAll128W1: the sequential twin of MeshAllToAll128.
func BenchmarkMeshAllToAll128W1(b *testing.B) {
	if testing.Short() {
		b.Skip("128-node mesh skipped in short mode")
	}
	runMeshScale(b, workload.AllToAll, 128, 2, 16, 1)
}

// runScenario executes one composed scenario per b.N batch (same
// shape as runMesh, over an arbitrary Scenario).
func runScenario(b *testing.B, sc workload.Scenario) {
	b.Helper()
	b.ReportAllocs()
	var res *workload.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = workload.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RatePerSec, "sim_inj_per_sec")
	b.ReportMetric(float64(res.Injections), "msgs")
	b.ReportMetric(res.SimTime.Microseconds(), "sim_us")
}

// BenchmarkKVStoreOpenLoop: the open-loop Poisson kvstore scenario —
// put/get/scan traffic over the tcapp kvstore application.
func BenchmarkKVStoreOpenLoop(b *testing.B) { runScenario(b, workload.KVStoreScenario(8)) }

// BenchmarkMultiPhaseMix: warmup -> RIED swap -> mixed drain across
// three application packages (tcbench + kvstore + histo reduce).
func BenchmarkMultiPhaseMix(b *testing.B) { runScenario(b, workload.MultiPhaseScenario(8)) }

// BenchmarkMultiTenantOverload: the stock two-tenant overload
// composition at 4x offered load — per-tenant namespaces, weighted-fair
// receivers, overlap-window goodput. Reports each tenant's goodput so
// the fair-share split rides the benchmark history alongside the rate.
func BenchmarkMultiTenantOverload(b *testing.B) {
	b.ReportAllocs()
	sc := workload.OverloadScenario(4, 4)
	var res *workload.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = workload.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RatePerSec, "sim_inj_per_sec")
	b.ReportMetric(res.Tenants[0].GoodputPerSec, "gold_goodput_per_sec")
	b.ReportMetric(res.Tenants[1].GoodputPerSec, "bronze_goodput_per_sec")
	b.ReportMetric(res.SimTime.Microseconds(), "sim_us")
}

// --- framework micro-benchmarks (host-time, not simulated time) ---

// BenchmarkFramePack measures packing an injected frame.
func BenchmarkFramePack(b *testing.B) {
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		b.Fatal(err)
	}
	elem, _ := pkg.Element("jam_iput")
	msg := &mailbox.Message{
		Kind:        mailbox.KindInjected,
		JamImage:    make([]byte, elem.Jam.ShippedSize()),
		GotTableLen: elem.Jam.GotTableLen(),
		TextLen:     elem.Jam.TextLen,
		Usr:         make([]byte, 256),
	}
	buf := make([]byte, msg.WireLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := msg.Pack(buf, len(buf), uint32(i+1), 0x100000); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkAssemble measures the assembler on the Indirect Put source.
func BenchmarkAssemble(b *testing.B) {
	src := core.JamIPutSrc
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble("jam_iput.amc", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildJam measures the link + GOT transform of a jam.
func BenchmarkBuildJam(b *testing.B) {
	obj, err := asm.Assemble("jam_iput.amc", core.JamIPutSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linker.BuildJam(obj, "jam_iput"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstrDecode measures raw instruction decode throughput.
func BenchmarkInstrDecode(b *testing.B) {
	code := isa.EncodeAll(make([]isa.Instr, 176))
	b.SetBytes(int64(len(code)))
	for i := 0; i < b.N; i++ {
		if _, err := isa.DecodeAll(code); err != nil {
			b.Fatal(err)
		}
	}
}

// benchInvokePath measures the host-side cost of issuing and fully
// simulating one inject through either per-call string resolution
// (Channel.Handle looks the Bound up by (pkg, elem) strings every call)
// or the pre-resolved tc.Func handle. The pair exists to pin the API
// redesign's performance claim: the bind-once handle path must not be
// slower than per-call string resolution.
func benchInvokePath(b *testing.B, handle bool) {
	b.Helper()
	sys, err := tc.NewSystem(2,
		tc.WithTiming(false),
		tc.WithGeometry(mailbox.Geometry{Banks: 1, Slots: 8, FrameSize: 2048}),
		tc.WithCredits(false))
	if err != nil {
		b.Fatal(err)
	}
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.InstallPackage(pkg); err != nil {
		b.Fatal(err)
	}
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		b.Fatal(err)
	}
	ch, err := sys.Channel(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	// Steady-state call options are part of the bind-once setup: hoisting
	// the Payload option out of the loop is the documented idiom.
	payloadOpt := tc.Payload(payload)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		args := [2]uint64{uint64(i%30000) + 1, 0}
		if handle {
			if res, ok := fn.Call(1, args, payloadOpt).Result(); ok && res.Err != nil {
				b.Fatal(res.Err)
			}
		} else {
			if err := ch.Handle("tcbench", "jam_iput").Inject(args, payload, nil); err != nil {
				b.Fatal(err)
			}
		}
		sys.Run()
	}
}

// BenchmarkStringInject: per-call string resolution (Channel.Handle).
func BenchmarkStringInject(b *testing.B) { benchInvokePath(b, false) }

// BenchmarkFuncCall: bind-once/call-many handle path.
func BenchmarkFuncCall(b *testing.B) { benchInvokePath(b, true) }

// BenchmarkEndToEndInject measures host-side cost of one full simulated
// inject-execute round trip.
func BenchmarkEndToEndInject(b *testing.B) {
	cfg := baseCfg(perf.WkInjected, "jam_iput", 64)
	cfg.Warmup, cfg.Iters = 2, 10
	for i := 0; i < b.N; i++ {
		if _, err := perf.PingPong(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
