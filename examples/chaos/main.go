// Chaos: the failure-injection suite end to end. The chaos fabric
// backend wraps simnet and perturbs every put's latency from the
// scenario's deterministic RNG; a scenario phase tears a node down
// mid-run and rejoins it later, with every unexecutable message
// accounted in the loss ledger; and the issuer-side retry option rides
// a call across the failure window on simulated-time backoff. All of
// it is deterministic: equal seeds reproduce the digests, the loss
// ledger, and the retry timeline bit for bit at every worker count.
package main

import (
	"errors"
	"fmt"
	"log"

	"twochains/internal/core"
	"twochains/internal/sim"
	"twochains/internal/tc"
	"twochains/internal/workload"
)

func main() {
	// 1. A perturbed fail/rejoin scenario: chaos delays every put by
	//    20-120ns (order-preserving), node 2 dies a microsecond into the
	//    second phase, and the third phase rejoins it and drains.
	sc := workload.DefaultScenario(workload.AllToAll, 9)
	sc.Burst = 4
	sc.Rounds = 2
	sc.Shards = 4
	sc.Chaos = &workload.ChaosSpec{MinDelay: 20 * sim.Nanosecond, MaxDelay: 120 * sim.Nanosecond}
	sc.Phases = []workload.Phase{
		{Name: "steady"},
		{Name: "failing", Fail: []workload.Fail{{Node: 2, At: sim.Microsecond}}},
		{Name: "drain", Rejoin: []workload.Rejoin{{Node: 2}}},
	}
	res, err := workload.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chaos run: %d executed, %d lost to the failure, digest %#x\n",
		res.Injections, res.Lost, res.Digest)
	for _, ph := range res.Phases {
		fmt.Printf("  %-8s %5d/%5d executed, done at %v\n", ph.Name, ph.Executed, ph.Planned, ph.End)
	}
	again, err := workload.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay: digest match %v, loss ledger match %v\n",
		again.Digest == res.Digest, again.Lost == res.Lost)

	// 2. Issuer-side retry on the handle API: a call issued while the
	//    destination is down backs off on the simulated clock and lands
	//    once the node rejoins.
	sys, err := tc.NewSystem(3, tc.WithTiming(false))
	if err != nil {
		log.Fatal(err)
	}
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InstallPackage(pkg); err != nil {
		log.Fatal(err)
	}
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fn.Call(1, [2]uint64{1, 0}).Await(); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.FailNode(1); err != nil {
		log.Fatal(err)
	}
	// Without a retry policy the refusal is a fast, typed error.
	var nd *core.NodeDownError
	if err := fn.Call(1, [2]uint64{2, 0}).IssueErr(); errors.As(err, &nd) {
		fmt.Printf("bare call while down: %v\n", err)
	}
	sys.After(0, 5*sim.Microsecond, func() {
		if err := sys.RejoinNode(1); err != nil {
			log.Fatal(err)
		}
	})
	fu := fn.Call(1, [2]uint64{3, 0},
		tc.WithRetry(tc.RetryPolicy{Attempts: 5, Backoff: sim.Microsecond}))
	if _, err := fu.Await(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retried call landed after rejoin at t=%v\n", sim.Duration(sys.Now()))
}
