// Hotswap: remote dynamic linking as a live-update mechanism (paper §III).
// Loading a new RIED (relocatable interface distribution) version on a
// running process rebinds a fixed symbolic name, altering the behaviour of
// every subsequent active message — with no restart and no re-linking of
// anything already loaded. The client's pre-resolved tc.Func handle
// survives the swap: it re-binds against the new namespace automatically
// on its next call.
//
// A validation service first enforces a v1 policy (reject payloads over a
// small limit); operations then pushes a v2 policy ried that also enforces
// a parity rule. In-flight protocol, message format, and the validator jam
// are untouched.
package main

import (
	"fmt"
	"log"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tc"
)

const jamValidate = `
; jam_validate: run the currently bound policy over the request payload.
.extern tc_policy
.global jam_validate
jam_validate:
    addi sp, sp, -16
    st   lr, [sp+0]
    mov  r0, r1          ; payload VA
    mov  r1, r2          ; payload length
    callg tc_policy      ; 1 = accept, 0 = reject
    ld   lr, [sp+0]
    addi sp, sp, 16
    ret
`

const riedPolicyV1 = `
; policy v1: accept any request up to 64 bytes.
.text
.global tc_policy
tc_policy:
    movi r2, 64
    movi r3, 1
    bgeu r2, r1, ok1
    movi r3, 0
ok1:
    mov  r0, r3
    ret
`

const riedPolicyV2 = `
; policy v2: size limit AND even length required.
.text
.global tc_policy
tc_policy:
    movi r2, 64
    movi r3, 0
    bltu r2, r1, done2   ; too large
    andi r4, r1, 1
    movi r5, 0
    bne  r4, r5, done2   ; odd length
    movi r3, 1
done2:
    mov  r0, r3
    ret
`

func main() {
	pkgV1, err := core.BuildPackage("validate", map[string]string{
		"jam_validate.ams": jamValidate,
		"ried_policy.rds":  riedPolicyV1,
	})
	if err != nil {
		log.Fatal(err)
	}
	v2pkg, err := core.BuildPackage("policy2", map[string]string{
		"ried_policy.rds": riedPolicyV2,
	})
	if err != nil {
		log.Fatal(err)
	}
	riedV2, _ := v2pkg.Element("ried_policy")

	const client, validator = 0, 1
	sys, err := tc.NewSystem(2,
		tc.WithGeometry(mailbox.Geometry{Banks: 1, Slots: 4, FrameSize: 512}),
		tc.WithCredits(false),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InstallPackage(pkgV1); err != nil {
		log.Fatal(err)
	}

	sys.Node(validator).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
		if err != nil {
			log.Fatal(err)
		}
		verdict := "REJECT"
		if ret == 1 {
			verdict = "accept"
		}
		fmt.Printf("  validator: %s\n", verdict)
	}
	// Bind the validator jam once; every check reuses the handle.
	validate, err := sys.Func(client, "validate", "jam_validate")
	if err != nil {
		log.Fatal(err)
	}
	check := func(n int) {
		if _, err := validate.Call(validator, [2]uint64{},
			tc.Payload(make([]byte, n))).Await(); err != nil {
			log.Fatal(err)
		}
		sys.Run()
	}

	fmt.Println("policy v1 (size <= 64):")
	fmt.Print("  33-byte request -> ")
	check(33)
	fmt.Print("  80-byte request -> ")
	check(80)

	// Live update: drive the v2 RIED over and load it with Replace
	// semantics; the namespace exchange refreshes every sender's view,
	// and the bound handle re-binds itself on the next call.
	if _, err := sys.InstallRied(validator, riedV2.Ried, true); err != nil {
		log.Fatal(err)
	}
	sys.RefreshNames(validator)
	fmt.Println("hot-swapped policy ried to v2 (size <= 64 AND even length) — no restart:")

	fmt.Print("  33-byte request -> ")
	check(33)
	fmt.Print("  34-byte request -> ")
	check(34)
	fmt.Print("  80-byte request -> ")
	check(80)
}
