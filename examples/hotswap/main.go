// Hotswap: remote dynamic linking as a live-update mechanism (paper §III).
// Loading a new ried version on a running process rebinds a fixed symbolic
// name, altering the behaviour of every subsequent active message — with
// no restart and no re-linking of anything already loaded.
//
// A validation service first enforces a v1 policy (reject payloads over a
// small limit); operations then pushes a v2 policy ried that also enforces
// a parity rule. In-flight protocol, message format, and the validator jam
// are untouched.
package main

import (
	"fmt"
	"log"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

const jamValidate = `
; jam_validate: run the currently bound policy over the request payload.
.extern tc_policy
.global jam_validate
jam_validate:
    addi sp, sp, -16
    st   lr, [sp+0]
    mov  r0, r1          ; payload VA
    mov  r1, r2          ; payload length
    callg tc_policy      ; 1 = accept, 0 = reject
    ld   lr, [sp+0]
    addi sp, sp, 16
    ret
`

const riedPolicyV1 = `
; policy v1: accept any request up to 64 bytes.
.text
.global tc_policy
tc_policy:
    movi r2, 64
    movi r3, 1
    bgeu r2, r1, ok1
    movi r3, 0
ok1:
    mov  r0, r3
    ret
`

const riedPolicyV2 = `
; policy v2: size limit AND even length required.
.text
.global tc_policy
tc_policy:
    movi r2, 64
    movi r3, 0
    bltu r2, r1, done2   ; too large
    andi r4, r1, 1
    movi r5, 0
    bne  r4, r5, done2   ; odd length
    movi r3, 1
done2:
    mov  r0, r3
    ret
`

func main() {
	pkgV1, err := core.BuildPackage("validate", map[string]string{
		"jam_validate.ams": jamValidate,
		"ried_policy.rds":  riedPolicyV1,
	})
	if err != nil {
		log.Fatal(err)
	}
	v2pkg, err := core.BuildPackage("policy2", map[string]string{
		"ried_policy.rds": riedPolicyV2,
	})
	if err != nil {
		log.Fatal(err)
	}
	riedV2, _ := v2pkg.Element("ried_policy")

	cl := core.NewCluster(core.DefaultClusterConfig())
	client, err := cl.AddNode("client", core.DefaultNodeConfig())
	if err != nil {
		log.Fatal(err)
	}
	validator, err := cl.AddNode("validator", core.DefaultNodeConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []*core.Node{client, validator} {
		if _, err := n.InstallPackage(pkgV1); err != nil {
			log.Fatal(err)
		}
	}
	geom := mailbox.Geometry{Banks: 1, Slots: 4, FrameSize: 512}
	if err := validator.EnableMailbox(mailbox.DefaultReceiverConfig(geom)); err != nil {
		log.Fatal(err)
	}
	ch, err := core.Connect(client, validator, core.ChannelOptions{})
	if err != nil {
		log.Fatal(err)
	}

	validator.OnExecuted = func(ret uint64, _ sim.Duration, err error) {
		if err != nil {
			log.Fatal(err)
		}
		verdict := "REJECT"
		if ret == 1 {
			verdict = "accept"
		}
		fmt.Printf("  validator: %s\n", verdict)
	}
	check := func(n int) {
		if err := ch.Inject("validate", "jam_validate", [2]uint64{}, make([]byte, n), nil); err != nil {
			log.Fatal(err)
		}
		cl.Run()
	}

	fmt.Println("policy v1 (size <= 64):")
	fmt.Print("  33-byte request -> ")
	check(33)
	fmt.Print("  80-byte request -> ")
	check(80)

	// Live update: drive the v2 ried over and load it with Replace
	// semantics; the namespace exchange refreshes the client's view.
	if _, err := validator.InstallRied(riedV2.Ried, true); err != nil {
		log.Fatal(err)
	}
	ch.RefreshNames()
	fmt.Println("hot-swapped policy ried to v2 (size <= 64 AND even length) — no restart:")

	fmt.Print("  33-byte request -> ")
	check(33)
	fmt.Print("  34-byte request -> ")
	check(34)
	fmt.Print("  80-byte request -> ")
	check(80)
}
