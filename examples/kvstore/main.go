// KVStore: the application-package authoring surface end to end. First
// the registered kvstore app — an open-addressed key/value table whose
// put/get/scan functions travel as injected code — is driven through
// bind-once Func handles and checked live against its native oracle.
// Then a brand-new one-element app is authored inline with the tcapp
// builder and injected, showing that a new RIED application is a dozen
// lines of data, not a fork of the driver. Finally the composed
// scenarios run: the open-loop Poisson kvstore workload and the
// multi-phase warmup -> RIED-swap -> multi-package drain, both plain
// Scenario data.
package main

import (
	"fmt"
	"log"

	"twochains/internal/perf"
	"twochains/internal/sim"
	"twochains/internal/tc"
	"twochains/internal/tcapp"
	"twochains/internal/workload"
)

func main() {
	// 1. The registered kvstore app on a 4-node system: bind handles
	//    once, then puts, gets, and a scan as Injected Functions, with
	//    the native oracle tracking the server node in lockstep.
	sys, err := tc.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}
	pkg, err := tcapp.Build("kvstore")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InstallPackage(pkg); err != nil {
		log.Fatal(err)
	}
	oracle := tcapp.NewKVOracle()
	// Bind once: one handle per element, one execution hook — every
	// call after this resolves no strings.
	fns := map[string]*tc.Func{}
	for _, elem := range []string{"jam_kv_put", "jam_kv_get", "jam_kv_scan"} {
		fn, err := sys.Func(0, "kvstore", elem)
		if err != nil {
			log.Fatal(err)
		}
		fns[elem] = fn
	}
	var got uint64
	sys.Node(1).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
		if err != nil {
			log.Fatalf("kvstore handler faulted: %v", err)
		}
		got = ret
	}
	call := func(elem string, args [2]uint64) uint64 {
		if _, err := fns[elem].Call(1, args).Await(); err != nil {
			log.Fatal(err)
		}
		sys.Run()
		want, err := oracle.Apply(elem, args, nil)
		if err != nil {
			log.Fatal(err)
		}
		status := "== oracle"
		if got != want {
			status = fmt.Sprintf("!= oracle %d", want)
		}
		fmt.Printf("  %-12s(%5d, %5d) -> %6d  %s\n", elem, args[0], args[1], got, status)
		return got
	}
	fmt.Println("kvstore app, node 0 -> node 1:")
	call("jam_kv_put", [2]uint64{7, 700})
	call("jam_kv_put", [2]uint64{42, 4200})
	call("jam_kv_put", [2]uint64{7, 777}) // overwrite, same slot
	call("jam_kv_get", [2]uint64{7, 0})
	call("jam_kv_get", [2]uint64{31337, 0}) // miss
	call("jam_kv_scan", [2]uint64{0, 127})

	// 2. A new app authored inline: one data word, one jam. This is the
	//    whole cost of bringing a new application to the fabric.
	counter, err := tcapp.New("counter").
		DataWords("ctr", 0).
		Func("bump", `
extern long ctr[];

long jam_bump(long* args, byte* usr, long len) {
    ctr[0] = ctr[0] + args[0];
    return ctr[0];
}
`).Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InstallPackage(counter); err != nil {
		log.Fatal(err)
	}
	bump, err := sys.Func(0, "counter", "jam_bump")
	if err != nil {
		log.Fatal(err)
	}
	var last uint64
	sys.Node(2).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
		if err != nil {
			log.Fatal(err)
		}
		last = ret
	}
	for i := 1; i <= 3; i++ {
		if _, err := bump.Call(2, [2]uint64{uint64(i * 10), 0}).Await(); err != nil {
			log.Fatal(err)
		}
	}
	sys.Run()
	fmt.Printf("\ninline-authored counter app: three bumps on node 2 -> ctr = %d\n\n", last)

	// 3. The composed scenarios, as data.
	for _, mk := range []struct {
		name  string
		build func(int) workload.Scenario
	}{
		{"kv-openloop (Poisson arrivals)", workload.KVStoreScenario},
		{"multiphase (warmup -> swap -> mixed drain)", workload.MultiPhaseScenario},
	} {
		res, err := workload.Run(mk.build(8))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", mk.name)
		for _, ph := range res.Phases {
			swap := ""
			if ph.Swapped {
				swap = "  [RIED swap]"
			}
			fmt.Printf("  phase %-12s %5d msgs, done at %10v%s\n", ph.Name, ph.Executed, ph.End, swap)
		}
		fmt.Printf("  total %d injections in %v simulated -> %s injections/sec\n",
			res.Injections, res.SimTime, perf.FmtRate(res.RatePerSec))
	}
}
