// Quickstart: build the benchmark package with the in-repo toolchain,
// bring up a two-node system, and send both kinds of active message
// through pre-resolved function handles — one whose code travels in the
// message (Injected Function) and one invoked by ID from the receiver's
// library (Local Function).
package main

import (
	"fmt"
	"log"

	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tc"

	"twochains/internal/core"
)

func main() {
	// 1. Build the package: jams + rieds compiled by the in-repo
	//    assembler, jams statically rewritten for GOT-pointer indirection.
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		log.Fatal(err)
	}
	iput, _ := pkg.Element("jam_iput")
	fmt.Printf("built package %q: %d elements; jam_iput ships %d bytes of code\n",
		pkg.Name, len(pkg.Elements), iput.Jam.ShippedSize())

	// 2. A two-node system on one simulated RDMA fabric, as in the
	//    paper's testbed — a "cluster" is simply a 2-node tc.System.
	sys, err := tc.NewSystem(2,
		tc.WithGeometry(mailbox.Geometry{Banks: 2, Slots: 4, FrameSize: 2048}),
		tc.WithCredits(true),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Install the package everywhere (the server's ried sets up the
	//    hash table and heap; the local-function library provides the
	//    by-ID dispatch vector). Mailboxes and channels are provisioned
	//    lazily on first use.
	if err := sys.InstallPackage(pkg); err != nil {
		log.Fatal(err)
	}
	const client, server = 0, 1
	srv := sys.Node(server)
	srv.OnExecuted = func(ret uint64, cost sim.Duration, err error) {
		if err != nil {
			log.Fatal("handler:", err)
		}
		fmt.Printf("  server executed a message: ret=%d, simulated cost %v\n", ret, cost)
	}

	// 4. Injected Function: bind the handle once; the jam's code and its
	//    format string travel inside the frame and run on arrival — the
	//    receiver resolves printf through the GOT table the sender
	//    patched.
	hello, err := sys.Func(client, "tcbench", "jam_hello")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := hello.Call(server, [2]uint64{1, 0}, tc.Payload([]byte("hi"))).Await(); err != nil {
		log.Fatal(err)
	}

	// 5. Indirect Put: client-chosen key, server-side placement. The
	//    handle was bound once; every further Call skips resolution.
	iputFn, err := sys.Func(client, "tcbench", "jam_iput")
	if err != nil {
		log.Fatal(err)
	}
	payload := []byte("forty-two bytes of payload, injected!")
	if _, err := iputFn.Call(server, [2]uint64{42, 0}, tc.Payload(payload)).Await(); err != nil {
		log.Fatal(err)
	}

	// 6. Local Function: same source, no code on the wire — the frame
	//    carries only IDs and payload (the tc.Local call option).
	sssum, err := sys.Func(client, "tcbench", "jam_sssum")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sssum.Call(server, [2]uint64{}, tc.Local(),
		tc.Payload([]byte{1, 2, 3, 4, 5, 6, 7, 8})).Await(); err != nil {
		log.Fatal(err)
	}

	sys.Run()

	fmt.Printf("server stdout: %q\n", srv.Stdout.String())
	heap, _ := srv.SymbolVA("tc_heap")
	next, _ := srv.SymbolVA("tc_result_next")
	n, _ := srv.AS.ReadU64(next)
	fmt.Printf("server state: tc_result_next=%d, heap at 0x%x\n", n, heap)
	fmt.Printf("messages processed: %d, simulated time elapsed: %v\n",
		sys.Stats().Processed, sim.Duration(sys.Now()))
}
