// Quickstart: build the benchmark package with the in-repo toolchain,
// bring up a two-node simulated cluster, and send both kinds of active
// message — one whose code travels in the message (Injected Function) and
// one invoked by ID from the receiver's library (Local Function).
package main

import (
	"fmt"
	"log"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

func main() {
	// 1. Build the package: jams + rieds compiled by the in-repo
	//    assembler, jams statically rewritten for GOT-pointer indirection.
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		log.Fatal(err)
	}
	iput, _ := pkg.Element("jam_iput")
	fmt.Printf("built package %q: %d elements; jam_iput ships %d bytes of code\n",
		pkg.Name, len(pkg.Elements), iput.Jam.ShippedSize())

	// 2. Two nodes on one RDMA fabric, as in the paper's testbed.
	cl := core.NewCluster(core.DefaultClusterConfig())
	client, err := cl.AddNode("client", core.DefaultNodeConfig())
	if err != nil {
		log.Fatal(err)
	}
	server, err := cl.AddNode("server", core.DefaultNodeConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Install the package on both sides (the server's ried sets up the
	//    hash table and heap; the local-function library provides the
	//    by-ID dispatch vector), then arm the server mailbox and connect.
	for _, n := range []*core.Node{client, server} {
		if _, err := n.InstallPackage(pkg); err != nil {
			log.Fatal(err)
		}
	}
	geom := mailbox.Geometry{Banks: 2, Slots: 4, FrameSize: 2048}
	rcfg := mailbox.DefaultReceiverConfig(geom)
	rcfg.Credits = true
	if err := server.EnableMailbox(rcfg); err != nil {
		log.Fatal(err)
	}
	ch, err := core.Connect(client, server, core.ChannelOptions{})
	if err != nil {
		log.Fatal(err)
	}

	server.OnExecuted = func(ret uint64, cost sim.Duration, err error) {
		if err != nil {
			log.Fatal("handler:", err)
		}
		fmt.Printf("  server executed a message: ret=%d, simulated cost %v\n", ret, cost)
	}

	// 4. Injected Function: the jam's code and its format string travel
	//    inside the frame and run on arrival — the receiver resolves
	//    printf through the GOT table the sender patched.
	if err := ch.Inject("tcbench", "jam_hello", [2]uint64{1, 0}, []byte("hi"), nil); err != nil {
		log.Fatal(err)
	}

	// 5. Indirect Put: client-chosen key, server-side placement.
	payload := []byte("forty-two bytes of payload, injected!")
	if err := ch.Inject("tcbench", "jam_iput", [2]uint64{42, 0}, payload, nil); err != nil {
		log.Fatal(err)
	}

	// 6. Local Function: same source, no code on the wire — the frame
	//    carries only IDs and payload.
	if err := ch.CallLocal("tcbench", "jam_sssum", [2]uint64{}, []byte{1, 2, 3, 4, 5, 6, 7, 8}, nil); err != nil {
		log.Fatal(err)
	}

	cl.Run()

	fmt.Printf("server stdout: %q\n", server.Stdout.String())
	heap, _ := server.SymbolVA("tc_heap")
	next, _ := server.SymbolVA("tc_result_next")
	n, _ := server.AS.ReadU64(next)
	fmt.Printf("server state: tc_result_next=%d, heap at 0x%x\n", n, heap)
	fmt.Printf("messages processed: %d, simulated time elapsed: %v\n",
		server.Receiver.Stats().Processed, sim.Duration(cl.Eng.Now()))
}
