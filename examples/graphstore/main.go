// Graphstore: the paper's motivating workload — a large-scale irregular
// application making unordered concurrent writes to a graph sharded across
// servers. Instead of pulling adjacency data to the client, the client
// pushes edge-insertion functions to whichever shard owns the data.
//
// The demo also shows why shipping code in the message matters for dynamic
// applications: halfway through the run the client switches to a *new*
// insertion function (weight-accumulating) without any registration,
// coordination, or restart on the servers — the new code simply arrives in
// the next message.
package main

import (
	"fmt"
	"log"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tc"
)

const riedGraph = `
; ried_graph: per-shard adjacency state.
.data
.global gr_count
gr_count:
    .quad 0
.global gr_weight
gr_weight:
    .quad 0
.bss
.global gr_degree
gr_degree:
    .space 524288           ; 65536 vertices x u64 degree
.global gr_edges
gr_edges:
    .space 1048576          ; 65536 edge-log slots of {u, v}
`

const jamAddEdge = `
; jam_addedge: degree[u]++, degree[v]++, append (u,v) to the edge log.
.extern gr_degree
.extern gr_edges
.extern gr_count
.global jam_addedge
jam_addedge:
    ld   r3, [r0+0]         ; u
    ld   r4, [r0+8]         ; v
    ldg  r5, gr_degree
    andi r3, r3, 65535
    andi r4, r4, 65535
    shli r6, r3, 3
    add  r6, r5, r6
    ld   r7, [r6+0]
    addi r7, r7, 1
    st   r7, [r6+0]
    shli r6, r4, 3
    add  r6, r5, r6
    ld   r7, [r6+0]
    addi r7, r7, 1
    st   r7, [r6+0]
    ldg  r8, gr_count
    ld   r9, [r8+0]
    ldg  r6, gr_edges
    andi r7, r9, 65535
    shli r7, r7, 4
    add  r7, r6, r7
    st   r3, [r7+0]
    st   r4, [r7+8]
    addi r9, r9, 1
    st   r9, [r8+0]
    mov  r0, r9             ; return shard edge count
    ret
`

const jamAddEdgeWeighted = `
; jam_addedge_w: the upgraded insert — also accumulates the edge weight
; carried in the payload. Deployed mid-run by simply injecting it.
.extern gr_degree
.extern gr_count
.extern gr_weight
.global jam_addedge_w
jam_addedge_w:
    ld   r3, [r0+0]
    ld   r4, [r0+8]
    ldg  r5, gr_degree
    andi r3, r3, 65535
    andi r4, r4, 65535
    shli r6, r3, 3
    add  r6, r5, r6
    ld   r7, [r6+0]
    addi r7, r7, 1
    st   r7, [r6+0]
    shli r6, r4, 3
    add  r6, r5, r6
    ld   r7, [r6+0]
    addi r7, r7, 1
    st   r7, [r6+0]
    ld   r8, [r1+0]         ; weight from payload
    ldg  r9, gr_weight
    ld   r6, [r9+0]
    add  r6, r6, r8
    st   r6, [r9+0]
    ldg  r8, gr_count
    ld   r9, [r8+0]
    addi r9, r9, 1
    st   r9, [r8+0]
    mov  r0, r9
    ret
`

const jamDegree = `
; jam_degree: read back degree[u].
.extern gr_degree
.global jam_degree
jam_degree:
    ld   r3, [r0+0]
    ldg  r5, gr_degree
    andi r3, r3, 65535
    shli r3, r3, 3
    add  r3, r5, r3
    ld   r0, [r3+0]
    ret
`

func main() {
	pkg, err := core.BuildPackage("graph", map[string]string{
		"jam_addedge.ams":   jamAddEdge,
		"jam_addedge_w.ams": jamAddEdgeWeighted,
		"jam_degree.ams":    jamDegree,
		"ried_graph.rds":    riedGraph,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One client plus two graph shards on a single system; shard i is
	// node i+1. Channels and mailbox regions arm lazily on first call.
	const client = 0
	sys, err := tc.NewSystem(3,
		tc.WithGeometry(mailbox.Geometry{Banks: 4, Slots: 8, FrameSize: 1024}),
		tc.WithCredits(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InstallPackage(pkg); err != nil {
		log.Fatal(err)
	}
	shardOf := func(u uint64) int { return 1 + int(u%2) }

	// Bind each insertion function once; every edge reuses the handles.
	addEdge, err := sys.Func(client, "graph", "jam_addedge")
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: insert 400 edges of a synthetic power-law-ish graph,
	// sharded by source vertex.
	rng := sim.NewRNG(2021)
	edges := 0
	for i := 0; i < 400; i++ {
		u := uint64(rng.Intn(64)) // hubs: few sources, many targets
		v := uint64(rng.Intn(4096))
		if res, _ := addEdge.Call(shardOf(u), [2]uint64{u, v}).Result(); res.Err != nil {
			log.Fatal(res.Err)
		}
		edges++
	}
	sys.Run()
	fmt.Printf("phase 1: %d plain edge inserts pushed to 2 shards\n", edges)

	// Phase 2: switch to the weighted insert function mid-run. No server
	// cooperation needed: the new function body travels in the messages —
	// deploying new code is just binding another handle.
	addEdgeW, err := sys.Func(client, "graph", "jam_addedge_w")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		u := uint64(rng.Intn(64))
		v := uint64(rng.Intn(4096))
		w := uint64(rng.Intn(100))
		var weight [8]byte
		for j := 0; j < 8; j++ {
			weight[j] = byte(w >> (8 * j))
		}
		if res, _ := addEdgeW.Call(shardOf(u), [2]uint64{u, v}, tc.Payload(weight[:])).Result(); res.Err != nil {
			log.Fatal(res.Err)
		}
	}
	sys.Run()
	fmt.Println("phase 2: switched to weighted inserts mid-run (no restart, no registration)")

	// Phase 3: query a few hub degrees with a read-only jam, awaiting
	// each future deterministically.
	for i := 1; i <= 2; i++ {
		shard := sys.Node(i)
		shard.OnExecuted = func(ret uint64, _ sim.Duration, err error) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s answered degree query: %d\n", shard.Name, ret)
		}
	}
	degree, err := sys.Func(client, "graph", "jam_degree")
	if err != nil {
		log.Fatal(err)
	}
	for _, u := range []uint64{1, 2, 3} {
		if _, err := degree.Call(shardOf(u), [2]uint64{u, 0}).Await(); err != nil {
			log.Fatal(err)
		}
	}
	sys.Run()

	// Shard-side state, read directly for the report.
	st := sys.Stats()
	for i := 1; i <= 2; i++ {
		shard := sys.Node(i)
		countVA, _ := shard.SymbolVA("gr_count")
		weightVA, _ := shard.SymbolVA("gr_weight")
		count, _ := shard.AS.ReadU64(countVA)
		weight, _ := shard.AS.ReadU64(weightVA)
		fmt.Printf("%s: %d edges in log, accumulated weight %d\n",
			shard.Name, count, weight)
	}
	fmt.Printf("processed %d messages; simulated time for the whole run: %v\n",
		st.Processed, sim.Duration(sys.Now()))
}
