// Mesh: bring up a sharded many-node tc.System and drive all three
// workload patterns over it — a fan-out broadcast, an all-to-all
// exchange, and a skewed hotspot whose server RIED is hot-swapped while
// traffic is in flight. Along the way it shows the scale-out mechanisms
// of the handle-based API: one Func handle bound once and burst-called
// per destination, batched frame injection (one thin put per contiguous
// slot run), and the per-sender prepared-jam cache (one GOT bind per
// element + receiver namespace, shared across every channel).
package main

import (
	"fmt"
	"log"

	"twochains/internal/core"
	"twochains/internal/perf"
	"twochains/internal/tc"
	"twochains/internal/workload"
)

func main() {
	const nodes = 8

	// 1. Handle-based system API: lazy channels, shard placement, one
	//    handle burst-called at every destination.
	sys, err := tc.NewSystem(nodes)
	if err != nil {
		log.Fatal(err)
	}
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InstallPackage(pkg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d nodes over %d fabric shards (node 0 in shard %d, node %d in shard %d)\n",
		nodes, sys.Mesh().Cfg.Shards, sys.ShardOf(0), nodes-1, sys.ShardOf(nodes-1))

	args := make([][2]uint64, 16)
	for i := range args {
		args[i] = [2]uint64{uint64(i + 1), 0}
	}
	iput, err := sys.Func(0, "tcbench", "jam_iput") // bind once...
	if err != nil {
		log.Fatal(err)
	}
	for dst := 1; dst < nodes; dst++ { // ...burst to 7 destinations
		fu := iput.Call(dst, args[0], tc.Burst(args), tc.Payload([]byte("burst payload")))
		if res, ok := fu.Result(); ok && res.Err != nil {
			log.Fatal(res.Err)
		}
	}
	sys.Run()
	st := sys.Stats()
	fmt.Printf("burst demo: %d channels, %d frames sent, %d coalesced into %d batched puts\n",
		st.Channels, st.Sent, st.BatchedFrames, st.Batches)
	fmt.Printf("jam cache: %d binds served %d channels (%d hits)\n\n",
		st.JamBinds, st.Channels, st.JamHits)

	// 2. Scenario driver: the three traffic patterns, seeded and
	//    deterministic, reporting simulated injections/sec.
	for _, p := range workload.Patterns() {
		sc := workload.DefaultScenario(p, nodes)
		res, err := workload.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if p == workload.Hotspot {
			extra = fmt.Sprintf("  (hot node %d, ried hot-swapped mid-run: %v)",
				res.HotNode, res.Swapped)
		}
		fmt.Printf("%-8s  %4d msgs in %8v simulated  ->  %s injections/sec%s\n",
			p, res.Injections, res.SimTime, perf.FmtRate(res.RatePerSec), extra)
	}
}
