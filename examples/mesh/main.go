// Mesh: bring up the sharded many-node injection fabric and drive all
// three workload patterns over it — a fan-out broadcast, an all-to-all
// exchange, and a skewed hotspot whose server ried is hot-swapped while
// traffic is in flight. Along the way it shows the two scale-out
// mechanisms the mesh adds over a two-node cluster: batched frame
// injection (one thin put per contiguous slot run) and the per-sender
// prepared-jam cache (one GOT bind per element + receiver namespace,
// shared across every channel).
package main

import (
	"fmt"
	"log"

	"twochains/internal/core"
	"twochains/internal/perf"
	"twochains/internal/workload"
)

func main() {
	const nodes = 8

	// 1. Raw mesh API: lazy channels, shard placement, burst injection.
	mcfg := core.DefaultMeshConfig(nodes)
	mesh, err := core.NewMesh(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		log.Fatal(err)
	}
	if err := mesh.InstallPackage(pkg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh: %d nodes over %d fabric shards (node 0 in shard %d, node %d in shard %d)\n",
		nodes, mcfg.Shards, mesh.ShardOf(0), nodes-1, mesh.ShardOf(nodes-1))

	args := make([][2]uint64, 16)
	for i := range args {
		args[i] = [2]uint64{uint64(i + 1), 0}
	}
	for dst := 1; dst < nodes; dst++ {
		ch, err := mesh.Channel(0, dst)
		if err != nil {
			log.Fatal(err)
		}
		if err := ch.InjectBurst("tcbench", "jam_iput", args, []byte("burst payload"), nil); err != nil {
			log.Fatal(err)
		}
	}
	mesh.Run()
	st := mesh.Stats()
	fmt.Printf("burst demo: %d channels, %d frames sent, %d coalesced into %d batched puts\n",
		st.Channels, st.Sent, st.BatchedFrames, st.Batches)
	fmt.Printf("jam cache: %d binds served %d channels (%d hits)\n\n",
		st.JamBinds, st.Channels, st.JamHits)

	// 2. Scenario driver: the three traffic patterns, seeded and
	//    deterministic, reporting simulated injections/sec.
	for _, p := range workload.Patterns() {
		sc := workload.DefaultScenario(p, nodes)
		res, err := workload.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if p == workload.Hotspot {
			extra = fmt.Sprintf("  (hot node %d, ried hot-swapped mid-run: %v)",
				res.HotNode, res.Swapped)
		}
		fmt.Printf("%-8s  %4d msgs in %8v simulated  ->  %s injections/sec%s\n",
			p, res.Injections, res.SimTime, perf.FmtRate(res.RatePerSec), extra)
	}
}
