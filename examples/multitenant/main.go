// Multitenant: per-tenant package namespaces, admission control, and
// weighted-fair servicing over one shared fabric.
//
// Two tenants — "gold" (weight 3, trusted) and "bronze" (weight 1,
// metered by a token bucket) — install *different versions of the same
// app* on the same nodes. Each tenant's calls bind against its own
// package instance (no element-ID or namespace collision), the bronze
// bucket sheds calls past its burst, and a quick overload run shows the
// weighted-fair receivers splitting the serviced throughput 3:1.
package main

import (
	"errors"
	"fmt"
	"log"

	"twochains/internal/core"
	"twochains/internal/sim"
	"twochains/internal/tc"
	"twochains/internal/tenant"
	"twochains/internal/workload"
)

// Two versions of the "pricing" app: v1 charges 10 units per item, the
// gold build got the discounted v2 at 7 per item.
func pricing(rate string) *core.Package {
	pkg, err := core.BuildPackage("pricing", map[string]string{
		"jam_quote.amc": `
long jam_quote(long* args, byte* usr, long len) {
    return args[0] * ` + rate + `;
}
`,
	})
	if err != nil {
		log.Fatal(err)
	}
	return pkg
}

func main() {
	const client, server = 0, 1
	sys, err := tc.NewSystem(2)
	if err != nil {
		log.Fatal(err)
	}

	// Tenant registration order fixes the fair-queue class IDs.
	if _, err := sys.AddTenant(tenant.Config{Name: "gold", Weight: 3}); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.AddTenant(tenant.Config{Name: "bronze", Weight: 1,
		Admission: &tenant.Admission{RatePerSec: 500_000, Burst: 3}}); err != nil {
		log.Fatal(err)
	}

	// Same app name, different versions, same nodes: each install lands
	// in the tenant's own namespace view.
	if err := sys.InstallPackageFor("gold", pricing("7")); err != nil {
		log.Fatal(err)
	}
	if err := sys.InstallPackageFor("bronze", pricing("10")); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== per-tenant versions of one app ==")
	for _, name := range []string{"gold", "bronze"} {
		quote, err := sys.FuncFor(name, client, "pricing", "jam_quote")
		if err != nil {
			log.Fatal(err)
		}
		n := name
		sys.Node(server).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s jam_quote(12) = %d\n", n, ret)
		}
		if _, err := quote.Call(server, [2]uint64{12, 0}).Await(); err != nil {
			log.Fatal(err)
		}
		// Await returns at delivery; Run drains the execution event while
		// this tenant's reporting hook is still armed.
		sys.Run()
	}
	sys.Node(server).OnExecuted = nil

	fmt.Println("== token-bucket admission ==")
	// A fresh metered tenant so the bucket starts full: 3 tokens, so a
	// burst of 6 back-to-back calls sheds exactly half.
	if _, err := sys.AddTenant(tenant.Config{Name: "trial", Weight: 1,
		Admission: &tenant.Admission{RatePerSec: 500_000, Burst: 3}}); err != nil {
		log.Fatal(err)
	}
	if err := sys.InstallPackageFor("trial", pricing("15")); err != nil {
		log.Fatal(err)
	}
	trialQuote, err := sys.FuncFor("trial", client, "pricing", "jam_quote")
	if err != nil {
		log.Fatal(err)
	}
	admitted, dropped := 0, 0
	for i := 0; i < 6; i++ {
		fu := trialQuote.Call(server, [2]uint64{uint64(i), 0})
		var ae *tenant.AdmissionError
		if err := fu.IssueErr(); errors.As(err, &ae) {
			dropped++
			continue
		} else if err != nil {
			log.Fatal(err)
		}
		admitted++
	}
	sys.Run()
	fmt.Printf("  burst of 6 calls against a 3-token bucket: %d admitted, %d dropped\n",
		admitted, dropped)

	fmt.Println("== weighted-fair servicing at 4x overload ==")
	res, err := workload.Run(workload.OverloadScenario(4, 4))
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range res.Tenants {
		fmt.Printf("  %-6s w=%d  goodput %8.0f msg/s  p99 %v\n",
			tr.Name, tr.Weight, tr.GoodputPerSec, tr.P99Latency)
	}
	fmt.Printf("  goodput ratio %.2f (weights 3:1), overlap window %v\n",
		res.Tenants[0].GoodputPerSec/res.Tenants[1].GoodputPerSec, res.OverlapWindow)
}
