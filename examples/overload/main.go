// Overload: per-process function overloading (paper §IV). Two-Chains does
// not follow an SPMD model — different processes can bind different
// implementations to the same symbolic name, so one injected jam behaves
// according to whichever process it lands on, "much like function
// overloading".
//
// Here a heterogeneous pool has a general-purpose node and an
// "accelerator" node. Both export tc_transform; the jam that travels is
// identical, but each node's ried resolves the name to its own kernel.
package main

import (
	"fmt"
	"log"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tc"
)

// The travelling jam: transform every u64 word of the payload through the
// node-resolved tc_transform and sum the results.
const jamApply = `
.extern tc_transform
.global jam_apply
jam_apply:
    ; r1=usr r2=usrLen
    addi sp, sp, -40
    st   lr,  [sp+0]
    st   r10, [sp+8]
    st   r11, [sp+16]
    st   r12, [sp+24]
    st   r13, [sp+32]
    mov  r10, r1
    add  r11, r1, r2
    movi r12, 0
apply_loop:
    bgeu r10, r11, apply_done
    ld   r0, [r10+0]
    callg tc_transform
    add  r12, r12, r0
    addi r10, r10, 8
    jmp  apply_loop
apply_done:
    mov  r0, r12
    ld   lr,  [sp+0]
    ld   r10, [sp+8]
    ld   r11, [sp+16]
    ld   r12, [sp+24]
    ld   r13, [sp+32]
    addi sp, sp, 40
    ret
`

// General-purpose node: plain scalar kernel, y = 3x + 1.
const riedCPU = `
.text
.global tc_transform
tc_transform:
    muli r0, r0, 3
    addi r0, r0, 1
    ret
`

// Accelerator node: a "fused" kernel, y = (x*x) >> 4.
const riedAccel = `
.text
.global tc_transform
tc_transform:
    mul  r0, r0, r0
    shri r0, r0, 4
    ret
`

func buildFor(ried string) *core.Package {
	pkg, err := core.BuildPackage("hetero", map[string]string{
		"jam_apply.ams":      jamApply,
		"ried_transform.rds": ried,
	})
	if err != nil {
		log.Fatal(err)
	}
	return pkg
}

func main() {
	// Three processes on one system: the client plus a heterogeneous
	// pool. Per-node installs give each process its own tc_transform.
	const client, cpuNode, accNode = 0, 1, 2
	sys, err := tc.NewSystem(3,
		tc.WithGeometry(mailbox.Geometry{Banks: 1, Slots: 4, FrameSize: 1024}),
		tc.WithCredits(false),
	)
	if err != nil {
		log.Fatal(err)
	}
	// The client only needs the jam; install the cpu flavour locally.
	for i, ried := range map[int]string{client: riedCPU, cpuNode: riedCPU, accNode: riedAccel} {
		if _, err := sys.Node(i).InstallPackage(buildFor(ried)); err != nil {
			log.Fatal(err)
		}
	}

	// One payload, one jam, two processes: two different transforms.
	payload := make([]byte, 8*4)
	for i, v := range []uint64{10, 20, 30, 40} {
		for j := 0; j < 8; j++ {
			payload[i*8+j] = byte(v >> (8 * j))
		}
	}
	report := func(name string) func(uint64, sim.Duration, error) {
		return func(ret uint64, _ sim.Duration, err error) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s: jam_apply(10,20,30,40) = %d\n", name, ret)
		}
	}
	sys.Node(cpuNode).OnExecuted = report("cpu-node  (3x+1 kernel)")
	sys.Node(accNode).OnExecuted = report("accel-node (x^2>>4 kernel)")

	// One handle, two destinations: the per-destination state binds
	// against each receiver's own namespace, so the same injected code
	// resolves to different kernels.
	apply, err := sys.Func(client, "hetero", "jam_apply")
	if err != nil {
		log.Fatal(err)
	}
	for _, dst := range []int{cpuNode, accNode} {
		if _, err := apply.Call(dst, [2]uint64{}, tc.Payload(payload)).Await(); err != nil {
			log.Fatal(err)
		}
	}
	sys.Run()

	fmt.Println("same injected code, process-specific behaviour — no SPMD assumption.")
}
