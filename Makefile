# Two-Chains build/test entry points. `make check` is the tier-1 gate CI
# runs: formatting, vet, build, race tests, and benchmark smoke passes
# (mesh workloads plus the handle-vs-string invocation pair, with
# -benchmem so allocation regressions surface in CI logs).
#
# `make examples` builds and runs every examples/* binary headless — the
# cheapest whole-surface smoke of the public API (CI runs it too).
#
# `make bench-json` regenerates BENCH_PR4.json — the machine-readable
# perf trajectory point (ns/op, allocs/op, simulated injections/sec,
# speedup vs the recorded pre-PR-3 baseline in bench/BASELINE_PR3.json),
# now including the composed kvstore/multi-phase scenario benchmarks.
# `make profile` captures CPU+heap profiles of BenchmarkMeshAllToAll for
# diagnosing regressions (mesh_cpu.prof / mesh_mem.prof, inspect with
# `go tool pprof`).

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt-check vet build test bench-smoke bench-json profile perf examples

check: fmt-check vet build test bench-smoke

fmt-check:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

examples:
	$(GO) build ./examples/...
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d >/dev/null || exit 1; \
	done
	@echo "all examples ran clean"

bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkMesh|BenchmarkKVStore|BenchmarkMultiPhase' -benchmem -benchtime 1x .
	$(GO) test -run xxx -bench 'BenchmarkFuncCall|BenchmarkStringInject' -benchmem -benchtime 100x .

bench-json:
	@{ $(GO) test -run xxx -bench 'BenchmarkMesh|BenchmarkKVStore|BenchmarkMultiPhase' -benchmem -benchtime 10x . && \
	   $(GO) test -run xxx -bench 'BenchmarkFuncCall$$|BenchmarkStringInject|BenchmarkFramePack' -benchmem -benchtime 200000x . && \
	   $(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem -benchtime 200000x ./internal/sim; } \
	| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR3.json -o BENCH_PR4.json
	@echo "wrote BENCH_PR4.json"

profile: vet
	$(GO) test -run xxx -bench BenchmarkMeshAllToAll -benchtime 20x \
		-cpuprofile mesh_cpu.prof -memprofile mesh_mem.prof .
	@echo "profiles: mesh_cpu.prof mesh_mem.prof (go tool pprof -top mesh_cpu.prof)"

perf:
	$(GO) run ./cmd/tcperf -e mesh
	$(GO) run ./cmd/tcperf -e scenarios
