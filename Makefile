# Two-Chains build/test entry points. `make check` is the tier-1 gate CI
# runs: formatting, vet, lint, build, race tests, and benchmark smoke
# passes (mesh workloads plus the handle-vs-string invocation pair, with
# -benchmem so allocation regressions surface in CI logs).
#
# `make lint` runs cmd/tclint — the static checkers for the ROADMAP's
# ownership-domain and determinism contracts (scratchescape,
# poolownership, detsource, sharddomain) — and fails on any diagnostic.
# Suppress a single finding with `//tclint:allow <analyzer> <reason>`;
# stale or malformed directives fail the lint themselves. The vet
# target names copylocks/loopclosure/atomic explicitly so a toolchain
# default change can never silently drop them.
#
# `make examples` builds and runs every examples/* binary headless — the
# cheapest whole-surface smoke of the public API (CI runs it too).
#
# `make bench-json` regenerates $(BENCH_OUT) (BENCH_PR10.json by
# default; override with BENCH_OUT=...) — the machine-readable perf
# trajectory point (ns/op, allocs/op, simulated injections/sec, speedup
# vs the recorded pre-PR-3 baseline in bench/BASELINE_PR3.json), now
# including the 64/128-node parallel-engine mesh pairs (workers=NumCPU
# vs workers=1 twins of the same bit-identical simulation), the
# speculative-window variant, the multi-tenant overload benchmark with
# its per-tenant goodput metrics, and the chaos-perturbed fail/rejoin
# mesh with its loss ledger. bench-smoke gates sim_inj_per_sec against
# the newest recorded trajectory file ($(SMOKE_BASELINE)) and
# BenchmarkFuncCall/BenchmarkStringInject ns/op against the JIT
# recording ($(FUNC_BASELINE), lower is better); chaos-smoke race-runs
# the fail/rejoin drain and the lookahead-fuzz violation diagnostic.
# `make profile` captures CPU+heap profiles of BenchmarkMeshAllToAll for
# diagnosing regressions (mesh_cpu.prof / mesh_mem.prof, inspect with
# `go tool pprof`).

GO ?= go
GOFMT ?= gofmt
BENCH_OUT ?= BENCH_PR10.json
SMOKE_BASELINE ?= BENCH_PR9.json
# FUNC_BASELINE gates BenchmarkFuncCall ns/op (lower is better) so the
# compiled-jam fast path can't silently regress; it points at the PR
# that recorded the JIT win.
FUNC_BASELINE ?= BENCH_PR10.json

.PHONY: check fmt-check vet lint build test bench-smoke chaos-smoke bench-json profile perf examples

check: fmt-check vet build lint test chaos-smoke bench-smoke

fmt-check:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -loopclosure -atomic ./...

lint:
	$(GO) run ./cmd/tclint ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

examples:
	$(GO) build ./examples/...
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d >/dev/null || exit 1; \
	done
	@echo "all examples ran clean"

bench-smoke:
	$(GO) test -short -run xxx -bench 'BenchmarkMesh|BenchmarkKVStore|BenchmarkMultiPhase' -benchmem -benchtime 1x . \
		> bench_smoke.out || { cat bench_smoke.out; rm -f bench_smoke.out; exit 1; }
	@cat bench_smoke.out
	@$(GO) run ./cmd/benchjson -smoke -baseline $(SMOKE_BASELINE) -metric sim_inj_per_sec -tol 0.25 < bench_smoke.out; \
		st=$$?; rm -f bench_smoke.out; exit $$st
	$(GO) test -run xxx -bench 'BenchmarkFuncCall$$|BenchmarkStringInject' -benchmem -benchtime 200000x . \
		> bench_func.out || { cat bench_func.out; rm -f bench_func.out; exit 1; }
	@cat bench_func.out
	@$(GO) run ./cmd/benchjson -smoke -baseline $(FUNC_BASELINE) -metric ns/op -tol 0.25 < bench_func.out; \
		st=$$?; rm -f bench_func.out; exit $$st

chaos-smoke:
	$(GO) test -race -run 'TestFailRejoinDrain|TestChaosLookaheadFuzzViolation' ./internal/workload

bench-json:
	@{ $(GO) test -run xxx -bench 'BenchmarkMeshFanout$$|BenchmarkMeshAllToAll$$|BenchmarkMeshHotspot$$|BenchmarkKVStore|BenchmarkMultiPhase|BenchmarkMultiTenantOverload' -benchmem -benchtime 10x . && \
	   $(GO) test -run xxx -bench 'BenchmarkMesh(AllToAll|Fanout|Hotspot)(64|128)|BenchmarkMeshChaos64' -benchmem -benchtime 1x . && \
	   $(GO) test -run xxx -bench 'BenchmarkFuncCall$$|BenchmarkStringInject|BenchmarkFramePack' -benchmem -benchtime 200000x . && \
	   $(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem -benchtime 200000x ./internal/sim; } \
	| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR3.json -o $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

profile: vet
	$(GO) test -run xxx -bench BenchmarkMeshAllToAll -benchtime 20x \
		-cpuprofile mesh_cpu.prof -memprofile mesh_mem.prof .
	@echo "profiles: mesh_cpu.prof mesh_mem.prof (go tool pprof -top mesh_cpu.prof)"

perf:
	$(GO) run ./cmd/tcperf -e mesh
	$(GO) run ./cmd/tcperf -e scenarios
