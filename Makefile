# Two-Chains build/test entry points. `make check` is the tier-1 gate CI
# runs: formatting, vet, build, race tests, and benchmark smoke passes
# (mesh workloads plus the handle-vs-string invocation pair).

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt-check vet build test bench-smoke perf

check: fmt-check vet build test bench-smoke

fmt-check:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run xxx -bench BenchmarkMesh -benchtime 1x .
	$(GO) test -run xxx -bench 'BenchmarkFuncCall|BenchmarkStringInject' -benchtime 100x .

perf:
	$(GO) run ./cmd/tcperf -e mesh
