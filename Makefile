# Two-Chains build/test entry points. `make check` is the tier-1 gate CI
# runs: formatting, vet, build, race tests, and benchmark smoke passes
# (mesh workloads plus the handle-vs-string invocation pair, with
# -benchmem so allocation regressions surface in CI logs).
#
# `make bench-json` regenerates BENCH_PR3.json — the machine-readable
# perf trajectory point (ns/op, allocs/op, simulated injections/sec,
# speedup vs the recorded pre-PR-3 baseline in bench/BASELINE_PR3.json).
# `make profile` captures CPU+heap profiles of BenchmarkMeshAllToAll for
# diagnosing regressions (mesh_cpu.prof / mesh_mem.prof, inspect with
# `go tool pprof`).

GO ?= go
GOFMT ?= gofmt

.PHONY: check fmt-check vet build test bench-smoke bench-json profile perf

check: fmt-check vet build test bench-smoke

fmt-check:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run xxx -bench BenchmarkMesh -benchmem -benchtime 1x .
	$(GO) test -run xxx -bench 'BenchmarkFuncCall|BenchmarkStringInject' -benchmem -benchtime 100x .

bench-json:
	@{ $(GO) test -run xxx -bench 'BenchmarkMesh' -benchmem -benchtime 10x . && \
	   $(GO) test -run xxx -bench 'BenchmarkFuncCall$$|BenchmarkStringInject|BenchmarkFramePack' -benchmem -benchtime 200000x . && \
	   $(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem -benchtime 200000x ./internal/sim; } \
	| $(GO) run ./cmd/benchjson -baseline bench/BASELINE_PR3.json -o BENCH_PR3.json
	@echo "wrote BENCH_PR3.json"

profile: vet
	$(GO) test -run xxx -bench BenchmarkMeshAllToAll -benchtime 20x \
		-cpuprofile mesh_cpu.prof -memprofile mesh_mem.prof .
	@echo "profiles: mesh_cpu.prof mesh_mem.prof (go tool pprof -top mesh_cpu.prof)"

perf:
	$(GO) run ./cmd/tcperf -e mesh
