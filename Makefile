# Two-Chains build/test entry points. `make check` is the tier-1 gate CI
# runs: vet, build, race tests, and a mesh benchmark smoke pass.

GO ?= go

.PHONY: check vet build test bench-smoke perf

check: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench-smoke:
	$(GO) test -run xxx -bench BenchmarkMesh -benchtime 1x .

perf:
	$(GO) run ./cmd/tcperf -e mesh
