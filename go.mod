module twochains

go 1.21
