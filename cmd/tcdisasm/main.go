// Command tcdisasm disassembles Two-Chains artifacts: relocatable objects
// (.tco), or the jams inside a built package, showing the transformed
// CALLP/LDP GOT-indirect instructions that let code execute at any address
// on a receiver.
//
// Usage:
//
//	tcdisasm object.tco
//	tcdisasm -pkg mypkg.tcpkg -jam jam_iput
package main

import (
	"flag"
	"fmt"
	"os"

	"twochains/internal/core"
	"twochains/internal/elfobj"
	"twochains/internal/isa"
)

func main() {
	pkgFile := flag.String("pkg", "", "package file to read a jam from")
	jamName := flag.String("jam", "", "jam element name inside -pkg")
	flag.Parse()

	if *pkgFile != "" {
		disasmJam(*pkgFile, *jamName)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tcdisasm object.tco | tcdisasm -pkg file -jam name")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	obj, err := elfobj.Decode(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("object %s\n.text (%d bytes):\n", obj.Name, len(obj.Text))
	text, err := isa.Disassemble(obj.Text)
	if err != nil {
		fatal(err)
	}
	fmt.Print(text)
	for _, s := range obj.Symbols {
		fmt.Printf("symbol %-24s %s+0x%x %v\n", s.Name, s.Section, s.Value, s.Binding)
	}
	for _, r := range obj.Relocs {
		fmt.Printf("reloc  %-6s %s+0x%x -> %s\n", r.Type, r.Section, r.Offset, obj.Symbols[r.Sym].Name)
	}
}

func disasmJam(pkgFile, jamName string) {
	data, err := os.ReadFile(pkgFile)
	if err != nil {
		fatal(err)
	}
	pkg, err := core.DecodePackage(data)
	if err != nil {
		fatal(err)
	}
	elem, ok := pkg.Element(jamName)
	if !ok || elem.Kind != core.ElemJam {
		fatal(fmt.Errorf("no jam %q in package %s", jamName, pkg.Name))
	}
	j := elem.Jam
	fmt.Printf("jam %s: shipped %dB (GOT %dB + ptr 8B + body %dB), entry +%d\n",
		j.Name, j.ShippedSize(), j.GotTableLen(), len(j.Body), j.Entry)
	for i, g := range j.Got {
		kind := "extern"
		if g.Local {
			kind = fmt.Sprintf("local body+%d", g.Off)
		}
		fmt.Printf("  got[%d] = %s (%s)\n", i, g.Name, kind)
	}
	text, err := isa.Disassemble(j.Body[:j.TextLen])
	if err != nil {
		fatal(err)
	}
	fmt.Print(text)
	if len(j.Body) > j.TextLen {
		fmt.Printf(".rodata (%d bytes): %q\n", len(j.Body)-j.TextLen, j.Body[j.TextLen:])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcdisasm:", err)
	os.Exit(1)
}
