// Command tcdisasm disassembles Two-Chains artifacts: relocatable objects
// (.tco), or the jams inside a built package, showing the transformed
// CALLP/LDP GOT-indirect instructions that let code execute at any address
// on a receiver.
//
// With -jit it prints the template compiler's static plan instead of
// (or alongside) the disassembly: basic-block count, the fusable
// straight-line runs, and how much of the body a single fused dispatch
// covers — the per-jam compile decisions of internal/vm's bind-time JIT,
// for both the timing (line-aware) and functional compile modes.
//
// Usage:
//
//	tcdisasm object.tco
//	tcdisasm -pkg mypkg.tcpkg -jam jam_iput
//	tcdisasm -jit -pkg mypkg.tcpkg -jam jam_iput
package main

import (
	"flag"
	"fmt"
	"os"

	"twochains/internal/core"
	"twochains/internal/elfobj"
	"twochains/internal/isa"
	"twochains/internal/vm"
)

func main() {
	pkgFile := flag.String("pkg", "", "package file to read a jam from")
	jamName := flag.String("jam", "", "jam element name inside -pkg")
	jit := flag.Bool("jit", false, "print the template compiler's static plan (blocks, fused runs, coverage)")
	flag.Parse()

	if *pkgFile != "" {
		disasmJam(*pkgFile, *jamName, *jit)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tcdisasm object.tco | tcdisasm -pkg file -jam name")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	obj, err := elfobj.Decode(data)
	if err != nil {
		fatal(err)
	}
	if *jit {
		instrs, err := isa.DecodeAll(obj.Text)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("object %s\n", obj.Name)
		printPlan(instrs)
		return
	}
	fmt.Printf("object %s\n.text (%d bytes):\n", obj.Name, len(obj.Text))
	text, err := isa.Disassemble(obj.Text)
	if err != nil {
		fatal(err)
	}
	fmt.Print(text)
	for _, s := range obj.Symbols {
		fmt.Printf("symbol %-24s %s+0x%x %v\n", s.Name, s.Section, s.Value, s.Binding)
	}
	for _, r := range obj.Relocs {
		fmt.Printf("reloc  %-6s %s+0x%x -> %s\n", r.Type, r.Section, r.Offset, obj.Symbols[r.Sym].Name)
	}
}

// printPlan dumps the bind-time compile plan of decoded code in both
// compile modes. Every region compiles — the interpreter is only
// entered per call site (budget bail, dynamic transfer out of the
// region), so the decisions worth printing are how coarse the compiled
// dispatch gets: block leaders and fused multi-instruction runs.
func printPlan(instrs []isa.Instr) {
	for _, mode := range []struct {
		name      string
		lineAware bool
	}{
		{"timing (line-aware)", true},
		{"functional", false},
	} {
		p := vm.AnalyzeRegion(instrs, 0, mode.lineAware)
		fmt.Printf("jit plan [%s]: %d instrs, %d blocks, %d fused runs covering %d instrs (%.0f%%)\n",
			mode.name, p.Instrs, p.Blocks, len(p.Runs), p.FusedOps,
			100*float64(p.FusedOps)/float64(max(p.Instrs, 1)))
		for _, r := range p.Runs {
			fmt.Printf("  run +%-4d len %d\n", r.Start, r.Len)
		}
	}
}

func disasmJam(pkgFile, jamName string, jit bool) {
	data, err := os.ReadFile(pkgFile)
	if err != nil {
		fatal(err)
	}
	pkg, err := core.DecodePackage(data)
	if err != nil {
		fatal(err)
	}
	elem, ok := pkg.Element(jamName)
	if !ok || elem.Kind != core.ElemJam {
		fatal(fmt.Errorf("no jam %q in package %s", jamName, pkg.Name))
	}
	j := elem.Jam
	fmt.Printf("jam %s: shipped %dB (GOT %dB + ptr 8B + body %dB), entry +%d\n",
		j.Name, j.ShippedSize(), j.GotTableLen(), len(j.Body), j.Entry)
	if jit {
		instrs, err := isa.DecodeAll(j.Body[:j.TextLen])
		if err != nil {
			fatal(err)
		}
		printPlan(instrs)
		return
	}
	for i, g := range j.Got {
		kind := "extern"
		if g.Local {
			kind = fmt.Sprintf("local body+%d", g.Off)
		}
		fmt.Printf("  got[%d] = %s (%s)\n", i, g.Name, kind)
	}
	text, err := isa.Disassemble(j.Body[:j.TextLen])
	if err != nil {
		fatal(err)
	}
	fmt.Print(text)
	if len(j.Body) > j.TextLen {
		fmt.Printf(".rodata (%d bytes): %q\n", len(j.Body)-j.TextLen, j.Body[j.TextLen:])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcdisasm:", err)
	os.Exit(1)
}
