// Command benchjson converts `go test -bench` output into the
// machine-readable benchmark trajectory file that seeds the repo's perf
// history (BENCH_PR3.json and successors).
//
// It reads benchmark output on stdin, parses every benchmark line into
// {ns/op, bytes/op, allocs/op, custom metrics}, optionally merges a
// recorded baseline file, and emits one JSON document with a
// speedup-vs-baseline section so regressions (or claimed wins) are
// diffable in review. The output name comes from -o (stdout without
// it); the Makefile's bench-json target supplies the per-PR file name:
//
//	go test -run xxx -bench . -benchmem . | go run ./cmd/benchjson \
//	    -baseline bench/BASELINE_PR3.json -o BENCH_PR3.json
//
// With -smoke it becomes the CI regression gate instead: for every
// benchmark present both on stdin and in the -baseline file, the chosen
// -metric (default sim_inj_per_sec) must not fall more than -tol below
// the recorded value, or the exit status is non-zero:
//
//	go test -run xxx -bench BenchmarkMesh -benchtime 1x . | \
//	    go run ./cmd/benchjson -smoke -baseline BENCH_PR5.json -tol 0.25
//
// Smoke mode prints the baseline file it compared against, and a missing
// baseline file fails with instructions instead of a raw read error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark's parsed result.
type Entry struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds the custom b.ReportMetric values by unit
	// (sim_inj_per_sec, msgs, sim_us, MB/s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Host identifies the machine shape a recording was taken on, so
// single-core trajectory files are self-identifying next to multi-core
// ones.
type Host struct {
	GoMaxProcs int `json:"go_max_procs"`
	NumCPU     int `json:"num_cpu"`
}

// File is the emitted document shape.
type File struct {
	// Note describes how to regenerate the numbers.
	Note string `json:"note"`
	// Host is the recording machine's shape.
	Host *Host `json:"host,omitempty"`
	// Baseline is the pre-change recording this run is compared against.
	Baseline map[string]*Entry `json:"baseline,omitempty"`
	// Current is this run.
	Current map[string]*Entry `json:"current"`
	// SpeedupNsPerOp is baseline ns/op divided by current ns/op for every
	// benchmark present in both sections: >1 is faster.
	SpeedupNsPerOp map[string]float64 `json:"speedup_ns_per_op,omitempty"`
}

func parse(r *bufio.Scanner) (map[string]*Entry, error) {
	out := map[string]*Entry{}
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		// Strip the -P (GOMAXPROCS) suffix go appends for parallel runs.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := &Entry{}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e.Iterations = n
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = v
			}
		}
		out[name] = e
	}
	return out, r.Err()
}

// loadBaseline reads a baseline file, accepting either a full File
// (using its Current section) or a bare name->Entry map.
func loadBaseline(path string) (map[string]*Entry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf(
			"benchjson: baseline file %s does not exist — record it first (`make bench-json BENCH_OUT=%s`) or point -baseline at the newest recorded trajectory file",
			path, path)
	}
	if err != nil {
		return nil, fmt.Errorf("benchjson: baseline %s: %v", path, err)
	}
	var asFile File
	if err := json.Unmarshal(raw, &asFile); err == nil && len(asFile.Current) > 0 {
		return asFile.Current, nil
	}
	var m map[string]*Entry
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("benchjson: baseline %s: %v", path, err)
	}
	return m, nil
}

// smokeCheck compares one metric of every benchmark present in both
// runs against the recorded baseline with a relative tolerance band; it
// reports which baseline file the comparisons are against and whether
// any regressed below the band. Custom metrics are rates
// (higher-is-better); the built-in "ns/op" metric gates latency, so its
// ratio is inverted (lower-is-better).
func smokeCheck(cur, base map[string]*Entry, basePath, metric string, tol float64) bool {
	ok := true
	compared := 0
	fmt.Printf("benchjson smoke: comparing %s against baseline file %s\n", metric, basePath)
	for name, b := range base {
		c, present := cur[name]
		if !present {
			continue
		}
		var cv, bv, ratio float64
		if metric == "ns/op" {
			cv, bv = c.NsPerOp, b.NsPerOp
			if cv <= 0 || bv <= 0 {
				continue
			}
			ratio = bv / cv
		} else {
			if c.Metrics == nil || b.Metrics == nil {
				continue
			}
			var cok, bok bool
			cv, cok = c.Metrics[metric]
			bv, bok = b.Metrics[metric]
			if !cok || !bok || bv <= 0 {
				continue
			}
			ratio = cv / bv
		}
		compared++
		status := "ok"
		if ratio < 1-tol {
			status = "REGRESSED"
			ok = false
		}
		fmt.Printf("benchjson smoke: %-28s %s %.0f vs baseline %.0f (%.2fx, tolerance -%.0f%%) %s\n",
			name, metric, cv, bv, ratio, tol*100, status)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchjson smoke: no comparable benchmarks between stdin and baseline")
		return false
	}
	return ok
}

func main() {
	baselinePath := flag.String("baseline", "", "recorded baseline JSON (File or bare name->Entry map)")
	outPath := flag.String("o", "", "output path (default stdout)")
	note := flag.String("note", "regenerate with `make bench-json`", "provenance note")
	smoke := flag.Bool("smoke", false, "regression-gate mode: compare -metric against -baseline and exit non-zero on regression")
	metric := flag.String("metric", "sim_inj_per_sec", "custom metric compared in -smoke mode")
	tol := flag.Float64("tol", 0.25, "relative tolerance band in -smoke mode (0.25 = fail below 75% of baseline)")
	flag.Parse()

	cur, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *smoke {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -smoke needs -baseline")
			os.Exit(2)
		}
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !smokeCheck(cur, base, *baselinePath, *metric, *tol) {
			os.Exit(1)
		}
		return
	}
	f := &File{
		Note:    *note,
		Host:    &Host{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()},
		Current: cur,
	}
	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Baseline = base
		f.SpeedupNsPerOp = map[string]float64{}
		for name, b := range f.Baseline {
			if c, ok := cur[name]; ok && c.NsPerOp > 0 && b.NsPerOp > 0 {
				f.SpeedupNsPerOp[name] = b.NsPerOp / c.NsPerOp
			}
		}
	}
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
