// Command tcc is the AMC compiler driver: it compiles AMC (C subset)
// active-message sources to JAM assembly or to relocatable objects — the
// role GCC plays in the paper's build flow.
//
// Usage:
//
//	tcc -S input.amc            # emit assembly to stdout
//	tcc -o out.tco input.amc    # compile to a relocatable object
package main

import (
	"flag"
	"fmt"
	"os"

	"twochains/internal/amcc"
)

func main() {
	emitAsm := flag.Bool("S", false, "emit JAM assembly instead of an object")
	out := flag.String("o", "", "output object file (default input with .tco)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tcc [-S] [-o out.tco] input.amc")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	if *emitAsm {
		text, err := amcc.CompileToAsm(in, string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		return
	}
	obj, err := amcc.Compile(in, string(src))
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = in + ".tco"
	}
	if err := os.WriteFile(path, obj.Encode(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: text=%dB rodata=%dB data=%dB bss=%dB -> %s\n",
		in, len(obj.Text), len(obj.Rodata), len(obj.Data), obj.BssSize, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcc:", err)
	os.Exit(1)
}
