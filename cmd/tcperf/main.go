// Command tcperf is the Two-Chains performance tester: it regenerates the
// tables behind every figure in the paper's evaluation (§VII) plus the
// design-choice ablations, on the simulated testbed.
//
// Usage:
//
//	tcperf -list
//	tcperf -e fig9 [-scale 1.0]
//	tcperf -e all [-scale 0.5] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"twochains/internal/perf"
)

func main() {
	var (
		expName = flag.String("e", "", "experiment to run (see -list), or 'all'")
		scale   = flag.Float64("scale", 1.0, "iteration-count multiplier")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list    = flag.Bool("list", false, "list available experiments")
		workers = flag.Int("workers", runtime.NumCPU(),
			"engine workers for parallel-capable experiments (mesh); 1 = sequential")
		spec = flag.Float64("spec", 0,
			"speculative-window budget in simulated microseconds for parallel experiments; 0 = conservative")
	)
	flag.Parse()

	if *list || *expName == "" {
		fmt.Println("available experiments:")
		for _, e := range perf.Experiments() {
			fmt.Printf("  %-18s %s\n", e.Name, e.Title)
		}
		if *expName == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opts := perf.Options{Scale: *scale, Workers: *workers, SpecUS: *spec}
	run := func(e perf.Experiment) error {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if *csv {
			tab.FprintCSV(os.Stdout)
		} else {
			tab.Fprint(os.Stdout)
			fmt.Printf("(%s in %.1fs)\n\n", e.Name, time.Since(start).Seconds())
		}
		return nil
	}

	if *expName == "all" {
		for _, e := range perf.Experiments() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, "tcperf:", err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := perf.Lookup(*expName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tcperf: unknown experiment %q (try -list)\n", *expName)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, "tcperf:", err)
		os.Exit(1)
	}
}
