// Command tcasm assembles JAM assembly into a relocatable Two-Chains
// object, the role GNU as plays in the paper's toolchain.
//
// Usage:
//
//	tcasm -o out.tco input.s
package main

import (
	"flag"
	"fmt"
	"os"

	"twochains/internal/asm"
)

func main() {
	out := flag.String("o", "", "output object file (default input with .tco)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tcasm [-o out.tco] input.s")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	obj, err := asm.Assemble(in, string(src))
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = in + ".tco"
	}
	if err := os.WriteFile(path, obj.Encode(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: text=%dB rodata=%dB data=%dB bss=%dB symbols=%d relocs=%d -> %s\n",
		in, len(obj.Text), len(obj.Rodata), len(obj.Data), obj.BssSize,
		len(obj.Symbols), len(obj.Relocs), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcasm:", err)
	os.Exit(1)
}
