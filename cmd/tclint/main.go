// Command tclint is the multichecker for the repo's ownership-domain
// and determinism contracts: it runs the internal/analysis suite
// (scratchescape, poolownership, detsource, sharddomain) over the named
// packages and exits nonzero on any diagnostic.
//
// Usage:
//
//	tclint [-run regex] [-json] [packages...]
//
// With no packages, ./... is checked. -run restricts the suite to
// analyzers whose name matches the regex (allow-directive staleness is
// then only checked for the selected analyzers); -json emits the
// diagnostics as a JSON array of {file, line, col, analyzer, message}
// objects instead of the file:line:col text form.
//
// Suppressions: a `//tclint:allow <analyzer> <reason>` comment on the
// offending line (or the line above) waives one analyzer there. The
// directive is itself linted — an unknown analyzer name, a missing
// reason, or a directive that no longer suppresses anything is an
// error, so stale escape hatches cannot accumulate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"twochains/internal/analysis"
)

func main() {
	runPat := flag.String("run", "", "run only analyzers matching this regex")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tclint [-run regex] [-json] [packages...]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := analysis.All()
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tclint: bad -run regex: %v\n", err)
			os.Exit(2)
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				sel = append(sel, a)
			}
		}
		if len(sel) == 0 {
			fmt.Fprintf(os.Stderr, "tclint: -run %q matches no analyzer\n", *runPat)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.NewLoader().Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tclint: %v\n", err)
		os.Exit(2)
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tclint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "tclint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "tclint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
