// Command tcpkg is the Two-Chains package tool (paper §IV). It builds
// installable package files from source directories of canonically
// named elements — jam_NAME.amc files (mobile active message
// functions) and ried_NAME.rdc files (relocatable interface
// distributions) — and it lists and inspects the application packages
// registered in-tree via the tcapp authoring layer (tcbench, kvstore,
// histo, ...), printing their elements, exported namespaces, and frame
// sizes.
//
// Usage:
//
//	tcpkg list
//	tcpkg build -name mypkg -src ./src/mypkg -o mypkg.tcpkg
//	tcpkg inspect mypkg.tcpkg      (a built package file)
//	tcpkg inspect kvstore          (a tcapp-registered app)
//	tcpkg gensrc -dir DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"twochains/internal/core"
	"twochains/internal/tcapp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list()
	case "build":
		build(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "gensrc":
		gensrc(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tcpkg list                      (registered application packages)
  tcpkg build -name NAME -src DIR [-o FILE]
  tcpkg inspect FILE-or-APPNAME
  tcpkg gensrc -dir DIR           (write the canonical tcbench sources)`)
	os.Exit(2)
}

// list builds every registered app and prints a one-line summary each.
func list() {
	for _, name := range tcapp.Names() {
		app, _ := tcapp.Lookup(name)
		pkg, err := app.Build()
		if err != nil {
			fmt.Printf("%-10s BUILD ERROR: %v\n", name, err)
			continue
		}
		jams, rieds := 0, 0
		maxFrame := 0
		for _, e := range pkg.Elements {
			switch e.Kind {
			case core.ElemJam:
				jams++
				if n, err := core.InjectedFrameLen(e, 0); err == nil && n > maxFrame {
					maxFrame = n
				}
			case core.ElemRied:
				rieds++
			}
		}
		oracle := " "
		if app.NewOracle != nil {
			oracle = "*"
		}
		fmt.Printf("%-10s %d jams, %d rieds, max frame %4dB %s %s\n",
			name, jams, rieds, maxFrame, oracle, app.Doc)
	}
	fmt.Println("(* = ships a native oracle; frame sizes are zero-payload injected frames)")
}

// gensrc writes the benchmark package sources to a directory, so the full
// source -> tcpkg -> install flow can be exercised from the shell.
func gensrc(args []string) {
	fs := flag.NewFlagSet("gensrc", flag.ExitOnError)
	dir := fs.String("dir", "", "destination directory")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *dir == "" {
		usage()
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for name, src := range core.BenchPackageSources() {
		if err := os.WriteFile(filepath.Join(*dir, name), []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", filepath.Join(*dir, name))
	}
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	name := fs.String("name", "", "package name")
	src := fs.String("src", "", "source directory of jam_*.amc and ried_*.rdc files")
	out := fs.String("o", "", "output file (default NAME.tcpkg)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *name == "" || *src == "" {
		usage()
	}
	entries, err := os.ReadDir(*src)
	if err != nil {
		fatal(err)
	}
	sources := map[string]string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fn := e.Name()
		ok := false
		for _, suffix := range []string{".amc", ".rdc", ".ams", ".rds"} {
			if strings.HasSuffix(fn, suffix) {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(*src, fn))
		if err != nil {
			fatal(err)
		}
		sources[fn] = string(data)
	}
	if len(sources) == 0 {
		fatal(fmt.Errorf("no element sources (jam_*.amc / ried_*.rdc) in %s", *src))
	}
	pkg, err := core.BuildPackage(*name, sources)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *name + ".tcpkg"
	}
	if err := os.WriteFile(path, pkg.Encode(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("built package %s -> %s\n", *name, path)
	describe(pkg)
}

// inspect describes a built package file, or — when the argument names
// a tcapp-registered app instead of a file — a freshly built registry
// package.
func inspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	arg := args[0]
	if _, statErr := os.Stat(arg); statErr != nil {
		if app, ok := tcapp.Lookup(arg); ok {
			pkg, err := app.Build()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("package %s (tcapp registry)  %s\n", pkg.Name, app.Doc)
			describe(pkg)
			return
		}
		fatal(fmt.Errorf("%s is neither a readable file nor a registered app (registered: %v)",
			arg, tcapp.Names()))
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		fatal(err)
	}
	pkg, err := core.DecodePackage(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("package %s\n", pkg.Name)
	describe(pkg)
}

func describe(pkg *core.Package) {
	for _, e := range pkg.Elements {
		switch e.Kind {
		case core.ElemJam:
			frame, _ := core.InjectedFrameLen(e, 0)
			fmt.Printf("  jam  %-24s id=%d shipped=%dB frame>=%dB got=%d externs=%v\n",
				e.Name, e.ID, e.Jam.ShippedSize(), frame, len(e.Jam.Got), e.Jam.Externs())
		case core.ElemRied:
			names := make([]string, 0, len(e.Ried.Exports))
			for _, s := range e.Ried.Exports {
				names = append(names, s.Name)
			}
			sort.Strings(names)
			fmt.Printf("  ried %-24s id=%d image=%dB namespace=%v\n",
				e.Name, e.ID, e.Ried.TotalSize, names)
		}
	}
	if pkg.LocalLib != nil {
		fmt.Printf("  local function library: %dB text, %d exports\n",
			pkg.LocalLib.TextLen, len(pkg.LocalLib.Exports))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcpkg:", err)
	os.Exit(1)
}
