// Command tcpkg is the Two-Chains package build tool (paper §IV): it takes
// a source directory of canonically named elements — jam_NAME.amc files
// (mobile active message functions) and ried_NAME.rdc files (relocatable
// interface distributions) — and produces an installable package file
// containing the transformed jams, the linked rieds, and the Local
// Function shared library.
//
// Usage:
//
//	tcpkg build -name mypkg -src ./src/mypkg -o mypkg.tcpkg
//	tcpkg inspect mypkg.tcpkg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"twochains/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "gensrc":
		gensrc(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tcpkg build -name NAME -src DIR [-o FILE]
  tcpkg inspect FILE
  tcpkg gensrc -dir DIR    (write the canonical tcbench sources)`)
	os.Exit(2)
}

// gensrc writes the benchmark package sources to a directory, so the full
// source -> tcpkg -> install flow can be exercised from the shell.
func gensrc(args []string) {
	fs := flag.NewFlagSet("gensrc", flag.ExitOnError)
	dir := fs.String("dir", "", "destination directory")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *dir == "" {
		usage()
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for name, src := range core.BenchPackageSources() {
		if err := os.WriteFile(filepath.Join(*dir, name), []byte(src), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", filepath.Join(*dir, name))
	}
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	name := fs.String("name", "", "package name")
	src := fs.String("src", "", "source directory of jam_*.amc and ried_*.rdc files")
	out := fs.String("o", "", "output file (default NAME.tcpkg)")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *name == "" || *src == "" {
		usage()
	}
	entries, err := os.ReadDir(*src)
	if err != nil {
		fatal(err)
	}
	sources := map[string]string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fn := e.Name()
		ok := false
		for _, suffix := range []string{".amc", ".rdc", ".ams", ".rds"} {
			if strings.HasSuffix(fn, suffix) {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		data, err := os.ReadFile(filepath.Join(*src, fn))
		if err != nil {
			fatal(err)
		}
		sources[fn] = string(data)
	}
	if len(sources) == 0 {
		fatal(fmt.Errorf("no element sources (jam_*.amc / ried_*.rdc) in %s", *src))
	}
	pkg, err := core.BuildPackage(*name, sources)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *name + ".tcpkg"
	}
	if err := os.WriteFile(path, pkg.Encode(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("built package %s -> %s\n", *name, path)
	describe(pkg)
}

func inspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	pkg, err := core.DecodePackage(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("package %s\n", pkg.Name)
	describe(pkg)
}

func describe(pkg *core.Package) {
	for _, e := range pkg.Elements {
		switch e.Kind {
		case core.ElemJam:
			fmt.Printf("  jam  %-24s id=%d shipped=%dB got=%d externs=%v\n",
				e.Name, e.ID, e.Jam.ShippedSize(), len(e.Jam.Got), e.Jam.Externs())
		case core.ElemRied:
			fmt.Printf("  ried %-24s id=%d image=%dB exports=%d externs=%v\n",
				e.Name, e.ID, e.Ried.TotalSize, len(e.Ried.Exports), e.Ried.Externs())
		}
	}
	if pkg.LocalLib != nil {
		fmt.Printf("  local function library: %dB text, %d exports\n",
			pkg.LocalLib.TextLen, len(pkg.LocalLib.Exports))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcpkg:", err)
	os.Exit(1)
}
