// Command tcrun loads a built package onto a single-node simulated machine
// and invokes one of its jams directly — the fastest way to smoke-test a
// package from the shell before deploying it to a cluster.
//
// Usage:
//
//	tcrun -pkg tcbench.tcpkg -jam jam_sssum -payload 64
//	tcrun -pkg tcbench.tcpkg -jam jam_iput -arg0 42 -payload 256 -injected
//
// With -injected the jam takes the full injection path: packed into a
// frame, GOT table bound by the sender, delivered through the simulated
// fabric into a reactive mailbox, and executed from the arrived bytes.
// Without it, the Local Function library copy is invoked by ID.
package main

import (
	"flag"
	"fmt"
	"os"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

func main() {
	var (
		pkgFile  = flag.String("pkg", "", "package file (from tcpkg build)")
		jam      = flag.String("jam", "", "jam element to run")
		arg0     = flag.Uint64("arg0", 1, "first argument word")
		arg1     = flag.Uint64("arg1", 0, "second argument word")
		payload  = flag.Int("payload", 64, "payload size in bytes (patterned)")
		injected = flag.Bool("injected", true, "use Injected Function (false: Local Function)")
	)
	flag.Parse()
	if *pkgFile == "" || *jam == "" {
		fmt.Fprintln(os.Stderr, "usage: tcrun -pkg FILE -jam NAME [-arg0 N] [-arg1 N] [-payload N] [-injected=false]")
		os.Exit(2)
	}
	data, err := os.ReadFile(*pkgFile)
	if err != nil {
		fatal(err)
	}
	pkg, err := core.DecodePackage(data)
	if err != nil {
		fatal(err)
	}
	if _, ok := pkg.Element(*jam); !ok {
		fatal(fmt.Errorf("no element %q in package %s", *jam, pkg.Name))
	}

	cl := core.NewCluster(core.DefaultClusterConfig())
	client, err := cl.AddNode("client", core.DefaultNodeConfig())
	if err != nil {
		fatal(err)
	}
	server, err := cl.AddNode("server", core.DefaultNodeConfig())
	if err != nil {
		fatal(err)
	}
	for _, n := range []*core.Node{client, server} {
		if _, err := n.InstallPackage(pkg); err != nil {
			fatal(err)
		}
	}
	usr := make([]byte, *payload)
	for i := range usr {
		usr[i] = byte(i)
	}
	frame := 64
	for _, e := range pkg.Elements {
		if e.Kind == core.ElemJam {
			need := mailbox.HeaderSize + mailbox.PreSize + e.Jam.ShippedSize() +
				mailbox.ArgsSize + len(usr) + mailbox.SigSize
			need = (need + 63) / 64 * 64
			if need > frame {
				frame = need
			}
		}
	}
	geom := mailbox.Geometry{Banks: 1, Slots: 2, FrameSize: frame}
	if err := server.EnableMailbox(mailbox.DefaultReceiverConfig(geom)); err != nil {
		fatal(err)
	}
	ch, err := core.Connect(client, server, core.ChannelOptions{})
	if err != nil {
		fatal(err)
	}

	server.OnExecuted = func(ret uint64, cost sim.Duration, err error) {
		if err != nil {
			fmt.Printf("execution FAULTED: %v\n", err)
			return
		}
		fmt.Printf("ret = %d (0x%x), simulated execution cost %v\n", ret, ret, cost)
	}
	args := [2]uint64{*arg0, *arg1}
	if *injected {
		err = ch.Inject(pkg.Name, *jam, args, usr, nil)
	} else {
		err = ch.CallLocal(pkg.Name, *jam, args, usr, nil)
	}
	if err != nil {
		fatal(err)
	}
	cl.Run()

	mode := "Injected Function"
	if !*injected {
		mode = "Local Function"
	}
	fmt.Printf("%s: %s(%d, %d) with %dB payload, frame %dB, end-to-end %v\n",
		mode, *jam, *arg0, *arg1, *payload, frame, sim.Duration(cl.Eng.Now()))
	if out := server.Stdout.String(); out != "" {
		fmt.Printf("server stdout:\n%s", out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcrun:", err)
	os.Exit(1)
}
