// Command tcrun loads a package onto a simulated two-node system and
// invokes one of its jams — the fastest way to smoke-test a package
// from the shell before deploying it to a cluster. The package comes
// from a built file (-pkg) or straight from the tcapp registry (-app).
//
// Usage:
//
//	tcrun -pkg tcbench.tcpkg -jam jam_sssum -payload 64
//	tcrun -pkg tcbench.tcpkg -jam jam_iput -arg0 42 -payload 256 -injected
//	tcrun -app kvstore -jam kv_put -arg0 7 -arg1 21
//	tcrun -app kvstore -jam kv_put -tenant gold
//
// With -tenant the package installs into that tenant's namespace view
// instead of the base namespace, and the call goes through the tenant's
// handle — the element binds against the tenant's own package instance,
// so another tenant (or the base namespace) could hold a different
// version of the same app without collision.
//
// With -injected the jam takes the full injection path: packed into a
// frame, GOT table bound by the sender, delivered through the simulated
// fabric into a reactive mailbox, and executed from the arrived bytes.
// Without it, the Local Function library copy is invoked by ID. The send
// goes through a pre-resolved tc.Func handle whose future is awaited on
// the simulation engine.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tc"
	"twochains/internal/tcapp"
	"twochains/internal/tenant"
)

func main() {
	var (
		pkgFile  = flag.String("pkg", "", "package file (from tcpkg build)")
		appName  = flag.String("app", "", "tcapp-registered application (alternative to -pkg)")
		jam      = flag.String("jam", "", "jam element to run (the jam_ prefix may be omitted)")
		arg0     = flag.Uint64("arg0", 1, "first argument word")
		arg1     = flag.Uint64("arg1", 0, "second argument word")
		payload  = flag.Int("payload", 64, "payload size in bytes (patterned)")
		injected = flag.Bool("injected", true, "use Injected Function (false: Local Function)")
		backend  = flag.String("backend", "", "fabric backend (default simnet)")
		tenName  = flag.String("tenant", "", "install and call through this tenant's package namespace")
		workers  = flag.Int("workers", runtime.NumCPU(),
			"engine workers; > 1 places the two nodes in separate fabric shards (spine-linked topology) on the multi-core conservative engine")
	)
	flag.Parse()
	if (*pkgFile == "") == (*appName == "") || *jam == "" {
		fmt.Fprintln(os.Stderr, "usage: tcrun {-pkg FILE | -app NAME} -jam NAME [-arg0 N] [-arg1 N] [-payload N] [-injected=false]")
		os.Exit(2)
	}
	var pkg *core.Package
	if *appName != "" {
		var err error
		if pkg, err = tcapp.Build(*appName); err != nil {
			fatal(err)
		}
	} else {
		data, err := os.ReadFile(*pkgFile)
		if err != nil {
			fatal(err)
		}
		if pkg, err = core.DecodePackage(data); err != nil {
			fatal(err)
		}
	}
	if _, ok := pkg.Element(*jam); !ok {
		if _, ok := pkg.Element("jam_" + *jam); !ok {
			fatal(fmt.Errorf("no element %q in package %s", *jam, pkg.Name))
		}
		*jam = "jam_" + *jam
	}

	usr := make([]byte, *payload)
	for i := range usr {
		usr[i] = byte(i)
	}
	frame := 64
	for _, e := range pkg.Elements {
		if e.Kind == core.ElemJam {
			need, err := core.InjectedFrameLen(e, len(usr))
			if err != nil {
				fatal(err)
			}
			if need > frame {
				frame = need
			}
		}
	}

	sysOpts := []tc.SystemOpt{
		tc.WithGeometry(mailbox.Geometry{Banks: 1, Slots: 2, FrameSize: frame}),
		tc.WithCredits(false),
		tc.WithBackend(*backend),
	}
	if *workers > 1 {
		// The parallel engine needs one shard per worker-parallel domain;
		// a 2-node run splits into two spine-linked shards (this changes
		// the modeled topology: cross-node puts pay the uplink hop).
		sysOpts = append(sysOpts, tc.WithWorkers(*workers), tc.WithShards(2))
	}
	sys, err := tc.NewSystem(2, sysOpts...)
	if err != nil {
		fatal(err)
	}
	if *tenName != "" {
		if _, err := sys.AddTenant(tenant.Config{Name: *tenName, Weight: 1}); err != nil {
			fatal(err)
		}
		if err := sys.InstallPackageFor(*tenName, pkg); err != nil {
			fatal(err)
		}
	} else if err := sys.InstallPackage(pkg); err != nil {
		fatal(err)
	}
	server := sys.Node(1)
	server.OnExecuted = func(ret uint64, cost sim.Duration, err error) {
		if err != nil {
			fmt.Printf("execution FAULTED: %v\n", err)
			return
		}
		fmt.Printf("ret = %d (0x%x), simulated execution cost %v\n", ret, ret, cost)
	}

	// Bind once, call once: the handle pre-resolves the element, the
	// future awaits delivery deterministically, and Run drains execution.
	var fn *tc.Func
	if *tenName != "" {
		fn, err = sys.FuncFor(*tenName, 0, pkg.Name, *jam)
	} else {
		fn, err = sys.Func(0, pkg.Name, *jam)
	}
	if err != nil {
		fatal(err)
	}
	callOpts := []tc.CallOpt{tc.Payload(usr)}
	if !*injected {
		callOpts = append(callOpts, tc.Local())
	}
	if _, err := fn.Call(1, [2]uint64{*arg0, *arg1}, callOpts...).Await(); err != nil {
		fatal(err)
	}
	sys.Run()

	mode := "Injected Function"
	if !*injected {
		mode = "Local Function"
	}
	via := ""
	if *tenName != "" {
		via = fmt.Sprintf(" via tenant %q", *tenName)
	}
	fmt.Printf("%s%s: %s(%d, %d) with %dB payload, frame %dB, end-to-end %v\n",
		mode, via, *jam, *arg0, *arg1, *payload, frame, sim.Duration(sys.Now()))
	if out := server.Stdout.String(); out != "" {
		fmt.Printf("server stdout:\n%s", out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tcrun:", err)
	os.Exit(1)
}
