package analysis

import (
	"go/ast"
	"go/types"
)

// DetSource polices the determinism contract inside the simulation
// packages (config.go's simPackages): equal seeds must give
// bit-identical digests and simulated times at every worker count, so
// between plan generation and digest emission nothing may consult a
// nondeterministic source. Forbidden:
//
//   - time.Now / time.Since — simulated time comes from the engine;
//   - the global math/rand source (rand.Int, rand.Shuffle, ...) —
//     all randomness flows from seeded sim.RNG streams (rand.New over
//     an explicit source remains legal);
//   - map iteration with side effects — Go randomizes range order, so
//     a loop that emits events/digests/plan entries directly from a map
//     must snapshot and sort its keys first (pure collection loops,
//     e.g. gathering keys to sort, are fine);
//   - `go` statements outside sim.Group's worker machinery — shard
//     workers are the only goroutines the deterministic merge accounts
//     for.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "simulation packages must not read wall clocks, global rand, unsorted maps, or spawn stray goroutines",
	Run:  runDetSource,
}

// globalRandExempt are the math/rand package functions that do not
// touch the global source: constructors over explicit seeds.
var globalRandExempt = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDetSource(pass *Pass) error {
	if !inSimPackages(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			var fname string
			if ok {
				fname = funcDisplayName(fd)
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.SelectorExpr:
					checkForbiddenSelector(pass, st)
				case *ast.GoStmt:
					if !goroutineAllow[pass.Pkg.Path()][fname] {
						pass.Reportf(st.Pos(), "go statement outside sim.Group's worker machinery; shard workers are the only goroutines the deterministic merge accounts for")
					}
				case *ast.RangeStmt:
					checkMapRange(pass, st)
				}
				return true
			})
		}
	}
	return nil
}

// funcDisplayName renders a FuncDecl as name or (*Recv).name /
// (Recv).name, matching the goroutineAllow keys.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	switch rt := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := rt.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return "(" + rt.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func checkForbiddenSelector(pass *Pass, sel *ast.SelectorExpr) {
	pkg := pkgNameOf(pass.Info, sel.X)
	if pkg == nil {
		return
	}
	switch pkg.Path() {
	case "time":
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			pass.Reportf(sel.Pos(), "wall-clock time.%s in a simulation package; simulated time comes from the engine (sim.Engine.Now)", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if globalRandExempt[sel.Sel.Name] {
			return
		}
		// Only functions draw from the global source; type and const
		// references (rand.Rand, rand.Source) are fine.
		if obj := pass.Info.Uses[sel.Sel]; obj != nil {
			if _, isFunc := obj.(*types.Func); !isFunc {
				return
			}
		}
		pass.Reportf(sel.Pos(), "global math/rand source (rand.%s) in a simulation package; draw from a seeded sim.RNG stream", sel.Sel.Name)
	}
}

// checkMapRange flags iteration over a map whose body has side effects
// beyond collecting into locals: Go randomizes range order, so any
// call/send inside the loop feeds downstream state in nondeterministic
// order. The sanctioned shape — append keys to a slice, sort, iterate
// the slice — has a call-free map loop and passes.
func checkMapRange(pass *Pass, st *ast.RangeStmt) {
	tv, ok := pass.Info.Types[st.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var effect ast.Node
	ast.Inspect(st.Body, func(n ast.Node) bool {
		if effect != nil {
			return false
		}
		switch c := n.(type) {
		case *ast.CallExpr:
			if isPureCollectionCall(pass.Info, c) {
				return true
			}
			effect = c
			return false
		case *ast.SendStmt:
			effect = c
			return false
		}
		return true
	})
	if effect != nil {
		pass.Reportf(st.For, "map iteration with side effects in a simulation package; range order is randomized — snapshot the keys, sort, then iterate")
	}
}

// isPureCollectionCall reports whether call cannot observe iteration
// order downstream: builtins (append/len/cap/...) and type conversions.
func isPureCollectionCall(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true // type conversion
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
