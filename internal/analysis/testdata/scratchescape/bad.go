// Fixture: every escape class of the scratch-lifetime rule, each
// reported at the exact offending token.
package fixture

import (
	"twochains/internal/mailbox"
	"twochains/internal/mem"
)

type sink struct {
	d    *mailbox.Delivery
	view []byte
}

var global *mailbox.Delivery

func storeToField(s *sink, d *mailbox.Delivery) {
	s.d = d // want `scratch \*mailbox\.Delivery stored to field d`
}

func storeToGlobalMapChan(d *mailbox.Delivery, ch chan *mailbox.Delivery, m map[int]*mailbox.Delivery) {
	global = d // want `stored to package-level var global`
	m[0] = d   // want `stored into a map or slice element`
	ch <- d    // want `sent on a channel`
}

func capturedByGoroutine(d *mailbox.Delivery) {
	go func() { _ = d.Seq }() // want `captured by a goroutine`
}

func capturedByDefer(d *mailbox.Delivery) {
	defer func() { _ = d.Seq }() // want `captured by a deferred call`
}

func returnedThroughAlias(d *mailbox.Delivery) *mailbox.Delivery {
	alias := d
	return alias // want `returned from its callback`
}

func appended(d *mailbox.Delivery, list []*mailbox.Delivery) []*mailbox.Delivery {
	return append(list, d) // want `appended to a slice`
}

func viewEscapes(s *sink, as *mem.AddressSpace) {
	v, err := as.ViewMut(0, 8)
	if err != nil {
		return
	}
	s.view = v // want `mem view slice stored to field view`
}

func closureCallbackEscapes(s *sink) func(*mailbox.Delivery) {
	return func(d *mailbox.Delivery) {
		s.d = d // want `stored to field d`
	}
}
