// Fixture (negative twins): legal flow through locals, value copies,
// and calls — none of these may be reported.
package fixture

import (
	"twochains/internal/mailbox"
	"twochains/internal/mem"
)

type retained struct {
	copyD mailbox.Delivery
	data  []byte
}

func read(d *mailbox.Delivery) uint32 { return d.Seq }

func legalFlow(s *retained, d *mailbox.Delivery, as *mem.AddressSpace) {
	local := d      // local alias: fine
	_ = read(local) // flow through a call: fine
	s.copyD = *d    // value copy to a field: fine (the copy is owned)

	v, err := as.View(0, 16)
	if err != nil {
		return
	}
	s.data = append([]byte(nil), v...) // copying the view's bytes: fine
	_ = v[0]                           // reading inside the event: fine
}
