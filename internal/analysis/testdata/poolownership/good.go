// Fixture (negative twins): hand-off then a fresh epoch, or no touch at
// all — none of these may be reported.
package fixture

import (
	"twochains/internal/mailbox"
	"twochains/internal/tc"
)

func useBeforeSend(s *mailbox.Sender) {
	msg := mailbox.GetMessage()
	msg.Args[0] = 7
	msg.Kind = mailbox.KindData
	s.Send(msg, nil)
}

func reassignStartsNewEpoch(s *mailbox.Sender) {
	msg := mailbox.GetMessage()
	s.Send(msg, nil)
	msg = mailbox.GetMessage() // fresh frame: new ownership epoch
	msg.Args[0] = 1
	s.Send(msg, nil)
}

func releaseThenDone(fu *tc.Future, next *tc.Future) {
	fu.Release()
	fu = next // rebound handle: new epoch
	_, _ = fu.Result()
}
