// Fixture: uses after the pooling hand-off points — Message after
// Send/SendBatch, Future after Release — each reported at the exact
// reaching use.
package fixture

import (
	"twochains/internal/mailbox"
	"twochains/internal/tc"
)

func useAfterSend(s *mailbox.Sender) {
	msg := mailbox.GetMessage()
	msg.Args[0] = 7
	s.Send(msg, nil)
	msg.Args[1] = 9 // want `use of \*mailbox\.Message msg after Send`
}

func useAfterSendBatch(s *mailbox.Sender, msgs []*mailbox.Message) {
	s.SendBatch(msgs, nil)
	_ = len(msgs) // want `use of message batch msgs after SendBatch`
}

func capturedByCompletion(s *mailbox.Sender) {
	msg := mailbox.GetMessage()
	s.Send(msg, func(info mailbox.SendInfo) {
		_ = msg.Kind // want `msg captured by the completion callback of its own Send`
	})
}

func futureAfterRelease(fu *tc.Future) {
	fu.Release()
	_, _ = fu.Result() // want `use of tc\.Future fu after Release`
}
