// Fixture: synchronization creeping into documented shard-local types
// (this fixture claims the mailbox package path so the real ownership
// table drives it — Sender is shard-local, types not in the table are
// not checked).
package fixture

import (
	"sync"
	"sync/atomic"
)

type Sender struct {
	mu       sync.Mutex   // want `shard-local type Sender declares a sync\.Mutex field`
	inFlight atomic.Int64 // want `shard-local type Sender declares a sync/atomic\.Int64 field`
	byDst    *sync.Map    // want `shard-local type Sender declares a sync\.Map field`
	pending  []int
}

func (s *Sender) bump(counter *int64) {
	atomic.AddInt64(counter, 1) // want `atomic\.AddInt64 in a method of shard-local type Sender`
}
