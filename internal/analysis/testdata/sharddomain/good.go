// Fixture (negative twins): synchronization in types outside the
// shard-local table is the cross-shard hand-off domain's business, not
// sharddomain's.
package fixture

import (
	"sync"
	"sync/atomic"
)

// arbiterShared is not in the shard-local table: a lock here is fine.
type arbiterShared struct {
	mu    sync.Mutex
	grant atomic.Int64
}

func (a *arbiterShared) bump(counter *int64) {
	atomic.AddInt64(counter, 1)
}

// Sender methods that merely pass values around without sync/atomic
// calls are fine; plain fields stay plain.
func (s *Sender) drainLen() int { return len(s.pending) }
