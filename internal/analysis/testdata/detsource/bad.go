// Fixture: nondeterminism sources inside a simulation package (this
// fixture claims the sim package path to opt into the detsource scope).
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now()    // want `wall-clock time\.Now in a simulation package`
	d := time.Since(t) // want `wall-clock time\.Since in a simulation package`
	return int64(d)
}

func globalRand() int {
	return rand.Intn(4) // want `global math/rand source \(rand\.Intn\)`
}

func shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand source \(rand\.Shuffle\)`
}

func emitUnsorted(m map[int]int, emit func(int)) {
	for k := range m { // want `map iteration with side effects in a simulation package`
		emit(k)
	}
}

func sendUnsorted(m map[int]int, ch chan int) {
	for k := range m { // want `map iteration with side effects in a simulation package`
		ch <- k
	}
}

func straySpawn(work func()) {
	go work() // want `go statement outside sim\.Group's worker machinery`
}
