// Fixture (negative twins): the sanctioned forms — seeded rand, sorted
// map snapshots, and sim.Group's own worker machinery.
package fixture

import (
	"math/rand"
	"sort"
	"time"
)

// seededRand constructs an explicitly seeded stream: legal — only the
// global source is forbidden.
func seededRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// durations as values (no clock read) are fine.
const tick = 10 * time.Microsecond

// collectThenSort is the sanctioned map-iteration shape: the map loop
// only collects into a local, emission walks the sorted slice.
func collectThenSort(m map[int]int, emit func(int)) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		emit(k)
	}
}

// Group mirrors sim.Group's worker machinery: the goroutineAllow table
// permits `go` inside (*Group).startWorkers and nowhere else.
type Group struct{ workers int }

func (g *Group) startWorkers(run func(int)) {
	for w := 1; w < g.workers; w++ {
		go run(w)
	}
}
