// Fixture: the //tclint:allow suppression path (this fixture claims a
// sim package path so detsource diagnostics are available to
// suppress). A well-formed directive with a reason suppresses exactly
// its analyzer on its own or the following line; malformed and stale
// directives are themselves lint errors.
package fixture

import "time"

// suppressed: the directive covers the next line, so the time.Now diag
// is swallowed and the directive is used — nothing reported.
func suppressed() int64 {
	//tclint:allow detsource startup banner timestamp, outside the engine's event horizon
	return time.Now().UnixNano()
}

// suppressedTrailing: same-line (trailing) directive form.
func suppressedTrailing() int64 {
	return time.Now().UnixNano() //tclint:allow detsource startup banner timestamp, outside the engine's event horizon
}

// stale: a directive whose analyzer reports nothing here must fail the
// staleness check instead of rotting silently.
func stale() int {
	//tclint:allow detsource nothing nondeterministic left on this line // want `stale //tclint:allow: no detsource diagnostic here to suppress`
	return 1
}

// unknown: a typo'd analyzer name cannot silently waive a contract.
func unknown() int {
	//tclint:allow determsource typo'd analyzer // want `unknown analyzer "determsource" in //tclint:allow`
	return 2
}

// reasonless: an allow without a reason is not an allow.
func reasonless() int {
	//tclint:allow detsource // want `//tclint:allow detsource needs a reason`
	return 3
}

// wrongAnalyzer: a directive for another analyzer does not suppress —
// the detsource diagnostic still fires, and the directive is stale.
func wrongAnalyzer() int64 {
	//tclint:allow sharddomain wrong analyzer named here // want `stale //tclint:allow: no sharddomain diagnostic here to suppress`
	return time.Now().UnixNano() // want `wall-clock time\.Now in a simulation package`
}
