package analysis_test

import (
	"testing"

	"twochains/internal/analysis"
	"twochains/internal/analysis/analysistest"
)

// One loader for the whole suite: the source importer type-checks the
// transitive closure (mailbox, mem, tc, ...) once per process instead
// of once per fixture.
var loader = analysis.NewLoader()

// Fixture packages claim synthetic import paths on purpose: detsource
// and the allow fixture opt into the simulation-package scope, and the
// sharddomain fixture claims the mailbox path so the real ownership
// table (Sender is shard-local) drives the positive cases.
func TestScratchEscapeFixtures(t *testing.T) {
	analysistest.Run(t, loader, "testdata/scratchescape", "fixture/scratchescape", analysis.ScratchEscape)
}

func TestPoolOwnershipFixtures(t *testing.T) {
	analysistest.Run(t, loader, "testdata/poolownership", "fixture/poolownership", analysis.PoolOwnership)
}

func TestDetSourceFixtures(t *testing.T) {
	analysistest.Run(t, loader, "testdata/detsource", "twochains/internal/sim", analysis.DetSource)
}

func TestShardDomainFixtures(t *testing.T) {
	analysistest.Run(t, loader, "testdata/sharddomain", "twochains/internal/mailbox", analysis.ShardDomain)
}

// The allow fixture runs under the full suite: staleness is defined
// against the set of analyzers that ran, and the fixture pins both a
// suppressed diagnostic and a stale directive for a second analyzer.
func TestAllowDirectiveFixtures(t *testing.T) {
	analysistest.Run(t, loader, "testdata/allow", "twochains/internal/sim/allowfix", analysis.All()...)
}

// TestSuiteRunsCleanOnTree is the acceptance gate in test form: the
// full suite over every package of this module reports nothing (make
// lint enforces the same via cmd/tclint).
func TestSuiteRunsCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped under -short")
	}
	pkgs, err := loader.Load("twochains/...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic on clean tree: %s", d.String())
	}
}
