package analysis

import (
	"go/ast"
)

// ShardDomain guards the single-writer property of the ROADMAP's
// "Shard-local by construction" table (config.go: shardLocalTypes): a
// type owned by one shard worker never needs a lock, so sync.Mutex /
// sync.Map / sync/atomic state appearing in one is either an
// ownership-domain violation being papered over with synchronization,
// or a genuine domain change that must update the table and the
// ROADMAP together. Flagged: sync/sync-atomic-typed fields (including
// through pointers, arrays, and slices) declared in a shard-local
// struct, and sync/atomic package calls made from a shard-local
// method.
var ShardDomain = &Analyzer{
	Name: "sharddomain",
	Doc:  "documented shard-local types must not grow sync primitives or atomic ops",
	Run:  runShardDomain,
}

func runShardDomain(pass *Pass) error {
	path := pass.Pkg.Path()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !isShardLocal(path, ts.Name.Name) {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					checkShardLocalFields(pass, ts.Name.Name, st)
				}
			case *ast.FuncDecl:
				if name, ok := shardLocalRecv(pass, path, d); ok {
					checkShardLocalMethodBody(pass, name, d)
				}
			}
		}
	}
	return nil
}

func checkShardLocalFields(pass *Pass, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		if syncType, found := containsSyncType(tv.Type); found {
			pass.Reportf(field.Type.Pos(), "shard-local type %s declares a %s field; shard-local state is single-writer by construction — either the ownership domain changed (update the ROADMAP table and tclint config together) or this synchronization papers over a domain violation", typeName, syncType)
		}
	}
}

// shardLocalRecv returns the receiver's base type name when fd is a
// method on a shard-local type of this package.
func shardLocalRecv(pass *Pass, path string, fd *ast.FuncDecl) (string, bool) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok || !isShardLocal(path, id.Name) {
		return "", false
	}
	return id.Name, true
}

func checkShardLocalMethodBody(pass *Pass, typeName string, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := pkgNameOf(pass.Info, sel.X); pkg != nil && pkg.Path() == "sync/atomic" {
			pass.Reportf(sel.Pos(), "atomic.%s in a method of shard-local type %s; shard-local state is single-writer — no synchronization belongs here", sel.Sel.Name, typeName)
		}
		return true
	})
}
