// Package analysis is tclint's static-analysis suite: a small,
// self-contained go/analysis-style framework (stdlib go/ast + go/types
// only — the container has no module cache, so golang.org/x/tools is
// deliberately not a dependency) plus the four analyzer families that
// machine-check the repo's documented ownership-domain and determinism
// contracts:
//
//   - scratchescape — a *mailbox.Delivery callback argument or a
//     mem.View* slice must not outlive its callback/event (ROADMAP
//     "Pooling ownership rules" and "Per-shard ownership domains").
//   - poolownership — no use of a *mailbox.Message after Send/SendBatch
//     hands it to the Sender; no touching a tc.Future after Release.
//   - detsource — the simulation packages draw no nondeterminism:
//     no wall clock, no global math/rand, no effectful map iteration,
//     no goroutines outside sim.Group's worker machinery.
//   - sharddomain — types documented shard-local must not grow
//     sync.Mutex/sync.Map/atomic fields (synchronization in a
//     single-writer domain hides an ownership violation).
//
// Violations that are legitimate for an owner (for example the mailbox
// receiver storing its own scratch record) are suppressed with a
// reasoned `//tclint:allow <analyzer> <reason>` directive on the same
// or preceding line; stale or malformed directives are themselves
// diagnostics (see allow.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one checker: a name (used in -run selection and
// allow directives), a one-line contract statement, and the Run hook.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one (analyzer, package) unit of work, mirroring
// golang.org/x/tools/go/analysis.Pass closely enough that the analyzers
// would port to the real framework mechanically.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported contract violation, positioned at the
// exact offending token.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{ScratchEscape, PoolOwnership, DetSource, ShardDomain}
}

// Run applies the analyzers to each package, filters diagnostics
// through the package's //tclint:allow directives, and appends the
// directive-hygiene diagnostics (unknown analyzer, missing reason,
// stale allow). The result is sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := collectAllows(pkg)
	var kept []Diagnostic
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range raw {
			if allows.suppress(d) {
				continue
			}
			kept = append(kept, d)
		}
	}
	kept = append(kept, allows.hygiene(analyzerNames(analyzers))...)
	for i := range kept {
		kept[i].File = kept[i].Pos.Filename
		kept[i].Line = kept[i].Pos.Line
		kept[i].Col = kept[i].Pos.Column
	}
	return kept, nil
}

func analyzerNames(as []*Analyzer) map[string]bool {
	m := make(map[string]bool, len(as))
	for _, a := range as {
		m[a.Name] = true
	}
	return m
}

// knownAnalyzer reports whether name names a suite analyzer, regardless
// of the -run selection (an allow for a deselected analyzer is legal,
// just not staleness-checked on that run).
func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// pathString returns the import path of the package an object belongs
// to, or "" for builtins and the universe scope.
func pathString(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	return pkg.Path()
}
