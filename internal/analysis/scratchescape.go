package analysis

import (
	"go/ast"
	"go/types"
)

// ScratchEscape enforces the scratch-lifetime rules from the ROADMAP
// pooling tables: the *mailbox.Delivery handed to Handler/OnProcessed/
// OnError is the receiver's per-region scratch record (overwritten by
// the next frame — under the parallel engine possibly while another
// shard still holds a leaked pointer), and a mem.View*/ViewMut/ViewDMA
// slice aliases address-space backing that the next Alloc may remap.
// Neither may outlive the function that received it: storing one to a
// struct field, global, map/slice element, or channel, appending it,
// returning it, or capturing it in a go/defer closure is an escape.
// Flow through locals and value copies (*d) is fine.
var ScratchEscape = &Analyzer{
	Name: "scratchescape",
	Doc:  "mailbox.Delivery callback args and mem.View* slices must not escape their callback",
	Run:  runScratchEscape,
}

// scratchKind labels the diagnostic: what kind of scratch value leaked.
type scratchKind string

const (
	kindDelivery scratchKind = "scratch *mailbox.Delivery"
	kindView     scratchKind = "mem view slice"
)

func runScratchEscape(pass *Pass) error {
	// Each top-level function (declaration, or literal in a package-var
	// initializer) is walked exactly once; closures nested inside it
	// share the walk, registering their own *Delivery params into the
	// same scratch set as the walk reaches them. One walk per root means
	// one diagnostic per escape, with closure capture of outer scratch
	// still visible.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkScratchEscapes(pass, d.Type, d.Body)
				}
			case *ast.GenDecl:
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkScratchEscapes(pass, lit.Type, lit.Body)
						return false
					}
					return true
				})
			}
		}
	}
	return nil
}

// registerDeliveryParams adds params typed *mailbox.Delivery to scratch.
func registerDeliveryParams(pass *Pass, scratch map[types.Object]scratchKind, typ *ast.FuncType) {
	for _, field := range typ.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj != nil && isPtrToNamed(obj.Type(), mailboxPath, "Delivery") {
				scratch[obj] = kindDelivery
			}
		}
	}
}

func checkScratchEscapes(pass *Pass, typ *ast.FuncType, body *ast.BlockStmt) {
	scratch := map[types.Object]scratchKind{}
	registerDeliveryParams(pass, scratch, typ)

	// One in-order walk: scratch locals (view calls, aliases) are
	// registered as their definitions appear, escapes are reported as
	// their uses appear. Straight-line flow dominates this codebase;
	// a back-edge alias defined after its use is out of scope.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			registerDeliveryParams(pass, scratch, st.Type)
		case *ast.AssignStmt:
			checkAssign(pass, scratch, st)
		case *ast.SendStmt:
			if kind, ok := scratch[useOf(pass.Info, st.Value)]; ok {
				pass.Reportf(st.Value.Pos(), "%s sent on a channel; it is valid only until the callback returns", kind)
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if kind, ok := scratch[useOf(pass.Info, res)]; ok {
					pass.Reportf(res.Pos(), "%s returned from its callback; copy the value instead", kind)
				}
			}
		case *ast.CallExpr:
			if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					for i, arg := range st.Args[1:] {
						// append(dst, v...) spreads and copies the
						// elements — that is the sanctioned way to
						// retain a view's bytes, not an escape.
						if st.Ellipsis.IsValid() && i == len(st.Args)-2 {
							continue
						}
						if kind, ok := scratch[useOf(pass.Info, arg)]; ok {
							pass.Reportf(arg.Pos(), "%s appended to a slice; it is valid only until the callback returns", kind)
						}
					}
				}
			}
		case *ast.GoStmt:
			reportCaptured(pass, scratch, st.Call, "goroutine")
			return false // captured uses reported once, not re-walked
		case *ast.DeferStmt:
			reportCaptured(pass, scratch, st.Call, "deferred call")
			return false
		}
		return true
	})
}

// checkAssign handles one assignment: registers aliases (v := d,
// v, err := as.View(...)) and reports escaping stores (x.f = d,
// m[k] = d, global = d).
func checkAssign(pass *Pass, scratch map[types.Object]scratchKind, st *ast.AssignStmt) {
	// View-call definitions: v, err := as.View/ViewMut/ViewDMA(...).
	if len(st.Rhs) == 1 {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok && isViewCall(pass.Info, call) && len(st.Lhs) > 0 {
			if id, ok := st.Lhs[0].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					scratch[obj] = kindView
				} else if obj := pass.Info.Uses[id]; obj != nil && obj.Parent() != nil && obj.Parent() != pass.Pkg.Scope() {
					scratch[obj] = kindView
				}
			}
			return
		}
	}
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, rhs := range st.Rhs {
		obj := useOf(pass.Info, rhs)
		kind, isScratch := scratch[obj]
		if !isScratch {
			continue
		}
		switch lhs := st.Lhs[i].(type) {
		case *ast.SelectorExpr:
			pass.Reportf(rhs.Pos(), "%s stored to field %s; it is valid only until the callback returns — copy the value instead", kind, lhs.Sel.Name)
		case *ast.IndexExpr:
			pass.Reportf(rhs.Pos(), "%s stored into a map or slice element; it is valid only until the callback returns", kind)
		case *ast.StarExpr:
			pass.Reportf(rhs.Pos(), "%s stored through a pointer; it is valid only until the callback returns", kind)
		case *ast.Ident:
			if target := pass.Info.Defs[lhs]; target != nil {
				scratch[target] = kind // v := d — local alias, fine, tracked
				continue
			}
			target := pass.Info.Uses[lhs]
			if target == nil {
				continue
			}
			if target.Parent() == pass.Pkg.Scope() {
				pass.Reportf(rhs.Pos(), "%s stored to package-level var %s; it is valid only until the callback returns", kind, lhs.Name)
			} else {
				scratch[target] = kind // v = d — local alias via plain assign
			}
		}
	}
}

// reportCaptured flags scratch identifiers referenced anywhere in a
// go/defer call (function, arguments, or closure body): the call runs
// after the callback has returned and the scratch has been reused.
func reportCaptured(pass *Pass, scratch map[types.Object]scratchKind, call *ast.CallExpr, what string) {
	ast.Inspect(call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if kind, ok := scratch[pass.Info.Uses[id]]; ok {
			pass.Reportf(id.Pos(), "%s captured by a %s that outlives the callback", kind, what)
		}
		return true
	})
}

// isViewCall reports whether call is as.View/ViewMut/ViewDMA on a
// *mem.AddressSpace.
func isViewCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "View", "ViewMut", "ViewDMA":
	default:
		return false
	}
	recv := methodRecv(info, sel)
	return recv != nil && isPtrToNamed(recv, memPath, "AddressSpace")
}
