package analysis

import "strings"

// This file is the allowlist config the ISSUE calls for: the ROADMAP's
// prose ownership tables ("Per-shard ownership domains (PR 5)" and the
// PR 7/8 extensions) rendered as package+type patterns the analyzers
// consult. Keep it in sync with the ROADMAP "Static contracts (PR 9)"
// section — a rule lives here exactly once.

// simPackages are the determinism-bearing packages: everything that
// executes between plan generation and digest emission. detsource
// forbids wall-clock reads, the global math/rand source, effectful map
// iteration, and stray goroutines inside them (and their subpackages).
var simPackages = []string{
	"twochains/internal/sim",
	"twochains/internal/simnet",
	"twochains/internal/fabric",
	"twochains/internal/core",
	"twochains/internal/mailbox",
	"twochains/internal/tc",
	"twochains/internal/workload",
	"twochains/internal/tenant",
	"twochains/internal/vm",
	"twochains/internal/ucx",
}

// inSimPackages reports whether path is a simulation package or one of
// its subpackages (fixtures claim synthetic subpaths to opt in).
func inSimPackages(path string) bool {
	for _, base := range simPackages {
		if path == base || strings.HasPrefix(path, base+"/") {
			return true
		}
	}
	return false
}

// goroutineAllow maps package path -> enclosing functions that may
// contain `go` statements: exactly sim.Group's worker machinery. Every
// other goroutine in a simulation package breaks the one-worker-per-
// shard execution model (ROADMAP: "go statements outside sim.Group's
// worker machinery").
var goroutineAllow = map[string]map[string]bool{
	"twochains/internal/sim": {
		"(*Group).startWorkers": true,
	},
}

// shardLocalTypes is the ROADMAP "Shard-local by construction" table:
// types owned by one shard worker and never synchronized. sharddomain
// flags sync.* / sync/atomic fields declared in them and atomic calls
// made from their methods — a lock appearing in one of these is either
// an ownership-domain violation being papered over or a table update
// that must happen here (with the ROADMAP edit) first.
//
// Deliberately absent, per the same tables: sim.Group and
// sim.SharedBufPool (cross-shard by design), core.Mesh (locked
// chans/nsMemo), fabric's backend registry, the package-level Message
// sync.Pool behind mailbox.GetMessage (kept for caller-constructed
// frames; the per-call path mints from the Sender's shard-local
// freelist, and completion/thin-op records likewise live on Sender and
// Endpoint freelists now), simnet's COW registration tables, and the
// workload runner's post-run merge counters.
//
// The vm entry covers the bind-time JIT: a Region's compiled program,
// and the per-call jitMachine embedded in the VM, are translation-cache
// state owned by the node's shard worker exactly like the decode cache.
var shardLocalTypes = map[string][]string{
	"twochains/internal/sim":     {"Engine", "BufPool", "Arena", "RNG"},
	"twochains/internal/mem":     {"AddressSpace"},
	"twochains/internal/memsim":  {"Hierarchy"},
	"twochains/internal/cpusim":  {"Counter"},
	"twochains/internal/vm":      {"VM", "Region", "program", "jitMachine"},
	"twochains/internal/ucx":     {"Worker", "Endpoint"},
	"twochains/internal/mailbox": {"Sender", "Receiver", "Delivery", "Message", "FairArbiter"},
	"twochains/internal/simnet":  {"NIC"},
	"twochains/internal/core":    {"Bound", "Node", "Channel"},
	"twochains/internal/tc":      {"Future", "Func"},
}

// isShardLocal reports whether (pkgPath, typeName) is in the table.
// Fixture packages claim the real paths, so the same table drives the
// analysistest cases.
func isShardLocal(pkgPath, typeName string) bool {
	for _, name := range shardLocalTypes[pkgPath] {
		if name == typeName {
			return true
		}
	}
	return false
}

const (
	mailboxPath = "twochains/internal/mailbox"
	memPath     = "twochains/internal/mem"
	tcPath      = "twochains/internal/tc"
)
