package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// An allowDirective is one parsed `//tclint:allow <analyzer> <reason>`
// comment. It suppresses diagnostics of the named analyzer on its own
// line (trailing form) or on the line below (preceding form) in the
// same file, and it must earn its keep: a directive that suppresses
// nothing on a full run is stale and reported as a lint error, so
// escape hatches cannot outlive the code they excused.
type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "tclint:allow"

type allowSet struct {
	directives []*allowDirective
	// byKey indexes file:line -> directives whose suppression window
	// covers that line.
	byKey map[string][]*allowDirective
}

func allowKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// collectAllows parses every //tclint:allow directive in the package.
func collectAllows(pkg *Package) *allowSet {
	as := &allowSet{byKey: make(map[string][]*allowDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				// A nested // starts a comment-within-the-comment (e.g.
				// a fixture's // want expectation); it is not reason text.
				rest, _, _ = strings.Cut(rest, "//")
				rest = strings.TrimSpace(rest)
				name, reason, _ := strings.Cut(rest, " ")
				d := &allowDirective{
					pos:      pkg.Fset.Position(c.Slash),
					analyzer: name,
					reason:   strings.TrimSpace(reason),
				}
				as.directives = append(as.directives, d)
				// The directive covers its own line (trailing comment)
				// and the next line (comment above the statement).
				as.byKey[allowKey(d.pos.Filename, d.pos.Line)] = append(as.byKey[allowKey(d.pos.Filename, d.pos.Line)], d)
				as.byKey[allowKey(d.pos.Filename, d.pos.Line+1)] = append(as.byKey[allowKey(d.pos.Filename, d.pos.Line+1)], d)
			}
		}
	}
	return as
}

// suppress reports whether a directive covers d, marking the directive
// used. Malformed directives (unknown analyzer, empty reason) never
// suppress — they fail hygiene instead, so a typo cannot silently waive
// a contract.
func (as *allowSet) suppress(d Diagnostic) bool {
	for _, dir := range as.byKey[allowKey(d.Pos.Filename, d.Pos.Line)] {
		if dir.analyzer == d.Analyzer && dir.reason != "" && knownAnalyzer(dir.analyzer) {
			dir.used = true
			return true
		}
	}
	return false
}

// hygiene returns the directive-quality diagnostics: unknown analyzer
// names and missing reasons always fail; a well-formed directive that
// suppressed nothing fails as stale when its analyzer was part of this
// run (a -run subset cannot prove staleness for deselected analyzers).
func (as *allowSet) hygiene(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(dir *allowDirective, msg string) {
		out = append(out, Diagnostic{
			Pos:      dir.pos,
			Analyzer: "tclint",
			Message:  msg,
		})
	}
	sort.Slice(as.directives, func(i, j int) bool {
		a, b := as.directives[i].pos, as.directives[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, dir := range as.directives {
		switch {
		case dir.analyzer == "":
			report(dir, "malformed //tclint:allow: missing analyzer name")
		case !knownAnalyzer(dir.analyzer):
			report(dir, fmt.Sprintf("unknown analyzer %q in //tclint:allow (known: %s)", dir.analyzer, knownNames()))
		case dir.reason == "":
			report(dir, fmt.Sprintf("//tclint:allow %s needs a reason", dir.analyzer))
		case !dir.used && ran[dir.analyzer]:
			report(dir, fmt.Sprintf("stale //tclint:allow: no %s diagnostic here to suppress", dir.analyzer))
		}
	}
	return out
}

func knownNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
