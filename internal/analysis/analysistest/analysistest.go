// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against `// want "regex"` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest (which the container
// cannot vendor) closely enough that fixtures would port unchanged.
//
// A fixture is a directory of .go files under testdata/, loaded with a
// caller-chosen synthetic import path (so a fixture can opt into
// path-scoped rules like detsource's simulation-package predicate). An
// expectation is a comment of the form
//
//	expr // want "regex" "another regex"
//
// each regex must match the "analyzer: message" rendering of a distinct
// diagnostic reported on that exact line; diagnostics without a
// matching want, and wants without a matching diagnostic, fail the
// test. Allow-directive filtering and hygiene run exactly as in
// cmd/tclint, so suppression and staleness behavior is pinned by the
// same fixtures.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"twochains/internal/analysis"
)

// wantRe matches the expectation tail of a comment; each pattern is a
// Go string literal, double- or back-quoted (backquotes avoid
// double-escaping regex metacharacters).
const wantLit = `"(?:[^"\\]|\\.)*"` + "|`[^`]*`"

var wantRe = regexp.MustCompile(`// want((?:\s+(?:` + wantLit + `))+)\s*$`)

var quotedRe = regexp.MustCompile(wantLit)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture directory as pkgPath, applies the analyzers
// (with allow filtering and directive hygiene), and reports every
// mismatch between diagnostics and // want expectations through t.
func Run(t *testing.T, loader *analysis.Loader, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	if loader == nil {
		loader = analysis.NewLoader()
	}
	pkg, err := loader.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("run analyzers on %s: %v", dir, err)
	}

	expects, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("parse // want comments in %s: %v", dir, err)
	}

	for _, d := range diags {
		rendered := d.Analyzer + ": " + d.Message
		if e := matchWant(expects, d.Pos.Filename, d.Pos.Line, rendered); e != nil {
			e.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d.String())
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.pattern)
		}
	}
}

func matchWant(expects []*expectation, file string, line int, rendered string) *expectation {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.pattern.MatchString(rendered) {
			return e
		}
	}
	return nil
}

func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "// want") {
						return nil, fmt.Errorf("%s: malformed want comment %q", pkg.Fset.Position(c.Slash), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					lit, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want literal %s: %w", pos, q, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regex %q: %w", pos, lit, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out, nil
}
