package analysis

import (
	"go/ast"
	"go/types"
)

// PoolOwnership enforces the hand-off side of the ROADMAP pooling
// rules: a *mailbox.Message's ownership transfers to the Sender at
// Send/SendBatch (the sender releases the frame to the pool after
// packing, so a later touch is a use-after-reuse on whatever send the
// pool served next), and Release hands a tc.Future back to its
// per-shard pool (touching it afterwards races the next Call that
// recycles it). The check is a straight-line reaching-uses pass over
// each block: any use of the handed-off variable in the statements
// after the hand-off is flagged until the variable is reassigned
// (msg = mailbox.GetMessage() starts a new ownership epoch). Uses of
// the message captured by the send's own completion callback are
// flagged too — the callback runs after the frame is released.
var PoolOwnership = &Analyzer{
	Name: "poolownership",
	Doc:  "no use of a mailbox.Message after Send/SendBatch, or of a tc.Future after Release",
	Run:  runPoolOwnership,
}

func runPoolOwnership(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkBlockHandoffs(pass, block)
			return true
		})
	}
	return nil
}

// handoff records one released object and the verb that released it.
type handoff struct {
	verb string // "Send", "SendBatch", or "Release"
	what string // "*mailbox.Message", "message batch", "tc.Future"
}

func checkBlockHandoffs(pass *Pass, block *ast.BlockStmt) {
	killed := map[types.Object]handoff{}
	for _, stmt := range block.List {
		// Report uses of already-killed objects in this statement,
		// resetting ownership when the variable is plainly reassigned.
		if len(killed) > 0 {
			scanForKilledUses(pass, killed, stmt)
		}
		if obj, h, ok := handoffIn(pass, stmt); ok && obj != nil {
			killed[obj] = h
		}
	}
}

// scanForKilledUses walks one statement: every identifier resolving to
// a killed object is reported; a plain `v = ...` assignment to a killed
// object un-kills it (after its RHS — which may still use the old value
// illegally — has been scanned).
func scanForKilledUses(pass *Pass, killed map[types.Object]handoff, stmt ast.Stmt) {
	if as, ok := stmt.(*ast.AssignStmt); ok {
		for _, rhs := range as.Rhs {
			reportKilledUses(pass, killed, rhs)
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					delete(killed, obj) // reassigned: new epoch
				}
			} else {
				reportKilledUses(pass, killed, lhs)
			}
		}
		return
	}
	reportKilledUses(pass, killed, stmt)
}

func reportKilledUses(pass *Pass, killed map[types.Object]handoff, n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if h, ok := killed[obj]; ok {
			pass.Reportf(id.Pos(), "use of %s %s after %s handed it back to the pool", h.what, id.Name, h.verb)
		}
		return true
	})
}

// handoffIn recognizes a hand-off statement and returns the object
// whose ownership leaves the caller. It also checks the hand-off's own
// callback arguments for captures of that object.
func handoffIn(pass *Pass, stmt ast.Stmt) (types.Object, handoff, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil, handoff{}, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, handoff{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, handoff{}, false
	}
	recv := methodRecv(pass.Info, sel)
	if recv == nil {
		return nil, handoff{}, false
	}
	switch {
	case sel.Sel.Name == "Send" && isPtrToNamed(recv, mailboxPath, "Sender") && len(call.Args) >= 1:
		obj := useOf(pass.Info, call.Args[0])
		h := handoff{verb: "Send", what: "*mailbox.Message"}
		reportCallbackCapture(pass, call.Args[1:], obj, h)
		return obj, h, true
	case sel.Sel.Name == "SendBatch" && isPtrToNamed(recv, mailboxPath, "Sender") && len(call.Args) >= 1:
		obj := useOf(pass.Info, call.Args[0])
		h := handoff{verb: "SendBatch", what: "message batch"}
		reportCallbackCapture(pass, call.Args[1:], obj, h)
		return obj, h, true
	case sel.Sel.Name == "Release" && isPtrToNamed(recv, tcPath, "Future"):
		return useOf(pass.Info, sel.X), handoff{verb: "Release", what: "tc.Future"}, true
	}
	return nil, handoff{}, false
}

// reportCallbackCapture flags the handed-off object appearing inside a
// completion-callback literal passed to the same Send/SendBatch call:
// the callback runs at completion time, after the sender released the
// frame.
func reportCallbackCapture(pass *Pass, args []ast.Expr, obj types.Object, h handoff) {
	if obj == nil {
		return
	}
	for _, arg := range args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if ok && pass.Info.Uses[id] == obj {
				pass.Reportf(id.Pos(), "%s %s captured by the completion callback of its own %s; the frame is already released when it runs", h.what, id.Name, h.verb)
			}
			return true
		})
	}
}
