package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages from source. Imports resolve
// through the stdlib source importer (shared across loads, so the
// transitive closure is type-checked once per process); target packages
// are re-checked locally because the importer does not expose the
// types.Info the analyzers need.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader rooted at the current working directory's
// module (the source importer resolves module paths by shelling out to
// the go command, so no network or module cache is required).
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// Load expands the go-list patterns (e.g. "./...") and returns every
// matched package, parsed and type-checked.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks every .go file directly under dir as one package
// with the given import path. Fixture packages live under testdata/
// (invisible to the go tool), so they are addressed by directory; the
// synthetic path lets a fixture opt into path-scoped rules such as
// detsource's simulation-package predicate.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.check(path, dir, files)
}

func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
