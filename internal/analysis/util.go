package analysis

import (
	"go/ast"
	"go/types"
)

// isPtrToNamed reports whether t is *pkgPath.name.
func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isNamed(ptr.Elem(), pkgPath, name)
}

// isNamed reports whether t is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && pathString(obj.Pkg()) == pkgPath
}

// pkgNameOf returns the imported package an identifier refers to when
// the identifier is a package qualifier (e.g. the `time` in time.Now),
// or nil.
func pkgNameOf(info *types.Info, x ast.Expr) *types.Package {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// useOf returns the object an identifier use resolves to, or nil.
func useOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// methodRecv returns the receiver type of a method call expressed as a
// selector (x.M(...)), or nil when sel is not a method selection.
func methodRecv(info *types.Info, sel *ast.SelectorExpr) types.Type {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	return s.Recv()
}

// containsSyncType reports whether t (unwrapping pointers, arrays,
// slices, and one level of struct embedding) is a type from sync or
// sync/atomic, returning the offending type's string.
func containsSyncType(t types.Type) (string, bool) {
	seen := map[types.Type]bool{}
	var walk func(t types.Type, depth int) (string, bool)
	walk = func(t types.Type, depth int) (string, bool) {
		if seen[t] || depth > 4 {
			return "", false
		}
		seen[t] = true
		switch tt := t.(type) {
		case *types.Named:
			p := pathString(tt.Obj().Pkg())
			if p == "sync" || p == "sync/atomic" {
				return p + "." + tt.Obj().Name(), true
			}
			return "", false
		case *types.Pointer:
			return walk(tt.Elem(), depth+1)
		case *types.Array:
			return walk(tt.Elem(), depth+1)
		case *types.Slice:
			return walk(tt.Elem(), depth+1)
		}
		return "", false
	}
	return walk(t, 0)
}
