// Package model is the single home of every calibration constant used by the
// timing simulation. The values are derived from the testbed described in
// §VI-C of the Two-Chains paper: two 4-core 2.6 GHz Arm servers (1 MB L2 per
// core, 1 MB L3 per 2-core cluster, 8 MB LLC, 16 GB DDR4-2666) connected
// back-to-back with ConnectX-6 200 Gb/s HCAs in PCIe Gen4 slots.
//
// Experiments must take constants from here and never hard-code latencies:
// the ablation and calibration tests rely on being able to perturb a single
// parameter and observe the effect.
package model

import "twochains/internal/sim"

// CPU core parameters (paper §VI-C: 2.6 GHz superscalar core).
const (
	// CoreHz is the core clock.
	CoreHz = 2.6e9
	// CyclePs is one core cycle in picoseconds (≈384.6 ps at 2.6 GHz).
	CyclePs = 1e12 / CoreHz
	// InterconnectHz is the on-chip interconnect clock (paper: 1.6 GHz).
	InterconnectHz = 1.6e9
)

// Cycles converts a cycle count to a simulated duration.
func Cycles(n float64) sim.Duration { return sim.Duration(n*CyclePs + 0.5) }

// DurToCycles converts a duration to core cycles.
func DurToCycles(d sim.Duration) float64 { return float64(d) / CyclePs }

// Cache geometry (paper §VI-C).
const (
	LineSize = 64 // bytes per cache line

	L2Size  = 1 << 20 // 1 MB dedicated per core
	L2Ways  = 8
	L3Size  = 1 << 20 // 1 MB shared per 2-core cluster
	L3Ways  = 8
	LLCSize = 8 << 20 // 8 MB shared last-level cache
	LLCWays = 16
)

// Cache and DRAM access latencies (load-to-use, typical for this class of
// part; DDR4-2666 idle latency ≈ 90 ns).
var (
	L2HitLat   = Cycles(13)               // ≈ 5 ns
	L3HitLat   = Cycles(32)               // ≈ 12.3 ns
	LLCHitLat  = Cycles(55)               // ≈ 21.2 ns
	DRAMLat    = sim.FromNanos(90)        // idle DRAM read
	DRAMRowHit = sim.FromNanos(58)        // open-row access
	DRAMBw     = 21.3e9 * 2               // bytes/s, 2 channels DDR4-2666
	DRAMGap    = sim.FromNanos(64 / 42.6) // per-line serialization at full bw
	_          = DRAMGap                  // (kept for the bandwidth model)
	PrefillLat = sim.FromNanos(10)        // line already in flight via prefetch
	MLPStream  = sim.FromNanos(28)        // effective per-line DRAM cost when
	// misses overlap (no prefetch yet)
)

// Prefetcher model: a stride prefetcher that trains on sequential line
// misses and, once confident, hides most of the DRAM latency.
const (
	PrefetchTrainMisses = 3  // sequential misses before the stream is hot
	PrefetchStreams     = 8  // tracked streams
	PrefetchDepth       = 16 // lines kept in flight ahead of the demand stream
)

// Network parameters (ConnectX-6 200 Gb/s back-to-back over PCIe Gen4).
var (
	// WireBytesPerSec is the usable unidirectional link bandwidth. 200 Gb/s
	// signalling less encoding/transport overhead ≈ 24 GB/s usable.
	WireBytesPerSec = 24.0e9
	// PutBaseLat is the one-way latency floor for a small RDMA write:
	// sender PCIe + HCA processing + wire + receiver HCA + PCIe/IOCU.
	PutBaseLat = sim.FromNanos(780)
	// DoorbellLat is sender CPU cost to ring the NIC doorbell (MMIO write).
	DoorbellLat = sim.FromNanos(90)
	// NicPerMsg is NIC per-message processing occupancy (WQE fetch, DMA
	// setup); this bounds small-message rate at ~1/NicPerMsg.
	NicPerMsg = sim.FromNanos(48)
	// PCIeHdrBytes approximates per-TLP overhead folded into wire time.
	PCIeHdrBytes = 24
	// UplinkHopLat is the extra one-way latency of crossing the spine
	// switch between two fabric shards (store-and-forward + arbitration).
	UplinkHopLat = sim.FromNanos(260)
)

// WireTime returns the serialization time of n payload bytes on the link.
func WireTime(n int) sim.Duration {
	return sim.FromNanos(float64(n+PCIeHdrBytes) / WireBytesPerSec * 1e9)
}

// UCX-layer software costs. The plain put path (the Fig. 5/6 baseline) pays
// library flow control and completion tracking that the reactive-mailbox
// path avoids (paper §VII: "the standard UCX put operation has more library
// overhead for flow control and detecting message completion").
var (
	UcxPostOverhead  = sim.FromNanos(70)  // build + post a WQE through ucp
	UcxCompOverhead  = sim.FromNanos(110) // poll CQ + completion callback
	UcxFlowOverhead  = sim.FromNanos(160) // window accounting + credit msgs
	AmPackOverhead   = sim.FromNanos(38)  // mailbox frame pack (header+sig)
	AmPostOverhead   = sim.FromNanos(35)  // post: frame is preformatted
	AmCreditOverhead = sim.FromNanos(18)  // amortized bank-flag flow control
	FenceOverhead    = sim.FromNanos(28)  // explicit wire fence (no-order fabrics)
)

// Protocol tiers (paper §VII-A: UCX switches protocols by message size, and
// a message "just over the threshold" pays the next tier's fixed overhead
// before it is amortized). Sizes are total frame bytes on the wire.
type ProtoTier struct {
	MaxSize  int          // inclusive upper bound of the tier
	Overhead sim.Duration // fixed per-message software overhead
	Name     string
}

// ProtoTiers is ordered by size. Thresholds are placed so that the Injected
// Function frames for Indirect Put cross tiers at 8- and 256-integer
// payloads, reproducing the Fig. 7 irregularities.
var ProtoTiers = []ProtoTier{
	{MaxSize: 192, Overhead: 0, Name: "short"},
	{MaxSize: 1535, Overhead: sim.FromNanos(52), Name: "eager"},
	{MaxSize: 2495, Overhead: sim.FromNanos(135), Name: "bcopy"},
	{MaxSize: 8191, Overhead: sim.FromNanos(230), Name: "zcopy"},
	{MaxSize: 1 << 30, Overhead: sim.FromNanos(420), Name: "rndv"},
}

// TierFor returns the protocol tier for a frame of the given size.
func TierFor(size int) ProtoTier {
	for _, t := range ProtoTiers {
		if size <= t.MaxSize {
			return t
		}
	}
	return ProtoTiers[len(ProtoTiers)-1]
}

// Mailbox / polling parameters.
var (
	// PollIterCycles is the cost of one spin-poll loop iteration
	// (load + compare + branch on the signal byte).
	PollIterCycles = 4.0
	// PollDetectLat is the coherence delay between the NIC writing the
	// signal line and the polling core observing it.
	PollDetectLat = sim.FromNanos(24)
	// WfeWakeLat is the extra latency of waking from WFE versus an
	// already-spinning poll (event signal propagation + pipeline restart).
	WfeWakeLat = sim.FromNanos(19)
	// WfeWaitCycles is the cycle cost charged per WFE wait episode
	// (arm the monitor, sleep gated, wake, recheck) regardless of how long
	// the wait lasts — the clock is gated while waiting.
	WfeWaitCycles = 58.0
	// WfeSpuriousWakeMean is the mean number of spurious wakeups per
	// microsecond of wait (events on the monitored line from other traffic).
	WfeSpuriousWakeMean = 0.05
)

// VM / executor per-operation costs, in cycles. The JAM ISA is simple and
// in-order; memory operand costs come from the memsim hierarchy on top of
// these base costs.
var (
	VMCyclesPerInstr   = 1.35 // average non-memory issue cost
	GOTPatchPerEntry   = sim.FromNanos(4.5)
	FrameParseOverhead = sim.FromNanos(14)
	HandlerDispatchLat = sim.FromNanos(10)
	// TenantIsolationCost is the per-invocation boundary crossing charged
	// when an untrusted tenant's function runs at the receiver. The value
	// follows the lightweight-virtualization literature (Virtines report
	// ~2.2 µs to enter/exit a minimal hardware-virtualized execution
	// context once the image is warm); heavier sandboxes can be modelled
	// by raising it, trusting a tenant by leaving Config.Untrusted unset.
	TenantIsolationCost = sim.FromNanos(2200)
)

// Stress model (paper §VII-C: `stress-ng --class vm --all 1` on all cores).
// The stressor contends for DRAM bandwidth and pollutes the LLC. Parameters
// produce the paper's qualitative behaviour: the non-stash path shows an
// erratic tail, the stash path a narrow one.
var (
	// StressDRAMQueueMeanNs: mean extra queueing delay per DRAM access.
	StressDRAMQueueMeanNs = 85.0
	// StressDRAMQueueSigma: lognormal sigma of the queue delay.
	StressDRAMQueueSigma = 1.1
	// StressSpikeProb: probability a DRAM access hits an interference
	// episode (page migration, kswapd burst).
	StressSpikeProb = 0.0028
	// StressSpikeXmNs / StressSpikeAlpha: Pareto spike, capped.
	StressSpikeXmNs  = 2200.0
	StressSpikeAlpha = 1.25
	StressSpikeCapNs = 220000.0
	// StressLLCEvictProb: probability a stashed line was evicted by the
	// stressor before the handler reads it.
	StressLLCEvictProb = 0.02
	// StressLLCExtraNs: interconnect contention added to LLC hits under load.
	StressLLCExtraNs = 7.0
)

// DefaultSeed seeds all experiment RNG streams unless overridden.
const DefaultSeed = 0x7c2c2021 // "Two-Chains CLUSTER 2021"
