package amcc

import (
	"bytes"
	"strings"
	"testing"

	"twochains/internal/elfobj"
	"twochains/internal/linker"
	"twochains/internal/mem"
	"twochains/internal/vm"
)

// host compiles AMC source into a loaded library on a fresh machine.
type host struct {
	as  *mem.AddressSpace
	ns  *linker.Namespace
	vm  *vm.VM
	ld  *linker.Loaded
	out bytes.Buffer
}

func newHost(t *testing.T, src string) *host {
	t.Helper()
	obj, err := Compile("test.amc", src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := linker.LinkLibrary("amcctest", []*elfobj.Object{obj})
	if err != nil {
		t.Fatal(err)
	}
	h := &host{
		as: mem.NewAddressSpace(16 << 20),
		ns: linker.NewNamespace(),
	}
	machine, err := vm.New(h.as, nil, &h.out)
	if err != nil {
		t.Fatal(err)
	}
	h.vm = machine
	if err := vm.BindLibc(machine, h.ns); err != nil {
		t.Fatal(err)
	}
	ld, err := linker.Load(h.as, h.ns, img, linker.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h.ld = ld
	code, err := h.as.ReadBytesDMA(ld.TextVA, ld.TextLen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.AddRegion(ld.TextVA, code, ld.GotVA); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *host) call(t *testing.T, fn string, args ...uint64) uint64 {
	t.Helper()
	va, ok := h.ld.Exports[fn]
	if !ok {
		t.Fatalf("function %q not exported", fn)
	}
	ret, _, err := h.vm.Call(va, args...)
	if err != nil {
		t.Fatalf("%s: %v", fn, err)
	}
	return ret
}

func compileAndRun(t *testing.T, src, fn string, args ...uint64) uint64 {
	t.Helper()
	return newHost(t, src).call(t, fn, args...)
}

func TestArithmetic(t *testing.T) {
	src := `
long calc(long a, long b) {
    return (a + b) * 3 - a / b + a % b;
}
`
	got := compileAndRun(t, src, "calc", 20, 6)
	want := uint64((20+6)*3 - 20/6 + 20%6)
	if got != want {
		t.Fatalf("calc = %d, want %d", got, want)
	}
}

func TestBitwiseAndShifts(t *testing.T) {
	src := `
long bits(long a, long b) {
    return ((a & b) | (a ^ b)) + (a << 3) + (b >> 2) + ~a + !b;
}
`
	a, b := uint64(0xF0F0), uint64(0x0FF3)
	got := compileAndRun(t, src, "bits", a, b)
	want := ((a & b) | (a ^ b)) + (a << 3) + (b >> 2) + ^a + 0
	if got != want {
		t.Fatalf("bits = %#x, want %#x", got, want)
	}
}

func TestComparisonsAndUnary(t *testing.T) {
	src := `
long cmp(long a, long b) {
    long r = 0;
    if (a < b) r = r + 1;
    if (a <= b) r = r + 10;
    if (b > a) r = r + 100;
    if (b >= a) r = r + 1000;
    if (a == a) r = r + 10000;
    if (a != b) r = r + 100000;
    if (-a < 0) r = r + 1000000;
    return r;
}
`
	got := compileAndRun(t, src, "cmp", 3, 7)
	if got != 1111111 {
		t.Fatalf("cmp = %d", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
long sumto(long n) {
    long acc = 0;
    for (long i = 1; i <= n; i = i + 1) {
        if (i % 2 == 0) { acc = acc + i; } else { acc = acc + 2 * i; }
    }
    return acc;
}

long countdown(long n) {
    long steps = 0;
    while (n > 0) {
        n = n - 1;
        steps = steps + 1;
        if (steps > 100) break;
    }
    return steps;
}

long skipper(long n) {
    long acc = 0;
    for (long i = 0; i < n; i = i + 1) {
        if (i % 3 != 0) continue;
        acc = acc + i;
    }
    return acc;
}
`
	var want uint64
	for i := uint64(1); i <= 10; i++ {
		if i%2 == 0 {
			want += i
		} else {
			want += 2 * i
		}
	}
	if got := compileAndRun(t, src, "sumto", 10); got != want {
		t.Fatalf("sumto = %d, want %d", got, want)
	}
	h := newHost(t, src)
	if got := h.call(t, "countdown", 5); got != 5 {
		t.Fatalf("countdown = %d", got)
	}
	if got := h.call(t, "skipper", 10); got != 0+3+6+9 {
		t.Fatalf("skipper = %d", got)
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
long guard(long* p, long x) {
    if (p != 0 && *p == x) return 1;
    return 0;
}
long either(long a, long b) {
    if (a || b) return 1;
    return 0;
}
`
	h := newHost(t, src)
	buf, _ := h.as.Alloc("b", 8, 8, mem.PermRW)
	if err := h.as.WriteU64(buf, 42); err != nil {
		t.Fatal(err)
	}
	if got := h.call(t, "guard", buf, 42); got != 1 {
		t.Fatalf("guard(valid) = %d", got)
	}
	// Null pointer: && must not dereference.
	if got := h.call(t, "guard", 0, 42); got != 0 {
		t.Fatalf("guard(null) = %d", got)
	}
	if got := h.call(t, "either", 0, 5); got != 1 {
		t.Fatalf("either = %d", got)
	}
	if got := h.call(t, "either", 0, 0); got != 0 {
		t.Fatalf("either(0,0) = %d", got)
	}
}

func TestPointersAndIndexing(t *testing.T) {
	src := `
long fill(long* a, long n) {
    for (long i = 0; i < n; i = i + 1) {
        a[i] = i * i;
    }
    return a[n-1];
}
long bytes(byte* p, long n) {
    long acc = 0;
    for (long i = 0; i < n; i = i + 1) {
        acc = acc + p[i];
    }
    return acc;
}
long viaptr(long* p) {
    *p = *p + 7;
    return *(p + 1);
}
`
	h := newHost(t, src)
	arr, _ := h.as.Alloc("arr", 8*16, 8, mem.PermRW)
	if got := h.call(t, "fill", arr, 10); got != 81 {
		t.Fatalf("fill = %d", got)
	}
	v, _ := h.as.ReadU64(arr + 8*4)
	if v != 16 {
		t.Fatalf("a[4] = %d", v)
	}
	bs, _ := h.as.Alloc("bs", 16, 8, mem.PermRW)
	if err := h.as.WriteBytes(bs, []byte{1, 2, 3, 250}); err != nil {
		t.Fatal(err)
	}
	if got := h.call(t, "bytes", bs, 4); got != 256 {
		t.Fatalf("bytes = %d", got)
	}
	if err := h.as.WriteU64(arr, 100); err != nil {
		t.Fatal(err)
	}
	if err := h.as.WriteU64(arr+8, 55); err != nil {
		t.Fatal(err)
	}
	if got := h.call(t, "viaptr", arr); got != 55 {
		t.Fatalf("viaptr = %d", got)
	}
	v, _ = h.as.ReadU64(arr)
	if v != 107 {
		t.Fatalf("*p = %d", v)
	}
}

func TestAddressOfLocal(t *testing.T) {
	src := `
long bump(long* p) { *p = *p + 1; return *p; }
long useAddr(long seed) {
    long x = seed;
    bump(&x);
    bump(&x);
    return x;
}
`
	if got := compileAndRun(t, src, "useAddr", 10); got != 12 {
		t.Fatalf("useAddr = %d", got)
	}
}

func TestLocalCallsAndRecursion(t *testing.T) {
	src := `
long fib(long n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
long twice(long x) { return helper(x) + helper(x); }
long helper(long x) { return x * 10; }
`
	h := newHost(t, src)
	if got := h.call(t, "fib", 12); got != 144 {
		t.Fatalf("fib(12) = %d", got)
	}
	if got := h.call(t, "twice", 3); got != 60 {
		t.Fatalf("twice = %d", got)
	}
}

func TestExternCallAndPrintf(t *testing.T) {
	src := `
extern long printf(byte* fmt, long a, long b);
extern long memcpy(long* dst, long* src, long n);

long report(long a, long b) {
    printf("sum=%d prod=%d\n", a + b, a * b);
    return 0;
}
long copy8(long* dst, long* src) {
    memcpy(dst, src, 8);
    return *dst;
}
`
	h := newHost(t, src)
	h.call(t, "report", 3, 4)
	if h.out.String() != "sum=7 prod=12\n" {
		t.Fatalf("stdout = %q", h.out.String())
	}
	a, _ := h.as.Alloc("a", 8, 8, mem.PermRW)
	b, _ := h.as.Alloc("b", 8, 8, mem.PermRW)
	if err := h.as.WriteU64(b, 777); err != nil {
		t.Fatal(err)
	}
	if got := h.call(t, "copy8", a, b); got != 777 {
		t.Fatalf("copy8 = %d", got)
	}
}

func TestGlobalsInRied(t *testing.T) {
	src := `
long counter = 5;
long table[64];

long tick(void) {
    long* c = counter;
    *c = *c + 1;
    return *c;
}
long put(long i, long v) {
    long* t = table;
    t[i] = v;
    return t[i];
}
`
	h := newHost(t, src)
	if got := h.call(t, "tick"); got != 6 {
		t.Fatalf("tick = %d", got)
	}
	if got := h.call(t, "tick"); got != 7 {
		t.Fatalf("tick2 = %d", got)
	}
	if got := h.call(t, "put", 9, 1234); got != 1234 {
		t.Fatalf("put = %d", got)
	}
}

func TestCompoundAssign(t *testing.T) {
	src := `
long comp(long a) {
    long x = a;
    x += 3; x *= 2; x -= 1; x /= 3; x %= 100;
    x <<= 2; x >>= 1; x &= 0xFF; x |= 0x100; x ^= 0x3;
    return x;
}
`
	x := uint64(10)
	x += 3
	x *= 2
	x -= 1
	x /= 3
	x %= 100
	x <<= 2
	x >>= 1
	x &= 0xFF
	x |= 0x100
	x ^= 0x3
	if got := compileAndRun(t, src, "comp", 10); got != x {
		t.Fatalf("comp = %d, want %d", got, x)
	}
}

func TestBigConstant(t *testing.T) {
	src := `
long big(void) { return 0x9E3779B97F4A7C15; }
`
	if got := compileAndRun(t, src, "big"); got != 0x9E3779B97F4A7C15 {
		t.Fatalf("big = %#x", got)
	}
}

func TestVoidFunction(t *testing.T) {
	src := `
long slot = 0;
void poke(long v) {
    long* s = slot;
    *s = v;
}
long peek(void) {
    long* s = slot;
    return *s;
}
`
	h := newHost(t, src)
	h.call(t, "poke", 99)
	if got := h.call(t, "peek"); got != 99 {
		t.Fatalf("peek = %d", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared", "long f(void){ return ghost; }", "undeclared"},
		{"badAssign", "long f(long a){ 5 = a; return 0; }", "lvalue"},
		{"redeclared", "long f(void){ return 0; }\nlong f(void){ return 1; }", "redeclared"},
		{"breakOutside", "long f(void){ break; return 0; }", "break outside"},
		{"tooManyArgs", "extern long g(long a, long b, long c, long d, long e, long f, long h);", "at most 6"},
		{"externBody", "extern long g(void){ return 1; }", "cannot have a body"},
		{"callArity", "long g(long a){ return a; }\nlong f(void){ return g(1,2); }", "expects 1 arguments"},
		{"fnAsValue", "long g(void){ return 0; }\nlong f(void){ return g; }", "used as a value"},
		{"doubleStar", "long f(long** p){ return 0; }", "indirection"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.name+".amc", c.src)
			if err == nil {
				t.Fatalf("compiled successfully")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		`long f(void){ return "unterminated; }`,
		"long f(void){ /* unterminated",
		"long f(void){ return 0; } @",
	} {
		if _, err := Compile("bad.amc", src); err == nil {
			t.Fatalf("lexed %q successfully", src)
		}
	}
}

func TestCommentsHandled(t *testing.T) {
	src := `
// line comment
/* block
   comment */
long f(void) {
    return 7; // trailing
}
`
	if got := compileAndRun(t, src, "f"); got != 7 {
		t.Fatalf("f = %d", got)
	}
}

func TestCharLiterals(t *testing.T) {
	src := `
long isUpperA(byte* s) {
    if (*s == 'A') return 1;
    return 0;
}
`
	h := newHost(t, src)
	buf, _ := h.as.Alloc("s", 8, 8, mem.PermRW)
	if err := h.as.WriteBytes(buf, []byte{'A'}); err != nil {
		t.Fatal(err)
	}
	if got := h.call(t, "isUpperA", buf); got != 1 {
		t.Fatalf("isUpperA = %d", got)
	}
}

func TestDeepExpressionRejectedGracefully(t *testing.T) {
	// Deliberately exceed the scratch register budget.
	expr := "a"
	for i := 0; i < 15; i++ {
		expr = "(" + expr + " + (a * (a + 1)"
	}
	for i := 0; i < 15; i++ {
		expr += "))"
	}
	src := "long f(long a){ return " + expr + "; }"
	_, err := Compile("deep.amc", src)
	if err == nil {
		t.Skip("expression fit in scratch registers")
	}
	if !strings.Contains(err.Error(), "too complex") {
		t.Fatalf("unexpected error: %v", err)
	}
}
