package amcc

import "fmt"

type parser struct {
	file string
	toks []token
	pos  int
	unit *unit
	// function-scope state
	fn     *function
	scopes []map[string]*localVar
}

func parse(file, src string) (*unit, error) {
	toks, err := lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		file: file,
		toks: toks,
		unit: &unit{file: file, syms: map[string]*symbol{}},
	}
	for !p.at(tkEOF, "") {
		if err := p.topDecl(); err != nil {
			return nil, err
		}
	}
	return p.unit, nil
}

// --- token helpers ---

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.pos++
		return t, nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{File: p.file, Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

// --- declarations ---

// parseType consumes 'long'/'byte'/'void' plus pointer stars.
func (p *parser) parseType() (Type, error) {
	var base Type
	switch {
	case p.accept(tkKeyword, "long"):
		base = TypeLong
	case p.accept(tkKeyword, "byte"):
		base = TypePtrByte // bare byte only exists behind a pointer
	case p.accept(tkKeyword, "void"):
		return TypeVoid, nil
	default:
		return 0, p.errf("expected a type, found %q", p.cur().text)
	}
	stars := 0
	for p.accept(tkPunct, "*") {
		stars++
	}
	if base == TypePtrByte {
		if stars != 1 {
			return 0, p.errf("byte values exist only behind a single pointer (byte*)")
		}
		return TypePtrByte, nil
	}
	switch stars {
	case 0:
		return TypeLong, nil
	case 1:
		return TypePtrLong, nil
	}
	return 0, p.errf("at most one level of indirection is supported")
}

func (p *parser) topDecl() error {
	isExtern := p.accept(tkKeyword, "extern")
	typ, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(tkIdent, "")
	if err != nil {
		return err
	}
	if _, dup := p.unit.syms[name.text]; dup {
		return p.errf("symbol %q redeclared", name.text)
	}

	// Function declaration or definition.
	if p.at(tkPunct, "(") {
		return p.funcDecl(isExtern, typ, name)
	}

	// Object: optional array suffix and initializer.
	count := int64(1)
	isArray := false
	if p.accept(tkPunct, "[") {
		isArray = true
		if !p.at(tkPunct, "]") {
			n, err := p.expect(tkNumber, "")
			if err != nil {
				return err
			}
			count = n.num
		} else if !isExtern {
			return p.errf("defined array %q needs a length", name.text)
		}
		if _, err := p.expect(tkPunct, "]"); err != nil {
			return err
		}
	}
	var init *int64
	if p.accept(tkPunct, "=") {
		n, err := p.expect(tkNumber, "")
		if err != nil {
			return err
		}
		if isExtern {
			return p.errf("extern %q cannot have an initializer", name.text)
		}
		v := n.num
		init = &v
	}
	if _, err := p.expect(tkPunct, ";"); err != nil {
		return err
	}

	// The type an expression naming the object has: arrays and all data
	// symbols decay to pointers (data lives behind the GOT).
	symType := typ
	if !symType.isPtr() {
		symType = TypePtrLong
	}
	_ = isArray
	p.unit.syms[name.text] = &symbol{
		name: name.text, typ: symType, isExtern: isExtern,
	}
	if !isExtern {
		elem := int64(8)
		if typ == TypePtrByte {
			elem = 1
		}
		p.unit.globals = append(p.unit.globals, &globalDef{
			name: name.text, count: count, elem: elem, init: init, line: name.line,
		})
	}
	return nil
}

func (p *parser) funcDecl(isExtern bool, ret Type, name token) error {
	if _, err := p.expect(tkPunct, "("); err != nil {
		return err
	}
	fn := &function{name: name.text, ret: ret, line: name.line}
	for !p.at(tkPunct, ")") {
		if len(fn.params) > 0 {
			if _, err := p.expect(tkPunct, ","); err != nil {
				return err
			}
		}
		if p.accept(tkKeyword, "void") && p.at(tkPunct, ")") {
			break
		}
		pt, err := p.parseType()
		if err != nil {
			return err
		}
		pn, err := p.expect(tkIdent, "")
		if err != nil {
			return err
		}
		if len(fn.params) >= 6 {
			return p.errf("at most 6 parameters are supported")
		}
		fn.params = append(fn.params, &localVar{name: pn.text, typ: pt})
	}
	if _, err := p.expect(tkPunct, ")"); err != nil {
		return err
	}
	p.unit.syms[name.text] = &symbol{
		name: name.text, isFunc: true, isExtern: isExtern,
		retType: ret, numParam: len(fn.params),
	}
	if p.accept(tkPunct, ";") {
		if !isExtern {
			return p.errf("function %q declared without a body (use extern)", name.text)
		}
		return nil
	}
	if isExtern {
		return p.errf("extern function %q cannot have a body", name.text)
	}

	p.fn = fn
	p.scopes = []map[string]*localVar{{}}
	for _, prm := range fn.params {
		if err := p.defineLocal(prm); err != nil {
			return err
		}
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	fn.body = body
	p.fn = nil
	p.scopes = nil
	p.unit.funcs = append(p.unit.funcs, fn)
	return nil
}

// --- scopes ---

func (p *parser) defineLocal(v *localVar) error {
	scope := p.scopes[len(p.scopes)-1]
	if _, dup := scope[v.name]; dup {
		return p.errf("variable %q redeclared", v.name)
	}
	scope[v.name] = v
	p.fn.locals = append(p.fn.locals, v)
	return nil
}

func (p *parser) lookupLocal(name string) *localVar {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if v, ok := p.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

// --- statements ---

func (p *parser) block() (*stmt, error) {
	line := p.cur().line
	if _, err := p.expect(tkPunct, "{"); err != nil {
		return nil, err
	}
	p.scopes = append(p.scopes, map[string]*localVar{})
	defer func() { p.scopes = p.scopes[:len(p.scopes)-1] }()
	out := &stmt{kind: stBlock, line: line}
	for !p.accept(tkPunct, "}") {
		if p.at(tkEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out.stmts = append(out.stmts, s)
	}
	return out, nil
}

func (p *parser) statement() (*stmt, error) {
	line := p.cur().line
	switch {
	case p.at(tkPunct, "{"):
		return p.block()

	case p.accept(tkKeyword, "return"):
		s := &stmt{kind: stReturn, line: line}
		if !p.at(tkPunct, ";") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.expr = e
		}
		_, err := p.expect(tkPunct, ";")
		return s, err

	case p.accept(tkKeyword, "break"):
		_, err := p.expect(tkPunct, ";")
		return &stmt{kind: stBreak, line: line}, err

	case p.accept(tkKeyword, "continue"):
		_, err := p.expect(tkPunct, ";")
		return &stmt{kind: stContinue, line: line}, err

	case p.accept(tkKeyword, "if"):
		if _, err := p.expect(tkPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		s := &stmt{kind: stIf, line: line, cond: cond, body: body}
		if p.accept(tkKeyword, "else") {
			if s.alt, err = p.statement(); err != nil {
				return nil, err
			}
		}
		return s, nil

	case p.accept(tkKeyword, "while"):
		if _, err := p.expect(tkPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &stmt{kind: stWhile, line: line, cond: cond, body: body}, nil

	case p.accept(tkKeyword, "for"):
		if _, err := p.expect(tkPunct, "("); err != nil {
			return nil, err
		}
		s := &stmt{kind: stFor, line: line}
		p.scopes = append(p.scopes, map[string]*localVar{})
		defer func() { p.scopes = p.scopes[:len(p.scopes)-1] }()
		if !p.at(tkPunct, ";") {
			init, err := p.simpleOrDecl()
			if err != nil {
				return nil, err
			}
			s.init = init
		}
		if _, err := p.expect(tkPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tkPunct, ";") {
			cond, err := p.expression()
			if err != nil {
				return nil, err
			}
			s.cond = cond
		}
		if _, err := p.expect(tkPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(tkPunct, ")") {
			post, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.post = post
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.body = body
		return s, nil

	case p.at(tkKeyword, "long") || p.at(tkKeyword, "byte"):
		s, err := p.declStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tkPunct, ";")
		return s, err

	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tkPunct, ";")
		return s, err
	}
}

func (p *parser) simpleOrDecl() (*stmt, error) {
	if p.at(tkKeyword, "long") || p.at(tkKeyword, "byte") {
		return p.declStmt()
	}
	return p.simpleStmt()
}

func (p *parser) declStmt() (*stmt, error) {
	line := p.cur().line
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, err
	}
	v := &localVar{name: name.text, typ: typ}
	if err := p.defineLocal(v); err != nil {
		return nil, err
	}
	s := &stmt{kind: stDecl, line: line, local: v}
	if p.accept(tkPunct, "=") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		s.expr = e
	}
	return s, nil
}

func (p *parser) simpleStmt() (*stmt, error) {
	line := p.cur().line
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &stmt{kind: stExpr, line: line, expr: e}, nil
}

// --- expressions (precedence climbing) ---

func (p *parser) expression() (*expr, error) { return p.assignment() }

func (p *parser) assignment() (*expr, error) {
	lhs, err := p.logicalOr()
	if err != nil {
		return nil, err
	}
	line := p.cur().line
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="} {
		if p.accept(tkPunct, op) {
			rhs, err := p.assignment()
			if err != nil {
				return nil, err
			}
			if !isLvalue(lhs) {
				return nil, &Error{File: p.file, Line: line, Msg: "assignment to non-lvalue"}
			}
			if op != "=" {
				rhs = &expr{kind: exBinary, line: line, op: op[:len(op)-1], lhs: lhs, rhs: rhs}
			}
			return &expr{kind: exAssign, line: line, lhs: lhs, rhs: rhs}, nil
		}
	}
	return lhs, nil
}

func isLvalue(e *expr) bool {
	return e.kind == exVar || e.kind == exDeref || e.kind == exIndex
}

// binary level table, loosest first.
var binLevels = [][]string{
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) logicalOr() (*expr, error) {
	lhs, err := p.logicalAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tkPunct, "||") {
		line := p.cur().line
		p.pos++
		rhs, err := p.logicalAnd()
		if err != nil {
			return nil, err
		}
		lhs = &expr{kind: exCond, op: "||", line: line, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) logicalAnd() (*expr, error) {
	lhs, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	for p.at(tkPunct, "&&") {
		line := p.cur().line
		p.pos++
		rhs, err := p.binary(0)
		if err != nil {
			return nil, err
		}
		lhs = &expr{kind: exCond, op: "&&", line: line, lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) binary(level int) (*expr, error) {
	if level >= len(binLevels) {
		return p.unary()
	}
	lhs, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binLevels[level] {
			if p.at(tkPunct, op) {
				line := p.cur().line
				p.pos++
				rhs, err := p.binary(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &expr{kind: exBinary, op: op, line: line, lhs: lhs, rhs: rhs}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *parser) unary() (*expr, error) {
	line := p.cur().line
	switch {
	case p.accept(tkPunct, "-"):
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &expr{kind: exUnary, op: "-", line: line, lhs: e}, nil
	case p.accept(tkPunct, "~"):
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &expr{kind: exUnary, op: "~", line: line, lhs: e}, nil
	case p.accept(tkPunct, "!"):
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &expr{kind: exUnary, op: "!", line: line, lhs: e}, nil
	case p.accept(tkPunct, "*"):
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &expr{kind: exDeref, line: line, lhs: e}, nil
	case p.accept(tkPunct, "&"):
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		if e.kind != exVar {
			return nil, &Error{File: p.file, Line: line, Msg: "& is supported on local variables only"}
		}
		return &expr{kind: exAddr, line: line, lhs: e}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (*expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		line := p.cur().line
		switch {
		case p.accept(tkPunct, "["):
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkPunct, "]"); err != nil {
				return nil, err
			}
			e = &expr{kind: exIndex, line: line, lhs: e, rhs: idx}
		case p.at(tkPunct, "(") && e.kind == exGlobal:
			p.pos++
			call := &expr{kind: exCall, line: line, name: e.name}
			for !p.at(tkPunct, ")") {
				if len(call.args) > 0 {
					if _, err := p.expect(tkPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.args = append(call.args, a)
			}
			if _, err := p.expect(tkPunct, ")"); err != nil {
				return nil, err
			}
			if len(call.args) > 6 {
				return nil, &Error{File: p.file, Line: line, Msg: "at most 6 call arguments are supported"}
			}
			e = call
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (*expr, error) {
	t := p.cur()
	switch {
	case p.accept(tkPunct, "("):
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(tkPunct, ")")
		return e, err
	case t.kind == tkNumber:
		p.pos++
		return &expr{kind: exNum, line: t.line, num: t.num}, nil
	case t.kind == tkString:
		p.pos++
		return &expr{kind: exStr, line: t.line, str: t.str}, nil
	case t.kind == tkIdent:
		p.pos++
		if v := p.lookupLocal(t.text); v != nil {
			return &expr{kind: exVar, line: t.line, name: t.text, local: v}, nil
		}
		return &expr{kind: exGlobal, line: t.line, name: t.text}, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}
