package amcc

import (
	"fmt"
	"sort"
	"strings"

	"twochains/internal/asm"
	"twochains/internal/elfobj"
)

// CompileToAsm translates an AMC translation unit to JAM assembly text.
func CompileToAsm(file, src string) (string, error) {
	u, err := parse(file, src)
	if err != nil {
		return "", err
	}
	g := &codegen{u: u}
	return g.run()
}

// Compile translates AMC source all the way to a relocatable object.
func Compile(file, src string) (*elfobj.Object, error) {
	text, err := CompileToAsm(file, src)
	if err != nil {
		return nil, err
	}
	obj, err := asm.Assemble(file, text)
	if err != nil {
		// Generated assembly failing to assemble is a compiler bug.
		return nil, fmt.Errorf("amcc: internal error: generated assembly rejected: %w", err)
	}
	return obj, nil
}

// scratch registers available to the expression evaluator (r0-r2 carry the
// handler arguments / call arguments, r14 is LR, r15 is SP).
var scratchRegs = []int{3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}

type codegen struct {
	u      *unit
	out    strings.Builder
	labelN int

	fn       *function
	frame    int
	spOff    int // static SP displacement below the frame base
	retLabel string
	inUse    []int // allocated scratch registers, LIFO
	breakL   []string
	contL    []string
	externs  map[string]bool
	strLbl   map[string]string
	compErr  error
}

func (g *codegen) errf(line int, format string, args ...any) {
	if g.compErr == nil {
		g.compErr = &Error{File: g.u.file, Line: line, Msg: fmt.Sprintf(format, args...)}
	}
}

func (g *codegen) emit(format string, args ...any) {
	fmt.Fprintf(&g.out, format+"\n", args...)
}

func (g *codegen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf(".L%s%d", prefix, g.labelN)
}

// --- register stack ---

func (g *codegen) alloc(line int) int {
	if len(g.inUse) >= len(scratchRegs) {
		g.errf(line, "expression too complex (out of scratch registers)")
		return scratchRegs[len(scratchRegs)-1]
	}
	r := scratchRegs[len(g.inUse)]
	g.inUse = append(g.inUse, r)
	return r
}

func (g *codegen) release(r int) {
	if len(g.inUse) == 0 || g.inUse[len(g.inUse)-1] != r {
		if g.compErr != nil {
			// Error paths bail out of evaluation early; bookkeeping is
			// best-effort once a diagnostic is latched.
			return
		}
		// LIFO discipline violated: a compiler bug, surface loudly.
		panic(fmt.Sprintf("amcc: scratch release out of order (r%d, stack %v)", r, g.inUse))
	}
	g.inUse = g.inUse[:len(g.inUse)-1]
}

// push spills a register below the frame, tracking the SP displacement so
// local-variable slot offsets stay correct while it is outstanding.
func (g *codegen) push(r int) {
	g.emit("    addi sp, sp, -8")
	g.emit("    st   r%d, [sp+0]", r)
	g.spOff += 8
}

// pop undoes a push into the given register.
func (g *codegen) pop(r int) {
	g.emit("    ld   r%d, [sp+0]", r)
	g.emit("    addi sp, sp, 8")
	g.spOff -= 8
}

// --- driver ---

func (g *codegen) run() (string, error) {
	g.externs = map[string]bool{}
	g.strLbl = map[string]string{}

	g.emit(".text")
	for _, fn := range g.u.funcs {
		g.genFunc(fn)
		if g.compErr != nil {
			return "", g.compErr
		}
	}

	// Externs actually referenced.
	var exts []string
	for name := range g.externs {
		exts = append(exts, name)
	}
	sort.Strings(exts)
	for _, name := range exts {
		g.emit(".extern %s", name)
	}

	// String pool.
	if len(g.u.strs) > 0 {
		g.emit(".rodata")
		for _, s := range g.u.strs {
			g.emit("%s:", g.strLbl[s])
			g.emit("    .asciz %q", s)
		}
	}

	// Globals (rieds): initialized to .data, zero to .bss.
	var datas, bsses []*globalDef
	for _, gd := range g.u.globals {
		if gd.init != nil {
			datas = append(datas, gd)
		} else {
			bsses = append(bsses, gd)
		}
	}
	if len(datas) > 0 {
		g.emit(".data")
		for _, gd := range datas {
			g.emit(".global %s", gd.name)
			g.emit("%s:", gd.name)
			g.emit("    .quad %d", *gd.init)
		}
	}
	if len(bsses) > 0 {
		g.emit(".bss")
		for _, gd := range bsses {
			g.emit(".global %s", gd.name)
			g.emit("%s:", gd.name)
			g.emit("    .space %d", gd.count*gd.elem)
		}
	}
	return g.out.String(), nil
}

// slotOff returns the current sp-relative offset of a local, accounting
// for any temporary stack pushes the code generator has emitted (argument
// parking and live-register saves move SP below the frame base).
func (g *codegen) slotOff(v *localVar) int { return v.offset + g.spOff }

func (g *codegen) genFunc(fn *function) {
	g.fn = fn
	// Frame: [0]=LR, then one 8-byte slot per local (params included).
	for i, v := range fn.locals {
		v.offset = 8 * (1 + i)
	}
	g.frame = 8 * (1 + len(fn.locals))
	if g.frame%16 != 0 {
		g.frame += 8
	}

	g.spOff = 0
	g.emit(".global %s", fn.name)
	g.emit("%s:", fn.name)
	g.emit("    addi sp, sp, -%d", g.frame)
	g.emit("    st   lr, [sp+0]")
	for i, prm := range fn.params {
		g.emit("    st   r%d, [sp+%d]", i, g.slotOff(prm))
	}
	retL := g.label("ret")
	g.retLabel = retL
	g.genStmt(fn.body)
	g.emit("%s:", retL)
	g.emit("    ld   lr, [sp+0]")
	g.emit("    addi sp, sp, %d", g.frame)
	g.emit("    ret")
	if len(g.inUse) != 0 {
		if g.compErr == nil {
			panic(fmt.Sprintf("amcc: scratch registers leaked in %s: %v", fn.name, g.inUse))
		}
		g.inUse = g.inUse[:0]
	}
}

// --- statements ---

func (g *codegen) genStmt(s *stmt) {
	if g.compErr != nil {
		return
	}
	switch s.kind {
	case stBlock:
		for _, inner := range s.stmts {
			g.genStmt(inner)
		}
	case stExpr:
		r, _ := g.genExpr(s.expr)
		g.release(r)
	case stDecl:
		if s.expr != nil {
			r, _ := g.genExpr(s.expr)
			g.emit("    st   r%d, [sp+%d]", r, g.slotOff(s.local))
			g.release(r)
		} else {
			r := g.alloc(s.line)
			g.emit("    movi r%d, 0", r)
			g.emit("    st   r%d, [sp+%d]", r, g.slotOff(s.local))
			g.release(r)
		}
	case stReturn:
		if s.expr != nil {
			r, _ := g.genExpr(s.expr)
			g.emit("    mov  r0, r%d", r)
			g.release(r)
		}
		g.emit("    jmp  %s", g.retLabel)
	case stIf:
		elseL, endL := g.label("else"), g.label("endif")
		g.genBranchIfZero(s.cond, elseL)
		g.genStmt(s.body)
		if s.alt != nil {
			g.emit("    jmp  %s", endL)
		}
		g.emit("%s:", elseL)
		if s.alt != nil {
			g.genStmt(s.alt)
			g.emit("%s:", endL)
		}
	case stWhile:
		condL, endL := g.label("while"), g.label("wend")
		g.breakL = append(g.breakL, endL)
		g.contL = append(g.contL, condL)
		g.emit("%s:", condL)
		g.genBranchIfZero(s.cond, endL)
		g.genStmt(s.body)
		g.emit("    jmp  %s", condL)
		g.emit("%s:", endL)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
	case stFor:
		condL, contL, endL := g.label("for"), g.label("fcont"), g.label("fend")
		if s.init != nil {
			g.genStmt(s.init)
		}
		g.breakL = append(g.breakL, endL)
		g.contL = append(g.contL, contL)
		g.emit("%s:", condL)
		if s.cond != nil {
			g.genBranchIfZero(s.cond, endL)
		}
		g.genStmt(s.body)
		g.emit("%s:", contL)
		if s.post != nil {
			g.genStmt(s.post)
		}
		g.emit("    jmp  %s", condL)
		g.emit("%s:", endL)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
	case stBreak:
		if len(g.breakL) == 0 {
			g.errf(s.line, "break outside a loop")
			return
		}
		g.emit("    jmp  %s", g.breakL[len(g.breakL)-1])
	case stContinue:
		if len(g.contL) == 0 {
			g.errf(s.line, "continue outside a loop")
			return
		}
		g.emit("    jmp  %s", g.contL[len(g.contL)-1])
	}
}

// genBranchIfZero evaluates cond and branches to target when it is zero.
func (g *codegen) genBranchIfZero(cond *expr, target string) {
	r, _ := g.genExpr(cond)
	z := g.alloc(cond.line)
	g.emit("    movi r%d, 0", z)
	g.emit("    beq  r%d, r%d, %s", r, z, target)
	g.release(z)
	g.release(r)
}

// --- expressions ---

// genExpr evaluates e into a freshly allocated scratch register.
func (g *codegen) genExpr(e *expr) (int, Type) {
	if g.compErr != nil {
		return scratchRegs[0], TypeLong
	}
	switch e.kind {
	case exNum:
		r := g.alloc(e.line)
		g.loadConst(r, e.num)
		return r, TypeLong

	case exStr:
		lbl, ok := g.strLbl[e.str]
		if !ok {
			lbl = g.label("str")
			g.strLbl[e.str] = lbl
			g.u.strs = append(g.u.strs, e.str)
		}
		r := g.alloc(e.line)
		g.emit("    lea  r%d, %s", r, lbl)
		return r, TypePtrByte

	case exVar:
		r := g.alloc(e.line)
		g.emit("    ld   r%d, [sp+%d]", r, g.slotOff(e.local))
		return r, e.local.typ

	case exGlobal:
		sym, ok := g.u.syms[e.name]
		if !ok {
			g.errf(e.line, "undeclared identifier %q", e.name)
			return g.alloc(e.line), TypeLong
		}
		if sym.isFunc {
			g.errf(e.line, "function %q used as a value (function pointers are not supported)", e.name)
			return g.alloc(e.line), TypeLong
		}
		if sym.isExtern {
			g.externs[e.name] = true
		}
		r := g.alloc(e.line)
		g.emit("    ldg  r%d, %s", r, e.name)
		return r, sym.typ

	case exUnary:
		r, t := g.genExpr(e.lhs)
		switch e.op {
		case "-":
			g.emit("    muli r%d, r%d, -1", r, r)
		case "~":
			g.emit("    xori r%d, r%d, -1", r, r)
		case "!":
			z := g.alloc(e.line)
			g.emit("    movi r%d, 0", z)
			g.emit("    seq  r%d, r%d, r%d", r, r, z)
			g.release(z)
		}
		_ = t
		return r, TypeLong

	case exDeref:
		r, t := g.genExpr(e.lhs)
		if !t.isPtr() {
			g.errf(e.line, "dereference of non-pointer")
		}
		if t == TypePtrByte {
			g.emit("    ldb  r%d, [r%d+0]", r, r)
		} else {
			g.emit("    ld   r%d, [r%d+0]", r, r)
		}
		return r, TypeLong

	case exAddr:
		r := g.alloc(e.line)
		g.emit("    addi r%d, sp, %d", r, g.slotOff(e.lhs.local))
		return r, TypePtrLong

	case exIndex:
		addr, width := g.genAddrIndex(e)
		if width == 1 {
			g.emit("    ldb  r%d, [r%d+0]", addr, addr)
		} else {
			g.emit("    ld   r%d, [r%d+0]", addr, addr)
		}
		return addr, TypeLong

	case exBinary:
		return g.genBinary(e)

	case exAssign:
		return g.genAssign(e)

	case exCall:
		return g.genCall(e)

	case exCond:
		return g.genShortCircuit(e)
	}
	g.errf(e.line, "internal: unhandled expression kind %d", e.kind)
	return g.alloc(e.line), TypeLong
}

func (g *codegen) loadConst(r int, v int64) {
	if v >= -(1<<31) && v < (1<<31) {
		g.emit("    movi r%d, %d", r, v)
		return
	}
	g.emit("    movi  r%d, %d", r, int32(uint32(uint64(v))))
	g.emit("    moviu r%d, %d", r, int32(uint32(uint64(v)>>32)))
}

// genAddrIndex computes the address of base[idx] and returns the register
// holding it plus the element width.
func (g *codegen) genAddrIndex(e *expr) (int, int64) {
	base, bt := g.genExpr(e.lhs)
	if !bt.isPtr() {
		g.errf(e.line, "indexing a non-pointer")
		bt = TypePtrLong
	}
	idx, _ := g.genExpr(e.rhs)
	if bt.elemSize() == 8 {
		g.emit("    shli r%d, r%d, 3", idx, idx)
	}
	g.emit("    add  r%d, r%d, r%d", base, base, idx)
	g.release(idx)
	return base, bt.elemSize()
}

// genAddr computes the address (and width) of an lvalue.
func (g *codegen) genAddr(e *expr) (int, int64) {
	switch e.kind {
	case exVar:
		r := g.alloc(e.line)
		g.emit("    addi r%d, sp, %d", r, g.slotOff(e.local))
		return r, 8
	case exDeref:
		r, t := g.genExpr(e.lhs)
		if !t.isPtr() {
			g.errf(e.line, "dereference of non-pointer")
			t = TypePtrLong
		}
		return r, t.elemSize()
	case exIndex:
		return g.genAddrIndex(e)
	}
	g.errf(e.line, "internal: not an lvalue")
	return g.alloc(e.line), 8
}

func (g *codegen) genAssign(e *expr) (int, Type) {
	// Evaluate the value first so the address register is on top of the
	// LIFO stack when released.
	v, vt := g.genExpr(e.rhs)
	addr, width := g.genAddr(e.lhs)
	if width == 1 {
		g.emit("    stb  r%d, [r%d+0]", v, addr)
	} else {
		g.emit("    st   r%d, [r%d+0]", v, addr)
	}
	g.release(addr)
	return v, vt
}

func (g *codegen) genBinary(e *expr) (int, Type) {
	l, lt := g.genExpr(e.lhs)
	r, rt := g.genExpr(e.rhs)
	resT := TypeLong

	switch e.op {
	case "+", "-":
		// Pointer arithmetic scales the integer side.
		if lt.isPtr() && !rt.isPtr() {
			if lt.elemSize() == 8 {
				g.emit("    shli r%d, r%d, 3", r, r)
			}
			resT = lt
		} else if !lt.isPtr() && rt.isPtr() && e.op == "+" {
			if rt.elemSize() == 8 {
				g.emit("    shli r%d, r%d, 3", l, l)
			}
			resT = rt
		}
		op := "add"
		if e.op == "-" {
			op = "sub"
		}
		g.emit("    %s  r%d, r%d, r%d", op, l, l, r)
		if lt.isPtr() && rt.isPtr() && e.op == "-" {
			if lt.elemSize() == 8 {
				g.emit("    shri r%d, r%d, 3", l, l)
			}
			resT = TypeLong
		}
	case "*":
		g.emit("    mul  r%d, r%d, r%d", l, l, r)
	case "/":
		g.emit("    div  r%d, r%d, r%d", l, l, r)
	case "%":
		g.emit("    rem  r%d, r%d, r%d", l, l, r)
	case "&":
		g.emit("    and  r%d, r%d, r%d", l, l, r)
	case "|":
		g.emit("    or   r%d, r%d, r%d", l, l, r)
	case "^":
		g.emit("    xor  r%d, r%d, r%d", l, l, r)
	case "<<":
		g.emit("    shl  r%d, r%d, r%d", l, l, r)
	case ">>":
		g.emit("    shr  r%d, r%d, r%d", l, l, r)
	case "==":
		g.emit("    seq  r%d, r%d, r%d", l, l, r)
	case "!=":
		g.emit("    seq  r%d, r%d, r%d", l, l, r)
		g.emit("    xori r%d, r%d, 1", l, l)
	case "<", ">", "<=", ">=":
		cmp := "slt"
		if lt.isPtr() || rt.isPtr() {
			cmp = "sltu"
		}
		switch e.op {
		case "<":
			g.emit("    %s r%d, r%d, r%d", cmp, l, l, r)
		case ">":
			g.emit("    %s r%d, r%d, r%d", cmp, l, r, l)
		case "<=": // !(r < l)
			g.emit("    %s r%d, r%d, r%d", cmp, l, r, l)
			g.emit("    xori r%d, r%d, 1", l, l)
		case ">=": // !(l < r)
			g.emit("    %s r%d, r%d, r%d", cmp, l, l, r)
			g.emit("    xori r%d, r%d, 1", l, l)
		}
	default:
		g.errf(e.line, "internal: unhandled operator %q", e.op)
	}
	g.release(r)
	return l, resT
}

func (g *codegen) genShortCircuit(e *expr) (int, Type) {
	// The result register is allocated FIRST so operand registers release
	// cleanly around it.
	res := g.alloc(e.line)
	end := g.label("sc")
	if e.op == "&&" {
		g.emit("    movi r%d, 0", res)
	} else {
		g.emit("    movi r%d, 1", res)
	}
	test := func(sub *expr) {
		v, _ := g.genExpr(sub)
		z := g.alloc(sub.line)
		g.emit("    movi r%d, 0", z)
		if e.op == "&&" {
			g.emit("    beq  r%d, r%d, %s", v, z, end)
		} else {
			g.emit("    bne  r%d, r%d, %s", v, z, end)
		}
		g.release(z)
		g.release(v)
	}
	test(e.lhs)
	test(e.rhs)
	if e.op == "&&" {
		g.emit("    movi r%d, 1", res)
	} else {
		g.emit("    movi r%d, 0", res)
	}
	g.emit("%s:", end)
	return res, TypeLong
}

func (g *codegen) genCall(e *expr) (int, Type) {
	sym, ok := g.u.syms[e.name]
	if !ok {
		g.errf(e.line, "call to undeclared function %q", e.name)
		return g.alloc(e.line), TypeLong
	}
	if !sym.isFunc {
		g.errf(e.line, "%q is not a function", e.name)
		return g.alloc(e.line), TypeLong
	}
	if len(e.args) != sym.numParam {
		g.errf(e.line, "%s expects %d arguments, got %d", e.name, sym.numParam, len(e.args))
	}

	// Save live scratch registers (caller-saved across calls).
	live := append([]int(nil), g.inUse...)
	for _, r := range live {
		g.push(r)
	}
	// Evaluate arguments left to right, parking each on the stack.
	for _, a := range e.args {
		r, _ := g.genExpr(a)
		g.push(r)
		g.release(r)
	}
	// Pop into the argument registers in reverse.
	for i := len(e.args) - 1; i >= 0; i-- {
		g.pop(i)
	}
	if sym.isExtern {
		g.externs[e.name] = true
		g.emit("    callg %s", e.name)
	} else {
		g.emit("    call %s", e.name)
	}
	// Restore live scratches.
	for i := len(live) - 1; i >= 0; i-- {
		g.pop(live[i])
	}
	res := g.alloc(e.line)
	g.emit("    mov  r%d, r0", res)
	return res, sym.retType
}
