// Package amcc implements the AMC compiler: a compact C-subset front end
// for authoring Two-Chains active messages and rieds, compiling to JAM
// assembly (and onward, through the in-repo assembler and linker, to
// packages). It plays the role of GCC in the paper's toolchain, whose
// build flow "takes C source files, then statically modifies the assembly"
// — here the GOT discipline is generated directly: external references
// compile to callg/ldg, the forms the jam extractor rewrites.
//
// The language: 64-bit `long` scalars, `long*` and `byte*` pointers,
// functions, locals, globals (for rieds), string literals, the usual
// operators with C precedence, if/else, while, for, break, continue,
// return. Externs declare foreign symbols resolved through the GOT.
package amcc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkPunct
	tkKeyword
)

type token struct {
	kind tokKind
	text string
	num  int64
	str  string
	line int
}

// Error is a compile diagnostic with position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

var keywords = map[string]bool{
	"long": true, "byte": true, "void": true, "extern": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
}

// punctuators, longest first so the scanner is greedy.
var puncts = []string{
	"<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
	"=", "(", ")", "{", "}", "[", "]", ";", ",",
}

type lexer struct {
	file string
	src  string
	pos  int
	line int
	toks []token
}

func lex(file, src string) ([]token, error) {
	lx := &lexer{file: file, src: src, line: 1}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, tok)
		if tok.kind == tkEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) errf(format string, args ...any) error {
	return &Error{File: lx.file, Line: lx.line, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				return token{}, lx.errf("unterminated block comment")
			}
			lx.line += strings.Count(lx.src[lx.pos:lx.pos+2+end+2], "\n")
			lx.pos += 2 + end + 2
		default:
			goto scan
		}
	}
	return token{kind: tkEOF, line: lx.line}, nil

scan:
	c := lx.src[lx.pos]
	start := lx.pos
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for lx.pos < len(lx.src) && (isIdentChar(lx.src[lx.pos])) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		kind := tkIdent
		if keywords[text] {
			kind = tkKeyword
		}
		return token{kind: kind, text: text, line: lx.line}, nil

	case c >= '0' && c <= '9':
		for lx.pos < len(lx.src) && (isIdentChar(lx.src[lx.pos])) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			// Allow full-range unsigned hex constants.
			u, uerr := strconv.ParseUint(text, 0, 64)
			if uerr != nil {
				return token{}, lx.errf("bad number %q", text)
			}
			v = int64(u)
		}
		return token{kind: tkNumber, text: text, num: v, line: lx.line}, nil

	case c == '\'':
		end := strings.Index(lx.src[lx.pos+1:], "'")
		if end < 0 {
			return token{}, lx.errf("unterminated char literal")
		}
		lit := lx.src[lx.pos : lx.pos+end+2]
		unq, err := strconv.Unquote(lit)
		if err != nil || len(unq) != 1 {
			return token{}, lx.errf("bad char literal %s", lit)
		}
		lx.pos += end + 2
		return token{kind: tkNumber, text: lit, num: int64(unq[0]), line: lx.line}, nil

	case c == '"':
		i := lx.pos + 1
		for i < len(lx.src) && lx.src[i] != '"' {
			if lx.src[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(lx.src) {
			return token{}, lx.errf("unterminated string literal")
		}
		lit := lx.src[lx.pos : i+1]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return token{}, lx.errf("bad string literal: %v", err)
		}
		lx.pos = i + 1
		return token{kind: tkString, text: lit, str: unq, line: lx.line}, nil

	default:
		for _, p := range puncts {
			if strings.HasPrefix(lx.src[lx.pos:], p) {
				lx.pos += len(p)
				return token{kind: tkPunct, text: p, line: lx.line}, nil
			}
		}
		return token{}, lx.errf("unexpected character %q", c)
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || c == 'x' || c == 'X' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
