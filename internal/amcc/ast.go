package amcc

// Type is the AMC type lattice: 64-bit scalars plus two pointer widths.
type Type int

const (
	TypeLong    Type = iota // 64-bit integer (also the result of all arithmetic)
	TypePtrLong             // long*  (8-byte element)
	TypePtrByte             // byte*  (1-byte element)
	TypeVoid                // function return only
)

func (t Type) String() string {
	switch t {
	case TypeLong:
		return "long"
	case TypePtrLong:
		return "long*"
	case TypePtrByte:
		return "byte*"
	case TypeVoid:
		return "void"
	}
	return "?"
}

// elemSize returns the pointee size for pointer arithmetic.
func (t Type) elemSize() int64 {
	if t == TypePtrLong {
		return 8
	}
	return 1
}

func (t Type) isPtr() bool { return t == TypePtrLong || t == TypePtrByte }

// exprKind enumerates expression nodes.
type exprKind int

const (
	exNum exprKind = iota
	exStr
	exVar    // local variable or parameter
	exGlobal // module-level symbol (defined or extern)
	exUnary
	exBinary
	exAssign
	exCall
	exIndex // base[idx]
	exDeref // *p
	exAddr  // &lvalue
	exCond  // a && b, a || b (short-circuit)
)

type expr struct {
	kind exprKind
	line int
	typ  Type

	num  int64
	str  string
	name string // variable / symbol / call target
	op   string

	lhs, rhs *expr
	args     []*expr

	local *localVar // resolved local for exVar
	sym   *symbol   // resolved symbol for exGlobal / direct calls
}

// stmtKind enumerates statement nodes.
type stmtKind int

const (
	stExpr stmtKind = iota
	stReturn
	stIf
	stWhile
	stFor
	stBlock
	stDecl
	stBreak
	stContinue
)

type stmt struct {
	kind stmtKind
	line int

	expr       *expr // stExpr, stReturn (may be nil), stDecl initializer
	cond       *expr
	init, post *stmt // for
	body       *stmt
	alt        *stmt // else
	stmts      []*stmt
	local      *localVar // stDecl
}

// localVar is a stack slot.
type localVar struct {
	name   string
	typ    Type
	offset int // sp-relative, assigned at codegen
}

// symbol is a module-level name: a function, a global object, or an extern.
type symbol struct {
	name     string
	typ      Type // for objects: the pointer type an expression naming it has
	isFunc   bool
	isExtern bool
	retType  Type
	numParam int
}

// function is a parsed function definition.
type function struct {
	name   string
	ret    Type
	params []*localVar
	body   *stmt
	locals []*localVar // all locals including params
	line   int
}

// globalDef is a module-level object definition (rieds only).
type globalDef struct {
	name  string
	count int64 // array length in elements (1 for scalars)
	elem  int64 // element size (8 for long, 1 for byte)
	init  *int64
	line  int
}

// unit is a parsed translation unit.
type unit struct {
	file    string
	funcs   []*function
	globals []*globalDef
	syms    map[string]*symbol
	strs    []string // string literal pool, in emission order
}
