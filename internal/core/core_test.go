package core

import (
	"strings"
	"testing"

	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

// bench is a two-node cluster with the tcbench package installed on both
// sides and a channel from A to B.
type bench struct {
	c    *Cluster
	a, b *Node
	ab   *Channel
	pkg  *Package
}

func newBench(t *testing.T, frameSize int, nodeCfg NodeConfig, chOpts ChannelOptions) *bench {
	t.Helper()
	pkg, err := BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(DefaultClusterConfig())
	a, err := c.AddNode("A", nodeCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddNode("B", nodeCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Node{a, b} {
		if _, err := n.InstallPackage(pkg); err != nil {
			t.Fatal(err)
		}
	}
	g := mailbox.Geometry{Banks: 2, Slots: 4, FrameSize: frameSize}
	rcfg := mailbox.DefaultReceiverConfig(g)
	rcfg.Credits = true
	if err := b.EnableMailbox(rcfg); err != nil {
		t.Fatal(err)
	}
	ch, err := Connect(a, b, chOpts)
	if err != nil {
		t.Fatal(err)
	}
	return &bench{c: c, a: a, b: b, ab: ch, pkg: pkg}
}

func quickCfg() NodeConfig {
	cfg := DefaultNodeConfig()
	cfg.Timing = false
	cfg.MemBytes = 32 << 20
	return cfg
}

// expectedSum mirrors jam_sssum's summation: u64 words then byte tail.
func expectedSum(payload []byte) uint64 {
	var sum uint64
	i := 0
	for ; i+8 <= len(payload); i += 8 {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(payload[i+j]) << (8 * j)
		}
		sum += w
	}
	for ; i < len(payload); i++ {
		sum += uint64(payload[i])
	}
	return sum
}

func TestBenchPackageShape(t *testing.T) {
	pkg, err := BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	iput, ok := pkg.Element("jam_iput")
	if !ok {
		t.Fatal("jam_iput missing")
	}
	// §VII-A: "The code for Indirect Put is 1408 bytes when shipped."
	if got := iput.Jam.ShippedSize(); got != 1408 {
		t.Fatalf("jam_iput shipped size = %d, want 1408", got)
	}
	sssum, ok := pkg.Element("jam_sssum")
	if !ok {
		t.Fatal("jam_sssum missing")
	}
	if sssum.Jam.ShippedSize() >= iput.Jam.ShippedSize() {
		t.Fatal("sssum jam should be smaller than iput")
	}
	if pkg.LocalLib == nil {
		t.Fatal("no local function library")
	}
	if len(pkg.Jams()) != 3 {
		t.Fatalf("jams = %d", len(pkg.Jams()))
	}
}

func TestPackageEncodeDecode(t *testing.T) {
	pkg, err := BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePackage(pkg.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != pkg.Name || len(back.Elements) != len(pkg.Elements) {
		t.Fatalf("package round trip: %s %d", back.Name, len(back.Elements))
	}
	bi, _ := back.Element("jam_iput")
	pi, _ := pkg.Element("jam_iput")
	if bi.Jam.ShippedSize() != pi.Jam.ShippedSize() {
		t.Fatal("jam lost in round trip")
	}
	if back.LocalLib == nil {
		t.Fatal("local lib lost")
	}
}

func TestInjectedSSSum(t *testing.T) {
	bn := newBench(t, 1024, quickCfg(), ChannelOptions{})
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var ret uint64
	bn.b.OnExecuted = func(r uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
		}
		ret = r
	}
	if err := bn.ab.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, payload, nil); err != nil {
		t.Fatal(err)
	}
	bn.c.Run()
	want := expectedSum(payload)
	if ret != want {
		t.Fatalf("sum = %d, want %d", ret, want)
	}
	// The result was stored into the server's results array.
	resVA, _ := bn.b.SymbolVA("tc_results")
	v, err := bn.b.AS.ReadU64(resVA)
	if err != nil || v != want {
		t.Fatalf("tc_results[0] = %d, %v", v, err)
	}
	nextVA, _ := bn.b.SymbolVA("tc_result_next")
	nv, _ := bn.b.AS.ReadU64(nextVA)
	if nv != 1 {
		t.Fatalf("tc_result_next = %d", nv)
	}
}

func TestLocalMatchesInjected(t *testing.T) {
	// The two invocation methods must compute identical results from the
	// same source (paper §IV-B: same package, same code).
	for _, size := range []int{8, 60, 256, 1000} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i*13 + size)
		}
		run := func(local bool) uint64 {
			bn := newBench(t, 2048, quickCfg(), ChannelOptions{})
			var ret uint64
			bn.b.OnExecuted = func(r uint64, _ sim.Duration, err error) {
				if err != nil {
					t.Errorf("exec: %v", err)
				}
				ret = r
			}
			var err error
			if local {
				err = bn.ab.Handle("tcbench", "jam_sssum").CallLocal([2]uint64{}, payload, nil)
			} else {
				err = bn.ab.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, payload, nil)
			}
			if err != nil {
				t.Fatal(err)
			}
			bn.c.Run()
			return ret
		}
		li, inj := run(true), run(false)
		if li != inj || li != expectedSum(payload) {
			t.Fatalf("size %d: local %d, injected %d, want %d", size, li, inj, expectedSum(payload))
		}
	}
}

func TestIndirectPut(t *testing.T) {
	bn := newBench(t, 2048, quickCfg(), ChannelOptions{})
	payload := []byte("indirect put payload: the client controls placement")
	var offsets []uint64
	bn.b.OnExecuted = func(r uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
		}
		offsets = append(offsets, r)
	}
	// Same key twice, then a different key.
	for _, key := range []uint64{42, 42, 99} {
		if err := bn.ab.Handle("tcbench", "jam_iput").Inject([2]uint64{key, 0}, payload, nil); err != nil {
			t.Fatal(err)
		}
	}
	bn.c.Run()
	if len(offsets) != 3 {
		t.Fatalf("executed %d times", len(offsets))
	}
	if offsets[0] != offsets[1] {
		t.Fatalf("same key landed at different offsets: %d vs %d", offsets[0], offsets[1])
	}
	// Payload actually arrived at heap+offset.
	heapVA, _ := bn.b.SymbolVA("tc_heap")
	got, err := bn.b.AS.ReadBytes(heapVA+offsets[0], len(payload))
	if err != nil || string(got) != string(payload) {
		t.Fatalf("heap data %q, %v", got, err)
	}
	// The hash table recorded both keys.
	tableVA, _ := bn.b.SymbolVA("tc_table")
	foundKeys := map[uint64]bool{}
	for slot := 0; slot < 65536; slot++ {
		k, _ := bn.b.AS.ReadU64(tableVA + uint64(slot*16))
		if k != 0 {
			foundKeys[k] = true
		}
	}
	if !foundKeys[42] || !foundKeys[99] {
		t.Fatalf("table keys %v", foundKeys)
	}
}

func TestJamHelloPrintfWithTravellingRodata(t *testing.T) {
	bn := newBench(t, 1024, quickCfg(), ChannelOptions{})
	if err := bn.ab.Handle("tcbench", "jam_hello").Inject([2]uint64{7, 0}, []byte("xyz"), nil); err != nil {
		t.Fatal(err)
	}
	bn.c.Run()
	out := bn.b.Stdout.String()
	if !strings.Contains(out, "hello from node 7 (payload 3 bytes)") {
		t.Fatalf("stdout = %q", out)
	}
}

func TestInjectMissingSymbolFails(t *testing.T) {
	// Receiver without the ried: the namespace exchange lacks tc_table.
	pkg, err := BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(DefaultClusterConfig())
	a, _ := c.AddNode("A", quickCfg())
	b, _ := c.AddNode("B", quickCfg())
	if _, err := a.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	// B gets no package at all.
	g := mailbox.Geometry{Banks: 1, Slots: 1, FrameSize: 2048}
	if err := b.EnableMailbox(mailbox.DefaultReceiverConfig(g)); err != nil {
		t.Fatal(err)
	}
	ch, err := Connect(a, b, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = ch.Handle("tcbench", "jam_iput").Inject([2]uint64{1, 0}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "tc_") {
		t.Fatalf("inject without ried: %v", err)
	}
}

func TestAutoSwitchToLocal(t *testing.T) {
	bn := newBench(t, 1024, quickCfg(), ChannelOptions{AutoSwitchAfter: 2})
	var kinds []bool
	for i := 0; i < 5; i++ {
		err := bn.ab.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, []byte{1, 2, 3, 4, 5, 6, 7, 8},
			func(r Result) { kinds = append(kinds, r.Injected) })
		if err != nil {
			t.Fatal(err)
		}
	}
	bn.c.Run()
	if len(kinds) != 5 {
		t.Fatalf("delivered %d", len(kinds))
	}
	want := []bool{true, true, false, false, false}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("auto-switch pattern %v, want %v", kinds, want)
		}
	}
	if bn.b.Receiver.Stats().Processed != 5 {
		t.Fatal("not all processed")
	}
}

func TestSecureExecMode(t *testing.T) {
	cfg := quickCfg()
	cfg.SecureExec = true
	cfg.CheckExec = true
	bn := newBench(t, 1024, cfg, ChannelOptions{})
	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(i)
	}
	var ret uint64
	var execErr error
	bn.b.OnExecuted = func(r uint64, _ sim.Duration, err error) { ret, execErr = r, err }
	if err := bn.ab.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, payload, nil); err != nil {
		t.Fatal(err)
	}
	bn.c.Run()
	if execErr != nil {
		t.Fatal(execErr)
	}
	if ret != expectedSum(payload) {
		t.Fatalf("secure exec sum = %d, want %d", ret, expectedSum(payload))
	}
}

func TestPerProcessOverloading(t *testing.T) {
	// Paper §IV: "A program can easily define different functions with
	// the same symbolic name for different processes, so that when a
	// message arrives it will call a function specific to that process."
	mkRied := func(factor int) map[string]string {
		return map[string]string{
			"ried_scale.rds": `
.text
.global tc_scale
tc_scale:
    muli r0, r0, ` + itoa(factor) + `
    ret
`,
		}
	}
	jamSrc := `
.extern tc_scale
.global jam_scaled
jam_scaled:
    addi sp, sp, -16
    st   lr, [sp+0]
    ld   r0, [r0+0]
    callg tc_scale
    ld   lr, [sp+0]
    addi sp, sp, 16
    ret
`
	pkgB, err := BuildPackage("scaled", map[string]string{"jam_scaled.ams": jamSrc, "ried_scale.rds": mkRied(10)["ried_scale.rds"]})
	if err != nil {
		t.Fatal(err)
	}
	pkgC, err := BuildPackage("scaled", map[string]string{"jam_scaled.ams": jamSrc, "ried_scale.rds": mkRied(100)["ried_scale.rds"]})
	if err != nil {
		t.Fatal(err)
	}
	pkgA, err := BuildPackage("scaled", map[string]string{"jam_scaled.ams": jamSrc, "ried_scale.rds": mkRied(1)["ried_scale.rds"]})
	if err != nil {
		t.Fatal(err)
	}

	c := NewCluster(DefaultClusterConfig())
	a, _ := c.AddNode("A", quickCfg())
	b, _ := c.AddNode("B", quickCfg())
	d, _ := c.AddNode("C", quickCfg())
	if _, err := a.InstallPackage(pkgA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InstallPackage(pkgB); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InstallPackage(pkgC); err != nil {
		t.Fatal(err)
	}
	g := mailbox.Geometry{Banks: 1, Slots: 2, FrameSize: 512}
	if err := b.EnableMailbox(mailbox.DefaultReceiverConfig(g)); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableMailbox(mailbox.DefaultReceiverConfig(g)); err != nil {
		t.Fatal(err)
	}
	chB, err := Connect(a, b, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chC, err := Connect(a, d, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var retB, retC uint64
	b.OnExecuted = func(r uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Errorf("B: %v", err)
		}
		retB = r
	}
	d.OnExecuted = func(r uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Errorf("C: %v", err)
		}
		retC = r
	}
	// The same jam, injected to two processes, resolves tc_scale
	// differently on each.
	if err := chB.Handle("scaled", "jam_scaled").Inject([2]uint64{5, 0}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := chC.Handle("scaled", "jam_scaled").Inject([2]uint64{5, 0}, nil, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if retB != 50 || retC != 500 {
		t.Fatalf("overloading: B=%d (want 50) C=%d (want 500)", retB, retC)
	}
}

func TestRiedHotSwapChangesBehaviour(t *testing.T) {
	// Remote linking update: loading a new ried version rebinds the name
	// and subsequent messages see the new behaviour, without restarting.
	jamSrc := `
.extern tc_op
.global jam_op
jam_op:
    addi sp, sp, -16
    st   lr, [sp+0]
    ld   r0, [r0+0]
    callg tc_op
    ld   lr, [sp+0]
    addi sp, sp, 16
    ret
`
	v1 := `
.text
.global tc_op
tc_op:
    addi r0, r0, 1
    ret
`
	v2 := `
.text
.global tc_op
tc_op:
    muli r0, r0, 2
    ret
`
	pkg, err := BuildPackage("ops", map[string]string{"jam_op.ams": jamSrc, "ried_op.rds": v1})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(DefaultClusterConfig())
	a, _ := c.AddNode("A", quickCfg())
	b, _ := c.AddNode("B", quickCfg())
	if _, err := a.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	g := mailbox.Geometry{Banks: 1, Slots: 2, FrameSize: 512}
	if err := b.EnableMailbox(mailbox.DefaultReceiverConfig(g)); err != nil {
		t.Fatal(err)
	}
	ch, err := Connect(a, b, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var results []uint64
	b.OnExecuted = func(r uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
		}
		results = append(results, r)
	}
	if err := ch.Handle("ops", "jam_op").Inject([2]uint64{10, 0}, nil, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()

	// Hot-swap: build and install v2 of the ried, replacing the binding.
	pkg2, err := BuildPackage("ops2", map[string]string{"ried_op.rds": v2})
	if err != nil {
		t.Fatal(err)
	}
	riedV2, _ := pkg2.Element("ried_op")
	if _, err := b.InstallRied(riedV2.Ried, true); err != nil {
		t.Fatal(err)
	}
	ch.RefreshNames()

	if err := ch.Handle("ops", "jam_op").Inject([2]uint64{10, 0}, nil, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if len(results) != 2 || results[0] != 11 || results[1] != 20 {
		t.Fatalf("hot swap results %v, want [11 20]", results)
	}
}

func TestTimingPathProducesCosts(t *testing.T) {
	cfg := DefaultNodeConfig()
	cfg.MemBytes = 32 << 20
	bn := newBench(t, 2048, cfg, ChannelOptions{})
	var cost sim.Duration
	bn.b.OnExecuted = func(_ uint64, c sim.Duration, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
		}
		cost = c
	}
	if err := bn.ab.Handle("tcbench", "jam_iput").Inject([2]uint64{7, 0}, make([]byte, 256), nil); err != nil {
		t.Fatal(err)
	}
	bn.c.Run()
	if cost <= 0 {
		t.Fatal("no execution cost recorded")
	}
	if bn.b.Counter.Total() <= 0 {
		t.Fatal("no cycles accounted")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
