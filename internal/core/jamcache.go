package core

import (
	"fmt"
	"sort"

	"twochains/internal/mailbox"
)

// JamCacheStats counts prepared-jam cache activity on one sender node.
type JamCacheStats struct {
	// Binds is the number of bind operations actually performed (cache
	// misses); Hits is the number of lookups served from the cache.
	Binds uint64
	Hits  uint64
}

// jamCacheKey identifies a prepared jam: the element (by its integer
// installed-package and element IDs, resolved before the cache is
// consulted — no string building or string hashing on the lookup path)
// plus a fingerprint of the receiver namespace it was bound against. Two
// channels whose receivers expose identical namespaces (the common case
// in a mesh, where every node installs the same packages in the same
// order) share one prepared image.
type jamCacheKey struct {
	pkgID, elemID uint8
	nsFP          uint64
}

// jamCacheGenerations bounds the live namespace generations cached per
// element. Distinct fingerprints coexist legitimately (channels to
// receivers with different namespaces), but ried hot-swaps keep minting
// new ones; beyond the cap the oldest binding is evicted and would simply
// rebind on next use.
const jamCacheGenerations = 8

// jamCache is the per-sender prepared-jam cache. Binding a jam's
// travelling GOT against a receiver namespace is the expensive part of an
// inject; the cache performs it once per element + receiver-namespace and
// reuses the image across every channel and message. A receiver-side ried
// load changes the namespace fingerprint, so stale images stop being
// referenced and age out of the per-element generation ring.
type jamCache struct {
	entries map[jamCacheKey]*preparedJam
	// gens tracks insertion order of fingerprints per element, oldest
	// first, for generation eviction.
	gens  map[[2]uint8][]jamCacheKey
	stats JamCacheStats
}

func newJamCache() *jamCache {
	return &jamCache{
		entries: map[jamCacheKey]*preparedJam{},
		gens:    map[[2]uint8][]jamCacheKey{},
	}
}

// JamCacheStats returns a copy of this node's sender-side cache counters.
func (n *Node) JamCacheStats() JamCacheStats { return n.jams.stats }

// nsFingerprint hashes a namespace snapshot (FNV-1a over sorted
// name=va pairs) into the cache key component.
func nsFingerprint(names map[string]uint64) uint64 {
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			mix(k[i])
		}
		mix(0)
		va := names[k]
		for i := 0; i < 8; i++ {
			mix(byte(va >> (8 * i)))
		}
	}
	return h
}

// prepare returns the prepared image of the element bound against the
// given receiver namespace, binding and caching it on first use. The
// element is resolved to its integer IDs first, so the cache lookup hashes
// a small fixed-size key instead of building strings.
func (c *jamCache) prepare(src *Node, pkgName, elemName, dstName string, names map[string]uint64, nsFP uint64) (*preparedJam, error) {
	inst, ok := src.Package(pkgName)
	if !ok {
		return nil, fmt.Errorf("core: %s: package %s not installed on sender", src.Name, pkgName)
	}
	elem, ok := inst.Pkg.Element(elemName)
	if !ok || elem.Kind != ElemJam {
		return nil, fmt.Errorf("core: %s: no jam %q in package %s", src.Name, elemName, pkgName)
	}
	key := jamCacheKey{pkgID: inst.ID, elemID: elem.ID, nsFP: nsFP}
	if pj, ok := c.entries[key]; ok {
		c.stats.Hits++
		return pj, nil
	}
	pj, err := bindJam(src, inst, elem, dstName, names)
	if err != nil {
		return nil, err
	}
	c.stats.Binds++
	c.entries[key] = pj
	id := [2]uint8{inst.ID, elem.ID}
	c.gens[id] = append(c.gens[id], key)
	if g := c.gens[id]; len(g) > jamCacheGenerations {
		delete(c.entries, g[0])
		c.gens[id] = g[1:]
	}
	return pj, nil
}

// invalidate drops every prepared image bound against the given
// namespace fingerprint — the DBI-style translation-cache invalidation a
// node failure forces on its peers. Entries are shared across channels
// whose receivers expose identical namespaces, so peers of the failed
// node that kept identical twins re-bind on next use (a lookup miss, not
// a correctness hazard). Returns the number of entries dropped.
func (c *jamCache) invalidate(nsFP uint64) int {
	dropped := 0
	for key := range c.entries {
		if key.nsFP != nsFP {
			continue
		}
		delete(c.entries, key)
		dropped++
		id := [2]uint8{key.pkgID, key.elemID}
		g := c.gens[id]
		for i := range g {
			if g[i] == key {
				c.gens[id] = append(g[:i], g[i+1:]...)
				break
			}
		}
	}
	return dropped
}

// bindJam binds a jam element's extern GOT entries against a receiver
// namespace snapshot, producing the shippable image.
func bindJam(src *Node, inst *InstalledPackage, elem *Element, dstName string, names map[string]uint64) (*preparedJam, error) {
	elemName := elem.Name
	j := elem.Jam

	pj := &preparedJam{
		gotLen:  j.GotTableLen(),
		textLen: j.TextLen,
		entry:   j.Entry,
		pkgID:   inst.ID,
		elemID:  elem.ID,
	}
	// Image: [GOT table][gp slot placeholder][body].
	pj.image = make([]byte, j.ShippedSize())
	copy(pj.image[pj.gotLen+8:], j.Body)
	for i, g := range j.Got {
		if g.Local {
			pj.patches = append(pj.patches, mailbox.GotPatch{Slot: i, BodyOff: g.Off})
			continue
		}
		va, ok := names[g.Name]
		if !ok {
			return nil, fmt.Errorf("core: %s->%s: jam %s needs symbol %q, absent from receiver namespace (load the ried first)",
				src.Name, dstName, elemName, g.Name)
		}
		putU64(pj.image[i*8:], va)
	}
	return pj, nil
}
