package core

import (
	"testing"
	"testing/quick"

	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

// iputC is a reimplementation of the Indirect Put jam in AMC (the paper's
// C-source flow). It must behave identically to the hand-written assembly
// version for matching inputs.
const iputC = `
extern long memcpy(byte* dst, byte* src, long n);
extern long tc_table[];
extern long tc_heap[];

long jam_ciput(long* args, byte* usr, long len) {
    long key = args[0];
    long h = key * 40503;          // a simpler mix, same probe discipline
    h = (h ^ (h >> 13)) & 65535;
    long* table = tc_table;
    long off = 0;
    for (;;) {
        long slotKey = table[h * 2];
        if (slotKey == key) {
            off = table[h * 2 + 1];
            break;
        }
        if (slotKey == 0) {
            table[h * 2] = key;
            off = (h & 63) << 16;
            table[h * 2 + 1] = off;
            break;
        }
        h = (h + 1) & 65535;
    }
    byte* heap = tc_heap;
    memcpy(heap + off, usr, len);
    return off;
}
`

// TestCJamMatchesAsmSemantics injects the C-compiled Indirect Put and
// verifies the same key→offset stability and payload placement properties
// the assembly jam satisfies.
func TestCJamMatchesAsmSemantics(t *testing.T) {
	sources := BenchPackageSources()
	sources["jam_ciput.amc"] = iputC
	pkg, err := BuildPackage("tcbench", sources)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(DefaultClusterConfig())
	a, _ := c.AddNode("A", quickCfg())
	b, _ := c.AddNode("B", quickCfg())
	for _, n := range []*Node{a, b} {
		if _, err := n.InstallPackage(pkg); err != nil {
			t.Fatal(err)
		}
	}
	g := mailbox.Geometry{Banks: 2, Slots: 4, FrameSize: 2048}
	rcfg := mailbox.DefaultReceiverConfig(g)
	rcfg.Credits = true
	if err := b.EnableMailbox(rcfg); err != nil {
		t.Fatal(err)
	}
	ch, err := Connect(a, b, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var offsets []uint64
	b.OnExecuted = func(r uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
		}
		offsets = append(offsets, r)
	}
	payload := []byte("C-compiled indirect put payload")
	for _, key := range []uint64{7, 7, 1234, 7} {
		if err := ch.Handle("tcbench", "jam_ciput").Inject([2]uint64{key, 0}, payload, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Run()
	if len(offsets) != 4 {
		t.Fatalf("executed %d times", len(offsets))
	}
	// Same key -> same offset, every time.
	if offsets[0] != offsets[1] || offsets[0] != offsets[3] {
		t.Fatalf("key 7 offsets unstable: %v", offsets)
	}
	// Payload landed where the function said it did.
	heapVA, _ := b.SymbolVA("tc_heap")
	got, err := b.AS.ReadBytes(heapVA+offsets[2], len(payload))
	if err != nil || string(got) != string(payload) {
		t.Fatalf("heap payload %q, %v", got, err)
	}
	// Both keys are in the shared table, alongside anything the asm jam
	// would insert: the two flavours interoperate on one data structure.
	tableVA, _ := b.SymbolVA("tc_table")
	found := map[uint64]bool{}
	for slot := 0; slot < 65536; slot++ {
		k, _ := b.AS.ReadU64(tableVA + uint64(slot*16))
		if k != 0 {
			found[k] = true
		}
	}
	if !found[7] || !found[1234] {
		t.Fatalf("table keys: %v", found)
	}
}

// TestLocalInjectedEquivalenceProperty: for arbitrary payloads, the two
// invocation methods of the same source compute the same sum.
func TestLocalInjectedEquivalenceProperty(t *testing.T) {
	pkg, err := BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	run := func(payload []byte, local bool) (uint64, bool) {
		c := NewCluster(DefaultClusterConfig())
		a, _ := c.AddNode("A", quickCfg())
		b, _ := c.AddNode("B", quickCfg())
		for _, n := range []*Node{a, b} {
			if _, err := n.InstallPackage(pkg); err != nil {
				return 0, false
			}
		}
		g := mailbox.Geometry{Banks: 1, Slots: 1, FrameSize: 2048}
		if err := b.EnableMailbox(mailbox.DefaultReceiverConfig(g)); err != nil {
			return 0, false
		}
		ch, err := Connect(a, b, ChannelOptions{})
		if err != nil {
			return 0, false
		}
		var ret uint64
		ok := true
		b.OnExecuted = func(r uint64, _ sim.Duration, err error) {
			if err != nil {
				ok = false
			}
			ret = r
		}
		if local {
			err = ch.Handle("tcbench", "jam_sssum").CallLocal([2]uint64{}, payload, nil)
		} else {
			err = ch.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, payload, nil)
		}
		if err != nil {
			return 0, false
		}
		c.Run()
		return ret, ok
	}
	f := func(raw []byte) bool {
		if len(raw) > 1400 {
			raw = raw[:1400]
		}
		li, ok1 := run(raw, true)
		inj, ok2 := run(raw, false)
		return ok1 && ok2 && li == inj && li == expectedSum(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestInjectedFaultIsIsolated: a jam that faults on the receiver is
// reported and consumed; the mailbox keeps processing later messages.
func TestInjectedFaultIsIsolated(t *testing.T) {
	sources := map[string]string{
		"jam_crash.ams": `
.global jam_crash
jam_crash:
    movi r3, 0
    ld   r4, [r3+0]     ; null dereference
    ret
`,
		"jam_fine.ams": `
.global jam_fine
jam_fine:
    movi r0, 77
    ret
`,
	}
	pkg, err := BuildPackage("crashy", sources)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(DefaultClusterConfig())
	a, _ := c.AddNode("A", quickCfg())
	b, _ := c.AddNode("B", quickCfg())
	if _, err := a.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	g := mailbox.Geometry{Banks: 1, Slots: 2, FrameSize: 256}
	if err := b.EnableMailbox(mailbox.DefaultReceiverConfig(g)); err != nil {
		t.Fatal(err)
	}
	ch, err := Connect(a, b, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var rets []uint64
	var errs int
	b.OnExecuted = func(r uint64, _ sim.Duration, err error) {
		if err != nil {
			errs++
			return
		}
		rets = append(rets, r)
	}
	if err := ch.Handle("crashy", "jam_crash").Inject([2]uint64{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := ch.Handle("crashy", "jam_fine").Inject([2]uint64{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if errs != 1 {
		t.Fatalf("fault count %d", errs)
	}
	if len(rets) != 1 || rets[0] != 77 {
		t.Fatalf("survivor results %v", rets)
	}
	if b.Receiver.Stats().Processed != 2 {
		t.Fatalf("processed %d", b.Receiver.Stats().Processed)
	}
	if b.Receiver.Stats().Errors != 1 {
		t.Fatalf("receiver errors %d", b.Receiver.Stats().Errors)
	}
}

// TestRunawayJamIsBounded: an injected infinite loop hits the VM's
// instruction budget instead of wedging the node.
func TestRunawayJamIsBounded(t *testing.T) {
	pkg, err := BuildPackage("spin", map[string]string{
		"jam_spin.ams": ".global jam_spin\njam_spin:\nspin:\n    jmp spin\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCluster(DefaultClusterConfig())
	a, _ := c.AddNode("A", quickCfg())
	b, _ := c.AddNode("B", quickCfg())
	if _, err := a.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	b.VM.InstrBudget = 100000
	g := mailbox.Geometry{Banks: 1, Slots: 1, FrameSize: 256}
	if err := b.EnableMailbox(mailbox.DefaultReceiverConfig(g)); err != nil {
		t.Fatal(err)
	}
	ch, err := Connect(a, b, ChannelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var execErr error
	b.OnExecuted = func(_ uint64, _ sim.Duration, err error) { execErr = err }
	if err := ch.Handle("spin", "jam_spin").Inject([2]uint64{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if execErr == nil {
		t.Fatal("runaway jam completed without tripping the budget")
	}
}

// --- mesh workload equivalence: every traffic pattern of the sharded
// many-node fabric must execute injected code identically to the native
// oracle on every node ---

// meshBench builds an n-node mesh with tcbench installed everywhere and a
// per-node return collector.
func meshBench(t *testing.T, nodes, shards int) (*Mesh, [][]uint64) {
	t.Helper()
	cfg := DefaultMeshConfig(nodes)
	cfg.Shards = shards
	cfg.Node = quickCfg()
	cfg.Geometry = mailbox.Geometry{Banks: 2, Slots: 4, FrameSize: 2048}
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	rets := make([][]uint64, nodes)
	for i := 0; i < nodes; i++ {
		node := i
		m.Node(i).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
			if err != nil {
				t.Errorf("node %d exec: %v", node, err)
			}
			rets[node] = append(rets[node], ret)
		}
	}
	return m, rets
}

// TestMeshFanoutNativeOracle: a fan-out broadcast of Server-Side Sum
// executes on every receiver with the natively computed sum.
func TestMeshFanoutNativeOracle(t *testing.T) {
	const nodes, rounds = 8, 3
	m, rets := meshBench(t, nodes, 2)
	payload := make([]byte, 96)
	for i := range payload {
		payload[i] = byte(i*13 + 5)
	}
	want := expectedSum(payload)
	for r := 0; r < rounds; r++ {
		for dst := 1; dst < nodes; dst++ {
			ch, err := m.Channel(0, dst)
			if err != nil {
				t.Fatal(err)
			}
			if err := ch.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, payload, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Run()
	if len(rets[0]) != 0 {
		t.Errorf("root executed %d messages", len(rets[0]))
	}
	for n := 1; n < nodes; n++ {
		if len(rets[n]) != rounds {
			t.Errorf("node %d executed %d, want %d", n, len(rets[n]), rounds)
		}
		for _, r := range rets[n] {
			if r != want {
				t.Errorf("node %d: ret %d, want native %d", n, r, want)
			}
		}
	}
}

// TestMeshAllToAllNativeOracle: an all-to-all exchange where every node
// sends each peer one Injected and one Local invocation of the same
// source; both methods must match the native oracle on every node.
func TestMeshAllToAllNativeOracle(t *testing.T) {
	const nodes = 8
	m, rets := meshBench(t, nodes, 2)
	payload := make([]byte, 56)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	want := expectedSum(payload)
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst {
				continue
			}
			ch, err := m.Channel(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if err := ch.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, payload, nil); err != nil {
				t.Fatal(err)
			}
			if err := ch.Handle("tcbench", "jam_sssum").CallLocal([2]uint64{}, payload, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.Run()
	for n := 0; n < nodes; n++ {
		if len(rets[n]) != 2*(nodes-1) {
			t.Errorf("node %d executed %d, want %d", n, len(rets[n]), 2*(nodes-1))
		}
		for _, r := range rets[n] {
			if r != want {
				t.Errorf("node %d: ret %d, want native %d (injected and local must agree)", n, r, want)
			}
		}
	}
}

// TestMeshHotspotHotSwapOracle: skewed Indirect Put traffic into a hot
// node, then a ried hot-swap rebinding the server state, then the same key
// sequence again. The oracle: hashing is a pure function of the key
// sequence, so a fresh table must reproduce the first epoch's offsets
// exactly, and the swap must actually move the bound state symbols.
func TestMeshHotspotHotSwapOracle(t *testing.T) {
	const nodes, hot = 8, 3
	m, rets := meshBench(t, nodes, 2)
	payload := []byte("hotspot epoch payload")
	keys := []uint64{7, 99, 7, 40503, 7777, 99, 12}

	epoch := func() []uint64 {
		start := len(rets[hot])
		ch, err := m.Channel(1, hot)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if err := ch.Handle("tcbench", "jam_iput").Inject([2]uint64{k, 0}, payload, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Background load on the non-hot nodes, oracle-checked below.
		for dst := 0; dst < nodes; dst++ {
			if dst == hot || dst == 1 {
				continue
			}
			bg, err := m.Channel(1, dst)
			if err != nil {
				t.Fatal(err)
			}
			if err := bg.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, payload, nil); err != nil {
				t.Fatal(err)
			}
		}
		m.Run()
		return rets[hot][start:]
	}

	first := epoch()
	if len(first) != len(keys) {
		t.Fatalf("epoch 1 executed %d of %d", len(first), len(keys))
	}
	// Same key -> same offset within the epoch (7 at 0/2, 99 at 1/5).
	if first[0] != first[2] || first[1] != first[5] {
		t.Fatalf("repeated-key offsets unstable in epoch 1: %v", first)
	}

	tableBefore, _ := m.Node(hot).SymbolVA("tc_table")
	spkg, err := BuildPackage("kvbench-swap", map[string]string{
		"ried_kvbench.rds": RiedKVBenchSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range spkg.Elements {
		if e.Kind != ElemRied {
			continue
		}
		if _, err := m.Node(hot).InstallRied(e.Ried, true); err != nil {
			t.Fatal(err)
		}
	}
	m.RefreshNames(hot)
	tableAfter, _ := m.Node(hot).SymbolVA("tc_table")
	if tableBefore == tableAfter {
		t.Fatal("hot-swap did not rebind tc_table")
	}

	second := epoch()
	if len(second) != len(keys) {
		t.Fatalf("epoch 2 executed %d of %d", len(second), len(keys))
	}
	for i := range keys {
		if first[i] != second[i] {
			t.Fatalf("offset sequence diverged after hot-swap: epoch1 %v, epoch2 %v", first, second)
		}
	}
	// The background sssum traffic stayed native-correct throughout.
	want := expectedSum(payload)
	for n := 0; n < nodes; n++ {
		if n == hot || n == 1 {
			continue
		}
		for _, r := range rets[n] {
			if r != want {
				t.Errorf("node %d background ret %d, want %d", n, r, want)
			}
		}
	}
}

// TestDeterministicRuns: the same seed produces bit-identical simulated
// timings across full benchmark deployments.
func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Duration {
		pkg, err := BuildBenchPackage()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultNodeConfig()
		cfg.MemBytes = 32 << 20
		c := NewCluster(DefaultClusterConfig())
		a, _ := c.AddNode("A", cfg)
		b, _ := c.AddNode("B", cfg)
		for _, n := range []*Node{a, b} {
			if _, err := n.InstallPackage(pkg); err != nil {
				t.Fatal(err)
			}
		}
		b.SetStress(true)
		g := mailbox.Geometry{Banks: 2, Slots: 2, FrameSize: 2048}
		rcfg := mailbox.DefaultReceiverConfig(g)
		rcfg.Credits = true
		if err := b.EnableMailbox(rcfg); err != nil {
			t.Fatal(err)
		}
		ch, err := Connect(a, b, ChannelOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if err := ch.Handle("tcbench", "jam_iput").Inject([2]uint64{uint64(i + 1), 0}, make([]byte, 64), nil); err != nil {
				t.Fatal(err)
			}
		}
		c.Run()
		return sim.Duration(c.Eng.Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same-seed runs diverged: %v vs %v", a, b)
	}
}
