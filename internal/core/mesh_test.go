package core

import (
	"testing"

	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

func quickMeshCfg(nodes, shards int) MeshConfig {
	cfg := DefaultMeshConfig(nodes)
	cfg.Shards = shards
	cfg.Node = quickCfg()
	cfg.Geometry = mailbox.Geometry{Banks: 2, Slots: 4, FrameSize: 2048}
	return cfg
}

func TestMeshShardAssignment(t *testing.T) {
	m, err := NewMesh(quickMeshCfg(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := 0
		if i >= 4 {
			want = 1
		}
		if got := m.ShardOf(i); got != want {
			t.Errorf("node %d: shard %d, want %d", i, got, want)
		}
	}
	if _, err := NewMesh(MeshConfig{Nodes: 1}); err == nil {
		t.Error("1-node mesh accepted")
	}
}

// TestMeshWorkerClamp pins the worker-count clamp: requesting more
// workers than shards (tcperf/tcrun default Workers to NumCPU) must
// engage the parallel engine with exactly one executor per shard, and a
// single-shard mesh must stay sequential no matter the request.
func TestMeshWorkerClamp(t *testing.T) {
	cfg := quickMeshCfg(8, 2)
	cfg.Workers = 64
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.Workers != 2 {
		t.Errorf("recorded workers = %d, want 2", m.Cfg.Workers)
	}
	if m.Cluster.Group == nil {
		t.Fatal("parallel engine did not engage")
	}
	if got := m.Cluster.Group.Workers(); got != 2 {
		t.Errorf("group workers = %d, want 2", got)
	}

	cfg = quickMeshCfg(4, 1)
	cfg.Workers = 8
	m, err = NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cluster.Group != nil {
		t.Error("single-shard mesh engaged the parallel engine")
	}
	if m.Cfg.Workers != 1 {
		t.Errorf("recorded workers = %d, want 1", m.Cfg.Workers)
	}
}

// TestMeshJamCacheSharedAcrossChannels: two receivers with identical
// namespaces cost the sender exactly one bind; the second channel's
// prepare is a cache hit.
func TestMeshJamCacheSharedAcrossChannels(t *testing.T) {
	m, err := NewMesh(quickMeshCfg(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32)
	for dst := 1; dst <= 2; dst++ {
		ch, err := m.Channel(0, dst)
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, payload, nil); err != nil {
			t.Fatal(err)
		}
	}
	m.Run()
	st := m.Node(0).JamCacheStats()
	if st.Binds != 1 {
		t.Errorf("binds = %d, want 1 (identical receiver namespaces must share)", st.Binds)
	}
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Hits)
	}
	if got := m.Stats().Processed; got != 2 {
		t.Errorf("processed = %d, want 2", got)
	}
}

// TestMeshManySendersOneReceiver: every inbound channel owns its own
// mailbox region, so concurrent senders never collide on slot sequencing
// or credit flags.
func TestMeshManySendersOneReceiver(t *testing.T) {
	m, err := NewMesh(quickMeshCfg(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 16)
	want := expectedSum(payload)
	var rets []uint64
	m.Node(0).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
		}
		rets = append(rets, ret)
	}
	const perSender = 20 // more than one region's slots: exercises credits
	for src := 1; src < 6; src++ {
		ch, err := m.Channel(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		args := make([][2]uint64, perSender)
		if err := ch.Handle("tcbench", "jam_sssum").InjectBurst(args, payload, nil); err != nil {
			t.Fatal(err)
		}
	}
	m.Run()
	if len(rets) != 5*perSender {
		t.Fatalf("executed %d of %d", len(rets), 5*perSender)
	}
	for _, r := range rets {
		if r != want {
			t.Fatalf("ret %d, want %d", r, want)
		}
	}
	if len(m.Node(0).Receivers) != 5 {
		t.Fatalf("receiver regions = %d, want 5", len(m.Node(0).Receivers))
	}
	if st := m.Stats(); st.Batches == 0 || st.CreditStalls == 0 {
		t.Fatalf("stats %+v: want batched puts and credit stalls", st)
	}
}

// TestMeshCrossShardSlower: with timing on, a put crossing the spine
// uplink takes longer than an intra-shard put of the same size.
func TestMeshCrossShardSlower(t *testing.T) {
	run := func(shards int) sim.Duration {
		cfg := quickMeshCfg(4, shards)
		cfg.Node = DefaultNodeConfig()
		cfg.Node.MemBytes = 32 << 20
		m, err := NewMesh(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := BuildBenchPackage()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.InstallPackage(pkg); err != nil {
			t.Fatal(err)
		}
		// Node 0 -> node 3: same shard when shards=1, crossing when 2.
		ch, err := m.Channel(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		var done sim.Time
		err = ch.Handle("tcbench", "jam_sssum").Inject([2]uint64{}, make([]byte, 64), func(r Result) {
			done = r.Delivered
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		return sim.Duration(done)
	}
	intra, cross := run(1), run(2)
	if cross <= intra {
		t.Fatalf("cross-shard %v not slower than intra-shard %v", cross, intra)
	}
}
