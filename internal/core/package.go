// Package core implements the Two-Chains runtime: packages of rieds and
// jams, simulated cluster nodes, namespace exchange, and the two active
// message invocation methods (Injected Function and Local Function).
//
// Terminology follows §IV of the paper. A package is built from canonical
// single-source elements: jam_NAME.amc files become jams (mobile code
// segments shipped inside messages) and ried_NAME.rdc files become rieds
// (relocatable interface distributions — shared libraries loaded on a
// process to set up interfaces and data objects). The same jam sources,
// compiled without the GOT transform, are linked into the package's Local
// Function library, whose entry points are called by element ID.
package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"twochains/internal/amcc"
	"twochains/internal/asm"
	"twochains/internal/elfobj"
	"twochains/internal/linker"
	"twochains/internal/mailbox"
)

// ElementKind distinguishes the two chains.
type ElementKind uint8

const (
	ElemJam ElementKind = iota
	ElemRied
)

func (k ElementKind) String() string {
	if k == ElemRied {
		return "ried"
	}
	return "jam"
}

// Element is one named member of a package.
type Element struct {
	ID   uint8
	Name string // entry symbol for jams; library name for rieds
	Kind ElementKind
	Jam  *linker.Jam   // set for jams
	Ried *linker.Image // set for rieds
}

// Package is a built Two-Chains package.
type Package struct {
	ID       uint8
	Name     string
	Elements []*Element
	// LocalLib is the Local Function shared library: every jam compiled
	// unmodified, providing the receiver-side function vector (paper
	// §IV-B).
	LocalLib *linker.Image
}

// Element returns the named element.
func (p *Package) Element(name string) (*Element, bool) {
	for _, e := range p.Elements {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// ElementByID returns the element with the given ID.
func (p *Package) ElementByID(id uint8) (*Element, bool) {
	for _, e := range p.Elements {
		if e.ID == id {
			return e, true
		}
	}
	return nil, false
}

// Jams returns the jam elements in ID order.
func (p *Package) Jams() []*Element {
	var out []*Element
	for _, e := range p.Elements {
		if e.Kind == ElemJam {
			out = append(out, e)
		}
	}
	return out
}

// BuildPackage compiles package sources. Keys are canonical file names:
// jam_NAME.* defines a jam whose entry symbol is jam_NAME; ried_NAME.*
// defines a ried library. Suffix selects the language: .amc and .rdc are
// AMC (C subset, compiled by internal/amcc — the paper's C source flow);
// .ams and .rds are JAM assembly. The package ID is assigned by the
// installer.
func BuildPackage(name string, sources map[string]string) (*Package, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("core: package %s: no sources", name)
	}
	pkg := &Package{Name: name}

	// Deterministic build order.
	files := make([]string, 0, len(sources))
	for f := range sources {
		files = append(files, f)
	}
	sort.Strings(files)

	compile := func(file, src string) (*elfobj.Object, string, error) {
		switch {
		case strings.HasSuffix(file, ".amc"), strings.HasSuffix(file, ".rdc"):
			obj, err := amcc.Compile(file, src)
			return obj, file[:len(file)-4], err
		case strings.HasSuffix(file, ".ams"), strings.HasSuffix(file, ".rds"):
			obj, err := asm.Assemble(file, src)
			return obj, file[:len(file)-4], err
		}
		return nil, "", fmt.Errorf("unknown source suffix in %q (want .amc/.rdc for AMC, .ams/.rds for assembly)", file)
	}

	var jamObjs []*elfobj.Object
	var id uint8
	for _, file := range files {
		src := sources[file]
		switch {
		case strings.HasPrefix(file, "jam_"):
			obj, entry, err := compile(file, src)
			if err != nil {
				return nil, fmt.Errorf("core: package %s: %w", name, err)
			}
			jam, err := linker.BuildJam(obj, entry)
			if err != nil {
				return nil, fmt.Errorf("core: package %s: %w", name, err)
			}
			pkg.Elements = append(pkg.Elements, &Element{
				ID: id, Name: entry, Kind: ElemJam, Jam: jam,
			})
			id++
			jamObjs = append(jamObjs, obj)
		case strings.HasPrefix(file, "ried_"):
			obj, libName, err := compile(file, src)
			if err != nil {
				return nil, fmt.Errorf("core: package %s: %w", name, err)
			}
			img, err := linker.LinkLibrary(libName, []*elfobj.Object{obj})
			if err != nil {
				return nil, fmt.Errorf("core: package %s: %w", name, err)
			}
			pkg.Elements = append(pkg.Elements, &Element{
				ID: id, Name: libName, Kind: ElemRied, Ried: img,
			})
			id++
		default:
			return nil, fmt.Errorf("core: package %s: %q is not a canonical element file (jam_* or ried_*)",
				name, file)
		}
	}

	// Local Function library: all jam sources linked unmodified.
	if len(jamObjs) > 0 {
		lib, err := linker.LinkLibrary(name+"_local", jamObjs)
		if err != nil {
			return nil, fmt.Errorf("core: package %s: local library: %w", name, err)
		}
		pkg.LocalLib = lib
	}
	return pkg, nil
}

// InjectedFrameLen reports the mailbox frame size (64-byte granular) an
// Injected Function send of the jam with a usrLen-byte payload
// occupies — what deployments use to size mailbox geometry for an
// element.
func InjectedFrameLen(e *Element, usrLen int) (int, error) {
	if e.Kind != ElemJam {
		return 0, fmt.Errorf("core: %s is a %s, not a jam", e.Name, e.Kind)
	}
	m := &mailbox.Message{
		Kind:     mailbox.KindInjected,
		JamImage: make([]byte, e.Jam.ShippedSize()),
		Usr:      make([]byte, usrLen),
	}
	return m.WireLen(), nil
}

// PackageMagic identifies a serialized package ("TCPK").
const PackageMagic = 0x4b504354

// Encode serializes the package (the install-directory format tcpkg
// writes).
func (p *Package) Encode() []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	str := func(s string) {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	blob := func(p []byte) {
		u32(uint32(len(p)))
		b = append(b, p...)
	}
	u32(PackageMagic)
	str(p.Name)
	u32(uint32(len(p.Elements)))
	for _, e := range p.Elements {
		b = append(b, e.ID, byte(e.Kind))
		str(e.Name)
		switch e.Kind {
		case ElemJam:
			blob(e.Jam.Encode())
		case ElemRied:
			blob(e.Ried.Encode())
		}
	}
	if p.LocalLib != nil {
		blob(p.LocalLib.Encode())
	} else {
		u32(0)
	}
	return b
}

// DecodePackage parses a serialized package.
func DecodePackage(data []byte) (*Package, error) {
	off := 0
	bad := func(what string) (*Package, error) {
		return nil, fmt.Errorf("core: truncated package at %s (offset %d)", what, off)
	}
	u32 := func() (uint32, bool) {
		if off+4 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, true
	}
	str := func() (string, bool) {
		if off+2 > len(data) {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+n > len(data) {
			return "", false
		}
		s := string(data[off : off+n])
		off += n
		return s, true
	}
	blob := func() ([]byte, bool) {
		n, ok := u32()
		if !ok || off+int(n) > len(data) {
			return nil, false
		}
		out := data[off : off+int(n)]
		off += int(n)
		return out, true
	}
	magic, ok := u32()
	if !ok || magic != PackageMagic {
		return nil, fmt.Errorf("core: bad package magic")
	}
	p := &Package{}
	if p.Name, ok = str(); !ok {
		return bad("name")
	}
	n, ok := u32()
	if !ok || n > 256 {
		return bad("element count")
	}
	for i := 0; i < int(n); i++ {
		if off+2 > len(data) {
			return bad("element header")
		}
		e := &Element{ID: data[off], Kind: ElementKind(data[off+1])}
		off += 2
		if e.Name, ok = str(); !ok {
			return bad("element name")
		}
		raw, ok := blob()
		if !ok {
			return bad("element body")
		}
		var err error
		switch e.Kind {
		case ElemJam:
			e.Jam, err = linker.DecodeJam(raw)
		case ElemRied:
			e.Ried, err = linker.DecodeImage(raw)
		default:
			return nil, fmt.Errorf("core: unknown element kind %d", e.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("core: element %s: %w", e.Name, err)
		}
		p.Elements = append(p.Elements, e)
	}
	raw, ok := blob()
	if !ok {
		return bad("local library")
	}
	if len(raw) > 0 {
		lib, err := linker.DecodeImage(raw)
		if err != nil {
			return nil, fmt.Errorf("core: local library: %w", err)
		}
		p.LocalLib = lib
	}
	return p, nil
}
