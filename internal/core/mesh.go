package core

import (
	"fmt"
	"sync"

	"twochains/internal/cpusim"
	"twochains/internal/fabric"
	"twochains/internal/linker"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

// MeshConfig sizes a many-node injection fabric.
type MeshConfig struct {
	// Nodes is the process count (>= 2).
	Nodes int
	// Shards partitions the nodes across fabric shards (leaf domains of a
	// two-tier topology). Nodes are assigned in contiguous blocks;
	// cross-shard traffic serializes through the shared spine uplinks.
	Shards int
	// Workers > 1 requests the multi-core conservative engine: each
	// fabric shard's event loop runs on its own worker goroutine, with
	// digests and simulated times bit-identical to single-engine
	// execution. Needs a backend implementing fabric.ShardedTransport
	// (the default "simnet" does); others fall back to one engine.
	// Clamped to the (resolved) shard count — a worker owns whole shards.
	Workers int
	// Speculation is the parallel engine's speculative-window budget
	// (see ClusterConfig.Speculation). Ignored unless Workers > 1.
	Speculation sim.Duration

	Cluster ClusterConfig
	Node    NodeConfig
	// PerNode, when set, derives node i's configuration from the Node
	// template — heterogeneous deployments (per-node seeds, asymmetric
	// feature ablations) without giving up the single-template default.
	PerNode func(i int, cfg NodeConfig) NodeConfig

	// Geometry is the per-channel mailbox shape; Credits arms bank-flag
	// flow control on every channel; WaitMode applies to both sides.
	Geometry mailbox.Geometry
	Credits  bool
	WaitMode cpusim.WaitMode
	// ReceiverTweak, when set, post-processes every per-channel receiver
	// configuration (ablations: variable frames, GP insertion, page
	// permissions) after the shared geometry/credits/waitmode defaults.
	ReceiverTweak func(mailbox.ReceiverConfig) mailbox.ReceiverConfig

	// Channel is the sender-options template applied to every channel
	// (geometry and credits are filled in per destination).
	Channel ChannelOptions
}

// defaultGeometry is the mesh's per-channel mailbox shape unless the
// caller overrides it.
func defaultGeometry() mailbox.Geometry {
	return mailbox.Geometry{Banks: 4, Slots: 8, FrameSize: 2048}
}

// DefaultMeshConfig returns a paper-testbed-flavoured mesh of n nodes:
// banked mailboxes with credits, two fabric shards once the mesh is big
// enough for the split to mean anything.
func DefaultMeshConfig(n int) MeshConfig {
	shards := 1
	if n >= 4 {
		shards = 2
	}
	return MeshConfig{
		Nodes:    n,
		Shards:   shards,
		Cluster:  DefaultClusterConfig(),
		Node:     DefaultNodeConfig(),
		Geometry: defaultGeometry(),
		Credits:  true,
	}
}

// Mesh is a sharded many-node injection fabric: N nodes on one simulated
// RDMA network, partitioned across fabric shards, with channels created on
// demand so full and partial meshes emerge from the traffic pattern.
// Every channel gets its own mailbox region on the destination (a region
// admits one remote writer), and all channels of one sender share the
// node's prepared-jam cache — an element is bound once per receiver
// namespace, not once per channel.
type Mesh struct {
	Cfg     MeshConfig
	Cluster *Cluster

	nodes   []*Node
	shardOf []int
	chans   map[chanKey]*Channel
	// nsMemo caches each (node, view) namespace snapshot + fingerprint so
	// N inbound channels share one exchange instead of re-computing it.
	nsMemo map[nsKey]nsSnap
	// views are the namespace-view names seen so far, sorted — the
	// deterministic iteration order for EachChannel and Stats.
	views []string
	rng   *sim.RNG
	// mu guards chans and nsMemo. Channel creation is a zero-lookahead
	// global action: under the parallel engine it only ever happens while
	// the group executes serially (the workload driver holds the engine
	// serial until every planned channel exists), but handle binds on
	// other elements of an existing channel read chans concurrently from
	// shard workers, so lookups take the read lock.
	mu sync.RWMutex
	// OnChannelCreated, when set, observes every successful lazy channel
	// creation — the hook the scenario driver uses to release its
	// serial-execution hold once a phase's full channel set exists, and to
	// instrument per-tenant receivers (view names the namespace view, ""
	// for the base namespace).
	OnChannelCreated func(src, dst int, view string, ch *Channel)
}

// chanKey identifies a channel: the ordered node pair plus the namespace
// view it resolves against ("" = the base namespace).
type chanKey struct {
	src, dst int
	view     string
}

// nsKey identifies a memoized namespace exchange.
type nsKey struct {
	dst  int
	view string
}

// nsSnap is a memoized namespace exchange.
type nsSnap struct {
	names map[string]uint64
	fp    uint64
}

// NewMesh builds the cluster and its nodes and assigns fabric shards.
// Mailboxes and channels are created lazily by Channel.
func NewMesh(cfg MeshConfig) (*Mesh, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("core: mesh needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if !fabric.Lookup(cfg.Cluster.Backend) {
		return nil, fmt.Errorf("core: unknown fabric backend %q (registered: %v)",
			cfg.Cluster.Backend, fabric.Backends())
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Shards > cfg.Nodes {
		cfg.Shards = cfg.Nodes
	}
	// Default only the zero fields: caller-set banks/slots survive a
	// missing frame size and vice versa.
	def := defaultGeometry()
	if cfg.Geometry.Banks == 0 {
		cfg.Geometry.Banks = def.Banks
	}
	if cfg.Geometry.Slots == 0 {
		cfg.Geometry.Slots = def.Slots
	}
	if cfg.Geometry.FrameSize == 0 {
		cfg.Geometry.FrameSize = def.FrameSize
	}
	if cfg.Workers > cfg.Shards {
		// A worker owns whole shards; surplus workers would only idle at
		// every window barrier (NewCluster clamps too — this keeps the
		// recorded Cfg.Workers honest for Result reporting).
		cfg.Workers = cfg.Shards
	}
	if cfg.Workers > 1 {
		cfg.Cluster.Workers = cfg.Workers
		cfg.Cluster.Shards = cfg.Shards
		cfg.Cluster.Speculation = cfg.Speculation
	}
	cl := NewCluster(cfg.Cluster)
	m := &Mesh{
		Cfg:     cfg,
		Cluster: cl,
		chans:   map[chanKey]*Channel{},
		nsMemo:  map[nsKey]nsSnap{},
		rng:     sim.NewRNG(cfg.Cluster.Seed ^ 0x6d657368), // "mesh"
	}
	for i := 0; i < cfg.Nodes; i++ {
		ncfg := cfg.Node
		if cfg.PerNode != nil {
			ncfg = cfg.PerNode(i, ncfg)
		}
		shard := i * cfg.Shards / cfg.Nodes
		n, err := cl.AddNodeShard(fmt.Sprintf("n%02d", i), ncfg, shard)
		if err != nil {
			return nil, err
		}
		m.nodes = append(m.nodes, n)
		m.shardOf = append(m.shardOf, shard)
	}
	return m, nil
}

// Sharded reports whether the mesh runs on the parallel engine group.
func (m *Mesh) Sharded() bool { return m.Cluster.Group != nil }

// HasChannel reports whether the src->dst base channel already exists.
func (m *Mesh) HasChannel(src, dst int) bool { return m.HasChannelView(src, dst, "") }

// HasChannelView reports whether the src->dst channel bound to the named
// namespace view already exists.
func (m *Mesh) HasChannelView(src, dst int, view string) bool {
	m.mu.RLock()
	_, ok := m.chans[chanKey{src, dst, view}]
	m.mu.RUnlock()
	return ok
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return len(m.nodes) }

// Node returns node i.
func (m *Mesh) Node(i int) *Node { return m.nodes[i] }

// ShardOf reports the fabric shard node i lives in.
func (m *Mesh) ShardOf(i int) int { return m.shardOf[i] }

// RNG is the mesh's deterministic random stream, derived from the cluster
// seed. All workload randomness must come from here (or a Split of it) so
// identical seeds replay identical runs.
func (m *Mesh) RNG() *sim.RNG { return m.rng }

// InstallPackage installs pkg on every node and invalidates the memoized
// namespace exchanges (the install defines new symbols everywhere).
// Channels connected before the install keep their old snapshot until
// RefreshNames, matching ConnectTo semantics.
func (m *Mesh) InstallPackage(pkg *Package) error {
	for _, n := range m.nodes {
		if _, err := n.InstallPackage(pkg); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.nsMemo = map[nsKey]nsSnap{}
	m.mu.Unlock()
	return nil
}

// InstallPackageView installs pkg on every node under the given
// namespace view and alias (typically tenant.Qualified(view, pkg.Name)):
// the per-tenant install path. Each node's view namespace is forked from
// its base namespace on first use, and the load may replace symbols
// inside the view, so two tenants can carry different versions of the
// same app — distinct installed-package IDs, element-ID spaces, and RIED
// bindings — without touching the base install or each other. Only the
// view's memoized exchanges are invalidated.
func (m *Mesh) InstallPackageView(view, alias string, pkg *Package) error {
	if view == "" {
		return fmt.Errorf("core: mesh: empty view name")
	}
	for _, n := range m.nodes {
		if _, err := n.InstallPackageAs(alias, n.NamespaceView(view), pkg); err != nil {
			return err
		}
	}
	m.mu.Lock()
	for k := range m.nsMemo {
		if k.view == view {
			delete(m.nsMemo, k)
		}
	}
	m.registerViewLocked(view)
	m.mu.Unlock()
	return nil
}

// receiverConfig builds the per-channel receiver configuration through
// the shared mailbox builder, then applies the deployment's tweak.
func (m *Mesh) receiverConfig() mailbox.ReceiverConfig {
	rcfg := mailbox.DefaultReceiverConfig(m.Cfg.Geometry).
		WithCredits(m.Cfg.Credits).
		WithWaitMode(m.Cfg.WaitMode)
	if m.Cfg.ReceiverTweak != nil {
		rcfg = m.Cfg.ReceiverTweak(rcfg)
	}
	return rcfg
}

// Channel returns the src->dst base channel, creating it (and its
// dedicated mailbox region on dst) on first use.
func (m *Mesh) Channel(src, dst int) (*Channel, error) {
	return m.ChannelView(src, dst, "", nil)
}

// ChannelView returns the src->dst channel bound to the named namespace
// view ("" = base), creating it on first use. A view channel gets its
// own mailbox region on dst and exchanges names against dst's view
// namespace, so a tenant's RIED bindings and element IDs resolve inside
// its own install set. tweak, when non-nil, post-processes the receiver
// configuration at creation time only (it enrolls the receiver with a
// fair arbiter or prices an isolation boundary); lookups of an existing
// channel ignore it.
func (m *Mesh) ChannelView(src, dst int, view string, tweak func(mailbox.ReceiverConfig) mailbox.ReceiverConfig) (*Channel, error) {
	if src < 0 || src >= len(m.nodes) || dst < 0 || dst >= len(m.nodes) {
		return nil, fmt.Errorf("core: mesh channel %d->%d out of range (%d nodes)", src, dst, len(m.nodes))
	}
	if src == dst {
		return nil, fmt.Errorf("core: mesh channel %d->%d is a self-loop", src, dst)
	}
	key := chanKey{src, dst, view}
	m.mu.RLock()
	ch, ok := m.chans[key]
	m.mu.RUnlock()
	if ok {
		return ch, nil
	}
	if m.nodes[dst].down {
		// Refuse to arm a fresh mailbox region on a torn-down node: the
		// teardown guarantee is that the node stops being polled.
		return nil, &NodeDownError{Src: m.nodes[src].Name, Dst: m.nodes[dst].Name, Node: m.nodes[dst].Name}
	}
	if m.nodes[src].down {
		// A failed process issues nothing: no fresh channels either.
		return nil, &NodeDownError{Src: m.nodes[src].Name, Dst: m.nodes[dst].Name, Node: m.nodes[src].Name}
	}
	rcfg := m.receiverConfig()
	if tweak != nil {
		rcfg = tweak(rcfg)
	}
	recv, err := m.nodes[dst].AddMailbox(rcfg)
	if err != nil {
		return nil, err
	}
	opts := m.Cfg.Channel
	opts.Sender.Geometry = m.Cfg.Geometry
	opts.Sender.WaitMode = m.Cfg.WaitMode
	nk := nsKey{dst, view}
	m.mu.RLock()
	snap, memoized := m.nsMemo[nk]
	m.mu.RUnlock()
	if !memoized {
		ns := m.nodes[dst].NS
		if view != "" {
			ns = m.nodes[dst].NamespaceView(view)
		}
		snap.names = ns.Snapshot()
		snap.fp = nsFingerprint(snap.names)
		m.mu.Lock()
		m.nsMemo[nk] = snap
		m.mu.Unlock()
	}
	ch, err = connectTo(m.nodes[src], m.nodes[dst], recv, opts, snap.names, snap.fp)
	if err != nil {
		// Un-arm the region so a retry doesn't accumulate orphan
		// receivers (the address space itself is bump-allocated and not
		// reclaimable).
		rs := m.nodes[dst].Receivers
		if len(rs) > 0 && rs[len(rs)-1] == recv {
			m.nodes[dst].Receivers = rs[:len(rs)-1]
		}
		return nil, err
	}
	m.mu.Lock()
	m.chans[key] = ch
	if view != "" {
		m.registerViewLocked(view)
	}
	m.mu.Unlock()
	if m.OnChannelCreated != nil {
		m.OnChannelCreated(src, dst, view, ch)
	}
	return ch, nil
}

// registerViewLocked records a view name in the sorted iteration order.
// Caller holds mu.
func (m *Mesh) registerViewLocked(view string) {
	i := 0
	for i < len(m.views) && m.views[i] < view {
		i++
	}
	if i < len(m.views) && m.views[i] == view {
		return
	}
	m.views = append(m.views, "")
	copy(m.views[i+1:], m.views[i:])
	m.views[i] = view
}

// ConnectFull eagerly creates every ordered pair's channel.
func (m *Mesh) ConnectFull() error {
	for s := 0; s < len(m.nodes); s++ {
		for d := 0; d < len(m.nodes); d++ {
			if s == d {
				continue
			}
			if _, err := m.Channel(s, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// Channels returns the currently connected channel count.
func (m *Mesh) Channels() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.chans)
}

// EachChannel visits every connected channel (base and view) in
// deterministic order: ascending (src, dst), base view first, then view
// names sorted.
func (m *Mesh) EachChannel(fn func(src, dst int, ch *Channel)) {
	m.EachChannelView(func(s, d int, _ string, ch *Channel) { fn(s, d, ch) })
}

// EachChannelView is EachChannel with the namespace view exposed.
func (m *Mesh) EachChannelView(fn func(src, dst int, view string, ch *Channel)) {
	m.mu.RLock()
	views := append([]string{""}, m.views...)
	m.mu.RUnlock()
	for s := 0; s < len(m.nodes); s++ {
		for d := 0; d < len(m.nodes); d++ {
			for _, v := range views {
				m.mu.RLock()
				ch, ok := m.chans[chanKey{s, d, v}]
				m.mu.RUnlock()
				if ok {
					fn(s, d, v, ch)
				}
			}
		}
	}
}

// RefreshNames re-runs the namespace exchange on every channel into dst
// (after a ried install on dst changed its bindings). The snapshot and
// fingerprint are computed once and shared read-only by all inbound
// channels, instead of once per channel.
func (m *Mesh) RefreshNames(dst int) {
	if dst < 0 || dst >= len(m.nodes) {
		return
	}
	snap := nsSnap{names: m.nodes[dst].NS.Snapshot()}
	snap.fp = nsFingerprint(snap.names)
	m.mu.Lock()
	m.nsMemo[nsKey{dst, ""}] = snap
	m.mu.Unlock()
	// Only base channels re-exchange: a view channel's bindings move via
	// InstallPackageView, never via base-namespace updates.
	m.EachChannelView(func(_, d int, view string, ch *Channel) {
		if d == dst && view == "" {
			ch.remoteNames, ch.remoteFP = snap.names, snap.fp
		}
	})
}

// InstallRied ships a standalone RIED image to node i and loads it,
// optionally replacing existing bindings — the remote-linking dynamic
// update path, addressed by node index. Channels into the node pick up
// the new namespace after RefreshNames.
func (m *Mesh) InstallRied(i int, img *linker.Image, replace bool) (*linker.Loaded, error) {
	if i < 0 || i >= len(m.nodes) {
		return nil, fmt.Errorf("core: mesh node %d out of range (%d nodes)", i, len(m.nodes))
	}
	return m.nodes[i].InstallRied(img, replace)
}

// Run processes events until the mesh is quiescent.
func (m *Mesh) Run() { m.Cluster.Run() }

// MeshStats aggregates fabric-wide activity.
type MeshStats struct {
	Channels      int
	Sent          uint64
	CreditStalls  uint64
	Batches       uint64
	BatchedFrames uint64
	Processed     uint64
	Errors        uint64
	JamBinds      uint64
	JamHits       uint64
}

// Stats sums sender, receiver, and jam-cache counters over the mesh.
func (m *Mesh) Stats() MeshStats {
	st := MeshStats{Channels: m.Channels()}
	m.EachChannel(func(_, _ int, ch *Channel) {
		ss := ch.Sender.Stats()
		st.Sent += ss.Sent
		st.CreditStalls += ss.CreditStalls
		st.Batches += ss.Batches
		st.BatchedFrames += ss.BatchedFrames
	})
	for _, n := range m.nodes {
		for _, r := range n.Receivers {
			rs := r.Stats()
			st.Processed += rs.Processed
			st.Errors += rs.Errors
		}
		js := n.JamCacheStats()
		st.JamBinds += js.Binds
		st.JamHits += js.Hits
	}
	return st
}
