package core

import (
	"fmt"
	"strings"
)

// Canonical sources for the "tcbench" package: the two benchmark functions
// of paper §VI-B plus the ried that sets up the server-side state they
// operate on. Handler calling convention: r0 = args VA (three u64 words),
// r1 = user payload VA, r2 = payload length in bytes.
//
// The Indirect Put jam is padded so its shipped size (GOT table + GOT
// pointer + code) is exactly 1408 bytes, the size reported in §VII-A;
// Server-Side Sum is smaller, so its injected/local convergence happens at
// a smaller payload, as the paper observes.

// RiedKVBenchSrc sets up the benchmark server state: a results array for
// Server-Side Sum, and the hash table plus destination heap for Indirect
// Put. Loading this ried on a process and re-running the namespace
// exchange is what makes the benchmark jams executable there.
const RiedKVBenchSrc = `
; ried_kvbench: server-side state for the Two-Chains benchmark package.
.data
.global tc_result_next
tc_result_next:
    .quad 0
.bss
.global tc_results
tc_results:
    .space 65536            ; 8192 result slots
.global tc_table
tc_table:
    .space 1048576          ; 65536 slots of {key u64, offset u64}
.global tc_heap
tc_heap:
    .space 4194304          ; 4 MB destination data area
`

// JamSSSumSrc is the Server-Side Sum active message: it sums its payload
// and stores the result at the next spot in the server's results array.
const JamSSSumSrc = `
; jam_sssum: Server-Side Sum (paper §VI-B1).
.extern tc_results
.extern tc_result_next
.global jam_sssum
jam_sssum:
    ; r0=args r1=usr r2=usrLen
    movi r3, 0              ; acc
    mov  r4, r1             ; p
    add  r5, r1, r2         ; end
w8:                          ; sum 8-byte words
    addi r6, r4, 8
    bltu r5, r6, tail
    ld   r7, [r4+0]
    add  r3, r3, r7
    mov  r4, r6
    jmp  w8
tail:                        ; then any trailing bytes
    bgeu r4, r5, done
    ldb  r7, [r4+0]
    add  r3, r3, r7
    addi r4, r4, 1
    jmp  tail
done:
    ldg  r7, tc_result_next
    ld   r8, [r7+0]
    ldg  r9, tc_results
    andi r10, r8, 8191      ; wrap the 8192-slot array
    shli r10, r10, 3
    add  r10, r9, r10
    st   r3, [r10+0]
    addi r8, r8, 1
    st   r8, [r7+0]
    mov  r0, r3
    ret
.pad 360
`

// JamIPutSrc is the Indirect Put active message (paper §VI-B2, Fig. 4):
// it probes the server hash table with a client-chosen key, picks the
// offset for new keys, and copies the payload to base+offset. The client
// controls both the distribution and the lookup function — they travel
// with the message.
//
// The hash is strengthened with straight-line mixing rounds so that, as in
// the paper's compiled C function, essentially all of the 1408 shipped
// bytes are on the execution path: the receiver really fetches and runs
// the code that arrived over the network.
var JamIPutSrc = buildIPutSrc()

// iputMixRounds is chosen so the jam's text is exactly 1376 bytes, giving
// the 1408-byte shipped size (3 GOT slots + pointer + text) of §VII-A.
const iputMixRounds = 26

func buildIPutSrc() string {
	var sb strings.Builder
	sb.WriteString(`
; jam_iput: Indirect Put (paper §VI-B2).
.extern memcpy
.extern tc_table
.extern tc_heap
.global jam_iput
jam_iput:
    ; r0=args (args[0]=key) r1=usr r2=usrLen
    addi sp, sp, -40
    st   lr,  [sp+0]
    st   r10, [sp+8]
    st   r11, [sp+16]
    st   r12, [sp+24]
    st   r13, [sp+32]
    ld   r10, [r0+0]        ; key (must be nonzero)
    mov  r11, r1            ; payload
    mov  r12, r2            ; payload bytes
    ; (1) hash the key: golden-ratio multiply plus mixing rounds
    movi  r4, 0x7F4A7C15
    moviu r4, 0x9E3779B9
    mul  r5, r10, r4
    shri r5, r5, 16
`)
	for i := 0; i < iputMixRounds; i++ {
		fmt.Fprintf(&sb, `    mul  r5, r5, r4
    xori r5, r5, %d
    shri r6, r5, 29
    xor  r5, r5, r6
    addi r5, r5, %d
`, 0x5bd1+i*7, 0x27d+i*3)
	}
	sb.WriteString(`    andi r5, r5, 65535
    ldg  r6, tc_table
probe:
    shli r7, r5, 4          ; slot * 16
    add  r7, r6, r7
    ld   r8, [r7+0]
    beq  r8, r10, found
    movi r9, 0
    beq  r8, r9, insert
    addi r5, r5, 1
    andi r5, r5, 65535
    jmp  probe
insert:
    ; (2) choose the offset for this key and store it
    st   r10, [r7+0]
    andi r9, r5, 63
    shli r9, r9, 16         ; 64 regions of 64 KB in the 4 MB heap
    st   r9, [r7+8]
found:
    ld   r13, [r7+8]        ; offset
    ; (3) memcpy(heap + offset, payload, usrLen)
    ldg  r0, tc_heap
    add  r0, r0, r13
    mov  r1, r11
    mov  r2, r12
    callg memcpy
    mov  r0, r13            ; return the offset used
    ld   lr,  [sp+0]
    ld   r10, [sp+8]
    ld   r11, [sp+16]
    ld   r12, [sp+24]
    ld   r13, [sp+32]
    addi sp, sp, 40
    ret
.pad 1376
`)
	return sb.String()
}

// JamHelloSrc demonstrates the paper's C source flow end to end: an AMC
// (C subset) active message compiled by internal/amcc, whose format string
// travels in the jam's rodata and is consumed by the receiver's native
// printf (paper §IV: "implicitly pulls in read-only data to messages to
// support functions like printf").
const JamHelloSrc = `
// jam_hello: quickstart demonstration jam, written in AMC.
extern long printf(byte* fmt, long a, long b);

long jam_hello(long* args, byte* usr, long len) {
    printf("hello from node %d (payload %d bytes)\n", args[0], len);
    return 0;
}
`

// BenchPackageSources returns the canonical source set for the tcbench
// package, as the build toolchain expects it: one element per file
// (.ams/.rds are assembly, .amc is AMC C).
func BenchPackageSources() map[string]string {
	return map[string]string{
		"jam_sssum.ams":    JamSSSumSrc,
		"jam_iput.ams":     JamIPutSrc,
		"jam_hello.amc":    JamHelloSrc,
		"ried_kvbench.rds": RiedKVBenchSrc,
	}
}

// BuildBenchPackage builds the tcbench package.
func BuildBenchPackage() (*Package, error) {
	return BuildPackage("tcbench", BenchPackageSources())
}
