package core

import (
	"fmt"

	"twochains/internal/mailbox"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
)

// EnableMailbox arms this node's primary reactive mailbox with the given
// configuration; inbound active messages dispatch through the node's VM.
// It must be called before peers Connect to the node.
func (n *Node) EnableMailbox(cfg mailbox.ReceiverConfig) error {
	if n.Receiver != nil {
		return fmt.Errorf("core: node %s: mailbox already enabled", n.Name)
	}
	recv, err := n.AddMailbox(cfg)
	if err != nil {
		return err
	}
	n.Receiver = recv
	return nil
}

// AddMailbox arms an additional, independently sequenced mailbox region on
// this node and returns its receiver. A mailbox region admits a single
// remote writer (slot sequencing is per-sender), so many-node fabrics give
// every inbound channel its own region; ConnectTo targets one explicitly.
func (n *Node) AddMailbox(cfg mailbox.ReceiverConfig) (*mailbox.Receiver, error) {
	recv, err := mailbox.NewReceiver(n.Worker, cfg, n.Counter, n.dispatch)
	if err != nil {
		return nil, err
	}
	n.Receivers = append(n.Receivers, recv)
	recv.Start()
	return recv, nil
}

// Teardown takes the node out of service: every armed mailbox region
// stops being polled and subsequent sends addressed to this node fail
// fast with an error instead of landing in a dead region. The node's
// memory and installed packages stay intact (a torn-down process, not a
// wiped machine); frames already in flight still land but are not
// serviced.
func (n *Node) Teardown() {
	n.down = true
	for _, r := range n.Receivers {
		r.Stop()
	}
}

// Down reports whether the node has been torn down.
func (n *Node) Down() bool { return n.down }

// dispatch executes one delivered active message. It implements both
// invocation methods of §IV-B: Injected Function (run the code that
// arrived in the frame) and Local Function (call the library function
// selected by package and element ID).
func (n *Node) dispatch(d *mailbox.Delivery) (sim.Duration, error) {
	switch d.Kind {
	case mailbox.KindInjected:
		return n.runInjected(d)
	case mailbox.KindLocal:
		return n.runLocal(d)
	}
	return 0, nil
}

// runInjected maps the jam body that travelled in the frame and calls its
// entry point. The jam's external references resolve through the
// travelling GOT via the pointer at codeBase-8 — no lookup, no
// registration, exactly the arrival path of paper Fig. 2.
func (n *Node) runInjected(d *mailbox.Delivery) (sim.Duration, error) {
	codeVA, entryVA := d.CodeVA, d.EntryVA
	var extra sim.Duration

	if n.Cfg.SecureExec {
		// Security mode: the mailbox page is not executable; copy
		// [gp slot][body] into the execution area so the gp-before-code
		// convention still holds, and pay for the copy.
		span := 8 + d.BodyLen
		raw, err := n.AS.ReadBytesDMA(d.GpSlotVA, span)
		if err != nil {
			return 0, err
		}
		if err := n.AS.WriteBytesDMA(n.execArea, raw); err != nil {
			return 0, err
		}
		if n.Hier != nil {
			extra += n.Hier.Access(d.GpSlotVA, span, memsim.Read)
			extra += n.Hier.Access(n.execArea, span, memsim.Write)
		}
		extra += model.Cycles(float64(span) * 0.12)
		delta := d.EntryVA - d.CodeVA
		codeVA = n.execArea + 8
		entryVA = codeVA + delta
	}

	code, err := n.AS.ViewDMA(codeVA, d.TextLen)
	if err != nil {
		return extra, err
	}
	// The VM keeps the decoded body cached per frame slot: repeated
	// deliveries of the same element re-execute the cached region after a
	// byte compare instead of re-decoding.
	if _, err := n.VM.EnsureJam(codeVA, code); err != nil {
		return extra, fmt.Errorf("core: node %s: bad injected code: %w", n.Name, err)
	}

	ret, cost, err := n.VM.Call(entryVA, d.ArgsVA, d.UsrVA, uint64(d.UsrLen))
	if n.OnExecuted != nil {
		n.OnExecuted(ret, extra+cost, err)
	}
	return extra + cost, err
}

// runLocal invokes the function from the package's Local Function library
// selected by the frame's package and element IDs (paper Fig. 3: "a vector
// of function pointers that are called by using the ID included in the
// active message header").
func (n *Node) runLocal(d *mailbox.Delivery) (sim.Duration, error) {
	inst := n.packageByID(d.PkgID)
	if inst == nil {
		return 0, fmt.Errorf("core: node %s: no installed package with ID %d", n.Name, d.PkgID)
	}
	entry, ok := inst.localVec[d.ElemID]
	if !ok {
		return 0, fmt.Errorf("core: node %s: package %s has no element %d",
			n.Name, inst.Pkg.Name, d.ElemID)
	}
	ret, cost, err := n.VM.Call(entry, d.ArgsVA, d.UsrVA, uint64(d.UsrLen))
	if n.OnExecuted != nil {
		n.OnExecuted(ret, cost, err)
	}
	return cost, err
}

func (n *Node) packageByID(id uint8) *InstalledPackage {
	for _, inst := range n.pkgs {
		if inst.ID == id {
			return inst
		}
	}
	return nil
}
