package core

import (
	"bytes"
	"fmt"
	"sort"

	"twochains/internal/cpusim"
	"twochains/internal/fabric"
	"twochains/internal/linker"
	"twochains/internal/mailbox"
	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/sim"
	"twochains/internal/ucx"
	"twochains/internal/vm"

	// Register the default "simnet" fabric backend; core itself speaks
	// only to the fabric.Transport interface.
	_ "twochains/internal/simnet"
)

// ClusterConfig selects fabric-wide behaviour.
type ClusterConfig struct {
	// Ordered is the fabric write-order guarantee (paper testbed: true).
	Ordered bool
	Seed    uint64
	// Backend names the fabric transport ("" selects the default,
	// "simnet"); see fabric.Backends for the registered set.
	Backend string
	// Workers > 1 requests the multi-core conservative engine: one sim
	// engine per fabric shard (Shards of them), advanced by up to Workers
	// goroutines, with results bit-identical to single-engine execution.
	// It engages only when Shards > 1 and the backend implements
	// fabric.ShardedTransport; otherwise the cluster runs on one engine
	// exactly as before.
	Workers int
	// Shards is the fabric-shard (leaf-domain) count the parallel engine
	// partitions by. Node placement stays the caller's job (AddNodeShard /
	// Fabric.AssignDomain must agree with it).
	Shards int
	// Speculation is the parallel engine's speculative-window budget: how
	// far past the conservative horizon a shard may run when the
	// reachability bound allows it (sim.Group.SetSpeculation). Zero — the
	// default — keeps windows strictly conservative; results are
	// bit-identical either way.
	Speculation sim.Duration
	// Chaos configures the "chaos" failure-injection backend (and is
	// ignored by every other backend); see fabric.ChaosConfig.
	Chaos *fabric.ChaosConfig
}

// DefaultClusterConfig matches the paper's testbed.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{Ordered: true, Seed: 0x7c2c2021}
}

// Cluster is a set of simulated processes on one fabric backend sharing a
// discrete-event clock (or, under the parallel engine, a group of
// per-shard clocks advanced conservatively in lockstep).
type Cluster struct {
	// Eng is the default engine: the only engine of a sequential cluster,
	// shard 0's under a Group. Setup-time scheduling may use it; runtime
	// scheduling must target the owning node's shard (EngineFor).
	Eng    *sim.Engine
	Group  *sim.Group // nil unless the parallel engine engaged
	Fabric fabric.Transport
	Ctx    *ucx.Context
	Nodes  []*Node
}

// NewCluster creates an empty cluster. It panics on an unregistered
// backend name; callers that take the name from configuration should
// validate it with fabric.Lookup first (tc.NewSystem and NewMesh do).
// With cfg.Workers > 1 and cfg.Shards > 1 it builds the multi-core
// conservative engine, provided the backend supports per-shard placement;
// unsupported backends fall back to single-engine execution.
func NewCluster(cfg ClusterConfig) *Cluster {
	eng := sim.NewEngine()
	fab, err := fabric.New(cfg.Backend, eng, fabric.Config{Ordered: cfg.Ordered, Seed: cfg.Seed, Chaos: cfg.Chaos})
	if err != nil {
		panic("core: " + err.Error())
	}
	c := &Cluster{Eng: eng, Fabric: fab, Ctx: ucx.NewContext(fab)}
	if cfg.Workers > cfg.Shards {
		// More workers than shards is pure waste: a worker can only ever
		// own whole shards, so the excess goroutines would idle at every
		// barrier. tcperf/tcrun default Workers to NumCPU regardless of
		// the shard count, so clamp here rather than in every driver.
		cfg.Workers = cfg.Shards
	}
	if cfg.Workers > 1 && cfg.Shards > 1 {
		if st, ok := fab.(fabric.ShardedTransport); ok {
			g := sim.NewGroup(cfg.Shards, cfg.Workers, st.Lookahead())
			if cfg.Speculation > 0 {
				g.SetSpeculation(cfg.Speculation)
			}
			st.BindGroup(g)
			c.Group = g
			c.Eng = g.Engine(0)
		}
	}
	return c
}

// EngineFor returns the engine of one fabric shard (the single engine
// when the parallel group is not engaged).
func (c *Cluster) EngineFor(shard int) *sim.Engine {
	if c.Group == nil {
		return c.Eng
	}
	return c.Group.Engine(shard)
}

// Run processes events until the cluster is quiescent.
func (c *Cluster) Run() {
	if c.Group != nil {
		c.Group.Run()
		return
	}
	c.Eng.Run()
}

// RunFor processes events for d of simulated time.
func (c *Cluster) RunFor(d sim.Duration) {
	if c.Group != nil {
		c.Group.RunFor(d)
		return
	}
	c.Eng.RunFor(d)
}

// Now returns the cluster-wide simulated time: the latest executed event
// across every shard.
func (c *Cluster) Now() sim.Time {
	if c.Group != nil {
		return c.Group.Now()
	}
	return c.Eng.Now()
}

// NodeConfig selects one node's hardware and runtime features.
type NodeConfig struct {
	// MemBytes is the address-space capacity (default 64 MB).
	MemBytes int
	// Stash enables LLC stashing of inbound network traffic.
	Stash bool
	// Prefetch enables the stride prefetcher.
	Prefetch bool
	// Timing enables the cache/CPU cost model; functional tests can turn
	// it off.
	Timing bool
	// Seed for this node's stochastic models.
	Seed uint64
	// Interpreter forces every VM call through the reference interpret
	// loop instead of the compiled translations (A/B oracle switch; see
	// vm.VM.UseInterpreter).
	Interpreter bool

	// Security options (paper §V).
	// CheckExec makes the VM enforce execute permissions on fetch.
	CheckExec bool
	// SecureExec copies injected jam bodies out of the mailbox into a
	// separate execution area before running them, so mailbox pages need
	// not be executable.
	SecureExec bool
	// ReadOnlyGOT remaps library GOTs read-only after binding.
	ReadOnlyGOT bool
}

// DefaultNodeConfig matches the paper's measurement configuration.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		MemBytes: 64 << 20,
		Stash:    true,
		Prefetch: true,
		Timing:   true,
		Seed:     0x7c2c2021,
	}
}

// Node is one simulated process: address space, caches, namespace, VM,
// worker, and installed packages.
type Node struct {
	Name    string
	Cfg     NodeConfig
	Cluster *Cluster
	// Shard is the fabric shard (leaf domain) the node lives in; Eng is
	// that shard's engine — the only engine this node's events may be
	// scheduled on under the parallel group.
	Shard int
	Eng   *sim.Engine

	AS      *mem.AddressSpace
	Hier    *memsim.Hierarchy
	NS      *linker.Namespace
	VM      *vm.VM
	Worker  *ucx.Worker
	Counter *cpusim.Counter
	Stdout  bytes.Buffer

	// Receiver is the primary mailbox (EnableMailbox); Receivers holds
	// every armed mailbox region, one per inbound channel in mesh
	// deployments (AddMailbox).
	Receiver  *mailbox.Receiver
	Receivers []*mailbox.Receiver

	pkgs    map[string]*InstalledPackage
	nextPkg uint8
	// nsViews are per-tenant linker namespaces, forked from the base
	// namespace on first use (see NamespaceView).
	nsViews  map[string]*linker.Namespace
	execArea uint64 // SecureExec scratch
	// jams is the sender-side prepared-jam cache shared by every outgoing
	// channel of this node (bind once per element + receiver namespace).
	jams *jamCache
	// down marks a torn-down node: sends addressed to it fail fast.
	down bool
	// OnExecuted observes every handler execution (benchmark hook).
	OnExecuted func(ret uint64, cost sim.Duration, err error)
}

// InstalledPackage is a package present on a node.
type InstalledPackage struct {
	Pkg *Package
	ID  uint8
	// LocalLib is the loaded Local Function library, with the function
	// vector indexed by element ID.
	LocalLib *linker.Loaded
	localVec map[uint8]uint64
	rieds    map[string]*linker.Loaded
}

// AddNode creates a node in fabric shard 0 and attaches it to the fabric.
func (c *Cluster) AddNode(name string, cfg NodeConfig) (*Node, error) {
	return c.AddNodeShard(name, cfg, 0)
}

// AddNodeShard creates a node placed in the given fabric shard: its NIC
// joins that leaf domain and every host-side event it generates runs on
// that shard's engine.
func (c *Cluster) AddNodeShard(name string, cfg NodeConfig, shard int) (*Node, error) {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 64 << 20
	}
	n := &Node{
		Name:    name,
		Cfg:     cfg,
		Cluster: c,
		Shard:   shard,
		Eng:     c.EngineFor(shard),
		AS:      mem.NewAddressSpace(cfg.MemBytes),
		NS:      linker.NewNamespace(),
		pkgs:    map[string]*InstalledPackage{},
		jams:    newJamCache(),
	}
	if cfg.Timing {
		mc := memsim.DefaultConfig()
		mc.Stash = cfg.Stash
		mc.Prefetch = cfg.Prefetch
		mc.Seed = cfg.Seed ^ uint64(len(c.Nodes))
		n.Hier = memsim.New(mc)
	}
	machine, err := vm.New(n.AS, n.Hier, &n.Stdout)
	if err != nil {
		return nil, fmt.Errorf("core: node %s: %w", name, err)
	}
	n.VM = machine
	n.VM.CheckExec = cfg.CheckExec
	n.VM.UseInterpreter = cfg.Interpreter
	if err := vm.BindLibc(n.VM, n.NS); err != nil {
		return nil, fmt.Errorf("core: node %s: %w", name, err)
	}
	n.Worker = c.Ctx.NewWorkerOn(n.AS, n.Hier, n.Eng)
	c.Fabric.AssignDomain(n.Worker.NIC, shard)
	n.Counter = cpusim.NewCounter(sim.NewRNG(cfg.Seed ^ 0xc0ffee ^ uint64(len(c.Nodes))))
	if cfg.SecureExec {
		va, err := n.AS.AllocPages("secure-exec", 64*1024, mem.PermRWX)
		if err != nil {
			return nil, fmt.Errorf("core: node %s: %w", name, err)
		}
		n.execArea = va
	}
	c.Nodes = append(c.Nodes, n)
	return n, nil
}

// SetStress toggles the memory-stress co-runner on this node.
func (n *Node) SetStress(on bool) {
	if n.Hier != nil {
		n.Hier.SetStress(on)
	}
}

// BindNative registers a host function in this node's namespace, making
// it callable from jams and rieds like any C library symbol.
func (n *Node) BindNative(name string, fn vm.NativeFunc) error {
	va, err := n.VM.BindNative(name, fn)
	if err != nil {
		return err
	}
	return n.NS.Define(name, va)
}

// NamespaceView returns the node's namespace view for key, forking it
// from the base namespace on first use. The fork copies the current base
// bindings (libc, natives, already-installed base packages), so a view
// resolves everything the base does until a per-view install shadows a
// name. Views never feed back into the base namespace.
func (n *Node) NamespaceView(key string) *linker.Namespace {
	if n.nsViews == nil {
		n.nsViews = map[string]*linker.Namespace{}
	}
	if ns, ok := n.nsViews[key]; ok {
		return ns
	}
	ns := linker.NewNamespace()
	// Fork in sorted name order: the namespace is a plain map today, but
	// definition order must never become an accidental function of Go's
	// randomized map iteration (tclint detsource).
	snap := n.NS.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ns.Redefine(name, snap[name])
	}
	n.nsViews[key] = ns
	return ns
}

// InstallPackage loads a built package onto the node: rieds are loaded as
// libraries (registering their exports in the node namespace), and the
// Local Function library is loaded to provide the by-ID function vector.
func (n *Node) InstallPackage(pkg *Package) (*InstalledPackage, error) {
	return n.installPackageAs(pkg.Name, n.NS, pkg, false)
}

// InstallPackageAs loads pkg under the given alias into ns — the
// per-tenant install path: the alias is the tenant-qualified package
// name, ns the tenant's namespace view. Replacement is allowed so the
// tenant's version of an app shadows the base install's symbols inside
// its own view without touching any other namespace. The install still
// gets a node-unique package ID, so by-ID local dispatch cannot collide
// across tenants.
func (n *Node) InstallPackageAs(alias string, ns *linker.Namespace, pkg *Package) (*InstalledPackage, error) {
	return n.installPackageAs(alias, ns, pkg, true)
}

func (n *Node) installPackageAs(alias string, ns *linker.Namespace, pkg *Package, replace bool) (*InstalledPackage, error) {
	if _, dup := n.pkgs[alias]; dup {
		return nil, fmt.Errorf("core: node %s: package %s already installed", n.Name, alias)
	}
	n.nextPkg++
	inst := &InstalledPackage{
		Pkg:      pkg,
		ID:       n.nextPkg,
		localVec: map[uint8]uint64{},
		rieds:    map[string]*linker.Loaded{},
	}
	opts := linker.LoadOptions{ReadOnlyGOT: n.Cfg.ReadOnlyGOT, Replace: replace}

	for _, e := range pkg.Elements {
		if e.Kind != ElemRied {
			continue
		}
		ld, err := linker.Load(n.AS, ns, e.Ried, opts)
		if err != nil {
			return nil, fmt.Errorf("core: node %s: ried %s: %w", n.Name, e.Name, err)
		}
		if err := n.mapLibrary(ld); err != nil {
			return nil, err
		}
		inst.rieds[e.Name] = ld
	}
	if pkg.LocalLib != nil {
		ld, err := linker.Load(n.AS, ns, pkg.LocalLib, opts)
		if err != nil {
			return nil, fmt.Errorf("core: node %s: local lib: %w", n.Name, err)
		}
		if err := n.mapLibrary(ld); err != nil {
			return nil, err
		}
		inst.LocalLib = ld
		for _, e := range pkg.Elements {
			if e.Kind != ElemJam {
				continue
			}
			va, ok := ld.Exports[e.Name]
			if !ok {
				return nil, fmt.Errorf("core: node %s: local lib lacks %s", n.Name, e.Name)
			}
			inst.localVec[e.ID] = va
		}
	}
	n.pkgs[alias] = inst
	return inst, nil
}

// mapLibrary registers a loaded library's text with the VM.
func (n *Node) mapLibrary(ld *linker.Loaded) error {
	if ld.TextLen == 0 {
		return nil
	}
	code, err := n.AS.ReadBytesDMA(ld.TextVA, ld.TextLen)
	if err != nil {
		return err
	}
	if _, err := n.VM.AddRegion(ld.TextVA, code, ld.GotVA); err != nil {
		return fmt.Errorf("core: node %s: map %s: %w", n.Name, ld.Image.Name, err)
	}
	return nil
}

// Package returns an installed package by name.
func (n *Node) Package(name string) (*InstalledPackage, bool) {
	p, ok := n.pkgs[name]
	return p, ok
}

// InstallRied ships a standalone ried image to this node and loads it,
// optionally replacing existing name bindings — the remote-linking dynamic
// update path (paper §III: applications alter subsequent active message
// behaviour by loading a library that changes symbol resolution).
func (n *Node) InstallRied(img *linker.Image, replace bool) (*linker.Loaded, error) {
	ld, err := linker.Load(n.AS, n.NS, img, linker.LoadOptions{
		ReadOnlyGOT: n.Cfg.ReadOnlyGOT,
		Replace:     replace,
	})
	if err != nil {
		return nil, err
	}
	if err := n.mapLibrary(ld); err != nil {
		return nil, err
	}
	return ld, nil
}

// SymbolVA resolves a name in this node's namespace.
func (n *Node) SymbolVA(name string) (uint64, bool) {
	return n.NS.Lookup(name)
}
