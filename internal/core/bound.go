package core

import (
	"fmt"

	"twochains/internal/mailbox"
)

// Bound is a channel-scoped pre-resolved function handle: the element is
// looked up once, its travelling image is bound against the receiver
// namespace once (via the sender node's shared prepared-jam cache), and
// the receiver-side IDs for Local Function invocation are resolved once.
// Every subsequent send through the handle skips string resolution
// entirely — the bind-once/call-many idiom the paper's design implies.
//
// Handles survive receiver-side RIED hot-swaps: when the channel's
// namespace fingerprint moves (RefreshNames after an InstallRied), the
// next send re-binds through the jam cache, exactly as a fresh string
// lookup would.
//
// Bound is the engine under both the deprecated string-based Channel
// methods (which resolve a cached handle per call) and the tc.Func public
// API (which holds one handle per destination).
type Bound struct {
	ch                *Channel
	pkgName, elemName string

	// Injection state: the prepared image and the namespace fingerprint
	// it was bound against. Re-prepared when the channel's fingerprint
	// moves (hot-swap) — the cache makes that a lookup, not a re-bind,
	// unless the namespace is genuinely new.
	pj *preparedJam
	fp uint64

	// Local Function state: the receiver's package and element IDs.
	localPkg, localElem uint8
	localOK             bool
}

// Bind returns this channel's handle for the element, performing the
// sender-side lookup and the travelling-GOT bind immediately. The handle
// is cached per channel: binding twice returns the same handle.
func (ch *Channel) Bind(pkgName, elemName string) (*Bound, error) {
	b := ch.Handle(pkgName, elemName)
	if err := b.ensureInject(); err != nil {
		return nil, err
	}
	return b, nil
}

// Handle returns the cached per-channel handle without forcing a bind:
// the deprecated string methods use it so their per-call error semantics
// (lazy, per-path) stay exactly as before.
func (ch *Channel) Handle(pkgName, elemName string) *Bound {
	key := pkgName + "/" + elemName
	if b, ok := ch.bounds[key]; ok {
		return b
	}
	b := &Bound{ch: ch, pkgName: pkgName, elemName: elemName}
	ch.bounds[key] = b
	return b
}

// Channel returns the channel the handle sends on.
func (b *Bound) Channel() *Channel { return b.ch }

// ensureInject makes the prepared image current for the channel's
// receiver namespace.
func (b *Bound) ensureInject() error {
	if b.pj != nil && b.fp == b.ch.remoteFP {
		return nil
	}
	pj, err := b.ch.prepareJam(b.pkgName, b.elemName)
	if err != nil {
		return err
	}
	b.pj, b.fp = pj, b.ch.remoteFP
	return nil
}

// ensureLocal resolves the receiver-side IDs once.
func (b *Bound) ensureLocal() error {
	if b.localOK {
		return nil
	}
	ch := b.ch
	inst, ok := ch.Dst.Package(b.pkgName)
	if !ok {
		return fmt.Errorf("core: %s->%s: package %s not installed on receiver",
			ch.Src.Name, ch.Dst.Name, b.pkgName)
	}
	elem, ok := inst.Pkg.Element(b.elemName)
	if !ok || elem.Kind != ElemJam {
		return fmt.Errorf("core: %s->%s: no jam %q in package %s",
			ch.Src.Name, ch.Dst.Name, b.elemName, b.pkgName)
	}
	b.localPkg, b.localElem = inst.ID, elem.ID
	b.localOK = true
	return nil
}

// checkUp fails sends addressed to a torn-down receiver.
func (b *Bound) checkUp() error {
	if b.ch.Dst.down {
		return fmt.Errorf("core: %s->%s: destination node torn down",
			b.ch.Src.Name, b.ch.Dst.Name)
	}
	return nil
}

// injectedMessage builds the wire message for the current prepared image.
func (b *Bound) injectedMessage(args [2]uint64, usr []byte) *mailbox.Message {
	pj := b.pj
	return &mailbox.Message{
		Kind:        mailbox.KindInjected,
		PkgID:       pj.pkgID,
		ElemID:      pj.elemID,
		JamImage:    pj.image,
		GotTableLen: pj.gotLen,
		TextLen:     pj.textLen,
		EntryOff:    pj.entry,
		Patches:     pj.patches,
		Args:        args,
		Usr:         usr,
	}
}

// Inject sends one Injected Function active message through the handle:
// the pre-bound code travels in the frame and executes on arrival.
func (b *Bound) Inject(args [2]uint64, usr []byte, done func(Result)) error {
	if err := b.checkUp(); err != nil {
		return err
	}
	if err := b.ensureInject(); err != nil {
		return err
	}
	b.ch.Sender.Send(b.injectedMessage(args, usr), wrapDone(done, true))
	return nil
}

// InjectBurst sends one Injected Function message per args entry as a
// single batched operation; the mailbox sender coalesces contiguous frame
// slots into single puts. usr is the shared payload; done, when non-nil,
// fires once per message.
func (b *Bound) InjectBurst(argsBatch [][2]uint64, usr []byte, done func(Result)) error {
	if len(argsBatch) == 0 {
		return nil
	}
	if err := b.checkUp(); err != nil {
		return err
	}
	if err := b.ensureInject(); err != nil {
		return err
	}
	msgs := make([]*mailbox.Message, len(argsBatch))
	for i, args := range argsBatch {
		msgs[i] = b.injectedMessage(args, usr)
	}
	b.ch.Sender.SendBatch(msgs, wrapDone(done, true))
	return nil
}

// CallLocal sends a Local Function active message through the handle:
// only the pre-resolved IDs and payload travel; the receiver calls its
// library copy of the function.
func (b *Bound) CallLocal(args [2]uint64, usr []byte, done func(Result)) error {
	if err := b.checkUp(); err != nil {
		return err
	}
	if err := b.ensureLocal(); err != nil {
		return err
	}
	msg := mailbox.PackLocal(b.localPkg, b.localElem, args, usr)
	b.ch.Sender.Send(msg, wrapDone(done, false))
	return nil
}

// CallLocalBurst sends one Local Function message per args entry as a
// batch, coalescing contiguous frames like InjectBurst.
func (b *Bound) CallLocalBurst(argsBatch [][2]uint64, usr []byte, done func(Result)) error {
	if len(argsBatch) == 0 {
		return nil
	}
	if err := b.checkUp(); err != nil {
		return err
	}
	if err := b.ensureLocal(); err != nil {
		return err
	}
	msgs := make([]*mailbox.Message, len(argsBatch))
	for i, args := range argsBatch {
		msgs[i] = mailbox.PackLocal(b.localPkg, b.localElem, args, usr)
	}
	b.ch.Sender.SendBatch(msgs, wrapDone(done, false))
	return nil
}

// InjectedWireLen reports the frame size an Inject with a payload of
// usrLen bytes would occupy.
func (b *Bound) InjectedWireLen(usrLen int) (int, error) {
	if err := b.ensureInject(); err != nil {
		return 0, err
	}
	m := &mailbox.Message{Kind: mailbox.KindInjected, JamImage: b.pj.image, Usr: make([]byte, usrLen)}
	return m.WireLen(), nil
}
