package core

import (
	"fmt"

	"twochains/internal/mailbox"
)

// Bound is a channel-scoped pre-resolved function handle: the element is
// looked up once, its travelling image is bound against the receiver
// namespace once (via the sender node's shared prepared-jam cache), and
// the receiver-side IDs for Local Function invocation are resolved once.
// Every subsequent send through the handle skips string resolution
// entirely — the bind-once/call-many idiom the paper's design implies.
//
// Handles survive receiver-side RIED hot-swaps: when the channel's
// namespace fingerprint moves (RefreshNames after an InstallRied), the
// next send re-binds through the jam cache, exactly as a fresh string
// lookup would.
//
// Bound is the channel-level invocation surface (resolved by string via
// Channel.Handle) and the engine under the tc.Func public API (which
// holds one handle per destination).
type Bound struct {
	ch                *Channel
	pkgName, elemName string

	// Injection state: the prepared image and the namespace fingerprint
	// it was bound against. Re-prepared when the channel's fingerprint
	// moves (hot-swap) — the cache makes that a lookup, not a re-bind,
	// unless the namespace is genuinely new.
	pj *preparedJam
	fp uint64

	// Local Function state: the receiver's package and element IDs.
	localPkg, localElem uint8
	localOK             bool

	// burstScratch is the reusable frame-pointer scratch for batched
	// sends: SendBatch never retains the slice (stalled messages are
	// queued individually), so one per-handle buffer serves every burst.
	burstScratch []*mailbox.Message

	// injectCnt counts single injects through this handle for the
	// auto-switch heuristic (ChannelOptions.AutoSwitchAfter).
	injectCnt int
}

// Bind returns this channel's handle for the element, performing the
// sender-side lookup and the travelling-GOT bind immediately. The handle
// is cached per channel: binding twice returns the same handle.
func (ch *Channel) Bind(pkgName, elemName string) (*Bound, error) {
	b := ch.Handle(pkgName, elemName)
	if err := b.ensureInject(); err != nil {
		return nil, err
	}
	return b, nil
}

// Handle returns the cached per-channel handle without forcing a bind:
// error semantics stay lazy and per-path (an inject bind failure does
// not poison Local Function sends through the same handle).
func (ch *Channel) Handle(pkgName, elemName string) *Bound {
	key := [2]string{pkgName, elemName}
	if b, ok := ch.bounds[key]; ok {
		return b
	}
	b := &Bound{ch: ch, pkgName: pkgName, elemName: elemName}
	ch.bounds[key] = b
	return b
}

// Channel returns the channel the handle sends on.
func (b *Bound) Channel() *Channel { return b.ch }

// CreditStalls reports the channel sender's cumulative credit-stall
// count — the flow-control telemetry tenant admission feeds on. Reading
// it is shard-safe from the source node's shard (the sender lives
// there).
func (b *Bound) CreditStalls() uint64 { return b.ch.Sender.Stats().CreditStalls }

// ensureInject makes the prepared image current for the channel's
// receiver namespace.
func (b *Bound) ensureInject() error {
	if b.pj != nil && b.fp == b.ch.remoteFP {
		return nil
	}
	pj, err := b.ch.prepareJam(b.pkgName, b.elemName)
	if err != nil {
		return err
	}
	b.pj, b.fp = pj, b.ch.remoteFP
	return nil
}

// ensureLocal resolves the receiver-side IDs once.
func (b *Bound) ensureLocal() error {
	if b.localOK {
		return nil
	}
	ch := b.ch
	inst, ok := ch.Dst.Package(b.pkgName)
	if !ok {
		return fmt.Errorf("core: %s->%s: package %s not installed on receiver",
			ch.Src.Name, ch.Dst.Name, b.pkgName)
	}
	elem, ok := inst.Pkg.Element(b.elemName)
	if !ok || elem.Kind != ElemJam {
		return fmt.Errorf("core: %s->%s: no jam %q in package %s",
			ch.Src.Name, ch.Dst.Name, b.elemName, b.pkgName)
	}
	b.localPkg, b.localElem = inst.ID, elem.ID
	b.localOK = true
	return nil
}

// checkUp fails sends on a severed channel fast with the typed error:
// a torn-down receiver, a torn-down sender (a failed process issues
// nothing), or a channel severed by FailNode (dead stays set across the
// node's rejoin — the handle must re-resolve to the rebuilt channel).
func (b *Bound) checkUp() error {
	switch {
	case b.ch.Dst.down || b.ch.dead:
		return &NodeDownError{Src: b.ch.Src.Name, Dst: b.ch.Dst.Name, Node: b.ch.Dst.Name}
	case b.ch.Src.down:
		return &NodeDownError{Src: b.ch.Src.Name, Dst: b.ch.Dst.Name, Node: b.ch.Src.Name}
	}
	return nil
}

// fillInjected writes the wire message for the current prepared image
// into a pooled frame.
func (b *Bound) fillInjected(m *mailbox.Message, args [2]uint64, usr []byte) {
	pj := b.pj
	m.Kind = mailbox.KindInjected
	m.PkgID = pj.pkgID
	m.ElemID = pj.elemID
	m.JamImage = pj.image
	m.GotTableLen = pj.gotLen
	m.TextLen = pj.textLen
	m.EntryOff = pj.entry
	m.Patches = pj.patches
	m.Args = args
	m.Usr = usr
}

// fillLocal writes the Local Function wire message into a pooled frame.
func (b *Bound) fillLocal(m *mailbox.Message, args [2]uint64, usr []byte) {
	m.Kind = mailbox.KindLocal
	m.PkgID = b.localPkg
	m.ElemID = b.localElem
	m.Args = args
	m.Usr = usr
}

// burstMsgs returns the per-handle scratch sized for an n-message batch.
func (b *Bound) burstMsgs(n int) []*mailbox.Message {
	if cap(b.burstScratch) < n {
		b.burstScratch = make([]*mailbox.Message, n)
	}
	return b.burstScratch[:n]
}

// The *Info quartet below is the allocation-free spine of the handle: it
// speaks the mailbox's native SendInfo callback (one pooled frame per
// message, released by the sender after packing) and is what tc.Func
// drives with its prebound future callbacks. The Result-typed methods
// wrap it for callers that want the higher-level Result.

// takeAutoSwitch counts one single inject through the handle and reports
// whether the auto-switch policy (ChannelOptions.AutoSwitchAfter, the
// paper's §VIII future-work optimization) downgrades it to a Local
// Function call: the function has reoccurred often enough and the
// receiver is known to hold the package, so shipping its code again is
// waste. Bursts never auto-switch — they are an explicit bulk-injection
// choice.
func (b *Bound) takeAutoSwitch() bool {
	after := b.ch.Opts.AutoSwitchAfter
	if after <= 0 {
		return false
	}
	b.injectCnt++
	if b.injectCnt <= after {
		return false
	}
	_, ok := b.ch.Dst.Package(b.pkgName)
	return ok
}

// InjectInfo sends one Injected Function active message, reporting
// completion through the mailbox-level SendInfo callback. An
// auto-switched call goes out as a Local Function message instead.
func (b *Bound) InjectInfo(args [2]uint64, usr []byte, done func(mailbox.SendInfo)) error {
	if err := b.checkUp(); err != nil {
		return err
	}
	if b.takeAutoSwitch() {
		return b.callLocalRaw(args, usr, done)
	}
	return b.injectRaw(args, usr, done)
}

// injectRaw is the post-policy injected send: bind if stale, fill a
// pooled frame, hand it to the sender.
func (b *Bound) injectRaw(args [2]uint64, usr []byte, done func(mailbox.SendInfo)) error {
	if err := b.ensureInject(); err != nil {
		return err
	}
	m := b.ch.Sender.GetMessage()
	b.fillInjected(m, args, usr)
	b.ch.Sender.Send(m, done)
	return nil
}

// InjectBurstInfo sends one Injected Function message per args entry as a
// single batched operation (contiguous frame slots coalesce into single
// puts); done, when non-nil, fires once per message.
func (b *Bound) InjectBurstInfo(argsBatch [][2]uint64, usr []byte, done func(mailbox.SendInfo)) error {
	if len(argsBatch) == 0 {
		return nil
	}
	if err := b.checkUp(); err != nil {
		return err
	}
	if err := b.ensureInject(); err != nil {
		return err
	}
	msgs := b.burstMsgs(len(argsBatch))
	for i, args := range argsBatch {
		m := b.ch.Sender.GetMessage()
		b.fillInjected(m, args, usr)
		msgs[i] = m
	}
	b.ch.Sender.SendBatch(msgs, done)
	return nil
}

// CallLocalInfo sends a Local Function active message, reporting
// completion through the mailbox-level SendInfo callback.
func (b *Bound) CallLocalInfo(args [2]uint64, usr []byte, done func(mailbox.SendInfo)) error {
	if err := b.checkUp(); err != nil {
		return err
	}
	return b.callLocalRaw(args, usr, done)
}

// callLocalRaw is the post-check local send shared with the auto-switch
// downgrade path.
func (b *Bound) callLocalRaw(args [2]uint64, usr []byte, done func(mailbox.SendInfo)) error {
	if err := b.ensureLocal(); err != nil {
		return err
	}
	m := b.ch.Sender.GetMessage()
	b.fillLocal(m, args, usr)
	b.ch.Sender.Send(m, done)
	return nil
}

// CallLocalBurstInfo sends one Local Function message per args entry as a
// batch, coalescing contiguous frames like InjectBurstInfo.
func (b *Bound) CallLocalBurstInfo(argsBatch [][2]uint64, usr []byte, done func(mailbox.SendInfo)) error {
	if len(argsBatch) == 0 {
		return nil
	}
	if err := b.checkUp(); err != nil {
		return err
	}
	if err := b.ensureLocal(); err != nil {
		return err
	}
	msgs := b.burstMsgs(len(argsBatch))
	for i, args := range argsBatch {
		m := b.ch.Sender.GetMessage()
		b.fillLocal(m, args, usr)
		msgs[i] = m
	}
	b.ch.Sender.SendBatch(msgs, done)
	return nil
}

// Inject sends one Injected Function active message through the handle:
// the pre-bound code travels in the frame and executes on arrival. An
// auto-switched call goes out — and reports its Result — as a Local
// Function message instead.
func (b *Bound) Inject(args [2]uint64, usr []byte, done func(Result)) error {
	if err := b.checkUp(); err != nil {
		return err
	}
	if b.takeAutoSwitch() {
		return b.callLocalRaw(args, usr, wrapDone(done, false))
	}
	return b.injectRaw(args, usr, wrapDone(done, true))
}

// InjectBurst sends one Injected Function message per args entry as a
// single batched operation; the mailbox sender coalesces contiguous frame
// slots into single puts. usr is the shared payload; done, when non-nil,
// fires once per message.
func (b *Bound) InjectBurst(argsBatch [][2]uint64, usr []byte, done func(Result)) error {
	return b.InjectBurstInfo(argsBatch, usr, wrapDone(done, true))
}

// CallLocal sends a Local Function active message through the handle:
// only the pre-resolved IDs and payload travel; the receiver calls its
// library copy of the function.
func (b *Bound) CallLocal(args [2]uint64, usr []byte, done func(Result)) error {
	return b.CallLocalInfo(args, usr, wrapDone(done, false))
}

// CallLocalBurst sends one Local Function message per args entry as a
// batch, coalescing contiguous frames like InjectBurst.
func (b *Bound) CallLocalBurst(argsBatch [][2]uint64, usr []byte, done func(Result)) error {
	return b.CallLocalBurstInfo(argsBatch, usr, wrapDone(done, false))
}

// InjectedWireLen reports the frame size an Inject with a payload of
// usrLen bytes would occupy.
func (b *Bound) InjectedWireLen(usrLen int) (int, error) {
	if err := b.ensureInject(); err != nil {
		return 0, err
	}
	m := &mailbox.Message{Kind: mailbox.KindInjected, JamImage: b.pj.image, Usr: make([]byte, usrLen)}
	return m.WireLen(), nil
}
