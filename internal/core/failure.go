package core

import (
	"fmt"
	"sort"
)

// NodeDownError is the typed error that every send, bind, or channel
// creation addressed across a failed node resolves with — issue loops
// (and the tc retry machinery) switch on it instead of parsing message
// strings. It is returned by handle sends to a torn-down or severed
// channel, by Mesh.ChannelView when an endpoint is down, and delivered
// through SendInfo/Result callbacks when FailNode fails queued sends.
type NodeDownError struct {
	// Src and Dst name the channel endpoints of the refused operation.
	Src, Dst string
	// Node names the endpoint that is down (equal to Src or Dst).
	Node string
}

func (e *NodeDownError) Error() string {
	side := "destination"
	if e.Node == e.Src {
		side = "source"
	}
	return fmt.Sprintf("core: %s->%s: %s node torn down", e.Src, e.Dst, side)
}

// FailNode takes node i out of service as a hard failure boundary
// (Virtines-style: in-flight state addressed at the node is lost, not
// silently replayed):
//
//   - The node is torn down (mailbox regions stop being serviced; a
//     service or completion already scheduled is quashed when it fires).
//   - Every channel into or out of the node is severed: marked dead,
//     removed from the mesh (a later ChannelView rebuilds from scratch),
//     and its queued (credit-stalled) sends fail fast with a typed
//     *NodeDownError so pooled frames return to the pool and observing
//     futures resolve instead of stranding.
//   - Peers' prepared-jam caches drop every image bound against the
//     failed node's namespace fingerprints, and the mesh's memoized
//     namespace exchanges for the node are invalidated — the
//     translation-cache-invalidation discipline: a rejoined node's
//     bindings are re-exchanged, never assumed.
//
// The bookkeeping walks channels in deterministic (src, dst, view)
// order, so runs that fail nodes at fixed simulated times stay a pure
// function of the scenario. Under the parallel engine FailNode is a
// zero-lookahead global action and must only run while the group
// executes serially (the workload driver brackets it in a serial hold).
//
// It returns the number of queued outbound messages (src == i) that
// were failed: those were issued by the node but will never arrive
// anywhere, which loss accounting needs separately from the inbound
// backlog it can compute as issued-minus-serviced.
func (m *Mesh) FailNode(i int) (int, error) {
	if i < 0 || i >= len(m.nodes) {
		return 0, fmt.Errorf("core: mesh node %d out of range (%d nodes)", i, len(m.nodes))
	}
	n := m.nodes[i]
	if n.down {
		return 0, fmt.Errorf("core: mesh: node %s is already down", n.Name)
	}
	n.Teardown()

	m.mu.Lock()
	var keys []chanKey
	for k := range m.chans {
		if k.src == i || k.dst == i {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.src != kb.src {
			return ka.src < kb.src
		}
		if ka.dst != kb.dst {
			return ka.dst < kb.dst
		}
		return ka.view < kb.view
	})
	severed := make([]*Channel, len(keys))
	for j, k := range keys {
		severed[j] = m.chans[k]
		severed[j].dead = true
		delete(m.chans, k)
	}
	for k := range m.nsMemo {
		if k.dst == i {
			delete(m.nsMemo, k)
		}
	}
	m.mu.Unlock()

	outboundFailed := 0
	for _, ch := range severed {
		if ch.Dst == n {
			// Peer's cache may hold images bound against the failed node's
			// namespace; identical twins on other nodes simply re-bind.
			ch.Src.jams.invalidate(ch.remoteFP)
		}
		err := &NodeDownError{Src: ch.Src.Name, Dst: ch.Dst.Name, Node: n.Name}
		failed := ch.Sender.FailPending(err)
		if ch.Src == n {
			outboundFailed += failed
		}
	}
	return outboundFailed, nil
}

// RejoinNode brings a previously failed node back into service. The
// node's memory and installed packages were never wiped (a torn-down
// process, not a dead machine), but nothing severed is resurrected:
// old channels stay dead and their stopped mailbox regions stay
// stopped. Peers re-create channels lazily through ChannelView — fresh
// regions, a fresh namespace exchange, fresh handle binds — under the
// same serial-hold discipline as any other lazy channel creation.
func (m *Mesh) RejoinNode(i int) error {
	if i < 0 || i >= len(m.nodes) {
		return fmt.Errorf("core: mesh node %d out of range (%d nodes)", i, len(m.nodes))
	}
	n := m.nodes[i]
	if !n.down {
		return fmt.Errorf("core: mesh: node %s is not down", n.Name)
	}
	n.down = false
	return nil
}
