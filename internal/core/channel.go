package core

import (
	"fmt"

	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

// ChannelOptions tune a sender-side connection.
type ChannelOptions struct {
	Sender mailbox.SenderConfig
	// AutoSwitchAfter, when positive, enables the paper's future-work
	// optimization (§VIII): after an element has been injected that many
	// times, the channel detects the reoccurring function and switches to
	// Local Function invocation, shrinking the message.
	AutoSwitchAfter int
}

// Channel is one node's view of sending active messages to a peer. It owns
// the mailbox sender, the namespace mirror from the exchange step, and the
// per-element prepared jam cache.
type Channel struct {
	Src, Dst *Node
	Sender   *mailbox.Sender
	Opts     ChannelOptions

	// remoteNames is the snapshot of the receiver's namespace obtained in
	// the out-of-band exchange; the sender binds travelling GOT entries
	// from it (paper §III-B: "set by the sender after an exchange with
	// the receiver").
	remoteNames map[string]uint64

	prepared  map[string]*preparedJam
	injectCnt map[string]int
}

// preparedJam is a jam with its extern GOT entries bound to receiver VAs.
type preparedJam struct {
	image   []byte
	gotLen  int
	textLen int
	entry   uint32
	patches []mailbox.GotPatch
	pkgID   uint8
	elemID  uint8
}

// Connect opens a channel from src to dst. dst must have its mailbox
// enabled. The connection performs the namespace exchange and wires the
// credit return path when credits are on.
func Connect(src, dst *Node, opts ChannelOptions) (*Channel, error) {
	if dst.Receiver == nil {
		return nil, fmt.Errorf("core: connect %s->%s: destination has no mailbox", src.Name, dst.Name)
	}
	if opts.Sender.Geometry.FrameSize == 0 {
		opts.Sender.Geometry = dst.Receiver.Cfg.Geometry
	}
	if opts.Sender.Geometry != dst.Receiver.Cfg.Geometry {
		return nil, fmt.Errorf("core: connect %s->%s: geometry mismatch", src.Name, dst.Name)
	}
	opts.Sender.Credits = dst.Receiver.Cfg.Credits

	ep := src.Worker.Connect(dst.Worker)
	snd, err := mailbox.NewSender(src.Worker, ep, opts.Sender,
		dst.Receiver.BaseVA, dst.Receiver.Mem.Key, src.Counter)
	if err != nil {
		return nil, err
	}
	ch := &Channel{
		Src:       src,
		Dst:       dst,
		Sender:    snd,
		Opts:      opts,
		prepared:  map[string]*preparedJam{},
		injectCnt: map[string]int{},
	}
	if opts.Sender.Credits {
		dst.Receiver.SetCreditReturn(dst.Worker.Connect(src.Worker), snd.CreditVA, snd.CreditMem.Key)
	}
	ch.RefreshNames()
	return ch, nil
}

// RefreshNames re-runs the namespace exchange, picking up symbols from
// rieds loaded on the receiver since the last exchange.
func (ch *Channel) RefreshNames() {
	ch.remoteNames = ch.Dst.NS.Snapshot()
	// Bindings may have moved: drop prepared images.
	ch.prepared = map[string]*preparedJam{}
}

// prepareJam binds a jam element's extern GOT entries against the remote
// namespace and caches the result.
func (ch *Channel) prepareJam(pkgName, elemName string) (*preparedJam, error) {
	key := pkgName + "/" + elemName
	if pj, ok := ch.prepared[key]; ok {
		return pj, nil
	}
	inst, ok := ch.Src.Package(pkgName)
	if !ok {
		return nil, fmt.Errorf("core: %s: package %s not installed on sender", ch.Src.Name, pkgName)
	}
	elem, ok := inst.Pkg.Element(elemName)
	if !ok || elem.Kind != ElemJam {
		return nil, fmt.Errorf("core: %s: no jam %q in package %s", ch.Src.Name, elemName, pkgName)
	}
	j := elem.Jam

	pj := &preparedJam{
		gotLen:  j.GotTableLen(),
		textLen: j.TextLen,
		entry:   j.Entry,
		pkgID:   inst.ID,
		elemID:  elem.ID,
	}
	// Image: [GOT table][gp slot placeholder][body].
	pj.image = make([]byte, j.ShippedSize())
	copy(pj.image[pj.gotLen+8:], j.Body)
	for i, g := range j.Got {
		if g.Local {
			pj.patches = append(pj.patches, mailbox.GotPatch{Slot: i, BodyOff: g.Off})
			continue
		}
		va, ok := ch.remoteNames[g.Name]
		if !ok {
			return nil, fmt.Errorf("core: %s->%s: jam %s needs symbol %q, absent from receiver namespace (load the ried first)",
				ch.Src.Name, ch.Dst.Name, elemName, g.Name)
		}
		putU64(pj.image[i*8:], va)
	}
	ch.prepared[key] = pj
	return pj, nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Result reports the outcome of one active message send.
type Result struct {
	Seq       uint32
	Err       error
	Delivered sim.Time
	// Injected records which invocation method was actually used (the
	// auto-switch optimization may downgrade an inject to a local call).
	Injected bool
}

// Inject sends the named jam as an Injected Function active message: the
// function's code travels in the frame and executes on arrival. args are
// the three header argument words; usr is the data payload.
func (ch *Channel) Inject(pkgName, elemName string, args [2]uint64, usr []byte, done func(Result)) error {
	key := pkgName + "/" + elemName
	if ch.Opts.AutoSwitchAfter > 0 {
		ch.injectCnt[key]++
		if ch.injectCnt[key] > ch.Opts.AutoSwitchAfter {
			// Reoccurring function: switch to local invocation if the
			// receiver has the package installed.
			if _, ok := ch.Dst.Package(pkgName); ok {
				return ch.CallLocal(pkgName, elemName, args, usr, done)
			}
		}
	}
	pj, err := ch.prepareJam(pkgName, elemName)
	if err != nil {
		return err
	}
	msg := &mailbox.Message{
		Kind:        mailbox.KindInjected,
		PkgID:       pj.pkgID,
		ElemID:      pj.elemID,
		JamImage:    pj.image,
		GotTableLen: pj.gotLen,
		TextLen:     pj.textLen,
		EntryOff:    pj.entry,
		Patches:     pj.patches,
		Args:        args,
		Usr:         usr,
	}
	ch.Sender.Send(msg, wrapDone(done, true))
	return nil
}

// CallLocal sends a Local Function active message: only IDs and payload
// travel; the receiver calls its library copy of the function.
func (ch *Channel) CallLocal(pkgName, elemName string, args [2]uint64, usr []byte, done func(Result)) error {
	// IDs must be the receiver's: packages install in the same order on
	// every node in our benchmarks, but resolve defensively.
	inst, ok := ch.Dst.Package(pkgName)
	if !ok {
		return fmt.Errorf("core: %s->%s: package %s not installed on receiver",
			ch.Src.Name, ch.Dst.Name, pkgName)
	}
	elem, ok := inst.Pkg.Element(elemName)
	if !ok || elem.Kind != ElemJam {
		return fmt.Errorf("core: %s->%s: no jam %q in package %s",
			ch.Src.Name, ch.Dst.Name, elemName, pkgName)
	}
	msg := mailbox.PackLocal(inst.ID, elem.ID, args, usr)
	ch.Sender.Send(msg, wrapDone(done, false))
	return nil
}

// SendData sends a delivery-only frame (the without-execution mode used by
// the Fig. 5/6 overhead experiments).
func (ch *Channel) SendData(usr []byte, done func(Result)) {
	ch.Sender.Send(mailbox.PackData(usr), wrapDone(done, false))
}

// InjectedWireLen reports the frame size an Inject of the element with a
// payload of usrLen bytes would occupy; benchmarks use it to configure
// mailbox geometry.
func (ch *Channel) InjectedWireLen(pkgName, elemName string, usrLen int) (int, error) {
	pj, err := ch.prepareJam(pkgName, elemName)
	if err != nil {
		return 0, err
	}
	m := &mailbox.Message{Kind: mailbox.KindInjected, JamImage: pj.image, Usr: make([]byte, usrLen)}
	return m.WireLen(), nil
}

func wrapDone(done func(Result), injected bool) func(mailbox.SendInfo) {
	if done == nil {
		return nil
	}
	return func(info mailbox.SendInfo) {
		done(Result{Seq: info.Seq, Err: info.Err, Delivered: info.Delivered, Injected: injected})
	}
}
