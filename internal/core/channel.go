package core

import (
	"fmt"

	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

// ChannelOptions tune a sender-side connection.
type ChannelOptions struct {
	Sender mailbox.SenderConfig
	// AutoSwitchAfter, when positive, enables the paper's future-work
	// optimization (§VIII): after an element has been injected that many
	// times through a handle, the handle detects the reoccurring function
	// and switches to Local Function invocation, shrinking the message
	// (single sends only; bursts are an explicit bulk-injection choice).
	AutoSwitchAfter int
}

// Channel is one node's view of sending active messages to a peer. It owns
// the mailbox sender and the namespace mirror from the exchange step;
// prepared jam images live in the sender node's shared cache, so channels
// to identical receiver namespaces bind each element once between them.
type Channel struct {
	Src, Dst *Node
	// Recv is the destination mailbox region this channel writes into.
	Recv   *mailbox.Receiver
	Sender *mailbox.Sender
	Opts   ChannelOptions

	// remoteNames is the snapshot of the receiver's namespace obtained in
	// the out-of-band exchange; the sender binds travelling GOT entries
	// from it (paper §III-B: "set by the sender after an exchange with
	// the receiver"). remoteFP is its fingerprint, the jam-cache key.
	remoteNames map[string]uint64
	remoteFP    uint64

	// bounds caches this channel's pre-resolved handles, one per element
	// (see Bound). Keys are (pkg, elem) pairs, not built strings, so a
	// cache hit performs no allocation.
	bounds map[[2]string]*Bound

	// dead marks a channel severed by Mesh.FailNode: unlike Dst.down it
	// never clears — a rejoined node gets fresh channels (and fresh
	// mailbox regions), so handle caches holding this one must re-resolve.
	dead bool
}

// Dead reports whether the channel was severed by a node failure. A dead
// channel stays dead across the node's rejoin; callers caching Bound
// handles check it to know when to re-resolve through the mesh.
func (ch *Channel) Dead() bool { return ch.dead }

// preparedJam is a jam with its extern GOT entries bound to receiver VAs.
type preparedJam struct {
	image   []byte
	gotLen  int
	textLen int
	entry   uint32
	patches []mailbox.GotPatch
	pkgID   uint8
	elemID  uint8
}

// Connect opens a channel from src to dst over dst's primary mailbox. dst
// must have its mailbox enabled. The connection performs the namespace
// exchange and wires the credit return path when credits are on.
func Connect(src, dst *Node, opts ChannelOptions) (*Channel, error) {
	if dst.Receiver == nil {
		return nil, fmt.Errorf("core: connect %s->%s: destination has no mailbox", src.Name, dst.Name)
	}
	return ConnectTo(src, dst, dst.Receiver, opts)
}

// ConnectTo opens a channel from src into a specific mailbox region on
// dst. A region admits one remote writer, so mesh deployments arm one
// region per inbound channel (Node.AddMailbox) and connect each sender to
// its own.
func ConnectTo(src, dst *Node, recv *mailbox.Receiver, opts ChannelOptions) (*Channel, error) {
	return connectTo(src, dst, recv, opts, nil, 0)
}

// connectTo is ConnectTo with an optional pre-computed namespace exchange
// (names, fp): callers wiring many channels into one receiver node (the
// mesh) snapshot and fingerprint once and share it read-only.
func connectTo(src, dst *Node, recv *mailbox.Receiver, opts ChannelOptions, names map[string]uint64, fp uint64) (*Channel, error) {
	if recv == nil {
		return nil, fmt.Errorf("core: connect %s->%s: nil mailbox receiver", src.Name, dst.Name)
	}
	if opts.Sender.Geometry.FrameSize == 0 {
		opts.Sender.Geometry = recv.Cfg.Geometry
	}
	if opts.Sender.Geometry != recv.Cfg.Geometry {
		return nil, fmt.Errorf("core: connect %s->%s: geometry mismatch", src.Name, dst.Name)
	}
	opts.Sender.Credits = recv.Cfg.Credits

	ep := src.Worker.Connect(dst.Worker)
	snd, err := mailbox.NewSender(src.Worker, ep, opts.Sender,
		recv.BaseVA, recv.Mem.Key, src.Counter)
	if err != nil {
		return nil, err
	}
	ch := &Channel{
		Src:    src,
		Dst:    dst,
		Recv:   recv,
		Sender: snd,
		Opts:   opts,
		bounds: map[[2]string]*Bound{},
	}
	if opts.Sender.Credits {
		recv.SetCreditReturn(dst.Worker.Connect(src.Worker), snd.CreditVA, snd.CreditMem.Key)
	}
	if names != nil {
		ch.remoteNames, ch.remoteFP = names, fp
	} else {
		ch.RefreshNames()
	}
	return ch, nil
}

// RefreshNames re-runs the namespace exchange, picking up symbols from
// rieds loaded on the receiver since the last exchange. Prepared images
// bound against the old namespace stay in the sender's cache but are no
// longer referenced: the new fingerprint keys fresh bindings.
func (ch *Channel) RefreshNames() {
	ch.remoteNames = ch.Dst.NS.Snapshot()
	ch.remoteFP = nsFingerprint(ch.remoteNames)
}

// prepareJam returns the element's image bound against the remote
// namespace, via the sender node's shared cache.
func (ch *Channel) prepareJam(pkgName, elemName string) (*preparedJam, error) {
	return ch.Src.jams.prepare(ch.Src, pkgName, elemName, ch.Dst.Name, ch.remoteNames, ch.remoteFP)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Result reports the outcome of one active message send.
type Result struct {
	Seq       uint32
	Err       error
	Delivered sim.Time
	// Injected records which invocation method was actually used (the
	// auto-switch optimization may downgrade an inject to a local call).
	Injected bool
}

// SendData sends a delivery-only frame (the without-execution mode used by
// the Fig. 5/6 overhead experiments).
func (ch *Channel) SendData(usr []byte, done func(Result)) {
	ch.Sender.Send(mailbox.PackData(usr), wrapDone(done, false))
}

// InjectedWireLen reports the frame size an Inject of the element with a
// payload of usrLen bytes would occupy; benchmarks use it to configure
// mailbox geometry.
func (ch *Channel) InjectedWireLen(pkgName, elemName string, usrLen int) (int, error) {
	return ch.Handle(pkgName, elemName).InjectedWireLen(usrLen)
}

func wrapDone(done func(Result), injected bool) func(mailbox.SendInfo) {
	if done == nil {
		return nil
	}
	return func(info mailbox.SendInfo) {
		done(Result{Seq: info.Seq, Err: info.Err, Delivered: info.Delivered, Injected: injected})
	}
}
