package tc

import (
	"errors"
	"strings"
	"testing"

	"twochains/internal/core"
	"twochains/internal/sim"
	"twochains/internal/tenant"
)

// buildCalc compiles a one-jam package named "calc" whose handler
// multiplies args[0] by factor — the "different versions of the same
// app" fixture.
func buildCalc(t *testing.T, factor string) *core.Package {
	t.Helper()
	pkg, err := core.BuildPackage("calc", map[string]string{
		"jam_calc.amc": `
long jam_calc(long* args, byte* usr, long len) {
    return args[0] * ` + factor + `;
}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestTenantVersionIsolation installs two different versions of the same
// app for two tenants and checks each tenant's calls run its own
// version — distinct element bindings, no namespace collision — while a
// base install of the same runtime keeps working.
func TestTenantVersionIsolation(t *testing.T) {
	sys := quickSystem(t, 3) // installs base tcbench
	if _, err := sys.AddTenant(tenant.Config{Name: "gold", Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddTenant(tenant.Config{Name: "bronze", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallPackageFor("gold", buildCalc(t, "2")); err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallPackageFor("bronze", buildCalc(t, "3")); err != nil {
		t.Fatal(err)
	}
	// Same tenant, same app twice: still a duplicate.
	if err := sys.InstallPackageFor("gold", buildCalc(t, "5")); err == nil {
		t.Fatal("duplicate per-tenant install did not fail")
	} else if !strings.Contains(err.Error(), "already installed") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := sys.InstallPackageFor("nope", buildCalc(t, "2")); err == nil {
		t.Fatal("install for unknown tenant did not fail")
	}

	var rets []uint64
	sys.Node(1).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Errorf("handler error: %v", err)
		}
		rets = append(rets, ret)
	}
	gold, err := sys.FuncFor("gold", 0, "calc", "jam_calc")
	if err != nil {
		t.Fatal(err)
	}
	bronze, err := sys.FuncFor("bronze", 0, "calc", "jam_calc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gold.Call(1, [2]uint64{10, 0}).Await(); err != nil {
		t.Fatalf("gold call: %v", err)
	}
	if _, err := bronze.Call(1, [2]uint64{10, 0}).Await(); err != nil {
		t.Fatalf("bronze call: %v", err)
	}
	// The base runtime still resolves outside any tenant view.
	base, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Call(1, [2]uint64{1, 0}).Await(); err != nil {
		t.Fatalf("base call: %v", err)
	}
	if len(rets) < 2 || rets[0] != 20 || rets[1] != 30 {
		t.Fatalf("per-tenant versions not isolated: rets = %v (want 20, 30, ...)", rets)
	}
	// FuncFor validation mirrors Func's.
	if _, err := sys.FuncFor("gold", 0, "tcbench", "jam_iput"); err == nil {
		t.Fatal("FuncFor on a base-only package did not fail")
	}
	if _, err := sys.FuncFor("nope", 0, "calc", "jam_calc"); err == nil {
		t.Fatal("FuncFor with unknown tenant did not fail")
	}
}

// TestTenantAdmissionDrop pins the Drop policy: the burst passes, the
// next call resolves with a typed *tenant.AdmissionError at issue.
func TestTenantAdmissionDrop(t *testing.T) {
	sys := quickSystem(t, 2)
	tn, err := sys.AddTenant(tenant.Config{Name: "gold", Weight: 1,
		Admission: &tenant.Admission{RatePerSec: 1000, Burst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallPackageFor("gold", buildCalc(t, "2")); err != nil {
		t.Fatal(err)
	}
	fn, err := sys.FuncFor("gold", 0, "calc", "jam_calc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fn.Call(1, [2]uint64{1, 0}).IssueErr(); err != nil {
			t.Fatalf("call %d within burst rejected: %v", i, err)
		}
	}
	var ae *tenant.AdmissionError
	if err := fn.Call(1, [2]uint64{1, 0}).IssueErr(); !errors.As(err, &ae) {
		t.Fatalf("over-burst call error = %v, want *tenant.AdmissionError", err)
	} else if ae.Deferred || ae.Tenant != "gold" {
		t.Fatalf("drop error = %+v", ae)
	}
	sys.Run()
	if st := tn.Stats(); st.Admitted != 2 || st.Dropped != 1 {
		t.Fatalf("admission stats = %+v", st)
	}
}

// TestTenantAdmissionDefer pins the Defer policy: the rejection carries
// an honest retry hint.
func TestTenantAdmissionDefer(t *testing.T) {
	sys := quickSystem(t, 2)
	if _, err := sys.AddTenant(tenant.Config{Name: "gold", Weight: 1,
		Admission: &tenant.Admission{RatePerSec: 1000, Burst: 1, Policy: tenant.Defer}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallPackageFor("gold", buildCalc(t, "2")); err != nil {
		t.Fatal(err)
	}
	fn, err := sys.FuncFor("gold", 0, "calc", "jam_calc")
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Call(1, [2]uint64{1, 0}).IssueErr(); err != nil {
		t.Fatal(err)
	}
	var ae *tenant.AdmissionError
	if err := fn.Call(1, [2]uint64{1, 0}).IssueErr(); !errors.As(err, &ae) {
		t.Fatalf("deferred call error = %v", err)
	} else if !ae.Deferred || ae.RetryAfter <= 0 {
		t.Fatalf("defer error = %+v", ae)
	}
}

// TestWithTenantOnBaseHandle attributes a base-handle call to a tenant:
// admission charges the tenant's bucket and the call still executes.
func TestWithTenantOnBaseHandle(t *testing.T) {
	sys := quickSystem(t, 2)
	tn, err := sys.AddTenant(tenant.Config{Name: "gold", Weight: 2,
		Admission: &tenant.Admission{RatePerSec: 1000, Burst: 4}})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fn.Call(1, [2]uint64{1, 0}, WithTenant(tn)).Await(); err != nil {
		t.Fatalf("attributed call: %v", err)
	}
	if st := tn.Stats(); st.Admitted != 1 {
		t.Fatalf("attributed call not charged: %+v", st)
	}
	// The same handle still calls un-attributed, over the base channel.
	if _, err := fn.Call(1, [2]uint64{2, 0}).Await(); err != nil {
		t.Fatalf("base call after attributed call: %v", err)
	}
	if st := tn.Stats(); st.Admitted != 1 {
		t.Fatalf("base call charged to tenant: %+v", st)
	}
}
