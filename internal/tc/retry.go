package tc

import (
	"errors"
	"fmt"

	"twochains/internal/core"
	"twochains/internal/sim"
	"twochains/internal/tenant"
)

// RetryPolicy is the issuer-side resilience knob for WithRetry: how many
// issue attempts a Call gets and how they back off. All delays are
// simulated time on the issuing node's shard engine, so retrying runs
// replay bit-identically for equal seeds at every worker count.
type RetryPolicy struct {
	// Attempts is the total issue-attempt budget (including the first);
	// values below 1 behave as 1.
	Attempts int
	// Backoff is the delay before the first retry, doubling on each
	// subsequent one. Zero retries at the same simulated instant — which
	// exhausts the budget without letting simulated time advance, so any
	// policy meant to ride out a failure window wants Backoff > 0.
	Backoff sim.Duration
	// Max caps the doubled backoff (0 = uncapped).
	Max sim.Duration
	// Timeout bounds the total simulated time spent retrying: a retry
	// whose delay would stretch the elapsed retry time past Timeout is
	// not attempted (0 = no bound).
	Timeout sim.Duration
}

// delay returns the backoff before retry number attempt (0-based: the
// delay after the first failed attempt is delay(0) == Backoff).
func (p RetryPolicy) delay(attempt int) sim.Duration {
	d := p.Backoff
	for i := 0; i < attempt; i++ {
		d *= 2
		if p.Max > 0 && d >= p.Max {
			return p.Max
		}
	}
	if p.Max > 0 && d > p.Max {
		return p.Max
	}
	return d
}

// RetryError reports a Call whose retry policy was exhausted: every
// attempt failed with a retryable error (or the timeout cut the policy
// short). It surfaces through Future.IssueErr, wrapping the last
// attempt's error for errors.As / errors.Is inspection.
type RetryError struct {
	// Attempts counts the issue attempts actually made.
	Attempts int
	// Elapsed is the simulated time spent between the first attempt and
	// the final failure.
	Elapsed sim.Duration
	// Last is the final attempt's error.
	Last error
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("tc: retry exhausted after %d attempts (%v of sim time): %v",
		e.Attempts, e.Elapsed, e.Last)
}

func (e *RetryError) Unwrap() error { return e.Last }

// retryable reports whether an issue error is worth re-attempting under
// a retry policy: a failed/severed node (it may rejoin) or a deferred
// tenant admission (the bucket refills; the error names when).
func retryable(err error) (retry bool, after sim.Duration) {
	var nd *core.NodeDownError
	if errors.As(err, &nd) {
		return true, 0
	}
	var ae *tenant.AdmissionError
	if errors.As(err, &ae) && ae.Deferred {
		return true, ae.RetryAfter
	}
	return false, 0
}
