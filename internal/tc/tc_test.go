package tc

import (
	"strings"
	"testing"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
)

// quickSystem builds a small untimed system with the bench package
// installed.
func quickSystem(t *testing.T, nodes int, opts ...SystemOpt) *System {
	t.Helper()
	opts = append([]SystemOpt{WithTiming(false)}, opts...)
	sys, err := NewSystem(nodes, opts...)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFuncUnknownPackage(t *testing.T) {
	sys := quickSystem(t, 2)
	if _, err := sys.Func(0, "nope", "jam_iput"); err == nil {
		t.Fatal("Func with unknown package did not fail")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error does not name the package: %v", err)
	}
}

func TestFuncUnknownElement(t *testing.T) {
	sys := quickSystem(t, 2)
	if _, err := sys.Func(0, "tcbench", "jam_missing"); err == nil {
		t.Fatal("Func with unknown element did not fail")
	}
	// A ried is not callable: handles are for jams only.
	if _, err := sys.Func(0, "tcbench", "ried_kvbench"); err == nil {
		t.Fatal("Func on a ried element did not fail")
	}
	if _, err := sys.Func(7, "tcbench", "jam_iput"); err == nil {
		t.Fatal("Func with out-of-range source did not fail")
	}
}

func TestDoubleInstallPackage(t *testing.T) {
	sys := quickSystem(t, 2)
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallPackage(pkg); err == nil {
		t.Fatal("double InstallPackage did not fail")
	} else if !strings.Contains(err.Error(), "already installed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCallAfterTeardown(t *testing.T) {
	sys := quickSystem(t, 3)
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	// Prove the path works before teardown.
	if _, err := fn.Call(1, [2]uint64{1, 0}).Await(); err != nil {
		t.Fatalf("call before teardown: %v", err)
	}
	if err := sys.Teardown(1); err != nil {
		t.Fatal(err)
	}
	fu := fn.Call(1, [2]uint64{2, 0})
	res, ok := fu.Result()
	if !ok || res.Err == nil {
		t.Fatalf("call after teardown did not fail fast: resolved=%v err=%v", ok, res.Err)
	}
	if !strings.Contains(res.Err.Error(), "torn down") {
		t.Fatalf("unexpected error: %v", res.Err)
	}
	if _, err := fu.Await(); err == nil {
		t.Fatal("Await on a failed future returned nil error")
	}
	// Data frames honor teardown too.
	if res, err := sys.SendData(0, 1, []byte("x")).Await(); err == nil {
		t.Fatalf("SendData after teardown did not fail: %+v", res)
	}
	// Other destinations are unaffected.
	if _, err := fn.Call(2, [2]uint64{3, 0}).Await(); err != nil {
		t.Fatalf("call to healthy node after peer teardown: %v", err)
	}
	if err := sys.Teardown(9); err == nil {
		t.Fatal("teardown of out-of-range node did not fail")
	}
	// A channel that was never connected must not arm a fresh mailbox
	// region on the torn-down node.
	if _, err := sys.Channel(2, 1); err == nil {
		t.Fatal("new channel to torn-down node did not fail")
	}
}

func TestBurstEmptyBatchSendsNothing(t *testing.T) {
	sys := quickSystem(t, 2)
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range [][][2]uint64{nil, {}} {
		fu := fn.Call(1, [2]uint64{1, 0}, Burst(batch))
		res, ok := fu.Result()
		if !ok || res.Err != nil || res.N != 0 {
			t.Fatalf("empty burst: resolved=%v %+v", ok, res)
		}
	}
	sys.Run()
	if st := sys.Stats(); st.Sent != 0 {
		t.Fatalf("empty bursts sent %d messages", st.Sent)
	}
}

func TestBurstSpanningCreditStall(t *testing.T) {
	// One bank of two slots: an 8-message burst must wrap the region and
	// stall on the bank credit at least once; the receiver's drain
	// returns the flag and the stalled remainder goes out one by one.
	sys := quickSystem(t, 2,
		WithGeometry(mailbox.Geometry{Banks: 1, Slots: 2, FrameSize: 2048}),
		WithCredits(true))
	execd := 0
	sys.Node(1).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Fatalf("handler: %v", err)
		}
		execd++
	}
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][2]uint64, 8)
	for i := range batch {
		batch[i] = [2]uint64{uint64(i + 1), 0}
	}
	res, err := fn.Call(1, batch[0], Burst(batch), Payload([]byte("p"))).Await()
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 8 {
		t.Fatalf("delivered %d of 8", res.N)
	}
	sys.Run() // drain executions past the last delivery
	if execd != 8 {
		t.Fatalf("executed %d of 8", execd)
	}
	ch, err := sys.Channel(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st := ch.Sender.Stats(); st.CreditStalls == 0 {
		t.Fatalf("burst never stalled on credits: %+v", st)
	}
}

func TestFutureDoneAfterResolve(t *testing.T) {
	sys := quickSystem(t, 2)
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	fu := fn.Call(1, [2]uint64{1, 0})
	if fu.Resolved() {
		t.Fatal("future resolved before the simulation ran")
	}
	first := 0
	fu.Done(func(Result) { first++ })
	if _, err := fu.Await(); err != nil {
		t.Fatal(err)
	}
	late := 0
	fu.Done(func(r Result) {
		late++
		if r.N != 1 || r.Err != nil || !r.Injected {
			t.Errorf("bad result in late callback: %+v", r)
		}
	})
	if first != 1 || late != 1 {
		t.Fatalf("callbacks fired %d/%d times, want 1/1", first, late)
	}
}

func TestLocalCallResolvesReceiverIDs(t *testing.T) {
	sys := quickSystem(t, 2)
	fn, err := sys.Func(0, "tcbench", "jam_sssum")
	if err != nil {
		t.Fatal(err)
	}
	got := uint64(0)
	sys.Node(1).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Fatalf("handler: %v", err)
		}
		got = ret
	}
	res, err := fn.Call(1, [2]uint64{}, Local(), Payload([]byte{1, 2, 3, 4, 5, 6, 7, 8})).Await()
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected {
		t.Fatal("local call reported as injected")
	}
	sys.Run()
	if got == 0 {
		t.Fatal("local function did not execute")
	}
}

func TestIdealBackend(t *testing.T) {
	sys := quickSystem(t, 2, WithBackend("ideal"))
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	execd := false
	sys.Node(1).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
		if err != nil {
			t.Fatalf("handler: %v", err)
		}
		execd = true
	}
	res, err := fn.Call(1, [2]uint64{11, 0}, Payload([]byte("ideal"))).Await()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("no delivery time on the ideal backend")
	}
	sys.Run()
	if !execd {
		t.Fatal("injected function did not execute on the ideal backend")
	}
}

func TestUnknownBackend(t *testing.T) {
	if _, err := NewSystem(2, WithBackend("warp-drive")); err == nil {
		t.Fatal("unknown backend did not fail")
	}
}

func TestSystemNeedsTwoNodes(t *testing.T) {
	if _, err := NewSystem(1); err == nil {
		t.Fatal("1-node system did not fail")
	}
}
