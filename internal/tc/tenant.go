package tc

import (
	"fmt"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/model"
	"twochains/internal/tenant"
)

// AddTenant registers a serving tenant: a per-tenant package namespace
// on every node, a weighted fair-queue class on every node's service
// arbiter, and (when cfg.Admission is set) token-bucket admission
// control on the issue path. Tenants must be added before their first
// InstallPackageFor or Call — in setup code or while the engine executes
// serially.
func (s *System) AddTenant(cfg tenant.Config) (*tenant.Tenant, error) {
	if s.tenants == nil {
		s.tenants = tenant.NewRegistry(s.mesh.Nodes())
		s.arbs = make([]*mailbox.FairArbiter, s.mesh.Nodes())
		for i := range s.arbs {
			s.arbs[i] = mailbox.NewFairArbiter()
		}
	}
	t, err := s.tenants.Add(cfg)
	if err != nil {
		return nil, err
	}
	// The tenant's dense ID is its arbiter class on every node: AddClass
	// allocates classes densely in the same order on each arbiter.
	for i, arb := range s.arbs {
		if class := arb.AddClass(t.Weight); class != t.ID {
			return nil, fmt.Errorf("tc: tenant %s: arbiter class %d on node %d, want %d",
				t.Name, class, i, t.ID)
		}
	}
	return t, nil
}

// Tenant returns a registered tenant by name.
func (s *System) Tenant(name string) (*tenant.Tenant, bool) {
	if s.tenants == nil {
		return nil, false
	}
	return s.tenants.Lookup(name)
}

// Tenants returns the registered tenants in AddTenant order (nil when
// the system is single-tenant).
func (s *System) Tenants() []*tenant.Tenant {
	if s.tenants == nil {
		return nil
	}
	return s.tenants.List()
}

// InstallPackageFor installs pkg on every node inside the tenant's
// package namespace, under the tenant-qualified name. Two tenants can
// install different apps — or different versions of the same app —
// without element-ID or RIED-namespace collisions: each install gets
// node-unique package IDs and resolves symbols in the tenant's namespace
// view only.
func (s *System) InstallPackageFor(tenantName string, pkg *core.Package) error {
	t, ok := s.Tenant(tenantName)
	if !ok {
		return fmt.Errorf("tc: install: unknown tenant %q", tenantName)
	}
	return s.mesh.InstallPackageView(t.Name, tenant.Qualified(t.Name, pkg.Name), pkg)
}

// FuncFor returns a handle for an element of a tenant's install of pkg,
// sent from node src. Calls through the handle run under the tenant: the
// tenant's namespace view resolves the bindings, its arbiter class
// shares the receiving nodes fairly, and its token bucket (if any)
// admits or rejects each call at issue.
func (s *System) FuncFor(tenantName string, src int, pkg, elem string) (*Func, error) {
	t, ok := s.Tenant(tenantName)
	if !ok {
		return nil, fmt.Errorf("tc: func: unknown tenant %q", tenantName)
	}
	if src < 0 || src >= s.mesh.Nodes() {
		return nil, fmt.Errorf("tc: func: source node %d out of range (%d nodes)", src, s.mesh.Nodes())
	}
	q := tenant.Qualified(t.Name, pkg)
	inst, ok := s.mesh.Node(src).Package(q)
	if !ok {
		return nil, fmt.Errorf("tc: func: package %q not installed for tenant %q on node %d",
			pkg, t.Name, src)
	}
	e, ok := inst.Pkg.Element(elem)
	if !ok {
		return nil, fmt.Errorf("tc: func: no element %q in package %q", elem, pkg)
	}
	if e.Kind != core.ElemJam {
		return nil, fmt.Errorf("tc: func: element %q in package %q is a %s, not a jam", elem, pkg, e.Kind)
	}
	return &Func{sys: s, src: src, shard: s.mesh.ShardOf(src), pkg: q, elem: elem, ten: t,
		bounds: make([]*core.Bound, s.mesh.Nodes())}, nil
}

// viewChannel returns the src->dst channel of the tenant's namespace
// view, enrolling its receiver with dst's fair arbiter (class = tenant
// ID) and pricing the isolation boundary for untrusted tenants on
// creation.
func (s *System) viewChannel(src, dst int, t *tenant.Tenant) (*core.Channel, error) {
	return s.mesh.ChannelView(src, dst, t.Name, func(rc mailbox.ReceiverConfig) mailbox.ReceiverConfig {
		rc = rc.WithArbiter(s.arbs[dst], t.ID)
		if t.Untrusted {
			rc = rc.WithIsolationCost(model.TenantIsolationCost)
		}
		return rc
	})
}

// viewBound resolves the per-destination handle for a call attributed to
// tenant t: the handle's own bound cache when the handle belongs to t
// (FuncFor), a side cache when a base handle is called WithTenant.
func (f *Func) viewBound(t *tenant.Tenant, dst int) (*core.Bound, error) {
	if dst < 0 || dst >= len(f.bounds) {
		return nil, fmt.Errorf("tc: func: destination node %d out of range (%d nodes)", dst, len(f.bounds))
	}
	own := t == f.ten
	key := t.ID*len(f.bounds) + dst
	// Handles on channels severed by FailNode are stale (see Func.bound):
	// drop and re-resolve through the mesh.
	if own {
		if b := f.bounds[dst]; b != nil && !b.Channel().Dead() {
			return b, nil
		}
	} else if b := f.tbounds[key]; b != nil && !b.Channel().Dead() {
		return b, nil
	}
	ch, err := f.sys.viewChannel(f.src, dst, t)
	if err != nil {
		return nil, err
	}
	b := ch.Handle(f.pkg, f.elem)
	if own {
		f.bounds[dst] = b
	} else {
		if f.tbounds == nil {
			f.tbounds = map[int]*core.Bound{}
		}
		f.tbounds[key] = b
	}
	return b, nil
}
