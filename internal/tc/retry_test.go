package tc

import (
	"errors"
	"runtime"
	"testing"

	"twochains/internal/core"
	"twochains/internal/tenant"

	"twochains/internal/sim"
)

func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{Backoff: 10, Max: 35}
	for attempt, want := range []sim.Duration{10, 20, 35, 35} {
		if d := p.delay(attempt); d != want {
			t.Errorf("delay(%d) = %d, want %d", attempt, d, want)
		}
	}
	uncapped := RetryPolicy{Backoff: 10}
	if d := uncapped.delay(3); d != 80 {
		t.Errorf("uncapped delay(3) = %d, want 80", d)
	}
}

// TestCallFailedNodeSweep is the teardown fail-fast property at every
// worker count and speculation budget: after FailNode, both a base
// Func.Call and a tenant FuncFor call resolve synchronously with a
// typed *core.NodeDownError — no hang, no untyped string error — and
// calls to healthy nodes keep working. After RejoinNode the same
// handles recover through lazy channel rebuild.
func TestCallFailedNodeSweep(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		sweep = append(sweep, n)
	}
	for _, w := range sweep {
		for _, spec := range []sim.Duration{0, 2 * sim.Microsecond} {
			runtime.GOMAXPROCS(w)
			sys := quickSystem(t, 6, WithShards(4), WithWorkers(w), WithSpeculation(spec))
			if _, err := sys.AddTenant(tenant.Config{Name: "gold", Weight: 1}); err != nil {
				t.Fatal(err)
			}
			if err := sys.InstallPackageFor("gold", buildCalc(t, "2")); err != nil {
				t.Fatal(err)
			}
			fn, err := sys.Func(0, "tcbench", "jam_iput")
			if err != nil {
				t.Fatal(err)
			}
			tfn, err := sys.FuncFor("gold", 0, "calc", "jam_calc")
			if err != nil {
				t.Fatal(err)
			}
			// Warm both handles so the sweep also proves cached bounds on
			// severed channels re-resolve instead of issuing into the dead
			// node.
			if _, err := fn.Call(1, [2]uint64{1, 0}).Await(); err != nil {
				t.Fatalf("workers %d spec %d: warmup call: %v", w, spec, err)
			}
			if _, err := tfn.Call(1, [2]uint64{1, 0}).Await(); err != nil {
				t.Fatalf("workers %d spec %d: tenant warmup call: %v", w, spec, err)
			}
			if _, err := sys.FailNode(1); err != nil {
				t.Fatal(err)
			}
			var nd *core.NodeDownError
			fu := fn.Call(1, [2]uint64{2, 0})
			if err := fu.IssueErr(); !errors.As(err, &nd) {
				t.Fatalf("workers %d spec %d: Call to failed node: err = %v, want *core.NodeDownError", w, spec, err)
			} else if nd.Node != "n01" {
				t.Fatalf("workers %d spec %d: error blames %q, want n01", w, spec, nd.Node)
			}
			if err := tfn.Call(1, [2]uint64{2, 0}).IssueErr(); !errors.As(err, &nd) {
				t.Fatalf("workers %d spec %d: FuncFor call to failed node: err = %v, want *core.NodeDownError", w, spec, err)
			}
			// Calls FROM the failed node are refused too: a dead process
			// issues nothing.
			rev, err := sys.Func(1, "tcbench", "jam_iput")
			if err != nil {
				t.Fatal(err)
			}
			if err := rev.Call(2, [2]uint64{3, 0}).IssueErr(); !errors.As(err, &nd) {
				t.Fatalf("workers %d spec %d: call from failed node: err = %v, want *core.NodeDownError", w, spec, err)
			}
			// Healthy destinations are unaffected.
			if _, err := fn.Call(2, [2]uint64{4, 0}).Await(); err != nil {
				t.Fatalf("workers %d spec %d: call to healthy node: %v", w, spec, err)
			}
			if err := sys.RejoinNode(1); err != nil {
				t.Fatal(err)
			}
			if _, err := fn.Call(1, [2]uint64{5, 0}).Await(); err != nil {
				t.Fatalf("workers %d spec %d: call after rejoin: %v", w, spec, err)
			}
			if _, err := tfn.Call(1, [2]uint64{5, 0}).Await(); err != nil {
				t.Fatalf("workers %d spec %d: tenant call after rejoin: %v", w, spec, err)
			}
		}
	}
}

// TestRetryRidesOutFailure pins the WithRetry happy path: a call issued
// while the destination is down retries on the simulated clock and
// succeeds once the node rejoins, with no error surfaced.
func TestRetryRidesOutFailure(t *testing.T) {
	sys := quickSystem(t, 3)
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fn.Call(1, [2]uint64{1, 0}).Await(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.FailNode(1); err != nil {
		t.Fatal(err)
	}
	// Rejoin lands at 5µs; backoff retries at 1, 3, 7µs — the third
	// attempt finds the node back.
	sys.After(0, 5*sim.Microsecond, func() {
		if err := sys.RejoinNode(1); err != nil {
			t.Errorf("rejoin: %v", err)
		}
	})
	fu := fn.Call(1, [2]uint64{2, 0}, WithRetry(RetryPolicy{Attempts: 5, Backoff: sim.Microsecond}))
	if _, err := fu.Await(); err != nil {
		t.Fatalf("retried call did not ride out the failure: %v", err)
	}
	if now := sim.Duration(sys.Now()); now < 7*sim.Microsecond {
		t.Fatalf("retry resolved at %v, before the node was back", now)
	}
}

// TestRetryExhaustion pins the failure shape: when every attempt finds
// the node down, the future fails with a *RetryError that counts the
// attempts and wraps the final *core.NodeDownError.
func TestRetryExhaustion(t *testing.T) {
	sys := quickSystem(t, 3)
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.FailNode(1); err != nil {
		t.Fatal(err)
	}
	fu := fn.Call(1, [2]uint64{1, 0}, WithRetry(RetryPolicy{Attempts: 3, Backoff: sim.Microsecond}))
	_, err = fu.Await()
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("exhausted retry error = %v, want *RetryError", err)
	}
	if re.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", re.Attempts)
	}
	if re.Elapsed != 3*sim.Microsecond { // 1µs + 2µs of backoff
		t.Fatalf("elapsed = %v, want 3µs", re.Elapsed)
	}
	var nd *core.NodeDownError
	if !errors.As(err, &nd) {
		t.Fatalf("RetryError does not wrap the node-down cause: %v", err)
	}
	if err := fu.IssueErr(); !errors.As(err, &re) {
		t.Fatalf("IssueErr after exhaustion = %v, want *RetryError", err)
	}
}

// TestRetryTimeout pins the Timeout bound: a backoff that would stretch
// past it is not attempted, and the error reports the attempts made.
func TestRetryTimeout(t *testing.T) {
	sys := quickSystem(t, 3)
	fn, err := sys.Func(0, "tcbench", "jam_iput")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.FailNode(1); err != nil {
		t.Fatal(err)
	}
	fu := fn.Call(1, [2]uint64{1, 0}, WithRetry(RetryPolicy{
		Attempts: 10, Backoff: 2 * sim.Microsecond, Timeout: sim.Microsecond}))
	_, err = fu.Await()
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("timed-out retry error = %v, want *RetryError", err)
	}
	if re.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (backoff exceeds timeout)", re.Attempts)
	}
}

// TestRetryComposesWithAdmissionDefer pins that a deferred tenant
// admission is retryable under WithRetry, honoring the bucket's
// RetryAfter hint as the backoff floor: the over-burst call waits out
// the refill instead of surfacing the admission error.
func TestRetryComposesWithAdmissionDefer(t *testing.T) {
	sys := quickSystem(t, 2)
	if _, err := sys.AddTenant(tenant.Config{Name: "gold", Weight: 1,
		Admission: &tenant.Admission{RatePerSec: 1000, Burst: 1, Policy: tenant.Defer}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallPackageFor("gold", buildCalc(t, "2")); err != nil {
		t.Fatal(err)
	}
	fn, err := sys.FuncFor("gold", 0, "calc", "jam_calc")
	if err != nil {
		t.Fatal(err)
	}
	if err := fn.Call(1, [2]uint64{1, 0}).IssueErr(); err != nil {
		t.Fatal(err)
	}
	// Bucket drained: an unretried call defers...
	var ae *tenant.AdmissionError
	if err := fn.Call(1, [2]uint64{1, 0}).IssueErr(); !errors.As(err, &ae) {
		t.Fatalf("over-burst call error = %v, want *tenant.AdmissionError", err)
	}
	// ...while a retried one rides the refill hint to completion.
	fu := fn.Call(1, [2]uint64{1, 0}, WithRetry(RetryPolicy{Attempts: 4}))
	if _, err := fu.Await(); err != nil {
		t.Fatalf("retried over-burst call: %v", err)
	}
	if sys.Now() == 0 {
		t.Fatal("retried call resolved without letting simulated time advance to the refill")
	}
}
