package tc

import (
	"fmt"

	"twochains/internal/core"
	"twochains/internal/cpusim"
	"twochains/internal/fabric"
	"twochains/internal/linker"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tenant"
)

// System is N simulated Two-Chains processes on one fabric backend. It
// subsumes the former Cluster/Mesh split: a cluster is a 2-node System.
type System struct {
	mesh *core.Mesh
	// futures is the system's future pool, one free list per fabric shard
	// (see Future's ownership rules): a future is taken, resolved, and
	// recycled on its source node's shard, so under the parallel engine
	// each list stays single-owner.
	futures [][]*Future
	// tenants and arbs are the multi-tenant serving state, created by the
	// first AddTenant: the tenant registry (issuer-owned admission
	// buckets) and one fair-service arbiter per receiving node
	// (receiver-shard-owned fair-queue state).
	tenants *tenant.Registry
	arbs    []*mailbox.FairArbiter
}

// SystemOpt adjusts the deployment template before the system is built.
type SystemOpt func(*core.MeshConfig)

// WithWorkers requests the multi-core conservative engine: each fabric
// shard's event loop runs on its own worker goroutine (up to n of them),
// synchronized so digests and simulated times stay bit-identical to
// single-engine execution. n <= 1 — the default — is exactly the
// sequential engine; backends without fabric.ShardedTransport support
// fall back to it too.
func WithWorkers(n int) SystemOpt {
	return func(c *core.MeshConfig) { c.Workers = n }
}

// WithSpeculation sets the parallel engine's speculative-window budget:
// how far past the conservative horizon a shard may run when the
// reachability bound allows it. Zero (the default) keeps windows strictly
// conservative; either way results stay bit-identical to the sequential
// engine. It has no effect without WithWorkers.
func WithSpeculation(d sim.Duration) SystemOpt {
	return func(c *core.MeshConfig) { c.Speculation = d }
}

// WithShards partitions the nodes across fabric shards (contiguous
// blocks; cross-shard traffic serializes through shared spine uplinks on
// backends that model topology).
func WithShards(n int) SystemOpt {
	return func(c *core.MeshConfig) { c.Shards = n }
}

// WithBackend selects the fabric transport by registered name
// ("simnet" is the default; "ideal" is the contention-free reference).
func WithBackend(name string) SystemOpt {
	return func(c *core.MeshConfig) { c.Cluster.Backend = name }
}

// WithSeed seeds both the fabric and the per-node stochastic models.
func WithSeed(seed uint64) SystemOpt {
	return func(c *core.MeshConfig) {
		c.Cluster.Seed = seed
		c.Node.Seed = seed
	}
}

// WithTiming toggles the cache/CPU cost model (functional tests turn it
// off for speed).
func WithTiming(on bool) SystemOpt {
	return func(c *core.MeshConfig) { c.Node.Timing = on }
}

// WithInterpreter forces every node's VM through the reference
// interpret loop instead of the compiled translations — the A/B switch
// of the JIT equivalence sweep. Results, costs, and digests must be
// bit-identical either way; only wall-clock speed differs.
func WithInterpreter() SystemOpt {
	return func(c *core.MeshConfig) { c.Node.Interpreter = true }
}

// WithOrdered selects the fabric write-order guarantee.
func WithOrdered(on bool) SystemOpt {
	return func(c *core.MeshConfig) { c.Cluster.Ordered = on }
}

// WithGeometry sets the per-channel mailbox shape.
func WithGeometry(g mailbox.Geometry) SystemOpt {
	return func(c *core.MeshConfig) { c.Geometry = g }
}

// WithCredits toggles bank-flag flow control on every channel.
func WithCredits(on bool) SystemOpt {
	return func(c *core.MeshConfig) { c.Credits = on }
}

// WithWaitMode selects the wait-episode cycle accounting on both sides.
func WithWaitMode(m cpusim.WaitMode) SystemOpt {
	return func(c *core.MeshConfig) { c.WaitMode = m }
}

// WithNodeConfig replaces the node template wholesale.
func WithNodeConfig(nc core.NodeConfig) SystemOpt {
	return func(c *core.MeshConfig) { c.Node = nc }
}

// WithPerNode derives node i's configuration from the template —
// heterogeneous deployments without giving up the single default.
func WithPerNode(fn func(i int, cfg core.NodeConfig) core.NodeConfig) SystemOpt {
	return func(c *core.MeshConfig) { c.PerNode = fn }
}

// WithReceiverTweak post-processes every per-channel receiver
// configuration (ablations: variable frames, GP insertion, page perms).
func WithReceiverTweak(fn func(mailbox.ReceiverConfig) mailbox.ReceiverConfig) SystemOpt {
	return func(c *core.MeshConfig) { c.ReceiverTweak = fn }
}

// WithChannelOptions sets the sender-options template applied to every
// channel (separate-signal protocol, auto-switch threshold, ...).
func WithChannelOptions(co core.ChannelOptions) SystemOpt {
	return func(c *core.MeshConfig) { c.Channel = co }
}

// WithChaos wraps the deployment's fabric backend in the "chaos"
// failure-injection transport: per-put latency perturbation within the
// declared bounds, drawn from the deployment's deterministic RNG, plus
// the optional lookahead misadvertisement stressors (see
// fabric.ChaosConfig). The wrapped backend is whatever WithBackend
// selected (resolved when the system is built, so option order does not
// matter), unless cc.Inner names one explicitly.
func WithChaos(cc fabric.ChaosConfig) SystemOpt {
	return func(c *core.MeshConfig) { c.Cluster.Chaos = &cc }
}

// WithConfig is the catch-all escape hatch for fields without a
// dedicated option.
func WithConfig(fn func(*core.MeshConfig)) SystemOpt {
	return func(c *core.MeshConfig) { fn(c) }
}

// NewSystem builds an n-node system from the paper-testbed defaults plus
// the given options.
func NewSystem(n int, opts ...SystemOpt) (*System, error) {
	cfg := core.DefaultMeshConfig(n)
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Cluster.Chaos != nil && cfg.Cluster.Backend != "chaos" {
		// WithChaos wraps whatever backend the other options selected.
		if cfg.Cluster.Chaos.Inner == "" {
			cfg.Cluster.Chaos.Inner = cfg.Cluster.Backend
		}
		cfg.Cluster.Backend = "chaos"
	}
	m, err := core.NewMesh(cfg)
	if err != nil {
		return nil, err
	}
	return &System{mesh: m, futures: make([][]*Future, m.Cfg.Shards)}, nil
}

// Nodes returns the node count.
func (s *System) Nodes() int { return s.mesh.Nodes() }

// Node returns node i — the escape hatch to the process-level surface
// (address space, namespace, OnExecuted hook, stdout).
func (s *System) Node(i int) *core.Node { return s.mesh.Node(i) }

// ShardOf reports the fabric shard node i lives in.
func (s *System) ShardOf(i int) int { return s.mesh.ShardOf(i) }

// Engine is the default discrete-event clock (shard 0's under the
// parallel engine). Runtime scheduling for a specific node should use
// After/EngineFor so events land on the owning shard.
func (s *System) Engine() *sim.Engine { return s.mesh.Cluster.Eng }

// EngineFor returns the engine owning node i's events.
func (s *System) EngineFor(node int) *sim.Engine {
	return s.mesh.Cluster.EngineFor(s.mesh.ShardOf(node))
}

// After schedules fn d from now on node's shard engine — the safe way to
// drive a node from outside the simulation (scenario drivers arming
// senders). "Now" is the global clock: an idle shard's local clock lags
// behind the latest executed event, and scheduling relative to it would
// re-order against the sequential engine (or land in another shard's
// past). It must be called from setup code or from events already
// executing serially, never from another shard's concurrent window.
func (s *System) After(node int, d sim.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	now := s.Now()
	s.EngineFor(node).AtScheduled(now.Add(d), now, fn)
}

// Workers reports the worker count of the parallel engine (1 when it is
// not engaged).
func (s *System) Workers() int {
	if g := s.mesh.Cluster.Group; g != nil {
		return g.Workers()
	}
	return 1
}

// Sharded reports whether the parallel engine group is engaged.
func (s *System) Sharded() bool { return s.mesh.Cluster.Group != nil }

// Windows reports how many parallel windows the engine has executed — the
// engagement metric of the windowed regime (0 on a sequential system or a
// run that stayed serial throughout).
func (s *System) Windows() uint64 {
	if g := s.mesh.Cluster.Group; g != nil {
		return g.Windows()
	}
	return 0
}

// HoldSerial forces the parallel engine to execute one globally-ordered
// event at a time until the matching ReleaseSerial — the hook scenario
// drivers use around zero-lookahead global actions (lazy channel setup,
// RIED hot-swaps, phase barriers). It is a no-op on a sequential system.
// Legal only before Run or from an event already executing serially.
func (s *System) HoldSerial() {
	if g := s.mesh.Cluster.Group; g != nil {
		g.HoldSerial()
	}
}

// ReleaseSerial releases one HoldSerial.
func (s *System) ReleaseSerial() {
	if g := s.mesh.Cluster.Group; g != nil {
		g.ReleaseSerial()
	}
}

// Now returns the current simulated time (across every shard).
func (s *System) Now() sim.Time { return s.mesh.Cluster.Now() }

// RNG is the system's deterministic random stream; all workload
// randomness must come from it (or a Split) for replayable runs.
func (s *System) RNG() *sim.RNG { return s.mesh.RNG() }

// Run processes events until the system is quiescent.
func (s *System) Run() { s.mesh.Run() }

// RunFor processes events for d of simulated time.
func (s *System) RunFor(d sim.Duration) { s.mesh.Cluster.RunFor(d) }

// InstallPackage installs pkg on every node. Installing the same package
// twice is an error.
func (s *System) InstallPackage(pkg *core.Package) error {
	return s.mesh.InstallPackage(pkg)
}

// InstallRied ships a standalone RIED image to node i and loads it,
// optionally replacing existing name bindings — the remote-linking
// dynamic update path. Call RefreshNames(i) afterwards so senders pick up
// the new namespace.
func (s *System) InstallRied(i int, img *linker.Image, replace bool) (*linker.Loaded, error) {
	return s.mesh.InstallRied(i, img, replace)
}

// RefreshNames re-runs the namespace exchange on every channel into node
// i; Func handles re-bind automatically on their next Call.
func (s *System) RefreshNames(i int) { s.mesh.RefreshNames(i) }

// Teardown takes node i out of service: its mailbox regions stop being
// polled and subsequent Calls addressed to it fail fast.
func (s *System) Teardown(i int) error {
	if i < 0 || i >= s.mesh.Nodes() {
		return fmt.Errorf("tc: teardown: node %d out of range (%d nodes)", i, s.mesh.Nodes())
	}
	s.mesh.Node(i).Teardown()
	return nil
}

// FailNode injects a hard node failure: Teardown plus channel severing,
// fast-fail of every queued send with a typed *core.NodeDownError, and
// peer-side cache invalidation (see core.Mesh.FailNode). It returns the
// number of queued outbound sends the failure destroyed. Under the
// parallel engine it is a zero-lookahead global action: call it only
// while the group executes serially (workload drivers bracket it in a
// serial hold).
func (s *System) FailNode(i int) (int, error) { return s.mesh.FailNode(i) }

// RejoinNode brings a failed node back. Severed channels stay dead;
// peers rebuild them lazily on their next Call under the usual lazy
// channel-creation discipline.
func (s *System) RejoinNode(i int) error { return s.mesh.RejoinNode(i) }

// Channel returns the src->dst channel, creating it (and its mailbox
// region on dst) on first use — the lower-level surface for delivery-only
// frames and custom hooks.
func (s *System) Channel(src, dst int) (*core.Channel, error) {
	return s.mesh.Channel(src, dst)
}

// SendData sends a delivery-only frame (the without-execution mode of the
// overhead experiments) and returns its future.
func (s *System) SendData(src, dst int, usr []byte) *Future {
	fu := s.newFuture(s.mesh.ShardOf(src), 1)
	ch, err := s.mesh.Channel(src, dst)
	if err != nil {
		fu.fail(err)
		return fu
	}
	if s.mesh.Node(dst).Down() {
		fu.fail(&core.NodeDownError{Src: s.mesh.Node(src).Name, Dst: s.mesh.Node(dst).Name,
			Node: s.mesh.Node(dst).Name})
		return fu
	}
	ch.SendData(usr, fu.completeCb)
	fu.armed = true
	return fu
}

// Stats sums sender, receiver, and jam-cache counters over the system.
func (s *System) Stats() core.MeshStats { return s.mesh.Stats() }

// step executes the single next event — the globally earliest one under
// the parallel engine (deterministic: serial stepping is totally
// ordered) — and reports whether anything ran. Future.Await drives it.
func (s *System) step() bool {
	if g := s.mesh.Cluster.Group; g != nil {
		return g.Step()
	}
	return s.mesh.Cluster.Eng.Step()
}

// Mesh exposes the underlying core deployment for callers that need the
// full internal surface (the perf harness does).
func (s *System) Mesh() *core.Mesh { return s.mesh }
