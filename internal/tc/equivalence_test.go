package tc

import (
	"testing"

	"twochains/internal/core"
	"twochains/internal/sim"
)

// trafficResult is the observable outcome of one driver run: the per-node
// execution digests and the final simulated time.
type trafficResult struct {
	digest  uint64
	simTime sim.Time
	execs   int
}

// runTraffic drives an identical mixed workload — inject singles, inject
// bursts, local singles, local bursts, plus a RIED hot-swap phase —
// through either the channel-level core.Bound handles (resolved by
// string per call via Channel.Handle) or the system-level Func/Call API,
// on identically seeded systems. The two surfaces must be
// indistinguishable: same digests, same simulated times.
func runTraffic(t *testing.T, legacy bool) trafficResult {
	t.Helper()
	const nodes = 4
	sys, err := NewSystem(nodes, WithSeed(0x7c2c2021), WithTiming(true))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	var res trafficResult
	digests := make([]uint64, nodes)
	for i := 0; i < nodes; i++ {
		node := i
		sys.Node(i).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
			if err != nil {
				t.Errorf("node %d handler: %v", node, err)
				return
			}
			res.execs++
			digests[node] = digests[node]*1099511628211 + ret + 1
		}
	}

	payload := []byte("equivalence payload")
	batch := [][2]uint64{{3, 0}, {9, 0}, {27, 0}, {81, 0}}

	phase1 := func() {
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				if dst == src {
					continue
				}
				if legacy {
					ch, err := sys.Channel(src, dst)
					if err != nil {
						t.Fatal(err)
					}
					must(t, ch.Handle("tcbench", "jam_iput").Inject([2]uint64{5, 0}, payload, nil))
					must(t, ch.Handle("tcbench", "jam_sssum").InjectBurst(batch, payload, nil))
					must(t, ch.Handle("tcbench", "jam_sssum").CallLocal([2]uint64{1, 0}, payload, nil))
					must(t, ch.Handle("tcbench", "jam_iput").CallLocalBurst(batch, payload, nil))
				} else {
					iput, err := sys.Func(src, "tcbench", "jam_iput")
					if err != nil {
						t.Fatal(err)
					}
					sssum, err := sys.Func(src, "tcbench", "jam_sssum")
					if err != nil {
						t.Fatal(err)
					}
					mustFu(t, iput.Call(dst, [2]uint64{5, 0}, Payload(payload)))
					mustFu(t, sssum.Call(dst, batch[0], Burst(batch), Payload(payload)))
					mustFu(t, sssum.Call(dst, [2]uint64{1, 0}, Local(), Payload(payload)))
					mustFu(t, iput.Call(dst, batch[0], Local(), Burst(batch), Payload(payload)))
				}
			}
		}
	}
	phase1()
	sys.Run()

	// Hot-swap phase: replace node 1's server RIED and re-exchange; both
	// paths must re-bind and keep producing identical results.
	spkg, err := core.BuildPackage("kvbench-swap", map[string]string{
		"ried_kvbench.rds": core.RiedKVBenchSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range spkg.Elements {
		if e.Kind != core.ElemRied {
			continue
		}
		if _, err := sys.InstallRied(1, e.Ried, true); err != nil {
			t.Fatal(err)
		}
	}
	sys.RefreshNames(1)
	if legacy {
		ch, err := sys.Channel(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		must(t, ch.Handle("tcbench", "jam_iput").Inject([2]uint64{7, 0}, payload, nil))
		must(t, ch.Handle("tcbench", "jam_iput").InjectBurst(batch, payload, nil))
	} else {
		iput, err := sys.Func(0, "tcbench", "jam_iput")
		if err != nil {
			t.Fatal(err)
		}
		mustFu(t, iput.Call(1, [2]uint64{7, 0}, Payload(payload)))
		mustFu(t, iput.Call(1, batch[0], Burst(batch), Payload(payload)))
	}
	sys.Run()

	for _, d := range digests {
		res.digest += d // order-insensitive across nodes
	}
	res.simTime = sys.Now()
	return res
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func mustFu(t *testing.T, fu *Future) {
	t.Helper()
	if res, ok := fu.Result(); ok && res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestLegacyHandleEquivalence pins the acceptance criterion of the API
// redesign: the channel-level Bound quartet and the handle-based Call
// path produce identical digests and identical simulated times for a
// fixed seed — the Func machinery changes resolution cost, never wire
// behaviour.
func TestLegacyHandleEquivalence(t *testing.T) {
	legacy := runTraffic(t, true)
	handle := runTraffic(t, false)
	if legacy.execs == 0 {
		t.Fatal("no executions observed")
	}
	if legacy.execs != handle.execs {
		t.Fatalf("execution counts differ: legacy %d, handle %d", legacy.execs, handle.execs)
	}
	if legacy.digest != handle.digest {
		t.Fatalf("digests differ: legacy %#x, handle %#x", legacy.digest, handle.digest)
	}
	if legacy.simTime != handle.simTime {
		t.Fatalf("simulated times differ: legacy %v, handle %v",
			sim.Duration(legacy.simTime), sim.Duration(handle.simTime))
	}
}

// TestHandlePathDeterministic: two runs of the handle path replay
// bit-identically.
func TestHandlePathDeterministic(t *testing.T) {
	a := runTraffic(t, false)
	b := runTraffic(t, false)
	if a != b {
		t.Fatalf("handle path not deterministic: %+v vs %+v", a, b)
	}
}
