package tc

import (
	"fmt"

	"twochains/internal/core"
	"twochains/internal/sim"
)

// Func is a pre-resolved function handle: the element is validated on the
// source node when the handle is created, and per destination the
// travelling image (Injected Function) or the receiver-side IDs (Local
// Function) are bound once, on first Call. Subsequent Calls perform no
// string resolution — the bind-once/call-many idiom.
type Func struct {
	sys       *System
	src       int
	pkg, elem string
	bounds    map[int]*core.Bound
}

// Func returns a handle for the named element, sent from node src. The
// element must be installed on src as a jam; unknown packages or elements
// fail here, not at call time.
func (s *System) Func(src int, pkg, elem string) (*Func, error) {
	if src < 0 || src >= s.mesh.Nodes() {
		return nil, fmt.Errorf("tc: func: source node %d out of range (%d nodes)", src, s.mesh.Nodes())
	}
	inst, ok := s.mesh.Node(src).Package(pkg)
	if !ok {
		return nil, fmt.Errorf("tc: func: package %q not installed on node %d", pkg, src)
	}
	e, ok := inst.Pkg.Element(elem)
	if !ok {
		return nil, fmt.Errorf("tc: func: no element %q in package %q", elem, pkg)
	}
	if e.Kind != core.ElemJam {
		return nil, fmt.Errorf("tc: func: element %q in package %q is a %s, not a jam", elem, pkg, e.Kind)
	}
	return &Func{sys: s, src: src, pkg: pkg, elem: elem, bounds: map[int]*core.Bound{}}, nil
}

// Source returns the handle's sending node.
func (f *Func) Source() int { return f.src }

// Name returns the handle's package/element name.
func (f *Func) Name() string { return f.pkg + "/" + f.elem }

// bound returns the per-destination handle, creating the channel (and its
// mailbox region) on first use.
func (f *Func) bound(dst int) (*core.Bound, error) {
	if b, ok := f.bounds[dst]; ok {
		return b, nil
	}
	ch, err := f.sys.mesh.Channel(f.src, dst)
	if err != nil {
		return nil, err
	}
	b := ch.Handle(f.pkg, f.elem)
	f.bounds[dst] = b
	return b, nil
}

// callCfg collects the call options.
type callCfg struct {
	local bool
	usr   []byte
	burst bool
	batch [][2]uint64
}

// CallOpt adjusts one Call.
type CallOpt func(*callCfg)

// Local selects Local Function invocation: only IDs and payload travel,
// and the receiver calls its library copy of the function. The default is
// Injected Function (the code travels in the frame).
func Local() CallOpt {
	return func(c *callCfg) { c.local = true }
}

// Payload attaches the user data payload.
func Payload(usr []byte) CallOpt {
	return func(c *callCfg) { c.usr = usr }
}

// Burst sends the whole batch — one message per args entry — as a single
// batched operation: the mailbox sender coalesces contiguous frame slots
// into single puts. The batch replaces Call's single args argument; an
// empty (or nil) batch sends nothing and resolves immediately.
func Burst(batch [][2]uint64) CallOpt {
	return func(c *callCfg) { c.burst, c.batch = true, batch }
}

// Call sends the function to node dst and returns a Future that resolves
// when every message of the call has been delivered. Errors — unknown
// destination, unresolvable symbols, torn-down receiver — surface on the
// returned future (already resolved), never as a lost callback.
func (f *Func) Call(dst int, args [2]uint64, opts ...CallOpt) *Future {
	var cfg callCfg
	for _, o := range opts {
		o(&cfg)
	}
	n := 1
	if cfg.burst {
		n = len(cfg.batch)
	}
	fu := newFuture(f.sys.Engine(), n)
	if n == 0 {
		fu.resolve()
		return fu
	}
	b, err := f.bound(dst)
	if err != nil {
		fu.fail(err)
		return fu
	}
	switch {
	case cfg.local && cfg.burst:
		err = b.CallLocalBurst(cfg.batch, cfg.usr, fu.complete)
	case cfg.local:
		err = b.CallLocal(args, cfg.usr, fu.complete)
	case cfg.burst:
		err = b.InjectBurst(cfg.batch, cfg.usr, fu.complete)
	default:
		err = b.Inject(args, cfg.usr, fu.complete)
	}
	if err != nil {
		fu.fail(err)
	}
	return fu
}

// WireLen reports the frame size an injected Call to dst with a payload
// of usrLen bytes would occupy; benchmarks use it to size mailbox
// geometry.
func (f *Func) WireLen(dst, usrLen int) (int, error) {
	b, err := f.bound(dst)
	if err != nil {
		return 0, err
	}
	return b.InjectedWireLen(usrLen)
}

// Result aggregates the outcome of one Call.
type Result struct {
	// N counts delivered messages (1 for a single call, the batch size
	// for a burst).
	N int
	// Err is the first error observed, if any.
	Err error
	// Seq is the mailbox sequence number of the call's first message.
	Seq uint32
	// Delivered is the latest receiver-side delivery time. Handler
	// execution happens after delivery; observe it via Node.OnExecuted.
	Delivered sim.Time
	// Injected records the invocation method actually used.
	Injected bool
}

// Future is the completion handle of one Call. It resolves exactly once,
// on the shared discrete-event engine — there is no wall-clock waiting
// and no concurrency; Await replays deterministically for a fixed seed.
type Future struct {
	eng      *sim.Engine
	expect   int
	resolved bool
	res      Result
	cbs      []func(Result)
}

func newFuture(eng *sim.Engine, expect int) *Future {
	return &Future{eng: eng, expect: expect}
}

// complete folds one per-message completion into the aggregate.
func (fu *Future) complete(r core.Result) {
	if fu.resolved {
		return
	}
	fu.res.N++
	if fu.res.Seq == 0 {
		fu.res.Seq = r.Seq
	}
	if r.Err != nil && fu.res.Err == nil {
		fu.res.Err = r.Err
	}
	if r.Delivered > fu.res.Delivered {
		fu.res.Delivered = r.Delivered
	}
	fu.res.Injected = r.Injected
	if fu.res.N >= fu.expect {
		fu.resolve()
	}
}

func (fu *Future) fail(err error) {
	if fu.resolved {
		return
	}
	fu.res.Err = err
	fu.resolve()
}

func (fu *Future) resolve() {
	fu.resolved = true
	cbs := fu.cbs
	fu.cbs = nil
	for _, cb := range cbs {
		cb(fu.res)
	}
}

// Resolved reports whether the future has completed.
func (fu *Future) Resolved() bool { return fu.resolved }

// IssueErr reports a synchronous issue failure: the call resolved before
// any message went out (unknown destination, unresolvable symbol,
// torn-down receiver). Delivery-time errors of an in-flight call are not
// issue errors; read them from the resolved Result.
func (fu *Future) IssueErr() error {
	if fu.resolved && fu.res.N == 0 {
		return fu.res.Err
	}
	return nil
}

// Result returns the aggregate outcome; ok is false while unresolved.
func (fu *Future) Result() (res Result, ok bool) { return fu.res, fu.resolved }

// Done registers cb to run when the future resolves (immediately if it
// already has). It returns the future for chaining.
func (fu *Future) Done(cb func(Result)) *Future {
	if cb == nil {
		return fu
	}
	if fu.resolved {
		cb(fu.res)
		return fu
	}
	fu.cbs = append(fu.cbs, cb)
	return fu
}

// Await single-steps the simulation engine until the future resolves and
// returns the aggregate result. It is deterministic: equal seeds replay
// equal outcomes. If the simulation goes quiescent first (a lost credit,
// a stopped receiver), Await reports it as an error instead of spinning.
func (fu *Future) Await() (Result, error) {
	for !fu.resolved {
		if !fu.eng.Step() {
			return fu.res, fmt.Errorf("tc: await: simulation quiescent with future unresolved (%d/%d messages)",
				fu.res.N, fu.expect)
		}
	}
	return fu.res, fu.res.Err
}
