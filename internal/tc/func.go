package tc

import (
	"fmt"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tenant"
)

// Func is a pre-resolved function handle: the element is validated on the
// source node when the handle is created, and per destination the
// travelling image (Injected Function) or the receiver-side IDs (Local
// Function) are bound once, on first Call. Subsequent Calls perform no
// string resolution — the bind-once/call-many idiom.
type Func struct {
	sys       *System
	src       int
	shard     int // src's fabric shard: the future-pool lane Calls use
	pkg, elem string
	bounds    []*core.Bound // indexed by destination node
	// ten is the owning tenant of a FuncFor handle (nil for base
	// handles): its calls route over the tenant's namespace-view channels
	// and pass its admission control by default.
	ten *tenant.Tenant
	// tbounds caches bounds for base handles called WithTenant, keyed
	// tenantID*nodes+dst (a handle's own tenant uses bounds instead).
	tbounds map[int]*core.Bound
}

// Func returns a handle for the named element, sent from node src. The
// element must be installed on src as a jam; unknown packages or elements
// fail here, not at call time.
func (s *System) Func(src int, pkg, elem string) (*Func, error) {
	if src < 0 || src >= s.mesh.Nodes() {
		return nil, fmt.Errorf("tc: func: source node %d out of range (%d nodes)", src, s.mesh.Nodes())
	}
	inst, ok := s.mesh.Node(src).Package(pkg)
	if !ok {
		return nil, fmt.Errorf("tc: func: package %q not installed on node %d", pkg, src)
	}
	e, ok := inst.Pkg.Element(elem)
	if !ok {
		return nil, fmt.Errorf("tc: func: no element %q in package %q", elem, pkg)
	}
	if e.Kind != core.ElemJam {
		return nil, fmt.Errorf("tc: func: element %q in package %q is a %s, not a jam", elem, pkg, e.Kind)
	}
	return &Func{sys: s, src: src, shard: s.mesh.ShardOf(src), pkg: pkg, elem: elem,
		bounds: make([]*core.Bound, s.mesh.Nodes())}, nil
}

// Source returns the handle's sending node.
func (f *Func) Source() int { return f.src }

// Name returns the handle's package/element name.
func (f *Func) Name() string { return f.pkg + "/" + f.elem }

// bound returns the per-destination handle, creating the channel (and its
// mailbox region) on first use.
func (f *Func) bound(dst int) (*core.Bound, error) {
	if dst >= 0 && dst < len(f.bounds) {
		// A cached handle on a channel severed by FailNode is stale: the
		// rejoined node gets fresh channels, so drop it and re-resolve
		// through the mesh (which refuses while the node is still down).
		if b := f.bounds[dst]; b != nil && !b.Channel().Dead() {
			return b, nil
		}
	}
	ch, err := f.sys.mesh.Channel(f.src, dst)
	if err != nil {
		return nil, err
	}
	b := ch.Handle(f.pkg, f.elem)
	f.bounds[dst] = b
	return b, nil
}

// callCfg collects the call options.
type callCfg struct {
	local    bool
	usr      []byte
	burst    bool
	batch    [][2]uint64
	ten      *tenant.Tenant
	hasRetry bool
	retry    RetryPolicy
}

// Call option kinds.
const (
	optLocal = iota + 1
	optPayload
	optBurst
	optTenant
	optRetry
)

// CallOpt adjusts one Call. Options are small immutable values, not
// closures: constructing them at the call site allocates nothing, so the
// steady-state Call path stays allocation-free without hoisting.
type CallOpt struct {
	kind  uint8
	usr   []byte
	batch [][2]uint64
	ten   *tenant.Tenant
	retry RetryPolicy
}

// Local selects Local Function invocation: only IDs and payload travel,
// and the receiver calls its library copy of the function. The default is
// Injected Function (the code travels in the frame).
func Local() CallOpt {
	return CallOpt{kind: optLocal}
}

// Payload attaches the user data payload.
func Payload(usr []byte) CallOpt {
	return CallOpt{kind: optPayload, usr: usr}
}

// Burst sends the whole batch — one message per args entry — as a single
// batched operation: the mailbox sender coalesces contiguous frame slots
// into single puts. The batch replaces Call's single args argument; an
// empty (or nil) batch sends nothing and resolves immediately.
func Burst(batch [][2]uint64) CallOpt {
	return CallOpt{kind: optBurst, batch: batch}
}

// WithTenant attributes the call to a tenant: it routes over the
// tenant's namespace-view channel (fair-queued under the tenant's weight
// at the receiver) and must pass the tenant's token-bucket admission —
// a rejected call resolves immediately with a *tenant.AdmissionError,
// readable via Future.IssueErr. On a FuncFor handle the owning tenant is
// already implied; WithTenant overrides it.
func WithTenant(t *tenant.Tenant) CallOpt {
	return CallOpt{kind: optTenant, ten: t}
}

// WithRetry arms issuer-side resilience on the call: a retryable issue
// failure — the destination torn down or severed by a node failure
// (*core.NodeDownError), or a deferred tenant admission
// (*tenant.AdmissionError with Deferred) — is re-attempted under the
// policy, with deterministic sim-time backoff on the issuing node's
// shard engine. A deferred admission's RetryAfter floors the backoff,
// so the two retry sources compose. When the policy is exhausted the
// future resolves with a *RetryError (wrapping the last attempt's
// error), readable via Future.IssueErr.
//
// A retry that must rebuild a channel to a rejoined node performs lazy
// channel creation, which under the parallel engine is legal only while
// the group executes serially — the same discipline as any first Call
// to a new destination.
func WithRetry(p RetryPolicy) CallOpt {
	return CallOpt{kind: optRetry, retry: p}
}

// apply folds the option into the collected configuration.
func (o CallOpt) apply(c *callCfg) {
	switch o.kind {
	case optLocal:
		c.local = true
	case optPayload:
		c.usr = o.usr
	case optBurst:
		c.burst, c.batch = true, o.batch
	case optTenant:
		c.ten = o.ten
	case optRetry:
		c.hasRetry, c.retry = true, o.retry
	}
}

// Call sends the function to node dst and returns a Future that resolves
// when every message of the call has been delivered. Errors — unknown
// destination, unresolvable symbols, torn-down receiver — surface on the
// returned future (already resolved), never as a lost callback.
//
// Futures are pooled: a fire-and-forget Call (result discarded, no Done,
// no Await) recycles its future automatically when it resolves during the
// simulation, so the steady-state call path allocates nothing. See Future
// for the ownership rules.
func (f *Func) Call(dst int, args [2]uint64, opts ...CallOpt) *Future {
	var cfg callCfg
	for _, o := range opts {
		o.apply(&cfg)
	}
	n := 1
	if cfg.burst {
		n = len(cfg.batch)
	}
	fu := f.sys.newFuture(f.shard, n)
	if n == 0 {
		fu.resolve()
		return fu
	}
	if cfg.ten == nil {
		cfg.ten = f.ten
	}
	if cfg.hasRetry {
		f.issueRetry(fu, dst, args, cfg, 0, 0)
		return fu
	}
	if err := f.issueOnce(fu, dst, args, &cfg); err != nil {
		fu.fail(err)
		return fu
	}
	// Armed: the call is in flight and resolution will happen inside the
	// engine — the point where an unobserved future can recycle safely.
	fu.armed = true
	return fu
}

// issueOnce performs one issue attempt: resolve the per-destination
// handle, pass admission, dispatch. nil means the call is in flight and
// the future will resolve inside the engine.
func (f *Func) issueOnce(fu *Future, dst int, args [2]uint64, cfg *callCfg) error {
	var b *core.Bound
	var err error
	if cfg.ten != nil {
		b, err = f.viewBound(cfg.ten, dst)
	} else {
		b, err = f.bound(dst)
	}
	if err != nil {
		return err
	}
	if ten := cfg.ten; ten != nil && ten.Admission != nil {
		// Admission runs on the issuing node's shard against issuer-owned
		// bucket state, clocked by the shard-local engine — deterministic
		// for every worker count. The channel's credit-stall count is the
		// congestion feedback.
		if dec := ten.Admit(f.src, fu.eng.Now(), fu.expect, b.CreditStalls()); !dec.OK {
			return ten.Reject(dec)
		}
	}
	fu.injected = !cfg.local
	switch {
	case cfg.local && cfg.burst:
		return b.CallLocalBurstInfo(cfg.batch, cfg.usr, fu.infoCb)
	case cfg.local:
		return b.CallLocalInfo(args, cfg.usr, fu.infoCb)
	case cfg.burst:
		return b.InjectBurstInfo(cfg.batch, cfg.usr, fu.infoCb)
	default:
		return b.InjectInfo(args, cfg.usr, fu.infoCb)
	}
}

// issueRetry drives the WithRetry attempt loop: each retryable failure
// schedules the next attempt after the policy's backoff (floored by a
// deferred admission's RetryAfter) on the issuing shard's engine, so
// retried calls replay deterministically at every worker count.
// Exhaustion — attempts spent, or the timeout overrun — resolves the
// future with a *RetryError surfaced via Future.IssueErr.
func (f *Func) issueRetry(fu *Future, dst int, args [2]uint64, cfg callCfg, attempt int, elapsed sim.Duration) {
	err := f.issueOnce(fu, dst, args, &cfg)
	if err == nil {
		fu.armed = true
		return
	}
	retry, after := retryable(err)
	attempts := cfg.retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	if !retry || attempt+1 >= attempts {
		if attempt > 0 || retry {
			err = &RetryError{Attempts: attempt + 1, Elapsed: elapsed, Last: err}
		}
		fu.fail(err)
		return
	}
	delay := cfg.retry.delay(attempt)
	if after > delay {
		delay = after
	}
	if cfg.retry.Timeout > 0 && elapsed+delay > cfg.retry.Timeout {
		fu.fail(&RetryError{Attempts: attempt + 1, Elapsed: elapsed, Last: err})
		return
	}
	// Resolution now happens inside the engine: mark the future armed so
	// an unobserved fire-and-forget call still recycles when it resolves.
	fu.armed = true
	fu.eng.After(delay, func() {
		f.issueRetry(fu, dst, args, cfg, attempt+1, elapsed+delay)
	})
}

// WireLen reports the frame size an injected Call to dst with a payload
// of usrLen bytes would occupy; benchmarks use it to size mailbox
// geometry.
func (f *Func) WireLen(dst, usrLen int) (int, error) {
	b, err := f.bound(dst)
	if err != nil {
		return 0, err
	}
	return b.InjectedWireLen(usrLen)
}

// Result aggregates the outcome of one Call.
type Result struct {
	// N counts delivered messages (1 for a single call, the batch size
	// for a burst).
	N int
	// Err is the first error observed, if any.
	Err error
	// Seq is the mailbox sequence number of the call's first message.
	Seq uint32
	// Delivered is the latest receiver-side delivery time. Handler
	// execution happens after delivery; observe it via Node.OnExecuted.
	Delivered sim.Time
	// Injected records the invocation method the call requested. (Under
	// the core.ChannelOptions.AutoSwitchAfter ablation a reoccurring
	// single inject may be downgraded to Local Function on the wire;
	// the flag still reports the requested method.)
	Injected bool
}

// Future is the completion handle of one Call. It resolves exactly once,
// on the shared discrete-event engine — there is no wall-clock waiting
// and no concurrency; Await replays deterministically for a fixed seed.
//
// Futures are pooled per System. The ownership rules:
//
//   - A future that is never observed — no Done, no Await, no Retain
//     before it resolves — returns to the pool automatically the moment
//     it resolves inside the simulation. Fire-and-forget callers
//     (Call(...).IssueErr(), or discarding the return entirely) therefore
//     never allocate and never need to clean up, but must not touch the
//     future after running the simulation.
//   - Registering a Done callback, calling Await, or calling Retain marks
//     the future observed: it stays valid indefinitely and is simply
//     garbage collected, exactly like the pre-pooling behaviour. Callers
//     that poll Result after sys.Run() must observe the future first
//     (Retain is the no-op-shaped way to do that).
//   - Release hands an observed future back to the pool once the caller
//     is done with it (safe from inside its own Done callback). After
//     Release the future must not be touched.
type Future struct {
	sys      *System
	eng      *sim.Engine
	shard    int // pool lane (the source node's fabric shard)
	expect   int
	resolved bool
	observed bool // Done/Await/Retain seen: caller keeps the handle
	armed    bool // in flight; resolution happens inside the engine
	released bool // caller opted back into recycling
	free     bool // currently in the pool (reuse/double-release guard)
	injected bool // invocation method of the in-flight call
	res      Result
	cbs      []func(Result)
	// infoCb and completeCb are prebound adapters created once per pooled
	// future and reused across generations, so issuing a call allocates
	// no closures.
	infoCb     func(mailbox.SendInfo)
	completeCb func(core.Result)
}

// newFuture takes a future from the source shard's pool lane (or mints
// one with its prebound adapters) and resets it for a call expecting n
// completions. A future lives entirely on its source shard — issue,
// resolution, and recycling — so the lanes need no locking even under
// the parallel engine.
func (s *System) newFuture(shard, expect int) *Future {
	var fu *Future
	lane := s.futures[shard]
	if n := len(lane); n > 0 {
		fu = lane[n-1]
		lane[n-1] = nil
		s.futures[shard] = lane[:n-1]
	} else {
		fu = &Future{sys: s, shard: shard, eng: s.mesh.Cluster.EngineFor(shard)}
		fu.infoCb = fu.completeInfo
		fu.completeCb = fu.complete
	}
	fu.expect = expect
	fu.resolved, fu.observed, fu.armed, fu.released, fu.free = false, false, false, false, false
	fu.injected = false
	fu.res = Result{}
	fu.cbs = fu.cbs[:0]
	return fu
}

// recycle returns the future to its system's pool.
func (fu *Future) recycle() {
	if fu.free {
		return
	}
	fu.free = true
	fu.sys.futures[fu.shard] = append(fu.sys.futures[fu.shard], fu)
}

// completeInfo folds one mailbox-level completion into the aggregate.
func (fu *Future) completeInfo(info mailbox.SendInfo) {
	if fu.resolved {
		return
	}
	fu.res.N++
	if fu.res.Seq == 0 {
		fu.res.Seq = info.Seq
	}
	if info.Err != nil && fu.res.Err == nil {
		fu.res.Err = info.Err
	}
	if info.Delivered > fu.res.Delivered {
		fu.res.Delivered = info.Delivered
	}
	fu.res.Injected = fu.injected
	if fu.res.N >= fu.expect {
		fu.resolve()
	}
}

// complete folds one per-message completion into the aggregate.
func (fu *Future) complete(r core.Result) {
	if fu.resolved {
		return
	}
	fu.res.N++
	if fu.res.Seq == 0 {
		fu.res.Seq = r.Seq
	}
	if r.Err != nil && fu.res.Err == nil {
		fu.res.Err = r.Err
	}
	if r.Delivered > fu.res.Delivered {
		fu.res.Delivered = r.Delivered
	}
	fu.res.Injected = r.Injected
	if fu.res.N >= fu.expect {
		fu.resolve()
	}
}

func (fu *Future) fail(err error) {
	if fu.resolved {
		return
	}
	fu.res.Err = err
	fu.resolve()
}

func (fu *Future) resolve() {
	fu.resolved = true
	// Callbacks may append more via Done-after-resolve semantics only
	// directly (Done invokes immediately once resolved), so iterating the
	// current list is complete.
	for i := range fu.cbs {
		fu.cbs[i](fu.res)
		fu.cbs[i] = nil
	}
	fu.cbs = fu.cbs[:0]
	if fu.armed && (!fu.observed || fu.released) {
		// Nobody is holding this future (or the holder released it):
		// hand it back to the pool.
		fu.recycle()
	}
}

// Resolved reports whether the future has completed.
func (fu *Future) Resolved() bool { return fu.resolved }

// Retain marks the future observed, pinning it out of the pool so the
// caller can poll Result after the simulation has run. It returns the
// future for chaining; call it synchronously after Call, before running
// the simulation.
func (fu *Future) Retain() *Future {
	fu.observed = true
	return fu
}

// Release hands the future back to the pool: the caller promises not to
// touch it again. Unresolved futures release when they resolve (their
// Done callbacks still run first); resolved ones recycle immediately.
// Releasing is optional — an unreleased observed future is simply
// garbage collected.
func (fu *Future) Release() {
	fu.released = true
	if fu.resolved {
		fu.recycle()
	}
}

// IssueErr reports a synchronous issue failure: the call resolved before
// any message went out (unknown destination, unresolvable symbol,
// torn-down receiver). Delivery-time errors of an in-flight call are not
// issue errors; read them from the resolved Result.
func (fu *Future) IssueErr() error {
	if fu.resolved && fu.res.N == 0 {
		return fu.res.Err
	}
	return nil
}

// Result returns the aggregate outcome; ok is false while unresolved.
func (fu *Future) Result() (res Result, ok bool) { return fu.res, fu.resolved }

// Done registers cb to run when the future resolves (immediately if it
// already has). Registering a callback observes the future — it stays out
// of the pool until Release. It returns the future for chaining.
func (fu *Future) Done(cb func(Result)) *Future {
	if cb == nil {
		return fu
	}
	if fu.resolved {
		cb(fu.res)
		return fu
	}
	fu.observed = true
	fu.cbs = append(fu.cbs, cb)
	return fu
}

// Await single-steps the simulation engine until the future resolves and
// returns the aggregate result. It is deterministic: equal seeds replay
// equal outcomes. If the simulation goes quiescent first (a lost credit,
// a stopped receiver), Await reports it as an error instead of spinning.
// Awaiting observes the future: it stays valid (and poolable only via
// Release) after Await returns.
func (fu *Future) Await() (Result, error) {
	fu.observed = true
	for !fu.resolved {
		if !fu.sys.step() {
			return fu.res, fmt.Errorf("tc: await: simulation quiescent with future unresolved (%d/%d messages)",
				fu.res.N, fu.expect)
		}
	}
	return fu.res, fu.res.Err
}
