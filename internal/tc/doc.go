// Package tc is the public façade of the Two-Chains runtime: a unified,
// handle-based invocation API over the core cluster/mesh machinery.
//
// # System
//
// A System is N simulated processes on one fabric backend — the two-node
// cluster of the paper's testbed is simply a 2-node System, and the
// sharded many-node mesh is the same type with more nodes:
//
//	sys, err := tc.NewSystem(2)                       // a "cluster"
//	sys, err := tc.NewSystem(16, tc.WithShards(4))    // a sharded mesh
//	sys, err := tc.NewSystem(8, tc.WithBackend("ideal"))
//
// Channels, mailbox regions, and namespace exchanges are provisioned
// lazily per destination, so full and partial meshes emerge from the
// traffic pattern.
//
// # Bind once, call many
//
// The paper's central claim is that binding a function chain once and
// injecting it many times beats per-call dispatch. Func is that binding
// made explicit: it pre-resolves the element on the source node, and on
// first use per destination it binds the travelling GOT image against the
// receiver namespace (through the sender's shared prepared-jam cache) and
// resolves the receiver-side IDs. Every Call after that ships a message
// with zero string resolution:
//
//	fn, err := sys.Func(0, "tcbench", "jam_iput")     // bind once
//	for i := 0; i < 1e6; i++ {
//		fn.Call(1, [2]uint64{k(i), 0})                // call many
//	}
//	sys.Run()
//
// Locality, bursting, and payload are call options on the one Call
// method:
//
//	fn.Call(dst, args, tc.Payload(usr))                        // Injected Function
//	fn.Call(dst, batch[0], tc.Burst(batch), tc.Payload(usr))   // batched injection
//	fn.Call(dst, args, tc.Local(), tc.Payload(usr))            // Local Function
//
// (The string-based Channel.Inject/CallLocal quartet that predated this
// API is gone; the channel-level surface is core.Bound, reached via
// Channel.Handle, and equivalence tests pin identical digests and
// simulated times between the two layers for fixed seeds.)
//
// # Futures
//
// Call returns a Future that resolves when every message of the call has
// been delivered (the signal landed at the receiver; handler execution is
// observed separately via Node.OnExecuted). Register a callback with
// Done, or block deterministically with Await, which single-steps the
// shared discrete-event engine until the future resolves — no wall-clock
// waiting, no goroutines, bit-identical replays:
//
//	res, err := fn.Call(1, args, tc.Payload(p)).Await()
//
// # Hot swap
//
// Func handles survive receiver-side RIED (relocatable interface
// distribution) hot-swaps: InstallRied plus RefreshNames moves the
// destination's namespace fingerprint, and the next Call through any
// handle re-binds against it automatically.
package tc
