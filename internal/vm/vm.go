// Package vm executes JAM code inside a node's simulated address space.
//
// The interpreter is the stand-in for the receiver CPU executing injected
// machine code in the paper: instruction fetches and data accesses go
// through the node's memsim hierarchy (so stashed message bytes are cheaper
// to execute than DRAM-resident ones), GOT-indirect instructions implement
// both the module-GOT form (CALLG/LDG, normal loaded libraries) and the
// message-GOT form (CALLP/LDP, injected jams), and calls can cross between
// injected code, library code, and native "C library" functions.
//
// Execution has two engines. The interpret loop below (CallInterp) is the
// reference implementation — the oracle. The template JIT in jit.go
// compiles each mapped region once, at bind time, into native Go step
// closures and dispatches them on the steady-state Call path. The
// contract is bit-exact equivalence: for every program and machine state
// the compiled path must produce the same results, register file, memory
// effects, Fault values, instruction counts, and simulated costs as the
// interpreter, which stays authoritative for any behaviour question.
// Edge cases the compiler does not model (misaligned dynamic jump
// targets) deopt mid-call into the interpreter rather than approximate.
package vm

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"twochains/internal/isa"
	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
)

// retMagic is the sentinel return address installed in LR for the outermost
// call; returning to it ends execution.
const retMagic = 0xFFFF_FFFF_FFFF_0000

// DefaultInstrBudget bounds a single invocation, catching runaway jams.
const DefaultInstrBudget = 200_000_000

// Region is a mapped code object the VM can execute: a loaded library's
// text or an injected jam inside a mailbox frame.
type Region struct {
	Start, End uint64 // text VA range
	// GotVA is the module GOT base for CALLG/LDG; zero for jams, whose
	// GOT travels with the message.
	GotVA uint64
	// GpSlotVA is the address of the GOT pointer slot for CALLP/LDP —
	// by convention Start-8, "just before the code" (paper Fig. 2).
	GpSlotVA uint64
	instrs   []isa.Instr
	// prog is the compiled translation (see jit.go). It lives and dies
	// with the region, so EnsureJam's byte-compare eviction invalidates
	// it exactly like the decode cache.
	prog *program
	// jam marks regions that arrived through EnsureJam.
	jam bool
}

// NativeFunc is a host-implemented library function ("existing C library"
// in the paper's terms). Arguments arrive in r0-r5; the return value goes
// to r0.
type NativeFunc func(env *Env, args [6]uint64) (uint64, error)

// Env gives natives access to the executing node's state and cost meter.
type Env struct {
	VM     *VM
	AS     *mem.AddressSpace
	Hier   *memsim.Hierarchy
	Stdout io.Writer
	cost   *sim.Duration
}

// Charge adds explicit simulated time (for natives modelling work beyond
// their memory traffic).
func (e *Env) Charge(d sim.Duration) { *e.cost += d }

// Access charges a memory access through the hierarchy, if timing is on.
func (e *Env) Access(addr uint64, size int, k memsim.Kind) {
	if e.Hier != nil {
		*e.cost += e.Hier.Access(addr, size, k)
	}
}

// VM is one node's execution engine. Not safe for concurrent use.
type VM struct {
	AS   *mem.AddressSpace
	Hier *memsim.Hierarchy // nil disables timing
	// Stdout receives printf/puts output from executed code.
	Stdout io.Writer
	// CheckExec enforces page execute permissions on instruction fetch
	// (the paper's mailbox pages are RWX by default; the security modes
	// in §V tighten this).
	CheckExec bool
	// InstrBudget bounds instructions per Call.
	InstrBudget uint64
	// UseInterpreter forces every Call through the reference interpreter
	// instead of the compiled translations — the A/B switch the
	// equivalence sweep and tc.WithInterpreter() flip.
	UseInterpreter bool

	regions    []*Region
	natives    []NativeFunc
	nativeName []string
	nativeBase uint64
	nativeEnd  uint64

	// jams caches decoded injected-code regions by body VA: a mailbox
	// slot that keeps receiving the same element (the steady state of
	// every injection stream) decodes its body once and re-executes the
	// cached region, verified by a byte compare against the live frame.
	jams map[uint64]*jamEntry

	regs      [16]uint64
	stackVA   uint64
	stackSize int

	// env and callCost are the reusable per-Call execution context: Env
	// escapes into native calls, so keeping one per VM (legal because a
	// VM runs one Call at a time) keeps the steady-state Call path free
	// of heap allocation.
	env      Env
	callCost sim.Duration

	// mach is the reusable compiled-path machine state (one Call at a
	// time, like env).
	mach jitMachine

	// Cumulative counters across calls.
	TotalInstrs uint64
	TotalCost   sim.Duration
	// JITCompiles counts region translations built; JITDeopts counts
	// mid-call handoffs to the interpreter.
	JITCompiles uint64
	JITDeopts   uint64
}

// jamEntry pairs a cached decode with the exact bytes it was made from.
type jamEntry struct {
	code   []byte
	region *Region
}

// New creates a VM bound to an address space. hier may be nil to disable
// timing (functional tests); stdout may be nil to discard output.
func New(as *mem.AddressSpace, hier *memsim.Hierarchy, stdout io.Writer) (*VM, error) {
	vm := &VM{
		AS:          as,
		Hier:        hier,
		Stdout:      stdout,
		InstrBudget: DefaultInstrBudget,
		jams:        map[uint64]*jamEntry{},
	}
	vm.env = Env{VM: vm, AS: as, Hier: hier, Stdout: stdout, cost: &vm.callCost}
	base, err := as.AllocPages("vm:natives", mem.PageSize, mem.PermR)
	if err != nil {
		return nil, err
	}
	vm.nativeBase = base
	vm.nativeEnd = base + mem.PageSize
	stack, err := as.AllocPages("vm:stack", 64*1024, mem.PermRW)
	if err != nil {
		return nil, err
	}
	vm.stackVA = stack
	vm.stackSize = 64 * 1024
	return vm, nil
}

// BindNative registers fn under name and returns its callable VA.
func (vm *VM) BindNative(name string, fn NativeFunc) (uint64, error) {
	if len(vm.natives) >= mem.PageSize/8 {
		return 0, fmt.Errorf("vm: native table full")
	}
	va := vm.nativeBase + uint64(len(vm.natives)*8)
	vm.natives = append(vm.natives, fn)
	vm.nativeName = append(vm.nativeName, name)
	return va, nil
}

// AddRegion maps code at [start, start+len(code)) for execution. gotVA is
// the module GOT (zero for jams). The code is validated and pre-decoded.
func (vm *VM) AddRegion(start uint64, code []byte, gotVA uint64) (*Region, error) {
	instrs, err := isa.DecodeAll(code)
	if err != nil {
		return nil, fmt.Errorf("vm: AddRegion at 0x%x: %w", start, err)
	}
	for i, in := range instrs {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("vm: AddRegion at 0x%x: instr %d: %w", start, i, err)
		}
	}
	r := &Region{
		Start:    start,
		End:      start + uint64(len(code)),
		GotVA:    gotVA,
		GpSlotVA: start - 8,
		instrs:   instrs,
	}
	// Bind-time compilation: every mapped region gets its translation
	// here, so the steady-state dispatch never compiles. The dispatcher
	// recompiles only if the VM's timing/exec flags change afterwards.
	r.prog = vm.compileRegion(r)
	vm.regions = append(vm.regions, r)
	return r, nil
}

// EnsureJam returns a mapped, decoded region for injected code at
// [start, start+len(code)), reusing the cached decode when the bytes are
// unchanged since the last delivery into this VA — the steady state of a
// mailbox slot receiving the same element. A slot whose content changed
// (different element, RIED hot-swap rebinding, truncation) fails the
// compare and is re-validated and re-decoded exactly like a fresh
// AddRegion. Cached regions stay mapped between calls; they are replaced,
// never leaked, because the cache is keyed by VA and a mailbox region has
// finitely many slots.
func (vm *VM) EnsureJam(start uint64, code []byte) (*Region, error) {
	e := vm.jams[start]
	if e != nil && bytes.Equal(e.code, code) {
		return e.region, nil
	}
	// The slot's content changed. A different element has a different GOT
	// table length, so its body lands at a shifted VA within the same
	// frame slot: evict every cached jam overlapping the new range, or a
	// stale overlapping decode could shadow this one in findRegion.
	// Collect the overlapping slots first, then evict in ascending VA
	// order: eviction mutates the region list, and its order must not
	// ride Go's randomized map iteration (tclint detsource).
	end := start + uint64(len(code))
	var evict []uint64
	for va, old := range vm.jams {
		if va != start && old.region.Start < end && old.region.End > start {
			evict = append(evict, va)
		}
	}
	sort.Slice(evict, func(i, j int) bool { return evict[i] < evict[j] })
	for _, va := range evict {
		vm.RemoveRegion(vm.jams[va].region)
		delete(vm.jams, va)
	}
	r, err := vm.AddRegion(start, code, 0)
	if err != nil {
		return nil, err
	}
	r.jam = true
	if e == nil {
		e = &jamEntry{}
		vm.jams[start] = e
	} else {
		vm.RemoveRegion(e.region)
	}
	e.code = append(e.code[:0], code...)
	e.region = r
	return r, nil
}

// RemoveRegion unmaps a previously added region (e.g. a consumed jam).
func (vm *VM) RemoveRegion(r *Region) {
	for i, x := range vm.regions {
		if x == r {
			vm.regions = append(vm.regions[:i], vm.regions[i+1:]...)
			return
		}
	}
}

func (vm *VM) findRegion(pc uint64) *Region {
	for _, r := range vm.regions {
		if pc >= r.Start && pc < r.End {
			return r
		}
	}
	return nil
}

// Fault is a VM execution error with machine context.
type Fault struct {
	PC    uint64
	Instr string
	Err   error
}

func (f *Fault) Error() string {
	if f.Instr != "" {
		return fmt.Sprintf("vm: fault at pc=0x%x [%s]: %v", f.PC, f.Instr, f.Err)
	}
	return fmt.Sprintf("vm: fault at pc=0x%x: %v", f.PC, f.Err)
}

func (f *Fault) Unwrap() error { return f.Err }

// Call executes the function at entry with up to six arguments, returning
// r0 and the simulated cost of the invocation. It dispatches the compiled
// fast path unless UseInterpreter pins the reference interpreter.
func (vm *VM) Call(entry uint64, args ...uint64) (uint64, sim.Duration, error) {
	if err := vm.setupCall(args); err != nil {
		return 0, 0, err
	}
	if vm.UseInterpreter {
		st := intState{pc: entry, lastFetchLine: 1}
		return vm.interpret(&st)
	}
	return vm.callCompiled(entry, args)
}

// CallInterp executes through the reference interpreter regardless of
// the VM's dispatch setting — the oracle side of equivalence tests.
func (vm *VM) CallInterp(entry uint64, args ...uint64) (uint64, sim.Duration, error) {
	if err := vm.setupCall(args); err != nil {
		return 0, 0, err
	}
	st := intState{pc: entry, lastFetchLine: 1}
	return vm.interpret(&st)
}

// setupCall resets the register file for a fresh invocation.
func (vm *VM) setupCall(args []uint64) error {
	if len(args) > 6 {
		return fmt.Errorf("vm: too many arguments (%d > 6)", len(args))
	}
	for i := range vm.regs {
		vm.regs[i] = 0
	}
	copy(vm.regs[:], args)
	vm.regs[isa.RegSP] = vm.stackVA + uint64(vm.stackSize)
	vm.regs[isa.RegLR] = retMagic
	return nil
}

// intState is the interpreter's resumable machine state. A fresh Call
// starts from {pc: entry, lastFetchLine: 1}; the compiled path hands over
// a mid-call snapshot when it deopts.
type intState struct {
	pc            uint64
	cost          sim.Duration
	instrs        uint64
	region        *Region
	lastFetchLine uint64
	hotLines      [8]uint64
	hotIdx        int
}

// interpret runs the reference interpret loop from st until return or
// fault. Registers live in vm.regs (already set up or mid-call).
func (vm *VM) interpret(st *intState) (uint64, sim.Duration, error) {
	cost := st.cost
	instrs := st.instrs
	// The per-VM Env escapes into natives; cost stays in a register-friendly
	// local and syncs with the Env's cost slot around each native call.
	env := &vm.env
	env.Stdout = vm.Stdout

	pc := st.pc
	region := st.region
	lastFetchLine := st.lastFetchLine // 1 is an impossible line value forcing first fetch
	// hotLines is a tiny L1I/loop-buffer model: lines fetched recently are
	// re-entered for free, so a loop body straddling a line boundary does
	// not pay the cache load-to-use latency on every iteration.
	hotLines := st.hotLines
	hotIdx := st.hotIdx

	fail := func(err error) (uint64, sim.Duration, error) {
		instrCost := model.Cycles(float64(instrs) * model.VMCyclesPerInstr)
		vm.TotalInstrs += instrs
		vm.TotalCost += cost + instrCost
		f := &Fault{PC: pc, Err: err}
		if region != nil && pc >= region.Start && pc < region.End {
			f.Instr = region.instrs[(pc-region.Start)/isa.InstrSize].String()
		}
		return 0, cost + instrCost, f
	}

	for {
		if pc == retMagic {
			break
		}
		// Native call target: run host function and return to LR.
		if pc >= vm.nativeBase && pc < vm.nativeEnd {
			idx := int(pc-vm.nativeBase) / 8
			if idx >= len(vm.natives) {
				return fail(fmt.Errorf("call to unbound native slot %d", idx))
			}
			cost += model.Cycles(20) // call/return overhead
			vm.callCost = cost
			ret, err := vm.natives[idx](env, [6]uint64{
				vm.regs[0], vm.regs[1], vm.regs[2], vm.regs[3], vm.regs[4], vm.regs[5],
			})
			cost = vm.callCost
			if err != nil {
				return fail(fmt.Errorf("native %s: %w", vm.nativeName[idx], err))
			}
			vm.regs[0] = ret
			pc = vm.regs[isa.RegLR]
			continue
		}
		if region == nil || pc < region.Start || pc >= region.End {
			region = vm.findRegion(pc)
			if region == nil {
				return fail(fmt.Errorf("jump to unmapped code"))
			}
		}
		// Per-line fetch charging and optional X enforcement: lines never
		// straddle pages, so one check covers all instructions in the line.
		// Sequential fall-through into the next line rides the fetch-ahead
		// stream; a taken branch to a new line pays the full latency.
		if line := pc &^ 63; line != lastFetchLine {
			seqFetch := line == lastFetchLine+64
			lastFetchLine = line
			if vm.CheckExec {
				if err := vm.AS.FetchCheck(pc, isa.InstrSize); err != nil {
					return fail(err)
				}
			}
			hot := false
			for _, h := range hotLines {
				if h == line+1 {
					hot = true
					break
				}
			}
			if !hot {
				if vm.Hier != nil {
					cost += vm.Hier.AccessSeq(line, 64, memsim.Fetch, seqFetch)
				}
				hotLines[hotIdx] = line + 1
				hotIdx = (hotIdx + 1) & 7
			}
		}

		instrs++
		if instrs > vm.InstrBudget {
			return fail(fmt.Errorf("instruction budget exceeded (%d)", vm.InstrBudget))
		}
		in := region.instrs[(pc-region.Start)/isa.InstrSize]
		next := pc + isa.InstrSize
		r := &vm.regs

		switch in.Op {
		case isa.NOP:
		case isa.HALT:
			pc = retMagic
			continue
		case isa.MOVI:
			r[in.Rd] = uint64(int64(in.Imm))
		case isa.MOVIU:
			r[in.Rd] = (r[in.Rd] & 0xFFFFFFFF) | uint64(uint32(in.Imm))<<32
		case isa.MOV:
			r[in.Rd] = r[in.Rs1]
		case isa.LEA:
			r[in.Rd] = pc + uint64(int64(in.Imm))
		case isa.ADD:
			r[in.Rd] = r[in.Rs1] + r[in.Rs2]
		case isa.SUB:
			r[in.Rd] = r[in.Rs1] - r[in.Rs2]
		case isa.MUL:
			r[in.Rd] = r[in.Rs1] * r[in.Rs2]
		case isa.DIV:
			if r[in.Rs2] == 0 {
				return fail(fmt.Errorf("division by zero"))
			}
			r[in.Rd] = uint64(int64(r[in.Rs1]) / int64(r[in.Rs2]))
		case isa.REM:
			if r[in.Rs2] == 0 {
				return fail(fmt.Errorf("division by zero"))
			}
			r[in.Rd] = uint64(int64(r[in.Rs1]) % int64(r[in.Rs2]))
		case isa.AND:
			r[in.Rd] = r[in.Rs1] & r[in.Rs2]
		case isa.OR:
			r[in.Rd] = r[in.Rs1] | r[in.Rs2]
		case isa.XOR:
			r[in.Rd] = r[in.Rs1] ^ r[in.Rs2]
		case isa.SHL:
			r[in.Rd] = r[in.Rs1] << (r[in.Rs2] & 63)
		case isa.SHR:
			r[in.Rd] = r[in.Rs1] >> (r[in.Rs2] & 63)
		case isa.SAR:
			r[in.Rd] = uint64(int64(r[in.Rs1]) >> (r[in.Rs2] & 63))
		case isa.ADDI:
			r[in.Rd] = r[in.Rs1] + uint64(int64(in.Imm))
		case isa.MULI:
			r[in.Rd] = r[in.Rs1] * uint64(int64(in.Imm))
		case isa.ANDI:
			r[in.Rd] = r[in.Rs1] & uint64(int64(in.Imm))
		case isa.ORI:
			r[in.Rd] = r[in.Rs1] | uint64(int64(in.Imm))
		case isa.XORI:
			r[in.Rd] = r[in.Rs1] ^ uint64(int64(in.Imm))
		case isa.SHLI:
			r[in.Rd] = r[in.Rs1] << (uint64(in.Imm) & 63)
		case isa.SHRI:
			r[in.Rd] = r[in.Rs1] >> (uint64(in.Imm) & 63)
		case isa.SLT:
			r[in.Rd] = b2u(int64(r[in.Rs1]) < int64(r[in.Rs2]))
		case isa.SLTU:
			r[in.Rd] = b2u(r[in.Rs1] < r[in.Rs2])
		case isa.SEQ:
			r[in.Rd] = b2u(r[in.Rs1] == r[in.Rs2])

		case isa.LDB, isa.LDH, isa.LDW, isa.LD:
			addr := r[in.Rs1] + uint64(int64(in.Imm))
			size := loadSize(in.Op)
			var v uint64
			var err error
			switch in.Op {
			case isa.LDB:
				v, err = vm.AS.ReadU8(addr)
			case isa.LDH:
				v, err = vm.AS.ReadU16(addr)
			case isa.LDW:
				v, err = vm.AS.ReadU32(addr)
			default:
				v, err = vm.AS.ReadU64(addr)
			}
			if err != nil {
				return fail(err)
			}
			if vm.Hier != nil {
				cost += vm.Hier.Access(addr, size, memsim.Read)
			}
			r[in.Rd] = v
		case isa.STB, isa.STH, isa.STW, isa.ST:
			addr := r[in.Rs1] + uint64(int64(in.Imm))
			size := storeSize(in.Op)
			var err error
			switch in.Op {
			case isa.STB:
				err = vm.AS.WriteU8(addr, r[in.Rd])
			case isa.STH:
				err = vm.AS.WriteU16(addr, r[in.Rd])
			case isa.STW:
				err = vm.AS.WriteU32(addr, r[in.Rd])
			default:
				err = vm.AS.WriteU64(addr, r[in.Rd])
			}
			if err != nil {
				return fail(err)
			}
			if vm.Hier != nil {
				cost += vm.Hier.Access(addr, size, memsim.Write)
			}

		case isa.BEQ:
			if r[in.Rs1] == r[in.Rs2] {
				next = branchTarget(pc, in.Imm)
			}
		case isa.BNE:
			if r[in.Rs1] != r[in.Rs2] {
				next = branchTarget(pc, in.Imm)
			}
		case isa.BLT:
			if int64(r[in.Rs1]) < int64(r[in.Rs2]) {
				next = branchTarget(pc, in.Imm)
			}
		case isa.BGE:
			if int64(r[in.Rs1]) >= int64(r[in.Rs2]) {
				next = branchTarget(pc, in.Imm)
			}
		case isa.BLTU:
			if r[in.Rs1] < r[in.Rs2] {
				next = branchTarget(pc, in.Imm)
			}
		case isa.BGEU:
			if r[in.Rs1] >= r[in.Rs2] {
				next = branchTarget(pc, in.Imm)
			}
		case isa.JMP:
			next = branchTarget(pc, in.Imm)
		case isa.CALL:
			r[isa.RegLR] = next
			next = branchTarget(pc, in.Imm)
		case isa.CALLR:
			r[isa.RegLR] = next
			next = r[in.Rs1]
		case isa.RET:
			next = r[isa.RegLR]

		case isa.CALLG, isa.LDG:
			if region.GotVA == 0 {
				return fail(fmt.Errorf("%s executed outside a loaded module (untransformed jam?)", in))
			}
			slotVA := region.GotVA + uint64(in.Imm)*8
			v, err := vm.AS.ReadU64(slotVA)
			if err != nil {
				return fail(err)
			}
			if vm.Hier != nil {
				cost += vm.Hier.Access(slotVA, 8, memsim.Read)
			}
			if in.Op == isa.LDG {
				r[in.Rd] = v
			} else {
				r[isa.RegLR] = next
				next = v
			}
		case isa.CALLP, isa.LDP:
			gp, err := vm.AS.ReadU64(region.GpSlotVA)
			if err != nil {
				return fail(fmt.Errorf("GOT pointer slot: %w", err))
			}
			slotVA := gp + uint64(in.Imm)*8
			v, err := vm.AS.ReadU64(slotVA)
			if err != nil {
				return fail(fmt.Errorf("GOT slot %d via 0x%x: %w", in.Imm, gp, err))
			}
			if vm.Hier != nil {
				cost += vm.Hier.Access(region.GpSlotVA, 8, memsim.Read)
				cost += vm.Hier.Access(slotVA, 8, memsim.Read)
			}
			if in.Op == isa.LDP {
				r[in.Rd] = v
			} else {
				r[isa.RegLR] = next
				next = v
			}
		default:
			return fail(fmt.Errorf("unimplemented opcode %d", in.Op))
		}
		pc = next
	}

	instrCost := model.Cycles(float64(instrs) * model.VMCyclesPerInstr)
	total := cost + instrCost
	vm.TotalInstrs += instrs
	vm.TotalCost += total
	return vm.regs[0], total, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func branchTarget(pc uint64, imm int32) uint64 {
	return pc + uint64(int64(imm)*isa.InstrSize)
}

func loadSize(op isa.Op) int {
	switch op {
	case isa.LDB:
		return 1
	case isa.LDH:
		return 2
	case isa.LDW:
		return 4
	}
	return 8
}

func storeSize(op isa.Op) int {
	switch op {
	case isa.STB:
		return 1
	case isa.STH:
		return 2
	case isa.STW:
		return 4
	}
	return 8
}
