package vm

import (
	"fmt"
	"io"

	"twochains/internal/linker"
	"twochains/internal/memsim"
	"twochains/internal/model"
)

// BindLibc registers the standard native library into the VM and the node
// namespace. These natives play the role of "existing C libraries" in the
// paper: jams and rieds call them through the GOT with no recompilation,
// which is the interoperability property §IV advertises.
func BindLibc(v *VM, ns *linker.Namespace) error {
	libc := []struct {
		name string
		fn   NativeFunc
	}{
		{"memcpy", nativeMemcpy},
		{"memset", nativeMemset},
		{"memcmp", nativeMemcmp},
		{"memmove", nativeMemcpy}, // simulated spaces never overlap mid-copy
		{"strlen", nativeStrlen},
		{"strcmp", nativeStrcmp},
		{"printf", nativePrintf},
		{"puts", nativePuts},
		{"abort", nativeAbort},
	}
	for _, e := range libc {
		va, err := v.BindNative(e.name, e.fn)
		if err != nil {
			return err
		}
		if err := ns.Define(e.name, va); err != nil {
			return err
		}
	}
	return nil
}

// chargeCopy models the CPU side of a bulk copy beyond its cache traffic.
func chargeCopy(env *Env, n uint64) {
	env.Charge(model.Cycles(float64(n) * 0.12))
}

func nativeMemcpy(env *Env, args [6]uint64) (uint64, error) {
	dst, src, n := args[0], args[1], args[2]
	if n == 0 {
		return dst, nil
	}
	if n > 1<<30 {
		return 0, fmt.Errorf("memcpy: implausible length %d", n)
	}
	// Aliased views, not copies: copy() has memmove semantics, so
	// overlapping ranges behave like the C library's memmove-safe memcpy.
	dbuf, err := env.AS.ViewMut(dst, int(n))
	if err != nil {
		return 0, err
	}
	sbuf, err := env.AS.View(src, int(n))
	if err != nil {
		return 0, err
	}
	copy(dbuf, sbuf)
	env.Access(src, int(n), memsim.Read)
	env.Access(dst, int(n), memsim.Write)
	chargeCopy(env, n)
	return dst, nil
}

func nativeMemset(env *Env, args [6]uint64) (uint64, error) {
	dst, c, n := args[0], args[1], args[2]
	if n == 0 {
		return dst, nil
	}
	if n > 1<<30 {
		return 0, fmt.Errorf("memset: implausible length %d", n)
	}
	dbuf, err := env.AS.ViewMut(dst, int(n))
	if err != nil {
		return 0, err
	}
	for i := range dbuf {
		dbuf[i] = byte(c)
	}
	env.Access(dst, int(n), memsim.Write)
	chargeCopy(env, n)
	return dst, nil
}

func nativeMemcmp(env *Env, args [6]uint64) (uint64, error) {
	a, b, n := args[0], args[1], args[2]
	if n > 1<<30 {
		return 0, fmt.Errorf("memcmp: implausible length %d", n)
	}
	ba, err := env.AS.View(a, int(n))
	if err != nil {
		return 0, err
	}
	bb, err := env.AS.View(b, int(n))
	if err != nil {
		return 0, err
	}
	env.Access(a, int(n), memsim.Read)
	env.Access(b, int(n), memsim.Read)
	chargeCopy(env, n)
	for i := range ba {
		if ba[i] != bb[i] {
			if ba[i] < bb[i] {
				return uint64(^uint64(0)), nil // -1
			}
			return 1, nil
		}
	}
	return 0, nil
}

func nativeStrlen(env *Env, args [6]uint64) (uint64, error) {
	s, err := env.AS.ReadCString(args[0], 1<<20)
	if err != nil {
		return 0, err
	}
	env.Access(args[0], len(s)+1, memsim.Read)
	return uint64(len(s)), nil
}

func nativeStrcmp(env *Env, args [6]uint64) (uint64, error) {
	a, err := env.AS.ReadCString(args[0], 1<<20)
	if err != nil {
		return 0, err
	}
	b, err := env.AS.ReadCString(args[1], 1<<20)
	if err != nil {
		return 0, err
	}
	env.Access(args[0], len(a)+1, memsim.Read)
	env.Access(args[1], len(b)+1, memsim.Read)
	switch {
	case a < b:
		return uint64(^uint64(0)), nil
	case a > b:
		return 1, nil
	}
	return 0, nil
}

func nativePuts(env *Env, args [6]uint64) (uint64, error) {
	s, err := env.AS.ReadCString(args[0], 1<<20)
	if err != nil {
		return 0, err
	}
	env.Access(args[0], len(s)+1, memsim.Read)
	if env.Stdout != nil {
		fmt.Fprintln(env.Stdout, s)
	}
	return uint64(len(s) + 1), nil
}

func nativeAbort(env *Env, args [6]uint64) (uint64, error) {
	return 0, fmt.Errorf("abort() called")
}

// nativePrintf implements the subset of printf the benchmark jams and
// examples need: %d %u %x %s %c %% with no width modifiers. The format
// string lives in the caller's address space (typically jam rodata that
// travelled with the message — the paper's "implicitly pulls in read-only
// data to support functions like printf").
func nativePrintf(env *Env, args [6]uint64) (uint64, error) {
	format, err := env.AS.ReadCString(args[0], 1<<16)
	if err != nil {
		return 0, err
	}
	env.Access(args[0], len(format)+1, memsim.Read)
	out := make([]byte, 0, len(format)+16)
	argi := 1
	nextArg := func() (uint64, error) {
		if argi >= 6 {
			return 0, fmt.Errorf("printf: more than 5 conversions")
		}
		v := args[argi]
		argi++
		return v, nil
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(format) {
			return 0, fmt.Errorf("printf: trailing %%")
		}
		switch format[i] {
		case '%':
			out = append(out, '%')
		case 'd':
			v, err := nextArg()
			if err != nil {
				return 0, err
			}
			out = append(out, fmt.Sprintf("%d", int64(v))...)
		case 'u':
			v, err := nextArg()
			if err != nil {
				return 0, err
			}
			out = append(out, fmt.Sprintf("%d", v)...)
		case 'x':
			v, err := nextArg()
			if err != nil {
				return 0, err
			}
			out = append(out, fmt.Sprintf("%x", v)...)
		case 'c':
			v, err := nextArg()
			if err != nil {
				return 0, err
			}
			out = append(out, byte(v))
		case 's':
			v, err := nextArg()
			if err != nil {
				return 0, err
			}
			s, err := env.AS.ReadCString(v, 1<<16)
			if err != nil {
				return 0, err
			}
			env.Access(v, len(s)+1, memsim.Read)
			out = append(out, s...)
		default:
			return 0, fmt.Errorf("printf: unsupported conversion %%%c", format[i])
		}
	}
	if env.Stdout != nil {
		if _, err := env.Stdout.Write(out); err != nil && err != io.EOF {
			return 0, err
		}
	}
	env.Charge(model.Cycles(float64(len(out)) * 2))
	return uint64(len(out)), nil
}
