package vm

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"twochains/internal/asm"
	"twochains/internal/elfobj"
	"twochains/internal/isa"
	"twochains/internal/linker"
	"twochains/internal/mem"
	"twochains/internal/memsim"
)

// harness bundles a node-like environment for VM tests.
type harness struct {
	as  *mem.AddressSpace
	ns  *linker.Namespace
	vm  *VM
	out bytes.Buffer
}

func newHarness(t *testing.T, withHier bool) *harness {
	t.Helper()
	h := &harness{
		as: mem.NewAddressSpace(8 << 20),
		ns: linker.NewNamespace(),
	}
	var hier *memsim.Hierarchy
	if withHier {
		hier = memsim.New(memsim.DefaultConfig())
	}
	v, err := New(h.as, hier, &h.out)
	if err != nil {
		t.Fatal(err)
	}
	h.vm = v
	if err := BindLibc(v, h.ns); err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *harness) assemble(t *testing.T, name, src string) *elfobj.Object {
	t.Helper()
	obj, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// loadLib assembles, links, loads a single-object library and maps its
// text as a VM region.
func (h *harness) loadLib(t *testing.T, name, src string) *linker.Loaded {
	t.Helper()
	obj := h.assemble(t, name+".s", src)
	img, err := linker.LinkLibrary(name, []*elfobj.Object{obj})
	if err != nil {
		t.Fatal(err)
	}
	ld, err := linker.Load(h.as, h.ns, img, linker.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := h.as.ReadBytesDMA(ld.TextVA, ld.TextLen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.vm.AddRegion(ld.TextVA, code, ld.GotVA); err != nil {
		t.Fatal(err)
	}
	return ld
}

// placeJam copies a jam into memory the way the mailbox runtime does:
// [GOT table][gp slot][body], binding extern GOT entries from the local
// namespace and local entries relative to the body. Returns the entry VA.
func (h *harness) placeJam(t *testing.T, j *linker.Jam) (entryVA uint64, region *Region) {
	t.Helper()
	total := j.ShippedSize()
	base, err := h.as.AllocPages("jamframe", total, mem.PermRWX)
	if err != nil {
		t.Fatal(err)
	}
	gotVA := base
	gpSlotVA := base + uint64(j.GotTableLen())
	codeVA := gpSlotVA + 8
	// Bind GOT.
	for i, g := range j.Got {
		var target uint64
		if g.Local {
			target = codeVA + uint64(g.Off)
		} else {
			va, ok := h.ns.Lookup(g.Name)
			if !ok {
				t.Fatalf("extern %q not in namespace", g.Name)
			}
			target = va
		}
		if err := h.as.WriteU64(gotVA+uint64(i*8), target); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.as.WriteU64(gpSlotVA, gotVA); err != nil {
		t.Fatal(err)
	}
	if err := h.as.WriteBytes(codeVA, j.Body); err != nil {
		t.Fatal(err)
	}
	region, err = h.vm.AddRegion(codeVA, j.Body[:j.TextLen], 0)
	if err != nil {
		t.Fatal(err)
	}
	return codeVA + uint64(j.Entry), region
}

func TestArithmeticProgram(t *testing.T) {
	h := newHarness(t, false)
	ld := h.loadLib(t, "arith", `
.text
.global compute
compute:
    ; r0 = (a+b)*3 - a/b
    add  r2, r0, r1
    muli r2, r2, 3
    div  r3, r0, r1
    sub  r0, r2, r3
    ret
`)
	got, _, err := h.vm.Call(ld.Exports["compute"], 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != (20+5)*3-20/5 {
		t.Fatalf("compute = %d", got)
	}
}

func TestLoopAndBranches(t *testing.T) {
	h := newHarness(t, false)
	ld := h.loadLib(t, "loop", `
.text
.global sumto
sumto:
    movi r1, 0      ; acc
    movi r2, 1      ; i
loop:
    bgt_check:
    blt  r0, r2, done
    add  r1, r1, r2
    addi r2, r2, 1
    jmp  loop
done:
    mov  r0, r1
    ret
`)
	got, _, err := h.vm.Call(ld.Exports["sumto"], 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5050 {
		t.Fatalf("sumto(100) = %d", got)
	}
}

func TestLoadsStoresAndStack(t *testing.T) {
	h := newHarness(t, false)
	buf, err := h.as.Alloc("buf", 64, 8, mem.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	ld := h.loadLib(t, "memops", `
.text
.global touch
touch:
    ; spill LR, call helper, restore: exercises the stack.
    addi sp, sp, -16
    st   lr, [sp+0]
    call helper
    ld   lr, [sp+0]
    addi sp, sp, 16
    ret
helper:
    movi r1, 0x1234
    sth  r1, [r0+0]
    ldh  r2, [r0+0]
    movi r1, -1
    stb  r1, [r0+2]
    ldb  r3, [r0+2]
    stw  r1, [r0+4]
    ldw  r4, [r0+4]
    st   r1, [r0+8]
    ld   r5, [r0+8]
    ; r0 = r2 + r3 + r4(low bit) + r5(low bit)
    andi r4, r4, 1
    andi r5, r5, 1
    add  r0, r2, r3
    add  r0, r0, r4
    add  r0, r0, r5
    ret
`)
	got, _, err := h.vm.Call(ld.Exports["touch"], buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x1234+0xFF+1+1 {
		t.Fatalf("touch = %#x", got)
	}
	v, _ := h.as.ReadU16(buf)
	if v != 0x1234 {
		t.Fatalf("mem[0] = %#x", v)
	}
}

func TestCallNativeThroughGot(t *testing.T) {
	h := newHarness(t, false)
	src, _ := h.as.Alloc("src", 64, 8, mem.PermRW)
	dst, _ := h.as.Alloc("dst", 64, 8, mem.PermRW)
	if err := h.as.WriteBytes(src, []byte("function injection!")); err != nil {
		t.Fatal(err)
	}
	ld := h.loadLib(t, "copier", `
.text
.extern memcpy
.global docopy
docopy:
    ; args already in r0=dst r1=src r2=n
    addi sp, sp, -16
    st   lr, [sp+0]
    callg memcpy
    ld   lr, [sp+0]
    addi sp, sp, 16
    ret
`)
	if _, _, err := h.vm.Call(ld.Exports["docopy"], dst, src, 19); err != nil {
		t.Fatal(err)
	}
	got, _ := h.as.ReadBytes(dst, 19)
	if string(got) != "function injection!" {
		t.Fatalf("dst = %q", got)
	}
}

func TestPrintfThroughLibrary(t *testing.T) {
	h := newHarness(t, false)
	ld := h.loadLib(t, "hello", `
.text
.extern printf
.global hello
hello:
    addi sp, sp, -16
    st   lr, [sp+0]
    mov  r2, r0        ; arg value
    lea  r0, fmt
    mov  r1, r2
    callg printf
    ld   lr, [sp+0]
    addi sp, sp, 16
    ret
.rodata
fmt:
    .asciz "value=%d!\n"
`)
	if _, _, err := h.vm.Call(ld.Exports["hello"], 42); err != nil {
		t.Fatal(err)
	}
	if h.out.String() != "value=42!\n" {
		t.Fatalf("stdout = %q", h.out.String())
	}
}

const jamSumSrc = `
.text
.extern tc_sink
.global jam_sum
jam_sum:
    ; r0 = payload VA, r1 = count of u64 words
    addi sp, sp, -16
    st   lr, [sp+0]
    movi r2, 0          ; acc
    movi r3, 0          ; i
sumloop:
    bge  r3, r1, sumdone
    shli r4, r3, 3
    add  r4, r4, r0
    ld   r5, [r4+0]
    add  r2, r2, r5
    addi r3, r3, 1
    jmp  sumloop
sumdone:
    mov  r0, r2
    callg tc_sink       ; externally visible side effect
    ld   lr, [sp+0]
    addi sp, sp, 16
    ret
`

func buildSumJam(t *testing.T, h *harness) *linker.Jam {
	t.Helper()
	obj := h.assemble(t, "jam_sum.amc", jamSumSrc)
	j, err := linker.BuildJam(obj, "jam_sum")
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestInjectedJamExecution(t *testing.T) {
	// End-to-end injected-function path: jam placed at an arbitrary
	// address, GOT bound through the pointer before the code.
	h := newHarness(t, false)
	var sunk uint64
	va, err := h.vm.BindNative("tc_sink", func(env *Env, args [6]uint64) (uint64, error) {
		sunk = args[0]
		return args[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ns.Define("tc_sink", va); err != nil {
		t.Fatal(err)
	}

	payload, _ := h.as.Alloc("payload", 8*10, 8, mem.PermRW)
	var want uint64
	for i := 0; i < 10; i++ {
		v := uint64(i * i)
		want += v
		if err := h.as.WriteU64(payload+uint64(i*8), v); err != nil {
			t.Fatal(err)
		}
	}

	j := buildSumJam(t, h)
	entry, region := h.placeJam(t, j)
	got, _, err := h.vm.Call(entry, payload, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || sunk != want {
		t.Fatalf("jam_sum = %d (sunk %d), want %d", got, sunk, want)
	}
	h.vm.RemoveRegion(region)
	if _, _, err := h.vm.Call(entry, payload, 10); err == nil {
		t.Fatal("call into removed region succeeded")
	}
}

func TestJamAtTwoDifferentAddresses(t *testing.T) {
	// Position independence: the same jam body works wherever it lands.
	h := newHarness(t, false)
	va, _ := h.vm.BindNative("tc_sink", func(env *Env, args [6]uint64) (uint64, error) {
		return args[0], nil
	})
	if err := h.ns.Define("tc_sink", va); err != nil {
		t.Fatal(err)
	}
	payload, _ := h.as.Alloc("payload", 8*4, 8, mem.PermRW)
	for i := 0; i < 4; i++ {
		_ = h.as.WriteU64(payload+uint64(i*8), 7)
	}
	j := buildSumJam(t, h)
	e1, r1 := h.placeJam(t, j)
	e2, r2 := h.placeJam(t, j)
	if e1 == e2 {
		t.Fatal("placements collided")
	}
	g1, _, err1 := h.vm.Call(e1, payload, 4)
	g2, _, err2 := h.vm.Call(e2, payload, 4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if g1 != 28 || g2 != 28 {
		t.Fatalf("results %d %d", g1, g2)
	}
	_ = r1
	_ = r2
}

func TestFaultDivByZero(t *testing.T) {
	h := newHarness(t, false)
	ld := h.loadLib(t, "dz", ".text\n.global f\nf:\n    movi r1, 0\n    div r0, r0, r1\n    ret\n")
	_, _, err := h.vm.Call(ld.Exports["f"], 10)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
	var f *Fault
	if !asFault(err, &f) {
		t.Fatalf("not a Fault: %T", err)
	}
}

func asFault(err error, out **Fault) bool {
	f, ok := err.(*Fault)
	if ok {
		*out = f
	}
	return ok
}

func TestFaultUnmappedJump(t *testing.T) {
	h := newHarness(t, false)
	ld := h.loadLib(t, "jmp", ".text\n.global f\nf:\n    movi r1, 0x6000\n    callr r1\n    ret\n")
	_, _, err := h.vm.Call(ld.Exports["f"])
	if err == nil || !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("err = %v", err)
	}
}

func TestFaultStoreToReadOnly(t *testing.T) {
	h := newHarness(t, false)
	ro, _ := h.as.AllocPages("ro", mem.PageSize, mem.PermR)
	ld := h.loadLib(t, "st", ".text\n.global f\nf:\n    st r1, [r0+0]\n    ret\n")
	_, _, err := h.vm.Call(ld.Exports["f"], ro)
	if err == nil || !strings.Contains(err.Error(), "fault") {
		t.Fatalf("err = %v", err)
	}
}

func TestInstrBudget(t *testing.T) {
	h := newHarness(t, false)
	ld := h.loadLib(t, "spin", ".text\n.global f\nf:\nspin:\n    jmp spin\n")
	h.vm.InstrBudget = 10000
	_, _, err := h.vm.Call(ld.Exports["f"])
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckExecEnforcement(t *testing.T) {
	h := newHarness(t, false)
	// Code placed in a non-executable page must fault when CheckExec on.
	code := isa.EncodeAll([]isa.Instr{{Op: isa.MOVI, Rd: 0, Imm: 1}, {Op: isa.RET}})
	va, _ := h.as.AllocPages("nx", mem.PageSize, mem.PermRW)
	if err := h.as.WriteBytes(va, code); err != nil {
		t.Fatal(err)
	}
	if _, err := h.vm.AddRegion(va, code, 0); err != nil {
		t.Fatal(err)
	}
	h.vm.CheckExec = true
	if _, _, err := h.vm.Call(va); err == nil {
		t.Fatal("execution of non-X page succeeded with CheckExec")
	}
	// After marking the page executable it runs.
	if err := h.as.Protect(va, mem.PageSize, mem.PermRWX); err != nil {
		t.Fatal(err)
	}
	got, _, err := h.vm.Call(va)
	if err != nil || got != 1 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestTimingAccumulates(t *testing.T) {
	h := newHarness(t, true)
	ld := h.loadLib(t, "timing", `
.text
.global f
f:
    movi r1, 0
    movi r2, 0
tl:
    bge  r2, r0, td
    add  r1, r1, r2
    addi r2, r2, 1
    jmp  tl
td:
    mov r0, r1
    ret
`)
	_, cost1, err := h.vm.Call(ld.Exports["f"], 10)
	if err != nil {
		t.Fatal(err)
	}
	_, cost2, err := h.vm.Call(ld.Exports["f"], 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cost1 <= 0 || cost2 <= cost1 {
		t.Fatalf("costs: %v then %v", cost1, cost2)
	}
	if h.vm.TotalInstrs == 0 || h.vm.TotalCost == 0 {
		t.Fatal("cumulative counters empty")
	}
}

func TestStashedJamCheaperThanDRAM(t *testing.T) {
	// The paper's core microarchitectural claim, at VM granularity:
	// executing a frame whose lines were stashed into LLC costs less than
	// one whose lines sit in DRAM.
	run := func(stash bool) int64 {
		h := newHarness(t, true)
		cfg := memsim.DefaultConfig()
		cfg.Stash = stash
		h.vm.Hier = memsim.New(cfg)
		va, _ := h.vm.BindNative("tc_sink", func(env *Env, args [6]uint64) (uint64, error) {
			return 0, nil
		})
		_ = h.ns.Define("tc_sink", va)
		payload, _ := h.as.Alloc("payload", 8*64, 8, mem.PermRW)
		j := buildSumJam(t, h)
		entry, _ := h.placeJam(t, j)
		// Model network arrival of frame + payload.
		h.vm.Hier.NetworkWrite(entry, len(j.Body))
		h.vm.Hier.NetworkWrite(payload, 8*64)
		_, cost, err := h.vm.Call(entry, payload, 64)
		if err != nil {
			t.Fatal(err)
		}
		return int64(cost)
	}
	stashed, dram := run(true), run(false)
	if stashed >= dram {
		t.Fatalf("stashed exec %d >= dram exec %d", stashed, dram)
	}
}

func TestMoviu64BitConstant(t *testing.T) {
	h := newHarness(t, false)
	ld := h.loadLib(t, "c64", `
.text
.global f
f:
    movi  r0, 0x11223344
    moviu r0, 0x55667788
    ret
`)
	got, _, err := h.vm.Call(ld.Exports["f"])
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x5566778811223344 {
		t.Fatalf("got %#x", got)
	}
}

func TestHaltStops(t *testing.T) {
	h := newHarness(t, false)
	ld := h.loadLib(t, "h", ".text\n.global f\nf:\n    movi r0, 9\n    halt\n    movi r0, 1\n    ret\n")
	got, _, err := h.vm.Call(ld.Exports["f"])
	if err != nil || got != 9 {
		t.Fatalf("halt: %d %v", got, err)
	}
}

func TestNativeMemcmpStrlen(t *testing.T) {
	h := newHarness(t, false)
	a, _ := h.as.Alloc("a", 32, 8, mem.PermRW)
	b, _ := h.as.Alloc("b", 32, 8, mem.PermRW)
	_ = h.as.WriteBytes(a, append([]byte("hello"), 0))
	_ = h.as.WriteBytes(b, append([]byte("hellp"), 0))
	ld := h.loadLib(t, "cmp", `
.text
.extern memcmp
.extern strlen
.global docmp
docmp:
    addi sp, sp, -16
    st   lr, [sp+0]
    callg memcmp
    mov  r3, r0
    ld   lr, [sp+0]
    addi sp, sp, 16
    mov  r0, r3
    ret
.global dolen
dolen:
    addi sp, sp, -16
    st   lr, [sp+0]
    callg strlen
    ld   lr, [sp+0]
    addi sp, sp, 16
    ret
`)
	got, _, err := h.vm.Call(ld.Exports["docmp"], a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if int64(got) >= 0 {
		t.Fatalf("memcmp = %d, want negative", int64(got))
	}
	n, _, err := h.vm.Call(ld.Exports["dolen"], a)
	if err != nil || n != 5 {
		t.Fatalf("strlen = %d, %v", n, err)
	}
}

func TestLittleEndianAgreement(t *testing.T) {
	// VM word order must match Go's binary.LittleEndian so natives and
	// interpreted code see the same values.
	h := newHarness(t, false)
	buf, _ := h.as.Alloc("le", 16, 8, mem.PermRW)
	ld := h.loadLib(t, "le", ".text\n.global f\nf:\n    st r1, [r0+0]\n    ret\n")
	if _, _, err := h.vm.Call(ld.Exports["f"], buf, 0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	raw, _ := h.as.ReadBytes(buf, 8)
	if binary.LittleEndian.Uint64(raw) != 0x0102030405060708 {
		t.Fatalf("bytes % x", raw)
	}
	if raw[0] != 0x08 {
		t.Fatalf("not little endian: % x", raw)
	}
}
