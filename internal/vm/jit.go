// Template JIT: each mapped code region is compiled once — at AddRegion
// time, which EnsureJam reaches on first delivery, i.e. at bind time —
// into a table of native Go step closures specialized over the region's
// decoded instructions and its RIED namespace constants (GOT slot VAs,
// branch targets, register operands). The steady-state dispatch path
// (vm.Call) threads through the compiled table; the interpret loop in
// vm.go remains the reference implementation and the oracle the compiled
// path must match bit-for-bit: results, Fault values, simulated costs,
// and instruction counts are all constructed by the same formulas in the
// same order.
//
// Translation-cache discipline (the DBI-survey shape): the program rides
// the *Region cached in jamEntry, so it is invalidated exactly like the
// decode cache — a RIED hot-swap or a different element landing in the
// slot fails EnsureJam's byte compare, the region is replaced, and the
// stale translation goes with it. GOT-indirect call sites keep their
// loads (a hot-swap patches GOT slots in place, and the cost model
// charges those reads); only the slot addresses are pre-resolved.
//
// Equivalence edge cases deopt: a dynamic transfer to a misaligned
// in-region pc hands the whole machine state to the interpreter, whose
// floor-indexed fetch defines the contract there.
package vm

import (
	"encoding/binary"
	"fmt"

	"twochains/internal/isa"
	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
)

// Step results: non-negative values are the next instruction index
// inside the same program.
const (
	jitEscape int32 = -1 // control left the region; m.pc holds the target VA
	jitFault  int32 = -2 // m.pc and m.err hold the fault
)

// stepFn executes one compiled unit and returns the next step index or a
// sentinel.
type stepFn func(m *jitMachine) int32

// jitMachine is the per-call mutable state shared by every compiled step.
// One lives in the VM (a VM runs one Call at a time), so the steady-state
// compiled path allocates nothing.
type jitMachine struct {
	vm     *VM
	cost   sim.Duration
	instrs uint64
	budget uint64
	pc     uint64 // meaningful after jitEscape/jitFault
	err    error  // meaningful after jitFault

	// Fetch-line model state, mirrored from the interpreter.
	lastFetchLine uint64
	hotLines      [8]uint64
	hotIdx        int
}

func (m *jitMachine) fail(pc uint64, err error) int32 {
	m.pc = pc
	m.err = err
	return jitFault
}

func (m *jitMachine) failBudget(pc uint64) int32 {
	return m.fail(pc, fmt.Errorf("instruction budget exceeded (%d)", m.budget))
}

// fetchLine replays the interpreter's per-line fetch modelling: exec
// permission check, sequential-fetch detection, and the hot-line ring
// that lets loop bodies re-enter recently fetched lines for free. It is
// only reached from line-aware programs. Reports true on a fetch fault.
func (m *jitMachine) fetchLine(pc, line uint64) bool {
	vm := m.vm
	seqFetch := line == m.lastFetchLine+64
	m.lastFetchLine = line
	if vm.CheckExec {
		if err := vm.AS.FetchCheck(pc, isa.InstrSize); err != nil {
			m.pc = pc
			m.err = err
			return true
		}
	}
	hot := false
	for _, h := range m.hotLines {
		if h == line+1 {
			hot = true
			break
		}
	}
	if !hot {
		if vm.Hier != nil {
			m.cost += vm.Hier.AccessSeq(line, 64, memsim.Fetch, seqFetch)
		}
		m.hotLines[m.hotIdx] = line + 1
		m.hotIdx = (m.hotIdx + 1) & 7
	}
	return false
}

// program is one region's compiled translation.
type program struct {
	start, end uint64
	// lineAware programs carry the per-line fetch/exec modelling and
	// restrict fused runs to a single fetch line; a program compiled
	// without it is only valid while the VM has no hierarchy and no
	// exec checking (the dispatcher recompiles on mismatch).
	lineAware bool
	steps     []stepFn // one per instruction slot, individual semantics
	disp      []stepFn // dispatch table: fused-run heads override steps
	blocks    int
	fusedRuns int
	fusedOps  int
}

// run threads the dispatch table from idx until control leaves the
// region or faults.
func (p *program) run(m *jitMachine, idx int32) int32 {
	disp := p.disp
	n := int32(len(disp))
	for idx >= 0 {
		if idx >= n {
			// Fell past the end: same as the interpreter's pc reaching
			// region.End — resolve the next region (or fault) outside.
			m.pc = p.start + uint64(idx)*isa.InstrSize
			return jitEscape
		}
		idx = disp[idx](m)
	}
	return idx
}

// enter resolves a dynamic control transfer (CALLR/RET/CALLG/CALLP
// targets). In-region aligned targets continue inside the program;
// everything else — other regions, natives, retMagic, misaligned pcs —
// escapes to the dispatcher.
func (p *program) enter(m *jitMachine, va uint64) int32 {
	if va >= p.start && va < p.end {
		if d := va - p.start; d&7 == 0 {
			return int32(d >> 3)
		}
	}
	m.pc = va
	return jitEscape
}

// slowRun executes a fused run's instructions individually — the bail
// path when the instruction budget could expire mid-run, so the fault
// lands on exactly the instruction the interpreter would charge.
func (p *program) slowRun(m *jitMachine, idx, end int32) int32 {
	for idx >= 0 && idx < end {
		idx = p.steps[idx](m)
	}
	return idx
}

// ---------------------------------------------------------------------
// Static analysis: basic blocks and fusable ALU runs.

// PlanRun is one fusable straight-line ALU span.
type PlanRun struct {
	Start, Len int
}

// Plan is the static compile plan for a code region — what tcdisasm
// prints and what the emitter consumes.
type Plan struct {
	Instrs    int
	Blocks    int
	Runs      []PlanRun
	FusedOps  int
	LineAware bool
}

// fusable reports whether op can join a fused ALU run: register-only
// effects, cannot fault, cannot branch. DIV/REM fault on zero divisors
// and stay out.
func fusable(op isa.Op) bool {
	switch op {
	case isa.NOP, isa.MOVI, isa.MOVIU, isa.MOV, isa.LEA,
		isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SAR,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI,
		isa.SLT, isa.SLTU, isa.SEQ:
		return true
	}
	return false
}

// memOp reports whether op is a plain load or store — fusable into runs
// of non-line-aware programs, where a memory access carries no hierarchy
// charge and the only observable mid-run effect is its fault.
func memOp(op isa.Op) bool {
	switch op {
	case isa.LDB, isa.LDH, isa.LDW, isa.LD,
		isa.STB, isa.STH, isa.STW, isa.ST:
		return true
	}
	return false
}

func isControl(op isa.Op) bool {
	switch op {
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU,
		isa.JMP, isa.CALL, isa.CALLR, isa.RET, isa.CALLG, isa.CALLP, isa.HALT:
		return true
	}
	return false
}

// AnalyzeRegion computes the compile plan for decoded code at startVA:
// leaders (block heads), and maximal fusable runs that never cross a
// leader — a static branch target must land on a dispatchable step — and,
// when lineAware, never cross a 64-byte fetch line, so the per-line
// model keeps firing at the same pcs as the interpreter.
func AnalyzeRegion(instrs []isa.Instr, startVA uint64, lineAware bool) Plan {
	n := len(instrs)
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	for i, in := range instrs {
		switch in.Op {
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU, isa.JMP, isa.CALL:
			pc := startVA + uint64(i)*isa.InstrSize
			tva := branchTarget(pc, in.Imm)
			if tva >= startVA {
				if t := (tva - startVA) / isa.InstrSize; t < uint64(n) {
					leader[t] = true
				}
			}
		}
		if isControl(in.Op) && i+1 <= n {
			leader[i+1] = true
		}
	}
	p := Plan{Instrs: n, LineAware: lineAware}
	for i := 0; i < n; i++ {
		if leader[i] {
			p.Blocks++
		}
	}
	// Maximal runs: start anywhere, extend while the next instruction is
	// fusable, not a leader, and (line-aware) on the same fetch line.
	// Loads and stores join runs only in non-line-aware programs (no
	// per-access hierarchy charge to order); their faults roll the run's
	// pre-charged instruction count back to the exact faulting slot.
	joins := func(op isa.Op) bool {
		return fusable(op) || (!lineAware && memOp(op))
	}
	for i := 0; i < n; {
		if !joins(instrs[i].Op) {
			i++
			continue
		}
		j := i + 1
		line := (startVA + uint64(i)*isa.InstrSize) &^ 63
		for j < n && j-i < 255 && joins(instrs[j].Op) && !leader[j] {
			if lineAware && (startVA+uint64(j)*isa.InstrSize)&^63 != line {
				break
			}
			j++
		}
		if j-i >= 2 {
			p.Runs = append(p.Runs, PlanRun{Start: i, Len: j - i})
			p.FusedOps += j - i
		}
		i = j
	}
	return p
}

// ---------------------------------------------------------------------
// Micro-ops: the data form fused ALU runs execute from.

type uopKind uint8

const (
	uNop uopKind = iota
	uSet         // rd = imm (MOVI, LEA with the pc folded in)
	uMoviu
	uMov
	uAdd
	uSub
	uMul
	uAnd
	uOr
	uXor
	uShl
	uShr
	uSar
	uAddi
	uMuli
	uAndi
	uOri
	uXori
	uShli
	uShri
	uSlt
	uSltu
	uSeq

	// Superinstructions: adjacent pairs fused by peepholeUops. Legal
	// because a fused ALU span has no observable intermediate states —
	// it cannot fault, and control cannot enter or leave mid-run — so
	// only the register file at run exit matters. (Memory uops can
	// fault, but they never fuse with neighbours, so every register
	// value a fault exposes is exactly the interpreter's.)
	uMulXori  // rd = (rs1 * rs2) ^ imm
	uAddiMul  // rd = (rs1 + imm) * rs2
	uXorAddi  // rd = (rs1 ^ rs2) + imm
	uShriXor  // rs2 = rs1 >> imm; rd = rd0 ^ rs2  (hash-mix staple)
	uXoriShri // rd = rs1 ^ imm; rs2 = rd >> imm2

	// Second-level fusion: a whole xorshift mix round
	// (mul; xori; shri; xor; addi) in one dispatch. The pattern is the
	// splitmix/murmur finalizer staple, so generated hash kernels spend
	// nearly all their ALU time here.
	uMix // v=(rs1*rs2)^imm; t=v>>sh; rs3=t; rd=(v^t)+imm2

	// Memory micro-ops (non-line-aware runs only): rd ↔ [rs1+imm]. The
	// only uop kinds that can fault; oi locates the faulting slot for the
	// instruction-count rollback.
	uLd8
	uLd16
	uLd32
	uLd64
	uSt8
	uSt16
	uSt32
	uSt64

	// Table-driven pooled forms (third fusion level). Both read the
	// run's aux table so one dispatch covers a whole idiom:
	//   uMixN:  imm=aux start, imm2=round count; aux holds (xor, add)
	//           immediate pairs; rd=rs1 accumulator, rs2 multiplier,
	//           rs3 temp, sh shift — the registers every round shares.
	//   uLdSeq/uStSeq: imm=base offset, imm2=(aux start)<<32 | count;
	//           aux holds the register numbers transferred to/from
	//           [rs1+imm+8k], in program order.
	uMixN
	uLdSeq
	uStSeq
)

type uop struct {
	kind         uopKind
	rd, rs1, rs2 uint8
	rs3, sh      uint8  // uMix only: temp destination and shift count
	oi           uint8  // memory uops only: original index within the run
	imm          uint64 // pre-lowered: sign-extended, pre-shifted, or absolute
	imm2         uint64 // second immediate of fused pairs
}

// lowerMem translates one load/store into its micro-op; oi is the
// instruction's index within its run, kept for the fault rollback.
func lowerMem(in isa.Instr, oi int) uop {
	o := uop{rd: in.Rd, rs1: in.Rs1, imm: uint64(int64(in.Imm)), oi: uint8(oi)}
	switch in.Op {
	case isa.LDB:
		o.kind = uLd8
	case isa.LDH:
		o.kind = uLd16
	case isa.LDW:
		o.kind = uLd32
	case isa.LD:
		o.kind = uLd64
	case isa.STB:
		o.kind = uSt8
	case isa.STH:
		o.kind = uSt16
	case isa.STW:
		o.kind = uSt32
	case isa.ST:
		o.kind = uSt64
	}
	return o
}

// lowerALU translates one fusable instruction into a micro-op,
// pre-folding everything the interpreter computes per execution.
func lowerALU(in isa.Instr, pc uint64) uop {
	o := uop{rd: in.Rd, rs1: in.Rs1, rs2: in.Rs2}
	switch in.Op {
	case isa.NOP:
		o.kind = uNop
	case isa.MOVI:
		o.kind, o.imm = uSet, uint64(int64(in.Imm))
	case isa.MOVIU:
		o.kind, o.imm = uMoviu, uint64(uint32(in.Imm))<<32
	case isa.MOV:
		o.kind = uMov
	case isa.LEA:
		o.kind, o.imm = uSet, pc+uint64(int64(in.Imm))
	case isa.ADD:
		o.kind = uAdd
	case isa.SUB:
		o.kind = uSub
	case isa.MUL:
		o.kind = uMul
	case isa.AND:
		o.kind = uAnd
	case isa.OR:
		o.kind = uOr
	case isa.XOR:
		o.kind = uXor
	case isa.SHL:
		o.kind = uShl
	case isa.SHR:
		o.kind = uShr
	case isa.SAR:
		o.kind = uSar
	case isa.ADDI:
		o.kind, o.imm = uAddi, uint64(int64(in.Imm))
	case isa.MULI:
		o.kind, o.imm = uMuli, uint64(int64(in.Imm))
	case isa.ANDI:
		o.kind, o.imm = uAndi, uint64(int64(in.Imm))
	case isa.ORI:
		o.kind, o.imm = uOri, uint64(int64(in.Imm))
	case isa.XORI:
		o.kind, o.imm = uXori, uint64(int64(in.Imm))
	case isa.SHLI:
		o.kind, o.imm = uShli, uint64(in.Imm)&63
	case isa.SHRI:
		o.kind, o.imm = uShri, uint64(in.Imm)&63
	case isa.SLT:
		o.kind = uSlt
	case isa.SLTU:
		o.kind = uSltu
	case isa.SEQ:
		o.kind = uSeq
	}
	return o
}

// execUops runs a fused span over the register file. Semantics per kind
// are copied from the interpreter's switch arms. Returns -1 on normal
// completion, or — with m.err set — the original in-run instruction
// index of a faulting memory access (the caller rolls back the
// pre-charged instruction count and builds the fault pc from it). aux
// is the run's side table for the pooled uMixN/uLdSeq/uStSeq forms.
func execUops(m *jitMachine, as *mem.AddressSpace, r *[16]uint64, ops []uop, aux []uint64) int32 {
	for i := range ops {
		o := &ops[i]
		switch o.kind {
		case uSet:
			r[o.rd] = o.imm
		case uMoviu:
			r[o.rd] = (r[o.rd] & 0xFFFFFFFF) | o.imm
		case uMov:
			r[o.rd] = r[o.rs1]
		case uAdd:
			r[o.rd] = r[o.rs1] + r[o.rs2]
		case uSub:
			r[o.rd] = r[o.rs1] - r[o.rs2]
		case uMul:
			r[o.rd] = r[o.rs1] * r[o.rs2]
		case uAnd:
			r[o.rd] = r[o.rs1] & r[o.rs2]
		case uOr:
			r[o.rd] = r[o.rs1] | r[o.rs2]
		case uXor:
			r[o.rd] = r[o.rs1] ^ r[o.rs2]
		case uShl:
			r[o.rd] = r[o.rs1] << (r[o.rs2] & 63)
		case uShr:
			r[o.rd] = r[o.rs1] >> (r[o.rs2] & 63)
		case uSar:
			r[o.rd] = uint64(int64(r[o.rs1]) >> (r[o.rs2] & 63))
		case uAddi:
			r[o.rd] = r[o.rs1] + o.imm
		case uMuli:
			r[o.rd] = r[o.rs1] * o.imm
		case uAndi:
			r[o.rd] = r[o.rs1] & o.imm
		case uOri:
			r[o.rd] = r[o.rs1] | o.imm
		case uXori:
			r[o.rd] = r[o.rs1] ^ o.imm
		case uShli:
			r[o.rd] = r[o.rs1] << o.imm
		case uShri:
			r[o.rd] = r[o.rs1] >> o.imm
		case uSlt:
			r[o.rd] = b2u(int64(r[o.rs1]) < int64(r[o.rs2]))
		case uSltu:
			r[o.rd] = b2u(r[o.rs1] < r[o.rs2])
		case uSeq:
			r[o.rd] = b2u(r[o.rs1] == r[o.rs2])

		case uMulXori:
			r[o.rd] = (r[o.rs1] * r[o.rs2]) ^ o.imm
		case uAddiMul:
			r[o.rd] = (r[o.rs1] + o.imm) * r[o.rs2]
		case uXorAddi:
			r[o.rd] = (r[o.rs1] ^ r[o.rs2]) + o.imm
		case uShriXor:
			// Stores before the xor read, so register aliasing (rs2 ==
			// rs1) resolves exactly as the two-instruction original.
			t := r[o.rs1] >> o.imm
			r[o.rs2] = t
			r[o.rd] = r[o.rs1] ^ t
		case uXoriShri:
			v := r[o.rs1] ^ o.imm
			r[o.rd] = v
			r[o.rs2] = v >> o.imm2
		case uMix:
			// Aliasing contract: rs3 is written before rd exactly as the
			// unfused uShriXor stored its temp before the xor result, and
			// fusion requires rs3 to differ from rd (and the mix sources),
			// so no read below observes a fused-away intermediate.
			v := (r[o.rs1] * r[o.rs2]) ^ o.imm
			t := v >> o.sh
			r[o.rs3] = t
			r[o.rd] = (v ^ t) + o.imm2

		case uLd64:
			addr := r[o.rs1] + o.imm
			if v, ok := as.FastRead64(addr); ok {
				r[o.rd] = v
				break
			}
			v, err := as.ReadU64(addr)
			if err != nil {
				m.err = err
				return int32(o.oi)
			}
			r[o.rd] = v
		case uSt64:
			addr := r[o.rs1] + o.imm
			if as.FastWrite64(addr, r[o.rd]) {
				break
			}
			if err := as.WriteU64(addr, r[o.rd]); err != nil {
				m.err = err
				return int32(o.oi)
			}
		case uLd8:
			v, err := as.ReadU8(r[o.rs1] + o.imm)
			if err != nil {
				m.err = err
				return int32(o.oi)
			}
			r[o.rd] = v
		case uLd16:
			v, err := as.ReadU16(r[o.rs1] + o.imm)
			if err != nil {
				m.err = err
				return int32(o.oi)
			}
			r[o.rd] = v
		case uLd32:
			v, err := as.ReadU32(r[o.rs1] + o.imm)
			if err != nil {
				m.err = err
				return int32(o.oi)
			}
			r[o.rd] = v
		case uSt8:
			if err := as.WriteU8(r[o.rs1]+o.imm, r[o.rd]); err != nil {
				m.err = err
				return int32(o.oi)
			}
		case uSt16:
			if err := as.WriteU16(r[o.rs1]+o.imm, r[o.rd]); err != nil {
				m.err = err
				return int32(o.oi)
			}
		case uSt32:
			if err := as.WriteU32(r[o.rs1]+o.imm, r[o.rd]); err != nil {
				m.err = err
				return int32(o.oi)
			}

		case uMixN:
			// Whole mix chain in one dispatch: the accumulator and the
			// multiplier live in locals across rounds (fusion guarantees
			// no round writes the multiplier register), and only the
			// final accumulator/temp pair is architecturally visible.
			v, c := r[o.rd], r[o.rs2]
			var t uint64
			pairs := aux[o.imm : o.imm+2*o.imm2]
			for k := 0; k < len(pairs); k += 2 {
				v = (v * c) ^ pairs[k]
				t = v >> o.sh
				v = (v ^ t) + pairs[k+1]
			}
			r[o.rs3] = t
			r[o.rd] = v
		case uLdSeq:
			base := r[o.rs1] + o.imm
			regs := aux[o.imm2>>32 : o.imm2>>32+o.imm2&0xFFFFFFFF]
			if span := as.FastSpan(base, 8*len(regs), mem.PermR); span != nil {
				for k, reg := range regs {
					r[reg] = binary.LittleEndian.Uint64(span[8*k:])
				}
				continue
			}
			for k, reg := range regs {
				addr := base + uint64(k)*8
				if v, ok := as.FastRead64(addr); ok {
					r[reg] = v
					continue
				}
				v, err := as.ReadU64(addr)
				if err != nil {
					m.err = err
					return int32(o.oi) + int32(k)
				}
				r[reg] = v
			}
		case uStSeq:
			base := r[o.rs1] + o.imm
			regs := aux[o.imm2>>32 : o.imm2>>32+o.imm2&0xFFFFFFFF]
			if span := as.FastSpan(base, 8*len(regs), mem.PermW); span != nil {
				for k, reg := range regs {
					binary.LittleEndian.PutUint64(span[8*k:], r[reg])
				}
				continue
			}
			for k, reg := range regs {
				addr := base + uint64(k)*8
				if as.FastWrite64(addr, r[reg]) {
					continue
				}
				if err := as.WriteU64(addr, r[reg]); err != nil {
					m.err = err
					return int32(o.oi) + int32(k)
				}
			}
		}
	}
	return -1
}

// peepholeUops greedily fuses adjacent micro-op pairs into
// superinstructions — the classic interpreter-superinstruction trick,
// halving dispatch for the generated-code staples (64-bit constant
// loads, multiply-xor hash mixing, shift-xor folding). Each fusion is
// checked to leave the full register file identical to executing the
// pair, including aliasing between destinations and sources.
func peepholeUops(ops []uop) []uop {
	ops = fuseMixRounds(ops)
	out := make([]uop, 0, len(ops))
	for i := 0; i < len(ops); i++ {
		if i+1 < len(ops) {
			if f, ok := fuseUopPair(ops[i], ops[i+1]); ok {
				out = append(out, f)
				i++
				continue
			}
		}
		out = append(out, ops[i])
	}
	return out
}

// fuseMixRounds is the second fusion level, run on the raw lowered
// stream BEFORE pair fusion: a xorshift mix round is the five-uop span
// (uMul; uXori; uShri; uXor; uAddi) threaded through one accumulator.
// It must run first because greedy pairing would split consecutive
// rounds out of phase (each round's trailing addi fuses forward into
// the next round's mul), leaving a five-superop two-round cycle that no
// fixed-width matcher can pool. On the raw stream every round is
// uniform, so each collapses to a uMix and chains pool into uMixN.
func fuseMixRounds(ops []uop) []uop {
	out := ops[:0]
	for i := 0; i < len(ops); i++ {
		if i+4 < len(ops) {
			a, b, c, d, e := ops[i], ops[i+1], ops[i+2], ops[i+3], ops[i+4]
			if a.kind == uMul && a.rs1 == a.rd && a.rs2 != a.rd &&
				b.kind == uXori && b.rd == a.rd && b.rs1 == a.rd &&
				c.kind == uShri && c.rd != a.rd && c.rd != a.rs2 && c.rs1 == a.rd &&
				d.kind == uXor && d.rd == a.rd && d.rs1 == a.rd && d.rs2 == c.rd &&
				e.kind == uAddi && e.rd == a.rd && e.rs1 == a.rd {
				out = append(out, uop{
					kind: uMix, rd: a.rd, rs1: a.rs1, rs2: a.rs2,
					rs3: c.rd, sh: uint8(c.imm),
					imm: b.imm, imm2: e.imm,
				})
				i += 4
				continue
			}
		}
		out = append(out, ops[i])
	}
	return out
}

// poolUops is the third fusion level: chains of identically-shaped uops
// collapse into one table-driven dispatch, with the variable parts (mix
// immediates, transferred registers) moved into the run's aux table.
func poolUops(ops []uop) ([]uop, []uint64) {
	var aux []uint64
	out := ops[:0]
	for i := 0; i < len(ops); i++ {
		o := ops[i]
		switch o.kind {
		case uMix:
			// A chain continues while every round keeps the same
			// accumulator (rd==rs1), multiplier, temp, and shift, and no
			// round writes the multiplier register (rd and rs3 are the
			// only writes; rs3==rd is fine — the chain preserves the
			// store-temp-then-result order on exit).
			if o.rs1 != o.rd || o.rs2 == o.rd || o.rs2 == o.rs3 {
				break
			}
			j := i + 1
			for j < len(ops) {
				n := ops[j]
				if n.kind != uMix || n.rd != o.rd || n.rs1 != o.rd ||
					n.rs2 != o.rs2 || n.rs3 != o.rs3 || n.sh != o.sh {
					break
				}
				j++
			}
			if j-i >= 2 {
				start := uint64(len(aux))
				for _, m := range ops[i:j] {
					aux = append(aux, m.imm, m.imm2)
				}
				out = append(out, uop{
					kind: uMixN, rd: o.rd, rs1: o.rs1, rs2: o.rs2,
					rs3: o.rs3, sh: o.sh,
					imm: start, imm2: uint64(j - i),
				})
				i = j - 1
				continue
			}
		case uLd64, uSt64:
			// Contiguous same-base 8-byte transfers at ascending +8
			// offsets (push/pop idiom). Loads must not overwrite the
			// base register mid-sequence — the pooled form computes the
			// base once.
			j := i + 1
			off := o.imm
			okBase := o.kind != uLd64 || o.rd != o.rs1
			for okBase && j < len(ops) {
				n := ops[j]
				if n.kind != o.kind || n.rs1 != o.rs1 ||
					n.imm != off+uint64(j-i)*8 ||
					int(n.oi) != int(o.oi)+(j-i) ||
					(o.kind == uLd64 && n.rd == n.rs1) {
					break
				}
				j++
			}
			if j-i >= 2 {
				start := uint64(len(aux))
				for _, m := range ops[i:j] {
					aux = append(aux, uint64(m.rd))
				}
				kind := uLdSeq
				if o.kind == uSt64 {
					kind = uStSeq
				}
				out = append(out, uop{
					kind: kind, rs1: o.rs1, oi: o.oi,
					imm: off, imm2: start<<32 | uint64(j-i),
				})
				i = j - 1
				continue
			}
		}
		out = append(out, o)
	}
	return out, aux
}

func fuseUopPair(a, b uop) (uop, bool) {
	switch {
	case a.kind == uSet && b.kind == uMoviu && b.rd == a.rd:
		// movi + moviu: a full 64-bit constant load.
		return uop{kind: uSet, rd: a.rd, imm: a.imm&0xFFFFFFFF | b.imm}, true
	case a.kind == uMul && b.kind == uXori && b.rd == a.rd && b.rs1 == a.rd:
		return uop{kind: uMulXori, rd: a.rd, rs1: a.rs1, rs2: a.rs2, imm: b.imm}, true
	case a.kind == uAddi && b.kind == uMul && b.rd == a.rd && b.rs1 == a.rd && b.rs2 != a.rd:
		// b.rs2 == a.rd would read the addi result; keep that pair apart.
		return uop{kind: uAddiMul, rd: a.rd, rs1: a.rs1, rs2: b.rs2, imm: a.imm}, true
	case a.kind == uXor && b.kind == uAddi && b.rd == a.rd && b.rs1 == a.rd:
		return uop{kind: uXorAddi, rd: a.rd, rs1: a.rs1, rs2: a.rs2, imm: b.imm}, true
	case a.kind == uShri && b.kind == uXor &&
		((b.rs1 == a.rs1 && b.rs2 == a.rd) || (b.rs1 == a.rd && b.rs2 == a.rs1)):
		return uop{kind: uShriXor, rd: b.rd, rs1: a.rs1, rs2: a.rd, imm: a.imm}, true
	case a.kind == uXori && b.kind == uShri && b.rs1 == a.rd:
		return uop{kind: uXoriShri, rd: a.rd, rs1: a.rs1, rs2: b.rd, imm: a.imm, imm2: b.imm}, true
	}
	return uop{}, false
}

// ---------------------------------------------------------------------
// Emission.

// compileRegion builds the translation for r against the VM's current
// flags. Compilation is total — every validated instruction lowers — so
// there is no per-region fallback; only dynamic misaligned entries deopt.
func (vm *VM) compileRegion(r *Region) *program {
	lineAware := vm.Hier != nil || vm.CheckExec
	plan := AnalyzeRegion(r.instrs, r.Start, lineAware)
	p := &program{
		start:     r.Start,
		end:       r.End,
		lineAware: lineAware,
		blocks:    plan.Blocks,
		fusedRuns: len(plan.Runs),
		fusedOps:  plan.FusedOps,
	}
	n := len(r.instrs)
	p.steps = make([]stepFn, n)
	for i := 0; i < n; i++ {
		p.steps[i] = vm.compileStep(r, p, i, lineAware)
	}
	p.disp = make([]stepFn, n)
	copy(p.disp, p.steps)
	for _, run := range plan.Runs {
		p.disp[run.Start] = vm.compileRun(r, p, run, lineAware)
	}
	vm.JITCompiles++
	return p
}

// compileRun emits the superstep for one fused ALU span. The head does
// the (single) line check and one budget pre-check for the whole span;
// if the budget could expire inside it, the span re-executes through the
// individual steps so the fault lands exactly where the interpreter puts
// it.
func (vm *VM) compileRun(r *Region, p *program, run PlanRun, lineAware bool) stepFn {
	ops := make([]uop, run.Len)
	for k := 0; k < run.Len; k++ {
		i := run.Start + k
		if memOp(r.instrs[i].Op) {
			ops[k] = lowerMem(r.instrs[i], k)
		} else {
			ops[k] = lowerALU(r.instrs[i], r.Start+uint64(i)*isa.InstrSize)
		}
	}
	ops = peepholeUops(ops)
	ops, aux := poolUops(ops)
	head := int32(run.Start)
	end := int32(run.Start + run.Len)
	n := uint64(run.Len)
	pc := r.Start + uint64(run.Start)*isa.InstrSize
	line := pc &^ 63
	regs := &vm.regs
	as := vm.AS
	if lineAware {
		// Line-aware runs hold ALU uops only (AnalyzeRegion keeps memory
		// ops out), so execUops cannot report a fault here.
		return func(m *jitMachine) int32 {
			if line != m.lastFetchLine {
				if m.fetchLine(pc, line) {
					return jitFault
				}
			}
			if m.instrs+n > m.budget {
				return p.slowRun(m, head, end)
			}
			m.instrs += n
			execUops(m, as, regs, ops, aux)
			return end
		}
	}
	return func(m *jitMachine) int32 {
		if m.instrs+n > m.budget {
			return p.slowRun(m, head, end)
		}
		m.instrs += n
		if k := execUops(m, as, regs, ops, aux); k >= 0 {
			// A memory access faulted: k is its original index within
			// the run. Roll the pre-charged count back to that
			// instruction (the interpreter charges it before executing)
			// and report its exact pc.
			oi := uint64(k)
			m.instrs -= n - oi - 1
			m.pc = pc + oi*isa.InstrSize
			return jitFault
		}
		return end
	}
}

// wrapStep prefixes a step body with the per-instruction prologue the
// interpreter runs before its switch: the line fetch model (line-aware
// programs only) and the budget charge.
func wrapStep(pc, line uint64, lineAware bool, body stepFn) stepFn {
	if !lineAware {
		return func(m *jitMachine) int32 {
			m.instrs++
			if m.instrs > m.budget {
				return m.failBudget(pc)
			}
			return body(m)
		}
	}
	return func(m *jitMachine) int32 {
		if line != m.lastFetchLine {
			if m.fetchLine(pc, line) {
				return jitFault
			}
		}
		m.instrs++
		if m.instrs > m.budget {
			return m.failBudget(pc)
		}
		return body(m)
	}
}

// compileStep emits the individual step for instruction i of r. Each arm
// mirrors the corresponding interpreter case, with operands pre-resolved
// to register-file pointers and immediates pre-lowered.
func (vm *VM) compileStep(r *Region, p *program, i int, lineAware bool) stepFn {
	in := r.instrs[i]
	pc := r.Start + uint64(i)*isa.InstrSize
	line := pc &^ 63
	next := int32(i + 1)
	nextVA := pc + isa.InstrSize
	regs := &vm.regs
	as := vm.AS
	lr := &vm.regs[isa.RegLR]

	var body stepFn
	switch in.Op {
	case isa.HALT:
		body = func(m *jitMachine) int32 {
			m.pc = retMagic
			return jitEscape
		}

	case isa.NOP, isa.MOVI, isa.MOVIU, isa.MOV, isa.LEA,
		isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SAR,
		isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI,
		isa.SLT, isa.SLTU, isa.SEQ:
		ops := [1]uop{lowerALU(in, pc)}
		body = func(m *jitMachine) int32 {
			execUops(m, as, regs, ops[:], nil)
			return next
		}

	case isa.DIV:
		d, a, b := &regs[in.Rd], &regs[in.Rs1], &regs[in.Rs2]
		body = func(m *jitMachine) int32 {
			if *b == 0 {
				return m.fail(pc, fmt.Errorf("division by zero"))
			}
			*d = uint64(int64(*a) / int64(*b))
			return next
		}
	case isa.REM:
		d, a, b := &regs[in.Rd], &regs[in.Rs1], &regs[in.Rs2]
		body = func(m *jitMachine) int32 {
			if *b == 0 {
				return m.fail(pc, fmt.Errorf("division by zero"))
			}
			*d = uint64(int64(*a) % int64(*b))
			return next
		}

	case isa.LDB, isa.LDH, isa.LDW, isa.LD:
		d, base := &regs[in.Rd], &regs[in.Rs1]
		off := uint64(int64(in.Imm))
		size := loadSize(in.Op)
		var read func(uint64) (uint64, error)
		switch in.Op {
		case isa.LDB:
			read = as.ReadU8
		case isa.LDH:
			read = as.ReadU16
		case isa.LDW:
			read = as.ReadU32
		default:
			read = as.ReadU64
		}
		if !lineAware {
			// Non-line-aware programs are only dispatched while the VM
			// has no hierarchy, so the Access charge can't apply.
			if in.Op == isa.LD {
				body = func(m *jitMachine) int32 {
					addr := *base + off
					if v, ok := as.FastRead64(addr); ok {
						*d = v
						return next
					}
					v, err := as.ReadU64(addr)
					if err != nil {
						return m.fail(pc, err)
					}
					*d = v
					return next
				}
				break
			}
			body = func(m *jitMachine) int32 {
				v, err := read(*base + off)
				if err != nil {
					return m.fail(pc, err)
				}
				*d = v
				return next
			}
			break
		}
		body = func(m *jitMachine) int32 {
			addr := *base + off
			v, err := read(addr)
			if err != nil {
				return m.fail(pc, err)
			}
			if h := m.vm.Hier; h != nil {
				m.cost += h.Access(addr, size, memsim.Read)
			}
			*d = v
			return next
		}

	case isa.STB, isa.STH, isa.STW, isa.ST:
		d, base := &regs[in.Rd], &regs[in.Rs1]
		off := uint64(int64(in.Imm))
		size := storeSize(in.Op)
		var write func(uint64, uint64) error
		switch in.Op {
		case isa.STB:
			write = as.WriteU8
		case isa.STH:
			write = as.WriteU16
		case isa.STW:
			write = as.WriteU32
		default:
			write = as.WriteU64
		}
		if !lineAware {
			if in.Op == isa.ST {
				body = func(m *jitMachine) int32 {
					addr := *base + off
					if as.FastWrite64(addr, *d) {
						return next
					}
					if err := as.WriteU64(addr, *d); err != nil {
						return m.fail(pc, err)
					}
					return next
				}
				break
			}
			body = func(m *jitMachine) int32 {
				if err := write(*base+off, *d); err != nil {
					return m.fail(pc, err)
				}
				return next
			}
			break
		}
		body = func(m *jitMachine) int32 {
			addr := *base + off
			if err := write(addr, *d); err != nil {
				return m.fail(pc, err)
			}
			if h := m.vm.Hier; h != nil {
				m.cost += h.Access(addr, size, memsim.Write)
			}
			return next
		}

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		a, b := &regs[in.Rs1], &regs[in.Rs2]
		tva := branchTarget(pc, in.Imm)
		if tva >= r.Start && tva < r.End {
			t := int32((tva - r.Start) >> 3)
			switch in.Op {
			case isa.BEQ:
				body = func(m *jitMachine) int32 {
					if *a == *b {
						return t
					}
					return next
				}
			case isa.BNE:
				body = func(m *jitMachine) int32 {
					if *a != *b {
						return t
					}
					return next
				}
			case isa.BLT:
				body = func(m *jitMachine) int32 {
					if int64(*a) < int64(*b) {
						return t
					}
					return next
				}
			case isa.BGE:
				body = func(m *jitMachine) int32 {
					if int64(*a) >= int64(*b) {
						return t
					}
					return next
				}
			case isa.BLTU:
				body = func(m *jitMachine) int32 {
					if *a < *b {
						return t
					}
					return next
				}
			default: // BGEU
				body = func(m *jitMachine) int32 {
					if *a >= *b {
						return t
					}
					return next
				}
			}
		} else {
			// Out-of-region branch target: taken means escaping to the
			// dispatcher. Cold by construction.
			var cond func() bool
			switch in.Op {
			case isa.BEQ:
				cond = func() bool { return *a == *b }
			case isa.BNE:
				cond = func() bool { return *a != *b }
			case isa.BLT:
				cond = func() bool { return int64(*a) < int64(*b) }
			case isa.BGE:
				cond = func() bool { return int64(*a) >= int64(*b) }
			case isa.BLTU:
				cond = func() bool { return *a < *b }
			default:
				cond = func() bool { return *a >= *b }
			}
			body = func(m *jitMachine) int32 {
				if cond() {
					m.pc = tva
					return jitEscape
				}
				return next
			}
		}

	case isa.JMP:
		tva := branchTarget(pc, in.Imm)
		if tva >= r.Start && tva < r.End {
			t := int32((tva - r.Start) >> 3)
			body = func(m *jitMachine) int32 { return t }
		} else {
			body = func(m *jitMachine) int32 {
				m.pc = tva
				return jitEscape
			}
		}
	case isa.CALL:
		tva := branchTarget(pc, in.Imm)
		if tva >= r.Start && tva < r.End {
			t := int32((tva - r.Start) >> 3)
			body = func(m *jitMachine) int32 {
				*lr = nextVA
				return t
			}
		} else {
			body = func(m *jitMachine) int32 {
				*lr = nextVA
				m.pc = tva
				return jitEscape
			}
		}
	case isa.CALLR:
		s := &regs[in.Rs1]
		body = func(m *jitMachine) int32 {
			*lr = nextVA
			return p.enter(m, *s)
		}
	case isa.RET:
		body = func(m *jitMachine) int32 {
			return p.enter(m, *lr)
		}

	case isa.CALLG, isa.LDG:
		if r.GotVA == 0 {
			err := fmt.Errorf("%s executed outside a loaded module (untransformed jam?)", in)
			body = func(m *jitMachine) int32 {
				return m.fail(pc, err)
			}
			break
		}
		slotVA := r.GotVA + uint64(in.Imm)*8
		if in.Op == isa.LDG {
			d := &regs[in.Rd]
			body = func(m *jitMachine) int32 {
				v, err := as.ReadU64(slotVA)
				if err != nil {
					return m.fail(pc, err)
				}
				if h := m.vm.Hier; h != nil {
					m.cost += h.Access(slotVA, 8, memsim.Read)
				}
				*d = v
				return next
			}
		} else {
			body = func(m *jitMachine) int32 {
				v, err := as.ReadU64(slotVA)
				if err != nil {
					return m.fail(pc, err)
				}
				if h := m.vm.Hier; h != nil {
					m.cost += h.Access(slotVA, 8, memsim.Read)
				}
				*lr = nextVA
				return p.enter(m, v)
			}
		}

	case isa.CALLP, isa.LDP:
		gpSlot := r.GpSlotVA
		off := uint64(in.Imm) * 8
		imm := in.Imm
		if in.Op == isa.LDP {
			d := &regs[in.Rd]
			body = func(m *jitMachine) int32 {
				gp, err := as.ReadU64(gpSlot)
				if err != nil {
					return m.fail(pc, fmt.Errorf("GOT pointer slot: %w", err))
				}
				slotVA := gp + off
				v, err := as.ReadU64(slotVA)
				if err != nil {
					return m.fail(pc, fmt.Errorf("GOT slot %d via 0x%x: %w", imm, gp, err))
				}
				if h := m.vm.Hier; h != nil {
					m.cost += h.Access(gpSlot, 8, memsim.Read)
					m.cost += h.Access(slotVA, 8, memsim.Read)
				}
				*d = v
				return next
			}
		} else {
			body = func(m *jitMachine) int32 {
				gp, err := as.ReadU64(gpSlot)
				if err != nil {
					return m.fail(pc, fmt.Errorf("GOT pointer slot: %w", err))
				}
				slotVA := gp + off
				v, err := as.ReadU64(slotVA)
				if err != nil {
					return m.fail(pc, fmt.Errorf("GOT slot %d via 0x%x: %w", imm, gp, err))
				}
				if h := m.vm.Hier; h != nil {
					m.cost += h.Access(gpSlot, 8, memsim.Read)
					m.cost += h.Access(slotVA, 8, memsim.Read)
				}
				*lr = nextVA
				return p.enter(m, v)
			}
		}

	default:
		op := in.Op
		body = func(m *jitMachine) int32 {
			return m.fail(pc, fmt.Errorf("unimplemented opcode %d", op))
		}
	}
	return wrapStep(pc, line, lineAware, body)
}

// ---------------------------------------------------------------------
// Dispatch.

// callCompiled is the steady-state Call path: the same outer loop as the
// interpreter (retMagic, native window, region resolution), with region
// bodies executed through their compiled programs.
func (vm *VM) callCompiled(entry uint64, args []uint64) (uint64, sim.Duration, error) {
	m := &vm.mach
	m.vm = vm
	m.cost = 0
	m.instrs = 0
	m.budget = vm.InstrBudget
	m.pc = entry
	m.err = nil
	m.lastFetchLine = 1 // impossible line value forces first fetch
	m.hotLines = [8]uint64{}
	m.hotIdx = 0
	env := &vm.env
	env.Stdout = vm.Stdout

	lineAware := vm.Hier != nil || vm.CheckExec
	pc := entry
	var region *Region
	for {
		if pc == retMagic {
			break
		}
		if pc >= vm.nativeBase && pc < vm.nativeEnd {
			idx := int(pc-vm.nativeBase) / 8
			if idx >= len(vm.natives) {
				return vm.failCompiled(m, region, pc, fmt.Errorf("call to unbound native slot %d", idx))
			}
			m.cost += model.Cycles(20) // call/return overhead
			vm.callCost = m.cost
			ret, err := vm.natives[idx](env, [6]uint64{
				vm.regs[0], vm.regs[1], vm.regs[2], vm.regs[3], vm.regs[4], vm.regs[5],
			})
			m.cost = vm.callCost
			if err != nil {
				return vm.failCompiled(m, region, pc, fmt.Errorf("native %s: %w", vm.nativeName[idx], err))
			}
			vm.regs[0] = ret
			pc = vm.regs[isa.RegLR]
			continue
		}
		if region == nil || pc < region.Start || pc >= region.End {
			region = vm.findRegion(pc)
			if region == nil {
				return vm.failCompiled(m, region, pc, fmt.Errorf("jump to unmapped code"))
			}
		}
		prog := region.prog
		if prog == nil || prog.lineAware != lineAware {
			prog = vm.compileRegion(region)
			region.prog = prog
		}
		if (pc-region.Start)&7 != 0 {
			// Misaligned entry: the interpreter's floor-indexed fetch is
			// the contract there — hand it the whole machine state.
			vm.JITDeopts++
			st := intState{
				pc:            pc,
				cost:          m.cost,
				instrs:        m.instrs,
				region:        region,
				lastFetchLine: m.lastFetchLine,
				hotLines:      m.hotLines,
				hotIdx:        m.hotIdx,
			}
			return vm.interpret(&st)
		}
		res := prog.run(m, int32((pc-region.Start)>>3))
		if res == jitFault {
			return vm.failCompiled(m, region, m.pc, m.err)
		}
		pc = m.pc
	}

	instrCost := model.Cycles(float64(m.instrs) * model.VMCyclesPerInstr)
	total := m.cost + instrCost
	vm.TotalInstrs += m.instrs
	vm.TotalCost += total
	return vm.regs[0], total, nil
}

// failCompiled finishes a faulted compiled call with exactly the
// interpreter's fail() accounting and Fault construction.
func (vm *VM) failCompiled(m *jitMachine, region *Region, pc uint64, err error) (uint64, sim.Duration, error) {
	instrCost := model.Cycles(float64(m.instrs) * model.VMCyclesPerInstr)
	vm.TotalInstrs += m.instrs
	total := m.cost + instrCost
	vm.TotalCost += total
	f := &Fault{PC: pc, Err: err}
	if region != nil && pc >= region.Start && pc < region.End {
		f.Instr = region.instrs[(pc-region.Start)/isa.InstrSize].String()
	}
	return 0, total, f
}

// RegionInfo describes one mapped region's translation, for the
// tcdisasm/tcperf debug surfaces.
type RegionInfo struct {
	Start, End uint64
	Jam        bool
	Compiled   bool
	Blocks     int
	Steps      int
	FusedRuns  int
	FusedOps   int
}

// CompiledRegions reports every mapped region and its translation state,
// in mapping order.
func (vm *VM) CompiledRegions() []RegionInfo {
	out := make([]RegionInfo, 0, len(vm.regions))
	for _, r := range vm.regions {
		ri := RegionInfo{Start: r.Start, End: r.End, Jam: r.jam, Steps: len(r.instrs)}
		if r.prog != nil {
			ri.Compiled = true
			ri.Blocks = r.prog.blocks
			ri.FusedRuns = r.prog.fusedRuns
			ri.FusedOps = r.prog.fusedOps
		}
		out = append(out, ri)
	}
	return out
}
