// Package mem provides simulated process address spaces: flat 64-bit
// virtual addresses backed by a byte array, with page-granular R/W/X
// permissions and a region allocator.
//
// Every node in the simulated cluster owns one AddressSpace. Loaded
// libraries, mailbox frames, heaps and stacks are regions inside it, so a
// virtual address is meaningful only within its node — exactly the problem
// the paper's remote-linking mechanism exists to solve.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the permission granularity.
const PageSize = 4096

// Base is the lowest mapped virtual address; everything below faults,
// catching null and small-integer dereferences.
const Base uint64 = 0x10000

// Perm is a page permission bitmask.
type Perm uint8

const (
	PermR Perm = 1 << iota
	PermW
	PermX
	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

func (p Perm) String() string {
	s := [3]byte{'-', '-', '-'}
	if p&PermR != 0 {
		s[0] = 'r'
	}
	if p&PermW != 0 {
		s[1] = 'w'
	}
	if p&PermX != 0 {
		s[2] = 'x'
	}
	return string(s[:])
}

// AccessKind labels the operation that faulted.
type AccessKind int

const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExec
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return "?"
}

// Fault is a memory access violation.
type Fault struct {
	Addr uint64
	Size int
	Kind AccessKind
	Perm Perm // permissions of the page, if mapped
	OOB  bool // address outside the mapped range
}

func (f *Fault) Error() string {
	if f.OOB {
		return fmt.Sprintf("mem: %s fault at 0x%x (%d bytes): unmapped", f.Kind, f.Addr, f.Size)
	}
	return fmt.Sprintf("mem: %s fault at 0x%x (%d bytes): page is %s", f.Kind, f.Addr, f.Size, f.Perm)
}

// Region records an allocation for diagnostics.
type Region struct {
	Name string
	Addr uint64
	Size int
	Perm Perm
}

// AddressSpace is one simulated process image.
//
// The backing array is mapped lazily: capacity is the virtual size every
// bounds check uses, while data holds only a prefix that grows (by
// doubling) as the bump allocator and accessors touch higher addresses.
// A node that allocates a few megabytes out of a 64 MB space never pays
// for zeroing the other 60 — which used to dominate the wall-clock cost
// of constructing many-node systems.
type AddressSpace struct {
	data     []byte // mapped prefix of the space, grows on demand
	capacity int    // virtual size in bytes
	perms    []Perm // one per page of the full virtual size
	brk      uint64 // next free address (bump allocator)
	regions  []Region
}

// NewAddressSpace creates a space with the given capacity in bytes
// (rounded up to a page). No backing memory is mapped yet.
func NewAddressSpace(capacity int) *AddressSpace {
	pages := (capacity + PageSize - 1) / PageSize
	return &AddressSpace{
		capacity: pages * PageSize,
		perms:    make([]Perm, pages),
		brk:      Base,
	}
}

// Size returns the mapped capacity in bytes.
func (as *AddressSpace) Size() int { return as.capacity }

// End returns one past the highest usable VA.
func (as *AddressSpace) End() uint64 { return Base + uint64(as.capacity) }

func (as *AddressSpace) index(va uint64) (int, bool) {
	if va < Base {
		return 0, false
	}
	i := va - Base
	if i >= uint64(as.capacity) {
		return 0, false
	}
	return int(i), true
}

// ensure grows the mapped prefix to cover at least n bytes. Fresh bytes
// are zero, exactly as the eagerly mapped space was. Growth doubles, so
// the copy work amortizes to O(high-water mark).
func (as *AddressSpace) ensure(n int) {
	if n <= len(as.data) {
		return
	}
	c := cap(as.data)
	if c < 1<<16 {
		c = 1 << 16
	}
	for c < n {
		c <<= 1
	}
	if c > as.capacity {
		c = as.capacity
	}
	nd := make([]byte, c)
	copy(nd, as.data)
	as.data = nd
}

// Alloc reserves size bytes aligned to align with the given permissions and
// returns the base VA. Named regions appear in Regions() for diagnostics.
func (as *AddressSpace) Alloc(name string, size, align int, perm Perm) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("mem: Alloc %q: non-positive size %d", name, size)
	}
	if align <= 0 {
		align = 8
	}
	va := (as.brk + uint64(align) - 1) / uint64(align) * uint64(align)
	if _, ok := as.index(va + uint64(size) - 1); !ok {
		return 0, fmt.Errorf("mem: Alloc %q: out of address space (%d bytes requested, brk=0x%x, cap=%d)",
			name, size, as.brk, as.capacity)
	}
	as.brk = va + uint64(size)
	// Map the region eagerly so accessors (and Views handed out before the
	// next Alloc) hit stable backing.
	as.ensure(int(as.brk - Base))
	as.setPerm(va, size, perm)
	as.regions = append(as.regions, Region{Name: name, Addr: va, Size: size, Perm: perm})
	return va, nil
}

// AllocPages is Alloc with page alignment and page-rounded size, for
// regions whose permissions must not interfere with neighbours (mailboxes,
// code segments).
func (as *AddressSpace) AllocPages(name string, size int, perm Perm) (uint64, error) {
	size = (size + PageSize - 1) / PageSize * PageSize
	return as.Alloc(name, size, PageSize, perm)
}

func (as *AddressSpace) setPerm(va uint64, size int, perm Perm) {
	first := (va - Base) / PageSize
	last := (va - Base + uint64(size) - 1) / PageSize
	for p := first; p <= last; p++ {
		as.perms[p] = perm
	}
}

// Protect changes the permissions of all pages overlapping [va, va+size).
func (as *AddressSpace) Protect(va uint64, size int, perm Perm) error {
	if _, ok := as.index(va); !ok {
		return &Fault{Addr: va, Size: size, Kind: AccessWrite, OOB: true}
	}
	if _, ok := as.index(va + uint64(size) - 1); !ok {
		return &Fault{Addr: va + uint64(size) - 1, Size: size, Kind: AccessWrite, OOB: true}
	}
	as.setPerm(va, size, perm)
	return nil
}

// PermAt returns the permissions of the page containing va.
func (as *AddressSpace) PermAt(va uint64) (Perm, bool) {
	i, ok := as.index(va)
	if !ok {
		return 0, false
	}
	return as.perms[i/PageSize], true
}

// Regions returns the named allocations.
func (as *AddressSpace) Regions() []Region {
	out := make([]Region, len(as.regions))
	copy(out, as.regions)
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// RegionFor returns the region containing va, for diagnostics.
func (as *AddressSpace) RegionFor(va uint64) (Region, bool) {
	for _, r := range as.regions {
		if va >= r.Addr && va < r.Addr+uint64(r.Size) {
			return r, true
		}
	}
	return Region{}, false
}

// check verifies an access, returning a Fault on violation.
func (as *AddressSpace) check(va uint64, size int, kind AccessKind) error {
	i, ok := as.index(va)
	if !ok {
		return &Fault{Addr: va, Size: size, Kind: kind, OOB: true}
	}
	if size <= 0 {
		return nil
	}
	if _, ok := as.index(va + uint64(size) - 1); !ok {
		return &Fault{Addr: va, Size: size, Kind: kind, OOB: true}
	}
	var want Perm
	switch kind {
	case AccessRead:
		want = PermR
	case AccessWrite:
		want = PermW
	case AccessExec:
		want = PermX
	}
	first := i / PageSize
	last := (i + size - 1) / PageSize
	for p := first; p <= last; p++ {
		if as.perms[p]&want == 0 {
			return &Fault{Addr: va, Size: size, Kind: kind, Perm: as.perms[p]}
		}
	}
	return nil
}

// ReadBytes copies size bytes at va into a fresh slice.
func (as *AddressSpace) ReadBytes(va uint64, size int) ([]byte, error) {
	if err := as.check(va, size, AccessRead); err != nil {
		return nil, err
	}
	i, _ := as.index(va)
	as.ensure(i + size)
	out := make([]byte, size)
	copy(out, as.data[i:i+size])
	return out, nil
}

// View returns a slice aliasing the underlying storage for [va, va+size).
// Callers must treat it as ephemeral — the next Alloc may remap the
// backing; it is used by the NIC DMA path and the VM fetch path to avoid
// copying.
func (as *AddressSpace) View(va uint64, size int) ([]byte, error) {
	if err := as.check(va, size, AccessRead); err != nil {
		return nil, err
	}
	i, _ := as.index(va)
	as.ensure(i + size)
	return as.data[i : i+size : i+size], nil
}

// ViewMut returns a writable slice aliasing [va, va+size), checking the
// page write permission. Ephemeral like View: not valid across an Alloc.
func (as *AddressSpace) ViewMut(va uint64, size int) ([]byte, error) {
	if err := as.check(va, size, AccessWrite); err != nil {
		return nil, err
	}
	i, _ := as.index(va)
	as.ensure(i + size)
	return as.data[i : i+size : i+size], nil
}

// ViewDMA returns a slice aliasing [va, va+size) ignoring page
// permissions, as a NIC's DMA engine does. Like View the slice is
// ephemeral: it must not be held across an Alloc. It exists so hot
// receive paths (signal polling, frame parsing) read frames without
// copying.
func (as *AddressSpace) ViewDMA(va uint64, size int) ([]byte, error) {
	i, ok := as.index(va)
	if !ok || size < 0 || i+size > as.capacity {
		return nil, &Fault{Addr: va, Size: size, Kind: AccessRead, OOB: true}
	}
	as.ensure(i + size)
	return as.data[i : i+size : i+size], nil
}

// WriteBytes stores b at va, honouring page permissions.
func (as *AddressSpace) WriteBytes(va uint64, b []byte) error {
	if err := as.check(va, len(b), AccessWrite); err != nil {
		return err
	}
	i, _ := as.index(va)
	as.ensure(i + len(b))
	copy(as.data[i:], b)
	return nil
}

// WriteBytesDMA stores b at va ignoring page permissions, as a NIC's DMA
// engine does: RDMA access control is the rkey check, performed by the
// simnet layer before delivery, not the CPU page tables.
func (as *AddressSpace) WriteBytesDMA(va uint64, b []byte) error {
	i, ok := as.index(va)
	if !ok || i+len(b) > as.capacity {
		return &Fault{Addr: va, Size: len(b), Kind: AccessWrite, OOB: true}
	}
	as.ensure(i + len(b))
	copy(as.data[i:], b)
	return nil
}

// ReadBytesDMA reads ignoring page permissions (RDMA read path).
func (as *AddressSpace) ReadBytesDMA(va uint64, size int) ([]byte, error) {
	i, ok := as.index(va)
	if !ok || size < 0 || i+size > as.capacity {
		return nil, &Fault{Addr: va, Size: size, Kind: AccessRead, OOB: true}
	}
	as.ensure(i + size)
	out := make([]byte, size)
	copy(out, as.data[i:i+size])
	return out, nil
}

// Typed accessors. All are little-endian, matching the JAM encoding.
//
// Each has a fast path for the overwhelmingly common access: inside the
// mapped prefix, not straddling a page, page permission granted. The
// conditions imply exactly what check()+ensure() would established, so
// results are bit-identical; anything else (unmapped tail growth, page
// straddles, faults) takes the original path.

// fastIdx returns the data index for a size-byte access at va when the
// whole access stays within one page of the already-mapped prefix and
// the page grants want; ok=false falls back to the checked slow path.
func (as *AddressSpace) fastIdx(va uint64, size int, want Perm) (int, bool) {
	i := va - Base
	if va < Base || i+uint64(size) > uint64(len(as.data)) {
		return 0, false
	}
	if i&(PageSize-1) > PageSize-uint64(size) {
		return 0, false // straddles a page boundary
	}
	if as.perms[i/PageSize]&want == 0 {
		return 0, false
	}
	return int(i), true
}

// FastRead64 is the single-shot inlinable variant of ReadU64's fast
// path for hot interpreter/JIT loops: ok=false means the caller must
// take ReadU64 (checked) to get the value or the exact fault. The
// guards mirror fastIdx(va, 8, PermR) verbatim.
func (as *AddressSpace) FastRead64(va uint64) (uint64, bool) {
	i := va - Base
	if va < Base || i+8 > uint64(len(as.data)) ||
		i&(PageSize-1) > PageSize-8 || as.perms[i/PageSize]&PermR == 0 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(as.data[i:]), true
}

// FastSpan returns a direct window over [va, va+n) when the whole span
// lies in one page of the mapped prefix with want granted — the bulk
// form of FastRead64/FastWrite64 for register-save/restore sequences.
// nil means the caller must fall back to per-word checked accesses.
func (as *AddressSpace) FastSpan(va uint64, n int, want Perm) []byte {
	i := va - Base
	if va < Base || i+uint64(n) > uint64(len(as.data)) ||
		i&(PageSize-1) > PageSize-uint64(n) || as.perms[i/PageSize]&want == 0 {
		return nil
	}
	return as.data[i : i+uint64(n)]
}

// FastWrite64 is the store-side twin of FastRead64; ok=false means the
// caller must take WriteU64 for the checked outcome.
func (as *AddressSpace) FastWrite64(va uint64, v uint64) bool {
	i := va - Base
	if va < Base || i+8 > uint64(len(as.data)) ||
		i&(PageSize-1) > PageSize-8 || as.perms[i/PageSize]&PermW == 0 {
		return false
	}
	binary.LittleEndian.PutUint64(as.data[i:], v)
	return true
}

func (as *AddressSpace) ReadU8(va uint64) (uint64, error) {
	if i, ok := as.fastIdx(va, 1, PermR); ok {
		return uint64(as.data[i]), nil
	}
	return as.readU8Slow(va)
}

func (as *AddressSpace) readU8Slow(va uint64) (uint64, error) {
	if err := as.check(va, 1, AccessRead); err != nil {
		return 0, err
	}
	i, _ := as.index(va)
	if i+1 > len(as.data) {
		as.ensure(i + 1)
	}
	return uint64(as.data[i]), nil
}

func (as *AddressSpace) ReadU16(va uint64) (uint64, error) {
	if i, ok := as.fastIdx(va, 2, PermR); ok {
		return uint64(binary.LittleEndian.Uint16(as.data[i:])), nil
	}
	return as.readU16Slow(va)
}

func (as *AddressSpace) readU16Slow(va uint64) (uint64, error) {
	if err := as.check(va, 2, AccessRead); err != nil {
		return 0, err
	}
	i, _ := as.index(va)
	if i+2 > len(as.data) {
		as.ensure(i + 2)
	}
	return uint64(binary.LittleEndian.Uint16(as.data[i:])), nil
}

func (as *AddressSpace) ReadU32(va uint64) (uint64, error) {
	if i, ok := as.fastIdx(va, 4, PermR); ok {
		return uint64(binary.LittleEndian.Uint32(as.data[i:])), nil
	}
	return as.readU32Slow(va)
}

func (as *AddressSpace) readU32Slow(va uint64) (uint64, error) {
	if err := as.check(va, 4, AccessRead); err != nil {
		return 0, err
	}
	i, _ := as.index(va)
	if i+4 > len(as.data) {
		as.ensure(i + 4)
	}
	return uint64(binary.LittleEndian.Uint32(as.data[i:])), nil
}

func (as *AddressSpace) ReadU64(va uint64) (uint64, error) {
	if i, ok := as.fastIdx(va, 8, PermR); ok {
		return binary.LittleEndian.Uint64(as.data[i:]), nil
	}
	return as.readU64Slow(va)
}

func (as *AddressSpace) readU64Slow(va uint64) (uint64, error) {
	if err := as.check(va, 8, AccessRead); err != nil {
		return 0, err
	}
	i, _ := as.index(va)
	if i+8 > len(as.data) {
		as.ensure(i + 8)
	}
	return binary.LittleEndian.Uint64(as.data[i:]), nil
}

func (as *AddressSpace) WriteU8(va uint64, v uint64) error {
	if i, ok := as.fastIdx(va, 1, PermW); ok {
		as.data[i] = byte(v)
		return nil
	}
	return as.writeU8Slow(va, v)
}

func (as *AddressSpace) writeU8Slow(va uint64, v uint64) error {
	if err := as.check(va, 1, AccessWrite); err != nil {
		return err
	}
	i, _ := as.index(va)
	if i+1 > len(as.data) {
		as.ensure(i + 1)
	}
	as.data[i] = byte(v)
	return nil
}

func (as *AddressSpace) WriteU16(va uint64, v uint64) error {
	if i, ok := as.fastIdx(va, 2, PermW); ok {
		binary.LittleEndian.PutUint16(as.data[i:], uint16(v))
		return nil
	}
	return as.writeU16Slow(va, v)
}

func (as *AddressSpace) writeU16Slow(va uint64, v uint64) error {
	if err := as.check(va, 2, AccessWrite); err != nil {
		return err
	}
	i, _ := as.index(va)
	if i+2 > len(as.data) {
		as.ensure(i + 2)
	}
	binary.LittleEndian.PutUint16(as.data[i:], uint16(v))
	return nil
}

func (as *AddressSpace) WriteU32(va uint64, v uint64) error {
	if i, ok := as.fastIdx(va, 4, PermW); ok {
		binary.LittleEndian.PutUint32(as.data[i:], uint32(v))
		return nil
	}
	return as.writeU32Slow(va, v)
}

func (as *AddressSpace) writeU32Slow(va uint64, v uint64) error {
	if err := as.check(va, 4, AccessWrite); err != nil {
		return err
	}
	i, _ := as.index(va)
	if i+4 > len(as.data) {
		as.ensure(i + 4)
	}
	binary.LittleEndian.PutUint32(as.data[i:], uint32(v))
	return nil
}

func (as *AddressSpace) WriteU64(va uint64, v uint64) error {
	if i, ok := as.fastIdx(va, 8, PermW); ok {
		binary.LittleEndian.PutUint64(as.data[i:], v)
		return nil
	}
	return as.writeU64Slow(va, v)
}

func (as *AddressSpace) writeU64Slow(va uint64, v uint64) error {
	if err := as.check(va, 8, AccessWrite); err != nil {
		return err
	}
	i, _ := as.index(va)
	if i+8 > len(as.data) {
		as.ensure(i + 8)
	}
	binary.LittleEndian.PutUint64(as.data[i:], v)
	return nil
}

// FetchCheck verifies that [va, va+size) is executable.
func (as *AddressSpace) FetchCheck(va uint64, size int) error {
	return as.check(va, size, AccessExec)
}

// ReadCString reads a NUL-terminated string starting at va, up to max bytes.
func (as *AddressSpace) ReadCString(va uint64, max int) (string, error) {
	out := make([]byte, 0, 32)
	for n := 0; n < max; n++ {
		b, err := as.ReadU8(va + uint64(n))
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, byte(b))
	}
	return string(out), fmt.Errorf("mem: unterminated string at 0x%x", va)
}
