package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	as := NewAddressSpace(1 << 20)
	a, err := as.Alloc("a", 100, 8, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if a < Base {
		t.Fatalf("alloc below base: 0x%x", a)
	}
	b, err := as.Alloc("b", 100, 64, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if b%64 != 0 {
		t.Fatalf("alignment violated: 0x%x", b)
	}
	if b < a+100 {
		t.Fatalf("regions overlap: a=0x%x b=0x%x", a, b)
	}
}

func TestAllocExhaustion(t *testing.T) {
	as := NewAddressSpace(PageSize * 4)
	if _, err := as.Alloc("big", PageSize*8, 8, PermRW); err == nil {
		t.Fatal("oversized alloc succeeded")
	}
}

func TestAllocRejectsNonPositive(t *testing.T) {
	as := NewAddressSpace(1 << 16)
	if _, err := as.Alloc("zero", 0, 8, PermRW); err == nil {
		t.Fatal("zero-size alloc succeeded")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	as := NewAddressSpace(1 << 20)
	va, _ := as.Alloc("buf", 256, 8, PermRW)
	f := func(v uint64, off uint8) bool {
		a := va + uint64(off%200)
		if err := as.WriteU64(a, v); err != nil {
			return false
		}
		got, err := as.ReadU64(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypedWidths(t *testing.T) {
	as := NewAddressSpace(1 << 16)
	va, _ := as.Alloc("w", 64, 8, PermRW)
	if err := as.WriteU64(va, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU8(va); v != 0x88 {
		t.Fatalf("u8 = %#x", v)
	}
	if v, _ := as.ReadU16(va); v != 0x7788 {
		t.Fatalf("u16 = %#x", v)
	}
	if v, _ := as.ReadU32(va); v != 0x55667788 {
		t.Fatalf("u32 = %#x", v)
	}
	if err := as.WriteU16(va+8, 0xABCD); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU16(va + 8); v != 0xABCD {
		t.Fatalf("u16 rt = %#x", v)
	}
	if err := as.WriteU32(va+16, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU32(va + 16); v != 0xDEADBEEF {
		t.Fatalf("u32 rt = %#x", v)
	}
	if err := as.WriteU8(va+24, 0x7F); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.ReadU8(va + 24); v != 0x7F {
		t.Fatalf("u8 rt = %#x", v)
	}
}

func TestNullDerefFaults(t *testing.T) {
	as := NewAddressSpace(1 << 16)
	_, err := as.ReadU64(0)
	var f *Fault
	if !errors.As(err, &f) || !f.OOB {
		t.Fatalf("null read: %v", err)
	}
	if err := as.WriteU64(8, 1); err == nil {
		t.Fatal("null write succeeded")
	}
}

func TestPermissionEnforcement(t *testing.T) {
	as := NewAddressSpace(1 << 20)
	ro, _ := as.AllocPages("ro", PageSize, PermR)
	if err := as.WriteU64(ro, 1); err == nil {
		t.Fatal("write to read-only page succeeded")
	}
	var f *Fault
	err := as.WriteU64(ro, 1)
	if !errors.As(err, &f) || f.Kind != AccessWrite || f.OOB {
		t.Fatalf("fault detail: %v", err)
	}
	wo, _ := as.AllocPages("nx", PageSize, PermRW)
	if err := as.FetchCheck(wo, 8); err == nil {
		t.Fatal("exec of non-X page succeeded")
	}
	if err := as.Protect(wo, PageSize, PermRWX); err != nil {
		t.Fatal(err)
	}
	if err := as.FetchCheck(wo, 8); err != nil {
		t.Fatalf("exec after Protect: %v", err)
	}
}

func TestCrossPagePermCheck(t *testing.T) {
	as := NewAddressSpace(1 << 20)
	va, _ := as.AllocPages("two", 2*PageSize, PermRW)
	// Make the second page read-only; a write spanning both must fault.
	if err := as.Protect(va+PageSize, PageSize, PermR); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteBytes(va+PageSize-4, make([]byte, 8)); err == nil {
		t.Fatal("cross-page write into RO page succeeded")
	}
	// Reads spanning both are fine.
	if _, err := as.ReadBytes(va+PageSize-4, 8); err != nil {
		t.Fatalf("cross-page read: %v", err)
	}
}

func TestDMABypassesPagePerms(t *testing.T) {
	as := NewAddressSpace(1 << 20)
	ro, _ := as.AllocPages("ro", PageSize, PermR)
	payload := []byte{1, 2, 3, 4}
	if err := as.WriteBytesDMA(ro, payload); err != nil {
		t.Fatalf("DMA write: %v", err)
	}
	got, err := as.ReadBytesDMA(ro, 4)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("DMA read: %v %v", got, err)
	}
	// But DMA still cannot escape the mapped range.
	if err := as.WriteBytesDMA(as.End(), payload); err == nil {
		t.Fatal("DMA write past end succeeded")
	}
}

func TestViewAliasesStorage(t *testing.T) {
	as := NewAddressSpace(1 << 16)
	va, _ := as.Alloc("v", 64, 8, PermRW)
	if err := as.WriteU64(va, 42); err != nil {
		t.Fatal(err)
	}
	view, err := as.View(va, 8)
	if err != nil {
		t.Fatal(err)
	}
	view[0] = 43
	if v, _ := as.ReadU64(va); v != 43 {
		t.Fatalf("view write not visible: %d", v)
	}
}

func TestRegionsAndLookup(t *testing.T) {
	as := NewAddressSpace(1 << 20)
	va, _ := as.Alloc("named", 128, 8, PermRW)
	r, ok := as.RegionFor(va + 64)
	if !ok || r.Name != "named" {
		t.Fatalf("RegionFor: %+v %v", r, ok)
	}
	if _, ok := as.RegionFor(va + 4096*100); ok {
		t.Fatal("RegionFor hit unmapped address")
	}
	regs := as.Regions()
	if len(regs) != 1 || regs[0].Name != "named" {
		t.Fatalf("Regions: %+v", regs)
	}
}

func TestReadCString(t *testing.T) {
	as := NewAddressSpace(1 << 16)
	va, _ := as.Alloc("s", 32, 8, PermRW)
	if err := as.WriteBytes(va, append([]byte("hello"), 0)); err != nil {
		t.Fatal(err)
	}
	s, err := as.ReadCString(va, 32)
	if err != nil || s != "hello" {
		t.Fatalf("ReadCString = %q, %v", s, err)
	}
	// Unterminated.
	full := bytes.Repeat([]byte{'x'}, 16)
	if err := as.WriteBytes(va, full); err != nil {
		t.Fatal(err)
	}
	if _, err := as.ReadCString(va, 8); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestPermString(t *testing.T) {
	if PermRWX.String() != "rwx" || PermR.String() != "r--" || Perm(0).String() != "---" {
		t.Fatal("Perm.String wrong")
	}
}

func TestWriteBytesBoundary(t *testing.T) {
	as := NewAddressSpace(PageSize)
	va, err := as.Alloc("all", PageSize-int(Base%PageSize), 8, PermRW)
	if err != nil {
		// Capacity may not fit after base offset; allocate less.
		va, err = as.Alloc("small", 64, 8, PermRW)
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = va
	// Writing past the end must fail cleanly.
	if err := as.WriteBytes(as.End()-4, make([]byte, 8)); err == nil {
		t.Fatal("write past end succeeded")
	}
}
