// Package asm implements the Two-Chains assembler: it translates JAM
// assembly source into relocatable elfobj objects, playing the role of GNU
// as in the paper's toolchain.
//
// Syntax overview (one statement per line, ';', '#' or '//' comments):
//
//	.text / .rodata / .data / .bss   select the active section
//	.global NAME                     export NAME
//	.extern NAME                     declare an undefined external symbol
//	label:                           define a symbol at the current offset
//	.align N                         pad section to N-byte alignment
//	.pad N                           pad .text with NOPs to N total bytes
//	.byte/.half/.word/.quad VALUES   emit data (quad accepts symbol names,
//	                                 producing RelAbs64 relocations)
//	.asciz "s" / .ascii "s"          emit a string (with/without NUL)
//	.space N                         emit N zero bytes (.bss: reserve)
//
// Instructions use the mnemonics of internal/isa. Registers are r0..r15
// with aliases lr (r14) and sp (r15). Memory operands are [rN], [rN+imm],
// [rN-imm]. Branch and call targets are labels defined in the same file;
// external functions must be called through the GOT with callg, matching
// the -fno-plt discipline of the paper's build flow.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"twochains/internal/elfobj"
	"twochains/internal/isa"
)

// Error is an assembly diagnostic with source position.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

type section struct {
	id   elfobj.SectionID
	data []byte
	size int // for bss, bytes reserved
}

type pendingInstr struct {
	line    int
	in      isa.Instr
	off     int    // byte offset in .text
	refKind refK   // what the symbol operand means
	refSym  string // symbol operand, if any
}

type refK int

const (
	refNone refK = iota
	refBranch
	refCall
	refLea
	refGot
)

type asmState struct {
	file   string
	cur    *section
	text   section
	rodata section
	data   section
	bss    section
	labels map[string]struct {
		sec elfobj.SectionID
		off int
	}
	globals map[string]bool
	externs map[string]bool
	instrs  []pendingInstr
	dataRel []struct {
		line   int
		sec    elfobj.SectionID
		off    int
		sym    string
		addend int32
	}
	labelOrder []string
}

// Assemble translates src into a relocatable object named name.
func Assemble(name, src string) (*elfobj.Object, error) {
	st := &asmState{
		file:   name,
		text:   section{id: elfobj.SecText},
		rodata: section{id: elfobj.SecRodata},
		data:   section{id: elfobj.SecData},
		bss:    section{id: elfobj.SecBss},
		labels: map[string]struct {
			sec elfobj.SectionID
			off int
		}{},
		globals: map[string]bool{},
		externs: map[string]bool{},
	}
	st.cur = &st.text

	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		if err := st.doLine(line, raw); err != nil {
			return nil, err
		}
	}
	return st.finish()
}

func (st *asmState) errf(line int, format string, args ...any) error {
	return &Error{File: st.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func stripComment(s string) string {
	// Respect quotes so ';' inside strings survives.
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' && (i == 0 || s[i-1] != '\\') {
			inStr = !inStr
		}
		if inStr {
			continue
		}
		if c == ';' || c == '#' {
			return s[:i]
		}
		if c == '/' && i+1 < len(s) && s[i+1] == '/' {
			return s[:i]
		}
	}
	return s
}

func (st *asmState) doLine(line int, raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}
	// Labels (possibly followed by more on the same line).
	for {
		idx := strings.Index(s, ":")
		if idx < 0 {
			break
		}
		head := strings.TrimSpace(s[:idx])
		if !isIdent(head) {
			break
		}
		if err := st.defineLabel(line, head); err != nil {
			return err
		}
		s = strings.TrimSpace(s[idx+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return st.doDirective(line, s)
	}
	return st.doInstr(line, s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (st *asmState) defineLabel(line int, name string) error {
	if _, dup := st.labels[name]; dup {
		return st.errf(line, "label %q redefined", name)
	}
	off := len(st.cur.data)
	if st.cur.id == elfobj.SecBss {
		off = st.cur.size
	}
	st.labels[name] = struct {
		sec elfobj.SectionID
		off int
	}{st.cur.id, off}
	st.labelOrder = append(st.labelOrder, name)
	return nil
}

func (st *asmState) doDirective(line int, s string) error {
	fields := splitOperands(s)
	dir := fields[0]
	args := fields[1:]
	switch dir {
	case ".text":
		st.cur = &st.text
	case ".rodata":
		st.cur = &st.rodata
	case ".data":
		st.cur = &st.data
	case ".bss":
		st.cur = &st.bss
	case ".global", ".globl":
		if len(args) != 1 || !isIdent(args[0]) {
			return st.errf(line, "%s wants one symbol", dir)
		}
		st.globals[args[0]] = true
	case ".extern":
		if len(args) != 1 || !isIdent(args[0]) {
			return st.errf(line, ".extern wants one symbol")
		}
		st.externs[args[0]] = true
	case ".align":
		n, err := parseInt(args, 0)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return st.errf(line, ".align wants a positive power of two")
		}
		st.padTo(alignUp(st.curSize(), int(n)))
	case ".pad":
		n, err := parseInt(args, 0)
		if err != nil || n < 0 {
			return st.errf(line, ".pad wants a byte count")
		}
		if st.cur.id != elfobj.SecText {
			return st.errf(line, ".pad is only valid in .text")
		}
		if int(n)%isa.InstrSize != 0 {
			return st.errf(line, ".pad target %d not instruction aligned", n)
		}
		if len(st.text.data) > int(n) {
			return st.errf(line, ".pad target %d smaller than current text size %d", n, len(st.text.data))
		}
		for len(st.text.data) < int(n) {
			st.text.data = append(st.text.data, isa.Instr{Op: isa.NOP}.Bytes()...)
		}
	case ".byte", ".half", ".word", ".quad":
		return st.doEmit(line, dir, args)
	case ".ascii", ".asciz":
		return st.doString(line, dir, s)
	case ".space":
		n, err := parseInt(args, 0)
		if err != nil || n < 0 {
			return st.errf(line, ".space wants a byte count")
		}
		if st.cur.id == elfobj.SecBss {
			st.cur.size += int(n)
		} else {
			st.cur.data = append(st.cur.data, make([]byte, n)...)
		}
	default:
		return st.errf(line, "unknown directive %s", dir)
	}
	return nil
}

func (st *asmState) curSize() int {
	if st.cur.id == elfobj.SecBss {
		return st.cur.size
	}
	return len(st.cur.data)
}

func (st *asmState) padTo(n int) {
	if st.cur.id == elfobj.SecBss {
		if st.cur.size < n {
			st.cur.size = n
		}
		return
	}
	for len(st.cur.data) < n {
		st.cur.data = append(st.cur.data, 0)
	}
}

func alignUp(v, a int) int { return (v + a - 1) / a * a }

func (st *asmState) doEmit(line int, dir string, args []string) error {
	if st.cur.id == elfobj.SecBss {
		return st.errf(line, "%s not allowed in .bss", dir)
	}
	width := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".quad": 8}[dir]
	for _, a := range args {
		if v, err := parseNum(a); err == nil {
			for i := 0; i < width; i++ {
				st.cur.data = append(st.cur.data, byte(uint64(v)>>(8*i)))
			}
			continue
		}
		if isIdent(a) {
			if width != 8 {
				return st.errf(line, "symbol reference requires .quad, got %s", dir)
			}
			st.dataRel = append(st.dataRel, struct {
				line   int
				sec    elfobj.SectionID
				off    int
				sym    string
				addend int32
			}{line, st.cur.id, len(st.cur.data), a, 0})
			st.cur.data = append(st.cur.data, make([]byte, 8)...)
			continue
		}
		return st.errf(line, "bad %s operand %q", dir, a)
	}
	return nil
}

func (st *asmState) doString(line int, dir, full string) error {
	if st.cur.id == elfobj.SecBss {
		return st.errf(line, "%s not allowed in .bss", dir)
	}
	i := strings.Index(full, "\"")
	j := strings.LastIndex(full, "\"")
	if i < 0 || j <= i {
		return st.errf(line, "%s wants a quoted string", dir)
	}
	unq, err := strconv.Unquote(full[i : j+1])
	if err != nil {
		return st.errf(line, "bad string literal: %v", err)
	}
	st.cur.data = append(st.cur.data, unq...)
	if dir == ".asciz" {
		st.cur.data = append(st.cur.data, 0)
	}
	return nil
}

// splitOperands splits "op a, b, c" into ["op", "a", "b", "c"],
// keeping bracketed memory operands intact.
func splitOperands(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	sp := strings.IndexAny(s, " \t")
	if sp < 0 {
		return []string{s}
	}
	out = append(out, s[:sp])
	rest := strings.TrimSpace(s[sp+1:])
	if rest == "" {
		return out
	}
	for _, part := range strings.Split(rest, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

func parseReg(s string) (uint8, bool) {
	switch s {
	case "sp":
		return isa.RegSP, true
	case "lr":
		return isa.RegLR, true
	}
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, false
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, false
	}
	return uint8(n), true
}

func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		unq, err := strconv.Unquote(s)
		if err != nil || len(unq) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return int64(unq[0]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}

func parseInt(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing operand")
	}
	return parseNum(args[i])
}

// parseMem parses "[rN]", "[rN+k]", "[rN-k]".
func parseMem(s string) (reg uint8, off int32, ok bool) {
	if len(s) < 3 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, false
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	regPart, offPart := inner, ""
	if sep > 0 {
		regPart, offPart = inner[:sep], inner[sep:]
	}
	r, rok := parseReg(strings.TrimSpace(regPart))
	if !rok {
		return 0, 0, false
	}
	if offPart == "" {
		return r, 0, true
	}
	v, err := parseNum(offPart)
	if err != nil {
		return 0, 0, false
	}
	return r, int32(v), true
}

func (st *asmState) doInstr(line int, s string) error {
	if st.cur.id != elfobj.SecText {
		return st.errf(line, "instruction outside .text")
	}
	fields := splitOperands(s)
	op, ok := isa.ByName(fields[0])
	if !ok {
		return st.errf(line, "unknown mnemonic %q", fields[0])
	}
	info, _ := isa.Lookup(op)
	args := fields[1:]
	in := isa.Instr{Op: op}
	ref := refNone
	refSym := ""

	need := func(n int) error {
		if len(args) != n {
			return st.errf(line, "%s wants %d operands, got %d", info.Name, n, len(args))
		}
		return nil
	}
	reg := func(i int) (uint8, error) {
		r, ok := parseReg(args[i])
		if !ok {
			return 0, st.errf(line, "%s: bad register %q", info.Name, args[i])
		}
		return r, nil
	}

	var err error
	switch info.Kind {
	case isa.OperNone:
		err = need(0)
	case isa.OperRdImm:
		if err = need(2); err == nil {
			if in.Rd, err = reg(0); err == nil {
				if v, e := parseNum(args[1]); e == nil {
					in.Imm = int32(v)
				} else if op == isa.LEA && isIdent(args[1]) {
					ref, refSym = refLea, args[1]
				} else {
					err = st.errf(line, "%s: bad immediate %q", info.Name, args[1])
				}
			}
		}
	case isa.OperRdRs1:
		if err = need(2); err == nil {
			if in.Rd, err = reg(0); err == nil {
				in.Rs1, err = reg(1)
			}
		}
	case isa.OperRdRs1Rs2:
		if err = need(3); err == nil {
			if in.Rd, err = reg(0); err == nil {
				if in.Rs1, err = reg(1); err == nil {
					in.Rs2, err = reg(2)
				}
			}
		}
	case isa.OperRdRs1Imm:
		if err = need(3); err == nil {
			if in.Rd, err = reg(0); err == nil {
				if in.Rs1, err = reg(1); err == nil {
					v, e := parseNum(args[2])
					if e != nil {
						err = st.errf(line, "%s: bad immediate %q", info.Name, args[2])
					} else {
						in.Imm = int32(v)
					}
				}
			}
		}
	case isa.OperMemLoad, isa.OperMemStore:
		if err = need(2); err == nil {
			if in.Rd, err = reg(0); err == nil {
				r, off, ok := parseMem(args[1])
				if !ok {
					err = st.errf(line, "%s: bad memory operand %q", info.Name, args[1])
				} else {
					in.Rs1, in.Imm = r, off
				}
			}
		}
	case isa.OperBranch:
		if err = need(3); err == nil {
			if in.Rs1, err = reg(0); err == nil {
				if in.Rs2, err = reg(1); err == nil {
					if isIdent(args[2]) {
						ref, refSym = refBranch, args[2]
					} else if v, e := parseNum(args[2]); e == nil {
						in.Imm = int32(v)
					} else {
						err = st.errf(line, "%s: bad target %q", info.Name, args[2])
					}
				}
			}
		}
	case isa.OperJump:
		if err = need(1); err == nil {
			if isIdent(args[0]) {
				if op == isa.CALL {
					ref, refSym = refCall, args[0]
				} else {
					ref, refSym = refBranch, args[0]
				}
			} else if v, e := parseNum(args[0]); e == nil {
				in.Imm = int32(v)
			} else {
				err = st.errf(line, "%s: bad target %q", info.Name, args[0])
			}
		}
	case isa.OperCallReg:
		if err = need(1); err == nil {
			in.Rs1, err = reg(0)
		}
	case isa.OperGotCall:
		if err = need(1); err == nil {
			if !isIdent(args[0]) {
				err = st.errf(line, "%s: bad symbol %q", info.Name, args[0])
			} else {
				ref, refSym = refGot, args[0]
			}
		}
	case isa.OperGotLoad:
		if err = need(2); err == nil {
			if in.Rd, err = reg(0); err == nil {
				if !isIdent(args[1]) {
					err = st.errf(line, "%s: bad symbol %q", info.Name, args[1])
				} else {
					ref, refSym = refGot, args[1]
				}
			}
		}
	}
	if err != nil {
		return err
	}

	st.instrs = append(st.instrs, pendingInstr{
		line: line, in: in, off: len(st.text.data), refKind: ref, refSym: refSym,
	})
	st.text.data = append(st.text.data, in.Bytes()...)
	return nil
}

// finish resolves label references and builds the object.
func (st *asmState) finish() (*elfobj.Object, error) {
	o := &elfobj.Object{
		Name:    st.file,
		Text:    st.text.data,
		Rodata:  st.rodata.data,
		Data:    st.data.data,
		BssSize: uint32(st.bss.size),
	}

	symIdx := map[string]int{}
	addSym := func(s elfobj.Symbol) int {
		if i, ok := symIdx[s.Name]; ok {
			return i
		}
		o.Symbols = append(o.Symbols, s)
		symIdx[s.Name] = len(o.Symbols) - 1
		return len(o.Symbols) - 1
	}

	// Defined symbols first, in declaration order.
	for _, name := range st.labelOrder {
		l := st.labels[name]
		bind := elfobj.BindLocal
		if st.globals[name] {
			bind = elfobj.BindGlobal
		}
		kind := elfobj.KindObject
		if l.sec == elfobj.SecText {
			kind = elfobj.KindFunc
		}
		addSym(elfobj.Symbol{Name: name, Section: l.sec, Binding: bind, Kind: kind, Value: uint32(l.off)})
	}
	// Globals that were exported but never defined are an error.
	for g := range st.globals {
		if _, ok := st.labels[g]; !ok {
			return nil, &Error{File: st.file, Line: 0, Msg: fmt.Sprintf(".global %s never defined", g)}
		}
	}
	// Externs.
	for e := range st.externs {
		if _, ok := st.labels[e]; ok {
			return nil, &Error{File: st.file, Line: 0, Msg: fmt.Sprintf("%s declared .extern but defined locally", e)}
		}
	}

	// Resolve instruction references.
	for _, pi := range st.instrs {
		if pi.refKind == refNone {
			continue
		}
		lbl, defined := st.labels[pi.refSym]
		in := pi.in
		switch pi.refKind {
		case refBranch, refCall:
			if !defined {
				return nil, st.errf(pi.line, "undefined label %q (external functions must use callg)", pi.refSym)
			}
			if lbl.sec != elfobj.SecText {
				return nil, st.errf(pi.line, "branch target %q is not in .text", pi.refSym)
			}
			in.Imm = int32((lbl.off - pi.off) / isa.InstrSize)
		case refLea:
			if !defined {
				return nil, st.errf(pi.line, "lea of undefined symbol %q (use ldg for externals)", pi.refSym)
			}
			// PC-relative byte distance; final layout distance is fixed at
			// link time, so emit a RelLea for the linker.
			si := addSym(symbolFor(st, pi.refSym))
			o.Relocs = append(o.Relocs, elfobj.Reloc{
				Type: elfobj.RelLea, Section: elfobj.SecText,
				Offset: uint32(pi.off), Sym: si,
			})
		case refGot:
			var si int
			if defined {
				si = addSym(symbolFor(st, pi.refSym))
			} else {
				if !st.externs[pi.refSym] {
					return nil, st.errf(pi.line, "GOT reference to %q which is neither defined nor .extern", pi.refSym)
				}
				si = addSym(elfobj.Symbol{Name: pi.refSym, Section: elfobj.SecNone, Binding: elfobj.BindGlobal})
			}
			o.Relocs = append(o.Relocs, elfobj.Reloc{
				Type: elfobj.RelGot, Section: elfobj.SecText,
				Offset: uint32(pi.off), Sym: si,
			})
		}
		in.Encode(o.Text[pi.off:])
	}

	// Data relocations.
	for _, dr := range st.dataRel {
		lbl, defined := st.labels[dr.sym]
		var si int
		if defined {
			_ = lbl
			si = addSym(symbolFor(st, dr.sym))
		} else if st.externs[dr.sym] {
			si = addSym(elfobj.Symbol{Name: dr.sym, Section: elfobj.SecNone, Binding: elfobj.BindGlobal})
		} else {
			return nil, st.errf(dr.line, ".quad of undefined symbol %q", dr.sym)
		}
		o.Relocs = append(o.Relocs, elfobj.Reloc{
			Type: elfobj.RelAbs64, Section: dr.sec,
			Offset: uint32(dr.off), Sym: si, Addend: dr.addend,
		})
	}

	// Remaining externs that were declared but never referenced: keep them
	// out of the symbol table; a reference is what creates the entry.

	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func symbolFor(st *asmState, name string) elfobj.Symbol {
	l := st.labels[name]
	bind := elfobj.BindLocal
	if st.globals[name] {
		bind = elfobj.BindGlobal
	}
	kind := elfobj.KindObject
	if l.sec == elfobj.SecText {
		kind = elfobj.KindFunc
	}
	return elfobj.Symbol{Name: name, Section: l.sec, Binding: bind, Kind: kind, Value: uint32(l.off)}
}
