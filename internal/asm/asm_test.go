package asm

import (
	"strings"
	"testing"

	"twochains/internal/elfobj"
	"twochains/internal/isa"
)

func mustAssemble(t *testing.T, src string) *elfobj.Object {
	t.Helper()
	o, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return o
}

func decode(t *testing.T, o *elfobj.Object) []isa.Instr {
	t.Helper()
	ins, err := isa.DecodeAll(o.Text)
	if err != nil {
		t.Fatal(err)
	}
	return ins
}

func TestBasicInstructions(t *testing.T) {
	o := mustAssemble(t, `
.text
.global f
f:
    movi r0, 42
    addi r1, r0, -1
    add  r2, r0, r1
    mov  r3, r2
    ld   r4, [sp+16]
    st   r4, [r3-8]
    ret
`)
	ins := decode(t, o)
	want := []isa.Instr{
		{Op: isa.MOVI, Rd: 0, Imm: 42},
		{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: -1},
		{Op: isa.ADD, Rd: 2, Rs1: 0, Rs2: 1},
		{Op: isa.MOV, Rd: 3, Rs1: 2},
		{Op: isa.LD, Rd: 4, Rs1: isa.RegSP, Imm: 16},
		{Op: isa.ST, Rd: 4, Rs1: 3, Imm: -8},
		{Op: isa.RET},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instrs, want %d", len(ins), len(want))
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d: %v, want %v", i, ins[i], want[i])
		}
	}
}

func TestBranchResolution(t *testing.T) {
	o := mustAssemble(t, `
.text
f:
loop:
    addi r0, r0, 1
    bne  r0, r1, loop
    jmp  done
    nop
done:
    ret
`)
	ins := decode(t, o)
	if ins[1].Op != isa.BNE || ins[1].Imm != -1 {
		t.Fatalf("bne imm = %d, want -1", ins[1].Imm)
	}
	if ins[2].Op != isa.JMP || ins[2].Imm != 2 {
		t.Fatalf("jmp imm = %d, want 2", ins[2].Imm)
	}
}

func TestCallLocalResolved(t *testing.T) {
	o := mustAssemble(t, `
.text
main:
    call helper
    ret
helper:
    ret
`)
	ins := decode(t, o)
	if ins[0].Op != isa.CALL || ins[0].Imm != 2 {
		t.Fatalf("call imm = %d, want 2", ins[0].Imm)
	}
	// Local calls produce no relocations.
	for _, r := range o.Relocs {
		if r.Type == elfobj.RelCall {
			t.Fatal("local call emitted a relocation")
		}
	}
}

func TestGotReferenceCreatesReloc(t *testing.T) {
	o := mustAssemble(t, `
.text
.extern memcpy
.extern table
f:
    callg memcpy
    ldg   r1, table
    ret
`)
	var gots []elfobj.Reloc
	for _, r := range o.Relocs {
		if r.Type == elfobj.RelGot {
			gots = append(gots, r)
		}
	}
	if len(gots) != 2 {
		t.Fatalf("GOT relocs = %d, want 2", len(gots))
	}
	if o.Symbols[gots[0].Sym].Name != "memcpy" || o.Symbols[gots[0].Sym].Defined() {
		t.Fatalf("first GOT sym: %+v", o.Symbols[gots[0].Sym])
	}
	if o.Symbols[gots[1].Sym].Name != "table" {
		t.Fatalf("second GOT sym: %+v", o.Symbols[gots[1].Sym])
	}
}

func TestGotOfLocalSymbolAllowed(t *testing.T) {
	// A GOT reference to a locally defined global is legal PIC (the loader
	// binds it to the local definition).
	o := mustAssemble(t, `
.text
.global f
f:
    callg g
    ret
.global g
g:
    ret
`)
	found := false
	for _, r := range o.Relocs {
		if r.Type == elfobj.RelGot && o.Symbols[r.Sym].Name == "g" && o.Symbols[r.Sym].Defined() {
			found = true
		}
	}
	if !found {
		t.Fatal("GOT reloc to defined symbol missing")
	}
}

func TestLeaRodata(t *testing.T) {
	o := mustAssemble(t, `
.text
f:
    lea r0, msg
    ret
.rodata
msg:
    .asciz "hi\n"
`)
	if string(o.Rodata) != "hi\n\x00" {
		t.Fatalf("rodata = %q", o.Rodata)
	}
	found := false
	for _, r := range o.Relocs {
		if r.Type == elfobj.RelLea && o.Symbols[r.Sym].Name == "msg" {
			found = true
			if r.Offset != 0 {
				t.Fatalf("lea reloc offset %d", r.Offset)
			}
		}
	}
	if !found {
		t.Fatal("no RelLea emitted")
	}
}

func TestDataDirectives(t *testing.T) {
	o := mustAssemble(t, `
.data
vals:
    .byte 1, 2, 0xFF
    .half 0x1234
    .word 0xDEADBEEF
    .quad -1
.bss
buf:
    .space 128
`)
	want := []byte{1, 2, 0xFF, 0x34, 0x12, 0xEF, 0xBE, 0xAD, 0xDE,
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	if len(o.Data) != len(want) {
		t.Fatalf("data len %d, want %d: % x", len(o.Data), len(want), o.Data)
	}
	for i := range want {
		if o.Data[i] != want[i] {
			t.Fatalf("data[%d] = %#x, want %#x", i, o.Data[i], want[i])
		}
	}
	if o.BssSize != 128 {
		t.Fatalf("bss = %d", o.BssSize)
	}
}

func TestQuadSymbolReloc(t *testing.T) {
	o := mustAssemble(t, `
.text
.global f
f:
    ret
.data
fptr:
    .quad f
`)
	found := false
	for _, r := range o.Relocs {
		if r.Type == elfobj.RelAbs64 && r.Section == elfobj.SecData && o.Symbols[r.Sym].Name == "f" {
			found = true
		}
	}
	if !found {
		t.Fatal("no RelAbs64 for .quad f")
	}
}

func TestPadDirective(t *testing.T) {
	o := mustAssemble(t, `
.text
f:
    ret
.pad 1408
`)
	if len(o.Text) != 1408 {
		t.Fatalf("text = %d bytes, want 1408", len(o.Text))
	}
	ins := decode(t, o)
	if ins[1].Op != isa.NOP || ins[175].Op != isa.NOP {
		t.Fatal("padding is not NOPs")
	}
}

func TestPadErrors(t *testing.T) {
	if _, err := Assemble("t.s", ".text\nf:\nret\nret\n.pad 8\n"); err == nil {
		t.Fatal("shrinkage .pad accepted")
	}
	if _, err := Assemble("t.s", ".data\n.pad 64\n"); err == nil {
		t.Fatal(".pad outside .text accepted")
	}
	if _, err := Assemble("t.s", ".text\n.pad 12\n"); err == nil {
		t.Fatal("misaligned .pad accepted")
	}
}

func TestAlignDirective(t *testing.T) {
	o := mustAssemble(t, `
.rodata
a:
    .byte 1
.align 8
b:
    .quad 2
`)
	if len(o.Rodata) != 16 {
		t.Fatalf("rodata len = %d, want 16", len(o.Rodata))
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("file.s", ".text\nf:\n    bogus r0\n")
	if err == nil {
		t.Fatal("bogus mnemonic accepted")
	}
	if !strings.Contains(err.Error(), "file.s:3") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func TestUndefinedBranchTarget(t *testing.T) {
	_, err := Assemble("t.s", ".text\nf:\n    jmp nowhere\n")
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("undefined branch: %v", err)
	}
}

func TestCallExternRejected(t *testing.T) {
	_, err := Assemble("t.s", ".text\n.extern g\nf:\n    call g\n")
	if err == nil || !strings.Contains(err.Error(), "callg") {
		t.Fatalf("direct call to extern: %v", err)
	}
}

func TestGotUndeclaredRejected(t *testing.T) {
	_, err := Assemble("t.s", ".text\nf:\n    callg mystery\n")
	if err == nil {
		t.Fatal("callg of undeclared symbol accepted")
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	_, err := Assemble("t.s", ".text\nf:\nf:\n    ret\n")
	if err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestGlobalNeverDefinedRejected(t *testing.T) {
	_, err := Assemble("t.s", ".text\n.global ghost\nf:\n    ret\n")
	if err == nil {
		t.Fatal(".global of undefined symbol accepted")
	}
}

func TestExternDefinedLocallyRejected(t *testing.T) {
	_, err := Assemble("t.s", ".text\n.extern f\nf:\n    ret\n")
	if err == nil {
		t.Fatal(".extern of defined symbol accepted")
	}
}

func TestInstructionOutsideTextRejected(t *testing.T) {
	_, err := Assemble("t.s", ".data\n    movi r0, 1\n")
	if err == nil {
		t.Fatal("instruction in .data accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	o := mustAssemble(t, `
; full line comment
# another
// a third
.text
f:  ; trailing comment
    movi r0, 1  # comment
    ret         // comment
.rodata
s:
    .asciz "semi;colon#inside//string"
`)
	if len(o.Text) != 16 {
		t.Fatalf("text = %d", len(o.Text))
	}
	if !strings.Contains(string(o.Rodata), "semi;colon#inside//string") {
		t.Fatalf("rodata = %q", o.Rodata)
	}
}

func TestCharLiteral(t *testing.T) {
	o := mustAssemble(t, ".text\nf:\n    movi r0, 'A'\n    ret\n")
	ins := decode(t, o)
	if ins[0].Imm != 65 {
		t.Fatalf("char literal = %d", ins[0].Imm)
	}
}

func TestLabelAndInstrSameLine(t *testing.T) {
	o := mustAssemble(t, ".text\nf: movi r0, 7\n   ret\n")
	ins := decode(t, o)
	if ins[0].Op != isa.MOVI || ins[0].Imm != 7 {
		t.Fatalf("same-line label+instr: %v", ins[0])
	}
	if o.FindSymbol("f") < 0 {
		t.Fatal("label f missing")
	}
}

func TestGlobalBindingRecorded(t *testing.T) {
	o := mustAssemble(t, ".text\n.global pub\npub:\n    ret\npriv:\n    ret\n")
	pi := o.FindSymbol("pub")
	if o.Symbols[pi].Binding != elfobj.BindGlobal {
		t.Fatal("pub not global")
	}
	vi := o.FindSymbol("priv")
	if o.Symbols[vi].Binding != elfobj.BindLocal {
		t.Fatal("priv not local")
	}
}
