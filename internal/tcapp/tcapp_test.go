package tcapp_test

import (
	"strings"
	"testing"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tc"
	"twochains/internal/tcapp"
)

// TestRegistryShape: the in-tree apps are registered and build.
func TestRegistryShape(t *testing.T) {
	names := tcapp.Names()
	for _, want := range []string{"histo", "kvstore", "tcbench"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("app %q not registered (have %v)", want, names)
		}
	}
	for _, n := range names {
		pkg, err := tcapp.Build(n)
		if err != nil {
			t.Fatalf("build %s: %v", n, err)
		}
		if pkg.Name != n {
			t.Errorf("app %s built package named %s", n, pkg.Name)
		}
		if len(pkg.Jams()) == 0 {
			t.Errorf("app %s has no jams", n)
		}
	}
	if _, err := tcapp.Build("no-such-app"); err == nil {
		t.Error("unknown app built")
	}
}

// TestBuilderCanonicalNames: jam_/ried_ prefixes may be included or
// omitted; both spell the same canonical element.
func TestBuilderCanonicalNames(t *testing.T) {
	src := `
long jam_echo(long* args, byte* usr, long len) {
    return args[0];
}
`
	for _, name := range []string{"echo", "jam_echo"} {
		pkg, err := tcapp.New("echoapp").Func(name, src).Build()
		if err != nil {
			t.Fatalf("Func(%q): %v", name, err)
		}
		if _, ok := pkg.Element("jam_echo"); !ok {
			t.Fatalf("Func(%q): no jam_echo element", name)
		}
	}
}

// TestBuilderErrors: recording errors stick and surface at Build with
// the offending declaration named.
func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *tcapp.Builder
		want string
	}{
		{"emptyName", tcapp.New(""), "name is empty"},
		{"dupFile", tcapp.New("x").Func("a", "long jam_a(long* a, byte* u, long l) { return 0; }").Func("a", "..."), "declared twice"},
		{"badData", tcapp.New("x").Data("kv keys", 8), "not an identifier"},
		{"zeroData", tcapp.New("x").Data("k", 0), "non-positive size"},
		{"noWords", tcapp.New("x").DataWords("k"), "no words"},
		{"noElements", tcapp.New("x"), "no elements"},
	}
	for _, c := range cases {
		_, err := c.b.Build()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	// Duplicate data objects are caught at Build.
	if _, err := tcapp.New("x").Data("k", 8).Data("k", 8).Build(); err == nil ||
		!strings.Contains(err.Error(), "declared twice") {
		t.Errorf("dup data: %v", err)
	}
}

// TestDataObjectsExported: Data/DataWords declarations come out as ried
// exports with the declared sizes and initial values.
func TestDataObjectsExported(t *testing.T) {
	pkg, err := tcapp.Build("kvstore")
	if err != nil {
		t.Fatal(err)
	}
	ried, ok := pkg.Element("ried_kvstore")
	if !ok || ried.Kind != core.ElemRied {
		t.Fatal("no generated ried_kvstore")
	}
	for _, sym := range []string{"kv_keys", "kv_vals", "kv_count"} {
		if _, ok := ried.Ried.FindExport(sym); !ok {
			t.Errorf("ried_kvstore does not export %s", sym)
		}
	}
}

// appRig is a 2-node system with one app installed and per-execution
// observation on the server node.
type appRig struct {
	sys *tc.System
	fns map[string]*tc.Func
}

func newAppRig(t *testing.T, app string, onExec func(ret uint64, err error)) *appRig {
	t.Helper()
	pkg, err := tcapp.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	// Size frames for the largest jam at the payload sizes the tests use.
	frame := 0
	for _, e := range pkg.Jams() {
		need, err := core.InjectedFrameLen(e, 256)
		if err != nil {
			t.Fatal(err)
		}
		if need > frame {
			frame = need
		}
	}
	sys, err := tc.NewSystem(2,
		tc.WithTiming(false),
		tc.WithGeometry(mailbox.Geometry{Banks: 1, Slots: 4, FrameSize: frame}))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InstallPackage(pkg); err != nil {
		t.Fatal(err)
	}
	sys.Node(1).OnExecuted = func(ret uint64, _ sim.Duration, err error) { onExec(ret, err) }
	r := &appRig{sys: sys, fns: map[string]*tc.Func{}}
	for _, e := range pkg.Jams() {
		fn, err := sys.Func(0, app, e.Name)
		if err != nil {
			t.Fatal(err)
		}
		r.fns[e.Name] = fn
	}
	return r
}

// call sends one element (injected or local) and drains the simulation
// so executions land in issue order.
func (r *appRig) call(t *testing.T, elem string, args [2]uint64, usr []byte, local bool) {
	t.Helper()
	opts := []tc.CallOpt{tc.Payload(usr)}
	if local {
		opts = append(opts, tc.Local())
	}
	if _, err := r.fns[elem].Call(1, args, opts...).Await(); err != nil {
		t.Fatalf("%s: %v", elem, err)
	}
	r.sys.Run()
}

// step is one scripted operation of an oracle equivalence run.
type step struct {
	elem string
	args [2]uint64
	usr  []byte
}

// kvScript exercises insert, overwrite, hit, miss, and scans crossing
// occupied and empty windows.
func kvScript() []step {
	var s []step
	for _, key := range []uint64{7, 99, 7, 4242, 29999, 99} {
		s = append(s, step{"jam_kv_put", [2]uint64{key, key * 3}, nil})
	}
	s = append(s,
		step{"jam_kv_put", [2]uint64{1000, 0}, nil}, // zero val stores the key
		step{"jam_kv_get", [2]uint64{7, 0}, nil},
		step{"jam_kv_get", [2]uint64{1000, 0}, nil},
		step{"jam_kv_get", [2]uint64{31337, 0}, nil}, // miss
		step{"jam_kv_scan", [2]uint64{0, 127}, nil},
		step{"jam_kv_scan", [2]uint64{16380, 20}, nil}, // wrapping window
	)
	return s
}

// histScript mixes payload bucketing with partial reduces.
func histScript() []step {
	p1 := []byte("histogram me: aaabbbccc")
	p2 := make([]byte, 200)
	for i := range p2 {
		p2[i] = byte(i * 7)
	}
	return []step{
		{"jam_hist_add", [2]uint64{}, p1},
		{"jam_hist_sum", [2]uint64{0, 255}, nil},
		{"jam_hist_add", [2]uint64{}, p2},
		{"jam_hist_sum", [2]uint64{'a', 4}, nil},
		{"jam_hist_sum", [2]uint64{250, 10}, nil}, // wrapping window
	}
}

// runOracleEquivalence drives the script through the simulated fabric
// (both invocation methods) and the native oracle, requiring identical
// return values in execution order.
func runOracleEquivalence(t *testing.T, app string, script []step, local bool) {
	t.Helper()
	a, ok := tcapp.Lookup(app)
	if !ok || a.NewOracle == nil {
		t.Fatalf("app %s has no oracle", app)
	}
	oracle := a.NewOracle()
	var got []uint64
	rig := newAppRig(t, app, func(ret uint64, err error) {
		if err != nil {
			t.Errorf("exec: %v", err)
			return
		}
		got = append(got, ret)
	})
	for _, s := range script {
		rig.call(t, s.elem, s.args, s.usr, local)
	}
	if len(got) != len(script) {
		t.Fatalf("executed %d of %d steps", len(got), len(script))
	}
	for i, s := range script {
		want, err := oracle.Apply(s.elem, s.args, s.usr)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("step %d (%s%v): fabric returned %d, oracle %d",
				i, s.elem, s.args, got[i], want)
		}
	}
}

func TestKVStoreOracleInjected(t *testing.T) { runOracleEquivalence(t, "kvstore", kvScript(), false) }
func TestKVStoreOracleLocal(t *testing.T)    { runOracleEquivalence(t, "kvstore", kvScript(), true) }
func TestHistoOracleInjected(t *testing.T)   { runOracleEquivalence(t, "histo", histScript(), false) }
func TestHistoOracleLocal(t *testing.T)      { runOracleEquivalence(t, "histo", histScript(), true) }

// TestTcbenchOracle: the registered tcbench oracle matches the fabric's
// Server-Side Sum.
func TestTcbenchOracle(t *testing.T) {
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	runOracleEquivalence(t, "tcbench",
		[]step{{"jam_sssum", [2]uint64{}, payload}, {"jam_sssum", [2]uint64{}, payload[:13]}},
		false)
}

// TestKVProbeCollision: keys engineered to collide probe linearly and
// stay distinguishable — the jam and the oracle agree slot by slot.
func TestKVProbeCollision(t *testing.T) {
	// Find three distinct keys with the same hash by brute force.
	base := uint64(1)
	h0 := kvHashMirror(base)
	keys := []uint64{base}
	for k := base + 1; len(keys) < 3; k++ {
		if kvHashMirror(k) == h0 {
			keys = append(keys, k)
		}
	}
	var script []step
	for _, k := range keys {
		script = append(script, step{"jam_kv_put", [2]uint64{k, k + 1}, nil})
	}
	for _, k := range keys {
		script = append(script, step{"jam_kv_get", [2]uint64{k, 0}, nil})
	}
	runOracleEquivalence(t, "kvstore", script, false)
}

// kvHashMirror re-states the kvstore hash for the collision search (the
// app's own mirror is unexported).
func kvHashMirror(key uint64) uint64 {
	h := key * 2654435761
	return (h ^ (h >> 15)) & 16383
}
