// Package tcapp is the application-package authoring layer: a builder
// for composing Two-Chains packages from Go source strings, and a
// by-name registry of the applications shipped in-tree, so workloads
// select packages as data ("kvstore") instead of hard-wiring build
// calls.
//
// # Authoring
//
// A package is a set of canonical elements: jams (mobile active-message
// functions, shipped inside frames) and rieds (relocatable interface
// distributions — the shared library a receiver loads to set up the
// interfaces and data objects the jams operate on). The builder
// assembles both from Go:
//
//	pkg, err := tcapp.New("kvstore").
//		Data("kv_keys", 16384*8).            // zeroed server-side state
//		DataWords("kv_count", 0).            // initialized quads
//		Func("kv_put", kvPutSrc).            // AMC (C subset) jam source
//		Build()                              // compile + link via amcc/linker
//
// Data and DataWords declarations accumulate into a generated
// ried_<app>.rds; Func compiles AMC through the same amcc pipeline the
// paper's C flow uses. FuncAsm/Ried/RiedAsm/Source accept hand-written
// element sources when the generated forms are not enough.
//
// # Authoring rules
//
// A jam may reference: its own locals and arguments (args word pair,
// usr payload pointer and length), the data objects and functions its
// app's rieds export (via extern — bound by the sender against the
// receiver's namespace at injection time), and the receiver-provided
// natives (memcpy, memset, memcmp, memmove, strlen, strcmp, printf,
// puts, abort). It must not reference symbols of other packages: the
// namespace a jam binds against is whatever the receiver has loaded,
// and the only exports an app controls are its own rieds'. Element
// names are canonical: Func("kv_put", ...) defines element "jam_kv_put"
// whose source must define a function of that exact name.
//
// # Oracles
//
// Every in-tree app registers a native oracle: a pure-Go model of one
// node's server-side state whose Apply mirrors each handler execution
// (same element, args, payload => same return value). Equivalence tests
// drive identical traffic through the simulated fabric and the oracle
// and require identical results; new apps should ship one, because it
// is what turns a digest mismatch from "something changed" into "this
// element diverged".
package tcapp

import (
	"fmt"
	"sort"
	"strings"

	"twochains/internal/core"
)

// Builder accumulates the canonical sources of one application package.
// Methods chain; the first recording error sticks and is reported by
// Build, so call sites stay linear.
type Builder struct {
	name  string
	files map[string]string
	data  []dataDef
	err   error
}

// dataDef is one server-side data object destined for the generated
// ried: zeroed space when words is nil, initialized quads otherwise.
type dataDef struct {
	name  string
	space int
	words []uint64
}

// New starts a package named name.
func New(name string) *Builder {
	b := &Builder{name: name, files: map[string]string{}}
	if name == "" {
		b.fail("package name is empty")
	}
	return b
}

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf("tcapp: %s: %s", b.name, fmt.Sprintf(format, args...))
	}
	return b
}

// addFile records one canonical element source.
func (b *Builder) addFile(file, src string) *Builder {
	if b.err != nil {
		return b
	}
	if _, dup := b.files[file]; dup {
		return b.fail("element file %s declared twice", file)
	}
	b.files[file] = src
	return b
}

// canonical prefixes name with prefix unless already present.
func canonical(prefix, name string) string {
	if strings.HasPrefix(name, prefix) {
		return name
	}
	return prefix + name
}

// Func adds a jam written in AMC (the C subset compiled by
// internal/amcc). The element is named jam_<name> (the prefix may be
// included or omitted) and src must define a function of exactly that
// name — the canonical entry-symbol convention of the package format.
func (b *Builder) Func(name, src string) *Builder {
	return b.addFile(canonical("jam_", name)+".amc", src)
}

// FuncAsm adds a jam written in JAM assembly.
func (b *Builder) FuncAsm(name, src string) *Builder {
	return b.addFile(canonical("jam_", name)+".ams", src)
}

// Ried adds a hand-written ried in AMC; module-level object definitions
// become the library's exported data objects.
func (b *Builder) Ried(name, src string) *Builder {
	return b.addFile(canonical("ried_", name)+".rdc", src)
}

// RiedAsm adds a hand-written ried in JAM assembly.
func (b *Builder) RiedAsm(name, src string) *Builder {
	return b.addFile(canonical("ried_", name)+".rds", src)
}

// Source adds one raw canonical element file (jam_*.amc/.ams or
// ried_*.rdc/.rds) — the escape hatch when the typed methods do not
// fit.
func (b *Builder) Source(file, src string) *Builder {
	return b.addFile(file, src)
}

// dataName validates a data-object symbol.
func dataName(name string) error {
	if name == "" {
		return fmt.Errorf("data object with empty name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("data object name %q is not an identifier", name)
		}
	}
	return nil
}

// Data declares a zeroed server-side data object of the given byte
// size, exported by the app's generated ried under name.
func (b *Builder) Data(name string, size int) *Builder {
	if b.err != nil {
		return b
	}
	if err := dataName(name); err != nil {
		return b.fail("%v", err)
	}
	if size <= 0 {
		return b.fail("data object %s has non-positive size %d", name, size)
	}
	b.data = append(b.data, dataDef{name: name, space: size})
	return b
}

// DataWords declares an initialized server-side data object: one 64-bit
// word per value, exported under name.
func (b *Builder) DataWords(name string, words ...uint64) *Builder {
	if b.err != nil {
		return b
	}
	if err := dataName(name); err != nil {
		return b.fail("%v", err)
	}
	if len(words) == 0 {
		return b.fail("data object %s has no words", name)
	}
	b.data = append(b.data, dataDef{name: name, words: words})
	return b
}

// genRied renders the accumulated Data/DataWords declarations as the
// app's generated ried source (initialized objects first, then zeroed
// space, each in declaration order).
func (b *Builder) genRied() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; ried_%s: data objects declared via tcapp.Builder.\n", b.name)
	sb.WriteString(".data\n")
	for _, d := range b.data {
		if d.words == nil {
			continue
		}
		fmt.Fprintf(&sb, ".global %s\n%s:\n", d.name, d.name)
		for _, w := range d.words {
			fmt.Fprintf(&sb, "    .quad %d\n", w)
		}
	}
	sb.WriteString(".bss\n")
	for _, d := range b.data {
		if d.words != nil {
			continue
		}
		fmt.Fprintf(&sb, ".global %s\n%s:\n    .space %d\n", d.name, d.name, d.space)
	}
	return sb.String()
}

// Build compiles and links the accumulated sources into an installable
// package (deferred recording errors surface here).
func (b *Builder) Build() (*core.Package, error) {
	if b.err != nil {
		return nil, b.err
	}
	files := make(map[string]string, len(b.files)+1)
	for f, src := range b.files {
		files[f] = src
	}
	if len(b.data) > 0 {
		seen := map[string]bool{}
		for _, d := range b.data {
			if seen[d.name] {
				return nil, fmt.Errorf("tcapp: %s: data object %s declared twice", b.name, d.name)
			}
			seen[d.name] = true
		}
		gen := "ried_" + b.name + ".rds"
		if _, dup := files[gen]; dup {
			return nil, fmt.Errorf("tcapp: %s: %s collides with the generated data ried", b.name, gen)
		}
		files[gen] = b.genRied()
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("tcapp: %s: no elements", b.name)
	}
	return core.BuildPackage(b.name, files)
}

// App is one registered application package: how to build it, a fresh
// native oracle for its server-side semantics (nil when the app has
// none), and a one-line description for tooling.
type App struct {
	Name string
	Doc  string
	// Build compiles a fresh package (packages are stateless; per-run
	// rebuilds keep runs independent).
	Build func() (*core.Package, error)
	// BuildRieds, when set, compiles only the app's RIED elements — all
	// a dynamic update (hot-swap) installs, skipping the jam compiles of
	// a full Build.
	BuildRieds func() (*core.Package, error)
	// NewOracle returns a fresh model of one node's server state, or
	// nil.
	NewOracle func() Oracle
}

// Oracle is a native (pure Go) model of one node's server-side state.
// Apply mirrors the execution of one element on that node and returns
// the expected handler return value. Executions on a node are
// serialized, so applying them in execution order replays the node
// exactly.
type Oracle interface {
	Apply(elem string, args [2]uint64, usr []byte) (uint64, error)
}

var registry = map[string]App{}

// Register adds an app to the registry. It panics on duplicates or
// missing fields — registration happens at init time, where a panic is
// a build error.
func Register(app App) {
	if app.Name == "" || app.Build == nil {
		panic("tcapp: Register: app needs a name and a Build function")
	}
	if _, dup := registry[app.Name]; dup {
		panic("tcapp: Register: duplicate app " + app.Name)
	}
	registry[app.Name] = app
}

// Lookup returns the registered app.
func Lookup(name string) (App, bool) {
	app, ok := registry[name]
	return app, ok
}

// Names lists the registered apps in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build compiles the named app's package.
func Build(name string) (*core.Package, error) {
	app, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tcapp: no registered app %q (have %v)", name, Names())
	}
	return app.Build()
}

// BuildRieds compiles only the named app's RIED elements — what a RIED
// hot-swap installs. Apps without the lighter path fall back to a full
// build (the swap installer filters to ElemRied either way).
func BuildRieds(name string) (*core.Package, error) {
	app, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tcapp: no registered app %q (have %v)", name, Names())
	}
	if app.BuildRieds != nil {
		return app.BuildRieds()
	}
	return app.Build()
}

func init() {
	// The benchmark package of paper §VI-B, registered so scenario mixes
	// can name it like any other app. Its oracle covers Server-Side Sum;
	// Indirect Put's placement semantics are pinned by the dedicated
	// equivalence tests in core.
	Register(App{
		Name:  "tcbench",
		Doc:   "paper benchmark package: jam_sssum, jam_iput, jam_hello + ried_kvbench",
		Build: core.BuildBenchPackage,
		BuildRieds: func() (*core.Package, error) {
			return core.BuildPackage("tcbench", map[string]string{
				"ried_kvbench.rds": core.RiedKVBenchSrc,
			})
		},
		NewOracle: func() Oracle { return &benchOracle{} },
	})
}

// benchOracle models tcbench's Server-Side Sum.
type benchOracle struct{}

func (benchOracle) Apply(elem string, args [2]uint64, usr []byte) (uint64, error) {
	if elem != "jam_sssum" {
		return 0, fmt.Errorf("tcapp: tcbench oracle does not model %q", elem)
	}
	var sum uint64
	i := 0
	for ; i+8 <= len(usr); i += 8 {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(usr[i+j]) << (8 * j)
		}
		sum += w
	}
	for ; i < len(usr); i++ {
		sum += uint64(usr[i])
	}
	return sum, nil
}
