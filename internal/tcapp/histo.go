package tcapp

import (
	"fmt"

	"twochains/internal/core"
)

// The histo app: a byte-histogram with a server-side reduce — the
// map/reduce shape of an aggregation service, where both the bucketing
// function and the reduction travel as injected code. Two elements:
//
//	jam_hist_add(payload):      bucket every payload byte; returns the
//	                            node's running byte total.
//	jam_hist_sum(start, n):     weighted partial reduce sum(b * count[b])
//	                            over a wrapping bucket window.
//
// Server-side state (ried_histo): hist_buckets (256 quads) and
// hist_total (running byte count, initialized to 0).

const histBuckets = 256

const histAddSrc = `
// jam_hist_add: bucket each payload byte; returns the running total of
// bytes this node has histogrammed.
extern long hist_buckets[];
extern long hist_total[];

long jam_hist_add(long* args, byte* usr, long len) {
    long i = 0;
    while (i < len) {
        long b = usr[i];
        hist_buckets[b] = hist_buckets[b] + 1;
        i = i + 1;
    }
    hist_total[0] = hist_total[0] + len;
    return hist_total[0];
}
`

const histSumSrc = `
// jam_hist_sum: weighted partial reduce over a wrapping window of
// (args[1] & 255) + 1 buckets starting at args[0] & 255.
extern long hist_buckets[];

long jam_hist_sum(long* args, byte* usr, long len) {
    long i = args[0] & 255;
    long n = (args[1] & 255) + 1;
    long sum = 0;
    while (n > 0) {
        sum = sum + (hist_buckets[i] * i);
        i = (i + 1) & 255;
        n = n - 1;
    }
    return sum;
}
`

// histoData declares the app's server-side state on b (shared between
// the full build and the rieds-only swap build).
func histoData(b *Builder) *Builder {
	return b.
		Data("hist_buckets", histBuckets*8).
		DataWords("hist_total", 0)
}

// BuildHisto assembles the histo package through the Builder.
func BuildHisto() (*core.Package, error) {
	return histoData(New("histo")).
		Func("hist_add", histAddSrc).
		Func("hist_sum", histSumSrc).
		Build()
}

func init() {
	Register(App{
		Name:       "histo",
		Doc:        "byte histogram + weighted reduce: jam_hist_add/sum over ried_histo",
		Build:      BuildHisto,
		BuildRieds: func() (*core.Package, error) { return histoData(New("histo")).Build() },
		NewOracle:  func() Oracle { return NewHistoOracle() },
	})
}

// HistoOracle is the native model of one node's histo state.
type HistoOracle struct {
	buckets [histBuckets]uint64
	total   uint64
}

// NewHistoOracle returns an empty histogram model.
func NewHistoOracle() *HistoOracle { return &HistoOracle{} }

// Apply mirrors one histo handler execution.
func (o *HistoOracle) Apply(elem string, args [2]uint64, usr []byte) (uint64, error) {
	switch elem {
	case "jam_hist_add":
		for _, b := range usr {
			o.buckets[b]++
		}
		o.total += uint64(len(usr))
		return o.total, nil
	case "jam_hist_sum":
		i := args[0] & (histBuckets - 1)
		n := (args[1] & 255) + 1
		var sum uint64
		for ; n > 0; n-- {
			sum += o.buckets[i] * i
			i = (i + 1) & (histBuckets - 1)
		}
		return sum, nil
	}
	return 0, fmt.Errorf("tcapp: histo oracle does not model %q", elem)
}
