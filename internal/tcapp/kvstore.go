package tcapp

import (
	"fmt"

	"twochains/internal/core"
)

// The kvstore app: a fixed-size open-addressed key/value table whose
// lookup function travels with the message — the client controls both
// the hash and the probe discipline, exactly the Indirect Put argument
// of paper §VI-B2 generalized into a small service. Three elements:
//
//	jam_kv_put(key, val):  insert or overwrite; returns the slot used.
//	jam_kv_get(key):       returns the stored value, 0 when absent.
//	jam_kv_scan(start, n): sums values over a wrapping slot window.
//
// Server-side state (ried_kvstore, generated from Data declarations):
// kv_keys/kv_vals (kvSlots quads each) and kv_count (occupied slots).

// kvSlots is the table size; kvMask the probe wrap mask. The table must
// stay far from full: an all-slots-occupied probe loop never finds an
// empty slot, so workloads are expected to keep distinct keys well
// under kvSlots (the stock scenarios draw keys from [1, 30000] in runs
// of a few thousand puts per node).
const (
	kvSlots = 16384
	kvMask  = kvSlots - 1
)

// kvHash is the shared hash (Go mirror of the jam's arithmetic — 64-bit
// wrapping multiply, logical shift).
func kvHash(key uint64) uint64 {
	h := key * 2654435761
	return (h ^ (h >> 15)) & kvMask
}

const kvPutSrc = `
// jam_kv_put: insert or overwrite key -> val; returns the slot used.
// A zero val stores the key itself so value-blind workload generators
// still produce scannable content.
extern long kv_keys[];
extern long kv_vals[];
extern long kv_count[];

long jam_kv_put(long* args, byte* usr, long len) {
    long key = args[0];
    long val = args[1];
    if (key == 0) { return 0; }
    if (val == 0) { val = key; }
    long h = key * 2654435761;
    h = (h ^ (h >> 15)) & 16383;
    for (;;) {
        long k = kv_keys[h];
        if (k == key) {
            kv_vals[h] = val;
            return h;
        }
        if (k == 0) {
            kv_keys[h] = key;
            kv_vals[h] = val;
            kv_count[0] = kv_count[0] + 1;
            return h;
        }
        h = (h + 1) & 16383;
    }
}
`

const kvGetSrc = `
// jam_kv_get: probe for key; returns the stored value, 0 when absent.
extern long kv_keys[];
extern long kv_vals[];

long jam_kv_get(long* args, byte* usr, long len) {
    long key = args[0];
    if (key == 0) { return 0; }
    long h = key * 2654435761;
    h = (h ^ (h >> 15)) & 16383;
    for (;;) {
        long k = kv_keys[h];
        if (k == key) { return kv_vals[h]; }
        if (k == 0) { return 0; }
        h = (h + 1) & 16383;
    }
}
`

const kvScanSrc = `
// jam_kv_scan: sum the values of occupied slots in a wrapping window of
// (args[1] & 127) + 1 slots starting at args[0] & 16383.
extern long kv_keys[];
extern long kv_vals[];

long jam_kv_scan(long* args, byte* usr, long len) {
    long i = args[0] & 16383;
    long n = (args[1] & 127) + 1;
    long sum = 0;
    while (n > 0) {
        if (kv_keys[i] != 0) { sum = sum + kv_vals[i]; }
        i = (i + 1) & 16383;
        n = n - 1;
    }
    return sum;
}
`

// kvStoreData declares the app's server-side state on b (shared
// between the full build and the rieds-only swap build).
func kvStoreData(b *Builder) *Builder {
	return b.
		Data("kv_keys", kvSlots*8).
		Data("kv_vals", kvSlots*8).
		DataWords("kv_count", 0)
}

// BuildKVStore assembles the kvstore package through the Builder.
func BuildKVStore() (*core.Package, error) {
	return kvStoreData(New("kvstore")).
		Func("kv_put", kvPutSrc).
		Func("kv_get", kvGetSrc).
		Func("kv_scan", kvScanSrc).
		Build()
}

func init() {
	Register(App{
		Name:       "kvstore",
		Doc:        "open-addressed key/value table: jam_kv_put/get/scan over ried_kvstore",
		Build:      BuildKVStore,
		BuildRieds: func() (*core.Package, error) { return kvStoreData(New("kvstore")).Build() },
		NewOracle:  func() Oracle { return NewKVOracle() },
	})
}

// KVOracle is the native model of one node's kvstore state.
type KVOracle struct {
	keys  [kvSlots]uint64
	vals  [kvSlots]uint64
	count uint64
}

// NewKVOracle returns an empty table model.
func NewKVOracle() *KVOracle { return &KVOracle{} }

// Apply mirrors one kvstore handler execution.
func (o *KVOracle) Apply(elem string, args [2]uint64, usr []byte) (uint64, error) {
	switch elem {
	case "jam_kv_put":
		key, val := args[0], args[1]
		if key == 0 {
			return 0, nil
		}
		if val == 0 {
			val = key
		}
		h := kvHash(key)
		for {
			switch o.keys[h] {
			case key:
				o.vals[h] = val
				return h, nil
			case 0:
				o.keys[h], o.vals[h] = key, val
				o.count++
				return h, nil
			}
			h = (h + 1) & kvMask
		}
	case "jam_kv_get":
		key := args[0]
		if key == 0 {
			return 0, nil
		}
		h := kvHash(key)
		for {
			switch o.keys[h] {
			case key:
				return o.vals[h], nil
			case 0:
				return 0, nil
			}
			h = (h + 1) & kvMask
		}
	case "jam_kv_scan":
		i := args[0] & kvMask
		n := (args[1] & 127) + 1
		var sum uint64
		for ; n > 0; n-- {
			if o.keys[i] != 0 {
				sum += o.vals[i]
			}
			i = (i + 1) & kvMask
		}
		return sum, nil
	}
	return 0, fmt.Errorf("tcapp: kvstore oracle does not model %q", elem)
}
