package tenant

import (
	"testing"

	"twochains/internal/sim"
)

func TestRegistryValidation(t *testing.T) {
	g := NewRegistry(4)
	if _, err := g.Add(Config{Name: "", Weight: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := g.Add(Config{Name: "a", Weight: 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := g.Add(Config{Name: "a", Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(Config{Name: "a", Weight: 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := g.Add(Config{Name: "b", Weight: 1, Admission: &Admission{RatePerSec: 0}}); err == nil {
		t.Fatal("zero admission rate accepted")
	}
	b, err := g.Add(Config{Name: "b", Weight: 1, Admission: &Admission{RatePerSec: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 1 {
		t.Fatalf("dense ID = %d, want 1", b.ID)
	}
	if b.Admission.Burst <= 0 {
		t.Fatalf("burst not defaulted: %v", b.Admission.Burst)
	}
	if got, ok := g.Lookup("a"); !ok || got.Weight != 2 {
		t.Fatalf("lookup a = %+v, %v", got, ok)
	}
}

func TestQualified(t *testing.T) {
	if q := Qualified("gold", "kvstore"); q != "gold::kvstore" {
		t.Fatalf("Qualified = %q", q)
	}
}

func TestBucketRefillAndDrop(t *testing.T) {
	g := NewRegistry(2)
	tn, err := g.Add(Config{Name: "t", Weight: 1,
		Admission: &Admission{RatePerSec: 1000, Burst: 4}})
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	// Burst capacity admits 4, then drops.
	for i := 0; i < 4; i++ {
		if d := tn.Admit(0, now, 1, 0); !d.OK {
			t.Fatalf("admit %d rejected", i)
		}
	}
	if d := tn.Admit(0, now, 1, 0); d.OK {
		t.Fatal("empty bucket admitted")
	}
	// 1000 msgs/s = 1 token per ms: after 2 ms two more pass.
	now = now.Add(2 * sim.Millisecond)
	for i := 0; i < 2; i++ {
		if d := tn.Admit(0, now, 1, 0); !d.OK {
			t.Fatalf("refilled admit %d rejected", i)
		}
	}
	if d := tn.Admit(0, now, 1, 0); d.OK {
		t.Fatal("over-refilled bucket admitted")
	}
	// Node 1's bucket is independent of node 0's.
	if d := tn.Admit(1, now, 4, 0); !d.OK {
		t.Fatal("per-node bucket not independent")
	}
	st := tn.Stats()
	if st.Admitted != 10 || st.Dropped != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeferRetryHint(t *testing.T) {
	g := NewRegistry(1)
	tn, err := g.Add(Config{Name: "t", Weight: 1,
		Admission: &Admission{RatePerSec: 1000, Burst: 1, Policy: Defer}})
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	if d := tn.Admit(0, now, 1, 0); !d.OK {
		t.Fatal("first admit rejected")
	}
	d := tn.Admit(0, now, 1, 0)
	if d.OK || d.RetryAfter <= 0 {
		t.Fatalf("defer decision = %+v", d)
	}
	// The hint is honest: at now+RetryAfter the call passes.
	if d2 := tn.Admit(0, now.Add(d.RetryAfter), 1, 0); !d2.OK {
		t.Fatalf("retry at hinted time rejected")
	}
	ae := tn.Reject(d)
	if !ae.Deferred || ae.RetryAfter != d.RetryAfter || ae.Tenant != "t" {
		t.Fatalf("AdmissionError = %+v", ae)
	}
	if tn.Stats().Deferred != 1 {
		t.Fatalf("deferred count = %d", tn.Stats().Deferred)
	}
}

func TestStallPenalty(t *testing.T) {
	g := NewRegistry(1)
	tn, err := g.Add(Config{Name: "t", Weight: 1,
		Admission: &Admission{RatePerSec: 1000, Burst: 8, StallPenalty: 2}})
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	if d := tn.Admit(0, now, 1, 0); !d.OK {
		t.Fatal("baseline admit rejected")
	}
	// 3 new stalls cost 6 tokens on top of the message: bucket had 7,
	// drops to 1 after penalty, then admits 1 and is empty.
	if d := tn.Admit(0, now, 1, 3); !d.OK {
		t.Fatal("post-penalty admit rejected")
	}
	if d := tn.Admit(0, now, 1, 3); d.OK {
		t.Fatal("stall-penalized bucket admitted (penalty not charged, or re-charged)")
	}
	// The same cumulative stall count is not charged twice: refill one
	// token and the next message passes.
	if d := tn.Admit(0, now.Add(sim.Millisecond), 1, 3); !d.OK {
		t.Fatal("stall delta re-charged")
	}
}

func TestAdmitDeterminism(t *testing.T) {
	run := func() []bool {
		g := NewRegistry(1)
		tn, _ := g.Add(Config{Name: "t", Weight: 1,
			Admission: &Admission{RatePerSec: 12345, Burst: 3.5, StallPenalty: 0.5}})
		var out []bool
		now := sim.Time(0)
		stalls := uint64(0)
		for i := 0; i < 200; i++ {
			now = now.Add(sim.Duration(i%7) * 13 * sim.Microsecond)
			if i%11 == 0 {
				stalls++
			}
			out = append(out, tn.Admit(0, now, 1+i%3, stalls).OK)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
}
