// Package tenant is the multi-tenant serving layer's state: named
// tenants with fair-share weights, per-tenant admission control (token
// buckets in simulated time, fed back by sender credit telemetry), and
// the naming convention that keys per-tenant package namespaces.
//
// The package is deliberately thin — plain deterministic state machines
// over sim time — so it can sit under both the tc call path and the
// workload driver without dragging either's dependencies along.
//
// # Ownership domains
//
// All tenant state is partitioned to respect the parallel engine's
// per-shard ownership rules (see ROADMAP "Multi-tenant serving"):
//
//   - Admission buckets are indexed by the *issuing* node. A bucket is
//     only ever read or written from Admit calls made on that node's
//     shard (tc.Func.Call runs on the source shard), so equal seeds give
//     bit-identical admission decisions for every worker count.
//   - Fair-queue state lives in mailbox.FairArbiter on the *receiving*
//     node's shard, not here; the tenant only contributes its dense ID
//     (the arbiter class) and weight.
//   - The per-node admit/drop/defer counters are likewise issuer-owned;
//     Stats sums them only after the simulation has quiesced.
package tenant

import (
	"fmt"

	"twochains/internal/sim"
)

// Qualified returns the name a tenant's install of pkg registers under
// on every node — the per-tenant package namespace key. Two tenants
// installing the same app (or different versions of it) get distinct
// qualified names, hence distinct installed-package IDs and element-ID
// spaces.
func Qualified(tenant, pkg string) string { return tenant + "::" + pkg }

// Policy selects what a failed admission does to the call.
type Policy uint8

const (
	// Drop rejects the call outright: the future resolves with an
	// *AdmissionError carrying no retry hint.
	Drop Policy = iota
	// Defer rejects the call with a retry hint: the future resolves with
	// an *AdmissionError whose RetryAfter says when the bucket will have
	// refilled enough for the call to pass.
	Defer
)

// Admission is a tenant's token-bucket configuration. The bucket is
// per *sender node* (matching the per-sender convention of open-loop
// arrival rates): each node's issue stream draws from its own bucket,
// refilled in simulated time.
type Admission struct {
	// RatePerSec is the sustained admission rate in messages per
	// simulated second, per sender node. Must be > 0.
	RatePerSec float64
	// Burst is the bucket capacity in messages (0 defaults to the larger
	// of one message and ~10 ms worth of rate).
	Burst float64
	// Policy selects Drop (default) or Defer on an empty bucket.
	Policy Policy
	// StallPenalty deducts that many tokens for every newly observed
	// credit stall on the call's channel — the feedback loop from the
	// mailbox flow-control telemetry: a tenant whose traffic is already
	// backing up the fabric is throttled harder than its nominal rate.
	StallPenalty float64
}

// withDefaults returns the config with zero fields resolved.
func (a Admission) withDefaults() Admission {
	if a.Burst <= 0 {
		a.Burst = a.RatePerSec / 100
		if a.Burst < 1 {
			a.Burst = 1
		}
	}
	return a
}

// Decision is one admission outcome.
type Decision struct {
	OK bool
	// RetryAfter is the Defer hint: how long until the bucket will hold
	// enough tokens (zero under Drop).
	RetryAfter sim.Duration
}

// AdmissionError is the typed error a rejected call resolves with; the
// tc layer surfaces it through Future.IssueErr, so issue loops can
// switch on it (and honor RetryAfter) instead of parsing messages.
type AdmissionError struct {
	Tenant string
	// Deferred distinguishes a Defer rejection (RetryAfter is the
	// bucket's refill horizon) from a Drop.
	Deferred   bool
	RetryAfter sim.Duration
}

func (e *AdmissionError) Error() string {
	if e.Deferred {
		return fmt.Sprintf("tenant %s: admission deferred (retry in %s)", e.Tenant, e.RetryAfter)
	}
	return fmt.Sprintf("tenant %s: admission dropped", e.Tenant)
}

// bucket is one sender node's token bucket.
type bucket struct {
	tokens float64
	last   sim.Time
	// stalls is the channel credit-stall count already charged, so only
	// the delta since the last Admit is penalized.
	stalls uint64
	inited bool
}

// AdmitStats aggregates a tenant's admission outcomes (Stats sums the
// issuer-owned per-node counters; call it only outside the simulation).
type AdmitStats struct {
	Admitted uint64
	Dropped  uint64
	Deferred uint64
}

// Tenant is one serving tenant: a dense ID (the fair-queue class on
// every receiving node), a fair-share weight, and optional admission
// control.
type Tenant struct {
	Name   string
	ID     int
	Weight int
	// Admission is the token-bucket config (nil = unlimited).
	Admission *Admission
	// Untrusted marks the tenant's jams as requiring an isolation
	// boundary per invocation (priced by model.TenantIsolationCost at the
	// receiver).
	Untrusted bool

	// Issuer-owned per-node state (see the package comment).
	buckets  []bucket
	admitted []uint64
	dropped  []uint64
	deferred []uint64
}

// Admit charges n messages issued from node src at simulated time now
// against the tenant's bucket, with stalls the issuing channel's
// cumulative credit-stall count (the telemetry feedback). It must be
// called from src's shard only. A tenant without admission control
// admits everything.
func (t *Tenant) Admit(src int, now sim.Time, n int, stalls uint64) Decision {
	if t.Admission == nil {
		return Decision{OK: true}
	}
	a := t.Admission
	b := &t.buckets[src]
	if !b.inited {
		b.tokens, b.last, b.stalls, b.inited = a.Burst, now, stalls, true
	}
	if d := now.Sub(b.last); d > 0 {
		b.tokens += d.Seconds() * a.RatePerSec
		if b.tokens > a.Burst {
			b.tokens = a.Burst
		}
		b.last = now
	}
	if a.StallPenalty > 0 && stalls > b.stalls {
		b.tokens -= float64(stalls-b.stalls) * a.StallPenalty
		// Debt is capped at one bucket so a stall storm throttles the
		// tenant for a bounded horizon instead of forever.
		if b.tokens < -a.Burst {
			b.tokens = -a.Burst
		}
	}
	b.stalls = stalls
	need := float64(n)
	if b.tokens >= need {
		b.tokens -= need
		t.admitted[src] += uint64(n)
		return Decision{OK: true}
	}
	if a.Policy == Defer {
		t.deferred[src]++
		wait := (need - b.tokens) / a.RatePerSec // seconds until refilled
		return Decision{RetryAfter: sim.Duration(wait*float64(sim.Second)) + 1}
	}
	t.dropped[src] += uint64(n)
	return Decision{}
}

// Reject builds the typed error for a failed Decision.
func (t *Tenant) Reject(d Decision) *AdmissionError {
	return &AdmissionError{Tenant: t.Name, Deferred: d.RetryAfter > 0, RetryAfter: d.RetryAfter}
}

// Stats sums the per-node admission counters. Call it only while the
// simulation is not running (the counters are shard-owned).
func (t *Tenant) Stats() AdmitStats {
	var s AdmitStats
	for i := range t.admitted {
		s.Admitted += t.admitted[i]
		s.Dropped += t.dropped[i]
		s.Deferred += t.deferred[i]
	}
	return s
}

// Config declares one tenant.
type Config struct {
	Name   string
	Weight int
	// Admission enables token-bucket admission control (nil = none).
	Admission *Admission
	// Untrusted prices an isolation boundary per invocation at the
	// receiver (the Virtines-grounded model.TenantIsolationCost knob).
	Untrusted bool
}

// Registry is the per-system tenant set: dense IDs in Add order, unique
// names, per-node bucket state sized to the node count.
type Registry struct {
	nodes  int
	list   []*Tenant
	byName map[string]*Tenant
}

// NewRegistry returns an empty registry for a fabric of nodes nodes.
func NewRegistry(nodes int) *Registry {
	return &Registry{nodes: nodes, byName: map[string]*Tenant{}}
}

// Add registers a tenant and returns it. Names must be unique and
// non-empty, weights >= 1, and admission rates > 0.
func (g *Registry) Add(cfg Config) (*Tenant, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("tenant: empty name")
	}
	if _, dup := g.byName[cfg.Name]; dup {
		return nil, fmt.Errorf("tenant: duplicate tenant %q", cfg.Name)
	}
	if cfg.Weight < 1 {
		return nil, fmt.Errorf("tenant: %s: weight must be >= 1, have %d", cfg.Name, cfg.Weight)
	}
	t := &Tenant{
		Name:      cfg.Name,
		ID:        len(g.list),
		Weight:    cfg.Weight,
		Untrusted: cfg.Untrusted,
		buckets:   make([]bucket, g.nodes),
		admitted:  make([]uint64, g.nodes),
		dropped:   make([]uint64, g.nodes),
		deferred:  make([]uint64, g.nodes),
	}
	if cfg.Admission != nil {
		if !(cfg.Admission.RatePerSec > 0) {
			return nil, fmt.Errorf("tenant: %s: admission rate must be > 0, have %v",
				cfg.Name, cfg.Admission.RatePerSec)
		}
		a := cfg.Admission.withDefaults()
		t.Admission = &a
	}
	g.list = append(g.list, t)
	g.byName[cfg.Name] = t
	return t, nil
}

// Lookup returns the named tenant.
func (g *Registry) Lookup(name string) (*Tenant, bool) {
	t, ok := g.byName[name]
	return t, ok
}

// List returns the tenants in Add (dense-ID) order; the slice is shared,
// not a copy.
func (g *Registry) List() []*Tenant { return g.list }

// Len returns the tenant count.
func (g *Registry) Len() int { return len(g.list) }
