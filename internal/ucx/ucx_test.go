package ucx

import (
	"testing"

	"twochains/internal/mem"
	"twochains/internal/model"
	"twochains/internal/sim"
	"twochains/internal/simnet"
)

type pair struct {
	eng  *sim.Engine
	a, b *Worker
	ab   *Endpoint
	aBuf uint64
	bBuf uint64
	bMem *Memory
}

func newPair(t *testing.T) *pair {
	t.Helper()
	eng := sim.NewEngine()
	fab := simnet.NewFabric(eng, simnet.DefaultConfig())
	ctx := NewContext(fab)
	p := &pair{eng: eng}
	asA := mem.NewAddressSpace(2 << 20)
	asB := mem.NewAddressSpace(2 << 20)
	p.a = ctx.NewWorker(asA, nil)
	p.b = ctx.NewWorker(asB, nil)
	p.ab = p.a.Connect(p.b)
	var err error
	p.aBuf, err = asA.AllocPages("a", 256*1024, mem.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	p.bBuf, err = asB.AllocPages("b", 256*1024, mem.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	p.bMem, err = p.b.RegisterMemory(p.bBuf, 256*1024, simnet.RemoteWrite|simnet.RemoteRead)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPutDataArrives(t *testing.T) {
	p := newPair(t)
	want := []byte("standard ucx put")
	if err := p.a.AS.WriteBytes(p.aBuf, want); err != nil {
		t.Fatal(err)
	}
	var gotErr error
	p.ab.Put(p.aBuf, p.bBuf, len(want), p.bMem.Key, func(err error, _ sim.Time) { gotErr = err })
	p.eng.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	got, _ := p.b.AS.ReadBytes(p.bBuf, len(want))
	if string(got) != string(want) {
		t.Fatalf("got %q", got)
	}
	if p.ab.Completed() != 1 {
		t.Fatalf("completed = %d", p.ab.Completed())
	}
}

func TestPutErrorPropagates(t *testing.T) {
	p := newPair(t)
	var gotErr error
	p.ab.Put(p.aBuf, p.bBuf, 64, p.bMem.Key+1, func(err error, _ sim.Time) { gotErr = err })
	p.eng.Run()
	if gotErr == nil {
		t.Fatal("bad rkey not reported")
	}
}

func TestThinVsStandardMatchesPaperShape(t *testing.T) {
	// Fig. 5: single-message latency of the two paths is within a couple
	// of percent of each other. Fig. 6: the thin path's pipelined
	// throughput is clearly higher because it skips flow-control and
	// completion software.
	timeOne := func(thin bool, size int) sim.Duration {
		p := newPair(t)
		var done sim.Time
		if thin {
			p.ab.PutThin(p.aBuf, p.bBuf, size, p.bMem.Key, func(_ error, d sim.Time) { done = d })
		} else {
			p.ab.Put(p.aBuf, p.bBuf, size, p.bMem.Key, func(_ error, d sim.Time) { done = d })
		}
		p.eng.Run()
		return sim.Duration(done)
	}
	for _, size := range []int{256, 4096} {
		thin, std := timeOne(true, size), timeOne(false, size)
		ratio := float64(thin) / float64(std)
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("size %d: single-shot thin %v vs std %v (ratio %.3f), want within 5%%",
				size, thin, std, ratio)
		}
	}

	// Thin path: frames stream into preregistered mailboxes back to back.
	thinStream := func(size, n int) sim.Duration {
		p := newPair(t)
		var last sim.Time
		for i := 0; i < n; i++ {
			p.ab.PutThin(p.aBuf, p.bBuf, size, p.bMem.Key, func(_ error, d sim.Time) {
				if d > last {
					last = d
				}
			})
		}
		p.eng.Run()
		return sim.Duration(last)
	}
	// Standard path as the Fig. 6 baseline drives it: each put's buffer is
	// reused, so the next put issues only after the completion callback.
	stdBlocking := func(size, n int) sim.Duration {
		p := newPair(t)
		var last sim.Time
		var issue func(i int)
		issue = func(i int) {
			if i == n {
				return
			}
			p.ab.Put(p.aBuf, p.bBuf, size, p.bMem.Key, func(_ error, d sim.Time) {
				if d > last {
					last = d
				}
				issue(i + 1)
			})
		}
		issue(0)
		p.eng.Run()
		return sim.Duration(last)
	}
	for _, size := range []int{256, 4096, 32768} {
		thin, std := thinStream(size, 200), stdBlocking(size, 200)
		speedup := float64(std) / float64(thin)
		if speedup < 1.3 {
			t.Fatalf("size %d: bandwidth speedup %.2fx, want > 1.3x (paper: 1.79-4.48x)",
				size, speedup)
		}
		if speedup > 8 {
			t.Fatalf("size %d: bandwidth speedup %.2fx implausibly large", size, speedup)
		}
	}
}

func TestRendezvousHandshakePenalty(t *testing.T) {
	// A standard put just over the rndv threshold pays an extra RTT.
	timeStd := func(size int) sim.Duration {
		p := newPair(t)
		var done sim.Time
		p.ab.Put(p.aBuf, p.bBuf, size, p.bMem.Key, func(_ error, d sim.Time) { done = d })
		p.eng.Run()
		return sim.Duration(done)
	}
	below, above := timeStd(8000), timeStd(8400)
	delta := above - below
	extraWire := model.WireTime(8400) - model.WireTime(8000)
	if delta < 2*model.PutBaseLat {
		t.Fatalf("rndv delta %v < handshake RTT %v", delta, 2*model.PutBaseLat)
	}
	if delta > 2*model.PutBaseLat+extraWire+sim.FromNanos(400) {
		t.Fatalf("rndv delta %v implausibly large", delta)
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	p := newPair(t)
	issued := 0
	for i := 0; i < DefaultWindow*3; i++ {
		p.ab.Put(p.aBuf, p.bBuf, 64, p.bMem.Key, func(err error, _ sim.Time) {
			if err != nil {
				t.Errorf("put %v", err)
			}
			issued++
		})
	}
	if p.ab.inflight != DefaultWindow {
		t.Fatalf("inflight = %d, want window %d", p.ab.inflight, DefaultWindow)
	}
	if len(p.ab.backlog) != DefaultWindow*2 {
		t.Fatalf("backlog = %d", len(p.ab.backlog))
	}
	p.eng.Run()
	if issued != DefaultWindow*3 {
		t.Fatalf("completed %d of %d", issued, DefaultWindow*3)
	}
	if p.ab.inflight != 0 || len(p.ab.backlog) != 0 {
		t.Fatal("window state not drained")
	}
}

func TestFlushWaits(t *testing.T) {
	p := newPair(t)
	done := 0
	for i := 0; i < 5; i++ {
		p.ab.Put(p.aBuf, p.bBuf, 1024, p.bMem.Key, func(error, sim.Time) { done++ })
	}
	flushed := false
	p.ab.Flush(func() {
		flushed = true
		if done != 5 {
			t.Errorf("flush fired with %d/5 done", done)
		}
	})
	p.eng.Run()
	if !flushed {
		t.Fatal("flush never fired")
	}
}

func TestAmTierOverheadFollowsTiers(t *testing.T) {
	rndv := model.ProtoTiers[4].Overhead
	if AmTierOverhead(1<<20) != rndv {
		t.Fatalf("huge AM frame overhead %v, want rndv tier %v", AmTierOverhead(1<<20), rndv)
	}
	if AmTierOverhead(64) != 0 {
		t.Fatalf("64B AM overhead %v, want 0 (short tier)", AmTierOverhead(64))
	}
}

func TestThinRndvHandshakeOverlaps(t *testing.T) {
	// Pipelined rndv-tier thin puts stay wire-bound: handshakes overlap.
	const size = 16384
	const n = 50
	p := newPair(t)
	var last sim.Time
	for i := 0; i < n; i++ {
		p.ab.PutThin(p.aBuf, p.bBuf, size, p.bMem.Key, func(_ error, d sim.Time) {
			if d > last {
				last = d
			}
		})
	}
	p.eng.Run()
	wireFloor := sim.Duration(n) * model.WireTime(size)
	elapsed := sim.Duration(last)
	if elapsed > wireFloor+4*(2*model.PutBaseLat) {
		t.Fatalf("thin rndv stream not pipelined: %v vs wire floor %v", elapsed, wireFloor)
	}
}

func TestTierMonotonicity(t *testing.T) {
	// Each tier's overhead must be >= the previous: the "just over the
	// threshold" penalty of Fig. 7 depends on it.
	prev := sim.Duration(-1)
	for _, tier := range model.ProtoTiers {
		if tier.Overhead < prev {
			t.Fatalf("tier %s overhead %v below previous %v", tier.Name, tier.Overhead, prev)
		}
		prev = tier.Overhead
	}
}

func TestSenderOverheadAccessors(t *testing.T) {
	if SenderOverheadThin(64) >= SenderOverheadStd(64) {
		t.Fatal("thin path not cheaper at 64B")
	}
	if SenderOverheadThin(4096) >= SenderOverheadStd(4096) {
		t.Fatal("thin path not cheaper at 4KB")
	}
}

func TestPipelinedStandardPutsRespectCPU(t *testing.T) {
	// With many small puts, the sender CPU software path becomes the
	// bottleneck; total elapsed must be at least n * per-message CPU cost.
	p := newPair(t)
	const n = 200
	var last sim.Time
	for i := 0; i < n; i++ {
		p.ab.Put(p.aBuf, p.bBuf, 64, p.bMem.Key, func(_ error, d sim.Time) {
			if d > last {
				last = d
			}
		})
	}
	p.eng.Run()
	perMsg := model.UcxPostOverhead + model.UcxFlowOverhead + model.DoorbellLat + model.UcxCompOverhead
	floor := sim.Duration(n) * perMsg * 9 / 10
	if sim.Duration(last) < floor {
		t.Fatalf("elapsed %v under CPU floor %v", sim.Duration(last), floor)
	}
}
