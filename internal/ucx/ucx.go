// Package ucx models the communication framework the Two-Chains runtime
// plugs into (UCX in the paper): contexts, workers, endpoints, registered
// memory, and a size-tiered protocol stack.
//
// Two put paths exist, mirroring §VII of the paper:
//
//   - Put is the standard library path with flow-control windows and
//     software completion tracking. It is the Fig. 5/6 baseline ("the
//     standard UCX put operation has more library overhead for flow
//     control and detecting message completion").
//   - PutThin is the lean path the reactive mailbox uses: the frame is
//     preformatted, flow control belongs to the mailbox banks, and no
//     completion queue is polled.
//
// Both paths pay the protocol-tier overheads of the underlying library
// (short/eager/bcopy/zcopy), which is what produces the threshold
// irregularities of Fig. 7; only the standard path adds the rendezvous
// handshake for large messages.
package ucx

import (
	"fmt"

	"twochains/internal/fabric"
	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
)

// DefaultWindow is the standard path's outstanding-operation limit.
const DefaultWindow = 16

// Context owns the fabric connection for one process. The transport is an
// abstract backend (fabric.Transport); "simnet" models the paper testbed,
// and alternate backends slot in without this package changing.
type Context struct {
	Fabric fabric.Transport
}

// NewContext wraps a fabric transport.
func NewContext(f fabric.Transport) *Context { return &Context{Fabric: f} }

// Worker is a progress engine bound to one node: its NIC plus the CPU time
// the communication library consumes on that node.
type Worker struct {
	Ctx  *Context
	NIC  fabric.Port
	AS   *mem.AddressSpace
	Hier *memsim.Hierarchy
	// CPU serializes the library's software overheads on this node.
	CPU *sim.Resource
	// Eng is the engine this worker's software costs schedule on — its
	// fabric shard's engine under the parallel group engine, the single
	// fabric engine otherwise.
	Eng *sim.Engine
}

// NewWorker attaches a node to the fabric on the fabric's default engine.
func (c *Context) NewWorker(as *mem.AddressSpace, hier *memsim.Hierarchy) *Worker {
	return c.NewWorkerOn(as, hier, c.Fabric.Engine())
}

// NewWorkerOn attaches a node to the fabric with its host-side events
// pinned to eng — the engine of the fabric shard the node will live in.
// The caller must keep the port's fabric-shard assignment consistent
// with eng (core.Cluster does).
func (c *Context) NewWorkerOn(as *mem.AddressSpace, hier *memsim.Hierarchy, eng *sim.Engine) *Worker {
	return &Worker{
		Ctx:  c,
		NIC:  c.Fabric.Attach(as, hier),
		AS:   as,
		Hier: hier,
		CPU:  sim.NewResource("ucx-cpu"),
		Eng:  eng,
	}
}

// Memory is a registered region handle with its rkey.
type Memory struct {
	Base uint64
	Size int
	Key  fabric.RKey
}

// RegisterMemory pins a region for remote access.
func (w *Worker) RegisterMemory(base uint64, size int, access fabric.Access) (*Memory, error) {
	key, err := w.NIC.RegisterMemory(base, size, access)
	if err != nil {
		return nil, err
	}
	return &Memory{Base: base, Size: size, Key: key}, nil
}

// Endpoint is a connection from a local worker to a remote worker.
type Endpoint struct {
	Local  *Worker
	Remote *Worker

	window    int
	inflight  int
	backlog   []func()
	completed uint64
	// thinFree recycles thinOp records; shard-local (see thinOp).
	thinFree []*thinOp
}

// Connect creates an endpoint to peer.
func (w *Worker) Connect(peer *Worker) *Endpoint {
	return &Endpoint{Local: w, Remote: peer, window: DefaultWindow}
}

func (ep *Endpoint) engine() *sim.Engine { return ep.Local.Eng }

// Completed returns the number of standard-path operations completed.
func (ep *Endpoint) Completed() uint64 { return ep.completed }

// Put performs a standard one-sided put with the full library path:
// posting overhead, protocol tier selection (including the rendezvous
// handshake for large messages), a flow-control window, and completion
// processing. onComplete fires when the operation completes at the sender.
func (ep *Endpoint) Put(srcVA, dstVA uint64, size int, key fabric.RKey, onComplete func(error, sim.Time)) {
	issue := func() {
		eng := ep.engine()
		tier := model.TierFor(size)
		// Window accounting grows with occupancy: a lone latency-test put
		// pays almost nothing, a saturated pipeline pays the full cost —
		// matching how credit bookkeeping behaves in the real library.
		flow := sim.Duration(float64(model.UcxFlowOverhead) * float64(ep.inflight) / float64(ep.window))
		swCost := model.UcxPostOverhead + flow + tier.Overhead + model.DoorbellLat
		postDone := ep.Local.CPU.Claim(eng.Now(), swCost)

		fire := func() {
			ep.Local.NIC.Put(ep.Remote.NIC, srcVA, dstVA, size, key, func(res fabric.PutResult) {
				// Completion detection costs CPU on the sender.
				compDone := ep.Local.CPU.Claim(eng.Now(), model.UcxCompOverhead)
				eng.At(compDone, func() {
					ep.completed++
					ep.release()
					if onComplete != nil {
						onComplete(res.Err, res.Delivered)
					}
				})
			})
		}
		if tier.Name == "rndv" {
			// Rendezvous: RTS/CTS exchange before the payload moves.
			eng.At(postDone.Add(2*model.PutBaseLat), fire)
		} else {
			eng.At(postDone, fire)
		}
	}
	if ep.inflight >= ep.window {
		ep.backlog = append(ep.backlog, issue)
		return
	}
	ep.inflight++
	issue()
}

func (ep *Endpoint) release() {
	ep.inflight--
	if len(ep.backlog) > 0 && ep.inflight < ep.window {
		next := ep.backlog[0]
		ep.backlog = ep.backlog[1:]
		ep.inflight++
		next()
	}
}

// thinOp is the recycled issue record of one thin put between post and
// NIC hand-off. Its prebound fire/complete methods replace the two
// closures the path used to allocate per message. Records live on the
// owning endpoint's freelist: Put completions fire on the issuing
// shard (shard-local jobs and cross-shard done events alike), so mint
// and recycle never cross a shard boundary.
type thinOp struct {
	owner       *Endpoint
	ep          *Endpoint
	srcVA       uint64
	dstVA       uint64
	size        int
	key         fabric.RKey
	onDelivered func(error, sim.Time)
	fire        func()                 // prebound: hand the put to the NIC
	cb          func(fabric.PutResult) // prebound: recycle, then report delivery
}

func (ep *Endpoint) getThinOp() *thinOp {
	if n := len(ep.thinFree); n > 0 {
		op := ep.thinFree[n-1]
		ep.thinFree[n-1] = nil
		ep.thinFree = ep.thinFree[:n-1]
		return op
	}
	op := &thinOp{owner: ep}
	op.fire = op.doFire
	op.cb = op.complete
	return op
}

func (op *thinOp) doFire() {
	op.ep.Local.NIC.Put(op.ep.Remote.NIC, op.srcVA, op.dstVA, op.size, op.key, op.cb)
}

func (op *thinOp) complete(res fabric.PutResult) {
	onDelivered := op.onDelivered
	op.ep, op.onDelivered = nil, nil
	op.owner.thinFree = append(op.owner.thinFree, op)
	if onDelivered != nil {
		onDelivered(res.Err, res.Delivered)
	}
}

// PutThin is the reactive-mailbox send path: the caller has already packed
// the frame and manages its own credits, so the library only pays pack,
// post, doorbell, and the protocol tier cost. Frames go through the same
// protocol stack as any UCX message (the Fig. 7 threshold artifacts come
// from exactly this), including the rendezvous handshake for very large
// frames — but the handshakes of different mailbox slots overlap, so
// pipelined streams remain wire-bound. onDelivered fires at the
// receiver-side delivery time.
func (ep *Endpoint) PutThin(srcVA, dstVA uint64, size int, key fabric.RKey, onDelivered func(error, sim.Time)) {
	eng := ep.engine()
	tier := model.TierFor(size)
	swCost := model.AmPackOverhead + model.AmPostOverhead + tier.Overhead + model.DoorbellLat
	postDone := ep.Local.CPU.Claim(eng.Now(), swCost)
	op := ep.getThinOp()
	op.ep, op.srcVA, op.dstVA, op.size, op.key, op.onDelivered = ep, srcVA, dstVA, size, key, onDelivered
	if tier.Name == "rndv" {
		// Handshake delay; not serialized through any resource, so
		// concurrent mailbox slots overlap their handshakes.
		eng.At(postDone.Add(2*model.PutBaseLat), op.fire)
	} else {
		eng.At(postDone, op.fire)
	}
}

// PutThinFenced is the mailbox send path for fabrics without the
// write-order guarantee (paper Fig. 1): the frame body goes in one put, a
// fence follows, and the 8-byte signal goes in a separate put that cannot
// be delivered ahead of the body. The three steps issue atomically with
// respect to simulated time so the fence covers exactly the body put.
func (ep *Endpoint) PutThinFenced(srcVA, dstVA uint64, bodyLen, sigLen int, key fabric.RKey, onDelivered func(error, sim.Time)) {
	eng := ep.engine()
	tier := model.TierFor(bodyLen)
	swCost := model.AmPackOverhead + 2*model.AmPostOverhead + tier.Overhead +
		2*model.DoorbellLat + model.FenceOverhead
	postDone := ep.Local.CPU.Claim(eng.Now(), swCost)
	if tier.Name == "rndv" {
		// Same handshake the single-put path pays (see PutThin).
		postDone = postDone.Add(2 * model.PutBaseLat)
	}
	eng.At(postDone, func() {
		var bodyErr error
		ep.Local.NIC.Put(ep.Remote.NIC, srcVA, dstVA, bodyLen, key, func(res fabric.PutResult) {
			bodyErr = res.Err
		})
		ep.Local.NIC.Fence(ep.Remote.NIC)
		ep.Local.NIC.Put(ep.Remote.NIC, srcVA+uint64(bodyLen), dstVA+uint64(bodyLen), sigLen, key,
			func(res fabric.PutResult) {
				if onDelivered != nil {
					err := res.Err
					if err == nil {
						err = bodyErr
					}
					onDelivered(err, res.Delivered)
				}
			})
	})
}

// AmTierOverhead is the protocol-tier software cost the mailbox path pays
// for a frame of the given size.
func AmTierOverhead(size int) sim.Duration {
	return model.TierFor(size).Overhead
}

// SenderOverheadThin reports the per-message sender CPU time of the thin
// path (used by analytic rate projections in the perf harness).
func SenderOverheadThin(size int) sim.Duration {
	return model.AmPackOverhead + model.AmPostOverhead + AmTierOverhead(size) + model.DoorbellLat
}

// SenderOverheadStd reports the same for the standard path.
func SenderOverheadStd(size int) sim.Duration {
	return model.UcxPostOverhead + model.UcxFlowOverhead + model.TierFor(size).Overhead +
		model.DoorbellLat + model.UcxCompOverhead
}

// Flush invokes cb once every currently outstanding standard-path put has
// completed. Implementation detail: completions are strictly ordered
// through the sender CPU resource, so waiting for the count to drain at
// each event suffices.
func (ep *Endpoint) Flush(cb func()) {
	eng := ep.engine()
	var check func()
	check = func() {
		if ep.inflight == 0 && len(ep.backlog) == 0 {
			cb()
			return
		}
		eng.After(100*sim.Nanosecond, check)
	}
	check()
}

// String describes the endpoint for diagnostics.
func (ep *Endpoint) String() string {
	return fmt.Sprintf("ep(%s->%s, window %d, inflight %d)",
		ep.Local.NIC.Label(), ep.Remote.NIC.Label(), ep.window, ep.inflight)
}
