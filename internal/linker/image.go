// Package linker implements the Two-Chains link and load pipeline:
//
//   - LinkLibrary combines relocatable objects into a shared-library Image
//     (the paper's "ried" container and the Local Function library);
//   - Load maps an Image into a node's address space, binding its GOT
//     against the node's symbol namespace — standard dynamic linking;
//   - BuildJam extracts a single function (plus its read-only data) from an
//     object and statically rewrites its GOT accesses to indirect through a
//     pointer stored just before the code, producing a relocatable "jam"
//     that can execute at any address on any receiver (paper §III-B).
package linker

import (
	"encoding/binary"
	"fmt"
	"sort"

	"twochains/internal/elfobj"
)

// PageAlign is the section alignment inside a linked image, chosen so the
// loader can apply distinct page permissions per section.
const PageAlign = 4096

// ImageMagic identifies a serialized Image ("TCSO").
const ImageMagic = 0x4f534354

// ImageSym is an exported symbol, at an image-relative offset.
type ImageSym struct {
	Name string
	Off  uint32
	Kind elfobj.SymKind
}

// GotEntry describes one GOT slot. Local entries bind to an offset inside
// the image; external entries bind by name through the node namespace at
// load time.
type GotEntry struct {
	Sym   string // diagnostic name (always set)
	Local bool
	Off   uint32 // image-relative target when Local
}

// LoadReloc is an 8-byte pointer fixup applied at load time (RelAbs64).
type LoadReloc struct {
	Off    uint32 // image-relative location of the pointer
	Sym    string // external symbol name when not Local
	Local  bool
	Target uint32 // image-relative target when Local
	Addend int32
}

// Image is a linked shared object with a fixed internal layout:
// [GOT][.text][.rodata][.data][.bss], each section page-aligned.
type Image struct {
	Name string
	Blob []byte // GOT placeholder through end of .data; .bss is implicit

	GotOff, GotLen       int
	TextOff, TextLen     int
	RodataOff, RodataLen int
	DataOff, DataLen     int
	BssOff, BssLen       int
	TotalSize            int

	Exports    []ImageSym
	Got        []GotEntry
	LoadRelocs []LoadReloc
}

// FindExport returns the image-relative offset of an exported symbol.
func (img *Image) FindExport(name string) (ImageSym, bool) {
	for _, s := range img.Exports {
		if s.Name == name {
			return s, true
		}
	}
	return ImageSym{}, false
}

// Externs returns the names of external symbols the image needs at load.
func (img *Image) Externs() []string {
	seen := map[string]bool{}
	var out []string
	for _, g := range img.Got {
		if !g.Local && !seen[g.Sym] {
			seen[g.Sym] = true
			out = append(out, g.Sym)
		}
	}
	for _, lr := range img.LoadRelocs {
		if !lr.Local && !seen[lr.Sym] {
			seen[lr.Sym] = true
			out = append(out, lr.Sym)
		}
	}
	sort.Strings(out)
	return out
}

// Encode serializes the image (the on-the-wire form of a ried).
func (img *Image) Encode() []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	str := func(s string) {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	u32(ImageMagic)
	str(img.Name)
	u32(uint32(len(img.Blob)))
	b = append(b, img.Blob...)
	for _, v := range []int{
		img.GotOff, img.GotLen, img.TextOff, img.TextLen,
		img.RodataOff, img.RodataLen, img.DataOff, img.DataLen,
		img.BssOff, img.BssLen, img.TotalSize,
	} {
		u32(uint32(v))
	}
	u32(uint32(len(img.Exports)))
	for _, e := range img.Exports {
		str(e.Name)
		u32(e.Off)
		b = append(b, byte(e.Kind))
	}
	u32(uint32(len(img.Got)))
	for _, g := range img.Got {
		str(g.Sym)
		flag := byte(0)
		if g.Local {
			flag = 1
		}
		b = append(b, flag)
		u32(g.Off)
	}
	u32(uint32(len(img.LoadRelocs)))
	for _, lr := range img.LoadRelocs {
		str(lr.Sym)
		flag := byte(0)
		if lr.Local {
			flag = 1
		}
		b = append(b, flag)
		u32(lr.Off)
		u32(lr.Target)
		u32(uint32(lr.Addend))
	}
	return b
}

// DecodeImage parses a serialized image.
func DecodeImage(data []byte) (*Image, error) {
	off := 0
	fail := func(what string) (*Image, error) {
		return nil, fmt.Errorf("linker: truncated image at %s (offset %d)", what, off)
	}
	u32 := func() (uint32, bool) {
		if off+4 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, true
	}
	str := func() (string, bool) {
		if off+2 > len(data) {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+n > len(data) {
			return "", false
		}
		s := string(data[off : off+n])
		off += n
		return s, true
	}
	magic, ok := u32()
	if !ok || magic != ImageMagic {
		return nil, fmt.Errorf("linker: bad image magic")
	}
	img := &Image{}
	if img.Name, ok = str(); !ok {
		return fail("name")
	}
	blobLen, ok := u32()
	if !ok || off+int(blobLen) > len(data) {
		return fail("blob")
	}
	img.Blob = make([]byte, blobLen)
	copy(img.Blob, data[off:off+int(blobLen)])
	off += int(blobLen)
	ptrs := []*int{
		&img.GotOff, &img.GotLen, &img.TextOff, &img.TextLen,
		&img.RodataOff, &img.RodataLen, &img.DataOff, &img.DataLen,
		&img.BssOff, &img.BssLen, &img.TotalSize,
	}
	for _, p := range ptrs {
		v, ok := u32()
		if !ok {
			return fail("layout")
		}
		*p = int(v)
	}
	nexp, ok := u32()
	if !ok || nexp > 1<<20 {
		return fail("exports")
	}
	for i := 0; i < int(nexp); i++ {
		var e ImageSym
		if e.Name, ok = str(); !ok {
			return fail("export name")
		}
		v, ok := u32()
		if !ok || off >= len(data) {
			return fail("export off")
		}
		e.Off = v
		e.Kind = elfobj.SymKind(data[off])
		off++
		img.Exports = append(img.Exports, e)
	}
	ngot, ok := u32()
	if !ok || ngot > 1<<20 {
		return fail("got")
	}
	for i := 0; i < int(ngot); i++ {
		var g GotEntry
		if g.Sym, ok = str(); !ok {
			return fail("got sym")
		}
		if off >= len(data) {
			return fail("got flag")
		}
		g.Local = data[off] == 1
		off++
		v, ok := u32()
		if !ok {
			return fail("got off")
		}
		g.Off = v
		img.Got = append(img.Got, g)
	}
	nlr, ok := u32()
	if !ok || nlr > 1<<20 {
		return fail("loadrelocs")
	}
	for i := 0; i < int(nlr); i++ {
		var lr LoadReloc
		if lr.Sym, ok = str(); !ok {
			return fail("loadreloc sym")
		}
		if off >= len(data) {
			return fail("loadreloc flag")
		}
		lr.Local = data[off] == 1
		off++
		a, ok1 := u32()
		b2, ok2 := u32()
		c, ok3 := u32()
		if !ok1 || !ok2 || !ok3 {
			return fail("loadreloc fields")
		}
		lr.Off, lr.Target, lr.Addend = a, b2, int32(c)
		img.LoadRelocs = append(img.LoadRelocs, lr)
	}
	return img, nil
}
