package linker

import (
	"fmt"

	"twochains/internal/elfobj"
	"twochains/internal/isa"
)

func alignUp(v, a int) int { return (v + a - 1) / a * a }

// def records the object that defines a global symbol.
type def struct {
	objIdx int
	sym    elfobj.Symbol
}

// LinkLibrary links objects into a shared-library image. All global defined
// symbols are exported; references to symbols not defined by any input
// become external GOT entries or load relocations bound at load time.
func LinkLibrary(name string, objs []*elfobj.Object) (*Image, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("linker: %s: no input objects", name)
	}
	for _, o := range objs {
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("linker: %s: %w", name, err)
		}
	}

	// Pass 1: lay out sections (concatenated per kind) and index symbols.
	type secBase struct{ text, rodata, data, bss int }
	bases := make([]secBase, len(objs))
	var textLen, rodataLen, dataLen, bssLen int
	for i, o := range objs {
		bases[i].text = textLen
		textLen += len(o.Text)
		bases[i].rodata = alignUp(rodataLen, 16)
		rodataLen = bases[i].rodata + len(o.Rodata)
		bases[i].data = alignUp(dataLen, 16)
		dataLen = bases[i].data + len(o.Data)
		bases[i].bss = alignUp(bssLen, 16)
		bssLen = bases[i].bss + int(o.BssSize)
	}

	// Section-relative offset of a defined symbol, before image layout.
	secRel := func(objIdx int, s elfobj.Symbol) int {
		switch s.Section {
		case elfobj.SecText:
			return bases[objIdx].text + int(s.Value)
		case elfobj.SecRodata:
			return bases[objIdx].rodata + int(s.Value)
		case elfobj.SecData:
			return bases[objIdx].data + int(s.Value)
		case elfobj.SecBss:
			return bases[objIdx].bss + int(s.Value)
		}
		return -1
	}

	// Global symbol resolution across objects.
	globals := map[string]def{}
	for i, o := range objs {
		for _, s := range o.Symbols {
			if s.Defined() && s.Binding == elfobj.BindGlobal {
				if prev, dup := globals[s.Name]; dup {
					return nil, fmt.Errorf("linker: %s: symbol %q defined in both %s and %s",
						name, s.Name, objs[prev.objIdx].Name, o.Name)
				}
				globals[s.Name] = def{i, s}
			}
		}
	}

	// Image layout: [GOT][text][rodata][data][bss], page-aligned sections.
	// The GOT size is known only after scanning relocations, so collect
	// GOT entries first, keyed to dedupe: globals/externs by name, locals
	// by (object, name).
	type gotKey struct {
		obj  int // -1 for global/extern
		name string
	}
	gotIdx := map[gotKey]int{}
	var gotEntries []GotEntry

	gotSlot := func(objIdx int, s elfobj.Symbol) int {
		key := gotKey{-1, s.Name}
		entry := GotEntry{Sym: s.Name}
		if g, isGlobal := globals[s.Name]; isGlobal {
			entry.Local = true
			entry.Off = uint32(secRel(g.objIdx, g.sym)) // fixed up to image offsets below
		} else if s.Defined() {
			// Local symbol referenced through the GOT.
			key = gotKey{objIdx, s.Name}
			entry.Local = true
			entry.Off = uint32(secRel(objIdx, s))
		}
		if i, ok := gotIdx[key]; ok {
			return i
		}
		gotIdx[key] = len(gotEntries)
		gotEntries = append(gotEntries, entry)
		return len(gotEntries) - 1
	}

	// Pre-scan RelGot to fix the GOT size. Other reloc types do not affect
	// layout. Iterate deterministically.
	for i, o := range objs {
		for _, r := range o.Relocs {
			if r.Type == elfobj.RelGot {
				s := o.Symbols[r.Sym]
				if s.Defined() || s.Binding == elfobj.BindGlobal {
					gotSlot(i, resolveSym(globals, i, s))
				} else {
					return nil, fmt.Errorf("linker: %s: %s: GOT reference to undefined local %q",
						name, o.Name, s.Name)
				}
			}
		}
	}

	img := &Image{Name: name}
	img.GotOff = 0
	img.GotLen = len(gotEntries) * 8
	img.TextOff = alignUp(img.GotOff+img.GotLen, PageAlign)
	img.TextLen = textLen
	img.RodataOff = alignUp(img.TextOff+img.TextLen, PageAlign)
	img.RodataLen = rodataLen
	img.DataOff = alignUp(img.RodataOff+img.RodataLen, PageAlign)
	img.DataLen = dataLen
	img.BssOff = alignUp(img.DataOff+img.DataLen, PageAlign)
	img.BssLen = bssLen
	img.TotalSize = alignUp(img.BssOff+img.BssLen, PageAlign)

	// imageOff converts a defined symbol to its final image offset.
	imageOff := func(objIdx int, s elfobj.Symbol) int {
		rel := secRel(objIdx, s)
		switch s.Section {
		case elfobj.SecText:
			return img.TextOff + rel
		case elfobj.SecRodata:
			return img.RodataOff + rel
		case elfobj.SecData:
			return img.DataOff + rel
		case elfobj.SecBss:
			return img.BssOff + rel
		}
		return -1
	}

	// Fix GOT local targets from section-relative to image offsets.
	for i := range gotEntries {
		if gotEntries[i].Local {
			// Re-resolve via the definition to apply section bases.
			if g, ok := globals[gotEntries[i].Sym]; ok {
				gotEntries[i].Off = uint32(imageOff(g.objIdx, g.sym))
			}
		}
	}
	// Local (non-global) GOT targets need per-object resolution; rebuild
	// them by re-scanning (their keys carry the object index).
	for key, idx := range gotIdx {
		if key.obj >= 0 {
			o := objs[key.obj]
			si := o.FindSymbol(key.name)
			gotEntries[idx].Off = uint32(imageOff(key.obj, o.Symbols[si]))
		}
	}
	img.Got = gotEntries

	// Build the blob and copy sections.
	img.Blob = make([]byte, img.BssOff)
	for i, o := range objs {
		copy(img.Blob[img.TextOff+bases[i].text:], o.Text)
		copy(img.Blob[img.RodataOff+bases[i].rodata:], o.Rodata)
		copy(img.Blob[img.DataOff+bases[i].data:], o.Data)
	}

	// Apply relocations.
	for i, o := range objs {
		for _, r := range o.Relocs {
			s := resolveSym(globals, i, o.Symbols[r.Sym])
			fixOff := 0
			switch r.Section {
			case elfobj.SecText:
				fixOff = img.TextOff + bases[i].text + int(r.Offset)
			case elfobj.SecRodata:
				fixOff = img.RodataOff + bases[i].rodata + int(r.Offset)
			case elfobj.SecData:
				fixOff = img.DataOff + bases[i].data + int(r.Offset)
			}
			switch r.Type {
			case elfobj.RelCall, elfobj.RelBranch:
				tgt, objIdx, ok := definedTarget(globals, objs, i, s)
				if !ok {
					return nil, fmt.Errorf("linker: %s: %s: direct %s to undefined symbol %q (use callg)",
						name, o.Name, r.Type, s.Name)
				}
				delta := imageOff(objIdx, tgt) - fixOff
				patchImm(img.Blob, fixOff, int32(delta/isa.InstrSize+int(r.Addend)))
			case elfobj.RelLea:
				tgt, objIdx, ok := definedTarget(globals, objs, i, s)
				if !ok {
					return nil, fmt.Errorf("linker: %s: %s: lea of undefined symbol %q",
						name, o.Name, s.Name)
				}
				delta := imageOff(objIdx, tgt) - fixOff
				patchImm(img.Blob, fixOff, int32(delta+int(r.Addend)))
			case elfobj.RelGot:
				slot := gotSlot(i, s)
				patchImm(img.Blob, fixOff, int32(slot))
			case elfobj.RelAbs64:
				lr := LoadReloc{Off: uint32(fixOff), Addend: r.Addend}
				if tgt, objIdx, ok := definedTarget(globals, objs, i, s); ok {
					lr.Local = true
					lr.Target = uint32(imageOff(objIdx, tgt))
					lr.Sym = s.Name
				} else {
					lr.Sym = s.Name
				}
				img.LoadRelocs = append(img.LoadRelocs, lr)
			}
		}
	}

	// Exports: all global definitions.
	for symName, d := range globals {
		img.Exports = append(img.Exports, ImageSym{
			Name: symName,
			Off:  uint32(imageOff(d.objIdx, d.sym)),
			Kind: d.sym.Kind,
		})
	}
	sortExports(img.Exports)
	return img, nil
}

// resolveSym maps an object-level symbol to its authoritative definition:
// a global name resolves across objects; locals stay as-is.
func resolveSym(globals map[string]def, objIdx int, s elfobj.Symbol) elfobj.Symbol {
	if s.Defined() && s.Binding == elfobj.BindLocal {
		return s
	}
	if g, ok := globals[s.Name]; ok {
		return g.sym
	}
	return s // undefined external
}

// definedTarget finds the defining object for a symbol reference.
func definedTarget(globals map[string]def, objs []*elfobj.Object, objIdx int, s elfobj.Symbol) (elfobj.Symbol, int, bool) {
	if s.Defined() && s.Binding == elfobj.BindLocal {
		return s, objIdx, true
	}
	if g, ok := globals[s.Name]; ok {
		return g.sym, g.objIdx, true
	}
	return elfobj.Symbol{}, 0, false
}

// patchImm writes v into the imm field (bytes 4-7) of the instruction at
// byte offset off.
func patchImm(blob []byte, off int, v int32) {
	u := uint32(v)
	blob[off+4] = byte(u)
	blob[off+5] = byte(u >> 8)
	blob[off+6] = byte(u >> 16)
	blob[off+7] = byte(u >> 24)
}

func sortExports(exps []ImageSym) {
	for i := 1; i < len(exps); i++ {
		for j := i; j > 0 && exps[j].Name < exps[j-1].Name; j-- {
			exps[j], exps[j-1] = exps[j-1], exps[j]
		}
	}
}
