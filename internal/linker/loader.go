package linker

import (
	"fmt"

	"twochains/internal/mem"
)

// Namespace is a node's dynamic symbol table: every loaded library's
// exports plus the native ("existing C library") symbols. It is the
// per-process name-resolution mechanism the paper contrasts with global
// namespace managers: names bind locally, at load time, per process.
type Namespace struct {
	syms map[string]uint64
}

// NewNamespace returns an empty namespace.
func NewNamespace() *Namespace {
	return &Namespace{syms: map[string]uint64{}}
}

// Define binds name to va. Redefinition is an error: interposition is a
// deliberate act done by loading a new library with ReplaceOK semantics
// (see Redefine), not an accident.
func (ns *Namespace) Define(name string, va uint64) error {
	if _, dup := ns.syms[name]; dup {
		return fmt.Errorf("linker: symbol %q already defined", name)
	}
	ns.syms[name] = va
	return nil
}

// Redefine binds name to va, replacing any existing binding. This is the
// remote-linking update path: loading a new ried version changes the
// resolution of fixed symbolic names for subsequent messages (paper §III).
func (ns *Namespace) Redefine(name string, va uint64) {
	ns.syms[name] = va
}

// Lookup resolves a name.
func (ns *Namespace) Lookup(name string) (uint64, bool) {
	va, ok := ns.syms[name]
	return va, ok
}

// Names returns all bound names (unordered).
func (ns *Namespace) Names() []string {
	out := make([]string, 0, len(ns.syms))
	for n := range ns.syms {
		out = append(out, n)
	}
	return out
}

// Snapshot copies the bindings, for the sender-side mirror created by the
// namespace-exchange step of the Two-Chains runtime.
func (ns *Namespace) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(ns.syms))
	for k, v := range ns.syms {
		out[k] = v
	}
	return out
}

// Loaded is a library mapped into one node's address space.
type Loaded struct {
	Image *Image
	Base  uint64 // VA of image offset 0

	GotVA   uint64
	TextVA  uint64
	TextLen int
	Exports map[string]uint64 // resolved export VAs
}

// LoadOptions control security-relevant loader behaviour (paper §V).
type LoadOptions struct {
	// ReadOnlyGOT remaps the GOT read-only after binding, the defence the
	// paper cites against GOT-overwrite attacks.
	ReadOnlyGOT bool
	// Replace allows this image's exports to replace existing namespace
	// bindings (dynamic update of a previously loaded ried).
	Replace bool
}

// Load maps img into the address space, binds its GOT and load-time
// relocations against ns, applies section permissions, and registers the
// image's exports in ns.
func Load(as *mem.AddressSpace, ns *Namespace, img *Image, opts LoadOptions) (*Loaded, error) {
	base, err := as.AllocPages("lib:"+img.Name, img.TotalSize, mem.PermRW)
	if err != nil {
		return nil, fmt.Errorf("linker: load %s: %w", img.Name, err)
	}
	if err := as.WriteBytes(base, img.Blob); err != nil {
		return nil, fmt.Errorf("linker: load %s: copy: %w", img.Name, err)
	}
	// .bss is already zero (fresh pages).

	resolve := func(sym string, local bool, target uint32) (uint64, error) {
		if local {
			return base + uint64(target), nil
		}
		va, ok := ns.Lookup(sym)
		if !ok {
			return 0, fmt.Errorf("linker: load %s: undefined symbol %q", img.Name, sym)
		}
		return va, nil
	}

	// Bind the GOT.
	for i, g := range img.Got {
		va, err := resolve(g.Sym, g.Local, g.Off)
		if err != nil {
			return nil, err
		}
		if err := as.WriteU64(base+uint64(img.GotOff)+uint64(i*8), va); err != nil {
			return nil, err
		}
	}
	// Apply load relocations.
	for _, lr := range img.LoadRelocs {
		va, err := resolve(lr.Sym, lr.Local, lr.Target)
		if err != nil {
			return nil, err
		}
		if err := as.WriteU64(base+uint64(lr.Off), uint64(int64(va)+int64(lr.Addend))); err != nil {
			return nil, err
		}
	}

	// Section permissions.
	perm := func(off, length int, p mem.Perm) error {
		if length == 0 {
			return nil
		}
		return as.Protect(base+uint64(off), length, p)
	}
	gotPerm := mem.PermRW
	if opts.ReadOnlyGOT {
		gotPerm = mem.PermR
	}
	if img.GotLen > 0 {
		if err := perm(img.GotOff, img.GotLen, gotPerm); err != nil {
			return nil, err
		}
	}
	if err := perm(img.TextOff, img.TextLen, mem.PermRX); err != nil {
		return nil, err
	}
	if err := perm(img.RodataOff, img.RodataLen, mem.PermR); err != nil {
		return nil, err
	}
	if err := perm(img.DataOff, img.DataLen, mem.PermRW); err != nil {
		return nil, err
	}
	if err := perm(img.BssOff, img.BssLen, mem.PermRW); err != nil {
		return nil, err
	}

	ld := &Loaded{
		Image:   img,
		Base:    base,
		GotVA:   base + uint64(img.GotOff),
		TextVA:  base + uint64(img.TextOff),
		TextLen: img.TextLen,
		Exports: map[string]uint64{},
	}
	for _, e := range img.Exports {
		va := base + uint64(e.Off)
		ld.Exports[e.Name] = va
		if opts.Replace {
			ns.Redefine(e.Name, va)
		} else if err := ns.Define(e.Name, va); err != nil {
			return nil, err
		}
	}
	return ld, nil
}
