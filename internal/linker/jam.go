package linker

import (
	"encoding/binary"
	"fmt"

	"twochains/internal/elfobj"
	"twochains/internal/isa"
)

// JamMagic identifies a serialized jam ("TCJM").
const JamMagic = 0x4d4a4354

// GotSym is one slot of a jam's travelling GOT table, in slot order.
// External slots are bound by the sender to receiver virtual addresses
// (after the namespace exchange); local slots point back into the jam body
// itself and are bound relative to wherever the code lands.
type GotSym struct {
	Name  string
	Local bool
	Off   uint32 // body-relative target when Local
}

// Jam is a mobile code segment: one function (with its read-only data)
// statically rewritten so all GOT accesses indirect through a pointer
// stored at codeBase-8. The shipped layout inside a message frame is:
//
//	[GOT table: K*8 bytes][GOT pointer: 8 bytes][body: text+rodata]
//
// with the GOT pointer slot immediately before the code, exactly as in
// Fig. 2 of the paper ("the GOT redirect is located just before the code
// in the message, and is set by the sender after an exchange with the
// receiver").
type Jam struct {
	Name    string
	Entry   uint32 // byte offset of the entry point within Body
	TextLen int    // executable prefix of Body; the rest is rodata
	Body    []byte
	Got     []GotSym
}

// GotTableLen returns the size in bytes of the travelling GOT table.
func (j *Jam) GotTableLen() int { return len(j.Got) * 8 }

// ShippedSize returns the number of bytes the jam occupies in a message:
// GOT table + GOT pointer slot + body. This is the paper's "code size when
// shipped" (1408 bytes for Indirect Put).
func (j *Jam) ShippedSize() int { return j.GotTableLen() + 8 + len(j.Body) }

// Externs lists the external symbol names in slot order (duplicates
// removed), the set the sender must resolve on the receiver.
func (j *Jam) Externs() []string {
	var out []string
	for _, g := range j.Got {
		if !g.Local {
			out = append(out, g.Name)
		}
	}
	return out
}

// BuildJam extracts the function entry from a single-source object and
// performs the paper's static GOT transform: every CALLG/LDG (fixed
// PC-relative GOT access, produced by -fno-plt discipline) is rewritten to
// CALLP/LDP (indexed access through a pointer at a fixed location before
// the code), and the function's read-only data is appended to the body so
// the jam is self-contained ("implicitly pulls in read-only data to
// support functions like printf").
//
// Jams must be stateless: objects with .data or .bss, or with load-time
// pointer relocations, are rejected — mutable globals cannot travel.
func BuildJam(obj *elfobj.Object, entry string) (*Jam, error) {
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	if len(obj.Data) > 0 || obj.BssSize > 0 {
		return nil, fmt.Errorf("linker: jam %s: mutable globals (.data/.bss) cannot travel in a message", obj.Name)
	}
	ei := obj.FindSymbol(entry)
	if ei < 0 {
		return nil, fmt.Errorf("linker: jam %s: entry symbol %q not found", obj.Name, entry)
	}
	esym := obj.Symbols[ei]
	if !esym.Defined() || esym.Section != elfobj.SecText {
		return nil, fmt.Errorf("linker: jam %s: entry %q is not a defined function", obj.Name, entry)
	}

	body := make([]byte, 0, len(obj.Text)+len(obj.Rodata))
	body = append(body, obj.Text...)
	rodataOff := len(body) // text is always instruction aligned
	body = append(body, obj.Rodata...)

	j := &Jam{
		Name:    entry,
		Entry:   esym.Value,
		TextLen: len(obj.Text),
		Body:    body,
	}

	// Body-relative offset of a defined symbol.
	bodyOff := func(s elfobj.Symbol) (uint32, error) {
		switch s.Section {
		case elfobj.SecText:
			return s.Value, nil
		case elfobj.SecRodata:
			return uint32(rodataOff) + s.Value, nil
		}
		return 0, fmt.Errorf("linker: jam %s: reference to %s symbol %q", obj.Name, s.Section, s.Name)
	}

	// Slot assignment, deduplicated by name (locals cannot collide with
	// externs inside one object: the assembler rejects that).
	slotIdx := map[string]int{}
	slotFor := func(s elfobj.Symbol) (int, error) {
		if i, ok := slotIdx[s.Name]; ok {
			return i, nil
		}
		g := GotSym{Name: s.Name}
		if s.Defined() {
			off, err := bodyOff(s)
			if err != nil {
				return 0, err
			}
			g.Local = true
			g.Off = off
		}
		slotIdx[s.Name] = len(j.Got)
		j.Got = append(j.Got, g)
		return len(j.Got) - 1, nil
	}

	for _, r := range obj.Relocs {
		switch r.Type {
		case elfobj.RelAbs64:
			return nil, fmt.Errorf("linker: jam %s: absolute pointer relocation cannot travel", obj.Name)
		case elfobj.RelGot:
			if r.Section != elfobj.SecText {
				return nil, fmt.Errorf("linker: jam %s: GOT reloc outside .text", obj.Name)
			}
			in := isa.Decode(j.Body[r.Offset:])
			switch in.Op {
			case isa.CALLG:
				in.Op = isa.CALLP
			case isa.LDG:
				in.Op = isa.LDP
			default:
				return nil, fmt.Errorf("linker: jam %s: GOT reloc on non-GOT instruction %s", obj.Name, in)
			}
			slot, err := slotFor(obj.Symbols[r.Sym])
			if err != nil {
				return nil, err
			}
			in.Imm = int32(slot)
			in.Encode(j.Body[r.Offset:])
		case elfobj.RelLea:
			s := obj.Symbols[r.Sym]
			if !s.Defined() {
				return nil, fmt.Errorf("linker: jam %s: lea of undefined symbol %q", obj.Name, s.Name)
			}
			tgt, err := bodyOff(s)
			if err != nil {
				return nil, err
			}
			in := isa.Decode(j.Body[r.Offset:])
			in.Imm = int32(int(tgt) - int(r.Offset) + int(r.Addend))
			in.Encode(j.Body[r.Offset:])
		case elfobj.RelCall, elfobj.RelBranch:
			// PC-relative within the body: already correct.
		}
	}
	return j, nil
}

// Encode serializes the jam for package installation.
func (j *Jam) Encode() []byte {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	str := func(s string) {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	u32(JamMagic)
	str(j.Name)
	u32(j.Entry)
	u32(uint32(j.TextLen))
	u32(uint32(len(j.Body)))
	b = append(b, j.Body...)
	u32(uint32(len(j.Got)))
	for _, g := range j.Got {
		str(g.Name)
		flag := byte(0)
		if g.Local {
			flag = 1
		}
		b = append(b, flag)
		u32(g.Off)
	}
	return b
}

// DecodeJam parses a serialized jam.
func DecodeJam(data []byte) (*Jam, error) {
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, true
	}
	str := func() (string, bool) {
		if off+2 > len(data) {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+n > len(data) {
			return "", false
		}
		s := string(data[off : off+n])
		off += n
		return s, true
	}
	magic, ok := u32()
	if !ok || magic != JamMagic {
		return nil, fmt.Errorf("linker: bad jam magic")
	}
	j := &Jam{}
	if j.Name, ok = str(); !ok {
		return nil, fmt.Errorf("linker: truncated jam name")
	}
	e, ok1 := u32()
	tl, ok2 := u32()
	bl, ok3 := u32()
	if !ok1 || !ok2 || !ok3 || off+int(bl) > len(data) {
		return nil, fmt.Errorf("linker: truncated jam body")
	}
	j.Entry = e
	j.TextLen = int(tl)
	j.Body = make([]byte, bl)
	copy(j.Body, data[off:off+int(bl)])
	off += int(bl)
	ng, ok := u32()
	if !ok || ng > 1<<16 {
		return nil, fmt.Errorf("linker: truncated jam GOT")
	}
	for i := 0; i < int(ng); i++ {
		var g GotSym
		if g.Name, ok = str(); !ok {
			return nil, fmt.Errorf("linker: truncated jam GOT name")
		}
		if off >= len(data) {
			return nil, fmt.Errorf("linker: truncated jam GOT flag")
		}
		g.Local = data[off] == 1
		off++
		v, ok := u32()
		if !ok {
			return nil, fmt.Errorf("linker: truncated jam GOT off")
		}
		g.Off = v
		j.Got = append(j.Got, g)
	}
	if j.TextLen > len(j.Body) || j.TextLen%isa.InstrSize != 0 {
		return nil, fmt.Errorf("linker: jam %s: bad text length %d", j.Name, j.TextLen)
	}
	if int(j.Entry) >= j.TextLen {
		return nil, fmt.Errorf("linker: jam %s: entry %d outside text", j.Name, j.Entry)
	}
	return j, nil
}
