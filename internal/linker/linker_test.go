package linker

import (
	"reflect"
	"strings"
	"testing"

	"twochains/internal/asm"
	"twochains/internal/elfobj"
	"twochains/internal/isa"
	"twochains/internal/mem"
)

func mustAsm(t *testing.T, name, src string) *elfobj.Object {
	t.Helper()
	o, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

const libASrc = `
.text
.extern memcpy
.extern beta
.global alpha
alpha:
    callg memcpy
    callg beta        ; cross-object via GOT
    lea   r0, greet
    ret
.rodata
greet:
    .asciz "hi"
`

const libBSrc = `
.text
.global beta
beta:
    movi r0, 7
    ret
.data
.global counter
counter:
    .quad 0
fptr:
    .quad beta
.bss
.global scratch
scratch:
    .space 256
`

func linkAB(t *testing.T) *Image {
	t.Helper()
	img, err := LinkLibrary("libtest", []*elfobj.Object{
		mustAsm(t, "a.s", libASrc),
		mustAsm(t, "b.s", libBSrc),
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestLinkLayoutAndExports(t *testing.T) {
	img := linkAB(t)
	for _, name := range []string{"alpha", "beta", "counter", "scratch"} {
		if _, ok := img.FindExport(name); !ok {
			t.Errorf("export %q missing", name)
		}
	}
	if _, ok := img.FindExport("fptr"); ok {
		t.Error("local symbol fptr exported")
	}
	if img.TextOff%PageAlign != 0 || img.DataOff%PageAlign != 0 {
		t.Errorf("sections not page aligned: text=%d data=%d", img.TextOff, img.DataOff)
	}
	if img.BssLen < 256 {
		t.Errorf("bss %d, want >= 256", img.BssLen)
	}
}

func TestLinkGotSlots(t *testing.T) {
	img := linkAB(t)
	// memcpy extern + beta local = 2 slots.
	if len(img.Got) != 2 {
		t.Fatalf("GOT entries = %d, want 2: %+v", len(img.Got), img.Got)
	}
	byName := map[string]GotEntry{}
	for _, g := range img.Got {
		byName[g.Sym] = g
	}
	if e := byName["memcpy"]; e.Local {
		t.Error("memcpy should be external")
	}
	if e := byName["beta"]; !e.Local {
		t.Error("beta should be local")
	}
	betaExp, _ := img.FindExport("beta")
	if byName["beta"].Off != betaExp.Off {
		t.Errorf("beta GOT target %d != export %d", byName["beta"].Off, betaExp.Off)
	}
	if got := img.Externs(); !reflect.DeepEqual(got, []string{"memcpy"}) {
		t.Errorf("Externs = %v", got)
	}
}

func TestLinkPatchesGotSlotIndices(t *testing.T) {
	img := linkAB(t)
	alpha, _ := img.FindExport("alpha")
	in0 := isa.Decode(img.Blob[alpha.Off:])
	in1 := isa.Decode(img.Blob[alpha.Off+8:])
	if in0.Op != isa.CALLG || in1.Op != isa.CALLG {
		t.Fatalf("ops: %v %v", in0, in1)
	}
	if in0.Imm == in1.Imm {
		t.Error("distinct symbols share a GOT slot")
	}
	if int(in0.Imm) >= len(img.Got) || int(in1.Imm) >= len(img.Got) {
		t.Error("slot index out of range")
	}
}

func TestLinkLeaResolution(t *testing.T) {
	img := linkAB(t)
	alpha, _ := img.FindExport("alpha")
	lea := isa.Decode(img.Blob[alpha.Off+16:])
	if lea.Op != isa.LEA {
		t.Fatalf("expected lea, got %v", lea)
	}
	target := int(alpha.Off) + 16 + int(lea.Imm)
	if got := string(img.Blob[target : target+2]); got != "hi" {
		t.Errorf("lea points at %q", got)
	}
}

func TestLinkDuplicateGlobalRejected(t *testing.T) {
	a := mustAsm(t, "a.s", ".text\n.global f\nf:\n    ret\n")
	b := mustAsm(t, "b.s", ".text\n.global f\nf:\n    ret\n")
	if _, err := LinkLibrary("dup", []*elfobj.Object{a, b}); err == nil {
		t.Fatal("duplicate global accepted")
	}
}

func TestLinkNoObjects(t *testing.T) {
	if _, err := LinkLibrary("empty", nil); err == nil {
		t.Fatal("empty link accepted")
	}
}

func TestImageEncodeDecodeRoundTrip(t *testing.T) {
	img := linkAB(t)
	back, err := DecodeImage(img.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(img, back) {
		t.Fatalf("image round trip mismatch")
	}
}

func TestDecodeImageGarbage(t *testing.T) {
	if _, err := DecodeImage([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage image accepted")
	}
	data := linkAB(t).Encode()
	for _, cut := range []int{4, 10, len(data) / 2, len(data) - 1} {
		if _, err := DecodeImage(data[:cut]); err == nil {
			t.Fatalf("truncated image (%d) accepted", cut)
		}
	}
}

func newSpace(t *testing.T) (*mem.AddressSpace, *Namespace) {
	t.Helper()
	as := mem.NewAddressSpace(4 << 20)
	ns := NewNamespace()
	return as, ns
}

func TestLoadBindsGotAndExports(t *testing.T) {
	as, ns := newSpace(t)
	if err := ns.Define("memcpy", 0xDEAD000); err != nil {
		t.Fatal(err)
	}
	img := linkAB(t)
	ld, err := Load(as, ns, img, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// GOT slot for memcpy holds the native VA; slot for beta holds its VA.
	var memcpySlot, betaSlot = -1, -1
	for i, g := range img.Got {
		switch g.Sym {
		case "memcpy":
			memcpySlot = i
		case "beta":
			betaSlot = i
		}
	}
	v, err := as.ReadU64(ld.GotVA + uint64(memcpySlot*8))
	if err != nil || v != 0xDEAD000 {
		t.Fatalf("memcpy GOT = %#x, %v", v, err)
	}
	betaVA, ok := ns.Lookup("beta")
	if !ok {
		t.Fatal("beta not in namespace after load")
	}
	v, _ = as.ReadU64(ld.GotVA + uint64(betaSlot*8))
	if v != betaVA {
		t.Fatalf("beta GOT %#x != namespace %#x", v, betaVA)
	}
}

func TestLoadAppliesLoadRelocs(t *testing.T) {
	as, ns := newSpace(t)
	if err := ns.Define("memcpy", 0xDEAD000); err != nil {
		t.Fatal(err)
	}
	img := linkAB(t)
	ld, err := Load(as, ns, img, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// fptr (.quad beta) must hold beta's VA.
	var fptrOff uint32
	found := false
	for _, lr := range img.LoadRelocs {
		if lr.Sym == "beta" {
			fptrOff = lr.Off
			found = true
		}
	}
	if !found {
		t.Fatal("no load reloc for beta")
	}
	v, err := as.ReadU64(ld.Base + uint64(fptrOff))
	if err != nil {
		t.Fatal(err)
	}
	if v != ld.Exports["beta"] {
		t.Fatalf("fptr = %#x, want %#x", v, ld.Exports["beta"])
	}
}

func TestLoadPermissions(t *testing.T) {
	as, ns := newSpace(t)
	if err := ns.Define("memcpy", 0xDEAD000); err != nil {
		t.Fatal(err)
	}
	img := linkAB(t)
	ld, err := Load(as, ns, img, LoadOptions{ReadOnlyGOT: true})
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := as.PermAt(ld.TextVA); p != mem.PermRX {
		t.Errorf("text perm %s", p)
	}
	if p, _ := as.PermAt(ld.GotVA); p != mem.PermR {
		t.Errorf("GOT perm %s, want r-- with ReadOnlyGOT", p)
	}
	if err := as.WriteU64(ld.GotVA, 0x41414141); err == nil {
		t.Error("GOT overwrite succeeded despite ReadOnlyGOT")
	}
	dataVA := ld.Base + uint64(img.DataOff)
	if p, _ := as.PermAt(dataVA); p != mem.PermRW {
		t.Errorf("data perm %s", p)
	}
}

func TestLoadUndefinedSymbolFails(t *testing.T) {
	as, ns := newSpace(t) // no memcpy defined
	img := linkAB(t)
	if _, err := Load(as, ns, img, LoadOptions{}); err == nil ||
		!strings.Contains(err.Error(), "memcpy") {
		t.Fatalf("undefined symbol load: %v", err)
	}
}

func TestLoadReplaceSemantics(t *testing.T) {
	as, ns := newSpace(t)
	v1 := mustAsm(t, "v1.s", ".text\n.global handler\nhandler:\n    movi r0, 1\n    ret\n")
	v2 := mustAsm(t, "v2.s", ".text\n.global handler\nhandler:\n    movi r0, 2\n    ret\n")
	img1, err := LinkLibrary("h1", []*elfobj.Object{v1})
	if err != nil {
		t.Fatal(err)
	}
	img2, err := LinkLibrary("h2", []*elfobj.Object{v2})
	if err != nil {
		t.Fatal(err)
	}
	ld1, err := Load(as, ns, img1, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A second definition without Replace fails...
	if _, err := Load(as, ns, img2, LoadOptions{}); err == nil {
		t.Fatal("duplicate definition accepted without Replace")
	}
	// ...and succeeds with Replace, rebinding the name (remote linking
	// update semantics).
	ld2, err := Load(as, ns, img2, LoadOptions{Replace: true})
	if err != nil {
		t.Fatal(err)
	}
	va, _ := ns.Lookup("handler")
	if va != ld2.Exports["handler"] || va == ld1.Exports["handler"] {
		t.Fatal("namespace not rebound to v2")
	}
}

const jamSrc = `
.text
.extern memcpy
.extern tc_result_store
.global jam_copy
jam_copy:
    callg memcpy
    ldg   r1, tc_result_store
    call  helper
    lea   r2, fmt
    ret
helper:
    callg memcpy      ; same extern again: same slot
    ret
.rodata
fmt:
    .asciz "copied %d\n"
`

func buildJam(t *testing.T) *Jam {
	t.Helper()
	j, err := BuildJam(mustAsm(t, "jam_copy.amc", jamSrc), "jam_copy")
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestBuildJamTransformsGotOps(t *testing.T) {
	j := buildJam(t)
	ins, err := isa.DecodeAll(j.Body[:j.TextLen])
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ins {
		if in.Op == isa.CALLG || in.Op == isa.LDG {
			t.Fatalf("untransformed GOT op remains: %v", in)
		}
	}
	if ins[0].Op != isa.CALLP {
		t.Fatalf("first op %v, want callp", ins[0])
	}
	if ins[1].Op != isa.LDP {
		t.Fatalf("second op %v, want ldp", ins[1])
	}
}

func TestBuildJamSlotDedupe(t *testing.T) {
	j := buildJam(t)
	if len(j.Got) != 2 {
		t.Fatalf("GOT slots = %d, want 2 (memcpy deduped): %+v", len(j.Got), j.Got)
	}
	ins, _ := isa.DecodeAll(j.Body[:j.TextLen])
	// jam_copy's callp and helper's callp must share the memcpy slot.
	if ins[0].Imm != ins[5].Imm {
		t.Fatalf("memcpy slots differ: %d vs %d", ins[0].Imm, ins[5].Imm)
	}
	if got := j.Externs(); !reflect.DeepEqual(got, []string{"memcpy", "tc_result_store"}) {
		t.Fatalf("Externs = %v", got)
	}
}

func TestBuildJamLeaPointsIntoBody(t *testing.T) {
	j := buildJam(t)
	ins, _ := isa.DecodeAll(j.Body[:j.TextLen])
	lea := ins[3]
	if lea.Op != isa.LEA {
		t.Fatalf("ins[3] = %v", lea)
	}
	target := 3*isa.InstrSize + int(lea.Imm)
	if target < j.TextLen || target >= len(j.Body) {
		t.Fatalf("lea target %d outside rodata [%d,%d)", target, j.TextLen, len(j.Body))
	}
	if !strings.HasPrefix(string(j.Body[target:]), "copied") {
		t.Fatalf("lea points at %q", j.Body[target:target+6])
	}
}

func TestBuildJamInternalCallPreserved(t *testing.T) {
	j := buildJam(t)
	ins, _ := isa.DecodeAll(j.Body[:j.TextLen])
	call := ins[2]
	if call.Op != isa.CALL || call.Imm != 3 {
		t.Fatalf("internal call = %v, want pc-relative +3", call)
	}
}

func TestBuildJamShippedSize(t *testing.T) {
	j := buildJam(t)
	want := len(j.Got)*8 + 8 + len(j.Body)
	if j.ShippedSize() != want {
		t.Fatalf("ShippedSize = %d, want %d", j.ShippedSize(), want)
	}
}

func TestBuildJamRejectsMutableState(t *testing.T) {
	withData := mustAsm(t, "bad.amc", ".text\n.global f\nf:\n    ret\n.data\nx:\n    .quad 1\n")
	if _, err := BuildJam(withData, "f"); err == nil {
		t.Fatal("jam with .data accepted")
	}
	withBss := mustAsm(t, "bad2.amc", ".text\n.global f\nf:\n    ret\n.bss\nb:\n    .space 8\n")
	if _, err := BuildJam(withBss, "f"); err == nil {
		t.Fatal("jam with .bss accepted")
	}
}

func TestBuildJamRejectsMissingEntry(t *testing.T) {
	o := mustAsm(t, "j.amc", ".text\n.global f\nf:\n    ret\n")
	if _, err := BuildJam(o, "nope"); err == nil {
		t.Fatal("missing entry accepted")
	}
}

func TestJamEncodeDecodeRoundTrip(t *testing.T) {
	j := buildJam(t)
	back, err := DecodeJam(j.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, back) {
		t.Fatalf("jam round trip mismatch:\n%+v\n%+v", j, back)
	}
}

func TestDecodeJamGarbage(t *testing.T) {
	if _, err := DecodeJam([]byte{0, 1, 2}); err == nil {
		t.Fatal("garbage jam accepted")
	}
	data := buildJam(t).Encode()
	for _, cut := range []int{4, 8, len(data) - 1} {
		if _, err := DecodeJam(data[:cut]); err == nil {
			t.Fatalf("truncated jam (%d) accepted", cut)
		}
	}
}

func TestNamespaceSemantics(t *testing.T) {
	ns := NewNamespace()
	if err := ns.Define("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := ns.Define("x", 2); err == nil {
		t.Fatal("redefinition via Define accepted")
	}
	ns.Redefine("x", 3)
	if v, _ := ns.Lookup("x"); v != 3 {
		t.Fatalf("x = %d", v)
	}
	snap := ns.Snapshot()
	ns.Redefine("x", 4)
	if snap["x"] != 3 {
		t.Fatal("snapshot aliased live map")
	}
	if len(ns.Names()) != 1 {
		t.Fatal("Names wrong")
	}
}
