package simnet

import (
	"strings"
	"testing"

	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
)

type host struct {
	as  *mem.AddressSpace
	nic *NIC
	buf uint64
	key RKey
}

func twoHosts(t *testing.T, cfg Config, access Access) (*sim.Engine, *host, *host) {
	t.Helper()
	eng := sim.NewEngine()
	f := NewFabric(eng, cfg)
	mk := func() *host {
		h := &host{as: mem.NewAddressSpace(1 << 20)}
		h.nic = f.AttachNIC(h.as, nil)
		var err error
		h.buf, err = h.as.AllocPages("buf", 64*1024, mem.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		h.key, err = h.nic.RegisterMemory(h.buf, 64*1024, access)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	return eng, mk(), mk()
}

func TestPutDeliversBytes(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	msg := []byte("injected function payload")
	if err := a.as.WriteBytes(a.buf, msg); err != nil {
		t.Fatal(err)
	}
	var res PutResult
	a.nic.Put(b.nic, a.buf, b.buf, len(msg), b.key, func(r PutResult) { res = r })
	eng.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	got, _ := b.as.ReadBytes(b.buf, len(msg))
	if string(got) != string(msg) {
		t.Fatalf("delivered %q", got)
	}
	if res.Delivered <= 0 {
		t.Fatal("no delivery time")
	}
}

func TestPutLatencyModel(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	var small, large sim.Time
	a.nic.Put(b.nic, a.buf, b.buf, 64, b.key, func(r PutResult) { small = r.Delivered })
	eng.Run()
	eng2, c, d := twoHosts(t, DefaultConfig(), RemoteWrite)
	c.nic.Put(d.nic, c.buf, d.buf, 32768, d.key, func(r PutResult) { large = r.Delivered })
	eng2.Run()
	if small <= 0 || large <= small {
		t.Fatalf("latencies: small=%v large=%v", small, large)
	}
	// A 64B put should be near the base latency.
	base := sim.Time(0).Add(model.PutBaseLat)
	if small < base || small > base.Add(sim.FromNanos(200)) {
		t.Fatalf("64B delivery at %v, base %v", small, base)
	}
	// 32KB is dominated by serialization: ~1.36us at 24 GB/s.
	wire := model.WireTime(32768)
	if large < sim.Time(0).Add(wire) {
		t.Fatalf("32KB delivered before wire time: %v < %v", large, wire)
	}
}

func TestInvalidRkeyRejected(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	var res PutResult
	a.nic.Put(b.nic, a.buf, b.buf, 64, b.key+1, func(r PutResult) { res = r })
	eng.Run()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "rkey") {
		t.Fatalf("err = %v", res.Err)
	}
	// Nothing delivered.
	if b.nic.Stats().PutsDelivered != 0 {
		t.Fatal("rejected put delivered")
	}
}

func TestOutOfRegistrationRejected(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	var res PutResult
	a.nic.Put(b.nic, a.buf, b.buf+64*1024-16, 64, b.key, func(r PutResult) { res = r })
	eng.Run()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "outside registration") {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestPermissionEnforced(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteRead) // write not granted
	var res PutResult
	a.nic.Put(b.nic, a.buf, b.buf, 64, b.key, func(r PutResult) { res = r })
	eng.Run()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "permission") {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestOrderedDelivery(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		a.nic.Put(b.nic, a.buf, b.buf+uint64(i*128), 128, b.key, func(r PutResult) {
			order = append(order, i)
		})
	}
	eng.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("deliveries reordered: %v", order)
		}
	}
}

func TestUnorderedFenceRestoresOrder(t *testing.T) {
	cfg := Config{Ordered: false, Seed: 7}
	eng, a, b := twoHosts(t, cfg, RemoteWrite)
	dataDone := sim.Time(0)
	sigDone := sim.Time(0)
	// Data put, then fence, then signal put: the signal must never arrive
	// before the data even on an unordered fabric.
	a.nic.Put(b.nic, a.buf, b.buf, 4096, b.key, func(r PutResult) { dataDone = r.Delivered })
	a.nic.Fence(b.nic)
	a.nic.Put(b.nic, a.buf, b.buf+8192, 8, b.key, func(r PutResult) { sigDone = r.Delivered })
	eng.Run()
	if sigDone < dataDone {
		t.Fatalf("signal (%v) arrived before data (%v) despite fence", sigDone, dataDone)
	}
}

func TestUnorderedCanReorderWithoutFence(t *testing.T) {
	// Sanity for the ablation: without a fence, an unordered fabric does
	// sometimes reorder a large put and a trailing small put.
	reordered := false
	for seed := uint64(1); seed <= 40 && !reordered; seed++ {
		cfg := Config{Ordered: false, Seed: seed}
		eng, a, b := twoHosts(t, cfg, RemoteWrite)
		var dataAt, sigAt sim.Time
		a.nic.Put(b.nic, a.buf, b.buf, 8192, b.key, func(r PutResult) { dataAt = r.Delivered })
		a.nic.Put(b.nic, a.buf, b.buf+16384, 8, b.key, func(r PutResult) { sigAt = r.Delivered })
		eng.Run()
		if sigAt < dataAt {
			reordered = true
		}
	}
	if !reordered {
		t.Fatal("unordered fabric never reordered in 40 seeds")
	}
}

func TestGetReadsRemote(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteRead|RemoteWrite)
	want := []byte("remote bytes")
	if err := b.as.WriteBytes(b.buf, want); err != nil {
		t.Fatal(err)
	}
	var res PutResult
	a.nic.Get(b.nic, b.buf, a.buf+1024, len(want), b.key, func(r PutResult) { res = r })
	eng.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	got, _ := a.as.ReadBytes(a.buf+1024, len(want))
	if string(got) != string(want) {
		t.Fatalf("get = %q", got)
	}
}

func TestAtomicFetchAdd(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteAtomic)
	if err := b.as.WriteU64(b.buf, 100); err != nil {
		t.Fatal(err)
	}
	var old uint64
	var res PutResult
	a.nic.AtomicFetchAdd(b.nic, b.buf, 42, b.key, func(o uint64, r PutResult) { old, res = o, r })
	eng.Run()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if old != 100 {
		t.Fatalf("old = %d", old)
	}
	v, _ := b.as.ReadU64(b.buf)
	if v != 142 {
		t.Fatalf("value = %d", v)
	}
}

func TestAtomicWithoutPermissionRejected(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	var res PutResult
	a.nic.AtomicFetchAdd(b.nic, b.buf, 1, b.key, func(_ uint64, r PutResult) { res = r })
	eng.Run()
	if res.Err == nil {
		t.Fatal("atomic without permission accepted")
	}
}

func TestDeliveryHookFires(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	var hookVA uint64
	var hookSize int
	b.nic.SetDeliveryHook(func(va uint64, size int) { hookVA, hookSize = va, size })
	a.nic.Put(b.nic, a.buf, b.buf+256, 128, b.key, nil)
	eng.Run()
	if hookVA != b.buf+256 || hookSize != 128 {
		t.Fatalf("hook got (0x%x, %d)", hookVA, hookSize)
	}
}

func TestStashOnDelivery(t *testing.T) {
	eng := sim.NewEngine()
	f := NewFabric(eng, DefaultConfig())
	asA := mem.NewAddressSpace(1 << 20)
	nicA := f.AttachNIC(asA, nil)
	bufA, _ := asA.AllocPages("a", 4096, mem.PermRW)

	asB := mem.NewAddressSpace(1 << 20)
	hierB := memsim.New(memsim.DefaultConfig())
	nicB := f.AttachNIC(asB, hierB)
	bufB, _ := asB.AllocPages("b", 4096, mem.PermRW)
	keyB, _ := nicB.RegisterMemory(bufB, 4096, RemoteWrite)

	nicA.Put(nicB, bufA, bufB, 512, keyB, nil)
	eng.Run()
	if lvl := hierB.Contains(bufB); lvl != "LLC" {
		t.Fatalf("delivered line in %s, want LLC (stashing on)", lvl)
	}
}

func TestPipelinedThroughputBoundedByWire(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	const n = 100
	const size = 16384
	var last sim.Time
	for i := 0; i < n; i++ {
		a.nic.Put(b.nic, a.buf, b.buf, size, b.key, func(r PutResult) {
			if r.Delivered > last {
				last = r.Delivered
			}
		})
	}
	eng.Run()
	elapsed := sim.Duration(last)
	wireFloor := sim.Duration(n) * model.WireTime(size)
	if elapsed < wireFloor {
		t.Fatalf("elapsed %v beats wire serialization %v", elapsed, wireFloor)
	}
	// But pipelining means we pay base latency only ~once, not n times.
	if elapsed > wireFloor+sim.Duration(4)*model.PutBaseLat {
		t.Fatalf("no pipelining: %v >> %v", elapsed, wireFloor)
	}
}

func TestStatsCounters(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	a.nic.Put(b.nic, a.buf, b.buf, 64, b.key, nil)
	a.nic.Put(b.nic, a.buf, b.buf, 64, b.key+1, nil) // rejected
	eng.Run()
	s := a.nic.Stats()
	if s.PutsSent != 2 || s.Rejected != 1 {
		t.Fatalf("stats %+v", s)
	}
	if b.nic.Stats().PutsDelivered != 1 {
		t.Fatalf("delivered %d", b.nic.Stats().PutsDelivered)
	}
}

func TestRegisterErrors(t *testing.T) {
	eng, a, _ := twoHosts(t, DefaultConfig(), RemoteWrite)
	_ = eng
	if _, err := a.nic.RegisterMemory(a.buf, 0, RemoteWrite); err == nil {
		t.Fatal("zero-size registration accepted")
	}
	if _, err := a.nic.RegisterMemory(0x10, 64, RemoteWrite); err == nil {
		t.Fatal("unmapped registration accepted")
	}
}

func TestDeregisterInvalidatesKey(t *testing.T) {
	eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
	b.nic.Deregister(b.key)
	var res PutResult
	a.nic.Put(b.nic, a.buf, b.buf, 64, b.key, func(r PutResult) { res = r })
	eng.Run()
	if res.Err == nil {
		t.Fatal("put with deregistered key accepted")
	}
}

// TestCrossDomainUplink: a put between fabric shards pays the spine hop
// and serializes through the shared uplink; same-shard traffic does not.
func TestCrossDomainUplink(t *testing.T) {
	lat := func(assign func(f *Fabric, a, b *NIC)) sim.Time {
		eng, a, b := twoHosts(t, DefaultConfig(), RemoteWrite)
		assign(a.nic.fabric, a.nic, b.nic)
		var done sim.Time
		a.nic.Put(b.nic, a.buf, b.buf, 256, b.key, func(r PutResult) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			done = r.Delivered
		})
		eng.Run()
		return done
	}
	intra := lat(func(f *Fabric, a, b *NIC) {})
	cross := lat(func(f *Fabric, a, b *NIC) {
		f.AssignDomain(a, 0)
		f.AssignDomain(b, 1)
	})
	if cross <= intra {
		t.Fatalf("cross-domain %v not slower than intra-domain %v", cross, intra)
	}
	if delta := cross.Sub(intra); delta < model.UplinkHopLat {
		t.Fatalf("cross-domain delta %v below hop latency %v", delta, model.UplinkHopLat)
	}

	// Two cross-domain puts from different senders contend on the shared
	// uplink: the second delivery is pushed out by the first's
	// serialization.
	eng := sim.NewEngine()
	f := NewFabric(eng, DefaultConfig())
	var hosts []*host
	for i := 0; i < 3; i++ {
		h := &host{as: mem.NewAddressSpace(1 << 20)}
		h.nic = f.AttachNIC(h.as, nil)
		var err error
		h.buf, err = h.as.AllocPages("buf", 64*1024, mem.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		h.key, err = h.nic.RegisterMemory(h.buf, 64*1024, RemoteWrite)
		if err != nil {
			t.Fatal(err)
		}
		hosts = append(hosts, h)
	}
	f.AssignDomain(hosts[0].nic, 0)
	f.AssignDomain(hosts[1].nic, 0)
	f.AssignDomain(hosts[2].nic, 1)
	const size = 32768
	var t1, t2 sim.Time
	hosts[0].nic.Put(hosts[2].nic, hosts[0].buf, hosts[2].buf, size, hosts[2].key,
		func(r PutResult) { t1 = r.Delivered })
	hosts[1].nic.Put(hosts[2].nic, hosts[1].buf, hosts[2].buf, size, hosts[2].key,
		func(r PutResult) { t2 = r.Delivered })
	eng.Run()
	later := t2
	if t1 > t2 {
		later = t1
	}
	if later.Sub(sim.Time(0)) < sim.Duration(2)*model.WireTime(size) {
		t.Fatalf("contended uplink delivery %v shows no serialization (wire %v)",
			later, model.WireTime(size))
	}
}
