// Package simnet simulates the RDMA interconnect of the paper's testbed:
// two (or more) hosts with ConnectX-6-class HCAs connected back-to-back.
//
// It provides the InfiniBand semantics Two-Chains depends on:
//
//   - memory registration with 32-bit remote keys (rkeys); a put with an
//     invalid or mismatched rkey is "rejected at the hardware level";
//   - one-sided PUT (RDMA write) and GET (RDMA read) that complete without
//     receiver CPU involvement;
//   - 64-bit remote atomics (fetch-add);
//   - a configurable in-order delivery guarantee: modern back-to-back
//     links enforce write ordering (the paper's testbed does), but the
//     mailbox supports fence + separate signal put when it is absent;
//   - LLC stashing of inbound traffic via the receiver's memsim hierarchy.
//
// Time is discrete-event simulated; data movement is real (bytes are
// copied between the nodes' address spaces through the DMA paths).
package simnet

import (
	"fmt"

	"twochains/internal/fabric"
	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
)

func init() {
	fabric.Register("simnet", func(eng *sim.Engine, cfg Config) fabric.Transport {
		return NewFabric(eng, cfg)
	})
}

// RKey is an InfiniBand-style 32-bit remote access key.
type RKey = fabric.RKey

// Access is the remote permission mask carried by a registration.
type Access = fabric.Access

const (
	RemoteRead   = fabric.RemoteRead
	RemoteWrite  = fabric.RemoteWrite
	RemoteAtomic = fabric.RemoteAtomic
)

// Registration is a pinned, remotely accessible memory region.
type Registration struct {
	Key    RKey
	Base   uint64
	Size   int
	Access Access
}

// Contains reports whether [va, va+size) falls inside the registration.
func (r *Registration) Contains(va uint64, size int) bool {
	return va >= r.Base && va+uint64(size) <= r.Base+uint64(r.Size)
}

// Config sets fabric-wide characteristics (the backend-independent set;
// Seed additionally drives delivery jitter when Ordered is false).
type Config = fabric.Config

// DefaultConfig matches the paper's testbed.
func DefaultConfig() Config {
	return Config{Ordered: true, Seed: model.DefaultSeed}
}

// Fabric connects NICs with per-direction wires. It implements
// fabric.Transport and registers itself as the "simnet" backend.
type Fabric struct {
	eng   *sim.Engine
	cfg   Config
	nics  []*NIC
	wires map[[2]int]*sim.Resource
	rng   *sim.RNG

	// domains partitions NICs into fabric shards (leaf domains). Traffic
	// inside one domain rides the dedicated back-to-back wires; traffic
	// between domains additionally serializes through a shared directional
	// uplink per domain pair — the oversubscribed spine of a two-tier
	// topology. NICs not assigned to a domain are in domain 0, so a fabric
	// that never calls AssignDomain behaves exactly as before.
	domains map[int]int
	uplinks map[[2]int]*sim.Resource

	// bufs recycles the staging copies of in-flight put payloads (the
	// bytes snapshot at issue time, released right after delivery lands);
	// jobs recycles the per-put delivery records that replace per-put
	// closures. Both are single-threaded, owned by the fabric's engine.
	bufs sim.BufPool
	jobs []*putJob
}

// putJob is the pooled in-flight state of one put between issue and
// delivery. Its prebound run method is the event the engine fires at
// arrival, so the steady-state delivery path schedules no fresh closures.
type putJob struct {
	fab        *Fabric
	dst        *NIC
	dstVA      uint64
	data       []byte
	onComplete func(PutResult)
	run        func() // prebound
}

func (f *Fabric) getJob(dst *NIC, dstVA uint64, data []byte, onComplete func(PutResult)) *putJob {
	var j *putJob
	if n := len(f.jobs); n > 0 {
		j = f.jobs[n-1]
		f.jobs[n-1] = nil
		f.jobs = f.jobs[:n-1]
	} else {
		j = &putJob{fab: f}
		j.run = j.deliver
	}
	j.dst, j.dstVA, j.data, j.onComplete = dst, dstVA, data, onComplete
	return j
}

// deliver lands the put: memory write + stash + hooks, with the job and
// its staging buffer recycled before user callbacks run so re-entrant
// sends reuse them immediately.
func (j *putJob) deliver() {
	f, dst, dstVA, data, onComplete := j.fab, j.dst, j.dstVA, j.data, j.onComplete
	j.dst, j.data, j.onComplete = nil, nil, nil
	f.jobs = append(f.jobs, j)

	// Failure here is a model bug (registration guaranteed the range is
	// mapped).
	if err := dst.as.WriteBytesDMA(dstVA, data); err != nil {
		panic(fmt.Sprintf("simnet: delivery DMA failed inside registration: %v", err))
	}
	size := len(data)
	f.bufs.Put(data)
	if dst.hier != nil {
		dst.hier.NetworkWrite(dstVA, size)
	}
	dst.stats.PutsDelivered++
	for _, hook := range dst.onDeliver {
		if hook.end == 0 || (dstVA < hook.end && dstVA+uint64(size) > hook.base) {
			hook.fn(dstVA, size)
		}
	}
	if onComplete != nil {
		onComplete(PutResult{Delivered: f.eng.Now()})
	}
}

// NewFabric creates an empty fabric on the given event engine.
func NewFabric(engine *sim.Engine, cfg Config) *Fabric {
	return &Fabric{
		eng:     engine,
		cfg:     cfg,
		wires:   map[[2]int]*sim.Resource{},
		rng:     sim.NewRNG(cfg.Seed ^ 0x73696d6e6574), // "simnet"
		domains: map[int]int{},
		uplinks: map[[2]int]*sim.Resource{},
	}
}

// Engine returns the event clock the fabric schedules on.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Attach adds a host to the fabric (fabric.Transport).
func (f *Fabric) Attach(as *mem.AddressSpace, hier *memsim.Hierarchy) fabric.Port {
	return f.AttachNIC(as, hier)
}

// AssignDomain places a port into a fabric shard. Domain numbers are
// arbitrary labels; equal labels share leaf-local wiring. Ports of other
// backends are ignored.
func (f *Fabric) AssignDomain(p fabric.Port, domain int) {
	if n, ok := p.(*NIC); ok {
		f.domains[n.ID] = domain
	}
}

// DomainOf reports a port's fabric shard (0 when never assigned).
func (f *Fabric) DomainOf(p fabric.Port) int {
	if n, ok := p.(*NIC); ok {
		return f.domains[n.ID]
	}
	return 0
}

// wire returns the directional wire resource between two NIC ids. Labels
// are lazy: an N-node mesh mints N² wires, and nothing formats a name
// unless a trace actually prints it.
func (f *Fabric) wire(src, dst int) *sim.Resource {
	k := [2]int{src, dst}
	w, ok := f.wires[k]
	if !ok {
		w = sim.NewResourceLazy(func() string { return fmt.Sprintf("wire %d->%d", src, dst) })
		f.wires[k] = w
	}
	return w
}

// uplink returns the shared directional spine resource between two fabric
// shards. All NIC pairs crossing the same domain pair contend on it.
func (f *Fabric) uplink(srcDom, dstDom int) *sim.Resource {
	k := [2]int{srcDom, dstDom}
	u, ok := f.uplinks[k]
	if !ok {
		u = sim.NewResourceLazy(func() string { return fmt.Sprintf("uplink %d->%d", srcDom, dstDom) })
		f.uplinks[k] = u
	}
	return u
}

// Stats aggregates per-NIC traffic counters.
type Stats struct {
	PutsSent      uint64
	PutsDelivered uint64
	GetsSent      uint64
	AtomicsSent   uint64
	BytesSent     uint64
	Rejected      uint64
}

// NIC is one host adapter. It owns the host's registrations and its
// transmit queue, and delivers inbound traffic into the host's address
// space and cache hierarchy.
type NIC struct {
	ID     int
	fabric *Fabric
	as     *mem.AddressSpace
	hier   *memsim.Hierarchy // may be nil
	tx     *sim.Resource
	regs   map[RKey]*Registration
	keyRng *sim.RNG
	// barrier is the fence point per destination: puts issued after a
	// Fence are not delivered before it (used when Ordered is false).
	barrier map[int]sim.Time
	// onDeliver observes delivered puts (the reactive mailbox hooks this
	// to implement signal watching; the sender hooks it for credit
	// returns). Hooks run in registration order; ranged hooks fire only
	// for puts intersecting their window, so a node with many mailbox
	// regions pays one callback per delivery, not one per region.
	onDeliver []deliveryHook
	stats     Stats
}

// deliveryHook is one inbound-put observer; end == 0 matches every put.
type deliveryHook struct {
	base, end uint64
	fn        func(va uint64, size int)
}

// AttachNIC adds a host to the fabric. hier may be nil (no cache model).
func (f *Fabric) AttachNIC(as *mem.AddressSpace, hier *memsim.Hierarchy) *NIC {
	id := len(f.nics)
	n := &NIC{
		ID:      id,
		fabric:  f,
		as:      as,
		hier:    hier,
		tx:      sim.NewResourceLazy(func() string { return fmt.Sprintf("nic%d-tx", id) }),
		regs:    map[RKey]*Registration{},
		keyRng:  f.rng.Split(),
		barrier: map[int]sim.Time{},
	}
	f.nics = append(f.nics, n)
	return n
}

// NIC accessors.

// Stats returns a copy of the traffic counters.
func (n *NIC) Stats() Stats { return n.stats }

// Label names the port for diagnostics (fabric.Port).
func (n *NIC) Label() string { return fmt.Sprintf("nic%d", n.ID) }

// AddressSpace returns the host memory this NIC DMAs into.
func (n *NIC) AddressSpace() *mem.AddressSpace { return n.as }

// SetDeliveryHook registers an observer for inbound puts. Multiple hooks
// may be registered; all run on every delivery.
func (n *NIC) SetDeliveryHook(fn func(va uint64, size int)) {
	n.onDeliver = append(n.onDeliver, deliveryHook{fn: fn})
}

// AddDeliveryHookRange registers an observer invoked only for puts that
// intersect [base, base+size) — the scalable form for per-region watchers
// like mailbox receivers and credit-flag arrays.
func (n *NIC) AddDeliveryHookRange(base uint64, size int, fn func(va uint64, size int)) {
	n.onDeliver = append(n.onDeliver, deliveryHook{base: base, end: base + uint64(size), fn: fn})
}

// RegisterMemory pins [base, base+size) for remote access and returns its
// rkey. Mirroring the IBTA model, the key is derived per registration and
// must be conveyed to peers out of band.
func (n *NIC) RegisterMemory(base uint64, size int, access Access) (RKey, error) {
	if size <= 0 {
		return 0, fmt.Errorf("simnet: register: non-positive size")
	}
	if _, err := n.as.ReadBytesDMA(base, 1); err != nil {
		return 0, fmt.Errorf("simnet: register: base unmapped: %w", err)
	}
	if _, err := n.as.ReadBytesDMA(base+uint64(size)-1, 1); err != nil {
		return 0, fmt.Errorf("simnet: register: end unmapped: %w", err)
	}
	var key RKey
	for {
		key = RKey(n.keyRng.Uint64())
		if key == 0 {
			continue
		}
		if _, dup := n.regs[key]; !dup {
			break
		}
	}
	n.regs[key] = &Registration{Key: key, Base: base, Size: size, Access: access}
	return key, nil
}

// Deregister removes a registration.
func (n *NIC) Deregister(key RKey) {
	delete(n.regs, key)
}

// checkAccess validates an inbound operation against the target's
// registrations. A failure models the hardware NAK.
func (n *NIC) checkAccess(key RKey, va uint64, size int, want Access) error {
	reg, ok := n.regs[key]
	if !ok {
		return fmt.Errorf("simnet: invalid rkey %#x", key)
	}
	if !reg.Contains(va, size) {
		return fmt.Errorf("simnet: access [0x%x,+%d) outside registration [0x%x,+%d)",
			va, size, reg.Base, reg.Size)
	}
	if reg.Access&want == 0 {
		return fmt.Errorf("simnet: registration %#x lacks permission %d", key, want)
	}
	return nil
}

// PutResult reports the outcome of a one-sided operation to its initiator.
type PutResult = fabric.PutResult

// Put issues a one-sided RDMA write of size bytes from the local address
// srcVA to dstVA on the target NIC, authorized by key. Callbacks:
//
//   - onComplete fires at the initiator when the operation completes
//     locally (buffer reusable) or is rejected;
//   - delivery happens at the target with no CPU involvement: bytes land
//     in memory (stashed into LLC when enabled) and the delivery hook runs.
func (n *NIC) Put(dstPort fabric.Port, srcVA, dstVA uint64, size int, key RKey, onComplete func(PutResult)) {
	eng := n.fabric.eng
	dst, ok := dstPort.(*NIC)
	if !ok {
		n.stats.Rejected++
		eng.After(0, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: fmt.Errorf("simnet: destination %s is not a simnet port", dstPort.Label())})
			}
		})
		return
	}
	n.stats.PutsSent++
	n.stats.BytesSent += uint64(size)

	// Snapshot the payload at issue time into a pooled staging buffer (the
	// sender may legitimately repack the slot before delivery); the buffer
	// returns to the pool the moment delivery lands.
	src, err := n.as.ViewDMA(srcVA, size)
	if err != nil {
		n.stats.Rejected++
		eng.After(0, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: fmt.Errorf("simnet: local DMA read: %w", err)})
			}
		})
		return
	}
	data := n.fabric.bufs.Get(size)
	copy(data, src)

	// NIC processing, then wire serialization.
	txDone := n.tx.Claim(eng.Now(), model.NicPerMsg)
	wireDone := n.fabric.wire(n.ID, dst.ID).Claim(txDone, model.WireTime(size))
	if sd, dd := n.fabric.DomainOf(n), n.fabric.DomainOf(dst); sd != dd {
		// Cross-shard hop: serialize through the shared spine uplink and
		// pay the extra switch traversal.
		wireDone = n.fabric.uplink(sd, dd).Claim(wireDone, model.WireTime(size))
		wireDone = wireDone.Add(model.UplinkHopLat)
	}
	arrival := wireDone.Add(model.PutBaseLat - model.NicPerMsg) // base latency includes endpoint costs

	if !n.fabric.cfg.Ordered {
		// Unordered fabrics can reorder within a small window, but never
		// ahead of an explicit fence.
		jitter := sim.FromNanos(n.fabric.rng.Exp(120))
		arrival = arrival.Add(jitter)
	}
	if b, ok := n.barrier[dst.ID]; ok && arrival < b {
		arrival = b
	}

	if err := dst.checkAccess(key, dstVA, size, RemoteWrite); err != nil {
		n.stats.Rejected++
		n.fabric.bufs.Put(data)
		eng.At(arrival, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: err})
			}
		})
		return
	}

	eng.At(arrival, n.fabric.getJob(dst, dstVA, data, onComplete).run)
}

// Get issues a one-sided RDMA read of size bytes from srcVA on the target
// into dstVA locally.
func (n *NIC) Get(dst *NIC, remoteVA, localVA uint64, size int, key RKey, onComplete func(PutResult)) {
	eng := n.fabric.eng
	n.stats.GetsSent++

	txDone := n.tx.Claim(eng.Now(), model.NicPerMsg)
	// Request travels, response serializes the payload back. Both legs of
	// a cross-shard read traverse the spine: the header-sized request pays
	// the hop, the payload additionally contends on the response uplink.
	reqArrive := txDone.Add(model.PutBaseLat / 2)
	if n.fabric.DomainOf(n) != n.fabric.DomainOf(dst) {
		reqArrive = reqArrive.Add(model.UplinkHopLat)
	}
	wireDone := n.fabric.wire(dst.ID, n.ID).Claim(reqArrive, model.WireTime(size))
	if sd, dd := n.fabric.DomainOf(dst), n.fabric.DomainOf(n); sd != dd {
		wireDone = n.fabric.uplink(sd, dd).Claim(wireDone, model.WireTime(size))
		wireDone = wireDone.Add(model.UplinkHopLat)
	}
	arrival := wireDone.Add(model.PutBaseLat / 2)

	if err := dst.checkAccess(key, remoteVA, size, RemoteRead); err != nil {
		n.stats.Rejected++
		eng.At(arrival, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: err})
			}
		})
		return
	}
	eng.At(arrival, func() {
		data, err := dst.as.ViewDMA(remoteVA, size)
		if err != nil {
			panic(fmt.Sprintf("simnet: get DMA failed inside registration: %v", err))
		}
		if err := n.as.WriteBytesDMA(localVA, data); err != nil {
			if onComplete != nil {
				onComplete(PutResult{Err: fmt.Errorf("simnet: local landing: %w", err)})
			}
			return
		}
		if n.hier != nil {
			n.hier.NetworkWrite(localVA, size)
		}
		if onComplete != nil {
			onComplete(PutResult{Delivered: eng.Now()})
		}
	})
}

// AtomicFetchAdd performs a remote 64-bit fetch-and-add at dstVA,
// delivering the previous value to the callback.
func (n *NIC) AtomicFetchAdd(dst *NIC, dstVA uint64, add uint64, key RKey, onComplete func(old uint64, res PutResult)) {
	eng := n.fabric.eng
	n.stats.AtomicsSent++
	txDone := n.tx.Claim(eng.Now(), model.NicPerMsg)
	arrival := txDone.Add(model.PutBaseLat)
	if err := dst.checkAccess(key, dstVA, 8, RemoteAtomic); err != nil {
		n.stats.Rejected++
		eng.At(arrival, func() {
			if onComplete != nil {
				onComplete(0, PutResult{Err: err})
			}
		})
		return
	}
	eng.At(arrival, func() {
		raw, err := dst.as.ReadBytesDMA(dstVA, 8)
		if err != nil {
			panic(fmt.Sprintf("simnet: atomic read failed inside registration: %v", err))
		}
		old := leU64(raw)
		var buf [8]byte
		putLeU64(buf[:], old+add)
		if err := dst.as.WriteBytesDMA(dstVA, buf[:]); err != nil {
			panic(fmt.Sprintf("simnet: atomic write failed inside registration: %v", err))
		}
		if dst.hier != nil {
			dst.hier.NetworkWrite(dstVA, 8)
		}
		// Result returns to the initiator after another half RTT.
		eng.After(sim.Duration(model.PutBaseLat)/2, func() {
			if onComplete != nil {
				onComplete(old, PutResult{Delivered: eng.Now()})
			}
		})
	})
}

// Fence guarantees that puts to dst issued after the fence are delivered
// no earlier than every put issued before it — the explicit ordering
// primitive needed on fabrics without the write-order guarantee
// (paper Fig. 1: "each signal put has to follow a fence operation").
func (n *NIC) Fence(dstPort fabric.Port) {
	dst, ok := dstPort.(*NIC)
	if !ok {
		return
	}
	latest := n.fabric.wire(n.ID, dst.ID).FreeAt().Add(model.PutBaseLat)
	if !n.fabric.cfg.Ordered {
		// Cover the jitter window too.
		latest = latest.Add(sim.FromNanos(1000))
	}
	if cur, ok := n.barrier[dst.ID]; !ok || latest > cur {
		n.barrier[dst.ID] = latest
	}
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
