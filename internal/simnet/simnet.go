// Package simnet simulates the RDMA interconnect of the paper's testbed:
// two (or more) hosts with ConnectX-6-class HCAs connected back-to-back.
//
// It provides the InfiniBand semantics Two-Chains depends on:
//
//   - memory registration with 32-bit remote keys (rkeys); a put with an
//     invalid or mismatched rkey is "rejected at the hardware level";
//   - one-sided PUT (RDMA write) and GET (RDMA read) that complete without
//     receiver CPU involvement;
//   - 64-bit remote atomics (fetch-add);
//   - a configurable in-order delivery guarantee: modern back-to-back
//     links enforce write ordering (the paper's testbed does), but the
//     mailbox supports fence + separate signal put when it is absent;
//   - LLC stashing of inbound traffic via the receiver's memsim hierarchy.
//
// Time is discrete-event simulated; data movement is real (bytes are
// copied between the nodes' address spaces through the DMA paths).
//
// # Parallel execution
//
// simnet implements fabric.ShardedTransport: when bound to a sim.Group,
// each leaf domain's traffic runs on its own shard engine. State is
// partitioned by owner — a NIC's tx queue, outbound wires, barriers, and
// stats belong to its shard; a domain's spine uplinks and staging pools
// belong to that domain's shard — so shard-local puts never synchronize.
// A cross-shard put computes its full arrival time on the issuing shard
// (tx, wire, and uplink are all issuer-owned resources), then splits: the
// delivery (memory write, stash, hooks) is handed off to the destination
// shard through the group's lanes, while the initiator's completion
// callback is scheduled locally at the same arrival time. The two halves
// touch disjoint state, so the split is equivalent to the sequential
// combined event. Every cross-shard arrival is at least Lookahead() =
// UplinkHopLat + PutBaseLat after issue, which is the conservative
// window the group runs ahead within.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"twochains/internal/fabric"
	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
)

func init() {
	fabric.Register("simnet", func(eng *sim.Engine, cfg Config) fabric.Transport {
		return NewFabric(eng, cfg)
	})
}

// RKey is an InfiniBand-style 32-bit remote access key.
type RKey = fabric.RKey

// Access is the remote permission mask carried by a registration.
type Access = fabric.Access

const (
	RemoteRead   = fabric.RemoteRead
	RemoteWrite  = fabric.RemoteWrite
	RemoteAtomic = fabric.RemoteAtomic
)

// Registration is a pinned, remotely accessible memory region.
type Registration struct {
	Key    RKey
	Base   uint64
	Size   int
	Access Access
}

// Contains reports whether [va, va+size) falls inside the registration.
func (r *Registration) Contains(va uint64, size int) bool {
	return va >= r.Base && va+uint64(size) <= r.Base+uint64(r.Size)
}

// Config sets fabric-wide characteristics (the backend-independent set;
// Seed additionally drives delivery jitter when Ordered is false).
type Config = fabric.Config

// DefaultConfig matches the paper's testbed.
func DefaultConfig() Config {
	return Config{Ordered: true, Seed: model.DefaultSeed}
}

// Fabric connects NICs with per-direction wires. It implements
// fabric.Transport (and fabric.ShardedTransport) and registers itself as
// the "simnet" backend.
type Fabric struct {
	eng   *sim.Engine
	cfg   Config
	nics  []*NIC
	rng   *sim.RNG
	group *sim.Group

	// shards holds the per-domain ownership state (uplinks, staging
	// pools) of the leaf-domain partition. Traffic inside one domain
	// rides the dedicated back-to-back wires; traffic between domains
	// additionally serializes through a shared directional uplink per
	// domain pair — the oversubscribed spine of a two-tier topology.
	// NICs never assigned a domain stay in domain 0, so a fabric that
	// never calls AssignDomain behaves exactly as before. Domain labels
	// are arbitrary, so the map is keyed, not indexed.
	shards map[int]*fabShard

	// crossBufs recycles staging copies of cross-shard put payloads: the
	// buffer is filled on the issuing shard's worker and released on the
	// destination shard's worker after delivery, so unlike the per-shard
	// pools it must be concurrency-safe.
	crossBufs sim.SharedBufPool
}

// fabShard is the state owned by one leaf domain's shard: its spine
// uplinks (claimed at issue time, and every issuer into a given remote
// domain lives in this shard), its staging-buffer pool and delivery-job
// free list for shard-local puts, and the free list of initiator-side
// completion records for cross-shard puts.
type fabShard struct {
	uplinks map[int]*sim.Resource // keyed by destination domain
	bufs    sim.BufPool
	jobs    []*putJob
	dones   []*crossDone
}

// putJob is the pooled in-flight state of one shard-local put between
// issue and delivery. Its prebound run method is the event the engine
// fires at arrival, so the steady-state delivery path schedules no fresh
// closures.
type putJob struct {
	sh         *fabShard
	dst        *NIC
	dstVA      uint64
	data       []byte
	onComplete func(PutResult)
	run        func() // prebound
}

func (sh *fabShard) getJob(dst *NIC, dstVA uint64, data []byte, onComplete func(PutResult)) *putJob {
	var j *putJob
	if n := len(sh.jobs); n > 0 {
		j = sh.jobs[n-1]
		sh.jobs[n-1] = nil
		sh.jobs = sh.jobs[:n-1]
	} else {
		j = &putJob{sh: sh}
		j.run = j.deliver
	}
	j.dst, j.dstVA, j.data, j.onComplete = dst, dstVA, data, onComplete
	return j
}

// deliver lands the put: memory write + stash + hooks, with the job and
// its staging buffer recycled before user callbacks run so re-entrant
// sends reuse them immediately.
func (j *putJob) deliver() {
	sh, dst, dstVA, data, onComplete := j.sh, j.dst, j.dstVA, j.data, j.onComplete
	j.dst, j.data, j.onComplete = nil, nil, nil
	sh.jobs = append(sh.jobs, j)

	dst.land(dstVA, data)
	sh.bufs.Put(data)
	if onComplete != nil {
		onComplete(PutResult{Delivered: dst.eng.Now()})
	}
}

// crossJob is the destination-shard half of a cross-shard put: just the
// delivery, no initiator callback (that is a separate, issuer-local
// event). Records cross worker goroutines, so they pool globally.
type crossJob struct {
	fab   *Fabric
	dst   *NIC
	dstVA uint64
	data  []byte
	run   func() // prebound
}

var crossJobPool sync.Pool

func init() {
	crossJobPool.New = func() any {
		j := &crossJob{}
		j.run = j.deliver
		return j
	}
}

func (j *crossJob) deliver() {
	fab, dst, dstVA, data := j.fab, j.dst, j.dstVA, j.data
	j.fab, j.dst, j.data = nil, nil, nil
	crossJobPool.Put(j)

	dst.land(dstVA, data)
	fab.crossBufs.Put(data)
}

// crossDone is the issuer-side half of a cross-shard put: it reports
// the (pre-computed) delivery time to the initiator at that simulated
// time, while the payload lands on the destination shard concurrently.
// Rejected puts never split (the error callback is scheduled directly
// at issue), so a crossDone always reports success. Owned — allocated,
// fired, and recycled — by the issuing shard.
type crossDone struct {
	sh         *fabShard
	at         sim.Time
	onComplete func(PutResult)
	run        func() // prebound
}

func (sh *fabShard) getDone(at sim.Time, onComplete func(PutResult)) *crossDone {
	var d *crossDone
	if n := len(sh.dones); n > 0 {
		d = sh.dones[n-1]
		sh.dones[n-1] = nil
		sh.dones = sh.dones[:n-1]
	} else {
		d = &crossDone{sh: sh}
		d.run = d.fire
	}
	d.at, d.onComplete = at, onComplete
	return d
}

func (d *crossDone) fire() {
	at, onComplete := d.at, d.onComplete
	d.onComplete = nil
	d.sh.dones = append(d.sh.dones, d)
	onComplete(PutResult{Delivered: at})
}

// land performs the destination-side effects of a delivered put.
func (n *NIC) land(dstVA uint64, data []byte) {
	// Failure here is a model bug (registration guaranteed the range is
	// mapped).
	if err := n.as.WriteBytesDMA(dstVA, data); err != nil {
		panic(fmt.Sprintf("simnet: delivery DMA failed inside registration: %v", err))
	}
	size := len(data)
	if n.hier != nil {
		n.hier.NetworkWrite(dstVA, size)
	}
	n.stats.PutsDelivered++
	for _, hook := range n.onDeliver {
		if hook.end == 0 || (dstVA < hook.end && dstVA+uint64(size) > hook.base) {
			hook.fn(dstVA, size)
		}
	}
}

// NewFabric creates an empty fabric on the given event engine.
func NewFabric(engine *sim.Engine, cfg Config) *Fabric {
	return &Fabric{
		eng:    engine,
		cfg:    cfg,
		rng:    sim.NewRNG(cfg.Seed ^ 0x73696d6e6574), // "simnet"
		shards: map[int]*fabShard{},
	}
}

// Engine returns the default event clock (shard 0's under a group).
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Lookahead implements fabric.ShardedTransport: every cross-shard
// interaction pays at least the spine hop plus the base one-way latency
// (arrival = tx + wires + uplink + UplinkHopLat + (PutBaseLat-NicPerMsg)
// >= issue + NicPerMsg + UplinkHopLat + PutBaseLat - NicPerMsg).
func (f *Fabric) Lookahead() sim.Duration {
	return model.UplinkHopLat + model.PutBaseLat
}

// BindGroup implements fabric.ShardedTransport. It must run before any
// port attaches; domain labels assigned afterwards must be group shard
// indices.
func (f *Fabric) BindGroup(g *sim.Group) {
	if len(f.nics) > 0 {
		panic("simnet: BindGroup after ports were attached")
	}
	f.group = g
	f.eng = g.Engine(0)
}

// Attach adds a host to the fabric (fabric.Transport).
func (f *Fabric) Attach(as *mem.AddressSpace, hier *memsim.Hierarchy) fabric.Port {
	return f.AttachNIC(as, hier)
}

// shard returns (creating lazily) the ownership state of one domain.
func (f *Fabric) shard(domain int) *fabShard {
	sh, ok := f.shards[domain]
	if !ok {
		sh = &fabShard{uplinks: map[int]*sim.Resource{}}
		// The shard's buffer pool draws class misses from a shard-local
		// arena, so parallel windows allocate from per-shard chunks
		// instead of contending on the shared heap.
		sh.bufs.AttachArena(sim.NewArena(0))
		f.shards[domain] = sh
	}
	return sh
}

// AssignDomain places a port into a fabric shard. Domain numbers are
// arbitrary labels (group shard indices when a group is bound); equal
// labels share leaf-local wiring. Ports of other backends are ignored.
// It must be called before the port carries traffic.
func (f *Fabric) AssignDomain(p fabric.Port, domain int) {
	n, ok := p.(*NIC)
	if !ok {
		return
	}
	n.domain = domain
	n.shard = f.shard(domain)
	if f.group != nil {
		if domain < 0 || domain >= f.group.Shards() {
			panic(fmt.Sprintf("simnet: domain %d outside engine group (%d shards)", domain, f.group.Shards()))
		}
		n.eng = f.group.Engine(domain)
	}
}

// DomainOf reports a port's fabric shard (0 when never assigned).
func (f *Fabric) DomainOf(p fabric.Port) int {
	if n, ok := p.(*NIC); ok {
		return n.domain
	}
	return 0
}

// wire returns the directional wire resource from this NIC to dst. Wires
// are owned by the sending NIC's shard (only its shard claims them), and
// labels are lazy: an N-node mesh mints N² wires, and nothing formats a
// name unless a trace actually prints it.
func (n *NIC) wire(dst int) *sim.Resource {
	w, ok := n.wires[dst]
	if !ok {
		src := n.ID
		w = sim.NewResourceLazy(func() string { return fmt.Sprintf("wire %d->%d", src, dst) })
		n.wires[dst] = w
	}
	return w
}

// uplink returns the shared directional spine resource between two fabric
// shards. All NIC pairs crossing the same domain pair contend on it; all
// of those issuers live in srcDom, whose shard owns the resource.
func (f *Fabric) uplink(srcDom, dstDom int) *sim.Resource {
	sh := f.shard(srcDom)
	u, ok := sh.uplinks[dstDom]
	if !ok {
		u = sim.NewResourceLazy(func() string { return fmt.Sprintf("uplink %d->%d", srcDom, dstDom) })
		sh.uplinks[dstDom] = u
	}
	return u
}

// Stats aggregates per-NIC traffic counters.
type Stats struct {
	PutsSent      uint64
	PutsDelivered uint64
	GetsSent      uint64
	AtomicsSent   uint64
	BytesSent     uint64
	Rejected      uint64
}

// NIC is one host adapter. It owns the host's registrations and its
// transmit queue, and delivers inbound traffic into the host's address
// space and cache hierarchy. Under a bound engine group a NIC belongs to
// its domain's shard: its tx queue, wires, barriers, jitter stream, and
// outbound stats are touched only by that shard's worker; its inbound
// stats and delivery hooks only by deliveries executing on that same
// shard.
type NIC struct {
	ID     int
	fabric *Fabric
	as     *mem.AddressSpace
	hier   *memsim.Hierarchy // may be nil
	tx     *sim.Resource
	keyRng *sim.RNG
	// jitterRng drives unordered-delivery jitter. It is per-NIC (split
	// deterministically at attach) so draws depend only on this NIC's own
	// issue sequence, never on the global interleaving of issuers.
	jitterRng *sim.RNG
	eng       *sim.Engine
	domain    int
	shard     *fabShard
	wires     map[int]*sim.Resource

	// regs is the registration table, copy-on-write: lookups (which
	// cross-shard issuers perform at issue time) take an atomic snapshot;
	// Register/Deregister swap in a fresh map. Registration churn is
	// setup-path (channel creation, RIED swaps), never hot.
	//tclint:allow sharddomain COW registration table: cross-shard issuers take read snapshots; swaps happen on the owner (ROADMAP PR 5)
	regs atomic.Pointer[map[RKey]*Registration]

	// barrier is the fence point per destination: puts issued after a
	// Fence are not delivered before it (used when Ordered is false).
	barrier map[int]sim.Time
	// onDeliver observes delivered puts (the reactive mailbox hooks this
	// to implement signal watching; the sender hooks it for credit
	// returns). Hooks run in registration order; ranged hooks fire only
	// for puts intersecting their window, so a node with many mailbox
	// regions pays one callback per delivery, not one per region.
	onDeliver []deliveryHook
	stats     Stats
}

// deliveryHook is one inbound-put observer; end == 0 matches every put.
type deliveryHook struct {
	base, end uint64
	fn        func(va uint64, size int)
}

// AttachNIC adds a host to the fabric. hier may be nil (no cache model).
func (f *Fabric) AttachNIC(as *mem.AddressSpace, hier *memsim.Hierarchy) *NIC {
	id := len(f.nics)
	n := &NIC{
		ID:        id,
		fabric:    f,
		as:        as,
		hier:      hier,
		tx:        sim.NewResourceLazy(func() string { return fmt.Sprintf("nic%d-tx", id) }),
		keyRng:    f.rng.Split(),
		jitterRng: f.rng.Split(),
		eng:       f.eng,
		shard:     f.shard(0),
		wires:     map[int]*sim.Resource{},
		barrier:   map[int]sim.Time{},
	}
	empty := map[RKey]*Registration{}
	n.regs.Store(&empty)
	f.nics = append(f.nics, n)
	return n
}

// NIC accessors.

// Stats returns a copy of the traffic counters.
func (n *NIC) Stats() Stats { return n.stats }

// Label names the port for diagnostics (fabric.Port).
func (n *NIC) Label() string { return fmt.Sprintf("nic%d", n.ID) }

// AddressSpace returns the host memory this NIC DMAs into.
func (n *NIC) AddressSpace() *mem.AddressSpace { return n.as }

// SetDeliveryHook registers an observer for inbound puts. Multiple hooks
// may be registered; all run on every delivery.
func (n *NIC) SetDeliveryHook(fn func(va uint64, size int)) {
	n.onDeliver = append(n.onDeliver, deliveryHook{fn: fn})
}

// AddDeliveryHookRange registers an observer invoked only for puts that
// intersect [base, base+size) — the scalable form for per-region watchers
// like mailbox receivers and credit-flag arrays.
func (n *NIC) AddDeliveryHookRange(base uint64, size int, fn func(va uint64, size int)) {
	n.onDeliver = append(n.onDeliver, deliveryHook{base: base, end: base + uint64(size), fn: fn})
}

// RegisterMemory pins [base, base+size) for remote access and returns its
// rkey. Mirroring the IBTA model, the key is derived per registration and
// must be conveyed to peers out of band.
func (n *NIC) RegisterMemory(base uint64, size int, access Access) (RKey, error) {
	if size <= 0 {
		return 0, fmt.Errorf("simnet: register: non-positive size")
	}
	if _, err := n.as.ReadBytesDMA(base, 1); err != nil {
		return 0, fmt.Errorf("simnet: register: base unmapped: %w", err)
	}
	if _, err := n.as.ReadBytesDMA(base+uint64(size)-1, 1); err != nil {
		return 0, fmt.Errorf("simnet: register: end unmapped: %w", err)
	}
	cur := *n.regs.Load()
	var key RKey
	for {
		key = RKey(n.keyRng.Uint64())
		if key == 0 {
			continue
		}
		if _, dup := cur[key]; !dup {
			break
		}
	}
	next := make(map[RKey]*Registration, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = &Registration{Key: key, Base: base, Size: size, Access: access}
	n.regs.Store(&next)
	return key, nil
}

// Deregister removes a registration.
func (n *NIC) Deregister(key RKey) {
	cur := *n.regs.Load()
	if _, ok := cur[key]; !ok {
		return
	}
	next := make(map[RKey]*Registration, len(cur))
	for k, v := range cur {
		if k != key {
			next[k] = v
		}
	}
	n.regs.Store(&next)
}

// checkAccess validates an inbound operation against the target's
// registrations. A failure models the hardware NAK. It reads an atomic
// snapshot of the table, so cross-shard issuers may call it from their
// own shard's worker.
func (n *NIC) checkAccess(key RKey, va uint64, size int, want Access) error {
	reg, ok := (*n.regs.Load())[key]
	if !ok {
		return fmt.Errorf("simnet: invalid rkey %#x", key)
	}
	if !reg.Contains(va, size) {
		return fmt.Errorf("simnet: access [0x%x,+%d) outside registration [0x%x,+%d)",
			va, size, reg.Base, reg.Size)
	}
	if reg.Access&want == 0 {
		return fmt.Errorf("simnet: registration %#x lacks permission %d", key, want)
	}
	return nil
}

// PutResult reports the outcome of a one-sided operation to its initiator.
type PutResult = fabric.PutResult

// Put issues a one-sided RDMA write of size bytes from the local address
// srcVA to dstVA on the target NIC, authorized by key. Callbacks:
//
//   - onComplete fires at the initiator when the operation completes
//     locally (buffer reusable) or is rejected;
//   - delivery happens at the target with no CPU involvement: bytes land
//     in memory (stashed into LLC when enabled) and the delivery hook runs.
//
// The entire arrival time — tx occupancy, wire serialization, spine
// uplink contention — is computed at issue from issuer-owned resources;
// under an engine group a cross-shard delivery is handed to the target's
// shard while the completion stays an issuer-local event at the same
// time.
func (n *NIC) Put(dstPort fabric.Port, srcVA, dstVA uint64, size int, key RKey, onComplete func(PutResult)) {
	eng := n.eng
	dst, ok := dstPort.(*NIC)
	if !ok {
		n.stats.Rejected++
		eng.After(0, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: fmt.Errorf("simnet: destination %s is not a simnet port", dstPort.Label())})
			}
		})
		return
	}
	n.stats.PutsSent++
	n.stats.BytesSent += uint64(size)

	cross := n.fabric.group != nil && n.domain != dst.domain

	// Snapshot the payload at issue time into a pooled staging buffer (the
	// sender may legitimately repack the slot before delivery); the buffer
	// returns to the pool the moment delivery lands. Cross-shard puts use
	// the concurrency-safe pool — the release happens on another worker.
	src, err := n.as.ViewDMA(srcVA, size)
	if err != nil {
		n.stats.Rejected++
		eng.After(0, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: fmt.Errorf("simnet: local DMA read: %w", err)})
			}
		})
		return
	}
	var data []byte
	if cross {
		data = n.fabric.crossBufs.Get(size)
	} else {
		data = n.shard.bufs.Get(size)
	}
	copy(data, src)

	// NIC processing, then wire serialization.
	txDone := n.tx.Claim(eng.Now(), model.NicPerMsg)
	wireDone := n.wire(dst.ID).Claim(txDone, model.WireTime(size))
	if sd, dd := n.domain, dst.domain; sd != dd {
		// Cross-shard hop: serialize through the shared spine uplink and
		// pay the extra switch traversal.
		wireDone = n.fabric.uplink(sd, dd).Claim(wireDone, model.WireTime(size))
		wireDone = wireDone.Add(model.UplinkHopLat)
	}
	arrival := wireDone.Add(model.PutBaseLat - model.NicPerMsg) // base latency includes endpoint costs

	if !n.fabric.cfg.Ordered {
		// Unordered fabrics can reorder within a small window, but never
		// ahead of an explicit fence.
		jitter := sim.FromNanos(n.jitterRng.Exp(120))
		arrival = arrival.Add(jitter)
	}
	if b, ok := n.barrier[dst.ID]; ok && arrival < b {
		arrival = b
	}

	if err := dst.checkAccess(key, dstVA, size, RemoteWrite); err != nil {
		n.stats.Rejected++
		if cross {
			n.fabric.crossBufs.Put(data)
		} else {
			n.shard.bufs.Put(data)
		}
		eng.At(arrival, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: err})
			}
		})
		return
	}

	if !cross {
		eng.At(arrival, n.shard.getJob(dst, dstVA, data, onComplete).run)
		return
	}
	cj := crossJobPool.Get().(*crossJob)
	cj.fab, cj.dst, cj.dstVA, cj.data = n.fabric, dst, dstVA, data
	n.fabric.group.Handoff(n.domain, dst.domain, arrival, cj.run)
	if onComplete != nil {
		eng.At(arrival, n.shard.getDone(arrival, onComplete).run)
	}
}

// crossShardGuard panics on operations the parallel engine does not
// model across shards (reads and atomics would touch remote state from
// the issuing shard's worker with no conservative window).
func (n *NIC) crossShardGuard(dst *NIC, op string) {
	if n.fabric.group != nil && n.domain != dst.domain {
		panic(fmt.Sprintf("simnet: cross-shard %s %s->%s is not supported under the parallel engine group", op, n.Label(), dst.Label()))
	}
}

// Get issues a one-sided RDMA read of size bytes from srcVA on the target
// into dstVA locally. Under an engine group it is shard-local only (the
// Two-Chains runtime issues no cross-shard reads).
func (n *NIC) Get(dst *NIC, remoteVA, localVA uint64, size int, key RKey, onComplete func(PutResult)) {
	n.crossShardGuard(dst, "get")
	eng := n.eng
	n.stats.GetsSent++

	txDone := n.tx.Claim(eng.Now(), model.NicPerMsg)
	// Request travels, response serializes the payload back. Both legs of
	// a cross-shard read traverse the spine: the header-sized request pays
	// the hop, the payload additionally contends on the response uplink.
	reqArrive := txDone.Add(model.PutBaseLat / 2)
	if n.domain != dst.domain {
		reqArrive = reqArrive.Add(model.UplinkHopLat)
	}
	wireDone := dst.wire(n.ID).Claim(reqArrive, model.WireTime(size))
	if sd, dd := dst.domain, n.domain; sd != dd {
		wireDone = n.fabric.uplink(sd, dd).Claim(wireDone, model.WireTime(size))
		wireDone = wireDone.Add(model.UplinkHopLat)
	}
	arrival := wireDone.Add(model.PutBaseLat / 2)

	if err := dst.checkAccess(key, remoteVA, size, RemoteRead); err != nil {
		n.stats.Rejected++
		eng.At(arrival, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: err})
			}
		})
		return
	}
	eng.At(arrival, func() {
		data, err := dst.as.ViewDMA(remoteVA, size)
		if err != nil {
			panic(fmt.Sprintf("simnet: get DMA failed inside registration: %v", err))
		}
		if err := n.as.WriteBytesDMA(localVA, data); err != nil {
			if onComplete != nil {
				onComplete(PutResult{Err: fmt.Errorf("simnet: local landing: %w", err)})
			}
			return
		}
		if n.hier != nil {
			n.hier.NetworkWrite(localVA, size)
		}
		if onComplete != nil {
			onComplete(PutResult{Delivered: eng.Now()})
		}
	})
}

// AtomicFetchAdd performs a remote 64-bit fetch-and-add at dstVA,
// delivering the previous value to the callback. Shard-local only under
// an engine group.
func (n *NIC) AtomicFetchAdd(dst *NIC, dstVA uint64, add uint64, key RKey, onComplete func(old uint64, res PutResult)) {
	n.crossShardGuard(dst, "atomic")
	eng := n.eng
	n.stats.AtomicsSent++
	txDone := n.tx.Claim(eng.Now(), model.NicPerMsg)
	arrival := txDone.Add(model.PutBaseLat)
	if err := dst.checkAccess(key, dstVA, 8, RemoteAtomic); err != nil {
		n.stats.Rejected++
		eng.At(arrival, func() {
			if onComplete != nil {
				onComplete(0, PutResult{Err: err})
			}
		})
		return
	}
	eng.At(arrival, func() {
		raw, err := dst.as.ReadBytesDMA(dstVA, 8)
		if err != nil {
			panic(fmt.Sprintf("simnet: atomic read failed inside registration: %v", err))
		}
		old := leU64(raw)
		var buf [8]byte
		putLeU64(buf[:], old+add)
		if err := dst.as.WriteBytesDMA(dstVA, buf[:]); err != nil {
			panic(fmt.Sprintf("simnet: atomic write failed inside registration: %v", err))
		}
		if dst.hier != nil {
			dst.hier.NetworkWrite(dstVA, 8)
		}
		// Result returns to the initiator after another half RTT.
		eng.After(sim.Duration(model.PutBaseLat)/2, func() {
			if onComplete != nil {
				onComplete(old, PutResult{Delivered: eng.Now()})
			}
		})
	})
}

// Fence guarantees that puts to dst issued after the fence are delivered
// no earlier than every put issued before it — the explicit ordering
// primitive needed on fabrics without the write-order guarantee
// (paper Fig. 1: "each signal put has to follow a fence operation").
func (n *NIC) Fence(dstPort fabric.Port) {
	dst, ok := dstPort.(*NIC)
	if !ok {
		return
	}
	latest := n.wire(dst.ID).FreeAt()
	if sd, dd := n.domain, dst.domain; sd != dd {
		// Cross-domain puts additionally ride the spine: cover the
		// uplink's queue and the extra hop, or a post-fence put clamped
		// to `latest` could overtake a pre-fence put still waiting there.
		if u := n.fabric.uplink(sd, dd).FreeAt(); u > latest {
			latest = u
		}
		latest = latest.Add(model.UplinkHopLat)
	}
	latest = latest.Add(model.PutBaseLat)
	if !n.fabric.cfg.Ordered {
		// Cover the jitter window too.
		latest = latest.Add(sim.FromNanos(1000))
	}
	if cur, ok := n.barrier[dst.ID]; !ok || latest > cur {
		n.barrier[dst.ID] = latest
	}
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
