// Package cpusim accounts CPU cycles for the Two-Chains wait loops,
// reproducing the paper's §VII-D comparison of busy-poll spinning against
// Arm's WFE (Wait For Event) instruction.
//
// Latency and cycle cost diverge by design: a spinning core detects the
// mailbox signal a few nanoseconds sooner but burns one loop iteration's
// worth of cycles for the entire wait; a WFE-parked core pays a small wake
// latency while its clock is gated, costing a near-constant number of
// cycles per wait episode regardless of duration.
package cpusim

import (
	"twochains/internal/model"
	"twochains/internal/sim"
)

// WaitMode selects the signal wait implementation.
type WaitMode int

const (
	// Poll spins on the signal location (load + compare + branch).
	Poll WaitMode = iota
	// WFE arms the event monitor on the signal line and sleeps.
	WFE
)

func (m WaitMode) String() string {
	if m == WFE {
		return "wfe"
	}
	return "poll"
}

// Counter accumulates the cycles one hardware thread spends across a
// benchmark run, split into useful work and signal waiting.
type Counter struct {
	WorkCycles float64
	WaitCycles float64
	Waits      uint64
	rng        *sim.RNG
}

// NewCounter returns a counter; rng drives WFE spurious wakeups and may be
// shared or nil for a deterministic zero-spurious model.
func NewCounter(rng *sim.RNG) *Counter {
	return &Counter{rng: rng}
}

// Work records d of busy execution (packing, parsing, handler execution).
func (c *Counter) Work(d sim.Duration) {
	c.WorkCycles += model.DurToCycles(d)
}

// Wait records one wait episode of duration d in the given mode and
// returns the extra latency the mode adds to signal detection.
func (c *Counter) Wait(mode WaitMode, d sim.Duration) sim.Duration {
	if d < 0 {
		d = 0
	}
	c.Waits++
	switch mode {
	case Poll:
		// Fully busy for the duration of the wait.
		c.WaitCycles += model.DurToCycles(d)
		return model.PollDetectLat
	default: // WFE
		cycles := model.WfeWaitCycles
		// Spurious wakeups: events on the monitored line from unrelated
		// coherence traffic re-run the check loop.
		if c.rng != nil {
			mean := model.WfeSpuriousWakeMean * d.Microseconds()
			if mean > 0 {
				spurious := c.rng.Exp(mean)
				cycles += spurious * model.WfeWaitCycles
			}
		}
		c.WaitCycles += cycles
		return model.PollDetectLat + model.WfeWakeLat
	}
}

// Total returns all cycles accumulated.
func (c *Counter) Total() float64 { return c.WorkCycles + c.WaitCycles }

// Reset zeroes the counter.
func (c *Counter) Reset() {
	c.WorkCycles = 0
	c.WaitCycles = 0
	c.Waits = 0
}
