package cpusim

import (
	"testing"

	"twochains/internal/model"
	"twochains/internal/sim"
)

func TestPollBurnsProportionalCycles(t *testing.T) {
	c := NewCounter(nil)
	c.Wait(Poll, 1000*sim.Nanosecond)
	one := c.WaitCycles
	c.Wait(Poll, 9000*sim.Nanosecond)
	if c.WaitCycles < 9*one {
		t.Fatalf("poll cycles not proportional: %f then %f", one, c.WaitCycles)
	}
	// 1us at 2.6GHz = 2600 cycles.
	if one < 2500 || one > 2700 {
		t.Fatalf("1us poll = %f cycles", one)
	}
}

func TestWfeCyclesNearConstant(t *testing.T) {
	c := NewCounter(nil)
	c.Wait(WFE, 1000*sim.Nanosecond)
	short := c.WaitCycles
	c.Reset()
	c.Wait(WFE, 100_000*sim.Nanosecond)
	long := c.WaitCycles
	if long > 10*short {
		t.Fatalf("WFE cycles grew with wait length: %f vs %f", short, long)
	}
	if short != model.WfeWaitCycles {
		t.Fatalf("WFE episode = %f cycles, want %f", short, model.WfeWaitCycles)
	}
}

func TestWfeAddsWakeLatency(t *testing.T) {
	c := NewCounter(nil)
	lp := c.Wait(Poll, sim.Microsecond)
	lw := c.Wait(WFE, sim.Microsecond)
	if lw <= lp {
		t.Fatalf("WFE wake %v not slower than poll detect %v", lw, lp)
	}
	if lw-lp != model.WfeWakeLat {
		t.Fatalf("wake delta %v, want %v", lw-lp, model.WfeWakeLat)
	}
}

func TestWfeSpuriousWakeups(t *testing.T) {
	rng := sim.NewRNG(42)
	c := NewCounter(rng)
	var total float64
	const n = 1000
	for i := 0; i < n; i++ {
		c.Reset()
		c.Wait(WFE, 100*sim.Microsecond)
		total += c.WaitCycles
	}
	mean := total / n
	// 100us * 0.05 wakes/us = ~5 extra episodes on average.
	if mean < model.WfeWaitCycles*2 || mean > model.WfeWaitCycles*20 {
		t.Fatalf("mean WFE cycles with spurious wakes = %f", mean)
	}
}

func TestWorkAccumulates(t *testing.T) {
	c := NewCounter(nil)
	c.Work(sim.Microsecond)
	c.Work(sim.Microsecond)
	if c.WorkCycles < 5000 || c.WorkCycles > 5400 {
		t.Fatalf("2us work = %f cycles", c.WorkCycles)
	}
	if c.Total() != c.WorkCycles {
		t.Fatal("Total != Work with no waits")
	}
}

func TestNegativeWaitClamped(t *testing.T) {
	c := NewCounter(nil)
	c.Wait(Poll, -5)
	if c.WaitCycles != 0 {
		t.Fatalf("negative wait charged %f", c.WaitCycles)
	}
}

func TestModeString(t *testing.T) {
	if Poll.String() != "poll" || WFE.String() != "wfe" {
		t.Fatal("mode strings")
	}
}

func TestPaperRatioShape(t *testing.T) {
	// The §VII-D shape: for a ping-pong with ~1us waits and ~0.3us work,
	// polling should cost several times more cycles than WFE overall.
	run := func(mode WaitMode) float64 {
		c := NewCounter(nil)
		for i := 0; i < 1000; i++ {
			c.Work(300 * sim.Nanosecond)
			c.Wait(mode, 1200*sim.Nanosecond)
		}
		return c.Total()
	}
	ratio := run(Poll) / run(WFE)
	if ratio < 2 || ratio > 6 {
		t.Fatalf("poll/wfe cycle ratio = %.2f, want 2-6 (paper: 2.5-3.8x)", ratio)
	}
}
