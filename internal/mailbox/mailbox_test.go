package mailbox

import (
	"strings"
	"testing"

	"twochains/internal/cpusim"
	"twochains/internal/mem"
	"twochains/internal/sim"
	"twochains/internal/simnet"
	"twochains/internal/ucx"
)

// rig is a two-node mailbox test fixture: node A sends, node B receives.
type rig struct {
	eng      *sim.Engine
	a, b     *ucx.Worker
	sender   *Sender
	receiver *Receiver
	recvCnt  *cpusim.Counter
	sendCnt  *cpusim.Counter
	handled  []*Delivery
	usr      [][]byte
	args     [][2]uint64
}

func newRig(t *testing.T, g Geometry, credits bool, handler Handler) *rig {
	t.Helper()
	eng := sim.NewEngine()
	fab := simnet.NewFabric(eng, simnet.DefaultConfig())
	ctx := ucx.NewContext(fab)
	r := &rig{
		eng:     eng,
		a:       ctx.NewWorker(mem.NewAddressSpace(8<<20), nil),
		b:       ctx.NewWorker(mem.NewAddressSpace(8<<20), nil),
		recvCnt: cpusim.NewCounter(nil),
		sendCnt: cpusim.NewCounter(nil),
	}
	rcfg := DefaultReceiverConfig(g)
	rcfg.Credits = credits
	if handler == nil {
		handler = func(d *Delivery) (sim.Duration, error) {
			// d is the receiver's scratch record, valid only during the
			// callback: copy it for post-run assertions.
			cp := *d
			r.handled = append(r.handled, &cp)
			usr, err := ReadUsr(r.b.AS, d)
			if err != nil {
				return 0, err
			}
			r.usr = append(r.usr, usr)
			var args [2]uint64
			for i := range args {
				if args[i], err = ReadArg(r.b.AS, d, i); err != nil {
					return 0, err
				}
			}
			r.args = append(r.args, args)
			return 100 * sim.Nanosecond, nil
		}
	}
	recv, err := NewReceiver(r.b, rcfg, r.recvCnt, handler)
	if err != nil {
		t.Fatal(err)
	}
	r.receiver = recv

	scfg := SenderConfig{Geometry: g, Credits: credits}
	snd, err := NewSender(r.a, r.a.Connect(r.b), scfg, recv.BaseVA, recv.Mem.Key, r.sendCnt)
	if err != nil {
		t.Fatal(err)
	}
	r.sender = snd
	if credits {
		recv.SetCreditReturn(r.b.Connect(r.a), snd.CreditVA, snd.CreditMem.Key)
	}
	recv.Start()
	return r
}

func g1() Geometry  { return Geometry{Banks: 1, Slots: 1, FrameSize: 256} }
func g44() Geometry { return Geometry{Banks: 4, Slots: 4, FrameSize: 256} }

func TestLocalFrameRoundTrip(t *testing.T) {
	r := newRig(t, g1(), false, nil)
	msg := PackLocal(3, 7, [2]uint64{11, 22}, []byte("payload-bytes"))
	var info SendInfo
	r.sender.Send(msg, func(i SendInfo) { info = i })
	r.eng.Run()
	if info.Err != nil {
		t.Fatal(info.Err)
	}
	if len(r.handled) != 1 {
		t.Fatalf("handled %d messages", len(r.handled))
	}
	d := r.handled[0]
	if d.Kind != KindLocal || d.PkgID != 3 || d.ElemID != 7 || d.Seq != 1 {
		t.Fatalf("delivery %+v", d)
	}
	for i, want := range []uint64{11, 22} {
		got, err := ReadArg(r.b.AS, d, i)
		if err != nil || got != want {
			t.Fatalf("arg %d = %d, %v", i, got, err)
		}
	}
	if string(r.usr[0]) != "payload-bytes" {
		t.Fatalf("usr = %q", r.usr[0])
	}
}

func TestWireLenMatchesPaperSizes(t *testing.T) {
	// §VII-A: 1-integer Local Function message is 64B; Injected with the
	// 1408-byte Indirect Put jam is 1472B.
	local := PackLocal(1, 1, [2]uint64{1, 1}, make([]byte, 4))
	if got := local.WireLen(); got != 64 {
		t.Fatalf("local 1-int frame = %d, want 64", got)
	}
	inj := &Message{
		Kind:        KindInjected,
		JamImage:    make([]byte, 1408),
		GotTableLen: 4 * 8,
		Usr:         make([]byte, 4),
	}
	if got := inj.WireLen(); got != 1472 {
		t.Fatalf("injected 1-int frame = %d, want 1472", got)
	}
}

func TestInjectedFramePatching(t *testing.T) {
	// The packed frame must carry the gp slot pointing at the travelling
	// GOT and local entries bound relative to the body.
	g := Geometry{Banks: 1, Slots: 1, FrameSize: 512}
	var got *Delivery
	r := newRig(t, g, false, func(d *Delivery) (sim.Duration, error) {
		got = d
		return 0, nil
	})
	jam := make([]byte, 2*8+8+64) // 2 GOT slots, gp, 64B body
	// Slot 0 pre-bound by the "core runtime" to a fake receiver VA.
	for i, b := range []byte{0xEF, 0xBE, 0xAD, 0xDE} {
		jam[i] = b
	}
	msg := &Message{
		Kind:        KindInjected,
		JamImage:    jam,
		GotTableLen: 16,
		TextLen:     64,
		EntryOff:    8,
		Patches:     []GotPatch{{Slot: 1, BodyOff: 32}},
		Args:        [2]uint64{5, 0},
		Usr:         []byte{1, 2, 3, 4},
	}
	r.sender.Send(msg, nil)
	r.eng.Run()
	if got == nil {
		t.Fatal("no delivery")
	}
	if got.JamLen != len(jam) || got.BodyLen != 64 {
		t.Fatalf("jamLen=%d bodyLen=%d", got.JamLen, got.BodyLen)
	}
	// gp slot points at the GOT table.
	gp, err := r.b.AS.ReadU64(got.GpSlotVA)
	if err != nil || gp != got.GotVA {
		t.Fatalf("gp = %#x, want %#x (%v)", gp, got.GotVA, err)
	}
	// Slot 1 was patched to body+32.
	slot1, _ := r.b.AS.ReadU64(got.GotVA + 8)
	if slot1 != got.CodeVA+32 {
		t.Fatalf("slot1 = %#x, want %#x", slot1, got.CodeVA+32)
	}
	// Slot 0 kept the pre-bound extern VA.
	slot0, _ := r.b.AS.ReadU64(got.GotVA)
	if slot0 != 0xDEADBEEF {
		t.Fatalf("slot0 = %#x", slot0)
	}
	if got.EntryVA != got.CodeVA+8 {
		t.Fatalf("entry = %#x, want %#x", got.EntryVA, got.CodeVA+8)
	}
}

func TestSequenceOfMessages(t *testing.T) {
	r := newRig(t, g44(), true, nil)
	const n = 40 // several laps over the 16 slots
	done := 0
	for i := 0; i < n; i++ {
		r.sender.Send(PackLocal(1, 1, [2]uint64{uint64(i), 0}, nil), func(info SendInfo) {
			if info.Err != nil {
				t.Errorf("send %v", info.Err)
			}
			done++
		})
	}
	r.eng.Run()
	if done != n {
		t.Fatalf("delivered %d of %d", done, n)
	}
	if len(r.handled) != n {
		t.Fatalf("handled %d of %d", len(r.handled), n)
	}
	for i, d := range r.handled {
		if d.Seq != uint32(i+1) {
			t.Fatalf("message %d has seq %d", i, d.Seq)
		}
		// Arguments captured at handling time, before slot reuse.
		if r.args[i][0] != uint64(i) {
			t.Fatalf("message %d arg %d", i, r.args[i][0])
		}
	}
	if r.receiver.Stats().Processed != n {
		t.Fatalf("processed %d", r.receiver.Stats().Processed)
	}
}

func TestCreditFlowControlStalls(t *testing.T) {
	// With 2x2 slots and a slow handler, blasting 20 sends must stall the
	// sender until credits return — and still deliver everything in order.
	g := Geometry{Banks: 2, Slots: 2, FrameSize: 128}
	slow := func(d *Delivery) (sim.Duration, error) { return 3 * sim.Microsecond, nil }
	r := newRig(t, g, true, slow)
	const n = 20
	var seqs []uint32
	for i := 0; i < n; i++ {
		r.sender.Send(PackLocal(1, 1, [2]uint64{}, nil), func(info SendInfo) {
			if info.Err != nil {
				t.Errorf("send: %v", info.Err)
			}
			seqs = append(seqs, info.Seq)
		})
	}
	r.eng.Run()
	if len(seqs) != n {
		t.Fatalf("delivered %d", len(seqs))
	}
	if r.sender.Stats().CreditStalls == 0 {
		t.Fatal("sender never stalled despite tiny mailbox")
	}
	if r.receiver.Stats().CreditsSent < uint64(n/2-2) {
		t.Fatalf("credits sent %d", r.receiver.Stats().CreditsSent)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("out of order delivery: %v", seqs)
		}
	}
}

func TestWithoutExecutionSkipsHandler(t *testing.T) {
	called := false
	r := newRig(t, g1(), false, func(d *Delivery) (sim.Duration, error) {
		called = true
		return 0, nil
	})
	r.sender.Send(PackData([]byte{9, 9, 9}), nil)
	r.eng.Run()
	if called {
		t.Fatal("handler invoked for KindData frame")
	}
	if r.receiver.Stats().Processed != 1 {
		t.Fatal("data frame not processed")
	}
}

func TestHandlerErrorCounted(t *testing.T) {
	r := newRig(t, g1(), false, func(d *Delivery) (sim.Duration, error) {
		return 0, errFake
	})
	var reported error
	r.receiver.OnError = func(d *Delivery, err error) { reported = err }
	r.sender.Send(PackLocal(1, 1, [2]uint64{}, nil), nil)
	r.eng.Run()
	if r.receiver.Stats().Errors != 1 {
		t.Fatal("error not counted")
	}
	if reported == nil || !strings.Contains(reported.Error(), "fake") {
		t.Fatalf("OnError got %v", reported)
	}
	// The loop must advance past the bad frame.
	if r.receiver.Pending() != 2 {
		t.Fatalf("receiver stuck at seq %d", r.receiver.Pending())
	}
}

type fakeErr struct{}

func (fakeErr) Error() string { return "fake handler failure" }

var errFake = fakeErr{}

func TestWaitCyclesPollVsWfe(t *testing.T) {
	// Same traffic, two wait modes: polling must burn far more cycles.
	run := func(mode cpusim.WaitMode) float64 {
		g := g1()
		eng := sim.NewEngine()
		fab := simnet.NewFabric(eng, simnet.DefaultConfig())
		ctx := ucx.NewContext(fab)
		a := ctx.NewWorker(mem.NewAddressSpace(4<<20), nil)
		b := ctx.NewWorker(mem.NewAddressSpace(4<<20), nil)
		cnt := cpusim.NewCounter(nil)
		rcfg := DefaultReceiverConfig(g)
		rcfg.WaitMode = mode
		recv, err := NewReceiver(b, rcfg, cnt, func(d *Delivery) (sim.Duration, error) { return 0, nil })
		if err != nil {
			t.Fatal(err)
		}
		snd, err := NewSender(a, a.Connect(b), SenderConfig{Geometry: g}, recv.BaseVA, recv.Mem.Key, nil)
		if err != nil {
			t.Fatal(err)
		}
		recv.Start()
		// Space sends 5us apart so the receiver waits between messages.
		for i := 0; i < 10; i++ {
			i := i
			eng.At(sim.Time(i)*sim.Time(5*sim.Microsecond), func() {
				snd.Send(PackLocal(1, 1, [2]uint64{}, nil), nil)
			})
		}
		eng.Run()
		return cnt.WaitCycles
	}
	poll, wfe := run(cpusim.Poll), run(cpusim.WFE)
	if poll < 10*wfe {
		t.Fatalf("poll %.0f cycles vs wfe %.0f: expected order-of-magnitude gap", poll, wfe)
	}
}

func TestVariableFramesCostExtraWait(t *testing.T) {
	run := func(variable bool) float64 {
		g := g1()
		eng := sim.NewEngine()
		fab := simnet.NewFabric(eng, simnet.DefaultConfig())
		ctx := ucx.NewContext(fab)
		a := ctx.NewWorker(mem.NewAddressSpace(4<<20), nil)
		b := ctx.NewWorker(mem.NewAddressSpace(4<<20), nil)
		cnt := cpusim.NewCounter(nil)
		rcfg := DefaultReceiverConfig(g)
		rcfg.VariableFrames = variable
		recv, err := NewReceiver(b, rcfg, cnt, func(d *Delivery) (sim.Duration, error) { return 0, nil })
		if err != nil {
			t.Fatal(err)
		}
		snd, err := NewSender(a, a.Connect(b), SenderConfig{Geometry: g}, recv.BaseVA, recv.Mem.Key, nil)
		if err != nil {
			t.Fatal(err)
		}
		recv.Start()
		for i := 0; i < 5; i++ {
			i := i
			eng.At(sim.Time(i)*sim.Time(3*sim.Microsecond), func() {
				snd.Send(PackLocal(1, 1, [2]uint64{}, nil), nil)
			})
		}
		eng.Run()
		return float64(cnt.Waits)
	}
	fixed, variable := run(false), run(true)
	if variable <= fixed {
		t.Fatalf("variable frames waits %f <= fixed %f", variable, fixed)
	}
}

func TestSeparateSignalModeDelivers(t *testing.T) {
	// Unordered fabric + separate signal put: messages must still arrive
	// uncorrupted and in sequence.
	eng := sim.NewEngine()
	fab := simnet.NewFabric(eng, simnet.Config{Ordered: false, Seed: 99})
	ctx := ucx.NewContext(fab)
	a := ctx.NewWorker(mem.NewAddressSpace(4<<20), nil)
	b := ctx.NewWorker(mem.NewAddressSpace(4<<20), nil)
	g := Geometry{Banks: 2, Slots: 2, FrameSize: 256}
	var usr [][]byte
	recv, err := NewReceiver(b, DefaultReceiverConfig(g), nil, func(d *Delivery) (sim.Duration, error) {
		u, err := ReadUsr(b.AS, d)
		usr = append(usr, u)
		return 0, err
	})
	if err != nil {
		t.Fatal(err)
	}
	scfg := SenderConfig{Geometry: g, SeparateSignal: true}
	snd, err := NewSender(a, a.Connect(b), scfg, recv.BaseVA, recv.Mem.Key, nil)
	if err != nil {
		t.Fatal(err)
	}
	recv.Start()
	for i := 0; i < 4; i++ {
		snd.Send(PackLocal(1, 1, [2]uint64{}, []byte{byte(i), 0xAA}), nil)
	}
	eng.Run()
	if len(usr) != 4 {
		t.Fatalf("delivered %d of 4", len(usr))
	}
	for i, u := range usr {
		if u[0] != byte(i) || u[1] != 0xAA {
			t.Fatalf("message %d corrupted: %v", i, u)
		}
	}
}

func TestGeometryMapping(t *testing.T) {
	g := Geometry{Banks: 3, Slots: 4, FrameSize: 128}
	if g.Total() != 12 || g.RegionSize() != 12*128 {
		t.Fatal("geometry sizes")
	}
	bank, slot, off := g.SlotFor(1)
	if bank != 0 || slot != 0 || off != 0 {
		t.Fatalf("seq 1 -> %d %d %d", bank, slot, off)
	}
	bank, slot, off = g.SlotFor(5)
	if bank != 1 || slot != 0 || off != uint64(4*128) {
		t.Fatalf("seq 5 -> %d %d %d", bank, slot, off)
	}
	// Wraps after 12.
	bank, slot, _ = g.SlotFor(13)
	if bank != 0 || slot != 0 {
		t.Fatalf("seq 13 -> %d %d", bank, slot)
	}
}

func TestGeometryValidate(t *testing.T) {
	if (Geometry{Banks: 0, Slots: 1, FrameSize: 64}).Validate() == nil {
		t.Fatal("zero banks accepted")
	}
	if (Geometry{Banks: 1, Slots: 1, FrameSize: 63}).Validate() == nil {
		t.Fatal("unaligned frame accepted")
	}
	if (Geometry{Banks: 1, Slots: 1, FrameSize: 0}).Validate() == nil {
		t.Fatal("tiny frame accepted")
	}
}

func TestPackRejectsOversize(t *testing.T) {
	msg := PackLocal(1, 1, [2]uint64{}, make([]byte, 1024))
	buf := make([]byte, 256)
	if err := msg.Pack(buf, 256, 1, 0x1000); err == nil {
		t.Fatal("oversized message packed")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	as := mem.NewAddressSpace(1 << 16)
	va, _ := as.AllocPages("f", 4096, mem.PermRW)
	if _, err := ParseFrame(as, va, 256); err == nil {
		t.Fatal("zero frame parsed")
	}
}

func TestInsertGpSecurityMode(t *testing.T) {
	// With InsertGp, a malicious sender-supplied GOT pointer is replaced
	// by the receiver-computed one before execution.
	g := Geometry{Banks: 1, Slots: 1, FrameSize: 512}
	eng := sim.NewEngine()
	fab := simnet.NewFabric(eng, simnet.DefaultConfig())
	ctx := ucx.NewContext(fab)
	a := ctx.NewWorker(mem.NewAddressSpace(4<<20), nil)
	b := ctx.NewWorker(mem.NewAddressSpace(4<<20), nil)
	rcfg := DefaultReceiverConfig(g)
	rcfg.InsertGp = true
	var gp, gotVA uint64
	recv, err := NewReceiver(b, rcfg, nil, func(d *Delivery) (sim.Duration, error) {
		gp, _ = b.AS.ReadU64(d.GpSlotVA)
		gotVA = d.GotVA
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snd, err := NewSender(a, a.Connect(b), SenderConfig{Geometry: g}, recv.BaseVA, recv.Mem.Key, nil)
	if err != nil {
		t.Fatal(err)
	}
	recv.Start()
	jam := make([]byte, 8+8+16) // 1 slot + gp + 16B body
	msg := &Message{Kind: KindInjected, JamImage: jam, GotTableLen: 8, TextLen: 16, EntryOff: 0}
	// Sabotage: after packing, the sender's staging would hold a bogus gp;
	// we emulate by sending normally — InsertGp must still equal GotVA.
	snd.Send(msg, nil)
	eng.Run()
	if gp != gotVA {
		t.Fatalf("gp %#x != receiver GOT %#x", gp, gotVA)
	}
}
