package mailbox

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"twochains/internal/mem"
)

// TestPackParseRoundTripProperty: any well-formed message packs into a
// frame that parses back to the same structure, with the signal trailer in
// place and the payload intact.
func TestPackParseRoundTripProperty(t *testing.T) {
	as := mem.NewAddressSpace(1 << 20)
	frameVA, err := as.AllocPages("frame", 1<<16, mem.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	f := func(kindSel uint8, pkgID, elemID uint8, seq uint32, args [2]uint64, usr []byte, gotSlots uint8, bodyWords uint8) bool {
		if seq == 0 {
			seq = 1
		}
		if len(usr) > 4096 {
			usr = usr[:4096]
		}
		msg := &Message{
			PkgID:  pkgID,
			ElemID: elemID,
			Args:   args,
			Usr:    usr,
		}
		switch kindSel % 3 {
		case 0:
			msg.Kind = KindLocal
		case 1:
			msg.Kind = KindData
		default:
			msg.Kind = KindInjected
			slots := int(gotSlots%8) + 1
			words := int(bodyWords%32) + 1
			msg.GotTableLen = slots * 8
			msg.JamImage = make([]byte, slots*8+8+words*8)
			for i := range msg.JamImage {
				msg.JamImage[i] = byte(i * 7)
			}
			msg.TextLen = words * 8
			msg.EntryOff = uint32((words - 1) * 8)
		}
		frameSize := msg.WireLen()
		buf := make([]byte, frameSize)
		if err := msg.Pack(buf, frameSize, seq, frameVA); err != nil {
			return false
		}
		if err := as.WriteBytesDMA(frameVA, buf); err != nil {
			return false
		}
		if !SigPresent(as, frameVA, frameSize, seq) {
			return false
		}
		if SigPresent(as, frameVA, frameSize, seq+1) {
			return false
		}
		d, err := ParseFrame(as, frameVA, frameSize)
		if err != nil {
			return false
		}
		if d.Kind != msg.Kind || d.PkgID != pkgID || d.ElemID != elemID || d.Seq != seq {
			return false
		}
		if d.UsrLen != len(usr) {
			return false
		}
		gotUsr, err := ReadUsr(as, d)
		if err != nil || !bytes.Equal(gotUsr, usr) {
			return false
		}
		for i, want := range args {
			got, err := ReadArg(as, d, i)
			if err != nil || got != want {
				return false
			}
		}
		if msg.Kind == KindInjected {
			if d.JamLen != len(msg.JamImage) || d.TextLen != msg.TextLen {
				return false
			}
			if d.EntryVA != d.CodeVA+uint64(msg.EntryOff) {
				return false
			}
			// The gp slot must point at the travelling GOT.
			gp, err := as.ReadU64(d.GpSlotVA)
			if err != nil || gp != d.GotVA {
				return false
			}
			// Body bytes survive (past the GOT table + gp slot).
			body, err := as.ReadBytesDMA(d.CodeVA, d.BodyLen)
			if err != nil || !bytes.Equal(body, msg.JamImage[msg.GotTableLen+8:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCorruptedFrameNeverPanics: random bytes in a mailbox slot must be
// rejected cleanly, never crash the parser.
func TestCorruptedFrameNeverPanics(t *testing.T) {
	as := mem.NewAddressSpace(1 << 18)
	frameVA, err := as.AllocPages("frame", 4096, mem.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte, sizeSel uint8) bool {
		frameSize := (int(sizeSel%32) + 1) * 64
		buf := make([]byte, frameSize)
		copy(buf, raw)
		buf[0] = FrameMagic // force past the magic check to reach the validators
		if err := as.WriteBytesDMA(frameVA, buf); err != nil {
			return false
		}
		d, err := ParseFrame(as, frameVA, frameSize)
		if err != nil {
			return true // rejected: fine
		}
		// Accepted frames must have internally consistent geometry.
		if d.UsrLen < 0 || d.JamLen < 0 {
			return false
		}
		end := HeaderSize + d.JamLen + ArgsSize + d.UsrLen + SigSize
		if d.Kind == KindInjected {
			end += PreSize
		}
		return end <= frameSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestBurstSplitReassemblyProperty: a burst packed into consecutive
// mailbox slots (the SendBatch staging discipline) splits into contiguous
// runs only at the region wrap, and every frame parses back to its
// message — seq, args, and payload intact — regardless of geometry, burst
// length, or starting sequence number.
func TestBurstSplitReassemblyProperty(t *testing.T) {
	as := mem.NewAddressSpace(1 << 20)
	base, err := as.AllocPages("region", 1<<18, mem.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	f := func(nSel, banksSel, slotsSel uint8, seqSel uint32, usr []byte) bool {
		g := Geometry{
			Banks:     int(banksSel%3) + 1,
			Slots:     int(slotsSel%5) + 1,
			FrameSize: 512,
		}
		if len(usr) > 300 {
			usr = usr[:300]
		}
		n := int(nSel%25) + 1
		if n > g.Total() {
			n = g.Total() // a burst larger than the region overwrites slots
		}
		startSeq := seqSel%1000 + 1

		// Split phase: pack each message at its slot, tracking contiguous
		// runs exactly like the batched sender.
		runs := 0
		prevEnd := ^uint64(0)
		for i := 0; i < n; i++ {
			seq := startSeq + uint32(i)
			_, _, off := g.SlotFor(seq)
			if off != prevEnd {
				runs++
			}
			prevEnd = off + uint64(g.FrameSize)
			msg := PackLocal(1, 2, [2]uint64{uint64(seq), ^uint64(seq)}, usr)
			buf := make([]byte, g.FrameSize)
			if err := msg.Pack(buf, g.FrameSize, seq, base+off); err != nil {
				return false
			}
			if err := as.WriteBytesDMA(base+off, buf); err != nil {
				return false
			}
		}
		// The run count is forced by geometry alone: one initial run plus
		// one per region wrap inside the burst.
		wantRuns := 1
		for i := 1; i < n; i++ {
			if int(startSeq-1+uint32(i))%g.Total() == 0 {
				wantRuns++
			}
		}
		if runs != wantRuns {
			return false
		}

		// Reassembly phase: every slot parses back to its message.
		for i := 0; i < n; i++ {
			seq := startSeq + uint32(i)
			_, _, off := g.SlotFor(seq)
			if !SigPresent(as, base+off, g.FrameSize, seq) {
				return false
			}
			d, err := ParseFrame(as, base+off, g.FrameSize)
			if err != nil || d.Seq != seq || d.Kind != KindLocal {
				return false
			}
			a0, err0 := ReadArg(as, d, 0)
			a1, err1 := ReadArg(as, d, 1)
			if err0 != nil || err1 != nil || a0 != uint64(seq) || a1 != ^uint64(seq) {
				return false
			}
			got, err := ReadUsr(as, d)
			if err != nil || !bytes.Equal(got, usr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestSigLittleEndianLayout pins the on-the-wire signal format.
func TestSigLittleEndianLayout(t *testing.T) {
	msg := PackLocal(1, 2, [2]uint64{}, nil)
	buf := make([]byte, 64)
	if err := msg.Pack(buf, 64, 0xAABBCCDD, 0); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(buf[56:]) != 0xAABBCCDD {
		t.Fatalf("seq echo bytes: % x", buf[56:60])
	}
	if binary.LittleEndian.Uint32(buf[60:]) != SigMagicVal {
		t.Fatalf("sig magic bytes: % x", buf[60:64])
	}
}
