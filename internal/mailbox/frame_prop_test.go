package mailbox

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"twochains/internal/mem"
)

// TestPackParseRoundTripProperty: any well-formed message packs into a
// frame that parses back to the same structure, with the signal trailer in
// place and the payload intact.
func TestPackParseRoundTripProperty(t *testing.T) {
	as := mem.NewAddressSpace(1 << 20)
	frameVA, err := as.AllocPages("frame", 1<<16, mem.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	f := func(kindSel uint8, pkgID, elemID uint8, seq uint32, args [2]uint64, usr []byte, gotSlots uint8, bodyWords uint8) bool {
		if seq == 0 {
			seq = 1
		}
		if len(usr) > 4096 {
			usr = usr[:4096]
		}
		msg := &Message{
			PkgID:  pkgID,
			ElemID: elemID,
			Args:   args,
			Usr:    usr,
		}
		switch kindSel % 3 {
		case 0:
			msg.Kind = KindLocal
		case 1:
			msg.Kind = KindData
		default:
			msg.Kind = KindInjected
			slots := int(gotSlots%8) + 1
			words := int(bodyWords%32) + 1
			msg.GotTableLen = slots * 8
			msg.JamImage = make([]byte, slots*8+8+words*8)
			for i := range msg.JamImage {
				msg.JamImage[i] = byte(i * 7)
			}
			msg.TextLen = words * 8
			msg.EntryOff = uint32((words - 1) * 8)
		}
		frameSize := msg.WireLen()
		buf := make([]byte, frameSize)
		if err := msg.Pack(buf, frameSize, seq, frameVA); err != nil {
			return false
		}
		if err := as.WriteBytesDMA(frameVA, buf); err != nil {
			return false
		}
		if !SigPresent(as, frameVA, frameSize, seq) {
			return false
		}
		if SigPresent(as, frameVA, frameSize, seq+1) {
			return false
		}
		d, err := ParseFrame(as, frameVA, frameSize)
		if err != nil {
			return false
		}
		if d.Kind != msg.Kind || d.PkgID != pkgID || d.ElemID != elemID || d.Seq != seq {
			return false
		}
		if d.UsrLen != len(usr) {
			return false
		}
		gotUsr, err := ReadUsr(as, d)
		if err != nil || !bytes.Equal(gotUsr, usr) {
			return false
		}
		for i, want := range args {
			got, err := ReadArg(as, d, i)
			if err != nil || got != want {
				return false
			}
		}
		if msg.Kind == KindInjected {
			if d.JamLen != len(msg.JamImage) || d.TextLen != msg.TextLen {
				return false
			}
			if d.EntryVA != d.CodeVA+uint64(msg.EntryOff) {
				return false
			}
			// The gp slot must point at the travelling GOT.
			gp, err := as.ReadU64(d.GpSlotVA)
			if err != nil || gp != d.GotVA {
				return false
			}
			// Body bytes survive (past the GOT table + gp slot).
			body, err := as.ReadBytesDMA(d.CodeVA, d.BodyLen)
			if err != nil || !bytes.Equal(body, msg.JamImage[msg.GotTableLen+8:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCorruptedFrameNeverPanics: random bytes in a mailbox slot must be
// rejected cleanly, never crash the parser.
func TestCorruptedFrameNeverPanics(t *testing.T) {
	as := mem.NewAddressSpace(1 << 18)
	frameVA, err := as.AllocPages("frame", 4096, mem.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte, sizeSel uint8) bool {
		frameSize := (int(sizeSel%32) + 1) * 64
		buf := make([]byte, frameSize)
		copy(buf, raw)
		buf[0] = FrameMagic // force past the magic check to reach the validators
		if err := as.WriteBytesDMA(frameVA, buf); err != nil {
			return false
		}
		d, err := ParseFrame(as, frameVA, frameSize)
		if err != nil {
			return true // rejected: fine
		}
		// Accepted frames must have internally consistent geometry.
		if d.UsrLen < 0 || d.JamLen < 0 {
			return false
		}
		end := HeaderSize + d.JamLen + ArgsSize + d.UsrLen + SigSize
		if d.Kind == KindInjected {
			end += PreSize
		}
		return end <= frameSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSigLittleEndianLayout pins the on-the-wire signal format.
func TestSigLittleEndianLayout(t *testing.T) {
	msg := PackLocal(1, 2, [2]uint64{}, nil)
	buf := make([]byte, 64)
	if err := msg.Pack(buf, 64, 0xAABBCCDD, 0); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint32(buf[56:]) != 0xAABBCCDD {
		t.Fatalf("seq echo bytes: % x", buf[56:60])
	}
	if binary.LittleEndian.Uint32(buf[60:]) != SigMagicVal {
		t.Fatalf("sig magic bytes: % x", buf[60:64])
	}
}
