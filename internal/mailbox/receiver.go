package mailbox

import (
	"fmt"

	"twochains/internal/cpusim"
	"twochains/internal/fabric"
	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
	"twochains/internal/ucx"
)

// Handler executes one delivered message and returns the simulated
// execution cost (zero for without-execution runs). The Two-Chains core
// runtime supplies a handler that dispatches to the VM.
type Handler func(d *Delivery) (sim.Duration, error)

// ReceiverConfig selects mailbox behaviour.
type ReceiverConfig struct {
	Geometry Geometry
	WaitMode cpusim.WaitMode
	// Credits enables bank-granular flow control: after draining a bank
	// the receiver puts a flag back to the sender. Ping-pong shapes
	// disable it (the response message is the implicit credit).
	Credits bool
	// VariableFrames models the variable-size frame protocol: the
	// receiver waits on the header first, computes the frame length, then
	// waits on the trailing signal — a second wait episode per message.
	VariableFrames bool
	// PagePerm is the mailbox page permission; the paper's compact layout
	// uses RWX, the security ablation splits it.
	PagePerm mem.Perm
	// InsertGp makes the receiver overwrite the GOT pointer slot on
	// arrival instead of trusting the sender's value (paper §V security
	// option: "have the receiver insert the GOT pointer on message
	// arrival").
	InsertGp bool
	// Arbiter, when set, enrolls the receiver in its node's weighted-fair
	// service arbiter under class ArbClass: a ready frame queues with the
	// arbiter instead of starting service immediately, so concurrent
	// classes share the node's service capacity by weight.
	Arbiter  *FairArbiter
	ArbClass int
	// IsolationCost is charged per executed message on top of dispatch —
	// the per-invocation isolation boundary for untrusted tenant jams
	// (model.TenantIsolationCost is the calibrated knob).
	IsolationCost sim.Duration
}

// DefaultReceiverConfig returns the paper's measurement configuration:
// fixed frames, RWX mailbox pages, polling wait. It is the single source
// of receiver defaults; every deployment path (two-node clusters, mesh
// per-channel regions, perf rigs) starts from it and layers options on
// with the With* builder methods.
func DefaultReceiverConfig(g Geometry) ReceiverConfig {
	return ReceiverConfig{Geometry: g, WaitMode: cpusim.Poll, PagePerm: mem.PermRWX}
}

// The With* methods below form the ReceiverConfig builder: each returns an
// updated copy, so call sites chain the deviations from the default
// instead of hand-assigning fields —
//
//	rcfg := mailbox.DefaultReceiverConfig(geom).WithCredits(true).WithWaitMode(cpusim.WFE)

// WithCredits toggles bank-granular flow control.
func (c ReceiverConfig) WithCredits(on bool) ReceiverConfig {
	c.Credits = on
	return c
}

// WithWaitMode selects the wait-episode cycle accounting mode.
func (c ReceiverConfig) WithWaitMode(m cpusim.WaitMode) ReceiverConfig {
	c.WaitMode = m
	return c
}

// WithVariableFrames toggles the variable-size frame protocol (a second
// wait episode per message).
func (c ReceiverConfig) WithVariableFrames(on bool) ReceiverConfig {
	c.VariableFrames = on
	return c
}

// WithInsertGp makes the receiver overwrite the travelling GOT pointer on
// arrival (paper §V security option).
func (c ReceiverConfig) WithInsertGp(on bool) ReceiverConfig {
	c.InsertGp = on
	return c
}

// WithPagePerm sets the mailbox page permission (security ablations split
// the paper's compact RWX layout).
func (c ReceiverConfig) WithPagePerm(p mem.Perm) ReceiverConfig {
	c.PagePerm = p
	return c
}

// WithArbiter enrolls the receiver in a weighted-fair service arbiter
// under the given class.
func (c ReceiverConfig) WithArbiter(a *FairArbiter, class int) ReceiverConfig {
	c.Arbiter, c.ArbClass = a, class
	return c
}

// WithIsolationCost charges d per executed message (the untrusted-tenant
// isolation boundary).
func (c ReceiverConfig) WithIsolationCost(d sim.Duration) ReceiverConfig {
	c.IsolationCost = d
	return c
}

// ReceiverStats counts receiver-side activity.
type ReceiverStats struct {
	Processed   uint64
	CreditsSent uint64
	Errors      uint64
}

// Receiver owns a node's mailbox region and its reactive receive loop.
type Receiver struct {
	Cfg     ReceiverConfig
	Worker  *ucx.Worker
	Counter *cpusim.Counter
	Handler Handler

	BaseVA uint64
	Mem    *ucx.Memory

	// OnProcessed observes completed messages (benchmark hook). The
	// Delivery is the receiver's scratch record: valid only during the
	// callback, overwritten by the next frame.
	OnProcessed func(d *Delivery, completed sim.Time)
	// OnError observes handler failures; d may be nil (parse failure) and
	// has the same scratch lifetime as OnProcessed's.
	OnError func(d *Delivery, err error)

	creditEp  *ucx.Endpoint
	creditVA  uint64
	creditKey fabric.RKey

	eng       *sim.Engine
	nextSeq   uint32
	busy      bool
	started   bool
	waitStart sim.Time
	scratchVA uint64
	stats     ReceiverStats

	// One message is in service at a time (busy), so the receive loop
	// runs on a single scratch Delivery and two prebound event closures
	// instead of allocating per message. The Delivery handed to Handler,
	// OnProcessed, and OnError is this scratch record: it is valid only
	// for the duration of the callback and is overwritten by the next
	// frame — observers that need it longer must copy it.
	scratchD   Delivery
	serviceVA  uint64
	serviceFn  func() // prebound: service(serviceVA)
	completeD  *Delivery
	completeAt sim.Time
	completeFn func() // prebound: complete(completeD, completeAt)
	// arbWake is the wake latency computed at frame detection, replayed
	// when the arbiter grants service (an ungated grant pays it exactly
	// once, identically to the non-arbitrated path).
	arbWake sim.Duration
}

// NewReceiver allocates and registers the mailbox region on w's node and
// hooks the NIC delivery path.
func NewReceiver(w *ucx.Worker, cfg ReceiverConfig, counter *cpusim.Counter, handler Handler) (*Receiver, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.PagePerm == 0 {
		cfg.PagePerm = mem.PermRWX
	}
	base, err := w.AS.AllocPages("mailboxes", cfg.Geometry.RegionSize(), cfg.PagePerm)
	if err != nil {
		return nil, err
	}
	m, err := w.RegisterMemory(base, cfg.Geometry.RegionSize(), fabric.RemoteWrite)
	if err != nil {
		return nil, err
	}
	r := &Receiver{
		Cfg:     cfg,
		Worker:  w,
		Counter: counter,
		Handler: handler,
		BaseVA:  base,
		Mem:     m,
		eng:     w.Eng,
		nextSeq: 1,
	}
	r.serviceFn = func() { r.service(r.serviceVA) }
	r.completeFn = func() { r.complete(r.completeD, r.completeAt) }
	w.NIC.AddDeliveryHookRange(base, cfg.Geometry.RegionSize(),
		func(va uint64, size int) { r.poke() })
	return r, nil
}

// SetCreditReturn wires the credit path back to the sender: ep must be an
// endpoint from this node to the sender, and (va, key) the sender's credit
// flag array.
func (r *Receiver) SetCreditReturn(ep *ucx.Endpoint, va uint64, key fabric.RKey) {
	r.creditEp = ep
	r.creditVA = va
	r.creditKey = key
}

// Stats returns a copy of the counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Pending returns the sequence number the receiver is waiting for.
func (r *Receiver) Pending() uint32 { return r.nextSeq }

// Start arms the receive loop; the wait clock for the first message
// starts now.
func (r *Receiver) Start() {
	r.started = true
	r.waitStart = r.eng.Now()
	r.poke()
}

// Stop disarms the receive loop: frames already landed (or still in
// flight) stay in the region but are no longer serviced, and a service
// or completion event already scheduled when Stop runs is quashed when
// it fires (see the started gates in service/complete) — after Stop, no
// handler runs and no credit returns to the sender. Part of node
// teardown; a stopped receiver can be re-armed with Start.
func (r *Receiver) Stop() { r.started = false }

func (r *Receiver) frameVA(seq uint32) uint64 {
	_, _, off := r.Cfg.Geometry.SlotFor(seq)
	return r.BaseVA + off
}

// poke checks whether the awaited frame is complete and starts service.
// It is invoked by the NIC delivery hook and after each completed message.
func (r *Receiver) poke() {
	if !r.started || r.busy {
		return
	}
	va := r.frameVA(r.nextSeq)
	if !SigPresent(r.Worker.AS, va, r.Cfg.Geometry.FrameSize, r.nextSeq) {
		return
	}
	// Signal observed: account the wait episode and wake up.
	waited := r.eng.Now().Sub(r.waitStart)
	var wake sim.Duration
	if r.Counter != nil {
		wake = r.Counter.Wait(r.Cfg.WaitMode, waited)
	} else {
		wake = model.PollDetectLat
	}
	r.busy = true
	r.serviceVA = va
	if r.Cfg.Arbiter != nil {
		// Fair-queued path: the frame is ready but service waits for the
		// arbiter's grant; the wake latency is paid at grant time.
		r.arbWake = wake
		r.Cfg.Arbiter.enqueue(r.Cfg.ArbClass, r)
		return
	}
	r.eng.After(wake, r.serviceFn)
}

// granted starts the service the arbiter just granted.
func (r *Receiver) granted() {
	r.eng.After(r.arbWake, r.serviceFn)
}

// service parses, optionally patches, and executes the frame at va, then
// advances to the next slot.
func (r *Receiver) service(va uint64) {
	if !r.started {
		// Stopped (node teardown) after this service was scheduled: the
		// frame stays in the region unserviced, so fail-time loss
		// accounting (issued minus executed) sees it as lost, exactly.
		r.busy = false
		return
	}
	now := r.eng.Now()
	serviceCost := model.FrameParseOverhead
	// Header and signal reads go through the cache hierarchy: this is
	// where stashing first pays off.
	if r.Worker.Hier != nil {
		serviceCost += r.Worker.Hier.Access(va, HeaderSize, memsim.Read)
		serviceCost += r.Worker.Hier.Access(va+uint64(r.Cfg.Geometry.FrameSize)-8, 8, memsim.Read)
	}
	if r.Cfg.VariableFrames {
		// Second wait episode: header first, then the trailing signal.
		if r.Counter != nil {
			serviceCost += r.Counter.Wait(r.Cfg.WaitMode, 0)
		} else {
			serviceCost += model.PollDetectLat
		}
	}

	d := &r.scratchD
	if err := ParseFrameInto(d, r.Worker.AS, va, r.Cfg.Geometry.FrameSize); err != nil {
		r.fail(nil, fmt.Errorf("mailbox: receiver: %w", err), serviceCost)
		return
	}
	if d.Seq != r.nextSeq {
		r.fail(d, fmt.Errorf("mailbox: sequence mismatch: frame %d, expected %d", d.Seq, r.nextSeq), serviceCost)
		return
	}
	if d.Kind == KindInjected && r.Cfg.InsertGp {
		// Security mode: overwrite the travelling GOT pointer with the
		// receiver-computed value instead of trusting the sender.
		if err := r.Worker.AS.WriteU64(d.GpSlotVA, d.GotVA); err != nil {
			r.fail(d, err, serviceCost)
			return
		}
		serviceCost += model.GOTPatchPerEntry
	}
	serviceCost += model.HandlerDispatchLat

	if d.Kind != KindData && r.Handler != nil {
		// Untrusted-tenant isolation boundary: priced per invocation,
		// before the handler runs.
		serviceCost += r.Cfg.IsolationCost
		execCost, err := r.Handler(d)
		serviceCost += execCost
		if err != nil {
			r.fail(d, err, serviceCost)
			return
		}
	}
	if r.Counter != nil {
		r.Counter.Work(serviceCost)
	}
	r.completeD, r.completeAt = d, now.Add(serviceCost)
	r.eng.After(serviceCost, r.completeFn)
}

// fail records an error, still consuming the frame so the loop advances.
func (r *Receiver) fail(d *Delivery, err error, serviceCost sim.Duration) {
	r.stats.Errors++
	if r.OnError != nil {
		r.OnError(d, err)
	}
	//tclint:allow scratchescape the receiver owns the scratch record; completeFn runs before the next frame is parsed into it
	r.completeD, r.completeAt = d, r.eng.Now().Add(serviceCost)
	r.eng.After(serviceCost, r.completeFn)
}

func (r *Receiver) complete(d *Delivery, t sim.Time) {
	if !r.started {
		// Stopped mid-service: the execution already happened (the handler
		// ran inside service), but no credit goes back to a sender from a
		// torn-down node and the loop does not advance.
		return
	}
	r.stats.Processed++
	seq := r.nextSeq
	bank, slot, _ := r.Cfg.Geometry.SlotFor(seq)
	r.nextSeq++
	r.busy = false

	if r.Cfg.Credits && slot == r.Cfg.Geometry.Slots-1 && r.creditEp != nil {
		// Bank drained: return its credit to the sender.
		r.stats.CreditsSent++
		flagVA := r.creditVA + uint64(bank*8)
		one := [8]byte{1}
		if err := r.Worker.AS.WriteBytes(r.scratch(), one[:]); err == nil {
			r.creditEp.PutThin(r.scratch(), flagVA, 8, r.creditKey, nil)
		}
	}
	if r.OnProcessed != nil && d != nil {
		r.OnProcessed(d, t)
	}
	// Immediately serve the next frame if it already arrived; otherwise
	// re-arm the wait clock.
	r.waitStart = r.eng.Now()
	if r.Cfg.Arbiter != nil {
		// Queue our own next frame first (enqueue is a no-op start while
		// the arbiter is busy), then hand the node back: the arbiter must
		// see this class's remaining backlog when it picks the next grant,
		// or a backlogged class degenerates to plain round-robin.
		r.poke()
		r.Cfg.Arbiter.done()
		return
	}
	r.poke()
}

// scratch returns an 8-byte staging location for credit puts (the first
// bytes of the mailbox region are never a frame signal, but to stay clean
// we allocate a dedicated slot lazily).
func (r *Receiver) scratch() uint64 {
	if r.scratchVA == 0 {
		va, err := r.Worker.AS.Alloc("mailbox-credit-scratch", 8, 8, mem.PermRW)
		if err != nil {
			// Fall back to the region base; this is diagnostic-only state.
			va = r.BaseVA
		}
		r.scratchVA = va
	}
	return r.scratchVA
}
