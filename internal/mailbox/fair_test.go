package mailbox

import (
	"testing"

	"twochains/internal/cpusim"
	"twochains/internal/mem"
	"twochains/internal/sim"
	"twochains/internal/simnet"
	"twochains/internal/ucx"
)

// fairRig is a one-receiving-node fixture with two arbitrated inbound
// channels (classes 0 and 1) and a fixed per-message service cost.
type fairRig struct {
	eng   *sim.Engine
	arb   *FairArbiter
	sends [2]*Sender
	order []int // class of each completion, in completion order
}

func newFairRig(t *testing.T, weights [2]int, svc sim.Duration) *fairRig {
	t.Helper()
	eng := sim.NewEngine()
	fab := simnet.NewFabric(eng, simnet.DefaultConfig())
	ctx := ucx.NewContext(fab)
	src := ctx.NewWorker(mem.NewAddressSpace(8<<20), nil)
	dst := ctx.NewWorker(mem.NewAddressSpace(8<<20), nil)
	g := Geometry{Banks: 4, Slots: 8, FrameSize: 256}

	fr := &fairRig{eng: eng, arb: NewFairArbiter()}
	handler := func(d *Delivery) (sim.Duration, error) { return svc, nil }
	for class := 0; class < 2; class++ {
		class := class
		if got := fr.arb.AddClass(weights[class]); got != class {
			t.Fatalf("class index %d, want %d", got, class)
		}
		rcfg := DefaultReceiverConfig(g).WithArbiter(fr.arb, class)
		recv, err := NewReceiver(dst, rcfg, cpusim.NewCounter(nil), handler)
		if err != nil {
			t.Fatal(err)
		}
		recv.OnProcessed = func(*Delivery, sim.Time) { fr.order = append(fr.order, class) }
		recv.Start()
		snd, err := NewSender(src, src.Connect(dst), SenderConfig{Geometry: g},
			recv.BaseVA, recv.Mem.Key, cpusim.NewCounter(nil))
		if err != nil {
			t.Fatal(err)
		}
		fr.sends[class] = snd
	}
	return fr
}

// TestFairArbiterWeightedShare pins the DRR grant pattern: with both
// classes backlogged and weights 3:1, any aligned window of 16 steady-
// state completions holds exactly 12 class-0 and 4 class-1 services.
func TestFairArbiterWeightedShare(t *testing.T) {
	fr := newFairRig(t, [2]int{3, 1}, 5*sim.Microsecond)
	const per = 24
	for i := 0; i < per; i++ {
		for class := 0; class < 2; class++ {
			fr.sends[class].Send(PackLocal(1, 1, [2]uint64{uint64(i), 0}, nil), nil)
		}
	}
	fr.eng.Run()
	if len(fr.order) != 2*per {
		t.Fatalf("completed %d of %d messages", len(fr.order), 2*per)
	}
	// Skip the ramp (frames still landing) and the drain (class 0 done
	// first leaves class 1 alone at the tail).
	window := fr.order[4:20]
	n0 := 0
	for _, c := range window {
		if c == 0 {
			n0++
		}
	}
	if n0 != 12 {
		t.Fatalf("class 0 got %d of 16 steady-state grants, want 12 (order %v)", n0, fr.order)
	}
	g := fr.arb.Grants()
	if g[0] != per || g[1] != per {
		t.Fatalf("grants = %v, want %d each (work conserving)", g, per)
	}
}

// TestFairArbiterWorkConserving pins that an idle class costs nothing:
// with only class 1 sending, every grant goes to class 1 back to back.
func TestFairArbiterWorkConserving(t *testing.T) {
	fr := newFairRig(t, [2]int{3, 1}, sim.Microsecond)
	const per = 10
	for i := 0; i < per; i++ {
		fr.sends[1].Send(PackLocal(1, 1, [2]uint64{uint64(i), 0}, nil), nil)
	}
	fr.eng.Run()
	if len(fr.order) != per {
		t.Fatalf("completed %d of %d", len(fr.order), per)
	}
	for i, c := range fr.order {
		if c != 1 {
			t.Fatalf("completion %d from class %d", i, c)
		}
	}
	g := fr.arb.Grants()
	if g[0] != 0 || g[1] != per {
		t.Fatalf("grants = %v", g)
	}
}

// TestFairArbiterDeterministic re-runs the weighted rig and pins the
// completion order bit for bit.
func TestFairArbiterDeterministic(t *testing.T) {
	run := func() []int {
		fr := newFairRig(t, [2]int{3, 1}, 2*sim.Microsecond)
		for i := 0; i < 16; i++ {
			fr.sends[i%2].Send(PackLocal(1, 1, [2]uint64{uint64(i), 0}, nil), nil)
		}
		fr.eng.Run()
		return fr.order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d: class %d vs %d", i, a[i], b[i])
		}
	}
}
