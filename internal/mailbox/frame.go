// Package mailbox implements the reactive mailbox of Two-Chains (paper
// Fig. 1): pinned, remotely writable frame slots organized as M banks of N
// mailboxes, a one-sided signal protocol, bank-granular credit flow
// control, and a receiver thread that waits by spin-polling or WFE and
// executes messages on arrival.
//
// Frame layouts (fixed-size frames, little-endian), matching the paper's
// Fig. 2 (Injected Function) and Fig. 3 (Local Function):
//
//	Injected: [header 16][preamble 8][GOT K*8][gp slot 8][body][args 24][usr]...[sig 8]
//	Local:    [header 16][args 24][usr]...[sig 8]
//
// The signal trailer sits in the last 8 bytes of the frame slot. The GOT
// pointer slot is immediately before the code, and the sender fills the
// GOT table with receiver virtual addresses after the namespace exchange.
// With these layouts a 1-integer Local frame is 64 bytes and an Injected
// Indirect Put frame (1408-byte shipped jam) is 1472 bytes — the exact
// sizes reported in §VII-A of the paper.
package mailbox

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"

	"twochains/internal/mem"
)

// Frame layout constants.
const (
	HeaderSize = 16
	PreSize    = 8 // preamble, present only in injected frames
	ArgsSize   = 16
	SigSize    = 8

	FrameMagic  = 0xA7
	SigMagicVal = 0x4A414D21 // "JAM!"
)

// Message kinds.
const (
	KindInjected = 1 // code travels in the message (Fig. 2)
	KindLocal    = 2 // function invoked by ID from the loaded library (Fig. 3)
	KindData     = 3 // delivery only, no invocation ("without-execution")
)

// GotPatch marks a travelling-GOT slot that must be bound relative to
// wherever the jam body lands (a jam-internal symbol).
type GotPatch struct {
	Slot    int
	BodyOff uint32
}

// Message is one active message to be packed into a frame.
//
// Hot senders take messages from the shared pool with GetMessage and hand
// them to Send/SendBatch, which return them to the pool once the frame
// bytes have been packed into the staging region (or the send failed).
// After that hand-off the caller must not touch the message again — it
// may already be serving another send. Messages constructed directly
// (&Message{...}, PackLocal, PackData) are never pooled and stay owned by
// the caller.
type Message struct {
	Kind   uint8
	PkgID  uint8
	ElemID uint8
	// pooled marks messages minted by GetMessage; release returns only
	// those to the pool, so caller-constructed messages keep value
	// semantics.
	pooled bool
	// owner, when set, is the Sender whose private freelist minted this
	// message (Sender.GetMessage): release recycles it there instead of
	// the shared pool. Sound because both mint and release happen on the
	// sender's shard — the send path is shard-owned end to end.
	owner *Sender
	// JamImage is the prebuilt [GOT table][gp slot][body] image for
	// injected messages; nil otherwise. Extern GOT entries already carry
	// receiver VAs; local entries and the gp slot are patched at pack time
	// when the destination frame VA is known.
	JamImage    []byte
	GotTableLen int // bytes of GOT table at the front of JamImage
	TextLen     int // executable prefix of the body (rest is rodata)
	EntryOff    uint32
	Patches     []GotPatch
	Args        [2]uint64
	Usr         []byte
}

// msgPool recycles Message frames across sends. sync.Pool keeps it safe
// for independent simulations running in parallel tests.
var msgPool = sync.Pool{New: func() any { return &Message{pooled: true} }}

// GetMessage returns a zeroed Message from the frame pool. Ownership
// transfers to the Sender on Send/SendBatch, which releases it back to
// the pool after packing; the caller must not retain it past that call.
func GetMessage() *Message {
	return msgPool.Get().(*Message)
}

// release returns a pooled message to the pool, dropping every payload
// reference (JamImage, Patches, and Usr are caller-owned and merely
// unreferenced, never recycled here). Non-pooled messages are left alone.
func (m *Message) release() {
	if o := m.owner; o != nil {
		*m = Message{owner: o}
		o.msgFree = append(o.msgFree, m)
		return
	}
	if !m.pooled {
		return
	}
	*m = Message{pooled: true}
	msgPool.Put(m)
}

// overhead returns the non-payload bytes of the message's frame.
func (m *Message) overhead() int {
	n := HeaderSize + ArgsSize + SigSize
	if m.Kind == KindInjected {
		n += PreSize + len(m.JamImage)
	}
	return n
}

// WireLen returns the frame bytes needed for the message, rounded up to
// the 64-byte granularity the paper uses for message sizing.
func (m *Message) WireLen() int {
	return (m.overhead() + len(m.Usr) + 63) / 64 * 64
}

// Pack serializes the message into buf, which must be at least frameSize
// bytes. dstFrameVA is the receiver-side VA the frame will occupy; it
// determines the GOT pointer value and any body-relative GOT entries.
// The signal trailer is written at frameSize-8.
func (m *Message) Pack(buf []byte, frameSize int, seq uint32, dstFrameVA uint64) error {
	return m.packInto(buf, frameSize, seq, dstFrameVA, frameSize, false)
}

// packInto is Pack with the steady-state shortcuts the Sender's per-slot
// cache enables: clearTo bounds the tail clear to bytes a previous pack
// of the same buffer actually dirtied, and haveJam skips the jam image
// copy when the identical image (same backing array) is already in buf
// from the slot's previous occupant. Pack(…) == packInto(…, frameSize,
// false): clear everything, copy everything.
func (m *Message) packInto(buf []byte, frameSize int, seq uint32, dstFrameVA uint64, clearTo int, haveJam bool) error {
	if m.overhead()+len(m.Usr) > frameSize {
		return fmt.Errorf("mailbox: message needs %d bytes, frame is %d",
			m.overhead()+len(m.Usr), frameSize)
	}
	if len(buf) < frameSize {
		return fmt.Errorf("mailbox: pack buffer %d < frame size %d", len(buf), frameSize)
	}
	if m.Kind == KindInjected && m.GotTableLen+8 > len(m.JamImage) {
		return fmt.Errorf("mailbox: GOT table %d exceeds jam image %d", m.GotTableLen, len(m.JamImage))
	}
	jamLen := 0
	if m.Kind == KindInjected {
		jamLen = len(m.JamImage)
	}
	// The fields below cover [0, written) with no gaps — header, preamble,
	// jam image (the gp slot sits inside it), args, usr are contiguous —
	// so only the tail up to the signal trailer needs clearing to leave
	// the frame bit-identical to a full pre-zero.
	written := HeaderSize + ArgsSize + len(m.Usr)
	if m.Kind == KindInjected {
		written += PreSize + jamLen
	}
	if clearTo > written {
		clear(buf[written:clearTo])
	}
	buf[0] = FrameMagic
	buf[1] = m.Kind
	buf[2] = m.PkgID
	buf[3] = m.ElemID
	binary.LittleEndian.PutUint32(buf[4:], seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(jamLen))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(m.Usr)))

	off := HeaderSize
	if m.Kind == KindInjected {
		binary.LittleEndian.PutUint16(buf[off:], uint16(m.GotTableLen))
		binary.LittleEndian.PutUint16(buf[off+2:], uint16(m.TextLen))
		binary.LittleEndian.PutUint32(buf[off+4:], m.EntryOff)
		off += PreSize
		if !haveJam {
			copy(buf[off:], m.JamImage)
		}
		gotVA := dstFrameVA + uint64(HeaderSize+PreSize)
		gpOff := off + m.GotTableLen
		binary.LittleEndian.PutUint64(buf[gpOff:], gotVA)
		codeVA := gotVA + uint64(m.GotTableLen) + 8
		for _, p := range m.Patches {
			binary.LittleEndian.PutUint64(buf[off+p.Slot*8:], codeVA+uint64(p.BodyOff))
		}
		off += len(m.JamImage)
	}
	for i, a := range m.Args {
		binary.LittleEndian.PutUint64(buf[off+i*8:], a)
	}
	off += ArgsSize
	copy(buf[off:], m.Usr)

	binary.LittleEndian.PutUint32(buf[frameSize-8:], seq)
	binary.LittleEndian.PutUint32(buf[frameSize-4:], SigMagicVal)
	return nil
}

// Delivery describes a parsed frame on the receiver, with the VAs of its
// parts in the receiver's address space.
type Delivery struct {
	Kind    uint8
	PkgID   uint8
	ElemID  uint8
	Seq     uint32
	FrameVA uint64
	JamLen  int
	UsrLen  int

	GotVA    uint64 // travelling GOT table (injected only)
	GpSlotVA uint64 // GOT pointer slot (injected only)
	CodeVA   uint64 // jam body (injected only)
	EntryVA  uint64 // entry point within the body (injected only)
	BodyLen  int    // body bytes (injected only)
	TextLen  int    // executable prefix of the body (injected only)
	ArgsVA   uint64
	UsrVA    uint64
}

// Arg reads the i-th argument word from the frame.
func (d *Delivery) Arg(as *mem.AddressSpace, i int) (uint64, error) {
	if i < 0 || i >= ArgsSize/8 {
		return 0, fmt.Errorf("mailbox: arg index %d out of range", i)
	}
	raw, err := as.ReadBytesDMA(d.ArgsVA+uint64(i*8), 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(raw), nil
}

// ParseFrame reads and validates a frame at frameVA.
func ParseFrame(as *mem.AddressSpace, frameVA uint64, frameSize int) (*Delivery, error) {
	d := &Delivery{}
	if err := ParseFrameInto(d, as, frameVA, frameSize); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseFrameInto is ParseFrame into a caller-owned Delivery, the
// allocation-free form receivers use with a per-region scratch record.
// d is fully overwritten.
func ParseFrameInto(d *Delivery, as *mem.AddressSpace, frameVA uint64, frameSize int) error {
	hdr, err := as.ViewDMA(frameVA, HeaderSize)
	if err != nil {
		return err
	}
	if hdr[0] != FrameMagic {
		return fmt.Errorf("mailbox: bad frame magic %#x at 0x%x", hdr[0], frameVA)
	}
	*d = Delivery{
		Kind:    hdr[1],
		PkgID:   hdr[2],
		ElemID:  hdr[3],
		Seq:     binary.LittleEndian.Uint32(hdr[4:]),
		FrameVA: frameVA,
		JamLen:  int(binary.LittleEndian.Uint32(hdr[8:])),
		UsrLen:  int(binary.LittleEndian.Uint32(hdr[12:])),
	}
	overhead := HeaderSize + ArgsSize + SigSize
	off := frameVA + HeaderSize
	switch d.Kind {
	case KindInjected:
		overhead += PreSize + d.JamLen
		pre, err := as.ViewDMA(off, PreSize)
		if err != nil {
			return err
		}
		gotLen := int(binary.LittleEndian.Uint16(pre))
		textLen := int(binary.LittleEndian.Uint16(pre[2:]))
		entry := binary.LittleEndian.Uint32(pre[4:])
		if gotLen+8 > d.JamLen {
			return fmt.Errorf("mailbox: frame at 0x%x: GOT table %d exceeds jam %d",
				frameVA, gotLen, d.JamLen)
		}
		off += PreSize
		d.GotVA = off
		d.GpSlotVA = off + uint64(gotLen)
		d.CodeVA = d.GpSlotVA + 8
		d.BodyLen = d.JamLen - gotLen - 8
		d.TextLen = textLen
		if textLen > d.BodyLen || textLen%8 != 0 {
			return fmt.Errorf("mailbox: frame at 0x%x: text length %d invalid for body %d",
				frameVA, textLen, d.BodyLen)
		}
		if int(entry) >= textLen {
			return fmt.Errorf("mailbox: frame at 0x%x: entry %d outside text %d",
				frameVA, entry, textLen)
		}
		d.EntryVA = d.CodeVA + uint64(entry)
		off += uint64(d.JamLen)
	case KindLocal, KindData:
		if d.JamLen != 0 {
			return fmt.Errorf("mailbox: non-injected frame carries jam bytes")
		}
	default:
		return fmt.Errorf("mailbox: unknown message kind %d", d.Kind)
	}
	if overhead+d.UsrLen > frameSize {
		return fmt.Errorf("mailbox: frame at 0x%x overruns slot (jam %d, usr %d, slot %d)",
			frameVA, d.JamLen, d.UsrLen, frameSize)
	}
	d.ArgsVA = off
	d.UsrVA = off + ArgsSize
	return nil
}

// SigPresent checks the signal trailer of the frame slot for seq.
func SigPresent(as *mem.AddressSpace, frameVA uint64, frameSize int, seq uint32) bool {
	raw, err := as.ViewDMA(frameVA+uint64(frameSize)-8, 8)
	if err != nil {
		return false
	}
	return binary.LittleEndian.Uint32(raw[4:]) == SigMagicVal &&
		binary.LittleEndian.Uint32(raw) == seq
}

// Geometry maps sequence numbers onto banks and slots.
type Geometry struct {
	Banks     int // M
	Slots     int // N mailboxes per bank
	FrameSize int
}

// Validate checks the geometry is usable.
func (g Geometry) Validate() error {
	if g.Banks <= 0 || g.Slots <= 0 {
		return fmt.Errorf("mailbox: geometry %dx%d invalid", g.Banks, g.Slots)
	}
	if g.FrameSize < HeaderSize+ArgsSize+SigSize || g.FrameSize%64 != 0 {
		return fmt.Errorf("mailbox: frame size %d invalid", g.FrameSize)
	}
	return nil
}

// Total returns the number of frame slots.
func (g Geometry) Total() int { return g.Banks * g.Slots }

// RegionSize returns the bytes of mailbox memory required.
func (g Geometry) RegionSize() int { return g.Total() * g.FrameSize }

// SlotFor maps a 1-based sequence number to (bank, slot, frame offset).
// Power-of-two geometries (the common configuration) take the mask path
// — SlotFor sits on the per-message send path, where the three integer
// divisions are measurable.
func (g Geometry) SlotFor(seq uint32) (bank, slot int, off uint64) {
	total := g.Banks * g.Slots
	idx := int(seq - 1)
	if total&(total-1) == 0 && g.Slots&(g.Slots-1) == 0 {
		idx &= total - 1
		slot = idx & (g.Slots - 1)
		bank = idx >> uint(bits.TrailingZeros(uint(g.Slots)))
	} else {
		idx %= total
		bank = idx / g.Slots
		slot = idx % g.Slots
	}
	off = uint64(idx * g.FrameSize)
	return bank, slot, off
}
