package mailbox

// FairArbiter is a weighted deficit-round-robin service arbiter over the
// receivers of one node. Receivers enrolled in the arbiter (via
// ReceiverConfig.Arbiter/ArbClass) do not start service the moment a
// frame lands; they queue with the arbiter, which grants service one
// frame at a time, giving each class a quantum of grants proportional to
// its weight per round. While several classes are backlogged each gets
// its weight share of the node's service capacity; an idle class's turn
// is skipped (the arbiter is work-conserving), so a burst from one class
// cannot starve another's drain, and spare capacity is never wasted.
//
// All arbiter state belongs to the receiving node's shard: every method
// is invoked from receiver events (frame delivery, service completion),
// which the engine runs on that shard. There is no locking and no
// cross-shard state, so results are bit-identical for every worker
// count.
type FairArbiter struct {
	classes []arbClass
	cursor  int
	queued  int
	busy    bool
	grants  []uint64
}

// arbClass is one tenant class: its DRR weight, the remaining quantum of
// the current round, and the FIFO of receivers with a frame waiting.
type arbClass struct {
	weight  int
	deficit int
	q       []*Receiver
	head    int
}

// NewFairArbiter returns an empty arbiter; add classes before enrolling
// receivers.
func NewFairArbiter() *FairArbiter { return &FairArbiter{} }

// AddClass registers a service class with the given weight (>= 1) and
// returns its dense class index.
func (a *FairArbiter) AddClass(weight int) int {
	if weight < 1 {
		weight = 1
	}
	a.classes = append(a.classes, arbClass{weight: weight})
	a.grants = append(a.grants, 0)
	if len(a.classes) == 1 {
		a.classes[0].deficit = weight
	}
	return len(a.classes) - 1
}

// Grants reports how many service grants each class has received.
func (a *FairArbiter) Grants() []uint64 {
	out := make([]uint64, len(a.grants))
	copy(out, a.grants)
	return out
}

// enqueue queues a receiver with a ready frame under its class and
// dispatches if the node is idle. Called from Receiver.poke.
func (a *FairArbiter) enqueue(class int, r *Receiver) {
	c := &a.classes[class]
	c.q = append(c.q, r)
	a.queued++
	a.dispatch()
}

// done reports a completed service and hands the node to the next
// granted receiver. Called from Receiver.complete.
func (a *FairArbiter) done() {
	a.busy = false
	a.dispatch()
}

// dispatch grants the node to the next receiver under DRR order: the
// cursor class spends its deficit one frame per grant; an exhausted or
// idle class passes the cursor on, refreshing the next class's quantum.
func (a *FairArbiter) dispatch() {
	if a.busy {
		return
	}
	for a.queued > 0 {
		c := &a.classes[a.cursor]
		if c.deficit > 0 && c.head < len(c.q) {
			r := c.q[c.head]
			c.q[c.head] = nil
			c.head++
			if c.head == len(c.q) {
				c.q, c.head = c.q[:0], 0
			}
			c.deficit--
			a.queued--
			if !r.started {
				// The receiver was stopped while queued (node teardown):
				// skip the grant and keep dispatching.
				continue
			}
			a.busy = true
			a.grants[a.cursor]++
			r.granted()
			return
		}
		a.cursor++
		if a.cursor == len(a.classes) {
			a.cursor = 0
		}
		a.classes[a.cursor].deficit = a.classes[a.cursor].weight
	}
}
