package mailbox

import (
	"testing"
	"testing/quick"

	"twochains/internal/sim"
)

// TestDrainFIFOProperty pins the stall-requeue ordering audit of the
// sender's drain path: whatever mix of single sends and batched bursts
// hits a credit-stalled sender — including bursts large enough to stall
// several times mid-drain, re-queueing their remainder behind the item
// that re-stalled — every message must be delivered exactly once, in the
// exact order it was submitted. The receiver's sequence check enforces
// slot order on the wire; this property additionally ties wire order back
// to submission order through the payload argument.
func TestDrainFIFOProperty(t *testing.T) {
	f := func(bankSel, slotSel uint8, plan []uint8, slowSel uint8) bool {
		g := Geometry{
			Banks:     int(bankSel%3) + 1,
			Slots:     int(slotSel%3) + 1,
			FrameSize: 128,
		}
		if len(plan) > 24 {
			plan = plan[:24]
		}
		// A slow handler keeps banks full so credit stalls actually occur.
		serviceCost := sim.Duration(int(slowSel%5)+1) * sim.Microsecond
		r := newRig(t, g, true, nil)
		r.receiver.Handler = func(d *Delivery) (sim.Duration, error) {
			var args [2]uint64
			var err error
			for i := range args {
				if args[i], err = ReadArg(r.b.AS, d, i); err != nil {
					return 0, err
				}
			}
			r.args = append(r.args, args)
			return serviceCost, nil
		}

		// Submit: plan entry n%3==0 is a single Send, else a burst of
		// (n%5)+1 messages. Every message carries its global submission
		// index in arg0.
		next := uint64(0)
		submitted := 0
		for _, n := range plan {
			if n%3 == 0 {
				r.sender.Send(PackLocal(1, 1, [2]uint64{next, 0}, nil), nil)
				next++
				submitted++
				continue
			}
			burst := int(n%5) + 1
			msgs := make([]*Message, burst)
			for i := 0; i < burst; i++ {
				msgs[i] = PackLocal(1, 1, [2]uint64{next, 0}, nil)
				next++
				submitted++
			}
			r.sender.SendBatch(msgs, nil)
		}
		r.eng.Run()

		if len(r.args) != submitted {
			t.Logf("delivered %d of %d", len(r.args), submitted)
			return false
		}
		for i, a := range r.args {
			if a[0] != uint64(i) {
				t.Logf("position %d got submission index %d (args %v)", i, a[0], r.args)
				return false
			}
		}
		if rs := r.receiver.Stats(); rs.Errors != 0 {
			t.Logf("receiver errors: %d", rs.Errors)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDrainRestallKeepsOrder deterministically forces the mid-drain
// re-stall: one bank of one slot means every frame needs its own credit,
// so a 6-message burst stalls, drains one frame per returned credit, and
// re-queues its remainder five times — original order must survive every
// requeue.
func TestDrainRestallKeepsOrder(t *testing.T) {
	g := Geometry{Banks: 1, Slots: 1, FrameSize: 128}
	r := newRig(t, g, true, nil)
	const n = 6
	msgs := make([]*Message, n)
	for i := range msgs {
		msgs[i] = PackLocal(1, 1, [2]uint64{uint64(i + 1), 0}, nil)
	}
	r.sender.SendBatch(msgs, nil)
	// A straggler single send queues behind the stalled burst.
	r.sender.Send(PackLocal(1, 1, [2]uint64{n + 1, 0}, nil), nil)
	r.eng.Run()

	if len(r.args) != n+1 {
		t.Fatalf("delivered %d of %d", len(r.args), n+1)
	}
	for i, a := range r.args {
		if a[0] != uint64(i+1) {
			t.Fatalf("position %d carries submission %d", i, a[0])
		}
	}
	if st := r.sender.Stats(); st.CreditStalls == 0 {
		t.Fatal("scenario never stalled — not exercising drain")
	}
}
