package mailbox

import (
	"encoding/binary"

	"twochains/internal/cpusim"
	"twochains/internal/fabric"
	"twochains/internal/mem"
	"twochains/internal/model"
	"twochains/internal/sim"
	"twochains/internal/ucx"
)

// SenderConfig selects the send-side protocol.
type SenderConfig struct {
	Geometry Geometry
	// Credits enables the bank-flag flow control (paper §VI-A2): one flag
	// per remote bank, reset when the sender starts filling the bank, set
	// by the receiver when it drains the bank.
	Credits bool
	// WaitMode governs cycle accounting while waiting for credits.
	WaitMode cpusim.WaitMode
	// SeparateSignal sends the frame body and the 8-byte signal trailer
	// as two puts with a fence between them — required on fabrics without
	// the write-order guarantee (paper Fig. 1).
	SeparateSignal bool
}

// SendInfo reports completion of one message.
type SendInfo struct {
	Seq       uint32
	Err       error
	Delivered sim.Time // receiver-side arrival of the signal
}

// SenderStats counts send-side activity.
type SenderStats struct {
	Sent         uint64
	CreditStalls uint64
	// Batches counts thin puts that carried more than one frame;
	// BatchedFrames counts the frames they carried.
	Batches       uint64
	BatchedFrames uint64
}

// Sender streams frames into a remote mailbox region.
type Sender struct {
	Cfg     SenderConfig
	Worker  *ucx.Worker
	Ep      *ucx.Endpoint
	Counter *cpusim.Counter

	RemoteBase uint64
	RemoteKey  fabric.RKey

	// Credit flag array (one u64 per bank) in the sender's memory,
	// remotely writable by the receiver.
	CreditVA  uint64
	CreditMem *ucx.Memory

	eng     *sim.Engine
	staging uint64
	seq     uint32
	// Per-staging-slot pack cache: the jam image last packed into each
	// slot (by backing-array identity — prepared images are written once
	// and the held reference pins them, so identity implies identical
	// bytes) and the bytes that pack dirtied. Steady-state re-sends of
	// the same bound jam then skip the image copy and the tail clear.
	slotJam     [][]byte
	slotWritten []int
	// Private freelists for the steady-state send path. Mint and recycle
	// both happen on this sender's shard (message release at pack time,
	// completion fire at the issuer-local delivery event), so plain
	// slices replace sync.Pool pin/unpin on the per-call path.
	msgFree  []*Message
	compFree []*completion
	stalled  []queuedSend
	// drainBuf is the spare stall queue drain ping-pongs with, so retrying
	// stalled sends reuses two stable buffers instead of reallocating.
	drainBuf []queuedSend
	stallAt  sim.Time
	stats    SenderStats
}

type queuedSend struct {
	msg  *Message
	done func(SendInfo)
}

// completion is the counted completion record for one thin put carrying
// the frames [seq0, seq0+n): when the put delivers, it fans the single
// fabric callback out into one SendInfo per frame. Records are pooled and
// carry a prebound callback, so neither single sends nor batched runs
// allocate per message.
type completion struct {
	owner *Sender
	seq0  uint32
	n     int
	done  func(SendInfo)
	cb    func(error, sim.Time) // prebound fire method, reused across recycles
}

// getCompletion returns nil when done is nil — the fabric accepts a nil
// callback, and a no-observer put needs no completion record at all.
// Records live on the sender's freelist: fire runs at the issuer-local
// completion event, on the same shard that minted the record.
func (s *Sender) getCompletion(seq0 uint32, n int, done func(SendInfo)) *completion {
	if done == nil {
		return nil
	}
	var c *completion
	if k := len(s.compFree); k > 0 {
		c = s.compFree[k-1]
		s.compFree = s.compFree[:k-1]
	} else {
		c = &completion{owner: s}
		c.cb = c.fire
	}
	c.seq0, c.n, c.done = seq0, n, done
	return c
}

func (c *completion) fire(err error, t sim.Time) {
	seq0, n, done := c.seq0, c.n, c.done
	c.done = nil
	c.owner.compFree = append(c.owner.compFree, c)
	for i := 0; i < n; i++ {
		done(SendInfo{Seq: seq0 + uint32(i), Err: err, Delivered: t})
	}
}

// putCB returns the fabric-level callback for a completion, nil included.
func (c *completion) putCB() func(error, sim.Time) {
	if c == nil {
		return nil
	}
	return c.cb
}

// NewSender builds a sender on w targeting the remote mailbox region
// (base, key) through ep. The remote region must use the same geometry.
func NewSender(w *ucx.Worker, ep *ucx.Endpoint, cfg SenderConfig, remoteBase uint64, remoteKey fabric.RKey, counter *cpusim.Counter) (*Sender, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	staging, err := w.AS.AllocPages("mailbox-staging", cfg.Geometry.RegionSize(), mem.PermRW)
	if err != nil {
		return nil, err
	}
	s := &Sender{
		Cfg:         cfg,
		Worker:      w,
		Ep:          ep,
		Counter:     counter,
		RemoteBase:  remoteBase,
		RemoteKey:   remoteKey,
		eng:         w.Eng,
		staging:     staging,
		seq:         1,
		slotJam:     make([][]byte, cfg.Geometry.Total()),
		slotWritten: make([]int, cfg.Geometry.Total()),
	}
	for i := range s.slotWritten {
		s.slotWritten[i] = cfg.Geometry.FrameSize
	}
	if cfg.Credits {
		va, err := w.AS.Alloc("mailbox-credits", cfg.Geometry.Banks*8, 8, mem.PermRW)
		if err != nil {
			return nil, err
		}
		s.CreditVA = va
		creditMem, err := w.RegisterMemory(va, cfg.Geometry.Banks*8, fabric.RemoteWrite)
		if err != nil {
			return nil, err
		}
		s.CreditMem = creditMem
		// All banks start available.
		for b := 0; b < cfg.Geometry.Banks; b++ {
			if err := w.AS.WriteU64(va+uint64(b*8), 1); err != nil {
				return nil, err
			}
		}
		// Resume stalled sends when the receiver returns a credit.
		w.NIC.AddDeliveryHookRange(va, cfg.Geometry.Banks*8,
			func(dva uint64, size int) { s.drain() })
	}
	return s, nil
}

// GetMessage returns a zeroed Message from the sender's private
// freelist, falling back to a fresh allocation. Ownership transfers
// back at Send/SendBatch exactly as with the package-level GetMessage;
// the freelist is sound because the send path — mint, pack, release —
// runs entirely on this sender's shard.
func (s *Sender) GetMessage() *Message {
	if n := len(s.msgFree); n > 0 {
		m := s.msgFree[n-1]
		s.msgFree[n-1] = nil
		s.msgFree = s.msgFree[:n-1]
		return m
	}
	return &Message{owner: s}
}

// Stats returns a copy of the counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// NextSeq returns the sequence number the next Send will use.
func (s *Sender) NextSeq() uint32 { return s.seq }

// packStaging packs msg into the staging slot buf (slot index idx),
// skipping work the slot's previous occupant already did: an identical
// jam image is already in place, and bytes past the previous pack's
// high-water mark are already zero. Cache state only advances when the
// pack succeeds.
func (s *Sender) packStaging(msg *Message, buf []byte, idx int, seq uint32, dstVA uint64) error {
	frameSize := s.Cfg.Geometry.FrameSize
	written := HeaderSize + ArgsSize + len(msg.Usr)
	haveJam := false
	var jam []byte
	if msg.Kind == KindInjected {
		written += PreSize + len(msg.JamImage)
		jam = msg.JamImage
		prev := s.slotJam[idx]
		haveJam = len(jam) > 0 && len(prev) == len(jam) && &prev[0] == &jam[0]
	}
	clearTo := s.slotWritten[idx]
	if err := msg.packInto(buf, frameSize, seq, dstVA, clearTo, haveJam); err != nil {
		return err
	}
	s.slotWritten[idx] = written
	s.slotJam[idx] = jam
	return nil
}

// Send packs and transmits msg to the next mailbox slot. If the target
// bank's credit is not available the send queues until the receiver
// returns the bank flag. done fires when the frame (and its signal) has
// been delivered remotely.
func (s *Sender) Send(msg *Message, done func(SendInfo)) {
	if len(s.stalled) > 0 {
		s.stalled = append(s.stalled, queuedSend{msg, done})
		return
	}
	s.trySend(msg, done)
}

func (s *Sender) trySend(msg *Message, done func(SendInfo)) {
	g := s.Cfg.Geometry
	seq := s.seq
	bank, slot, off := g.SlotFor(seq)

	if s.Cfg.Credits && slot == 0 {
		flagVA := s.CreditVA + uint64(bank*8)
		flag, err := s.Worker.AS.ReadU64(flagVA)
		if err != nil {
			s.finish(msg, done, SendInfo{Seq: seq, Err: err})
			return
		}
		if flag == 0 {
			// Bank still owned by the receiver: stall until the credit
			// returns. Waiting costs cycles like any signal wait. The
			// message stays queued (and, if pooled, out of the pool)
			// until it is finally packed or fails.
			if len(s.stalled) == 0 {
				s.stallAt = s.eng.Now()
				s.stats.CreditStalls++
			}
			s.stalled = append(s.stalled, queuedSend{msg, done})
			return
		}
		// Claim the bank.
		if err := s.Worker.AS.WriteU64(flagVA, 0); err != nil {
			s.finish(msg, done, SendInfo{Seq: seq, Err: err})
			return
		}
	}
	s.seq++

	frameSize := g.FrameSize
	stagingVA := s.staging + off
	dstVA := s.RemoteBase + off

	buf, err := s.Worker.AS.View(stagingVA, frameSize)
	if err != nil {
		s.finish(msg, done, SendInfo{Seq: seq, Err: err})
		return
	}
	if err := s.packStaging(msg, buf, bank*g.Slots+slot, seq, dstVA); err != nil {
		s.finish(msg, done, SendInfo{Seq: seq, Err: err})
		return
	}
	s.stats.Sent++

	// GOT patching cost: one entry per travelling slot plus the pointer.
	if msg.Kind == KindInjected {
		entries := msg.GotTableLen/8 + 1
		patch := sim.Duration(entries) * model.GOTPatchPerEntry
		s.Worker.CPU.Claim(s.eng.Now(), patch)
		if s.Counter != nil {
			s.Counter.Work(patch)
		}
	}
	// The frame bytes now live in staging: a pooled message is done.
	msg.release()

	report := s.getCompletion(seq, 1, done)
	if s.Cfg.SeparateSignal {
		// Body first (without trailer), fence, then the signal put: the
		// protocol for fabrics with no write-order guarantee.
		bodyLen := frameSize - SigSize
		s.Ep.PutThinFenced(stagingVA, dstVA, bodyLen, SigSize, s.RemoteKey, report.putCB())
	} else {
		// Ordered fabric, fixed frames: the entire message in one put.
		s.Ep.PutThin(stagingVA, dstVA, frameSize, s.RemoteKey, report.putCB())
	}
}

// SendBatch transmits a burst of messages, amortizing the thin-put setup
// (post, doorbell, protocol tier) across the burst: frames are packed into
// consecutive mailbox slots and every contiguous run of slots ships as one
// put, so a sender pays the per-put software cost once per run instead of
// once per frame. Runs break at the mailbox region wrap and at credit
// stalls; messages past a stall queue in order and go out one by one when
// the receiver returns the bank flag. done (when non-nil) fires once per
// message. On fabrics without the write-order guarantee the batch
// degenerates to individual fenced sends — the separate-signal protocol
// puts a fence between every body and its signal, which a single coalesced
// put cannot express.
func (s *Sender) SendBatch(msgs []*Message, done func(SendInfo)) {
	if s.Cfg.SeparateSignal || len(s.stalled) > 0 {
		for _, m := range msgs {
			s.Send(m, done)
		}
		return
	}
	g := s.Cfg.Geometry
	frameSize := g.FrameSize

	// The contiguous run is tracked as (start offset, frame count, first
	// seq): frames of one run occupy consecutive slots, so their sequence
	// numbers are consecutive too and a single counted completion record
	// fans the run's one fabric callback out per message — no per-message
	// closures.
	var runStart uint64 // staging offset of the current contiguous run
	var runBytes int
	var runSeq0 uint32 // seq of the run's first frame

	flush := func() {
		if runBytes == 0 {
			return
		}
		frames := runBytes / frameSize
		if frames > 1 {
			s.stats.Batches++
			s.stats.BatchedFrames += uint64(frames)
		}
		src, dst := s.staging+runStart, s.RemoteBase+runStart
		n := runBytes
		runBytes = 0
		s.Ep.PutThin(src, dst, n, s.RemoteKey, s.getCompletion(runSeq0, frames, done).putCB())
	}

	for i, msg := range msgs {
		seq := s.seq
		bank, slot, off := g.SlotFor(seq)

		if s.Cfg.Credits && slot == 0 {
			flagVA := s.CreditVA + uint64(bank*8)
			flag, err := s.Worker.AS.ReadU64(flagVA)
			if err != nil {
				s.finish(msg, done, SendInfo{Seq: seq, Err: err})
				continue
			}
			if flag == 0 {
				// Bank owned by the receiver: ship what we have and queue
				// the rest behind the stall, exactly like Send would.
				flush()
				s.stallAt = s.eng.Now()
				s.stats.CreditStalls++
				for _, m := range msgs[i:] {
					s.stalled = append(s.stalled, queuedSend{m, done})
				}
				return
			}
			if err := s.Worker.AS.WriteU64(flagVA, 0); err != nil {
				s.finish(msg, done, SendInfo{Seq: seq, Err: err})
				continue
			}
		}
		if runBytes > 0 && off != runStart+uint64(runBytes) {
			// Region wrapped: the next slot is not contiguous in memory.
			flush()
		}
		if runBytes == 0 {
			runStart = off
			runSeq0 = seq
		}
		s.seq++

		buf, err := s.Worker.AS.View(s.staging+off, frameSize)
		if err != nil {
			s.finish(msg, done, SendInfo{Seq: seq, Err: err})
			continue
		}
		if err := s.packStaging(msg, buf, bank*g.Slots+slot, seq, s.RemoteBase+off); err != nil {
			s.finish(msg, done, SendInfo{Seq: seq, Err: err})
			continue
		}
		s.stats.Sent++
		if msg.Kind == KindInjected {
			entries := msg.GotTableLen/8 + 1
			patch := sim.Duration(entries) * model.GOTPatchPerEntry
			s.Worker.CPU.Claim(s.eng.Now(), patch)
			if s.Counter != nil {
				s.Counter.Work(patch)
			}
		}
		msg.release()
		runBytes += frameSize
	}
	flush()
}

// finish reports a failed (never-packed) send and releases a pooled
// message back to the pool.
func (s *Sender) finish(msg *Message, done func(SendInfo), info SendInfo) {
	if msg != nil {
		msg.release()
	}
	if done != nil {
		done(info)
	}
}

// drain retries stalled sends after a credit arrives. Stalled messages
// must go out in their original FIFO order: the queue is detached before
// retrying, and when a retry re-stalls (the run crossed into another
// still-unavailable bank) the remainder re-queues behind it untouched.
// The detached buffer is kept as the next drain's queue, so steady
// stall/drain cycles ping-pong between two stable allocations.
func (s *Sender) drain() {
	if len(s.stalled) == 0 {
		return
	}
	if s.Counter != nil {
		s.Counter.Wait(s.Cfg.WaitMode, s.eng.Now().Sub(s.stallAt))
	}
	pending := s.stalled
	s.stalled = s.drainBuf[:0]
	s.drainBuf = nil
	for i, q := range pending {
		s.trySend(q.msg, q.done)
		if len(s.stalled) > 0 {
			// trySend re-stalled on the next bank boundary; keep the
			// remainder queued in order behind it.
			s.stalled = append(s.stalled, pending[i+1:]...)
			break
		}
	}
	for i := range pending {
		pending[i] = queuedSend{}
	}
	s.drainBuf = pending[:0]
}

// FailPending fails every stalled (queued) send with err: each pooled
// frame returns to the pool and each done callback fires synchronously
// with the error. It is the teardown path for a channel whose receiver
// will never return the credits that would drain the queue — without it
// the queued messages (and any futures observing them) stay stranded
// and the pooled frames leak. Returns the number of sends failed.
func (s *Sender) FailPending(err error) int {
	n := len(s.stalled)
	if n == 0 {
		return 0
	}
	pending := s.stalled
	s.stalled = s.drainBuf[:0]
	s.drainBuf = nil
	for _, q := range pending {
		s.finish(q.msg, q.done, SendInfo{Err: err})
	}
	for i := range pending {
		pending[i] = queuedSend{}
	}
	s.drainBuf = pending[:0]
	return n
}

// PackLocal is a convenience constructing a Local Function message.
func PackLocal(pkgID, elemID uint8, args [2]uint64, usr []byte) *Message {
	return &Message{Kind: KindLocal, PkgID: pkgID, ElemID: elemID, Args: args, Usr: usr}
}

// PackData constructs a delivery-only message (without-execution mode).
func PackData(usr []byte) *Message {
	return &Message{Kind: KindData, Usr: usr}
}

// ReadUsr copies the user payload of a delivery (test/diagnostic helper).
func ReadUsr(as *mem.AddressSpace, d *Delivery) ([]byte, error) {
	return as.ReadBytesDMA(d.UsrVA, d.UsrLen)
}

// ReadArg reads argument i of a delivery without a Delivery method
// receiver (kept for symmetry with ReadUsr).
func ReadArg(as *mem.AddressSpace, d *Delivery, i int) (uint64, error) {
	raw, err := as.ReadBytesDMA(d.ArgsVA+uint64(i*8), 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(raw), nil
}
