package fabric_test

import (
	"strings"
	"testing"

	"twochains/internal/fabric"
	"twochains/internal/mem"
	"twochains/internal/sim"

	_ "twochains/internal/simnet" // register the default backend
)

func TestRegistry(t *testing.T) {
	names := fabric.Backends()
	want := map[string]bool{"ideal": false, "simnet": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("backend %q not registered (have %v)", n, names)
		}
	}
	if !fabric.Lookup("") {
		t.Error("empty name does not resolve to the default backend")
	}
	if fabric.Lookup("warp-drive") {
		t.Error("Lookup found an unregistered backend")
	}
	if _, err := fabric.New("warp-drive", sim.NewEngine(), fabric.Config{}); err == nil {
		t.Error("New with unknown backend did not fail")
	}
}

// newIdealPair brings up two hosts on the ideal backend with a registered
// landing buffer on b.
func newIdealPair(t *testing.T) (*sim.Engine, fabric.Port, fabric.Port, uint64, fabric.RKey, *mem.AddressSpace) {
	t.Helper()
	eng := sim.NewEngine()
	tr, err := fabric.New("ideal", eng, fabric.Config{Ordered: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	asA, asB := mem.NewAddressSpace(1<<20), mem.NewAddressSpace(1<<20)
	a := tr.Attach(asA, nil)
	b := tr.Attach(asB, nil)
	buf, err := asB.AllocPages("landing", 4096, mem.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	key, err := b.RegisterMemory(buf, 4096, fabric.RemoteWrite)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, b, buf, key, asB
}

func TestIdealPutDelivers(t *testing.T) {
	eng, a, b, buf, key, asB := newIdealPair(t)
	srcVA, err := allocAndFill(t, a, []byte("hello, ideal fabric!"))
	if err != nil {
		t.Fatal(err)
	}
	hooked := 0
	b.AddDeliveryHookRange(buf, 4096, func(va uint64, size int) { hooked++ })
	var delivered sim.Time
	a.Put(b, srcVA, buf, 20, key, func(res fabric.PutResult) {
		if res.Err != nil {
			t.Errorf("put failed: %v", res.Err)
		}
		delivered = res.Delivered
	})
	eng.Run()
	if delivered == 0 {
		t.Fatal("no delivery")
	}
	if hooked != 1 {
		t.Fatalf("delivery hook fired %d times", hooked)
	}
	got, err := asB.ReadBytesDMA(buf, 20)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello, ideal fabric!" {
		t.Fatalf("landed bytes %q", got)
	}
}

func TestIdealRejectsBadRkey(t *testing.T) {
	eng, a, b, buf, key, _ := newIdealPair(t)
	srcVA, err := allocAndFill(t, a, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	a.Put(b, srcVA, buf, 1, key+1, func(res fabric.PutResult) { gotErr = res.Err })
	eng.Run()
	if gotErr == nil || !strings.Contains(gotErr.Error(), "rkey") {
		t.Fatalf("bad rkey not rejected: %v", gotErr)
	}
	// Out-of-registration access is rejected too.
	gotErr = nil
	a.Put(b, srcVA, buf+4095, 16, key, func(res fabric.PutResult) { gotErr = res.Err })
	eng.Run()
	if gotErr == nil {
		t.Fatal("out-of-bounds put not rejected")
	}
}

// allocAndFill places data into a fresh buffer on the port's address
// space.
func allocAndFill(t *testing.T, p fabric.Port, data []byte) (uint64, error) {
	t.Helper()
	va, err := p.AddressSpace().AllocPages("src", 4096, mem.PermRW)
	if err != nil {
		return 0, err
	}
	return va, p.AddressSpace().WriteBytes(va, data)
}
