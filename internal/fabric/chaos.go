package fabric

import (
	"fmt"

	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
)

func init() {
	Register("chaos", NewChaos)
}

// MaxChaosDelay caps the per-put perturbation the chaos backend will
// accept. The wrapper defers the inner put — including its payload
// snapshot — by the drawn delay, and a sender's staging slot is only
// repacked after a credit completes the round trip (>= 2x the base
// one-way latency), so any delay at or below one base latency can never
// race a slot reuse.
var MaxChaosDelay = model.PutBaseLat

// ChaosConfig parameterizes the "chaos" backend: a failure-injection
// wrapper around any other registered backend. It perturbs put issue
// latency within declared bounds using the deployment's deterministic
// RNG (equal seeds draw equal perturbations, so chaos runs replay
// bit-identically), and can misadvertise the wrapped backend's
// lookahead to adversarially exercise the parallel engine's
// conservative windows and its speculation-rollback diagnostic.
type ChaosConfig struct {
	// Inner names the wrapped backend ("" selects the default). Wrapping
	// "chaos" in itself is rejected.
	Inner string
	// MinDelay and MaxDelay bound the extra per-put issue delay, drawn
	// uniformly from [MinDelay, MaxDelay] by a per-port split of the
	// fabric RNG. Delays are clamped monotone per destination, so the
	// in-order delivery guarantee of an ordered inner backend survives
	// perturbation. 0 <= MinDelay <= MaxDelay <= MaxChaosDelay.
	MinDelay, MaxDelay sim.Duration
	// LookaheadScale, when in (0, 1), shrinks the advertised lookahead
	// toward its proven lower bound — a legal stressor: smaller
	// conservative windows, more barriers, same results. 0 means 1.0
	// (advertise the inner bound unchanged).
	LookaheadScale float64
	// LookaheadBoost, when positive, inflates the advertised lookahead
	// beyond what the inner backend guarantees. This is a deliberate
	// contract violation: under speculation the engine group must detect
	// the too-early cross-shard arrival and fail loudly with its
	// rollback diagnostic rather than corrupt state. Test-only.
	LookaheadBoost sim.Duration
}

// validate panics on a malformed config — the fabric Constructor
// signature has no error return, mirroring how NewCluster treats an
// impossible configuration as a programming error.
func (c *ChaosConfig) validate() {
	if c == nil {
		panic("fabric: chaos backend selected with nil Config.Chaos")
	}
	if c.Inner == "chaos" {
		panic("fabric: chaos backend cannot wrap itself")
	}
	if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
		panic(fmt.Sprintf("fabric: chaos: need 0 <= MinDelay <= MaxDelay, have [%v, %v]", c.MinDelay, c.MaxDelay))
	}
	if c.MaxDelay > MaxChaosDelay {
		panic(fmt.Sprintf("fabric: chaos: MaxDelay %v exceeds the staging-safe cap %v", c.MaxDelay, MaxChaosDelay))
	}
	if c.LookaheadScale < 0 || c.LookaheadScale > 1 {
		panic(fmt.Sprintf("fabric: chaos: LookaheadScale %v outside [0, 1]", c.LookaheadScale))
	}
	if c.LookaheadBoost < 0 {
		panic(fmt.Sprintf("fabric: chaos: negative LookaheadBoost %v", c.LookaheadBoost))
	}
}

// Chaos is the failure-injection wrapper transport. All memory
// registration, delivery hooks, and actual data movement delegate to
// the inner backend; the wrapper owns only the perturbation draw and
// the deferred issue of each put.
type Chaos struct {
	cfg   ChaosConfig
	inner Transport
	eng   *sim.Engine
	rng   *sim.RNG
	group *sim.Group
}

// NewChaos constructs the wrapper; it is registered as "chaos". When
// the inner backend implements ShardedTransport the returned transport
// does too, so chaos deployments keep the multi-core engine.
func NewChaos(eng *sim.Engine, cfg Config) Transport {
	cfg.Chaos.validate()
	c := *cfg.Chaos
	inner := cfg
	inner.Chaos = nil
	it, err := New(c.Inner, eng, inner)
	if err != nil {
		panic(fmt.Sprintf("fabric: chaos: %v", err))
	}
	ch := &Chaos{cfg: c, inner: it, eng: eng, rng: sim.NewRNG(cfg.Seed ^ 0x6368616f73)} // "chaos"
	if _, ok := it.(ShardedTransport); ok {
		return &chaosSharded{Chaos: ch}
	}
	return ch
}

// Inner exposes the wrapped transport (diagnostics and tests).
func (c *Chaos) Inner() Transport { return c.inner }

// Engine returns the inner backend's event clock.
func (c *Chaos) Engine() *sim.Engine { return c.inner.Engine() }

// Attach wraps the inner port with the perturbation state: a per-port
// RNG split (draws are issuer-shard-owned, so parallel runs replay) and
// the per-destination release watermarks that keep delivery order.
func (c *Chaos) Attach(as *mem.AddressSpace, hier *memsim.Hierarchy) Port {
	p := &chaosPort{
		fab:     c,
		inner:   c.inner.Attach(as, hier),
		eng:     c.eng,
		rng:     c.rng.Split(),
		release: map[Port]sim.Time{},
	}
	if c.group != nil {
		p.eng = c.group.Engine(0)
	}
	return p
}

// AssignDomain places the inner port and rebinds the wrapper's deferral
// clock to the domain's shard engine, so a deferred issue is an event
// on the shard that owns the issuing port.
func (c *Chaos) AssignDomain(p Port, domain int) {
	cp, ok := p.(*chaosPort)
	if !ok {
		return
	}
	c.inner.AssignDomain(cp.inner, domain)
	if c.group != nil {
		cp.eng = c.group.Engine(domain)
	}
}

// DomainOf reports the inner port's fabric shard.
func (c *Chaos) DomainOf(p Port) int {
	if cp, ok := p.(*chaosPort); ok {
		return c.inner.DomainOf(cp.inner)
	}
	return 0
}

// chaosSharded is the wrapper when the inner backend is sharded; the
// extra methods implement fabric.ShardedTransport.
type chaosSharded struct {
	*Chaos
}

// Lookahead returns the advertised conservative window: the inner bound
// scaled (legal stressor) and boosted (deliberate contract violation;
// see ChaosConfig). The perturbation delay itself never lowers the true
// bound — a deferred put re-anchors the inner backend's latency math at
// its release time, so arrivals only move later.
func (c *chaosSharded) Lookahead() sim.Duration {
	l := c.inner.(ShardedTransport).Lookahead()
	if s := c.cfg.LookaheadScale; s > 0 && s < 1 {
		l = sim.Duration(float64(l) * s)
	}
	l += c.cfg.LookaheadBoost
	if l < 1 {
		l = 1
	}
	return l
}

// BindGroup hands the engine group to the inner backend and keeps it
// for per-domain deferral clocks.
func (c *chaosSharded) BindGroup(g *sim.Group) {
	c.group = g
	c.eng = g.Engine(0)
	c.inner.(ShardedTransport).BindGroup(g)
}

// chaosPort wraps one inner port. Registration, hooks, and address
// space pass straight through; Put draws a delay and defers the inner
// issue; Fence defers at the current watermark so it stays ordered
// between the puts it was called between.
type chaosPort struct {
	fab   *Chaos
	inner Port
	eng   *sim.Engine
	rng   *sim.RNG
	// release clamps per-destination issue times monotone: a later put
	// that draws a smaller delay still issues no earlier than its
	// predecessor, preserving the inner backend's ordering guarantee.
	release map[Port]sim.Time
	// Delayed/DelayTotal count perturbed puts and their summed delay.
	Delayed    uint64
	DelayTotal sim.Duration
}

func (p *chaosPort) RegisterMemory(base uint64, size int, access Access) (RKey, error) {
	return p.inner.RegisterMemory(base, size, access)
}
func (p *chaosPort) Deregister(key RKey)                  { p.inner.Deregister(key) }
func (p *chaosPort) SetDeliveryHook(fn func(uint64, int)) { p.inner.SetDeliveryHook(fn) }
func (p *chaosPort) AddDeliveryHookRange(base uint64, size int, fn func(uint64, int)) {
	p.inner.AddDeliveryHookRange(base, size, fn)
}
func (p *chaosPort) AddressSpace() *mem.AddressSpace { return p.inner.AddressSpace() }
func (p *chaosPort) Label() string                   { return "chaos(" + p.inner.Label() + ")" }

// delay draws the next perturbation from the port's RNG stream.
func (p *chaosPort) delay() sim.Duration {
	min, max := p.fab.cfg.MinDelay, p.fab.cfg.MaxDelay
	if max <= min {
		return min
	}
	return min + sim.Duration(p.rng.Float64()*float64(max-min))
}

// Put perturbs then delegates: the inner put — including its payload
// snapshot and latency math — runs as a deferred event at the release
// time, on the issuing port's shard engine. The completion callback
// fires whenever the inner backend fires it, so callers observe one
// fabric that is simply slower and jitterier within declared bounds.
func (p *chaosPort) Put(dst Port, srcVA, dstVA uint64, size int, key RKey, onComplete func(PutResult)) {
	d, ok := dst.(*chaosPort)
	if !ok {
		p.eng.After(0, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: fmt.Errorf("fabric: chaos: destination %s is not a chaos port", dst.Label())})
			}
		})
		return
	}
	delta := p.delay()
	release := p.eng.Now().Add(delta)
	if last := p.release[dst]; release < last {
		release = last
	}
	p.release[dst] = release
	if delta > 0 {
		p.Delayed++
		p.DelayTotal += delta
	}
	if release == p.eng.Now() {
		p.inner.Put(d.inner, srcVA, dstVA, size, key, onComplete)
		return
	}
	p.eng.At(release, func() {
		p.inner.Put(d.inner, srcVA, dstVA, size, key, onComplete)
	})
}

// Fence defers the inner fence to the destination's release watermark:
// every already-perturbed put issues first (equal-time events run in
// scheduling order), every later put releases at or after it.
func (p *chaosPort) Fence(dst Port) {
	d, ok := dst.(*chaosPort)
	if !ok {
		return
	}
	wm := p.release[dst]
	if wm <= p.eng.Now() {
		p.inner.Fence(d.inner)
		return
	}
	p.eng.At(wm, func() { p.inner.Fence(d.inner) })
}
