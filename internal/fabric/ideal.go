package fabric

import (
	"fmt"

	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/model"
	"twochains/internal/sim"
)

func init() {
	Register("ideal", NewIdeal)
}

// Ideal is the contention-free reference backend: every put pays the base
// one-way latency plus wire serialization time for its size, and nothing
// else — no NIC occupancy, no shared wires, no spine uplinks, no protocol
// jitter. Delivery to a given destination is always in order (a later put
// never lands before an earlier one), so Fence is a no-op. It exists as
// the upper-bound ablation
// for the modeled backends and as the reference implementation of the
// Transport contract.
type Ideal struct {
	eng   *sim.Engine
	ports []*idealPort
	rng   *sim.RNG
	// bufs recycles in-flight put staging copies, like simnet's fabric.
	bufs sim.BufPool
}

// NewIdeal constructs the ideal backend; it is registered as "ideal".
func NewIdeal(eng *sim.Engine, cfg Config) Transport {
	return &Ideal{eng: eng, rng: sim.NewRNG(cfg.Seed ^ 0x697f4561)}
}

// Engine returns the event clock.
func (f *Ideal) Engine() *sim.Engine { return f.eng }

// Attach adds a host port.
func (f *Ideal) Attach(as *mem.AddressSpace, hier *memsim.Hierarchy) Port {
	p := &idealPort{
		fab:         f,
		id:          len(f.ports),
		as:          as,
		hier:        hier,
		regs:        map[RKey]idealReg{},
		rng:         f.rng.Split(),
		lastArrival: map[int]sim.Time{},
	}
	f.ports = append(f.ports, p)
	return p
}

// AssignDomain is a no-op: the ideal fabric has no topology.
func (f *Ideal) AssignDomain(Port, int) {}

// DomainOf always reports domain 0.
func (f *Ideal) DomainOf(Port) int { return 0 }

type idealReg struct {
	base   uint64
	size   int
	access Access
}

type idealPort struct {
	fab   *Ideal
	id    int
	as    *mem.AddressSpace
	hier  *memsim.Hierarchy
	regs  map[RKey]idealReg
	rng   *sim.RNG
	hooks []idealHook
	// lastArrival enforces in-order delivery per destination: a put may
	// not land before an earlier put to the same peer, even when its
	// smaller size gives it a shorter wire time. This is what makes the
	// no-op Fence sound.
	lastArrival map[int]sim.Time
}

type idealHook struct {
	base, end uint64 // end == 0 matches every put
	fn        func(va uint64, size int)
}

func (p *idealPort) Label() string { return fmt.Sprintf("ideal%d", p.id) }

// AddressSpace returns the host memory this port DMAs into.
func (p *idealPort) AddressSpace() *mem.AddressSpace { return p.as }

func (p *idealPort) RegisterMemory(base uint64, size int, access Access) (RKey, error) {
	if size <= 0 {
		return 0, fmt.Errorf("fabric: ideal: register: non-positive size")
	}
	if _, err := p.as.ReadBytesDMA(base, 1); err != nil {
		return 0, fmt.Errorf("fabric: ideal: register: base unmapped: %w", err)
	}
	if _, err := p.as.ReadBytesDMA(base+uint64(size)-1, 1); err != nil {
		return 0, fmt.Errorf("fabric: ideal: register: end unmapped: %w", err)
	}
	var key RKey
	for {
		key = RKey(p.rng.Uint64())
		if key == 0 {
			continue
		}
		if _, dup := p.regs[key]; !dup {
			break
		}
	}
	p.regs[key] = idealReg{base: base, size: size, access: access}
	return key, nil
}

func (p *idealPort) Deregister(key RKey) { delete(p.regs, key) }

func (p *idealPort) SetDeliveryHook(fn func(va uint64, size int)) {
	p.hooks = append(p.hooks, idealHook{fn: fn})
}

func (p *idealPort) AddDeliveryHookRange(base uint64, size int, fn func(va uint64, size int)) {
	p.hooks = append(p.hooks, idealHook{base: base, end: base + uint64(size), fn: fn})
}

func (p *idealPort) check(key RKey, va uint64, size int, want Access) error {
	reg, ok := p.regs[key]
	if !ok {
		return fmt.Errorf("fabric: ideal: invalid rkey %#x", key)
	}
	if va < reg.base || va+uint64(size) > reg.base+uint64(reg.size) {
		return fmt.Errorf("fabric: ideal: access [0x%x,+%d) outside registration [0x%x,+%d)",
			va, size, reg.base, reg.size)
	}
	if reg.access&want == 0 {
		return fmt.Errorf("fabric: ideal: registration %#x lacks permission %d", key, want)
	}
	return nil
}

// Put copies the bytes after the ideal one-way delay: base latency plus
// wire time, unconditionally — the fabric itself is never the bottleneck.
// Delivery to one destination is in order: a later (smaller) put never
// overtakes an earlier one, so the write-order guarantee holds and Fence
// can remain a no-op.
func (p *idealPort) Put(dst Port, srcVA, dstVA uint64, size int, key RKey, onComplete func(PutResult)) {
	eng := p.fab.eng
	d, ok := dst.(*idealPort)
	if !ok {
		eng.After(0, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: fmt.Errorf("fabric: ideal: destination %s is not an ideal port", dst.Label())})
			}
		})
		return
	}
	src, err := p.as.ViewDMA(srcVA, size)
	if err != nil {
		eng.After(0, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: fmt.Errorf("fabric: ideal: local DMA read: %w", err)})
			}
		})
		return
	}
	data := p.fab.bufs.Get(size)
	copy(data, src)
	arrival := eng.Now().Add(model.PutBaseLat + model.WireTime(size))
	if last := p.lastArrival[d.id]; arrival < last {
		arrival = last
	}
	p.lastArrival[d.id] = arrival
	if err := d.check(key, dstVA, size, RemoteWrite); err != nil {
		p.fab.bufs.Put(data)
		eng.At(arrival, func() {
			if onComplete != nil {
				onComplete(PutResult{Err: err})
			}
		})
		return
	}
	eng.At(arrival, func() {
		if err := d.as.WriteBytesDMA(dstVA, data); err != nil {
			panic(fmt.Sprintf("fabric: ideal: delivery DMA failed inside registration: %v", err))
		}
		p.fab.bufs.Put(data)
		if d.hier != nil {
			d.hier.NetworkWrite(dstVA, size)
		}
		for _, h := range d.hooks {
			if h.end == 0 || (dstVA < h.end && dstVA+uint64(size) > h.base) {
				h.fn(dstVA, size)
			}
		}
		if onComplete != nil {
			onComplete(PutResult{Delivered: eng.Now()})
		}
	})
}

// Fence is a no-op: per-destination deliveries are already in order (see
// Put), so there is nothing to serialize.
func (p *idealPort) Fence(Port) {}
