// Package fabric defines the pluggable interconnect backend interface the
// Two-Chains runtime is built against. The runtime layers (ucx, mailbox,
// core, tc) speak only to Transport and Port; concrete interconnect models
// register themselves by name, so alternate backends can be slotted into a
// deployment without the upper layers changing.
//
// Two backends ship in-tree:
//
//   - "simnet" (package internal/simnet, the default): the paper-testbed
//     RDMA model — per-direction wires, NIC tx queues, fabric-shard spine
//     uplinks, protocol-tier costs, optional unordered delivery.
//   - "ideal": a contention-free fabric implemented in this package. Puts
//     pay only base latency plus wire time, never queueing. It is the
//     upper-bound ablation: the gap between "ideal" and "simnet" numbers
//     is the cost of the modeled interconnect.
//
// The interface is deliberately small — endpoint create (Attach), remote
// put (Port.Put), and rkey exchange (Port.RegisterMemory) — mirroring the
// three capabilities the paper's runtime needs from its communication
// framework.
package fabric

import (
	"fmt"
	"sort"
	"sync"

	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/sim"
)

// RKey is an InfiniBand-style 32-bit remote access key. A put with an
// invalid or mismatched rkey is rejected at the (simulated) hardware level.
type RKey uint32

// Access is the remote permission mask carried by a registration.
type Access uint8

const (
	RemoteRead Access = 1 << iota
	RemoteWrite
	RemoteAtomic
)

// PutResult reports the outcome of a one-sided operation to its initiator.
type PutResult struct {
	Err       error
	Delivered sim.Time // delivery time at the target (zero on error)
}

// Port is one host's attachment to the fabric: the NIC-level surface the
// runtime uses. A Port only talks to Ports of the same Transport.
type Port interface {
	// RegisterMemory pins [base, base+size) for remote access and returns
	// the rkey peers must present — the exchange step of an RDMA setup.
	RegisterMemory(base uint64, size int, access Access) (RKey, error)
	// Deregister removes a registration.
	Deregister(key RKey)
	// Put issues a one-sided write of size bytes from the local srcVA to
	// dstVA on the destination port, authorized by key. Delivery happens
	// with no destination-CPU involvement; onComplete fires at the
	// initiator with the delivery time (or the rejection error).
	Put(dst Port, srcVA, dstVA uint64, size int, key RKey, onComplete func(PutResult))
	// Fence orders later puts to dst after all earlier ones — the explicit
	// primitive for fabrics without a write-order guarantee.
	Fence(dst Port)
	// SetDeliveryHook registers an observer for every inbound put.
	SetDeliveryHook(fn func(va uint64, size int))
	// AddDeliveryHookRange registers an observer invoked only for puts
	// intersecting [base, base+size) — the scalable form for per-region
	// watchers like mailbox receivers and credit-flag arrays.
	AddDeliveryHookRange(base uint64, size int, fn func(va uint64, size int))
	// AddressSpace returns the host memory this port DMAs into.
	AddressSpace() *mem.AddressSpace
	// Label names the port for diagnostics.
	Label() string
}

// Transport is one interconnect backend instance: it attaches hosts
// (endpoint create) and places them into fabric shards.
type Transport interface {
	// Engine is the discrete-event clock every operation schedules on.
	Engine() *sim.Engine
	// Attach adds a host to the fabric. hier may be nil (no cache model);
	// when present, inbound traffic is stashed through it.
	Attach(as *mem.AddressSpace, hier *memsim.Hierarchy) Port
	// AssignDomain places a port into a fabric shard (leaf domain).
	// Backends without a topology model may ignore it.
	AssignDomain(p Port, domain int)
	// DomainOf reports a port's fabric shard (0 when never assigned).
	DomainOf(p Port) int
}

// Config sets backend-independent fabric characteristics; backends are free
// to ignore fields their model has no use for.
type Config struct {
	// Ordered selects the in-order write delivery guarantee between host
	// pairs (true on the paper's testbed).
	Ordered bool
	// Seed drives the backend's stochastic models (rkey generation,
	// delivery jitter).
	Seed uint64
	// Chaos configures the "chaos" failure-injection wrapper backend and
	// is ignored by every other backend. Selecting backend "chaos" with a
	// nil Chaos config panics.
	Chaos *ChaosConfig
}

// ShardedTransport is the optional backend capability behind the
// multi-core conservative engine: a backend that implements it can place
// each fabric shard's traffic on its own sim.Group engine, with
// cross-shard operations routed through the group's hand-off lanes.
//
// The contract a binding backend must honor:
//
//   - every event it schedules for a port runs on that port's shard
//     engine (Group.Engine(domain));
//   - any effect one shard's execution has on another shard's state is
//     scheduled through Group.Handoff and arrives no earlier than
//     Lookahead() after the issuing shard's clock;
//   - initiator-side completion callbacks run on the initiating shard.
//
// Backends without the capability simply keep scheduling on the single
// engine they were constructed with; deployments requesting workers fall
// back to single-engine execution on such backends.
type ShardedTransport interface {
	Transport
	// Lookahead returns the minimum simulated latency of any cross-shard
	// interaction — the conservative synchronization window the group may
	// run ahead within.
	Lookahead() sim.Duration
	// BindGroup hands the backend the engine group. Domains assigned via
	// AssignDomain must be valid group indices ([0, Group.Shards())).
	// It must be called before any port is attached.
	BindGroup(g *sim.Group)
}

// Constructor builds one backend instance on the given engine.
type Constructor func(eng *sim.Engine, cfg Config) Transport

// DefaultBackend is the backend New selects for the empty name.
const DefaultBackend = "simnet"

var (
	regMu    sync.RWMutex
	backends = map[string]Constructor{}
)

// Register makes a backend available under name. It is intended to be
// called from backend package init functions; registering a duplicate name
// panics.
func Register(name string, c Constructor) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || c == nil {
		panic("fabric: Register with empty name or nil constructor")
	}
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("fabric: backend %q registered twice", name))
	}
	backends[name] = c
}

// Lookup reports whether a backend name is registered ("" resolves to the
// default).
func Lookup(name string) bool {
	if name == "" {
		name = DefaultBackend
	}
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := backends[name]
	return ok
}

// Backends lists the registered backend names in sorted order.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// New instantiates the named backend ("" selects DefaultBackend).
func New(name string, eng *sim.Engine, cfg Config) (Transport, error) {
	if name == "" {
		name = DefaultBackend
	}
	regMu.RLock()
	c, ok := backends[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fabric: unknown backend %q (registered: %v)", name, Backends())
	}
	return c(eng, cfg), nil
}
