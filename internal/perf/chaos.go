package perf

import (
	"fmt"

	"twochains/internal/sim"
	"twochains/internal/workload"
)

func init() {
	register("chaos", "Chaos fabric: goodput under put perturbation and a fail/rejoin drain profile", chaosExp)
}

// chaosExp measures what failure injection costs: the same mesh
// scenario clean, under chaos perturbation, and with a mid-run node
// failure plus rejoin — goodput, the loss ledger, and the drain
// profile (per-phase completion stamps) side by side. Everything stays
// deterministic: the perturbation RNG is issuer-shard-local, the
// teardown bookkeeping runs serial-hold-bracketed, so every row
// reproduces bit for bit.
func chaosExp(o Options) (*Table, error) {
	t := &Table{
		Name:  "chaos",
		Title: "Chaos fabric perturbation and node fail/rejoin over the sharded mesh",
		Cols:  []string{"variant", "pattern", "nodes", "msgs", "lost", "inj/s", "sim_ms"},
	}
	rounds := meshIters(o)
	workers := o.Workers
	base := func(p workload.Pattern, nodes int) workload.Scenario {
		sc := workload.DefaultScenario(p, nodes)
		sc.Rounds = rounds
		sc.Shards = 4
		sc.Workers = workers
		if o.SpecUS > 0 {
			sc.Speculation = sim.Duration(o.SpecUS * float64(sim.Microsecond))
		}
		return sc
	}
	chaos := &workload.ChaosSpec{MinDelay: 20 * sim.Nanosecond, MaxDelay: 120 * sim.Nanosecond}
	var drain *workload.Result
	for _, p := range []workload.Pattern{workload.AllToAll, workload.Fanout} {
		for _, variant := range []string{"clean", "chaos", "fail+rejoin"} {
			sc := base(p, 16)
			switch variant {
			case "chaos":
				sc.Chaos = chaos
			case "fail+rejoin":
				sc.Chaos = chaos
				sc.Phases = []workload.Phase{
					{Name: "steady"},
					{Name: "failing", Fail: []workload.Fail{{Node: 3, At: sim.Microsecond}}},
					{Name: "drain", Rejoin: []workload.Rejoin{{Node: 3}}},
				}
			}
			res, err := workload.Run(sc)
			if err != nil {
				return nil, fmt.Errorf("chaos %s/%s: %w", p, variant, err)
			}
			if variant == "fail+rejoin" && p == workload.AllToAll {
				drain = res
			}
			t.AddRow(variant, string(p), "16",
				fmt.Sprint(res.Injections), fmt.Sprint(res.Lost),
				FmtRate(res.RatePerSec),
				fmt.Sprintf("%.3f", res.SimTime.Seconds()*1e3))
		}
	}
	if drain != nil {
		profile := ""
		for i, ph := range drain.Phases {
			if i > 0 {
				profile += ", "
			}
			profile += fmt.Sprintf("%s@%.3fms (%d/%d)", ph.Name,
				ph.End.Seconds()*1e3, ph.Executed, ph.Planned)
		}
		t.Note("alltoall drain profile: %s; lost = issued backlog into the dead node + its abandoned plan", profile)
	}
	t.Note("put perturbation 20-120ns per message from the scenario RNG (order-preserving); equal seeds reproduce every row bit-identically")
	return t, nil
}
