package perf

import (
	"fmt"

	"twochains/internal/cpusim"
)

// Options tune experiment execution.
type Options struct {
	// Scale multiplies iteration counts; 1.0 is the tcperf default,
	// tests use smaller values.
	Scale float64
	// Workers is the engine worker count for experiments that exercise
	// the multi-core conservative engine (the mesh experiment's speedup
	// line); <= 1 keeps everything sequential.
	Workers int
	// SpecUS is the speculative-window budget in microseconds of
	// simulated time for parallel experiments (0 keeps windows strictly
	// conservative); results are bit-identical either way.
	SpecUS float64
}

func (o Options) iters(base int) int {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	n := int(float64(base) * o.Scale)
	if n < 20 {
		n = 20
	}
	return n
}

func (o Options) warmup(base int) int {
	n := o.iters(base) / 10
	if n < 10 {
		n = 10
	}
	return n
}

// Experiment regenerates one figure of the paper.
type Experiment struct {
	Name  string
	Title string
	Run   func(Options) (*Table, error)
}

var registry []Experiment

func register(name, title string, run func(Options) (*Table, error)) {
	registry = append(registry, Experiment{Name: name, Title: title, Run: run})
}

// Experiments lists all registered experiments in definition order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range registry {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

func pow2(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}

// latencyIters shrinks iteration counts for points whose handler work is
// large (interpreted sums over big payloads), keeping run times sane while
// leaving medians stable.
func latencyIters(o Options, base, payload int) (warmup, iters int) {
	w, n := o.warmup(base), o.iters(base)
	if payload >= 16384 {
		n /= 4
		w /= 2
	} else if payload >= 4096 {
		n /= 2
	}
	if n < 20 {
		n = 20
	}
	if w < 5 {
		w = 5
	}
	return w, n
}

func init() {
	register("fig5", "Server-Side Sum: AM put without-execution latency vs UCX put", fig5)
	register("fig6", "Server-Side Sum: AM put without-execution bandwidth vs UCX put", fig6)
	register("fig7", "Indirect Put: latency, Injected vs Local Function", fig7)
	register("fig8", "Indirect Put: message rate, Injected vs Local Function", fig8)
	register("fig9", "Indirect Put: latency with LLC stashing on/off", fig9)
	register("fig10", "Indirect Put: message rate with LLC stashing on/off", fig10)
	register("fig11", "Indirect Put: tail latency on loaded system, stash vs nonstash", fig11)
	register("fig12", "Server-Side Sum: tail latency on loaded system, stash vs nonstash", fig12)
	register("fig13", "Indirect Put: WFE vs polling, latency and CPU cycles", fig13)
	register("fig14", "Server-Side Sum: WFE vs polling, latency and CPU cycles", fig14)
	register("sssum-conv", "Server-Side Sum: Injected vs Local convergence (§VII-A text)", sssumConv)
	registerAblations()
}

func fig5(o Options) (*Table, error) {
	t := &Table{
		Name:  "fig5",
		Title: "AM put (without-execution) vs UCX put: one-way latency",
		Cols:  []string{"size(B)", "ucx_put(us)", "am_put(us)", "reduction(%)"},
	}
	for _, size := range pow2(256, 32768) {
		w, n := latencyIters(o, 300, size)
		cfg := DefaultRunConfig()
		cfg.Warmup, cfg.Iters = w, n
		ucx, err := UcxPutLatency(cfg, size)
		if err != nil {
			return nil, fmt.Errorf("fig5 size %d: %w", size, err)
		}
		amCfg := cfg
		amCfg.Kind = WkData
		amCfg.PayloadBytes = size
		am, err := PingPong(amCfg)
		if err != nil {
			return nil, fmt.Errorf("fig5 size %d: %w", size, err)
		}
		u, a := ucx.Samples.Median(), am.Samples.Median()
		t.AddRow(fmt.Sprint(size), FmtUs(u), FmtUs(a),
			fmt.Sprintf("%.1f", PercentDelta(float64(u), float64(a))*-1))
	}
	t.Note("paper: AM mailbox delivery costs at most ~2%% latency vs a raw put")
	return t, nil
}

func fig6(o Options) (*Table, error) {
	t := &Table{
		Name:  "fig6",
		Title: "AM put (without-execution) vs UCX put: streaming bandwidth",
		Cols:  []string{"size(B)", "ucx_put(MB/s)", "am_put(MB/s)", "speedup(x)"},
	}
	for _, size := range pow2(256, 32768) {
		cfg := DefaultRunConfig()
		cfg.Warmup, cfg.Iters = o.warmup(200), o.iters(600)
		ucx, err := UcxPutBandwidth(cfg, size)
		if err != nil {
			return nil, fmt.Errorf("fig6 size %d: %w", size, err)
		}
		amCfg := cfg
		amCfg.PayloadBytes = size
		am, err := AmPutBandwidth(amCfg)
		if err != nil {
			return nil, fmt.Errorf("fig6 size %d: %w", size, err)
		}
		t.AddRow(fmt.Sprint(size),
			fmt.Sprintf("%.0f", ucx.Bandwidth/1e6),
			fmt.Sprintf("%.0f", am.Bandwidth/1e6),
			fmt.Sprintf("%.2f", am.Bandwidth/ucx.Bandwidth))
	}
	t.Note("paper: 1.79x to 4.48x bandwidth improvement across all sizes")
	return t, nil
}

// localVsInjected runs both invocation methods through a driver.
func localVsInjected(o Options, elem string, ints []int, rate bool) (*Table, error) {
	name, title := "fig7", "latency (us)"
	if rate {
		name, title = "fig8", "message rate (msg/s)"
	}
	t := &Table{
		Name:  name,
		Title: elem + " Injected vs Local Function: " + title,
		Cols:  []string{"ints", "local", "injected", "delta(%)"},
	}
	for _, n := range ints {
		payload := 4 * n
		w, it := latencyIters(o, 300, payload)
		mk := func(kind WorkloadKind) RunConfig {
			cfg := DefaultRunConfig()
			cfg.Warmup, cfg.Iters = w, it
			cfg.Kind = kind
			cfg.Elem = elem
			cfg.PayloadBytes = payload
			return cfg
		}
		if rate {
			loc, err := InjectionRate(mk(WkLocal))
			if err != nil {
				return nil, fmt.Errorf("%s n=%d local: %w", name, n, err)
			}
			inj, err := InjectionRate(mk(WkInjected))
			if err != nil {
				return nil, fmt.Errorf("%s n=%d injected: %w", name, n, err)
			}
			t.AddRow(fmt.Sprint(n), FmtRate(loc.Rate), FmtRate(inj.Rate),
				fmt.Sprintf("%.1f", PercentDelta(loc.Rate, inj.Rate)))
		} else {
			loc, err := PingPong(mk(WkLocal))
			if err != nil {
				return nil, fmt.Errorf("%s n=%d local: %w", name, n, err)
			}
			inj, err := PingPong(mk(WkInjected))
			if err != nil {
				return nil, fmt.Errorf("%s n=%d injected: %w", name, n, err)
			}
			l, i := loc.Samples.Median(), inj.Samples.Median()
			t.AddRow(fmt.Sprint(n), FmtUs(l), FmtUs(i),
				fmt.Sprintf("%.1f", PercentDelta(float64(l), float64(i))))
		}
	}
	if rate {
		t.Note("paper: injected ~40%% lower rate at small payloads, converging with size")
	} else {
		t.Note("paper: injected ~40%% slower at small payloads; bumps at 8 and 256 ints from protocol tiers")
	}
	return t, nil
}

func fig7(o Options) (*Table, error) {
	return localVsInjected(o, "jam_iput", pow2(1, 16384), false)
}

func fig8(o Options) (*Table, error) {
	return localVsInjected(o, "jam_iput", pow2(1, 16384), true)
}

// stashSweep compares stash on/off for one workload.
func stashSweep(o Options, name, elem string, payloads []int, rate bool, labelInts bool) (*Table, error) {
	unit := "latency (us)"
	if rate {
		unit = "message rate"
	}
	t := &Table{
		Name:  name,
		Title: elem + " with LLC stashing on/off: " + unit,
		Cols:  []string{"x", "nonstash", "stash", "delta(%)"},
	}
	if labelInts {
		t.Cols[0] = "ints"
	} else {
		t.Cols[0] = "size(B)"
	}
	for _, payload := range payloads {
		w, it := latencyIters(o, 300, payload)
		mk := func(stash bool) RunConfig {
			cfg := DefaultRunConfig()
			cfg.Warmup, cfg.Iters = w, it
			cfg.Kind = WkInjected
			cfg.Elem = elem
			cfg.PayloadBytes = payload
			cfg.NodeCfg.Stash = stash
			return cfg
		}
		label := fmt.Sprint(payload)
		if labelInts {
			label = fmt.Sprint(payload / 4)
		}
		if rate {
			non, err := InjectionRate(mk(false))
			if err != nil {
				return nil, fmt.Errorf("%s %s nonstash: %w", name, label, err)
			}
			st, err := InjectionRate(mk(true))
			if err != nil {
				return nil, fmt.Errorf("%s %s stash: %w", name, label, err)
			}
			t.AddRow(label, FmtRate(non.Rate), FmtRate(st.Rate),
				fmt.Sprintf("%.1f", PercentDelta(non.Rate, st.Rate)))
		} else {
			non, err := PingPong(mk(false))
			if err != nil {
				return nil, fmt.Errorf("%s %s nonstash: %w", name, label, err)
			}
			st, err := PingPong(mk(true))
			if err != nil {
				return nil, fmt.Errorf("%s %s stash: %w", name, label, err)
			}
			nv, sv := non.Samples.Median(), st.Samples.Median()
			t.AddRow(label, FmtUs(nv), FmtUs(sv),
				fmt.Sprintf("%.1f", PercentDelta(float64(nv), float64(sv))*-1))
		}
	}
	return t, nil
}

func intsPayloads(lo, hi int) []int {
	var out []int
	for _, n := range pow2(lo, hi) {
		out = append(out, 4*n)
	}
	return out
}

func fig9(o Options) (*Table, error) {
	t, err := stashSweep(o, "fig9", "jam_iput", intsPayloads(1, 8192), false, true)
	if err == nil {
		t.Note("paper: up to 31%% latency reduction, narrowing once the prefetcher engages")
	}
	return t, err
}

func fig10(o Options) (*Table, error) {
	t, err := stashSweep(o, "fig10", "jam_iput", intsPayloads(1, 8192), true, true)
	if err == nil {
		t.Note("paper: up to 92%% message-rate increase at small put counts")
	}
	return t, err
}

// tailSweep runs the loaded-system tail-latency comparison.
func tailSweep(o Options, name, elem string, payloads []int, labelInts bool) (*Table, error) {
	t := &Table{
		Name:  name,
		Title: elem + " on fully loaded system (stress-ng model): median/tail/spread",
		Cols: []string{"x", "non_med(us)", "non_tail(us)", "non_spread(%)",
			"st_med(us)", "st_tail(us)", "st_spread(%)"},
	}
	if labelInts {
		t.Cols[0] = "ints"
	} else {
		t.Cols[0] = "size(B)"
	}
	for _, payload := range payloads {
		w, it := latencyIters(o, 3000, payload)
		mk := func(stash bool) RunConfig {
			cfg := DefaultRunConfig()
			cfg.Warmup, cfg.Iters = w, it
			cfg.Kind = WkInjected
			cfg.Elem = elem
			cfg.PayloadBytes = payload
			cfg.NodeCfg.Stash = stash
			cfg.Stress = true
			return cfg
		}
		label := fmt.Sprint(payload)
		if labelInts {
			label = fmt.Sprint(payload / 4)
		}
		non, err := PingPong(mk(false))
		if err != nil {
			return nil, fmt.Errorf("%s %s nonstash: %w", name, label, err)
		}
		st, err := PingPong(mk(true))
		if err != nil {
			return nil, fmt.Errorf("%s %s stash: %w", name, label, err)
		}
		t.AddRow(label,
			FmtUs(non.Samples.Median()), FmtUs(non.Samples.Tail()),
			fmt.Sprintf("%.0f", non.Samples.TailSpread()*100),
			FmtUs(st.Samples.Median()), FmtUs(st.Samples.Tail()),
			fmt.Sprintf("%.0f", st.Samples.TailSpread()*100))
	}
	return t, nil
}

func fig11(o Options) (*Table, error) {
	t, err := tailSweep(o, "fig11", "jam_iput", intsPayloads(1, 1024), true)
	if err == nil {
		t.Note("paper: stash tail up to 2.4x better; stash spread peaks at 182%%, nonstash erratic")
	}
	return t, err
}

func fig12(o Options) (*Table, error) {
	t, err := tailSweep(o, "fig12", "jam_sssum", pow2(512, 32768), false)
	if err == nil {
		t.Note("paper: stash spread <= 137%% of median from 2KB; tails up to 2x better")
	}
	return t, err
}

// wfeSweep compares polling against WFE wait.
func wfeSweep(o Options, name, elem string, payloads []int, labelInts bool) (*Table, error) {
	t := &Table{
		Name:  name,
		Title: elem + ": spin-poll vs WFE wait, latency and total CPU cycles",
		Cols:  []string{"x", "poll(us)", "wfe(us)", "poll_cycles", "wfe_cycles", "cycle_reduction(x)"},
	}
	if labelInts {
		t.Cols[0] = "ints"
	} else {
		t.Cols[0] = "size(B)"
	}
	for _, payload := range payloads {
		w, it := latencyIters(o, 600, payload)
		mk := func(mode cpusim.WaitMode) RunConfig {
			cfg := DefaultRunConfig()
			cfg.Warmup, cfg.Iters = w, it
			cfg.Kind = WkInjected
			cfg.Elem = elem
			cfg.PayloadBytes = payload
			cfg.WaitMode = mode
			return cfg
		}
		label := fmt.Sprint(payload)
		if labelInts {
			label = fmt.Sprint(payload / 4)
		}
		poll, err := PingPong(mk(cpusim.Poll))
		if err != nil {
			return nil, fmt.Errorf("%s %s poll: %w", name, label, err)
		}
		wfe, err := PingPong(mk(cpusim.WFE))
		if err != nil {
			return nil, fmt.Errorf("%s %s wfe: %w", name, label, err)
		}
		pc := poll.CyclesA + poll.CyclesB
		wc := wfe.CyclesA + wfe.CyclesB
		t.AddRow(label,
			FmtUs(poll.Samples.Median()), FmtUs(wfe.Samples.Median()),
			fmt.Sprintf("%.3g", pc), fmt.Sprintf("%.3g", wc),
			fmt.Sprintf("%.2f", pc/wc))
	}
	return t, nil
}

func fig13(o Options) (*Table, error) {
	t, err := wfeSweep(o, "fig13", "jam_iput", intsPayloads(1, 1024), true)
	if err == nil {
		t.Note("paper: <=1.5%% latency penalty; 2.5x-3.8x cycle reduction")
	}
	return t, err
}

func fig14(o Options) (*Table, error) {
	t, err := wfeSweep(o, "fig14", "jam_sssum", pow2(512, 32768), false)
	if err == nil {
		t.Note("paper: no latency difference; 3.6x cycle reduction at 512B contracting to 1.84x at 32KB")
	}
	return t, err
}

func sssumConv(o Options) (*Table, error) {
	t, err := localVsInjected(o, "jam_sssum", pow2(1, 16384), false)
	if err == nil {
		t.Name = "sssum-conv"
		t.Note("paper §VII-A: smaller code, so convergence happens around 64 ints")
	}
	return t, err
}
