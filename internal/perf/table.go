package perf

import (
	"fmt"
	"io"
	"strings"
)

// Table is the result of one experiment, printable as aligned text (the
// rows/series a figure in the paper reports) or CSV.
type Table struct {
	Name  string // experiment id, e.g. "fig9"
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Cols) {
		panic(fmt.Sprintf("perf: table %s: row has %d cells, want %d", t.Name, len(cells), len(t.Cols)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Cols)
	total := len(t.Cols) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// FprintCSV writes the table as CSV.
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Cols, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}
