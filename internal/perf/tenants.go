package perf

import (
	"fmt"

	"twochains/internal/workload"
)

func init() {
	register("tenants", "Multi-tenant overload: weighted-fair goodput shares and per-tenant p99 under 1-8x offered load", tenantsExp)
}

// tenantsExp sweeps the stock two-tenant overload composition (gold
// weighted 3, bronze 1, identical offered load) across offered-load
// multipliers and reports each tenant's goodput inside the overlap
// window, the measured share ratio against the 3:1 weights, and the
// per-tenant p99 simulated latency. Below saturation the fabric serves
// both tenants at their offered rate (ratio ~1); past it the weighted
// fair queue at every receiver drives the ratio to the weights.
func tenantsExp(o Options) (*Table, error) {
	t := &Table{
		Name:  "tenants",
		Title: "Multi-tenant overload (gold:bronze weighted 3:1, equal offered load)",
		Cols: []string{"load", "tenant", "weight", "planned", "serviced",
			"goodput/s", "share", "p99_us", "window_us"},
	}
	nodes := 4
	for _, mult := range []float64{1, 2, 4, 8} {
		sc := workload.OverloadScenario(nodes, mult)
		sc.Rounds *= meshIters(o)
		res, err := workload.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("tenants %.0fx: %w", mult, err)
		}
		var total float64
		for _, tr := range res.Tenants {
			total += tr.GoodputPerSec
		}
		for _, tr := range res.Tenants {
			share := 0.0
			if total > 0 {
				share = tr.GoodputPerSec / total
			}
			t.AddRow(fmt.Sprintf("%.0fx", mult), tr.Name, fmt.Sprint(tr.Weight),
				fmt.Sprint(tr.Planned), fmt.Sprint(tr.Serviced),
				FmtRate(tr.GoodputPerSec), fmt.Sprintf("%.2f", share),
				fmt.Sprintf("%.2f", tr.P99Latency.Seconds()*1e6),
				fmt.Sprintf("%.1f", res.OverlapWindow.Seconds()*1e6))
		}
	}
	t.Note("goodput and shares are measured inside the overlap window (both tenants still being serviced); 1x is calibrated to just keep up")
	return t, nil
}
