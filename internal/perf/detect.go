package perf

import (
	"twochains/internal/model"
	"twochains/internal/sim"
)

// pollDetect is the baseline receiver's signal-detection granularity: the
// coherence delay between the NIC write and the polling core observing it.
func pollDetect() sim.Duration { return model.PollDetectLat }
