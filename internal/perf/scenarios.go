package perf

import (
	"fmt"

	"twochains/internal/workload"
)

func init() {
	register("scenarios", "Composed scenarios: open-loop kvstore and multi-phase multi-package runs", scenariosExp)
}

// scenariosExp runs the composed application-package scenarios — the
// widened workload surface beyond the three tcbench patterns — and
// reports per-phase completion alongside the usual rate and batching
// columns.
func scenariosExp(o Options) (*Table, error) {
	t := &Table{
		Name:  "scenarios",
		Title: "Composed scenarios over tcapp application packages (kvstore, histo, tcbench)",
		Cols: []string{"scenario", "nodes", "phases", "msgs", "inj/s",
			"batched(%)", "stalls", "swaps", "sim_ms"},
	}
	rounds := meshIters(o)
	for _, nodes := range []int{8, 16} {
		for _, mk := range []struct {
			name  string
			build func(int) workload.Scenario
		}{
			{"kv-openloop", workload.KVStoreScenario},
			{"multiphase", workload.MultiPhaseScenario},
		} {
			sc := mk.build(nodes)
			sc.Rounds = rounds
			res, err := workload.Run(sc)
			if err != nil {
				return nil, fmt.Errorf("scenarios %s/%d: %w", mk.name, nodes, err)
			}
			batched := 0.0
			if res.Mesh.Sent > 0 {
				batched = float64(res.Mesh.BatchedFrames) / float64(res.Mesh.Sent) * 100
			}
			swaps := 0
			for _, ph := range res.Phases {
				if ph.Swapped {
					swaps++
				}
			}
			t.AddRow(mk.name, fmt.Sprint(nodes), fmt.Sprint(len(res.Phases)),
				fmt.Sprint(res.Injections), FmtRate(res.RatePerSec),
				fmt.Sprintf("%.0f", batched),
				fmt.Sprint(res.Mesh.CreditStalls),
				fmt.Sprint(swaps),
				fmt.Sprintf("%.3f", res.SimTime.Seconds()*1e3))
		}
	}
	t.Note("kv-openloop offers Poisson arrivals; multiphase runs warmup -> RIED swap -> mixed kvstore+histo+tcbench drain")
	return t, nil
}
