package perf

import (
	"strconv"
	"strings"
	"testing"

	"twochains/internal/cpusim"
	"twochains/internal/sim"
)

func TestSamplesStatistics(t *testing.T) {
	var s Samples
	for i := 1; i <= 1000; i++ {
		s.Add(sim.Duration(i))
	}
	if s.Median() != 500 && s.Median() != 501 {
		t.Fatalf("median = %d", s.Median())
	}
	if s.Tail() < 990 {
		t.Fatalf("p99.9 = %d", s.Tail())
	}
	if s.Max() != 1000 {
		t.Fatalf("max = %d", s.Max())
	}
	if s.Mean() < 495 || s.Mean() > 505 {
		t.Fatalf("mean = %d", s.Mean())
	}
	spread := s.TailSpread()
	if spread < 0.9 || spread > 1.1 {
		t.Fatalf("spread = %f", spread)
	}
}

func TestPercentDelta(t *testing.T) {
	if PercentDelta(100, 90) != -10 {
		t.Fatal("delta -10")
	}
	if PercentDelta(0, 5) != 0 {
		t.Fatal("zero base")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Name: "x", Title: "demo", Cols: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.Note("hello %d", 42)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "a", "b", "1", "2", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	var csv strings.Builder
	tab.FprintCSV(&csv)
	if !strings.HasPrefix(csv.String(), "a,b\n1,2\n") {
		t.Fatalf("csv: %q", csv.String())
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tab := &Table{Name: "x", Cols: []string{"a", "b"}}
	tab.AddRow("only-one")
}

func smallCfg(kind WorkloadKind, elem string, payload int) RunConfig {
	cfg := DefaultRunConfig()
	cfg.Warmup, cfg.Iters = 10, 60
	cfg.Kind = kind
	cfg.Elem = elem
	cfg.PayloadBytes = payload
	return cfg
}

func TestPingPongDataFrames(t *testing.T) {
	res, err := PingPong(smallCfg(WkData, "", 256))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	med := res.Samples.Median()
	// One-way small-frame latency should be around a microsecond.
	if med < 500*sim.Nanosecond || med > 3*sim.Microsecond {
		t.Fatalf("median latency %v out of plausible range", med)
	}
}

func TestPingPongInjectedExecutes(t *testing.T) {
	res, err := PingPong(smallCfg(WkInjected, "jam_iput", 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Samples.N() != 60 {
		t.Fatalf("samples %d", res.Samples.N())
	}
}

func TestInjectedSlowerThanLocalAtSmallSizes(t *testing.T) {
	loc, err := PingPong(smallCfg(WkLocal, "jam_iput", 4))
	if err != nil {
		t.Fatal(err)
	}
	inj, err := PingPong(smallCfg(WkInjected, "jam_iput", 4))
	if err != nil {
		t.Fatal(err)
	}
	l, i := float64(loc.Samples.Median()), float64(inj.Samples.Median())
	if i <= l {
		t.Fatalf("injected %f not slower than local %f at 1 int", i, l)
	}
	// Paper: ~40% penalty. Accept a broad band around it.
	penalty := (i - l) / l
	if penalty < 0.10 || penalty > 0.90 {
		t.Fatalf("injected penalty %.2f, want 0.10-0.90 (paper ~0.40)", penalty)
	}
}

func TestStashImprovesInjectedLatency(t *testing.T) {
	mk := func(stash bool) RunConfig {
		cfg := smallCfg(WkInjected, "jam_iput", 64)
		cfg.NodeCfg.Stash = stash
		return cfg
	}
	non, err := PingPong(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	st, err := PingPong(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	n, s := float64(non.Samples.Median()), float64(st.Samples.Median())
	if s >= n {
		t.Fatalf("stash %f not faster than nonstash %f", s, n)
	}
	reduction := (n - s) / n
	if reduction < 0.05 || reduction > 0.5 {
		t.Fatalf("stash reduction %.2f, want 0.05-0.50 (paper: up to 0.31)", reduction)
	}
}

func TestWfeCutsCyclesNotLatency(t *testing.T) {
	mk := func(mode cpusim.WaitMode) RunConfig {
		cfg := smallCfg(WkInjected, "jam_iput", 64)
		cfg.WaitMode = mode
		return cfg
	}
	poll, err := PingPong(mk(cpusim.Poll))
	if err != nil {
		t.Fatal(err)
	}
	wfe, err := PingPong(mk(cpusim.WFE))
	if err != nil {
		t.Fatal(err)
	}
	lp, lw := float64(poll.Samples.Median()), float64(wfe.Samples.Median())
	if (lw-lp)/lp > 0.05 {
		t.Fatalf("WFE latency penalty %.3f too large", (lw-lp)/lp)
	}
	cp := poll.CyclesA + poll.CyclesB
	cw := wfe.CyclesA + wfe.CyclesB
	if cp/cw < 1.5 {
		t.Fatalf("cycle reduction %.2f, want > 1.5 (paper 2.5-3.8x)", cp/cw)
	}
}

func TestInjectionRateDriver(t *testing.T) {
	cfg := smallCfg(WkLocal, "jam_sssum", 4)
	cfg.Warmup, cfg.Iters = 50, 400
	res, err := InjectionRate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate < 1e5 || res.Rate > 1e8 {
		t.Fatalf("rate %.0f msg/s implausible", res.Rate)
	}
}

func TestStressWidensTail(t *testing.T) {
	mk := func(stress bool) RunConfig {
		cfg := smallCfg(WkInjected, "jam_iput", 64)
		cfg.Warmup, cfg.Iters = 50, 1500
		cfg.Stress = stress
		cfg.NodeCfg.Stash = false
		return cfg
	}
	quiet, err := PingPong(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := PingPong(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Samples.TailSpread() <= quiet.Samples.TailSpread() {
		t.Fatalf("stress spread %.2f not wider than quiet %.2f",
			loaded.Samples.TailSpread(), quiet.Samples.TailSpread())
	}
	if loaded.Samples.Median() <= quiet.Samples.Median() {
		t.Fatal("stress did not raise the median")
	}
}

func TestStashTightensLoadedTail(t *testing.T) {
	mk := func(stash bool) RunConfig {
		cfg := smallCfg(WkInjected, "jam_iput", 256)
		cfg.Warmup, cfg.Iters = 50, 2000
		cfg.Stress = true
		cfg.NodeCfg.Stash = stash
		return cfg
	}
	non, err := PingPong(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	st, err := PingPong(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples.Tail() >= non.Samples.Tail() {
		t.Fatalf("stash tail %v not better than nonstash %v under load",
			st.Samples.Tail(), non.Samples.Tail())
	}
}

func TestUcxBaselines(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Warmup, cfg.Iters = 10, 60
	lat, err := UcxPutLatency(cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Samples.Median() < 500*sim.Nanosecond || lat.Samples.Median() > 3*sim.Microsecond {
		t.Fatalf("put latency %v", lat.Samples.Median())
	}
	bw, err := UcxPutBandwidth(cfg, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if bw.Bandwidth <= 0 {
		t.Fatal("no bandwidth")
	}
}

func TestRegistryComplete(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Experiments() {
		names[e.Name] = true
	}
	for i := 5; i <= 14; i++ {
		if !names["fig"+strconv.Itoa(i)] {
			t.Errorf("fig%d not registered", i)
		}
	}
	for _, extra := range []string{"sssum-conv", "ablate-frames", "ablate-order",
		"ablate-got", "ablate-autoswitch", "ablate-banks", "ablate-secexec",
		"mesh", "scenarios"} {
		if !names[extra] {
			t.Errorf("%s not registered", extra)
		}
	}
	if _, ok := Lookup("fig9"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found nonsense")
	}
}

func TestExperimentSmoke(t *testing.T) {
	// Every experiment must run end to end at tiny scale and produce a
	// fully populated table. This is the repository's broadest
	// integration test.
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Scale: 0.05}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tab, err := e.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range tab.Rows {
				for j, cell := range row {
					if cell == "" {
						t.Fatalf("empty cell %d in row %v", j, row)
					}
				}
			}
		})
	}
}
