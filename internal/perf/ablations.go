package perf

import (
	"fmt"
)

// Ablations cover the design choices DESIGN.md calls out: frame sizing,
// ordering guarantees, GOT insertion policy, the injected-to-local
// auto-switch, and mailbox bank geometry.
func registerAblations() {
	register("ablate-frames", "fixed vs variable frame size (extra signal wait)", ablateFrames)
	register("ablate-order", "ordered fabric vs fence + separate signal put", ablateOrder)
	register("ablate-got", "sender-set GOT pointer vs receiver insertion (§V)", ablateGot)
	register("ablate-autoswitch", "auto-switch injected->local on re-injection (§VIII)", ablateAutoswitch)
	register("ablate-banks", "bank/mailbox geometry for injection rate", ablateBanks)
	register("ablate-secexec", "RWX mailbox vs SecureExec copy-before-run (§V)", ablateSecExec)
}

func ablateFrames(o Options) (*Table, error) {
	t := &Table{
		Name:  "ablate-frames",
		Title: "Indirect Put latency: fixed-size vs variable-size frames",
		Cols:  []string{"ints", "fixed(us)", "variable(us)", "penalty(%)"},
	}
	for _, n := range []int{1, 16, 256, 4096} {
		w, it := latencyIters(o, 300, 4*n)
		mk := func(variable bool) RunConfig {
			cfg := DefaultRunConfig()
			cfg.Warmup, cfg.Iters = w, it
			cfg.Kind = WkInjected
			cfg.Elem = "jam_iput"
			cfg.PayloadBytes = 4 * n
			cfg.VariableFrames = variable
			return cfg
		}
		fixed, err := PingPong(mk(false))
		if err != nil {
			return nil, err
		}
		variable, err := PingPong(mk(true))
		if err != nil {
			return nil, err
		}
		f, v := fixed.Samples.Median(), variable.Samples.Median()
		t.AddRow(fmt.Sprint(n), FmtUs(f), FmtUs(v),
			fmt.Sprintf("%.1f", PercentDelta(float64(f), float64(v))))
	}
	t.Note("variable frames wait on the header, then on the trailing signal (paper Fig. 1)")
	return t, nil
}

func ablateOrder(o Options) (*Table, error) {
	t := &Table{
		Name:  "ablate-order",
		Title: "Indirect Put latency: write-order guarantee vs fence + separate signal put",
		Cols:  []string{"ints", "ordered(us)", "fenced(us)", "penalty(%)"},
	}
	for _, n := range []int{1, 16, 256, 4096} {
		w, it := latencyIters(o, 300, 4*n)
		mk := func(ordered bool) RunConfig {
			cfg := DefaultRunConfig()
			cfg.Warmup, cfg.Iters = w, it
			cfg.Kind = WkInjected
			cfg.Elem = "jam_iput"
			cfg.PayloadBytes = 4 * n
			cfg.Ordered = ordered
			cfg.SeparateSignal = !ordered
			return cfg
		}
		ord, err := PingPong(mk(true))
		if err != nil {
			return nil, err
		}
		fenced, err := PingPong(mk(false))
		if err != nil {
			return nil, err
		}
		a, b := ord.Samples.Median(), fenced.Samples.Median()
		t.AddRow(fmt.Sprint(n), FmtUs(a), FmtUs(b),
			fmt.Sprintf("%.1f", PercentDelta(float64(a), float64(b))))
	}
	t.Note("without the hardware guarantee each message needs a fence and a second put")
	return t, nil
}

func ablateGot(o Options) (*Table, error) {
	t := &Table{
		Name:  "ablate-got",
		Title: "Indirect Put latency: sender-set GOT pointer vs receiver insertion",
		Cols:  []string{"ints", "sender(us)", "receiver(us)", "penalty(%)"},
	}
	for _, n := range []int{1, 64, 1024} {
		w, it := latencyIters(o, 300, 4*n)
		mk := func(insert bool) RunConfig {
			cfg := DefaultRunConfig()
			cfg.Warmup, cfg.Iters = w, it
			cfg.Kind = WkInjected
			cfg.Elem = "jam_iput"
			cfg.PayloadBytes = 4 * n
			cfg.InsertGp = insert
			return cfg
		}
		snd, err := PingPong(mk(false))
		if err != nil {
			return nil, err
		}
		rcv, err := PingPong(mk(true))
		if err != nil {
			return nil, err
		}
		a, b := snd.Samples.Median(), rcv.Samples.Median()
		t.AddRow(fmt.Sprint(n), FmtUs(a), FmtUs(b),
			fmt.Sprintf("%.1f", PercentDelta(float64(a), float64(b))))
	}
	t.Note("receiver insertion defeats GOT-pointer spoofing at one extra patch per arrival")
	return t, nil
}

func ablateAutoswitch(o Options) (*Table, error) {
	t := &Table{
		Name:  "ablate-autoswitch",
		Title: "Injection rate: always-inject vs auto-switch to local after 16 sends",
		Cols:  []string{"ints", "inject(msg/s)", "autoswitch(msg/s)", "gain(%)"},
	}
	for _, n := range []int{1, 64, 1024} {
		cfg := DefaultRunConfig()
		cfg.Warmup, cfg.Iters = o.warmup(300), o.iters(1500)
		cfg.Kind = WkInjected
		cfg.Elem = "jam_iput"
		cfg.PayloadBytes = 4 * n
		always, err := InjectionRate(cfg)
		if err != nil {
			return nil, err
		}
		cfg.AutoSwitchAfter = 16
		sw, err := InjectionRate(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n), FmtRate(always.Rate), FmtRate(sw.Rate),
			fmt.Sprintf("%.1f", PercentDelta(always.Rate, sw.Rate)))
	}
	t.Note("the §VIII future-work feature: reoccurring functions stop shipping their code")
	return t, nil
}

func ablateBanks(o Options) (*Table, error) {
	t := &Table{
		Name:  "ablate-banks",
		Title: "Injection rate vs mailbox geometry (64B local frames)",
		Cols:  []string{"banks", "slots", "rate(msg/s)"},
	}
	for _, geom := range [][2]int{{1, 1}, {1, 8}, {2, 4}, {4, 8}, {4, 32}, {8, 64}} {
		cfg := DefaultRunConfig()
		cfg.Warmup, cfg.Iters = o.warmup(300), o.iters(2000)
		cfg.Kind = WkLocal
		cfg.Elem = "jam_sssum"
		cfg.PayloadBytes = 4
		cfg.Banks, cfg.Slots = geom[0], geom[1]
		res, err := InjectionRate(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(geom[0]), fmt.Sprint(geom[1]), FmtRate(res.Rate))
	}
	t.Note("few slots stall the sender on credit returns; deep banks hide the round trip")
	return t, nil
}

func ablateSecExec(o Options) (*Table, error) {
	t := &Table{
		Name:  "ablate-secexec",
		Title: "Indirect Put latency: execute-in-mailbox vs copy to private X page",
		Cols:  []string{"ints", "rwx(us)", "secexec(us)", "penalty(%)"},
	}
	for _, n := range []int{1, 64, 1024} {
		w, it := latencyIters(o, 300, 4*n)
		mk := func(sec bool) RunConfig {
			cfg := DefaultRunConfig()
			cfg.Warmup, cfg.Iters = w, it
			cfg.Kind = WkInjected
			cfg.Elem = "jam_iput"
			cfg.PayloadBytes = 4 * n
			cfg.NodeCfg.SecureExec = sec
			return cfg
		}
		rwx, err := PingPong(mk(false))
		if err != nil {
			return nil, err
		}
		sec, err := PingPong(mk(true))
		if err != nil {
			return nil, err
		}
		a, b := rwx.Samples.Median(), sec.Samples.Median()
		t.AddRow(fmt.Sprint(n), FmtUs(a), FmtUs(b),
			fmt.Sprintf("%.1f", PercentDelta(float64(a), float64(b))))
	}
	t.Note("the paper's §V separation of code pages from writable mailbox data")
	return t, nil
}
