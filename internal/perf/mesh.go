package perf

import (
	"fmt"
	"time"

	"twochains/internal/sim"
	"twochains/internal/workload"
)

func init() {
	register("mesh", "Sharded mesh: mixed-workload injection rates by pattern and node count", meshExp)
}

// meshIters scales the per-sender round count with the option multiplier.
func meshIters(o Options) int {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	n := int(2 * o.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// meshExp runs every workload pattern over growing sharded meshes and
// reports simulated injections/sec plus the efficiency of the batched
// injection path and the shared prepared-jam cache.
func meshExp(o Options) (*Table, error) {
	t := &Table{
		Name:  "mesh",
		Title: "Sharded many-node mesh: mixed workload (injected + local, sssum + iput)",
		Cols: []string{"pattern", "nodes", "shards", "msgs", "inj/s",
			"batched(%)", "cache_hit(%)", "stalls", "sim_ms"},
	}
	rounds := meshIters(o)
	for _, nodes := range []int{8, 16} {
		for _, p := range workload.Patterns() {
			sc := workload.DefaultScenario(p, nodes)
			sc.Rounds = rounds
			res, err := workload.Run(sc)
			if err != nil {
				return nil, fmt.Errorf("mesh %s/%d: %w", p, nodes, err)
			}
			batched := 0.0
			if res.Mesh.Sent > 0 {
				batched = float64(res.Mesh.BatchedFrames) / float64(res.Mesh.Sent) * 100
			}
			hit := 0.0
			if tot := res.Mesh.JamBinds + res.Mesh.JamHits; tot > 0 {
				hit = float64(res.Mesh.JamHits) / float64(tot) * 100
			}
			t.AddRow(string(p), fmt.Sprint(nodes), fmt.Sprint(res.Shards),
				fmt.Sprint(res.Injections), FmtRate(res.RatePerSec),
				fmt.Sprintf("%.0f", batched), fmt.Sprintf("%.0f", hit),
				fmt.Sprint(res.Mesh.CreditStalls),
				fmt.Sprintf("%.3f", res.SimTime.Seconds()*1e3))
		}
	}
	t.Note("hotspot swaps the hot node's server ried mid-run; rates are simulated injections/sec")
	if note, err := meshSpeedupNote(o, rounds); err != nil {
		return nil, err
	} else if note != "" {
		t.Note(note)
	}
	return t, nil
}

// meshSpeedupNote measures the multi-core conservative engine on a
// 64-node all-to-all exchange: wall-clock with workers=1 against
// workers=N, asserting the digests and simulated times stay
// bit-identical (they are the same simulation by contract).
func meshSpeedupNote(o Options, rounds int) (string, error) {
	if o.Workers <= 1 {
		return "", nil
	}
	sc := workload.DefaultScenario(workload.AllToAll, 64)
	sc.Rounds = rounds
	sc.Shards = 8
	start := time.Now()
	seq, err := workload.Run(sc)
	if err != nil {
		return "", fmt.Errorf("mesh speedup (workers=1): %w", err)
	}
	seqWall := time.Since(start)
	sc.Workers = o.Workers
	sc.Speculation = sim.FromMicros(o.SpecUS)
	start = time.Now()
	par, err := workload.Run(sc)
	if err != nil {
		return "", fmt.Errorf("mesh speedup (workers=%d): %w", o.Workers, err)
	}
	parWall := time.Since(start)
	if par.Digest != seq.Digest || par.SimTime != seq.SimTime {
		return "", fmt.Errorf("mesh speedup: workers=%d diverged from workers=1 (digest %#x vs %#x)",
			o.Workers, par.Digest, seq.Digest)
	}
	mode := "conservative windows"
	if sc.Speculation > 0 {
		mode = fmt.Sprintf("speculative windows, budget %v", sc.Speculation)
	}
	return fmt.Sprintf(
		"parallel engine, 64-node alltoall: workers=1 %.2fs vs workers=%d %.2fs (%.2fx wall-clock, %d windows, %s, digests bit-identical)",
		seqWall.Seconds(), par.Workers, parWall.Seconds(), seqWall.Seconds()/parWall.Seconds(),
		par.Windows, mode), nil
}
