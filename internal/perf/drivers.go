package perf

import (
	"fmt"

	"twochains/internal/core"
	"twochains/internal/cpusim"
	"twochains/internal/fabric"
	"twochains/internal/mailbox"
	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/sim"
	"twochains/internal/tc"
)

// WorkloadKind selects the message type a driver sends.
type WorkloadKind int

const (
	WkData     WorkloadKind = iota // without-execution delivery
	WkLocal                        // Local Function invocation
	WkInjected                     // Injected Function invocation
)

// RunConfig parameterizes one benchmark run (one point of one figure).
type RunConfig struct {
	Elem         string // jam name for Local/Injected workloads
	Kind         WorkloadKind
	PayloadBytes int
	Warmup       int
	Iters        int

	NodeCfg  core.NodeConfig
	WaitMode cpusim.WaitMode
	Stress   bool
	Ordered  bool

	// Mailbox protocol options (ablations).
	VariableFrames bool
	SeparateSignal bool
	InsertGp       bool

	// Injection-rate geometry (banks x mailboxes per bank).
	Banks, Slots int

	AutoSwitchAfter int

	// KeyFn provides the Indirect Put key per iteration (nonzero).
	KeyFn func(i int) uint64
}

// DefaultRunConfig fills the paper-testbed defaults.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Warmup:  50,
		Iters:   400,
		NodeCfg: core.DefaultNodeConfig(),
		Ordered: true,
		Banks:   4,
		Slots:   8,
		KeyFn:   func(i int) uint64 { return uint64(i%30000) + 1 },
	}
}

// RunResult carries a driver's measurements.
type RunResult struct {
	Samples   Samples // per-iteration one-way latency (ping-pong driver)
	Rate      float64 // messages/second (injection-rate driver)
	Bandwidth float64 // payload bytes/second
	CyclesA   float64 // total CPU cycles on the initiator over the run
	CyclesB   float64 // total CPU cycles on the target over the run
	FrameSize int
	Errors    int
}

// rig is a fully provisioned two-node Two-Chains deployment: a 2-node
// tc.System with both directions connected and a pre-resolved Func handle
// per direction (bind once, send many).
type rig struct {
	sys        *tc.System
	a, b       *core.Node
	ab, ba     *core.Channel
	fnAB, fnBA *tc.Func // nil for WkData runs
	frame      int
	cfg        RunConfig
	payload    []byte
	errCount   int
}

// message builds the benchmark message template to size frames.
func benchMessage(cfg RunConfig, pkg *core.Package, payload []byte) (*mailbox.Message, error) {
	switch cfg.Kind {
	case WkData:
		return mailbox.PackData(payload), nil
	case WkLocal:
		return mailbox.PackLocal(1, 1, [2]uint64{}, payload), nil
	case WkInjected:
		elem, ok := pkg.Element(cfg.Elem)
		if !ok || elem.Kind != core.ElemJam {
			return nil, fmt.Errorf("perf: no jam %q", cfg.Elem)
		}
		return &mailbox.Message{
			Kind:     mailbox.KindInjected,
			JamImage: make([]byte, elem.Jam.ShippedSize()),
			Usr:      payload,
		}, nil
	}
	return nil, fmt.Errorf("perf: unknown workload kind %d", cfg.Kind)
}

// buildRig provisions the cluster, packages, mailboxes and channels for a
// run. geometry selects the mailbox shape per direction.
func buildRig(cfg RunConfig, geom mailbox.Geometry, credits bool) (*rig, error) {
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		return nil, err
	}
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	tmpl, err := benchMessage(cfg, pkg, payload)
	if err != nil {
		return nil, err
	}
	if geom.FrameSize == 0 {
		geom.FrameSize = tmpl.WireLen()
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}

	sys, err := tc.NewSystem(2,
		tc.WithNodeConfig(cfg.NodeCfg),
		tc.WithPerNode(func(i int, nc core.NodeConfig) core.NodeConfig {
			if i == 1 {
				nc.Seed ^= 0x5a5a
			}
			return nc
		}),
		tc.WithOrdered(cfg.Ordered),
		tc.WithGeometry(geom),
		tc.WithCredits(credits),
		tc.WithWaitMode(cfg.WaitMode),
		tc.WithReceiverTweak(func(rc mailbox.ReceiverConfig) mailbox.ReceiverConfig {
			return rc.WithVariableFrames(cfg.VariableFrames).WithInsertGp(cfg.InsertGp)
		}),
		tc.WithChannelOptions(core.ChannelOptions{
			Sender:          mailbox.SenderConfig{SeparateSignal: cfg.SeparateSignal},
			AutoSwitchAfter: cfg.AutoSwitchAfter,
		}),
		tc.WithConfig(func(c *core.MeshConfig) { c.Cluster.Seed = cfg.NodeCfg.Seed }),
	)
	if err != nil {
		return nil, err
	}
	if err := sys.InstallPackage(pkg); err != nil {
		return nil, err
	}
	a, b := sys.Node(0), sys.Node(1)
	a.SetStress(cfg.Stress)
	b.SetStress(cfg.Stress)
	ab, err := sys.Channel(0, 1)
	if err != nil {
		return nil, err
	}
	ba, err := sys.Channel(1, 0)
	if err != nil {
		return nil, err
	}
	r := &rig{sys: sys, a: a, b: b, ab: ab, ba: ba, frame: geom.FrameSize, cfg: cfg, payload: payload}
	if cfg.Kind != WkData {
		if r.fnAB, err = sys.Func(0, "tcbench", cfg.Elem); err != nil {
			return nil, err
		}
		if r.fnBA, err = sys.Func(1, "tcbench", cfg.Elem); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// send issues one benchmark message in the given direction through the
// pre-resolved handle. The auto-switch heuristic, when configured, is a
// policy of the handle itself (core.Bound), so the ablation measures the
// same call path with and without it.
func (r *rig) send(fn *tc.Func, ch *core.Channel, dst, i int) error {
	switch r.cfg.Kind {
	case WkData:
		ch.SendData(r.payload, nil)
		return nil
	case WkLocal:
		return fn.Call(dst, [2]uint64{r.cfg.KeyFn(i), 0}, tc.Local(), tc.Payload(r.payload)).IssueErr()
	default:
		return fn.Call(dst, [2]uint64{r.cfg.KeyFn(i), 0}, tc.Payload(r.payload)).IssueErr()
	}
}

// PingPong runs the latency shape of §VI-A1: one message at a time bounces
// between the hosts, executing on each arrival; the sample is the half
// round-trip time.
func PingPong(cfg RunConfig) (*RunResult, error) {
	geom := mailbox.Geometry{Banks: 1, Slots: 1}
	r, err := buildRig(cfg, geom, false)
	if err != nil {
		return nil, err
	}
	res := &RunResult{FrameSize: r.frame}

	total := cfg.Warmup + cfg.Iters
	iter := 0
	var t0 sim.Time
	countErr := func(d *mailbox.Delivery, err error) { res.Errors++ }
	// Each direction lands in its own mailbox region: a->b in ab.Recv
	// (on b), b->a in ba.Recv (on a).
	r.ab.Recv.OnError = countErr
	r.ba.Recv.OnError = countErr

	var ping func()
	ping = func() {
		t0 = r.sys.Now()
		if err := r.send(r.fnAB, r.ab, 1, iter); err != nil {
			res.Errors++
		}
	}
	r.ab.Recv.OnProcessed = func(d *mailbox.Delivery, _ sim.Time) {
		if err := r.send(r.fnBA, r.ba, 0, iter); err != nil {
			res.Errors++
		}
	}
	r.ba.Recv.OnProcessed = func(d *mailbox.Delivery, _ sim.Time) {
		rtt := r.sys.Now().Sub(t0)
		if iter >= cfg.Warmup {
			res.Samples.Add(rtt / 2)
		}
		iter++
		if iter < total {
			ping()
		}
	}
	r.sys.Engine().After(0, ping)
	r.sys.Run()

	res.CyclesA = r.a.Counter.Total()
	res.CyclesB = r.b.Counter.Total()
	if res.Samples.N() < cfg.Iters {
		return res, fmt.Errorf("perf: ping-pong collected %d/%d samples (errors %d)",
			res.Samples.N(), cfg.Iters, res.Errors)
	}
	return res, nil
}

// InjectionRate runs the rate shape of §VI-A2: the sender streams messages
// as fast as bank credits allow; the receiver drains banks and returns
// flags. The reported rate covers the post-warmup window.
func InjectionRate(cfg RunConfig) (*RunResult, error) {
	geom := mailbox.Geometry{Banks: cfg.Banks, Slots: cfg.Slots}
	r, err := buildRig(cfg, geom, true)
	if err != nil {
		return nil, err
	}
	res := &RunResult{FrameSize: r.frame}

	total := cfg.Warmup + cfg.Iters
	processed := 0
	var tStart, tEnd sim.Time
	r.ab.Recv.OnError = func(d *mailbox.Delivery, err error) { res.Errors++ }
	r.ab.Recv.OnProcessed = func(d *mailbox.Delivery, _ sim.Time) {
		processed++
		if processed == cfg.Warmup {
			tStart = r.sys.Now()
		}
		if processed == total {
			tEnd = r.sys.Now()
		}
	}
	for i := 0; i < total; i++ {
		if err := r.send(r.fnAB, r.ab, 1, i); err != nil {
			return nil, err
		}
	}
	r.sys.Run()

	if processed < total {
		return res, fmt.Errorf("perf: injection rate processed %d/%d (errors %d)",
			processed, total, res.Errors)
	}
	window := tEnd.Sub(tStart).Seconds()
	if window <= 0 {
		return res, fmt.Errorf("perf: degenerate measurement window")
	}
	res.Rate = float64(cfg.Iters) / window
	res.Bandwidth = res.Rate * float64(cfg.PayloadBytes)
	res.CyclesA = r.a.Counter.Total()
	res.CyclesB = r.b.Counter.Total()
	return res, nil
}

// ucxPair is the no-mailbox baseline deployment for Fig. 5/6.
type ucxPair struct {
	sys    *tc.System
	a, b   *core.Node
	ab, ba interface {
		Put(uint64, uint64, int, fabric.RKey, func(error, sim.Time))
	}
	aBuf uint64
	bBuf uint64
	aKey fabric.RKey
	bKey fabric.RKey
}

func buildUcxPair(cfg RunConfig, size int) (*ucxPair, error) {
	sys, err := tc.NewSystem(2,
		tc.WithNodeConfig(cfg.NodeCfg),
		tc.WithOrdered(cfg.Ordered),
		tc.WithConfig(func(c *core.MeshConfig) { c.Cluster.Seed = cfg.NodeCfg.Seed }),
	)
	if err != nil {
		return nil, err
	}
	a, b := sys.Node(0), sys.Node(1)
	p := &ucxPair{sys: sys, a: a, b: b}
	alloc := func(n *core.Node) (uint64, fabric.RKey, error) {
		va, err := n.AS.AllocPages("putbuf", size+64, mem.PermRW)
		if err != nil {
			return 0, 0, err
		}
		m, err := n.Worker.RegisterMemory(va, size+64, fabric.RemoteWrite)
		if err != nil {
			return 0, 0, err
		}
		return va, m.Key, nil
	}
	if p.aBuf, p.aKey, err = alloc(a); err != nil {
		return nil, err
	}
	if p.bBuf, p.bKey, err = alloc(b); err != nil {
		return nil, err
	}
	p.ab = a.Worker.Connect(b.Worker)
	p.ba = b.Worker.Connect(a.Worker)
	a.SetStress(cfg.Stress)
	b.SetStress(cfg.Stress)
	return p, nil
}

// UcxPutLatency measures the plain RDMA put ping-pong: each side polls its
// receive buffer and answers with a put — the Fig. 5 baseline.
func UcxPutLatency(cfg RunConfig, size int) (*RunResult, error) {
	p, err := buildUcxPair(cfg, size)
	if err != nil {
		return nil, err
	}
	res := &RunResult{FrameSize: size}
	total := cfg.Warmup + cfg.Iters
	iter := 0
	var t0 sim.Time

	var ping func()
	ping = func() {
		t0 = p.sys.Now()
		p.ab.Put(p.aBuf, p.bBuf, size, p.bKey, nil)
	}
	// Receiver-side detection: poll granularity after delivery, plus the
	// read of the landed signal line through the cache hierarchy (same
	// treatment the mailbox receiver gets).
	detect := func(n *core.Node, va uint64) sim.Duration {
		d := pollDetect()
		if n.Hier != nil {
			d += n.Hier.Access(va, 8, memsim.Read)
		}
		return d
	}
	p.b.Worker.NIC.SetDeliveryHook(func(va uint64, n int) {
		p.sys.Engine().After(detect(p.b, va), func() {
			p.ba.Put(p.bBuf, p.aBuf, size, p.aKey, nil)
		})
	})
	p.a.Worker.NIC.SetDeliveryHook(func(va uint64, n int) {
		p.sys.Engine().After(detect(p.a, va), func() {
			rtt := p.sys.Now().Sub(t0)
			if iter >= cfg.Warmup {
				res.Samples.Add(rtt / 2)
			}
			iter++
			if iter < total {
				ping()
			}
		})
	})
	p.sys.Engine().After(0, ping)
	p.sys.Run()
	if res.Samples.N() < cfg.Iters {
		return res, fmt.Errorf("perf: ucx put latency collected %d/%d", res.Samples.N(), cfg.Iters)
	}
	return res, nil
}

// UcxPutBandwidth measures the standard put path's streaming bandwidth
// with per-operation completion tracking — the Fig. 6 baseline.
func UcxPutBandwidth(cfg RunConfig, size int) (*RunResult, error) {
	p, err := buildUcxPair(cfg, size)
	if err != nil {
		return nil, err
	}
	res := &RunResult{FrameSize: size}
	total := cfg.Warmup + cfg.Iters
	var tStart, tEnd sim.Time
	i := 0
	var issue func()
	issue = func() {
		if i == cfg.Warmup {
			tStart = p.sys.Now()
		}
		if i == total {
			tEnd = p.sys.Now()
			return
		}
		i++
		p.ab.Put(p.aBuf, p.bBuf, size, p.bKey, func(err error, _ sim.Time) {
			if err != nil {
				res.Errors++
			}
			issue()
		})
	}
	issue()
	p.sys.Run()
	window := tEnd.Sub(tStart).Seconds()
	if window <= 0 {
		return res, fmt.Errorf("perf: degenerate put bandwidth window")
	}
	res.Rate = float64(cfg.Iters) / window
	res.Bandwidth = res.Rate * float64(size)
	return res, nil
}

// AmPutBandwidth streams without-execution frames through the mailbox path
// (the Fig. 6 measurement side).
func AmPutBandwidth(cfg RunConfig) (*RunResult, error) {
	cfg.Kind = WkData
	return InjectionRate(cfg)
}
