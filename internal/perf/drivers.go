package perf

import (
	"fmt"

	"twochains/internal/core"
	"twochains/internal/cpusim"
	"twochains/internal/mailbox"
	"twochains/internal/mem"
	"twochains/internal/memsim"
	"twochains/internal/sim"
	"twochains/internal/simnet"
)

// WorkloadKind selects the message type a driver sends.
type WorkloadKind int

const (
	WkData     WorkloadKind = iota // without-execution delivery
	WkLocal                        // Local Function invocation
	WkInjected                     // Injected Function invocation
)

// RunConfig parameterizes one benchmark run (one point of one figure).
type RunConfig struct {
	Elem         string // jam name for Local/Injected workloads
	Kind         WorkloadKind
	PayloadBytes int
	Warmup       int
	Iters        int

	NodeCfg  core.NodeConfig
	WaitMode cpusim.WaitMode
	Stress   bool
	Ordered  bool

	// Mailbox protocol options (ablations).
	VariableFrames bool
	SeparateSignal bool
	InsertGp       bool

	// Injection-rate geometry (banks x mailboxes per bank).
	Banks, Slots int

	AutoSwitchAfter int

	// KeyFn provides the Indirect Put key per iteration (nonzero).
	KeyFn func(i int) uint64
}

// DefaultRunConfig fills the paper-testbed defaults.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Warmup:  50,
		Iters:   400,
		NodeCfg: core.DefaultNodeConfig(),
		Ordered: true,
		Banks:   4,
		Slots:   8,
		KeyFn:   func(i int) uint64 { return uint64(i%30000) + 1 },
	}
}

// RunResult carries a driver's measurements.
type RunResult struct {
	Samples   Samples // per-iteration one-way latency (ping-pong driver)
	Rate      float64 // messages/second (injection-rate driver)
	Bandwidth float64 // payload bytes/second
	CyclesA   float64 // total CPU cycles on the initiator over the run
	CyclesB   float64 // total CPU cycles on the target over the run
	FrameSize int
	Errors    int
}

// rig is a fully provisioned two-node Two-Chains deployment.
type rig struct {
	cl       *core.Cluster
	a, b     *core.Node
	ab, ba   *core.Channel
	frame    int
	cfg      RunConfig
	payload  []byte
	errCount int
}

// message builds the benchmark message template to size frames.
func benchMessage(cfg RunConfig, pkg *core.Package, payload []byte) (*mailbox.Message, error) {
	switch cfg.Kind {
	case WkData:
		return mailbox.PackData(payload), nil
	case WkLocal:
		return mailbox.PackLocal(1, 1, [2]uint64{}, payload), nil
	case WkInjected:
		elem, ok := pkg.Element(cfg.Elem)
		if !ok || elem.Kind != core.ElemJam {
			return nil, fmt.Errorf("perf: no jam %q", cfg.Elem)
		}
		return &mailbox.Message{
			Kind:     mailbox.KindInjected,
			JamImage: make([]byte, elem.Jam.ShippedSize()),
			Usr:      payload,
		}, nil
	}
	return nil, fmt.Errorf("perf: unknown workload kind %d", cfg.Kind)
}

// buildRig provisions the cluster, packages, mailboxes and channels for a
// run. geometry selects the mailbox shape per direction.
func buildRig(cfg RunConfig, geom mailbox.Geometry, credits bool) (*rig, error) {
	pkg, err := core.BuildBenchPackage()
	if err != nil {
		return nil, err
	}
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	tmpl, err := benchMessage(cfg, pkg, payload)
	if err != nil {
		return nil, err
	}
	if geom.FrameSize == 0 {
		geom.FrameSize = tmpl.WireLen()
	}
	if err := geom.Validate(); err != nil {
		return nil, err
	}

	cl := core.NewCluster(core.ClusterConfig{Ordered: cfg.Ordered, Seed: cfg.NodeCfg.Seed})
	cfgA, cfgB := cfg.NodeCfg, cfg.NodeCfg
	cfgB.Seed ^= 0x5a5a
	a, err := cl.AddNode("initiator", cfgA)
	if err != nil {
		return nil, err
	}
	b, err := cl.AddNode("target", cfgB)
	if err != nil {
		return nil, err
	}
	for _, n := range []*core.Node{a, b} {
		if _, err := n.InstallPackage(pkg); err != nil {
			return nil, err
		}
		rcfg := mailbox.DefaultReceiverConfig(geom)
		rcfg.WaitMode = cfg.WaitMode
		rcfg.Credits = credits
		rcfg.VariableFrames = cfg.VariableFrames
		rcfg.InsertGp = cfg.InsertGp
		if err := n.EnableMailbox(rcfg); err != nil {
			return nil, err
		}
		n.SetStress(cfg.Stress)
	}
	chOpts := core.ChannelOptions{
		Sender: mailbox.SenderConfig{
			Geometry:       geom,
			WaitMode:       cfg.WaitMode,
			SeparateSignal: cfg.SeparateSignal,
		},
		AutoSwitchAfter: cfg.AutoSwitchAfter,
	}
	ab, err := core.Connect(a, b, chOpts)
	if err != nil {
		return nil, err
	}
	ba, err := core.Connect(b, a, chOpts)
	if err != nil {
		return nil, err
	}
	return &rig{cl: cl, a: a, b: b, ab: ab, ba: ba, frame: geom.FrameSize, cfg: cfg, payload: payload}, nil
}

// send issues one benchmark message on ch.
func (r *rig) send(ch *core.Channel, i int) error {
	switch r.cfg.Kind {
	case WkData:
		ch.SendData(r.payload, nil)
		return nil
	case WkLocal:
		return ch.CallLocal("tcbench", r.cfg.Elem, [2]uint64{r.cfg.KeyFn(i), 0}, r.payload, nil)
	default:
		return ch.Inject("tcbench", r.cfg.Elem, [2]uint64{r.cfg.KeyFn(i), 0}, r.payload, nil)
	}
}

// PingPong runs the latency shape of §VI-A1: one message at a time bounces
// between the hosts, executing on each arrival; the sample is the half
// round-trip time.
func PingPong(cfg RunConfig) (*RunResult, error) {
	geom := mailbox.Geometry{Banks: 1, Slots: 1}
	r, err := buildRig(cfg, geom, false)
	if err != nil {
		return nil, err
	}
	res := &RunResult{FrameSize: r.frame}

	total := cfg.Warmup + cfg.Iters
	iter := 0
	var t0 sim.Time
	countErr := func(d *mailbox.Delivery, err error) { res.Errors++ }
	r.a.Receiver.OnError = countErr
	r.b.Receiver.OnError = countErr

	var ping func()
	ping = func() {
		t0 = r.cl.Eng.Now()
		if err := r.send(r.ab, iter); err != nil {
			res.Errors++
		}
	}
	r.b.Receiver.OnProcessed = func(d *mailbox.Delivery, _ sim.Time) {
		if err := r.send(r.ba, iter); err != nil {
			res.Errors++
		}
	}
	r.a.Receiver.OnProcessed = func(d *mailbox.Delivery, _ sim.Time) {
		rtt := r.cl.Eng.Now().Sub(t0)
		if iter >= cfg.Warmup {
			res.Samples.Add(rtt / 2)
		}
		iter++
		if iter < total {
			ping()
		}
	}
	r.cl.Eng.After(0, ping)
	r.cl.Run()

	res.CyclesA = r.a.Counter.Total()
	res.CyclesB = r.b.Counter.Total()
	if res.Samples.N() < cfg.Iters {
		return res, fmt.Errorf("perf: ping-pong collected %d/%d samples (errors %d)",
			res.Samples.N(), cfg.Iters, res.Errors)
	}
	return res, nil
}

// InjectionRate runs the rate shape of §VI-A2: the sender streams messages
// as fast as bank credits allow; the receiver drains banks and returns
// flags. The reported rate covers the post-warmup window.
func InjectionRate(cfg RunConfig) (*RunResult, error) {
	geom := mailbox.Geometry{Banks: cfg.Banks, Slots: cfg.Slots}
	r, err := buildRig(cfg, geom, true)
	if err != nil {
		return nil, err
	}
	res := &RunResult{FrameSize: r.frame}

	total := cfg.Warmup + cfg.Iters
	processed := 0
	var tStart, tEnd sim.Time
	r.b.Receiver.OnError = func(d *mailbox.Delivery, err error) { res.Errors++ }
	r.b.Receiver.OnProcessed = func(d *mailbox.Delivery, _ sim.Time) {
		processed++
		if processed == cfg.Warmup {
			tStart = r.cl.Eng.Now()
		}
		if processed == total {
			tEnd = r.cl.Eng.Now()
		}
	}
	for i := 0; i < total; i++ {
		if err := r.send(r.ab, i); err != nil {
			return nil, err
		}
	}
	r.cl.Run()

	if processed < total {
		return res, fmt.Errorf("perf: injection rate processed %d/%d (errors %d)",
			processed, total, res.Errors)
	}
	window := tEnd.Sub(tStart).Seconds()
	if window <= 0 {
		return res, fmt.Errorf("perf: degenerate measurement window")
	}
	res.Rate = float64(cfg.Iters) / window
	res.Bandwidth = res.Rate * float64(cfg.PayloadBytes)
	res.CyclesA = r.a.Counter.Total()
	res.CyclesB = r.b.Counter.Total()
	return res, nil
}

// ucxPair is the no-mailbox baseline deployment for Fig. 5/6.
type ucxPair struct {
	cl     *core.Cluster
	a, b   *core.Node
	ab, ba interface {
		Put(uint64, uint64, int, simnet.RKey, func(error, sim.Time))
	}
	aBuf uint64
	bBuf uint64
	aKey simnet.RKey
	bKey simnet.RKey
}

func buildUcxPair(cfg RunConfig, size int) (*ucxPair, error) {
	cl := core.NewCluster(core.ClusterConfig{Ordered: cfg.Ordered, Seed: cfg.NodeCfg.Seed})
	a, err := cl.AddNode("initiator", cfg.NodeCfg)
	if err != nil {
		return nil, err
	}
	b, err := cl.AddNode("target", cfg.NodeCfg)
	if err != nil {
		return nil, err
	}
	p := &ucxPair{cl: cl, a: a, b: b}
	alloc := func(n *core.Node) (uint64, simnet.RKey, error) {
		va, err := n.AS.AllocPages("putbuf", size+64, mem.PermRW)
		if err != nil {
			return 0, 0, err
		}
		m, err := n.Worker.RegisterMemory(va, size+64, simnet.RemoteWrite)
		if err != nil {
			return 0, 0, err
		}
		return va, m.Key, nil
	}
	if p.aBuf, p.aKey, err = alloc(a); err != nil {
		return nil, err
	}
	if p.bBuf, p.bKey, err = alloc(b); err != nil {
		return nil, err
	}
	p.ab = a.Worker.Connect(b.Worker)
	p.ba = b.Worker.Connect(a.Worker)
	a.SetStress(cfg.Stress)
	b.SetStress(cfg.Stress)
	return p, nil
}

// UcxPutLatency measures the plain RDMA put ping-pong: each side polls its
// receive buffer and answers with a put — the Fig. 5 baseline.
func UcxPutLatency(cfg RunConfig, size int) (*RunResult, error) {
	p, err := buildUcxPair(cfg, size)
	if err != nil {
		return nil, err
	}
	res := &RunResult{FrameSize: size}
	total := cfg.Warmup + cfg.Iters
	iter := 0
	var t0 sim.Time

	var ping func()
	ping = func() {
		t0 = p.cl.Eng.Now()
		p.ab.Put(p.aBuf, p.bBuf, size, p.bKey, nil)
	}
	// Receiver-side detection: poll granularity after delivery, plus the
	// read of the landed signal line through the cache hierarchy (same
	// treatment the mailbox receiver gets).
	detect := func(n *core.Node, va uint64) sim.Duration {
		d := pollDetect()
		if n.Hier != nil {
			d += n.Hier.Access(va, 8, memsim.Read)
		}
		return d
	}
	p.b.Worker.NIC.SetDeliveryHook(func(va uint64, n int) {
		p.cl.Eng.After(detect(p.b, va), func() {
			p.ba.Put(p.bBuf, p.aBuf, size, p.aKey, nil)
		})
	})
	p.a.Worker.NIC.SetDeliveryHook(func(va uint64, n int) {
		p.cl.Eng.After(detect(p.a, va), func() {
			rtt := p.cl.Eng.Now().Sub(t0)
			if iter >= cfg.Warmup {
				res.Samples.Add(rtt / 2)
			}
			iter++
			if iter < total {
				ping()
			}
		})
	})
	p.cl.Eng.After(0, ping)
	p.cl.Run()
	if res.Samples.N() < cfg.Iters {
		return res, fmt.Errorf("perf: ucx put latency collected %d/%d", res.Samples.N(), cfg.Iters)
	}
	return res, nil
}

// UcxPutBandwidth measures the standard put path's streaming bandwidth
// with per-operation completion tracking — the Fig. 6 baseline.
func UcxPutBandwidth(cfg RunConfig, size int) (*RunResult, error) {
	p, err := buildUcxPair(cfg, size)
	if err != nil {
		return nil, err
	}
	res := &RunResult{FrameSize: size}
	total := cfg.Warmup + cfg.Iters
	var tStart, tEnd sim.Time
	i := 0
	var issue func()
	issue = func() {
		if i == cfg.Warmup {
			tStart = p.cl.Eng.Now()
		}
		if i == total {
			tEnd = p.cl.Eng.Now()
			return
		}
		i++
		p.ab.Put(p.aBuf, p.bBuf, size, p.bKey, func(err error, _ sim.Time) {
			if err != nil {
				res.Errors++
			}
			issue()
		})
	}
	issue()
	p.cl.Run()
	window := tEnd.Sub(tStart).Seconds()
	if window <= 0 {
		return res, fmt.Errorf("perf: degenerate put bandwidth window")
	}
	res.Rate = float64(cfg.Iters) / window
	res.Bandwidth = res.Rate * float64(size)
	return res, nil
}

// AmPutBandwidth streams without-execution frames through the mailbox path
// (the Fig. 6 measurement side).
func AmPutBandwidth(cfg RunConfig) (*RunResult, error) {
	cfg.Kind = WkData
	return InjectionRate(cfg)
}
