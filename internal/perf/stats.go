// Package perf is the Two-Chains benchmark harness: the ping-pong and
// injection-rate shapes of paper §VI-A, the benchmark drivers, and one
// registered experiment per figure of §VII. It plays the role of the UCX
// performance tester the authors extended.
package perf

import (
	"fmt"
	"sort"

	"twochains/internal/sim"
)

// Samples accumulates per-iteration measurements.
type Samples struct {
	vals []sim.Duration
}

// Add records one sample.
func (s *Samples) Add(d sim.Duration) { s.vals = append(s.vals, d) }

// N returns the sample count.
func (s *Samples) N() int { return len(s.vals) }

// Reset discards all samples.
func (s *Samples) Reset() { s.vals = s.vals[:0] }

// sorted returns a sorted copy.
func (s *Samples) sorted() []sim.Duration {
	out := make([]sim.Duration, len(s.vals))
	copy(out, s.vals)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the p-quantile (0 <= p <= 1) by nearest-rank.
func (s *Samples) Percentile(p float64) sim.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := s.sorted()
	idx := int(p*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Median returns the 50th percentile (the paper's "typical" latency).
func (s *Samples) Median() sim.Duration { return s.Percentile(0.5) }

// Tail returns the 99.9th percentile (the paper's tail latency).
func (s *Samples) Tail() sim.Duration { return s.Percentile(0.999) }

// Mean returns the arithmetic mean.
func (s *Samples) Mean() sim.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, v := range s.vals {
		sum += v
	}
	return sum / sim.Duration(len(s.vals))
}

// Max returns the largest sample.
func (s *Samples) Max() sim.Duration {
	var m sim.Duration
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}

// TailSpread computes the paper's equation (1):
//
//	spread = (tail - typical) / typical
//
// expressed as a fraction (multiply by 100 for percent).
func (s *Samples) TailSpread() float64 {
	med := s.Median()
	if med == 0 {
		return 0
	}
	return float64(s.Tail()-med) / float64(med)
}

// PercentDelta returns (b-a)/a as a percentage; negative means b is lower.
func PercentDelta(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}

// FmtUs formats a duration in microseconds with 3 decimals.
func FmtUs(d sim.Duration) string { return fmt.Sprintf("%.3f", d.Microseconds()) }

// FmtRate formats a messages/second rate.
func FmtRate(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.1fk", r/1e3)
	}
	return fmt.Sprintf("%.0f", r)
}
