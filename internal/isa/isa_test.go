package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Instr{Op: Op(op % uint8(opCount)), Rd: rd % NumRegs, Rs1: rs1 % NumRegs, Rs2: rs2 % NumRegs, Imm: imm}
		var buf [InstrSize]byte
		in.Encode(buf[:])
		return Decode(buf[:]) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeAllDecodeAllRoundTrip(t *testing.T) {
	prog := []Instr{
		{Op: MOVI, Rd: 0, Imm: 42},
		{Op: ADDI, Rd: 1, Rs1: 0, Imm: -7},
		{Op: ST, Rd: 1, Rs1: 15, Imm: 8},
		{Op: RET},
	}
	code := EncodeAll(prog)
	if len(code) != len(prog)*InstrSize {
		t.Fatalf("code length %d", len(code))
	}
	back, err := DecodeAll(code)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if back[i] != prog[i] {
			t.Fatalf("instr %d: %v != %v", i, back[i], prog[i])
		}
	}
}

func TestDecodeAllRejectsRaggedCode(t *testing.T) {
	if _, err := DecodeAll(make([]byte, 12)); err == nil {
		t.Fatal("ragged code accepted")
	}
}

func TestValidateRejectsUnknownOpcode(t *testing.T) {
	in := Instr{Op: Op(200)}
	if err := in.Validate(); err == nil {
		t.Fatal("unknown opcode validated")
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	in := Instr{Op: ADD, Rd: 16}
	if err := in.Validate(); err == nil {
		t.Fatal("register 16 validated")
	}
}

func TestValidateRejectsNegativeGotSlot(t *testing.T) {
	in := Instr{Op: CALLG, Imm: -1}
	if err := in.Validate(); err == nil {
		t.Fatal("negative GOT slot validated")
	}
}

func TestValidateAcceptsAllDefinedOps(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		in := Instr{Op: op, Imm: 1}
		if err := in.Validate(); err != nil {
			t.Errorf("op %d (%s): %v", op, infos[op].Name, err)
		}
	}
}

func TestByNameCoversAllOps(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		name := infos[op].Name
		if name == "" {
			t.Fatalf("op %d has no name", op)
		}
		got, ok := ByName(name)
		if !ok || got != op {
			t.Fatalf("ByName(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Fatal("bogus mnemonic resolved")
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: NOP}, "nop"},
		{Instr{Op: MOVI, Rd: 3, Imm: -5}, "movi r3, -5"},
		{Instr{Op: MOV, Rd: 1, Rs1: 2}, "mov r1, r2"},
		{Instr{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: ADDI, Rd: 1, Rs1: 2, Imm: 4}, "addi r1, r2, 4"},
		{Instr{Op: LD, Rd: 5, Rs1: 15, Imm: 16}, "ld r5, [r15+16]"},
		{Instr{Op: ST, Rd: 5, Rs1: 15, Imm: -8}, "st r5, [r15-8]"},
		{Instr{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 10}, "beq r1, r2, 10"},
		{Instr{Op: JMP, Imm: -3}, "jmp -3"},
		{Instr{Op: CALLR, Rs1: 7}, "callr r7"},
		{Instr{Op: CALLG, Imm: 2}, "callg @2"},
		{Instr{Op: LDP, Rd: 4, Imm: 1}, "ldp r4, @1"},
		{Instr{Op: RET}, "ret"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestStringUnknownOpcode(t *testing.T) {
	in := Instr{Op: Op(250), Imm: 1}
	if !strings.HasPrefix(in.String(), ".word") {
		t.Fatalf("unknown opcode string: %q", in.String())
	}
}

func TestDisassemble(t *testing.T) {
	code := EncodeAll([]Instr{{Op: MOVI, Rd: 0, Imm: 1}, {Op: RET}})
	text, err := Disassemble(code)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "movi r0, 1") || !strings.Contains(text, "ret") {
		t.Fatalf("disassembly:\n%s", text)
	}
}

func TestKindTableConsistency(t *testing.T) {
	// Every GOT op must have a GOT kind; every load/store a memory kind.
	if infos[CALLG].Kind != OperGotCall || infos[CALLP].Kind != OperGotCall {
		t.Fatal("GOT call kinds wrong")
	}
	if infos[LDG].Kind != OperGotLoad || infos[LDP].Kind != OperGotLoad {
		t.Fatal("GOT load kinds wrong")
	}
	for _, op := range []Op{LDB, LDH, LDW, LD} {
		if infos[op].Kind != OperMemLoad {
			t.Fatalf("%s not a load", infos[op].Name)
		}
	}
	for _, op := range []Op{STB, STH, STW, ST} {
		if infos[op].Kind != OperMemStore {
			t.Fatalf("%s not a store", infos[op].Name)
		}
	}
}
