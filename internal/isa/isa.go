// Package isa defines the JAM instruction set: the portable binary code
// format that Two-Chains ships inside active messages.
//
// The paper injects AArch64 machine code produced by GCC with -fPIC and
// -fno-plt, statically rewritten so that every Global Offset Table access
// indirects through a pointer stored just before the code in the message.
// A Go reproduction cannot execute foreign machine code in its own address
// space, so JAM plays that role: a fixed-width 64-bit register ISA whose
// instructions are position independent and whose external references go
// through a GOT, with both addressing forms the paper's toolchain uses:
//
//   - CALLG/LDG: GOT at a fixed module-relative location (normal
//     position-independent library code, resolved by the loader);
//   - CALLP/LDP: GOT reached through a pointer stored at codeBase-8
//     (the statically rewritten "jam" form that can execute at any
//     address on the receiver).
//
// Instructions are 8 bytes, little-endian:
//
//	byte 0    opcode
//	byte 1    rd   (destination register)
//	byte 2    rs1  (source register 1)
//	byte 3    rs2  (source register 2)
//	bytes 4-7 imm  (signed 32-bit immediate)
//
// Branch and call targets are PC-relative in units of instructions,
// measured from the branch instruction itself.
package isa

import "fmt"

// InstrSize is the fixed encoding size of one instruction in bytes.
const InstrSize = 8

// NumRegs is the number of architectural registers.
const NumRegs = 16

// Register conventions (enforced by the compiler and runtime, not the ISA):
// R0-R5 arguments and return value (R0), R6-R9 caller-saved temporaries,
// R10-R13 callee-saved, R14 link register, R15 stack pointer.
const (
	RegRet = 0
	RegLR  = 14
	RegSP  = 15
)

// Op is an opcode.
type Op uint8

// Opcodes. The numeric values are part of the on-the-wire jam format.
const (
	NOP Op = iota
	HALT

	// Moves and address formation.
	MOVI  // rd = signext(imm)
	MOVIU // rd = (rd & 0xffffffff) | imm<<32
	MOV   // rd = rs1
	LEA   // rd = pc + imm*8 (PC-relative address: rodata, jump tables)

	// Register arithmetic and logic.
	ADD // rd = rs1 + rs2
	SUB
	MUL
	DIV // signed; divide by zero faults
	REM
	AND
	OR
	XOR
	SHL
	SHR // logical
	SAR // arithmetic

	// Immediate forms.
	ADDI
	MULI
	ANDI
	ORI
	XORI
	SHLI
	SHRI

	// Comparisons.
	SLT  // rd = rs1 < rs2 (signed)
	SLTU // rd = rs1 < rs2 (unsigned)
	SEQ  // rd = rs1 == rs2

	// Loads: rd = mem[rs1+imm], zero-extended.
	LDB
	LDH
	LDW
	LD

	// Stores: mem[rs1+imm] = rd (truncated).
	STB
	STH
	STW
	ST

	// Control flow.
	BEQ // if rs1 == rs2: pc += imm*8
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JMP   // pc += imm*8
	CALL  // LR = pc+8; pc += imm*8
	CALLR // LR = pc+8; pc = rs1
	RET   // pc = LR

	// GOT-indirect external references (see package comment).
	CALLG // call *(moduleGOT + imm*8)
	LDG   // rd = *(moduleGOT + imm*8)
	CALLP // call *(*(codeBase-8) + imm*8)
	LDP   // rd = *(*(codeBase-8) + imm*8)

	opCount // sentinel
)

// OperandKind describes how an instruction uses its fields, driving the
// assembler, disassembler and validator from one table.
type OperandKind int

const (
	OperNone     OperandKind = iota // NOP, HALT, RET
	OperRdImm                       // MOVI, MOVIU, LEA
	OperRdRs1                       // MOV
	OperRdRs1Rs2                    // ADD ...
	OperRdRs1Imm                    // ADDI ..., loads
	OperRs1Imm                      // stores use rd as the value: see OperMem
	OperMemLoad                     // rd = [rs1+imm]
	OperMemStore                    // [rs1+imm] = rd
	OperBranch                      // rs1, rs2, imm target
	OperJump                        // imm target
	OperCallReg                     // rs1
	OperGotCall                     // imm slot
	OperGotLoad                     // rd, imm slot
)

// Info describes one opcode.
type Info struct {
	Name string
	Kind OperandKind
}

var infos = [opCount]Info{
	NOP:   {"nop", OperNone},
	HALT:  {"halt", OperNone},
	MOVI:  {"movi", OperRdImm},
	MOVIU: {"moviu", OperRdImm},
	MOV:   {"mov", OperRdRs1},
	LEA:   {"lea", OperRdImm},
	ADD:   {"add", OperRdRs1Rs2},
	SUB:   {"sub", OperRdRs1Rs2},
	MUL:   {"mul", OperRdRs1Rs2},
	DIV:   {"div", OperRdRs1Rs2},
	REM:   {"rem", OperRdRs1Rs2},
	AND:   {"and", OperRdRs1Rs2},
	OR:    {"or", OperRdRs1Rs2},
	XOR:   {"xor", OperRdRs1Rs2},
	SHL:   {"shl", OperRdRs1Rs2},
	SHR:   {"shr", OperRdRs1Rs2},
	SAR:   {"sar", OperRdRs1Rs2},
	ADDI:  {"addi", OperRdRs1Imm},
	MULI:  {"muli", OperRdRs1Imm},
	ANDI:  {"andi", OperRdRs1Imm},
	ORI:   {"ori", OperRdRs1Imm},
	XORI:  {"xori", OperRdRs1Imm},
	SHLI:  {"shli", OperRdRs1Imm},
	SHRI:  {"shri", OperRdRs1Imm},
	SLT:   {"slt", OperRdRs1Rs2},
	SLTU:  {"sltu", OperRdRs1Rs2},
	SEQ:   {"seq", OperRdRs1Rs2},
	LDB:   {"ldb", OperMemLoad},
	LDH:   {"ldh", OperMemLoad},
	LDW:   {"ldw", OperMemLoad},
	LD:    {"ld", OperMemLoad},
	STB:   {"stb", OperMemStore},
	STH:   {"sth", OperMemStore},
	STW:   {"stw", OperMemStore},
	ST:    {"st", OperMemStore},
	BEQ:   {"beq", OperBranch},
	BNE:   {"bne", OperBranch},
	BLT:   {"blt", OperBranch},
	BGE:   {"bge", OperBranch},
	BLTU:  {"bltu", OperBranch},
	BGEU:  {"bgeu", OperBranch},
	JMP:   {"jmp", OperJump},
	CALL:  {"call", OperJump},
	CALLR: {"callr", OperCallReg},
	RET:   {"ret", OperNone},
	CALLG: {"callg", OperGotCall},
	LDG:   {"ldg", OperGotLoad},
	CALLP: {"callp", OperGotCall},
	LDP:   {"ldp", OperGotLoad},
}

// Lookup returns the Info for op and whether op is a defined opcode.
func Lookup(op Op) (Info, bool) {
	if int(op) >= len(infos) || infos[op].Name == "" {
		return Info{}, false
	}
	return infos[op], true
}

// OpByName maps mnemonic to opcode; built once at init.
var opByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op := Op(0); op < opCount; op++ {
		if infos[op].Name != "" {
			m[infos[op].Name] = op
		}
	}
	return m
}()

// ByName returns the opcode for a mnemonic.
func ByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// Instr is one decoded instruction.
type Instr struct {
	Op       Op
	Rd       uint8
	Rs1, Rs2 uint8
	Imm      int32
}

// Encode writes the instruction into dst, which must be at least InstrSize
// bytes long.
func (in Instr) Encode(dst []byte) {
	_ = dst[7]
	dst[0] = byte(in.Op)
	dst[1] = in.Rd
	dst[2] = in.Rs1
	dst[3] = in.Rs2
	u := uint32(in.Imm)
	dst[4] = byte(u)
	dst[5] = byte(u >> 8)
	dst[6] = byte(u >> 16)
	dst[7] = byte(u >> 24)
}

// Bytes returns the 8-byte encoding.
func (in Instr) Bytes() []byte {
	b := make([]byte, InstrSize)
	in.Encode(b)
	return b
}

// Decode reads one instruction from src (at least InstrSize bytes).
func Decode(src []byte) Instr {
	_ = src[7]
	return Instr{
		Op:  Op(src[0]),
		Rd:  src[1],
		Rs1: src[2],
		Rs2: src[3],
		Imm: int32(uint32(src[4]) | uint32(src[5])<<8 | uint32(src[6])<<16 | uint32(src[7])<<24),
	}
}

// Validate checks structural well-formedness (known opcode, register
// indices in range). Semantic faults (bad addresses, division by zero) are
// runtime matters for the VM.
func (in Instr) Validate() error {
	info, ok := Lookup(in.Op)
	if !ok {
		return fmt.Errorf("isa: unknown opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return fmt.Errorf("isa: %s: register out of range (rd=%d rs1=%d rs2=%d)",
			info.Name, in.Rd, in.Rs1, in.Rs2)
	}
	if (in.Kind() == OperGotCall || in.Kind() == OperGotLoad) && in.Imm < 0 {
		return fmt.Errorf("isa: %s: negative GOT slot %d", info.Name, in.Imm)
	}
	return nil
}

// Kind returns the operand kind of the instruction's opcode.
func (in Instr) Kind() OperandKind {
	info, ok := Lookup(in.Op)
	if !ok {
		return OperNone
	}
	return info.Kind
}

// String disassembles the instruction.
func (in Instr) String() string {
	info, ok := Lookup(in.Op)
	if !ok {
		return fmt.Sprintf(".word 0x%02x%02x%02x%02x_%08x", in.Op, in.Rd, in.Rs1, in.Rs2, uint32(in.Imm))
	}
	switch info.Kind {
	case OperNone:
		return info.Name
	case OperRdImm:
		return fmt.Sprintf("%s r%d, %d", info.Name, in.Rd, in.Imm)
	case OperRdRs1:
		return fmt.Sprintf("%s r%d, r%d", info.Name, in.Rd, in.Rs1)
	case OperRdRs1Rs2:
		return fmt.Sprintf("%s r%d, r%d, r%d", info.Name, in.Rd, in.Rs1, in.Rs2)
	case OperRdRs1Imm:
		return fmt.Sprintf("%s r%d, r%d, %d", info.Name, in.Rd, in.Rs1, in.Imm)
	case OperMemLoad:
		return fmt.Sprintf("%s r%d, [r%d%+d]", info.Name, in.Rd, in.Rs1, in.Imm)
	case OperMemStore:
		return fmt.Sprintf("%s r%d, [r%d%+d]", info.Name, in.Rd, in.Rs1, in.Imm)
	case OperBranch:
		return fmt.Sprintf("%s r%d, r%d, %d", info.Name, in.Rs1, in.Rs2, in.Imm)
	case OperJump:
		return fmt.Sprintf("%s %d", info.Name, in.Imm)
	case OperCallReg:
		return fmt.Sprintf("%s r%d", info.Name, in.Rs1)
	case OperGotCall:
		return fmt.Sprintf("%s @%d", info.Name, in.Imm)
	case OperGotLoad:
		return fmt.Sprintf("%s r%d, @%d", info.Name, in.Rd, in.Imm)
	}
	return info.Name
}

// DecodeAll decodes a whole code section. len(code) must be a multiple of
// InstrSize.
func DecodeAll(code []byte) ([]Instr, error) {
	if len(code)%InstrSize != 0 {
		return nil, fmt.Errorf("isa: code length %d not a multiple of %d", len(code), InstrSize)
	}
	out := make([]Instr, 0, len(code)/InstrSize)
	for off := 0; off < len(code); off += InstrSize {
		out = append(out, Decode(code[off:off+InstrSize]))
	}
	return out, nil
}

// EncodeAll encodes a sequence of instructions.
func EncodeAll(ins []Instr) []byte {
	out := make([]byte, len(ins)*InstrSize)
	for i, in := range ins {
		in.Encode(out[i*InstrSize:])
	}
	return out
}

// Disassemble formats a code section with one instruction per line,
// prefixed with instruction indices.
func Disassemble(code []byte) (string, error) {
	ins, err := DecodeAll(code)
	if err != nil {
		return "", err
	}
	out := ""
	for i, in := range ins {
		out += fmt.Sprintf("%4d: %s\n", i, in)
	}
	return out, nil
}
