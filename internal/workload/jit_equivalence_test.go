package workload

import (
	"fmt"
	"testing"

	"twochains/internal/core"
	"twochains/internal/tcapp"
)

// runPair executes the same scenario twice — compiled dispatch and
// forced interpreter — and fails unless every observable is
// bit-identical: fabric digest, simulated finish time, injection count,
// and the per-node digest/error breakdown. The interpret loop is the
// reference implementation, so any divergence is a JIT bug by
// definition.
func runPair(t *testing.T, sc Scenario) *Result {
	t.Helper()
	sc.Interpreter = false
	jit, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Interpreter = true
	ref, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if jit.Digest != ref.Digest {
		t.Errorf("digest: compiled %#x, interpreter %#x", jit.Digest, ref.Digest)
	}
	if jit.SimTime != ref.SimTime {
		t.Errorf("simulated time: compiled %d, interpreter %d",
			int64(jit.SimTime), int64(ref.SimTime))
	}
	if jit.Injections != ref.Injections {
		t.Errorf("injections: compiled %d, interpreter %d", jit.Injections, ref.Injections)
	}
	for i := range jit.PerNode {
		j, r := jit.PerNode[i], ref.PerNode[i]
		if j != r {
			t.Errorf("node %d: compiled %+v, interpreter %+v", i, j, r)
		}
	}
	return jit
}

// jamMixFor builds a mix naming every injectable (jam) element of a
// registered app, so the sweep exercises the whole registry, not a
// hand-picked subset.
func jamMixFor(t *testing.T, app string) []ElementMix {
	t.Helper()
	pkg, err := tcapp.Build(app)
	if err != nil {
		t.Fatal(err)
	}
	var mix []ElementMix
	for _, e := range pkg.Elements {
		if e.Kind == core.ElemJam {
			mix = append(mix, ElementMix{Pkg: app, Elem: e.Name, Weight: 1})
		}
	}
	if len(mix) == 0 {
		t.Fatalf("app %s has no jam elements", app)
	}
	return mix
}

// TestJITEquivalenceSweep replays every tcapp-registered element
// compiled-vs-interpreted across seeds, worker counts, and fabric
// backends. Timing stays on so the comparison covers simulated costs,
// not just return values.
func TestJITEquivalenceSweep(t *testing.T) {
	dims := []struct {
		seed    uint64
		workers int
		backend string
	}{
		{0x7c2c2021, 1, ""},
		{0x7c2c2021, 4, ""},
		{0x7c2c2021, 1, "ideal"},
		{0x51edba5e, 1, ""},
		{0x51edba5e, 4, "ideal"},
	}
	for _, app := range tcapp.Names() {
		mix := jamMixFor(t, app)
		for _, d := range dims {
			d := d
			name := fmt.Sprintf("%s/seed=%x/workers=%d/backend=%s",
				app, d.seed, d.workers, orDefault(d.backend))
			t.Run(name, func(t *testing.T) {
				sc := DefaultScenario(AllToAll, 4)
				sc.Burst = 3
				sc.Rounds = 2
				sc.Seed = d.seed
				sc.Workers = d.workers
				sc.Backend = d.backend
				sc.Mix = mix
				res := runPair(t, sc)
				if res.Injections == 0 {
					t.Fatal("sweep ran nothing")
				}
			})
		}
	}
}

func orDefault(backend string) string {
	if backend == "" {
		return "simnet"
	}
	return backend
}

// TestJITHotSwapUnderLoad pins translation invalidation: the hotspot
// pattern's built-in mid-phase RIED hot-swap replaces code while
// traffic is in flight, so stale compiled translations would either
// execute dead code or fault. Digests must stay bit-identical with the
// JIT on and off, sequential and parallel.
func TestJITHotSwapUnderLoad(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sc := DefaultScenario(Hotspot, 6)
			sc.Burst = 6
			sc.Rounds = 3
			sc.Workers = workers
			res := runPair(t, sc)
			if !res.Swapped {
				t.Fatal("hotspot swap did not fire — the test exercised nothing")
			}
		})
	}
}
