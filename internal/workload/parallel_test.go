package workload

import (
	"runtime"
	"testing"

	"twochains/internal/sim"
)

// specBudget is the speculation budget the speculative legs of the
// parallel property tests run with: about two cross-shard lookaheads, so
// the reachability bound (not the budget cap) is what limits most
// windows.
const specBudget = 2 * sim.Microsecond

// workerSweep is the worker-count axis of the parallel determinism
// property: the sequential engine, two fixed parallel widths, and
// whatever the host offers (deduplicated).
func workerSweep() []int {
	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		sweep = append(sweep, n)
	}
	return sweep
}

// parallelScenario builds the scenario the sweep runs for an arbitrary
// registered traffic shape: big enough for four fabric shards and real
// cross-shard traffic, small enough for the -race CI gate.
func parallelScenario(traffic string, seed uint64, workers int) Scenario {
	sc := DefaultScenario(Pattern(traffic), 9)
	sc.Timing = true
	sc.Burst = 4
	sc.Rounds = 2
	sc.Shards = 4
	sc.Seed = seed
	sc.Workers = workers
	return sc
}

// TestWorkersSweepDeterminism is the registry-driven parallel-engine
// property: for every registered traffic shape (third-party ones
// included — registering is opting in) and two seeds, every worker count
// — with and without speculative windows — produces the bit-identical
// digest, simulated time, and injection count of the sequential engine.
// GOMAXPROCS is swept alongside so the windowed regime actually runs
// preemptively scheduled where the host allows it.
func TestWorkersSweepDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, name := range TrafficNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{0x7c2c2021, 0x51edba5e} {
				base, baseErr := Run(parallelScenario(name, seed, 1))
				for _, w := range workerSweep()[1:] {
					for _, spec := range []sim.Duration{0, specBudget} {
						// One speculative leg per shape/seed keeps the
						// -race sweep inside the CI budget.
						if spec > 0 && w != 4 {
							continue
						}
						runtime.GOMAXPROCS(w)
						sc := parallelScenario(name, seed, w)
						sc.Speculation = spec
						res, err := Run(sc)
						// A shape that rejects the scenario must reject it
						// identically at every worker count.
						if baseErr != nil || err != nil {
							if err == nil || baseErr == nil || err.Error() != baseErr.Error() {
								t.Fatalf("seed %#x workers %d spec %d: error divergence: %v vs %v",
									seed, w, spec, err, baseErr)
							}
							continue
						}
						if res.Digest != base.Digest {
							t.Errorf("seed %#x workers %d spec %d: digest %#x, want %#x",
								seed, w, spec, res.Digest, base.Digest)
						}
						if res.SimTime != base.SimTime {
							t.Errorf("seed %#x workers %d spec %d: simulated time %d, want %d",
								seed, w, spec, int64(res.SimTime), int64(base.SimTime))
						}
						if res.Injections != base.Injections {
							t.Errorf("seed %#x workers %d spec %d: injections %d, want %d",
								seed, w, spec, res.Injections, base.Injections)
						}
					}
				}
			}
		})
	}
}

// TestParallelGoldenScenarios re-runs the golden table on the parallel
// engine, conservative and speculative: the pinned digests and simulated
// times — captured on the pre-PR-3 sequential implementation — must come
// out of the multi-core engine unchanged, hot-swap phases included.
func TestParallelGoldenScenarios(t *testing.T) {
	for _, spec := range []sim.Duration{0, specBudget} {
		name := "conservative"
		if spec > 0 {
			name = "speculative"
		}
		for _, g := range goldenRuns {
			g := g
			t.Run(name+"/"+string(g.pattern), func(t *testing.T) {
				sc := DefaultScenario(g.pattern, g.nodes)
				sc.Rounds = 2
				sc.Burst = g.burst
				sc.Seed = g.seed
				sc.Workers = 4
				sc.Speculation = spec
				res, err := Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				if res.Digest != g.digest {
					t.Errorf("digest = %#x, want %#x", res.Digest, g.digest)
				}
				if int64(res.SimTime) != g.simTime {
					t.Errorf("simulated time = %d, want %d", int64(res.SimTime), g.simTime)
				}
				if res.Injections != g.inj {
					t.Errorf("injections = %d, want %d", res.Injections, g.inj)
				}
			})
		}
	}
}

// TestParallelComposedScenarios pins the phase-barrier machinery: the
// multi-phase and open-loop compositions run bit-identically on the
// parallel engine (phases hold it serial; the final phase opens up).
func TestParallelComposedScenarios(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int) Scenario
	}{
		{"kvstore", KVStoreScenario},
		{"multiphase", MultiPhaseScenario},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sc := tc.mk(8)
			sc.Shards = 4
			base, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			sc.Workers = 4
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Digest != base.Digest || res.SimTime != base.SimTime || res.Injections != base.Injections {
				t.Fatalf("parallel run diverged: %#x/%d/%d vs %#x/%d/%d",
					res.Digest, int64(res.SimTime), res.Injections,
					base.Digest, int64(base.SimTime), base.Injections)
			}
		})
	}
}

// TestParallelRepeatable re-runs one parallel scenario twice in-process:
// worker goroutines, hand-off lanes, and shared pools must leave no
// cross-run state.
func TestParallelRepeatable(t *testing.T) {
	sc := DefaultScenario(AllToAll, 9)
	sc.Rounds = 2
	sc.Shards = 4
	sc.Workers = 4
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.SimTime != b.SimTime {
		t.Fatalf("back-to-back parallel runs diverged: %#x/%d vs %#x/%d",
			a.Digest, int64(a.SimTime), b.Digest, int64(b.SimTime))
	}
	if a.Workers < 2 {
		t.Fatalf("parallel engine did not engage: workers = %d", a.Workers)
	}
}

// TestParallelWindowedEngagement pins that a hold-free steady state
// actually runs in the windowed regime: the window counter must be
// non-zero, conservative and speculative alike. A regression that
// silently degrades every run to serial stepping is invisible on a
// single-core container — wall-clock looks the same there — so the
// engagement is asserted on the simulation structure, not on timing.
func TestParallelWindowedEngagement(t *testing.T) {
	for _, spec := range []sim.Duration{0, specBudget} {
		sc := parallelScenario(string(AllToAll), 0x7c2c2021, 4)
		sc.Speculation = spec
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Workers < 2 {
			t.Fatalf("spec %d: parallel engine did not engage: workers = %d", spec, res.Workers)
		}
		if res.Windows == 0 {
			t.Fatalf("spec %d: hold-free steady state executed zero parallel windows", spec)
		}
	}
	// The sequential engine reports no windows.
	seq, err := Run(parallelScenario(string(AllToAll), 0x7c2c2021, 1))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Windows != 0 {
		t.Fatalf("sequential run reported %d windows", seq.Windows)
	}
}

// TestParallelSpeedupPairDigest is the test-scale version of the
// benchmark speedup pair (BenchmarkMeshAllToAll* vs their W1 twins) with
// GOMAXPROCS forced above 1: the multi-worker run — speculative included
// — must reproduce the sequential digest, simulated time, and injection
// count bit for bit while the workers genuinely run preemptively
// scheduled.
func TestParallelSpeedupPairDigest(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(4)
	sc := DefaultScenario(AllToAll, 16)
	sc.Rounds = 2
	sc.Shards = 4
	seq, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []sim.Duration{0, specBudget} {
		sc.Workers = 4
		sc.Speculation = spec
		par, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if par.Workers != 4 {
			t.Fatalf("spec %d: engaged %d workers, want 4", spec, par.Workers)
		}
		if par.Digest != seq.Digest || par.SimTime != seq.SimTime || par.Injections != seq.Injections {
			t.Fatalf("spec %d: speedup pair diverged: %#x/%d/%d vs %#x/%d/%d", spec,
				par.Digest, int64(par.SimTime), par.Injections,
				seq.Digest, int64(seq.SimTime), seq.Injections)
		}
	}
}
