package workload

import (
	"runtime"
	"testing"
)

// workerSweep is the worker-count axis of the parallel determinism
// property: the sequential engine, two fixed parallel widths, and
// whatever the host offers (deduplicated).
func workerSweep() []int {
	sweep := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		sweep = append(sweep, n)
	}
	return sweep
}

// parallelScenario builds the scenario the sweep runs for an arbitrary
// registered traffic shape: big enough for four fabric shards and real
// cross-shard traffic, small enough for the -race CI gate.
func parallelScenario(traffic string, seed uint64, workers int) Scenario {
	sc := DefaultScenario(Pattern(traffic), 9)
	sc.Timing = true
	sc.Burst = 4
	sc.Rounds = 2
	sc.Shards = 4
	sc.Seed = seed
	sc.Workers = workers
	return sc
}

// TestWorkersSweepDeterminism is the registry-driven parallel-engine
// property: for every registered traffic shape (third-party ones
// included — registering is opting in) and two seeds, every worker count
// produces the bit-identical digest, simulated time, and injection count
// of the sequential engine. GOMAXPROCS is swept alongside so the
// windowed regime actually runs preemptively scheduled where the host
// allows it.
func TestWorkersSweepDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, name := range TrafficNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{0x7c2c2021, 0x51edba5e} {
				base, baseErr := Run(parallelScenario(name, seed, 1))
				for _, w := range workerSweep()[1:] {
					runtime.GOMAXPROCS(w)
					res, err := Run(parallelScenario(name, seed, w))
					// A shape that rejects the scenario must reject it
					// identically at every worker count.
					if baseErr != nil || err != nil {
						if err == nil || baseErr == nil || err.Error() != baseErr.Error() {
							t.Fatalf("seed %#x workers %d: error divergence: %v vs %v", seed, w, err, baseErr)
						}
						continue
					}
					if res.Digest != base.Digest {
						t.Errorf("seed %#x workers %d: digest %#x, want %#x", seed, w, res.Digest, base.Digest)
					}
					if res.SimTime != base.SimTime {
						t.Errorf("seed %#x workers %d: simulated time %d, want %d",
							seed, w, int64(res.SimTime), int64(base.SimTime))
					}
					if res.Injections != base.Injections {
						t.Errorf("seed %#x workers %d: injections %d, want %d", seed, w, res.Injections, base.Injections)
					}
				}
			}
		})
	}
}

// TestParallelGoldenScenarios re-runs the golden table on the parallel
// engine: the pinned digests and simulated times — captured on the
// pre-PR-3 sequential implementation — must come out of the multi-core
// engine unchanged, hot-swap phases included.
func TestParallelGoldenScenarios(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(string(g.pattern), func(t *testing.T) {
			sc := DefaultScenario(g.pattern, g.nodes)
			sc.Rounds = 2
			sc.Burst = g.burst
			sc.Seed = g.seed
			sc.Workers = 4
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Digest != g.digest {
				t.Errorf("digest = %#x, want %#x", res.Digest, g.digest)
			}
			if int64(res.SimTime) != g.simTime {
				t.Errorf("simulated time = %d, want %d", int64(res.SimTime), g.simTime)
			}
			if res.Injections != g.inj {
				t.Errorf("injections = %d, want %d", res.Injections, g.inj)
			}
		})
	}
}

// TestParallelComposedScenarios pins the phase-barrier machinery: the
// multi-phase and open-loop compositions run bit-identically on the
// parallel engine (phases hold it serial; the final phase opens up).
func TestParallelComposedScenarios(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int) Scenario
	}{
		{"kvstore", KVStoreScenario},
		{"multiphase", MultiPhaseScenario},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sc := tc.mk(8)
			sc.Shards = 4
			base, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			sc.Workers = 4
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Digest != base.Digest || res.SimTime != base.SimTime || res.Injections != base.Injections {
				t.Fatalf("parallel run diverged: %#x/%d/%d vs %#x/%d/%d",
					res.Digest, int64(res.SimTime), res.Injections,
					base.Digest, int64(base.SimTime), base.Injections)
			}
		})
	}
}

// TestParallelRepeatable re-runs one parallel scenario twice in-process:
// worker goroutines, hand-off lanes, and shared pools must leave no
// cross-run state.
func TestParallelRepeatable(t *testing.T) {
	sc := DefaultScenario(AllToAll, 9)
	sc.Rounds = 2
	sc.Shards = 4
	sc.Workers = 4
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.SimTime != b.SimTime {
		t.Fatalf("back-to-back parallel runs diverged: %#x/%d vs %#x/%d",
			a.Digest, int64(a.SimTime), b.Digest, int64(b.SimTime))
	}
	if a.Workers < 2 {
		t.Fatalf("parallel engine did not engage: workers = %d", a.Workers)
	}
}
