package workload

import (
	"errors"
	"strings"
	"testing"

	"twochains/internal/core"
)

// wantScenarioError runs the scenario and requires a *ScenarioError on
// the named field.
func wantScenarioError(t *testing.T, sc Scenario, field string) {
	t.Helper()
	_, err := Run(sc)
	if err == nil {
		t.Fatalf("scenario accepted, want error on %s", field)
	}
	var serr *ScenarioError
	if !errors.As(err, &serr) {
		t.Fatalf("error %T (%v), want *ScenarioError", err, err)
	}
	if serr.Field != field {
		t.Fatalf("error field %q (%v), want %q", serr.Field, serr, field)
	}
}

// TestValidateTypedErrors: every class of degenerate scenario surfaces
// as a *ScenarioError naming the offending field.
func TestValidateTypedErrors(t *testing.T) {
	base := func() Scenario { return DefaultScenario(Fanout, 4) }

	sc := base()
	sc.Nodes = 1
	wantScenarioError(t, sc, "Nodes")

	sc = base()
	sc.Pattern = "zigzag"
	wantScenarioError(t, sc, "Pattern")

	sc = base()
	sc.Burst = 0
	wantScenarioError(t, sc, "Burst")

	sc = base()
	sc.Rounds = -1
	wantScenarioError(t, sc, "Rounds")

	sc = base()
	sc.PayloadBytes = -5
	wantScenarioError(t, sc, "PayloadBytes")

	sc = base()
	sc.PayloadBytes = MaxPayloadBytes + 1
	wantScenarioError(t, sc, "PayloadBytes")

	sc = base()
	sc.HotSkew = 1.5
	wantScenarioError(t, sc, "HotSkew")

	sc = base()
	sc.Mix = []ElementMix{{Elem: "jam_sssum", Weight: -1}}
	wantScenarioError(t, sc, "Mix[0].Weight")

	sc = base()
	sc.Mix = []ElementMix{{Elem: "jam_sssum", Weight: 0}}
	wantScenarioError(t, sc, "Mix")

	sc = base()
	sc.Mix = []ElementMix{{Elem: "jam_nonexistent", Weight: 1}}
	wantScenarioError(t, sc, "Mix[0].Elem")

	sc = base()
	sc.Mix = []ElementMix{{Pkg: "no-such-app", Elem: "jam_x", Weight: 1}}
	wantScenarioError(t, sc, "Mix[0].Pkg")

	sc = base()
	sc.Phases = []Phase{{Traffic: "zigzag"}}
	wantScenarioError(t, sc, "Phases[0].Traffic")

	sc = base()
	sc.Phases = []Phase{{}, {Burst: -2}}
	wantScenarioError(t, sc, "Phases[1].Burst")

	// A phase inheriting an invalid scenario-level default blames the
	// scenario field the user actually set, not the empty phase field.
	sc = base()
	sc.Rounds = -3
	sc.Phases = []Phase{{Name: "inherits"}}
	wantScenarioError(t, sc, "Rounds")

	sc = base()
	sc.Pattern = "zigzag"
	sc.Phases = []Phase{{Name: "inherits"}}
	wantScenarioError(t, sc, "Pattern")

	sc = base()
	sc.Phases = []Phase{{Arrival: &Arrival{Kind: Poisson}}}
	wantScenarioError(t, sc, "Phases[0].Arrival.RatePerSec")

	sc = base()
	sc.Phases = []Phase{{Arrival: &Arrival{Kind: 99}}}
	wantScenarioError(t, sc, "Phases[0].Arrival.Kind")

	sc = base()
	sc.Phases = []Phase{{Swap: &Swap{Node: 9}}}
	wantScenarioError(t, sc, "Phases[0].Swap.Node")

	sc = base()
	sc.Phases = []Phase{{Swap: &Swap{Node: 1, App: "no-such-app"}}}
	wantScenarioError(t, sc, "Phases[0].Swap.App")

	sc = base()
	sc.Phases = []Phase{{Mix: []ElementMix{{Pkg: "kvstore", Elem: "jam_kv_put", Weight: 1}}}, {Mix: []ElementMix{{Elem: "jam_oops", Weight: 2}}}}
	wantScenarioError(t, sc, "Phases[1].Mix[0].Elem")
}

// TestValidateStandalone: Validate agrees with Run without building
// anything, and passes every stock scenario.
func TestValidateStandalone(t *testing.T) {
	for _, p := range Patterns() {
		sc := DefaultScenario(p, 8)
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	for _, sc := range []Scenario{KVStoreScenario(8), MultiPhaseScenario(8)} {
		if err := sc.Validate(); err != nil {
			t.Errorf("composed scenario: %v", err)
		}
	}
	sc := DefaultScenario(Fanout, 0)
	err := sc.Validate()
	var serr *ScenarioError
	if !errors.As(err, &serr) || serr.Field != "Nodes" {
		t.Errorf("Validate() = %v, want ScenarioError on Nodes", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "Nodes") || !strings.Contains(msg, "invalid scenario") {
		t.Errorf("error text %q", msg)
	}
}

// frameSpecs resolves a one-phase spec set over the given mix for the
// frameSizeFor unit tests.
func frameSpecs(t *testing.T, mix []ElementMix) ([]phaseSpec, map[string]*core.Package) {
	t.Helper()
	sc := DefaultScenario(Fanout, 4)
	sc.Mix = mix
	specs, err := sc.resolvePhases()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := packagesFor(specs)
	if err != nil {
		t.Fatal(err)
	}
	return specs, pkgs
}

// TestFrameSizeForEdgeCases covers the satellite-task edge cases: empty
// mixes, unknown elements, and payload/frame overflow, all as typed
// errors.
func TestFrameSizeForEdgeCases(t *testing.T) {
	specs, pkgs := frameSpecs(t, DefaultMix())

	// Happy path: the frame covers the largest injected element.
	n, err := frameSizeFor(pkgs, specs, 64)
	if err != nil {
		t.Fatal(err)
	}
	iput, _ := pkgs["tcbench"].Element("jam_iput")
	if n < iput.Jam.ShippedSize()+64 {
		t.Fatalf("frame %d smaller than shipped image + payload", n)
	}

	// Payload outside bounds.
	if _, err := frameSizeFor(pkgs, specs, -1); !fieldIs(err, "PayloadBytes") {
		t.Errorf("negative payload: %v", err)
	}
	if _, err := frameSizeFor(pkgs, specs, MaxPayloadBytes+1); !fieldIs(err, "PayloadBytes") {
		t.Errorf("oversized payload: %v", err)
	}

	// No mix entries anywhere.
	empty := []phaseSpec{{mix: nil}}
	if _, err := frameSizeFor(pkgs, empty, 64); !fieldIs(err, "Mix") {
		t.Errorf("empty mix: %v", err)
	}

	// Unknown element in an otherwise valid package.
	bad := []phaseSpec{{mix: []ElementMix{{Pkg: "tcbench", Elem: "jam_missing", Weight: 1}}}}
	if _, err := frameSizeFor(pkgs, bad, 64); !fieldIs(err, "Mix[0].Elem") {
		t.Errorf("unknown element: %v", err)
	}

	// Package not in the built set.
	orphan := []phaseSpec{{mix: []ElementMix{{Pkg: "ghost", Elem: "jam_x", Weight: 1}}}}
	if _, err := frameSizeFor(pkgs, orphan, 64); !fieldIs(err, "Mix[0].Pkg") {
		t.Errorf("unbuilt package: %v", err)
	}

	// Local-only mixes size to the local frame, no jam lookup involved.
	specsLocal, pkgsLocal := frameSpecs(t, []ElementMix{{Elem: "jam_sssum", Weight: 1, Local: true}})
	ln, err := frameSizeFor(pkgsLocal, specsLocal, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ln >= n {
		t.Errorf("local-only frame %d not smaller than injected frame %d", ln, n)
	}
}

func fieldIs(err error, field string) bool {
	var serr *ScenarioError
	return errors.As(err, &serr) && serr.Field == field
}
