package workload

import (
	"sync"
	"testing"
)

// Fixture shapes register once per process: RegisterTraffic panics on
// duplicates, and tests must survive -count=N reruns.
var (
	pairOnce sync.Once
	oobOnce  sync.Once
)

// registryScenario builds a quick scenario for an arbitrary registered
// traffic shape — what the determinism property runs for every name, so
// third-party Traffic implementations inherit the check by registering.
func registryScenario(traffic string, seed uint64) Scenario {
	sc := DefaultScenario(Pattern(traffic), 5)
	sc.Timing = true
	sc.Burst = 4
	sc.Rounds = 2
	sc.Seed = seed
	return sc
}

// TestRegisteredTrafficDeterminism: for every registered traffic shape,
// equal seeds produce bit-identical digests, injection counts, and
// simulated times; a different seed produces a different run.
func TestRegisteredTrafficDeterminism(t *testing.T) {
	names := TrafficNames()
	if len(names) < 4 {
		t.Fatalf("registry has %d shapes, want >= 4 (fanout/alltoall/hotspot/ring)", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			a, errA := Run(registryScenario(name, 0xfeed))
			b, errB := Run(registryScenario(name, 0xfeed))
			// A shape that rejects the scenario must reject it identically.
			if errA != nil || errB != nil {
				if errB == nil || errA == nil || errA.Error() != errB.Error() {
					t.Fatalf("same-seed error divergence: %v vs %v", errA, errB)
				}
				return
			}
			if a.Digest != b.Digest || a.Injections != b.Injections || a.SimTime != b.SimTime {
				t.Errorf("same-seed runs diverged: digest %x/%x injections %d/%d time %v/%v",
					a.Digest, b.Digest, a.Injections, b.Injections, a.SimTime, b.SimTime)
			}
			if a.Injections == 0 {
				// A legitimately silent shape (e.g. a swap-only helper) has
				// nothing further to pin.
				return
			}
			c, err := Run(registryScenario(name, 0xfeed^0xdead))
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest == c.Digest && a.SimTime == c.SimTime {
				t.Error("different seeds produced identical runs")
			}
		})
	}
}

// TestRegisterTrafficExtension: a scenario can select a freshly
// registered shape by name, and the plan honours its emission order.
func TestRegisterTrafficExtension(t *testing.T) {
	pairOnce.Do(func() {
		RegisterTraffic("test-pair", func() Traffic {
			return TrafficFunc(func(p *Planner) error {
				// Node 0 <-> node 1 only, regardless of mesh size.
				for r := 0; r < p.Rounds(); r++ {
					p.Emit(0, 1)
					p.Emit(1, 0)
				}
				return nil
			})
		})
	})
	sc := DefaultScenario("test-pair", 4)
	sc.Timing = false
	sc.Burst = 2
	sc.Rounds = 3
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range res.PerNode {
		want := 0
		if i < 2 {
			want = sc.Rounds * sc.Burst
		}
		if nr.Sent != want || nr.Executed != want {
			t.Errorf("node %d: sent %d executed %d, want %d", i, nr.Sent, nr.Executed, want)
		}
	}
}

// TestRingPattern: the ring shape addresses each node exactly
// rounds*burst times.
func TestRingPattern(t *testing.T) {
	sc := DefaultScenario(Ring, 5)
	sc.Timing = false
	sc.Burst = 3
	sc.Rounds = 2
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range res.PerNode {
		if nr.Executed != sc.Rounds*sc.Burst {
			t.Errorf("node %d executed %d, want %d", i, nr.Executed, sc.Rounds*sc.Burst)
		}
	}
}

// TestEmitOutOfRange: a generator emitting outside the topology is a
// typed scenario error, not a panic or a silent drop.
func TestEmitOutOfRange(t *testing.T) {
	oobOnce.Do(func() {
		RegisterTraffic("test-oob", func() Traffic {
			return TrafficFunc(func(p *Planner) error {
				p.Emit(0, p.Nodes()) // one past the end
				return nil
			})
		})
	})
	sc := DefaultScenario("test-oob", 3)
	_, err := Run(sc)
	var serr *ScenarioError
	if !asScenarioError(err, &serr) {
		t.Fatalf("out-of-range emit: %v", err)
	}
}
