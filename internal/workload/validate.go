package workload

import (
	"fmt"

	"twochains/internal/core"
	"twochains/internal/fabric"
	"twochains/internal/mailbox"
	"twochains/internal/tcapp"
)

// ScenarioError is the typed validation error of the scenario surface:
// Field names the offending field (with phase/mix indices when it lives
// inside a composite, e.g. "Phases[1].Mix[0].Weight") and Reason says
// what is wrong with it. Every plan-building failure in Run is reported
// this way, so drivers can switch on the field instead of parsing
// message strings.
type ScenarioError struct {
	Field  string
	Reason string
}

func (e *ScenarioError) Error() string {
	return fmt.Sprintf("workload: invalid scenario: %s: %s", e.Field, e.Reason)
}

// Payload and frame bounds. MaxPayloadBytes keeps a single frame well
// inside a node's mailbox region; maxFrameBytes is the sanity ceiling
// for the derived frame size (payload + the largest shipped jam image +
// headers).
const (
	MaxPayloadBytes = 1 << 20
	maxFrameBytes   = 1 << 22
)

// Validate checks the scenario without building anything: field
// ranges, registry membership of traffic shapes and packages, phase
// composition. It returns nil or a *ScenarioError. Element existence
// within a package is only checkable after the package compiles, so it
// is verified by Run (still as a typed *ScenarioError), not here. Run
// validates implicitly; Validate exists so scenario-composing code can
// fail fast.
func (sc *Scenario) Validate() error {
	if err := sc.validateScalars(); err != nil {
		return err
	}
	specs, err := sc.resolvePhases()
	if err != nil {
		return err
	}
	if len(sc.Tenants) > 0 {
		if _, err := sc.resolveTenants(specs); err != nil {
			return err
		}
	}
	return nil
}

// validateScalars checks the phase-independent scenario fields.
func (sc *Scenario) validateScalars() error {
	if sc.Nodes < 2 {
		return &ScenarioError{Field: "Nodes", Reason: fmt.Sprintf("needs >= 2 nodes, have %d", sc.Nodes)}
	}
	if sc.Shards < 0 {
		return &ScenarioError{Field: "Shards", Reason: fmt.Sprintf("negative shard count %d", sc.Shards)}
	}
	if sc.Workers < 0 {
		return &ScenarioError{Field: "Workers", Reason: fmt.Sprintf("negative worker count %d", sc.Workers)}
	}
	if sc.Speculation < 0 {
		return &ScenarioError{Field: "Speculation", Reason: fmt.Sprintf("negative speculation budget %d", int64(sc.Speculation))}
	}
	if sc.PayloadBytes < 0 {
		return &ScenarioError{Field: "PayloadBytes", Reason: fmt.Sprintf("negative payload %d", sc.PayloadBytes)}
	}
	if sc.PayloadBytes > MaxPayloadBytes {
		return &ScenarioError{Field: "PayloadBytes",
			Reason: fmt.Sprintf("payload %d exceeds the %d-byte frame budget", sc.PayloadBytes, MaxPayloadBytes)}
	}
	if sc.HotSkew < 0 || sc.HotSkew > 1 {
		return &ScenarioError{Field: "HotSkew", Reason: fmt.Sprintf("skew %v outside [0, 1]", sc.HotSkew)}
	}
	if sc.Backend == "chaos" && sc.Chaos == nil {
		return &ScenarioError{Field: "Backend",
			Reason: `the "chaos" backend is configured through Scenario.Chaos (it wraps another backend)`}
	}
	if c := sc.Chaos; c != nil {
		if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
			return &ScenarioError{Field: "Chaos.MinDelay",
				Reason: fmt.Sprintf("need 0 <= MinDelay <= MaxDelay, have [%v, %v]", c.MinDelay, c.MaxDelay)}
		}
		if c.MaxDelay > fabric.MaxChaosDelay {
			return &ScenarioError{Field: "Chaos.MaxDelay",
				Reason: fmt.Sprintf("%v exceeds the %v perturbation bound (delays past one base put latency would reorder staged payloads)", c.MaxDelay, fabric.MaxChaosDelay)}
		}
		if c.LookaheadScale < 0 || c.LookaheadScale > 1 {
			return &ScenarioError{Field: "Chaos.LookaheadScale",
				Reason: fmt.Sprintf("scale %v outside [0, 1]", c.LookaheadScale)}
		}
		if c.LookaheadBoost < 0 {
			return &ScenarioError{Field: "Chaos.LookaheadBoost",
				Reason: fmt.Sprintf("negative boost %v", c.LookaheadBoost)}
		}
	}
	return nil
}

// phaseSpec is one phase with every scenario-level default applied.
type phaseSpec struct {
	name       string
	traffic    string
	rounds     int
	burst      int
	mix        []ElementMix
	wsum       int
	arrival    Arrival
	swap       *Swap
	fail       []Fail
	rejoin     []Rejoin
	arg1Random bool
	// fieldPrefix locates this phase in ScenarioError fields: "" for the
	// implicit phase of a phaseless scenario, "Phases[i]." otherwise.
	fieldPrefix string
}

// at names a field of this phase for error reporting.
func (spec *phaseSpec) at(field string) string { return spec.fieldPrefix + field }

// resolvePhases applies defaulting (a phaseless scenario is one closed-
// loop phase of the scenario pattern) and validates every resolved
// field. The returned specs are what Run plans from.
func (sc *Scenario) resolvePhases() ([]phaseSpec, error) {
	phases := sc.Phases
	if len(phases) == 0 {
		phases = []Phase{{}}
	}
	specs := make([]phaseSpec, len(phases))
	// downSet tracks which nodes are failed at each phase boundary, so
	// Fail/Rejoin sequencing errors (rejoining a live node, re-failing a
	// dead one) are static scenario errors, not runtime surprises.
	downSet := map[int]bool{}
	for i, ph := range phases {
		spec := phaseSpec{
			name:       ph.Name,
			traffic:    ph.Traffic,
			rounds:     ph.Rounds,
			burst:      ph.Burst,
			mix:        ph.Mix,
			arg1Random: ph.Arg1Random,
			swap:       ph.Swap,
			fail:       ph.Fail,
			rejoin:     ph.Rejoin,
		}
		if len(sc.Phases) > 0 {
			spec.fieldPrefix = fmt.Sprintf("Phases[%d].", i)
		}
		at := spec.at
		if spec.name == "" {
			spec.name = fmt.Sprintf("phase%d", i)
		}
		trafficInherited := spec.traffic == ""
		if trafficInherited {
			spec.traffic = string(sc.Pattern)
		}
		if _, ok := trafficRegistry[spec.traffic]; !ok {
			// An inherited unknown shape is the scenario Pattern's fault,
			// not the (empty) phase field's.
			field := at("Traffic")
			if trafficInherited {
				field = "Pattern"
			}
			return nil, &ScenarioError{Field: field,
				Reason: fmt.Sprintf("unknown traffic %q (registered: %v)", spec.traffic, TrafficNames())}
		}
		// When a phase inherits a scenario-level default, blame the field
		// the user actually set.
		inheritedAt := func(field string, inherited bool) string {
			if inherited {
				return field
			}
			return at(field)
		}
		roundsInherited := spec.rounds == 0
		if roundsInherited {
			spec.rounds = sc.Rounds
		}
		if spec.rounds < 1 {
			return nil, &ScenarioError{Field: inheritedAt("Rounds", roundsInherited),
				Reason: fmt.Sprintf("must be >= 1, have %d", spec.rounds)}
		}
		burstInherited := spec.burst == 0
		if burstInherited {
			spec.burst = sc.Burst
		}
		if spec.burst < 1 {
			return nil, &ScenarioError{Field: inheritedAt("Burst", burstInherited),
				Reason: fmt.Sprintf("must be >= 1, have %d", spec.burst)}
		}
		if len(spec.mix) == 0 {
			spec.mix = sc.Mix
		}
		if len(spec.mix) == 0 {
			spec.mix = DefaultMix()
		}
		// The spec owns its mix: defaulting below must not write through
		// to the caller's Scenario/Phase slices.
		spec.mix = append([]ElementMix(nil), spec.mix...)
		for j := range spec.mix {
			m := &spec.mix[j]
			if m.Pkg == "" {
				m.Pkg = DefaultPkg
			}
			// Fail fast on unregistered packages; element existence is
			// only checkable after the package builds (frameSizeFor).
			if _, ok := tcapp.Lookup(m.Pkg); !ok {
				return nil, &ScenarioError{Field: at(fmt.Sprintf("Mix[%d].Pkg", j)),
					Reason: fmt.Sprintf("unknown app %q (registered: %v)", m.Pkg, tcapp.Names())}
			}
			if m.Weight < 0 {
				return nil, &ScenarioError{Field: at(fmt.Sprintf("Mix[%d].Weight", j)),
					Reason: fmt.Sprintf("element %q has negative weight %d", m.Elem, m.Weight)}
			}
			spec.wsum += m.Weight
		}
		if spec.wsum <= 0 {
			return nil, &ScenarioError{Field: at("Mix"), Reason: "element mix has no positive weight"}
		}
		if ph.Arrival != nil {
			spec.arrival = *ph.Arrival
		} else {
			spec.arrival = sc.Arrival
		}
		ak, ok := arrivalKinds[spec.arrival.Kind]
		if !ok {
			return nil, &ScenarioError{Field: at("Arrival.Kind"),
				Reason: fmt.Sprintf("unknown arrival kind %d (registered: %v)", spec.arrival.Kind, ArrivalKindNames())}
		}
		if ak.validate != nil {
			if err := ak.validate(&spec.arrival, at); err != nil {
				return nil, err
			}
		}
		// Rejoins happen at phase open, fails At later in the phase: a
		// phase may legally rejoin a node and fail it again.
		for j, rj := range spec.rejoin {
			if rj.Node < 0 || rj.Node >= sc.Nodes {
				return nil, &ScenarioError{Field: at(fmt.Sprintf("Rejoin[%d].Node", j)),
					Reason: fmt.Sprintf("node %d out of range (%d nodes)", rj.Node, sc.Nodes)}
			}
			if !downSet[rj.Node] {
				return nil, &ScenarioError{Field: at(fmt.Sprintf("Rejoin[%d].Node", j)),
					Reason: fmt.Sprintf("node %d is not failed at this phase", rj.Node)}
			}
			delete(downSet, rj.Node)
		}
		for j, fl := range spec.fail {
			if fl.Node < 0 || fl.Node >= sc.Nodes {
				return nil, &ScenarioError{Field: at(fmt.Sprintf("Fail[%d].Node", j)),
					Reason: fmt.Sprintf("node %d out of range (%d nodes)", fl.Node, sc.Nodes)}
			}
			if fl.At < 0 {
				return nil, &ScenarioError{Field: at(fmt.Sprintf("Fail[%d].At", j)),
					Reason: fmt.Sprintf("negative failure offset %v", fl.At)}
			}
			if downSet[fl.Node] {
				return nil, &ScenarioError{Field: at(fmt.Sprintf("Fail[%d].Node", j)),
					Reason: fmt.Sprintf("node %d is already failed", fl.Node)}
			}
			downSet[fl.Node] = true
		}
		if spec.swap != nil {
			if spec.swap.Node < 0 || spec.swap.Node >= sc.Nodes {
				return nil, &ScenarioError{Field: at("Swap.Node"),
					Reason: fmt.Sprintf("node %d out of range (%d nodes)", spec.swap.Node, sc.Nodes)}
			}
			// Normalize the default once: the spec owns a copy, and every
			// downstream consumer (package building, the swap itself)
			// reads the resolved app name.
			sw := *spec.swap
			if sw.App == "" {
				sw.App = DefaultPkg
			}
			if _, ok := tcapp.Lookup(sw.App); !ok {
				return nil, &ScenarioError{Field: at("Swap.App"),
					Reason: fmt.Sprintf("unknown app %q (registered: %v)", sw.App, tcapp.Names())}
			}
			spec.swap = &sw
		}
		specs[i] = spec
	}
	return specs, nil
}

// packagesFor builds every application package the resolved phases
// reference, keyed by name.
func packagesFor(specs []phaseSpec) (map[string]*core.Package, error) {
	pkgs := map[string]*core.Package{}
	addApp := func(field, name string) error {
		if _, ok := pkgs[name]; ok {
			return nil
		}
		pkg, err := tcapp.Build(name)
		if err != nil {
			return &ScenarioError{Field: field, Reason: err.Error()}
		}
		pkgs[name] = pkg
		return nil
	}
	for i := range specs {
		spec := &specs[i]
		for j, m := range spec.mix {
			if err := addApp(spec.at(fmt.Sprintf("Mix[%d].Pkg", j)), m.Pkg); err != nil {
				return nil, err
			}
		}
		if spec.swap != nil {
			if err := addApp(spec.at("Swap.App"), spec.swap.App); err != nil {
				return nil, err
			}
		}
	}
	return pkgs, nil
}

// frameSizeFor sizes the shared mailbox geometry to the largest message
// any phase's mix can produce with the given payload.
func frameSizeFor(pkgs map[string]*core.Package, specs []phaseSpec, payload int) (int, error) {
	if payload < 0 || payload > MaxPayloadBytes {
		return 0, &ScenarioError{Field: "PayloadBytes",
			Reason: fmt.Sprintf("payload %d outside [0, %d]", payload, MaxPayloadBytes)}
	}
	max := 0
	seen := false
	for i := range specs {
		spec := &specs[i]
		for j, m := range spec.mix {
			seen = true
			pkg, ok := pkgs[m.Pkg]
			if !ok {
				return 0, &ScenarioError{Field: spec.at(fmt.Sprintf("Mix[%d].Pkg", j)),
					Reason: fmt.Sprintf("package %q not built", m.Pkg)}
			}
			// Local and injected entries both need an existing jam — a
			// Local call invokes the receiver's library copy by ID.
			elem, ok := pkg.Element(m.Elem)
			if !ok || elem.Kind != core.ElemJam {
				return 0, &ScenarioError{Field: spec.at(fmt.Sprintf("Mix[%d].Elem", j)),
					Reason: fmt.Sprintf("no jam %q in package %q", m.Elem, m.Pkg)}
			}
			var n int
			if m.Local {
				n = mailbox.PackLocal(1, 1, [2]uint64{}, make([]byte, payload)).WireLen()
			} else {
				var err error
				if n, err = core.InjectedFrameLen(elem, payload); err != nil {
					return 0, &ScenarioError{Field: spec.at(fmt.Sprintf("Mix[%d].Elem", j)), Reason: err.Error()}
				}
			}
			if n > max {
				max = n
			}
		}
	}
	if !seen {
		return 0, &ScenarioError{Field: "Mix", Reason: "no phase has any mix entries"}
	}
	if max <= 0 || max > maxFrameBytes {
		return 0, &ScenarioError{Field: "PayloadBytes",
			Reason: fmt.Sprintf("derived frame size %d outside (0, %d]", max, maxFrameBytes)}
	}
	return max, nil
}
