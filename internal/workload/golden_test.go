package workload

import "testing"

// goldenRun pins one scenario's observable outcome: the fabric-wide
// digest, the exact simulated finish time, and the executed-injection
// count. The expectations were captured on the pre-PR-3 implementation
// (container/heap engine, per-message heap allocation everywhere), so
// they prove the allocation-free hot path is a pure host-side
// optimization: pooling, the 4-ary event heap, the decoded-jam cache,
// and the lazily mapped address spaces change neither message order nor
// simulated timing by a single tick.
//
// If an intentional model change moves these numbers, re-capture them in
// one dedicated commit — never alongside a performance change, or the
// equivalence evidence is lost.
type goldenRun struct {
	pattern Pattern
	nodes   int
	burst   int
	seed    uint64

	digest  uint64
	simTime int64
	inj     int
	swapped bool
	hotNode int
}

// Two seed/shape points per pattern: the benchmark shape (8 nodes, burst
// 8, default seed) and a smaller off-default shape on a different seed.
var goldenRuns = []goldenRun{
	{Fanout, 8, 8, 0x7c2c2021, 0xdc88806bb77ecbe0, 63237690, 112, false, -1},
	{AllToAll, 8, 8, 0x7c2c2021, 0x269bfefd7c3223c0, 64640105, 896, false, -1},
	{Hotspot, 8, 8, 0x7c2c2021, 0xfc58e0defda2e9b0, 70037311, 784, true, 0},
	{Fanout, 6, 4, 0x51edba5e, 0xf0015dbce33297d0, 22211178, 40, false, -1},
	{AllToAll, 6, 4, 0x51edba5e, 0x37a43f99ad3f3b80, 22825178, 240, false, -1},
	{Hotspot, 6, 4, 0x51edba5e, 0x441fa5f0335082e0, 22588284, 200, true, -2},
}

// TestGoldenDigests pins bit-identical digests and simulated times for
// fixed seeds across all three workload patterns.
func TestGoldenDigests(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(string(g.pattern), func(t *testing.T) {
			sc := DefaultScenario(g.pattern, g.nodes)
			sc.Rounds = 2
			sc.Burst = g.burst
			sc.Seed = g.seed
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Digest != g.digest {
				t.Errorf("digest = %#x, want %#x", res.Digest, g.digest)
			}
			if int64(res.SimTime) != g.simTime {
				t.Errorf("simulated time = %d, want %d", int64(res.SimTime), g.simTime)
			}
			if res.Injections != g.inj {
				t.Errorf("injections = %d, want %d", res.Injections, g.inj)
			}
			if res.Swapped != g.swapped {
				t.Errorf("swapped = %v, want %v", res.Swapped, g.swapped)
			}
			if g.hotNode != -2 && res.HotNode != g.hotNode {
				t.Errorf("hot node = %d, want %d", res.HotNode, g.hotNode)
			}
			var errs int
			for _, nr := range res.PerNode {
				errs += nr.Errors
			}
			if errs != 0 {
				t.Errorf("%d handler errors in a golden run", errs)
			}
		})
	}
}

// TestGoldenRepeatable re-runs one scenario twice in the same process:
// pooled frames, futures, and engine queues must leave no state behind
// that could couple two runs.
func TestGoldenRepeatable(t *testing.T) {
	sc := DefaultScenario(Hotspot, 8)
	sc.Rounds = 2
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.SimTime != b.SimTime || a.Injections != b.Injections {
		t.Fatalf("back-to-back runs diverged: %#x/%d/%d vs %#x/%d/%d",
			a.Digest, a.SimTime, a.Injections, b.Digest, b.SimTime, b.Injections)
	}
}
