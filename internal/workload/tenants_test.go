package workload

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"twochains/internal/sim"
)

// wantTenantError asserts both Validate and Run reject the scenario
// with a *ScenarioError blaming the expected field.
func wantTenantError(t *testing.T, sc Scenario, field string) {
	t.Helper()
	for _, err := range []error{sc.Validate(), func() error { _, err := Run(sc); return err }()} {
		var se *ScenarioError
		if !errors.As(err, &se) {
			t.Fatalf("error = %v, want *ScenarioError for %s", err, field)
		}
		if se.Field != field {
			t.Fatalf("blamed %q (%s), want %q", se.Field, se.Reason, field)
		}
	}
}

// tenantScenario is the shared small multi-tenant fixture: two tenants
// of unequal weight offering all-to-all open-loop traffic.
func tenantScenario(nodes int) Scenario {
	sc := DefaultScenario(AllToAll, nodes)
	sc.Rounds = 2
	sc.Burst = 4
	sc.Seed = 0x7c2c2025
	sc.Arrival = Arrival{Kind: Poisson, RatePerSec: 150_000}
	sc.Mix = []ElementMix{{Elem: "jam_iput", Weight: 1}}
	sc.Tenants = []TenantSpec{
		{Name: "gold", Weight: 3},
		{Name: "bronze", Weight: 1},
	}
	return sc
}

// TestTenantValidation pins the typed validation of the tenant surface:
// every rejection is a *ScenarioError naming the offending field.
func TestTenantValidation(t *testing.T) {
	base := tenantScenario(4)

	sc := base
	sc.Tenants = []TenantSpec{{Name: "gold", Weight: 0}}
	wantTenantError(t, sc, "Tenants[0].Weight")

	sc = base
	sc.Tenants = []TenantSpec{{Name: "", Weight: 1}}
	wantTenantError(t, sc, "Tenants[0].Name")

	sc = base
	sc.Tenants = []TenantSpec{{Name: "gold", Weight: 1}, {Name: "gold", Weight: 2}}
	wantTenantError(t, sc, "Tenants[1].Name")

	sc = base
	sc.Tenants = []TenantSpec{{Name: "gold", Weight: 1, Admit: &AdmitSpec{RatePerSec: 0}}}
	wantTenantError(t, sc, "Tenants[0].Admit.RatePerSec")

	sc = base
	sc.Tenants = []TenantSpec{{Name: "gold", Weight: 1, Load: -2}}
	wantTenantError(t, sc, "Tenants[0].Load")

	// A tenant phase referencing an unregistered app blames the tenant's
	// phase field, not the scenario's.
	sc = base
	sc.Tenants = []TenantSpec{{Name: "gold", Weight: 1, Phases: []Phase{{
		Mix: []ElementMix{{Pkg: "no-such-app", Elem: "jam_x", Weight: 1}},
	}}}}
	wantTenantError(t, sc, "Tenants[0].Phases[0].Mix[0].Pkg")

	// RIED swaps stay out of tenant phases.
	sc = base
	sc.Tenants = []TenantSpec{{Name: "gold", Weight: 1, Phases: []Phase{{
		Mix:  []ElementMix{{Elem: "jam_iput", Weight: 1}},
		Swap: &Swap{Node: 0},
	}}}}
	wantTenantError(t, sc, "Tenants[0].Phases[0].Swap")

	if err := base.Validate(); err != nil {
		t.Fatalf("valid tenant scenario rejected: %v", err)
	}
}

// TestTenantOverloadWeightedShare is the acceptance check of the fair
// queue: at 4x offered load, two tenants weighted 3:1 must measure
// per-tenant goodput within 10% of a 3:1 share inside the overlap
// window, and every planned message must be accounted for.
func TestTenantOverloadWeightedShare(t *testing.T) {
	res, err := Run(OverloadScenario(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("tenants reported: %d", len(res.Tenants))
	}
	gold, bronze := res.Tenants[0], res.Tenants[1]
	if gold.Name != "gold" || bronze.Name != "bronze" {
		t.Fatalf("tenant order: %s, %s", gold.Name, bronze.Name)
	}
	if gold.GoodputPerSec <= 0 || bronze.GoodputPerSec <= 0 {
		t.Fatalf("goodput: gold %v bronze %v", gold.GoodputPerSec, bronze.GoodputPerSec)
	}
	ratio := gold.GoodputPerSec / bronze.GoodputPerSec
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("goodput ratio %.3f outside 3:1 +/- 10%% (gold %.0f/s, bronze %.0f/s, window %v)",
			ratio, gold.GoodputPerSec, bronze.GoodputPerSec, res.OverlapWindow)
	}
	for _, tr := range res.Tenants {
		if tr.Serviced+tr.Dropped != tr.Planned {
			t.Errorf("tenant %s: serviced %d + dropped %d != planned %d",
				tr.Name, tr.Serviced, tr.Dropped, tr.Planned)
		}
		if tr.P99Latency <= 0 {
			t.Errorf("tenant %s: p99 latency %v", tr.Name, tr.P99Latency)
		}
	}
	if res.OverlapWindow <= 0 {
		t.Errorf("overlap window %v", res.OverlapWindow)
	}
}

// TestTenantStarvationResistance pins isolation under an aggressor: a
// 10x overload tenant must not push a well-behaved equal-weight tenant's
// serviced share below ~90% of its weight share of the overlap window.
func TestTenantStarvationResistance(t *testing.T) {
	sc := tenantScenario(4)
	// Both tenants offer more than their half of the node service
	// capacity, the aggressor 10x more: only the fair queue keeps the
	// victim at its share.
	sc.Rounds = 8
	sc.Arrival = Arrival{Kind: Poisson, RatePerSec: 250_000}
	sc.Tenants = []TenantSpec{
		{Name: "aggressor", Weight: 1, Load: 10},
		{Name: "victim", Weight: 1},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	agg, vic := res.Tenants[0], res.Tenants[1]
	if vic.GoodputPerSec <= 0 {
		t.Fatalf("victim starved outright: %+v", vic)
	}
	// Equal weights: inside the overlap window the victim is entitled to
	// half the serviced throughput.
	share := vic.GoodputPerSec / (vic.GoodputPerSec + agg.GoodputPerSec)
	if share < 0.45 {
		t.Errorf("victim share %.3f under a 10x aggressor, want >= 0.45 (victim %.0f/s, aggressor %.0f/s)",
			share, vic.GoodputPerSec, agg.GoodputPerSec)
	}
}

// TestTenantAdmissionPolicies drives a tenant into its token bucket both
// ways: Drop sheds load (accounting still balances), Defer backs the
// sender off until every message eventually lands.
func TestTenantAdmissionPolicies(t *testing.T) {
	mk := func(deferPolicy bool) Scenario {
		sc := DefaultScenario(AllToAll, 3)
		sc.Rounds = 2
		sc.Burst = 4
		sc.Seed = 0x7c2c2025
		sc.Mix = []ElementMix{{Elem: "jam_iput", Weight: 1}}
		sc.Tenants = []TenantSpec{{
			Name: "metered", Weight: 1,
			Admit: &AdmitSpec{RatePerSec: 50_000, Burst: 4, Defer: deferPolicy},
		}}
		return sc
	}
	res, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tenants[0]
	if tr.Dropped == 0 {
		t.Errorf("drop policy shed nothing: %+v", tr)
	}
	if tr.Serviced+tr.Dropped != tr.Planned {
		t.Errorf("drop accounting: serviced %d + dropped %d != planned %d", tr.Serviced, tr.Dropped, tr.Planned)
	}

	res, err = Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	tr = res.Tenants[0]
	if tr.Deferred == 0 {
		t.Errorf("defer policy never deferred: %+v", tr)
	}
	if tr.Dropped != 0 || tr.Serviced != tr.Planned {
		t.Errorf("defer policy lost messages: %+v", tr)
	}
}

// TestTenantWorkersSweepDeterminism extends the parallel determinism
// property to tenant-sharded scenarios: equal seeds produce bit-identical
// digests, simulated times, and per-tenant results for every worker
// count, with and without speculative windows.
func TestTenantWorkersSweepDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, seed := range []uint64{0x7c2c2021, 0x51edba5e} {
		sc := tenantScenario(9)
		sc.Shards = 4
		sc.Seed = seed
		// A second phase per tenant exercises the per-lane phase barrier
		// under the parallel engine.
		sc.Tenants = []TenantSpec{
			{Name: "gold", Weight: 3, Phases: []Phase{
				{Name: "warm", Rounds: 1, Mix: []ElementMix{{Elem: "jam_iput", Weight: 1}}},
				{Name: "burst", Arrival: &Arrival{Kind: Poisson, RatePerSec: 150_000},
					Mix: []ElementMix{{Elem: "jam_sssum", Weight: 1}}},
			}},
			{Name: "bronze", Weight: 1},
		}
		base, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep()[1:] {
			for _, spec := range []sim.Duration{0, specBudget} {
				if spec > 0 && w != 4 {
					continue // one speculative leg keeps -race in budget
				}
				runtime.GOMAXPROCS(w)
				scw := sc
				scw.Workers = w
				scw.Speculation = spec
				res, err := Run(scw)
				if err != nil {
					t.Fatal(err)
				}
				if res.Digest != base.Digest || res.SimTime != base.SimTime || res.Injections != base.Injections {
					t.Errorf("seed %#x workers %d spec %d: %#x/%d/%d, want %#x/%d/%d",
						seed, w, spec, res.Digest, int64(res.SimTime), res.Injections,
						base.Digest, int64(base.SimTime), base.Injections)
				}
				if !reflect.DeepEqual(res.Tenants, base.Tenants) {
					t.Errorf("seed %#x workers %d spec %d: per-tenant results diverged:\n%+v\nwant\n%+v",
						seed, w, spec, res.Tenants, base.Tenants)
				}
			}
		}
	}
}

// TestTenantRunRepeatable re-runs one multi-tenant scenario twice
// in-process: per-tenant namespaces, arbiters, and buckets must leave no
// cross-run state.
func TestTenantRunRepeatable(t *testing.T) {
	sc := tenantScenario(4)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.SimTime != b.SimTime || !reflect.DeepEqual(a.Tenants, b.Tenants) {
		t.Fatalf("back-to-back tenant runs diverged:\n%+v\nvs\n%+v", a.Tenants, b.Tenants)
	}
}
