package workload

import (
	"fmt"
	"sort"

	"twochains/internal/sim"
)

// arrivalSpec describes one registered arrival process. Validate checks
// the Arrival parameters during scenario resolution (at builds the
// blame-path for ScenarioError fields); Gen draws the n cumulative
// arrival offsets for one sender, in issue order, from the scenario
// RNG. A nil Gen marks a self-clocked (closed-loop) process: bursts
// chain on completion instead of firing at precomputed instants.
type arrivalSpec struct {
	name     string
	validate func(a *Arrival, at func(string) string) error
	gen      func(a *Arrival, rng *sim.RNG, n int) []sim.Duration
}

var arrivalKinds = map[ArrivalKind]*arrivalSpec{}

// RegisterArrival registers an arrival process under kind. Scenario
// validation enumerates registered kinds instead of hardcoding a
// switch, so third-party processes validate and generate through the
// same path as the built-ins. Registration happens at init time;
// re-registering a kind panics.
func RegisterArrival(kind ArrivalKind, name string, validate func(a *Arrival, at func(string) string) error, gen func(a *Arrival, rng *sim.RNG, n int) []sim.Duration) {
	if name == "" {
		panic("workload: RegisterArrival: empty name")
	}
	if _, dup := arrivalKinds[kind]; dup {
		panic(fmt.Sprintf("workload: RegisterArrival: kind %d already registered", kind))
	}
	arrivalKinds[kind] = &arrivalSpec{name: name, validate: validate, gen: gen}
}

// ArrivalKindNames lists the registered arrival kinds as "name(kind)"
// strings in kind order, for error messages.
func ArrivalKindNames() []string {
	kinds := make([]int, 0, len(arrivalKinds))
	for k := range arrivalKinds {
		kinds = append(kinds, int(k))
	}
	sort.Ints(kinds)
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = fmt.Sprintf("%s(%d)", arrivalKinds[ArrivalKind(k)].name, k)
	}
	return names
}

// openLoop reports whether the arrival kind fires bursts at precomputed
// instants (a registered generator) rather than chaining on completion.
func (a Arrival) openLoop() bool {
	s := arrivalKinds[a.Kind]
	return s != nil && s.gen != nil
}

func init() {
	RegisterArrival(ClosedLoop, "closed-loop", nil, nil)

	RegisterArrival(Poisson, "poisson",
		func(a *Arrival, at func(string) string) error {
			if a.RatePerSec <= 0 {
				return &ScenarioError{Field: at("Arrival.RatePerSec"),
					Reason: fmt.Sprintf("open-loop Poisson arrivals need a positive rate, have %v", a.RatePerSec)}
			}
			return nil
		},
		func(a *Arrival, rng *sim.RNG, n int) []sim.Duration {
			mean := float64(sim.Second) / a.RatePerSec
			out := make([]sim.Duration, n)
			var at float64
			for i := range out {
				at += rng.Exp(mean)
				out[i] = sim.Duration(at)
			}
			return out
		})

	RegisterArrival(MMPP, "mmpp",
		func(a *Arrival, at func(string) string) error {
			if a.RatePerSec <= 0 {
				return &ScenarioError{Field: at("Arrival.RatePerSec"),
					Reason: fmt.Sprintf("MMPP base state needs a positive rate, have %v", a.RatePerSec)}
			}
			if a.BurstRatePerSec <= 0 {
				return &ScenarioError{Field: at("Arrival.BurstRatePerSec"),
					Reason: fmt.Sprintf("MMPP burst state needs a positive rate, have %v", a.BurstRatePerSec)}
			}
			if a.MeanBase <= 0 {
				return &ScenarioError{Field: at("Arrival.MeanBase"),
					Reason: fmt.Sprintf("MMPP base-state sojourn must be positive, have %v", a.MeanBase)}
			}
			if a.MeanBurst <= 0 {
				return &ScenarioError{Field: at("Arrival.MeanBurst"),
					Reason: fmt.Sprintf("MMPP burst-state sojourn must be positive, have %v", a.MeanBurst)}
			}
			return nil
		},
		func(a *Arrival, rng *sim.RNG, n int) []sim.Duration {
			// Two-state Markov-modulated Poisson process: arrivals are
			// Poisson at the current state's rate; the state flips after an
			// exponentially distributed sojourn. Gaps that straddle a state
			// change are re-drawn at the new rate (memorylessness makes the
			// re-draw exact), consuming RNG draws in a fixed order so equal
			// seeds replay the same burst structure at every worker count.
			rate := [2]float64{a.RatePerSec, a.BurstRatePerSec}
			soj := [2]float64{float64(a.MeanBase), float64(a.MeanBurst)}
			out := make([]sim.Duration, n)
			state := 0
			rem := rng.Exp(soj[state])
			var at float64
			for i := 0; i < n; {
				gap := rng.Exp(float64(sim.Second) / rate[state])
				if gap <= rem {
					rem -= gap
					at += gap
					out[i] = sim.Duration(at)
					i++
					continue
				}
				at += rem
				state = 1 - state
				rem = rng.Exp(soj[state])
			}
			return out
		})

	RegisterArrival(Trace, "trace",
		func(a *Arrival, at func(string) string) error {
			if len(a.Trace) == 0 {
				return &ScenarioError{Field: at("Arrival.Trace"),
					Reason: "trace replay needs at least one recorded inter-arrival gap"}
			}
			for i, gap := range a.Trace {
				if gap < 0 {
					return &ScenarioError{Field: at(fmt.Sprintf("Arrival.Trace[%d]", i)),
						Reason: fmt.Sprintf("recorded inter-arrival gaps cannot be negative, have %v", gap)}
				}
			}
			return nil
		},
		func(a *Arrival, rng *sim.RNG, n int) []sim.Duration {
			// Recorded-trace replay: the scenario carries measured
			// inter-arrival gaps and each sender replays them cyclically.
			// No RNG is consumed — the trace is the randomness.
			out := make([]sim.Duration, n)
			var at sim.Duration
			for i := range out {
				at += a.Trace[i%len(a.Trace)]
				out[i] = at
			}
			return out
		})
}
