package workload

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"twochains/internal/sim"
)

// chaosScenario is the failure-injection composition the determinism
// sweep runs: perturbed fabric, an MMPP bursty phase, then a node
// failure mid-phase and its rejoin in a drain phase.
func chaosScenario(seed uint64, workers int) Scenario {
	sc := DefaultScenario(AllToAll, 9)
	sc.Burst = 4
	sc.Rounds = 2
	sc.Shards = 4
	sc.Seed = seed
	sc.Workers = workers
	sc.Chaos = &ChaosSpec{MinDelay: 20 * sim.Nanosecond, MaxDelay: 120 * sim.Nanosecond}
	sc.Phases = []Phase{
		{Name: "bursty", Arrival: &Arrival{Kind: MMPP, RatePerSec: 2e6,
			BurstRatePerSec: 2e7, MeanBase: 4 * sim.Microsecond, MeanBurst: sim.Microsecond}},
		{Name: "failing", Fail: []Fail{{Node: 2, At: sim.Microsecond}}},
		{Name: "drain", Rejoin: []Rejoin{{Node: 2}}},
	}
	return sc
}

// TestChaosDeterminismSweep is the acceptance property of the chaos
// suite: with fabric perturbation, MMPP arrivals, and a mid-run node
// failure plus rejoin, equal seeds produce bit-identical digests,
// simulated times, injection counts, and loss ledgers at every worker
// count, with and without speculative windows.
func TestChaosDeterminismSweep(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, seed := range []uint64{0x7c2c2021, 0x51edba5e} {
		base, err := Run(chaosScenario(seed, 1))
		if err != nil {
			t.Fatalf("seed %#x sequential: %v", seed, err)
		}
		if base.Lost == 0 {
			t.Fatalf("seed %#x: failure injected but nothing was lost", seed)
		}
		for _, w := range workerSweep()[1:] {
			for _, spec := range []sim.Duration{0, specBudget} {
				runtime.GOMAXPROCS(w)
				sc := chaosScenario(seed, w)
				sc.Speculation = spec
				res, err := Run(sc)
				if err != nil {
					t.Fatalf("seed %#x workers %d spec %d: %v", seed, w, spec, err)
				}
				if res.Digest != base.Digest || res.SimTime != base.SimTime ||
					res.Injections != base.Injections || res.Lost != base.Lost {
					t.Errorf("seed %#x workers %d spec %d: %#x/%d/%d/%d lost, want %#x/%d/%d/%d lost",
						seed, w, spec, res.Digest, int64(res.SimTime), res.Injections, res.Lost,
						base.Digest, int64(base.SimTime), base.Injections, base.Lost)
				}
			}
		}
	}
}

// TestFailRejoinDrain pins the loss ledger of a fail/rejoin run: the
// run drains to quiescence (Run's internal accounting already enforces
// executed + errors + lost == planned), the dead node's inbound backlog
// and abandoned plan are lost rather than hung, the drain phase reaches
// the rejoined node again, and a repeat run reproduces the ledger bit
// for bit.
func TestFailRejoinDrain(t *testing.T) {
	sc := DefaultScenario(AllToAll, 6)
	sc.Burst = 4
	sc.Rounds = 2
	sc.Seed = 0x7c2c2021
	sc.Phases = []Phase{
		{Name: "steady"},
		{Name: "failing", Fail: []Fail{{Node: 1, At: 500 * sim.Nanosecond}}},
		{Name: "drain", Rejoin: []Rejoin{{Node: 1}}},
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lost == 0 {
		t.Fatal("mid-phase failure lost nothing: the fail did not bite")
	}
	planned := 0
	for _, ph := range a.Phases {
		planned += ph.Planned
	}
	var errSum int
	for _, nr := range a.PerNode {
		errSum += nr.Errors
	}
	if a.Injections+errSum+a.Lost != planned {
		t.Fatalf("ledger off: %d executed + %d errors + %d lost != %d planned",
			a.Injections, errSum, a.Lost, planned)
	}
	// The drain phase must actually reach the rejoined node: its executed
	// count ends above what the fail froze it at.
	if a.PerNode[1].Executed == 0 {
		t.Fatal("rejoined node executed nothing")
	}
	if a.Phases[2].End <= a.Phases[1].End {
		t.Fatal("drain phase did not advance simulated time")
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.SimTime != b.SimTime || a.Lost != b.Lost {
		t.Fatalf("repeat run diverged: %#x/%d/%d vs %#x/%d/%d",
			a.Digest, int64(a.SimTime), a.Lost, b.Digest, int64(b.SimTime), b.Lost)
	}
}

// TestChaosLookaheadFuzzViolation is the adversarial leg: a chaos
// config that misadvertises the backend's lookahead (boosting it past
// the truth) must be caught by the parallel engine as a loud, specific
// diagnostic — speculation rollback plus panic — never absorbed as
// silent digest corruption.
func TestChaosLookaheadFuzzViolation(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead-fuzz run did not trip the violation diagnostic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "lookahead contract violated") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	sc := DefaultScenario(Hotspot, 9)
	sc.Burst = 4
	sc.Rounds = 4
	sc.Shards = 4
	sc.Workers = 4
	sc.Speculation = specBudget
	sc.Seed = 0x7c2c2021
	// No delay perturbation — pure contract fuzz: the advertised
	// lookahead is a microsecond larger than the backend's true bound, so
	// real arrivals land inside ranges the engine believed safe to
	// speculate through.
	sc.Chaos = &ChaosSpec{LookaheadBoost: sim.Microsecond}
	res, err := Run(sc)
	t.Fatalf("misadvertised lookahead was silently absorbed: res=%+v err=%v", res, err)
}

// TestArrivalTraceReplay pins the recorded-trace generator: replayed
// gaps are deterministic (no RNG consumed), cyclic, and drain to exact
// completion.
func TestArrivalTraceReplay(t *testing.T) {
	sc := DefaultScenario(AllToAll, 4)
	sc.Burst = 2
	sc.Rounds = 2
	sc.Arrival = Arrival{Kind: Trace, Trace: []sim.Duration{
		100 * sim.Nanosecond, 500 * sim.Nanosecond, 2 * sim.Microsecond}}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	var planned int
	for _, ph := range a.Phases {
		planned += ph.Planned
	}
	if a.Injections != planned {
		t.Fatalf("trace replay executed %d of %d planned", a.Injections, planned)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.SimTime != b.SimTime {
		t.Fatalf("trace replay diverged across runs: %#x/%d vs %#x/%d",
			a.Digest, int64(a.SimTime), b.Digest, int64(b.SimTime))
	}
}

// TestArrivalValidation pins the registry-driven arrival validation and
// the failure-plan static checks: every rejection is a typed
// *ScenarioError naming the offending field.
func TestArrivalValidation(t *testing.T) {
	base := func() Scenario {
		sc := DefaultScenario(AllToAll, 4)
		sc.Timing = false
		return sc
	}
	cases := []struct {
		name  string
		mut   func(*Scenario)
		field string
	}{
		{"unknown kind", func(sc *Scenario) { sc.Arrival = Arrival{Kind: 99} }, "Arrival.Kind"},
		{"poisson no rate", func(sc *Scenario) { sc.Arrival = Arrival{Kind: Poisson} }, "Arrival.RatePerSec"},
		{"mmpp no burst rate", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: MMPP, RatePerSec: 1e6, MeanBase: 1, MeanBurst: 1}
		}, "Arrival.BurstRatePerSec"},
		{"mmpp no sojourn", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: MMPP, RatePerSec: 1e6, BurstRatePerSec: 1e7, MeanBurst: 1}
		}, "Arrival.MeanBase"},
		{"empty trace", func(sc *Scenario) { sc.Arrival = Arrival{Kind: Trace} }, "Arrival.Trace"},
		{"negative trace gap", func(sc *Scenario) {
			sc.Arrival = Arrival{Kind: Trace, Trace: []sim.Duration{10, -1}}
		}, "Arrival.Trace[1]"},
		{"phase arrival blame", func(sc *Scenario) {
			sc.Phases = []Phase{{}, {Arrival: &Arrival{Kind: 77}}}
		}, "Phases[1].Arrival.Kind"},
		{"fail out of range", func(sc *Scenario) {
			sc.Phases = []Phase{{Fail: []Fail{{Node: 9}}}}
		}, "Phases[0].Fail[0].Node"},
		{"negative fail offset", func(sc *Scenario) {
			sc.Phases = []Phase{{Fail: []Fail{{Node: 1, At: -1}}}}
		}, "Phases[0].Fail[0].At"},
		{"double fail", func(sc *Scenario) {
			sc.Phases = []Phase{{Fail: []Fail{{Node: 1}}}, {Fail: []Fail{{Node: 1}}}}
		}, "Phases[1].Fail[0].Node"},
		{"rejoin live node", func(sc *Scenario) {
			sc.Phases = []Phase{{Rejoin: []Rejoin{{Node: 1}}}}
		}, "Phases[0].Rejoin[0].Node"},
		{"chaos bounds", func(sc *Scenario) {
			sc.Chaos = &ChaosSpec{MinDelay: 10, MaxDelay: 5}
		}, "Chaos.MinDelay"},
		{"chaos scale", func(sc *Scenario) {
			sc.Chaos = &ChaosSpec{LookaheadScale: 1.5}
		}, "Chaos.LookaheadScale"},
		{"bare chaos backend", func(sc *Scenario) { sc.Backend = "chaos" }, "Backend"},
		{"tenant fail", func(sc *Scenario) {
			sc.Phases = []Phase{{Fail: []Fail{{Node: 1}}}}
			sc.Tenants = []TenantSpec{{Name: "gold", Weight: 1}}
		}, "Fail"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc := base()
			c.mut(&sc)
			err := sc.Validate()
			var se *ScenarioError
			if !errors.As(err, &se) {
				t.Fatalf("Validate() = %v, want *ScenarioError", err)
			}
			if !strings.Contains(se.Field, c.field) {
				t.Fatalf("blamed field %q, want one containing %q (reason: %s)", se.Field, c.field, se.Reason)
			}
			// Run must reject identically.
			if _, rerr := Run(sc); rerr == nil || rerr.Error() != err.Error() {
				t.Fatalf("Run rejection %v != Validate rejection %v", rerr, err)
			}
		})
	}
	// A legal fail -> rejoin -> fail-again sequence passes.
	sc := base()
	sc.Phases = []Phase{
		{Fail: []Fail{{Node: 1, At: 100}}},
		{Rejoin: []Rejoin{{Node: 1}}, Fail: []Fail{{Node: 1, At: 100}}},
		{Rejoin: []Rejoin{{Node: 1}}},
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("legal fail/rejoin cycle rejected: %v", err)
	}
}
