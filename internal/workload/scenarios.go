package workload

// Composed scenarios over the tcapp application packages. These are the
// stock demonstrations of the Traffic/Phase surface — plain data, built
// by ordinary functions — and double as the perf-trajectory points for
// the widened workload surface (cmd/tcperf -e scenarios, BENCH_PR4).

// KVStoreMix is the standard kvstore traffic: mostly puts, some gets,
// an occasional scan.
func KVStoreMix() []ElementMix {
	return []ElementMix{
		{Pkg: "kvstore", Elem: "jam_kv_put", Weight: 4},
		{Pkg: "kvstore", Elem: "jam_kv_get", Weight: 3},
		{Pkg: "kvstore", Elem: "jam_kv_scan", Weight: 1},
		{Pkg: "kvstore", Elem: "jam_kv_get", Weight: 1, Local: true},
	}
}

// KVStoreScenario is the open-loop composed scenario: every node offers
// kvstore traffic to every other node at Poisson arrivals, so queueing
// under offered load (credit stalls included) is part of the
// measurement rather than hidden by self-clocking.
func KVStoreScenario(nodes int) Scenario {
	return Scenario{
		Pattern:      AllToAll,
		Nodes:        nodes,
		Burst:        4,
		Rounds:       2,
		PayloadBytes: 32,
		Seed:         0x7c2c2024,
		Timing:       true,
		Phases: []Phase{{
			Name:       "kv-openloop",
			Arrival:    &Arrival{Kind: Poisson, RatePerSec: 250_000},
			Mix:        KVStoreMix(),
			Arg1Random: true, // puts carry a drawn value word
		}},
	}
}

// OverloadBaseRate is the per-sender Poisson rate (bursts/sec) that
// OverloadScenario calls 1x offered load. It is calibrated so that at
// mult = 1 the fabric keeps up and past mult ~= 2 the receivers are the
// bottleneck — overload behaviour (weighted-fair shares, credit-stall
// queueing) dominates the measurement.
const OverloadBaseRate = 120_000.0

// OverloadScenario is the stock multi-tenant overload composition: two
// tenants — "gold" (weight 3) and "bronze" (weight 1) — offer identical
// all-to-all tcbench traffic open-loop at mult times the calibrated 1x
// rate. Under overload the weighted-fair receivers should service them
// 3:1 inside the overlap window regardless of arrival interleaving;
// Result.Tenants reports each tenant's goodput, p99 simulated latency,
// and drop/defer counts (zero here — admission is left off so the fair
// queue, not the issue path, is the mechanism under test).
func OverloadScenario(nodes int, mult float64) Scenario {
	if mult <= 0 {
		mult = 1
	}
	return Scenario{
		Pattern:      AllToAll,
		Nodes:        nodes,
		Burst:        4,
		Rounds:       12,
		PayloadBytes: 32,
		Seed:         0x7c2c2025,
		Timing:       true,
		Phases: []Phase{{
			Name:    "overload",
			Arrival: &Arrival{Kind: Poisson, RatePerSec: OverloadBaseRate * mult},
			Mix:     []ElementMix{{Elem: "jam_iput", Weight: 1}},
		}},
		Tenants: []TenantSpec{
			{Name: "gold", Weight: 3},
			{Name: "bronze", Weight: 1},
		},
	}
}

// MultiPhaseScenario is the multi-phase, multi-package composed
// scenario: a tcbench all-to-all warmup, then a fanout phase that opens
// with a RIED swap on node 1 (the remote-linking dynamic update as
// phase data), then a skewed drain mixing kvstore and histo traffic
// with tcbench Local Function calls — three packages on the wire in one
// phase.
func MultiPhaseScenario(nodes int) Scenario {
	return Scenario{
		Pattern:      Hotspot, // default traffic for phases that don't name one
		Nodes:        nodes,
		Burst:        6,
		Rounds:       2,
		PayloadBytes: 48,
		Seed:         0x7c2c2024,
		Timing:       true,
		DisableSwap:  true, // the swap is phase data below, not the hotspot builtin
		Phases: []Phase{
			{
				Name:    "warmup",
				Traffic: string(AllToAll),
				Rounds:  1,
				Mix:     DefaultMix(),
			},
			{
				Name:    "swap",
				Traffic: string(Fanout),
				Swap:    &Swap{Node: 1, App: "tcbench"},
				Mix: []ElementMix{
					{Elem: "jam_iput", Weight: 1},
				},
			},
			{
				Name:       "drain",
				Arg1Random: true,
				Mix: []ElementMix{
					{Pkg: "kvstore", Elem: "jam_kv_put", Weight: 3},
					{Pkg: "kvstore", Elem: "jam_kv_get", Weight: 2},
					{Pkg: "histo", Elem: "jam_hist_add", Weight: 2},
					{Pkg: "histo", Elem: "jam_hist_sum", Weight: 1},
					{Pkg: "tcbench", Elem: "jam_sssum", Weight: 1, Local: true},
				},
			},
		},
	}
}
