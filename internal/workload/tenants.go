package workload

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"twochains/internal/core"
	"twochains/internal/fabric"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tc"
	"twochains/internal/tenant"
)

// AdmitSpec is a tenant's token-bucket admission configuration in
// scenario form (see tenant.Admission for the semantics).
type AdmitSpec struct {
	// RatePerSec is the sustained admission rate per sender node in
	// messages per simulated second (> 0).
	RatePerSec float64
	// Burst is the bucket capacity in messages (0 = default).
	Burst float64
	// Defer rejects with a retry hint instead of dropping; the driver
	// honours the hint and re-issues the burst.
	Defer bool
	// StallPenalty deducts tokens per newly observed credit stall on the
	// issuing channel — congestion feedback from the mailbox telemetry.
	StallPenalty float64
}

// TenantSpec declares one tenant of a multi-tenant scenario.
type TenantSpec struct {
	Name string
	// Weight is the tenant's fair-share weight at every receiving node
	// (>= 1).
	Weight int
	// Load scales the tenant's open-loop Poisson rates (0 = 1.0) — the
	// overload-composition knob: the same phase list at 2x, 10x, ...
	Load float64
	// Admit enables token-bucket admission control (nil = none).
	Admit *AdmitSpec
	// Untrusted prices an isolation boundary per invocation at the
	// receiver (model.TenantIsolationCost).
	Untrusted bool
	// Phases is the tenant's own phase list; empty reuses the
	// scenario-level phases. RIED swaps are not supported inside tenant
	// phases.
	Phases []Phase
}

// TenantResult is one tenant's slice of a multi-tenant run.
type TenantResult struct {
	Name   string
	Weight int
	// Planned counts the tenant's planned messages; Serviced those that
	// completed receiver-side service (handler faults included); Dropped
	// and Deferred the admission outcomes (Deferred counts deferral
	// events — one burst can defer more than once); Errors the
	// receiver-side failures.
	Planned  int
	Serviced int
	Dropped  int
	Deferred int
	Errors   int
	// GoodputPerSec is the tenant's serviced messages per simulated
	// second inside the run's overlap window (the fair-share comparison
	// metric); RatePerSec the whole-run average.
	GoodputPerSec float64
	RatePerSec    float64
	// P99Latency is the 99th percentile of issue-to-delivery simulated
	// latency (credit stalls under overload push it up); LastService the
	// tenant's final service stamp.
	P99Latency  sim.Duration
	LastService sim.Duration
	// Phases are the tenant's per-phase results.
	Phases []PhaseResult
}

// laneSpec is one tenant with its resolved phase specs.
type laneSpec struct {
	cfg   tenant.Config
	load  float64
	specs []phaseSpec
}

// resolveTenants validates the tenant surface and resolves each
// tenant's phase list (its own, or the scenario-level base), scaling
// open-loop rates by Load.
func (sc *Scenario) resolveTenants(base []phaseSpec) ([]laneSpec, error) {
	lanes := make([]laneSpec, len(sc.Tenants))
	seen := map[string]bool{}
	for i, ts := range sc.Tenants {
		at := func(f string) string { return fmt.Sprintf("Tenants[%d].%s", i, f) }
		if ts.Name == "" {
			return nil, &ScenarioError{Field: at("Name"), Reason: "empty tenant name"}
		}
		if seen[ts.Name] {
			return nil, &ScenarioError{Field: at("Name"), Reason: fmt.Sprintf("duplicate tenant %q", ts.Name)}
		}
		seen[ts.Name] = true
		if ts.Weight < 1 {
			return nil, &ScenarioError{Field: at("Weight"),
				Reason: fmt.Sprintf("fair-share weight must be >= 1, have %d", ts.Weight)}
		}
		if ts.Load < 0 {
			return nil, &ScenarioError{Field: at("Load"), Reason: fmt.Sprintf("negative load factor %v", ts.Load)}
		}
		load := ts.Load
		if load == 0 {
			load = 1
		}
		var specs []phaseSpec
		if len(ts.Phases) > 0 {
			tsc := *sc
			tsc.Phases = ts.Phases
			tsc.Tenants = nil
			var err error
			specs, err = tsc.resolvePhases()
			if err != nil {
				var se *ScenarioError
				if errors.As(err, &se) {
					return nil, &ScenarioError{Field: fmt.Sprintf("Tenants[%d].%s", i, se.Field), Reason: se.Reason}
				}
				return nil, err
			}
			for j := range specs {
				specs[j].fieldPrefix = fmt.Sprintf("Tenants[%d].", i) + specs[j].fieldPrefix
			}
		} else {
			// The tenant rides the scenario-level phases; copy so Load
			// scaling below stays per-tenant.
			specs = append([]phaseSpec(nil), base...)
		}
		for j := range specs {
			if specs[j].swap != nil {
				return nil, &ScenarioError{Field: specs[j].at("Swap"),
					Reason: "RIED swaps are not supported in tenant phases"}
			}
			if len(specs[j].fail) > 0 || len(specs[j].rejoin) > 0 {
				return nil, &ScenarioError{Field: specs[j].at("Fail"),
					Reason: "node fail/rejoin is not supported in multi-tenant mode"}
			}
			switch specs[j].arrival.Kind {
			case Poisson:
				specs[j].arrival.RatePerSec *= load
			case MMPP:
				specs[j].arrival.RatePerSec *= load
				specs[j].arrival.BurstRatePerSec *= load
			}
		}
		lanes[i] = laneSpec{load: load, specs: specs, cfg: tenant.Config{
			Name: ts.Name, Weight: ts.Weight, Untrusted: ts.Untrusted,
		}}
		if ts.Admit != nil {
			if !(ts.Admit.RatePerSec > 0) {
				return nil, &ScenarioError{Field: at("Admit.RatePerSec"),
					Reason: fmt.Sprintf("admission rate must be > 0, have %v", ts.Admit.RatePerSec)}
			}
			pol := tenant.Drop
			if ts.Admit.Defer {
				pol = tenant.Defer
			}
			lanes[i].cfg.Admission = &tenant.Admission{
				RatePerSec:   ts.Admit.RatePerSec,
				Burst:        ts.Admit.Burst,
				Policy:       pol,
				StallPenalty: ts.Admit.StallPenalty,
			}
		}
	}
	return lanes, nil
}

// lane is one tenant's runtime state: its plans, phase cursor, progress
// counters, and per-shard sample stores (service stamps on the
// receiving shard, latency samples on the issuing shard — each slice is
// only ever appended to from its owning shard's worker).
type lane struct {
	idx  int
	name string
	ten  *tenant.Tenant
	spec laneSpec

	plans []*phasePlan
	cum   []int
	total int
	phase int

	// progress counts serviced + dropped messages; the run (and each
	// phase barrier) completes when it reaches the planned total.
	progress  atomic.Int64
	dropped   atomic.Int64
	deferred  atomic.Int64
	phaseExec []atomic.Int64
	phases    []PhaseResult

	fns  []map[[2]string]*tc.Func
	svc  [][]sim.Time     // service-completion stamps, per dst shard
	lat  [][]sim.Duration // issue-to-delivery samples, per src shard
	errs []int64          // receiver-side failures, per dst shard
}

// laneChanKey identifies a tenant channel the open phases still need.
type laneChanKey struct {
	src, dst int
	view     string
}

// laneFn resolves (and caches) the lane's tenant-scoped handle for one
// element.
func (r *runner) laneFn(l *lane, src int, pkg, elem string) (*tc.Func, error) {
	m := l.fns[src]
	if m == nil {
		m = map[[2]string]*tc.Func{}
		l.fns[src] = m
	}
	key := [2]string{pkg, elem}
	if f, ok := m[key]; ok {
		return f, nil
	}
	f, err := r.sys.FuncFor(l.name, src, pkg, elem)
	if err != nil {
		return nil, err
	}
	m[key] = f
	return f, nil
}

// laneProgress folds n completed (serviced or dropped) messages into the
// lane and advances its phase cursor. Phase advancement only ever runs
// while the engine is serial (the multi-phase hold pins it); once every
// lane is on its final phase this is pure atomics.
func (r *runner) laneProgress(l *lane, n int) {
	l.phaseExec[l.phase].Add(int64(n))
	l.progress.Add(int64(n))
	for l.phase < len(l.plans)-1 && int(l.progress.Load()) >= l.cum[l.phase] {
		l.phases[l.phase].End = sim.Duration(r.sys.Now())
		l.phase++
		r.openLanePhase(l)
		if l.phase == len(l.plans)-1 && r.phasesHold {
			r.pendingLanes--
			if r.pendingLanes == 0 {
				r.phasesHold = false
				r.sys.ReleaseSerial()
			}
		}
	}
}

// laneDropped accounts an admission-dropped burst: the messages will
// never reach a receiver, so they count as progress here.
func (r *runner) laneDropped(l *lane, n int) {
	l.dropped.Add(int64(n))
	r.laneProgress(l, n)
}

// hookLaneChannel instruments a freshly created tenant channel: service
// stamps and failure counts accrue to the receiving shard's sample
// store.
func (r *runner) hookLaneChannel(l *lane, dst int, ch *core.Channel) {
	shard := r.sys.ShardOf(dst)
	ch.Recv.OnProcessed = func(_ *mailbox.Delivery, t sim.Time) {
		l.svc[shard] = append(l.svc[shard], t)
		r.laneProgress(l, 1)
	}
	ch.Recv.OnError = func(d *mailbox.Delivery, _ error) {
		l.errs[shard]++
		if d == nil {
			// The frame never parsed, so OnProcessed will not fire for it;
			// count it here or the accounting hangs.
			r.laneProgress(l, 1)
		}
	}
}

// openLanePhase pins the engine serial while the phase has tenant
// channels to create, then starts the phase's senders.
func (r *runner) openLanePhase(l *lane) {
	pp := l.plans[l.phase]
	if r.sharded {
		for src := range pp.bursts {
			for i := range pp.bursts[src] {
				k := laneChanKey{src, pp.bursts[src][i].dst, l.name}
				if !r.missingV[k] && !r.sys.Mesh().HasChannelView(src, k.dst, l.name) {
					r.missingV[k] = true
				}
			}
		}
		if len(r.missingV) > 0 && !r.pairsHold {
			r.pairsHold = true
			r.sys.HoldSerial()
		}
	}
	for src := range pp.bursts {
		if len(pp.bursts[src]) == 0 {
			continue
		}
		if pp.spec.arrival.openLoop() {
			r.armOpenLane(l, src, pp.bursts[src])
		} else {
			r.armClosedLane(l, src, pp.bursts[src])
		}
	}
}

// armClosedLane is the tenant-scoped self-clocked sender: like
// armClosedSender, plus admission handling — a deferred burst re-fires
// at the bucket's retry hint (engine-local, so it is safe inside
// concurrent windows), a dropped burst counts as progress and the chain
// moves on.
func (r *runner) armClosedLane(l *lane, src int, queue []burst) {
	next := 0
	eng := r.sys.EngineFor(src)
	shard := r.sys.ShardOf(src)
	var issueAt sim.Time
	var fire func()
	onDone := func(res tc.Result) {
		if res.Err == nil && res.Delivered > 0 {
			l.lat[shard] = append(l.lat[shard], res.Delivered.Sub(issueAt))
		}
		fire()
	}
	payloadOpt := tc.Payload(r.payload)
	localOpt := tc.Local()
	optScratch := make([]tc.CallOpt, 0, 3)
	fire = func() {
		for next < len(queue) && !r.failed.Load() {
			b := &queue[next]
			fn, err := r.laneFn(l, src, b.mix.Pkg, b.mix.Elem)
			if err != nil {
				r.fail(err)
				return
			}
			callOpts := append(optScratch[:0], tc.Burst(b.args), payloadOpt)
			if b.local {
				callOpts = append(callOpts, localOpt)
			}
			issueAt = eng.Now()
			fu := fn.Call(b.dst, b.args[0], callOpts...)
			if err := fu.IssueErr(); err != nil {
				// A failed-at-issue future never armed, so recycling is on
				// us — drops are the steady state under admission control.
				fu.Release()
				var ae *tenant.AdmissionError
				if !errors.As(err, &ae) {
					r.fail(err)
					return
				}
				if ae.Deferred {
					l.deferred.Add(1)
					eng.After(ae.RetryAfter, fire)
					return
				}
				next++
				r.laneDropped(l, len(b.args))
				continue
			}
			next++
			fu.Done(onDone)
			fu.Release()
			return
		}
	}
	r.sys.After(src, 0, fire)
}

// armOpenLane is the tenant-scoped open-loop sender: bursts issue at
// their pre-drawn offsets; a deferred burst re-issues at the retry hint
// while later bursts keep their own schedule (offered load stays open).
func (r *runner) armOpenLane(l *lane, src int, queue []burst) {
	eng := r.sys.EngineFor(src)
	shard := r.sys.ShardOf(src)
	payloadOpt := tc.Payload(r.payload)
	localOpt := tc.Local()
	optScratch := make([]tc.CallOpt, 0, 3)
	for i := range queue {
		b := &queue[i]
		var issueAt sim.Time
		var send func()
		onDone := func(res tc.Result) {
			if res.Err == nil && res.Delivered > 0 {
				l.lat[shard] = append(l.lat[shard], res.Delivered.Sub(issueAt))
			}
		}
		send = func() {
			if r.failed.Load() {
				return
			}
			fn, err := r.laneFn(l, src, b.mix.Pkg, b.mix.Elem)
			if err != nil {
				r.fail(err)
				return
			}
			callOpts := append(optScratch[:0], tc.Burst(b.args), payloadOpt)
			if b.local {
				callOpts = append(callOpts, localOpt)
			}
			issueAt = eng.Now()
			fu := fn.Call(b.dst, b.args[0], callOpts...)
			if err := fu.IssueErr(); err != nil {
				fu.Release()
				var ae *tenant.AdmissionError
				if !errors.As(err, &ae) {
					r.fail(err)
					return
				}
				if ae.Deferred {
					l.deferred.Add(1)
					eng.After(ae.RetryAfter, send)
					return
				}
				r.laneDropped(l, len(b.args))
				return
			}
			fu.Done(onDone)
			fu.Release()
		}
		r.sys.After(src, b.at, send)
	}
}

// runTenants executes a multi-tenant scenario: one traffic lane per
// tenant over per-tenant package namespaces, weighted-fair servicing at
// every receiver, admission on the issue path, and per-tenant
// goodput/latency reporting. base is the scenario-level resolved phase
// list (the default lane program).
func runTenants(sc *Scenario, base []phaseSpec) (*Result, error) {
	laneSpecs, err := sc.resolveTenants(base)
	if err != nil {
		return nil, err
	}
	// Frame geometry and package builds cover every lane's specs.
	var all []phaseSpec
	for i := range laneSpecs {
		all = append(all, laneSpecs[i].specs...)
	}
	pkgs, err := packagesFor(all)
	if err != nil {
		return nil, err
	}
	frame, err := frameSizeFor(pkgs, all, sc.PayloadBytes)
	if err != nil {
		return nil, err
	}

	opts := []tc.SystemOpt{
		tc.WithSeed(sc.Seed),
		tc.WithTiming(sc.Timing),
		tc.WithBackend(sc.Backend),
		tc.WithWorkers(sc.Workers),
		tc.WithSpeculation(sc.Speculation),
		tc.WithConfig(func(c *core.MeshConfig) { c.Geometry.FrameSize = frame }),
	}
	if sc.Shards > 0 {
		opts = append(opts, tc.WithShards(sc.Shards))
	}
	if sc.Chaos != nil {
		opts = append(opts, tc.WithChaos(fabric.ChaosConfig{
			MinDelay:       sc.Chaos.MinDelay,
			MaxDelay:       sc.Chaos.MaxDelay,
			LookaheadScale: sc.Chaos.LookaheadScale,
			LookaheadBoost: sc.Chaos.LookaheadBoost,
		}))
	}
	sys, err := tc.NewSystem(sc.Nodes, opts...)
	if err != nil {
		return nil, err
	}

	topo := Topology{Nodes: sc.Nodes, Shards: sys.Mesh().Cfg.Shards, ShardOf: sys.ShardOf}
	res := &Result{
		Scenario: *sc,
		Shards:   topo.Shards,
		Workers:  sys.Workers(),
		PerNode:  make([]NodeResult, sc.Nodes),
		HotNode:  -1,
	}
	r := &runner{
		sc:         sc,
		sys:        sys,
		res:        res,
		fns:        make([]map[[2]string]*tc.Func, sc.Nodes),
		payload:    make([]byte, sc.PayloadBytes),
		sharded:    sys.Sharded(),
		missing:    map[[2]int]bool{},
		missingV:   map[laneChanKey]bool{},
		laneByView: map[string]*lane{},
	}
	for i := range r.payload {
		r.payload[i] = byte(i*31 + 7)
	}

	// Tenants register in declared order (dense IDs = arbiter classes);
	// each installs its packages in name order, so package IDs are a pure
	// function of the scenario.
	nShards := topo.Shards
	for i := range laneSpecs {
		ls := &laneSpecs[i]
		tn, err := sys.AddTenant(ls.cfg)
		if err != nil {
			return nil, err
		}
		l := &lane{
			idx: i, name: tn.Name, ten: tn, spec: *ls,
			plans:     make([]*phasePlan, len(ls.specs)),
			cum:       make([]int, len(ls.specs)),
			phaseExec: make([]atomic.Int64, len(ls.specs)),
			phases:    make([]PhaseResult, len(ls.specs)),
			fns:       make([]map[[2]string]*tc.Func, sc.Nodes),
			svc:       make([][]sim.Time, nShards),
			lat:       make([][]sim.Duration, nShards),
			errs:      make([]int64, nShards),
		}
		r.lanes = append(r.lanes, l)
		r.laneByView[l.name] = l
		lanePkgs := map[string]*core.Package{}
		for j := range ls.specs {
			for _, m := range ls.specs[j].mix {
				lanePkgs[m.Pkg] = pkgs[m.Pkg]
			}
		}
		for _, name := range sortedKeys(lanePkgs) {
			if err := sys.InstallPackageFor(l.name, lanePkgs[name]); err != nil {
				return nil, err
			}
		}
	}
	sys.Mesh().OnChannelCreated = r.onChannel

	// Plans: lanes in declared order, phases in order, one seeded RNG —
	// the whole schedule is a pure function of the scenario.
	grandTotal := 0
	for _, l := range r.lanes {
		total := 0
		for j := range l.spec.specs {
			pp, err := buildPlan(sc, topo, &l.spec.specs[j], sys.RNG())
			if err != nil {
				return nil, err
			}
			l.plans[j] = pp
			total += pp.total
			l.cum[j] = total
			l.phases[j].Name = l.spec.specs[j].name
			l.phases[j].Planned = pp.total
			for dst, n := range pp.sent {
				res.PerNode[dst].Sent += n
			}
		}
		l.total = total
		grandTotal += total
	}

	for i := 0; i < sc.Nodes; i++ {
		node := i
		sys.Node(i).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
			// Digest and per-node tallies only: lane progress and phase
			// barriers ride the per-channel receiver hooks, which can
			// attribute each service to its tenant.
			nr := &res.PerNode[node]
			if err != nil {
				nr.Errors++
			} else {
				nr.Executed++
				nr.Digest = nr.Digest*1099511628211 + ret + 1
			}
			if sc.OnExecuted != nil {
				sc.OnExecuted(node, ret, err)
			}
		}
	}

	if r.sharded {
		r.pendingLanes = 0
		for _, l := range r.lanes {
			if len(l.plans) > 1 {
				r.pendingLanes++
			}
		}
		if r.pendingLanes > 0 {
			r.phasesHold = true
			sys.HoldSerial()
		}
	}
	for _, l := range r.lanes {
		r.openLanePhase(l)
	}
	sys.Run()
	sys.Mesh().OnChannelCreated = nil
	if r.issueErr != nil {
		return nil, r.issueErr
	}

	res.SimTime = sim.Duration(sys.Now())
	res.Windows = sys.Windows()
	res.Mesh = sys.Stats()
	for _, nr := range res.PerNode {
		res.Injections += nr.Executed
		res.Digest += nr.Digest
	}
	if secs := res.SimTime.Seconds(); secs > 0 {
		res.RatePerSec = float64(res.Injections) / secs
	}

	// The overlap window: every tenant's servicing overlaps in [0, W], so
	// goodput inside it compares fair shares instead of drain tails.
	window := sim.Time(0)
	for i, l := range r.lanes {
		last := sim.Time(0)
		for _, stamps := range l.svc {
			for _, t := range stamps {
				if t > last {
					last = t
				}
			}
		}
		if i == 0 || last < window {
			window = last
		}
	}
	res.OverlapWindow = sim.Duration(window)

	done := 0
	for _, l := range r.lanes {
		tr := TenantResult{
			Name: l.name, Weight: l.ten.Weight,
			Planned:  l.total,
			Dropped:  int(l.dropped.Load()),
			Deferred: int(l.deferred.Load()),
			Phases:   l.phases,
		}
		for j := range l.phases {
			l.phases[j].Executed = int(l.phaseExec[j].Load())
		}
		if len(l.phases) > 0 && l.phases[len(l.phases)-1].End == 0 {
			l.phases[len(l.phases)-1].End = res.SimTime
		}
		inWindow := 0
		var last sim.Time
		for _, stamps := range l.svc {
			for _, t := range stamps {
				tr.Serviced++
				if t <= window {
					inWindow++
				}
				if t > last {
					last = t
				}
			}
		}
		for _, e := range l.errs {
			tr.Errors += int(e)
		}
		tr.LastService = sim.Duration(last)
		if secs := sim.Duration(window).Seconds(); secs > 0 {
			tr.GoodputPerSec = float64(inWindow) / secs
		}
		if secs := res.SimTime.Seconds(); secs > 0 {
			tr.RatePerSec = float64(tr.Serviced) / secs
		}
		var lats []sim.Duration
		for _, ls := range l.lat {
			lats = append(lats, ls...)
		}
		if len(lats) > 0 {
			sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
			idx := (99*len(lats) + 99) / 100
			if idx > len(lats) {
				idx = len(lats)
			}
			tr.P99Latency = lats[idx-1]
		}
		done += int(l.progress.Load())
		res.Tenants = append(res.Tenants, tr)
	}
	if done != grandTotal {
		return res, fmt.Errorf("workload: tenants completed %d of %d planned messages", done, grandTotal)
	}
	return res, nil
}
