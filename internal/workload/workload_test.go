package workload

import (
	"testing"
)

// expectedSum mirrors jam_sssum's summation: u64 words then byte tail.
func expectedSum(payload []byte) uint64 {
	var sum uint64
	i := 0
	for ; i+8 <= len(payload); i += 8 {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(payload[i+j]) << (8 * j)
		}
		sum += w
	}
	for ; i < len(payload); i++ {
		sum += uint64(payload[i])
	}
	return sum
}

// scenarioPayload reproduces the driver's deterministic payload fill.
func scenarioPayload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*31 + 7)
	}
	return p
}

func quickScenario(p Pattern, nodes int) Scenario {
	sc := DefaultScenario(p, nodes)
	sc.Timing = false
	sc.Burst = 4
	sc.Rounds = 2
	return sc
}

// TestPatternsComplete: every pattern delivers and executes its entire
// plan on every node, with batching and jam-cache sharing engaged.
func TestPatternsComplete(t *testing.T) {
	for _, p := range Patterns() {
		res, err := Run(quickScenario(p, 5))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		for i, nr := range res.PerNode {
			if nr.Errors != 0 {
				t.Errorf("%s node %d: %d errors", p, i, nr.Errors)
			}
			if nr.Executed != nr.Sent {
				t.Errorf("%s node %d: executed %d of %d sent", p, i, nr.Executed, nr.Sent)
			}
		}
		if res.Mesh.Batches == 0 {
			t.Errorf("%s: no batched puts", p)
		}
		if res.Mesh.JamHits == 0 {
			t.Errorf("%s: jam cache never hit", p)
		}
		if res.RatePerSec <= 0 {
			t.Errorf("%s: rate %v", p, res.RatePerSec)
		}
	}
}

// TestDeterministicScenarios: identical seeds give bit-identical results
// (digest, injections, simulated time) on every pattern; a different seed
// produces a different run.
func TestDeterministicScenarios(t *testing.T) {
	for _, p := range Patterns() {
		sc := quickScenario(p, 4)
		sc.Timing = true // timing noise must be seeded too
		a, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		b, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if a.Digest != b.Digest || a.Injections != b.Injections || a.SimTime != b.SimTime {
			t.Errorf("%s: same-seed runs diverged: digest %x/%x injections %d/%d time %v/%v",
				p, a.Digest, b.Digest, a.Injections, b.Injections, a.SimTime, b.SimTime)
		}
		sc.Seed ^= 0xdead
		c, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if a.Digest == c.Digest && a.SimTime == c.SimTime {
			t.Errorf("%s: different seeds produced identical runs", p)
		}
	}
}

// TestFanoutOracle: with a pure Server-Side Sum mix, every executed
// handler on every node must return the native sum of the payload.
func TestFanoutOracle(t *testing.T) {
	sc := quickScenario(Fanout, 6)
	sc.Mix = []ElementMix{{Elem: "jam_sssum", Weight: 1}}
	want := expectedSum(scenarioPayload(sc.PayloadBytes))
	bad := 0
	sc.OnExecuted = func(node int, ret uint64, err error) {
		if err != nil || ret != want {
			bad++
		}
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d executions diverged from native oracle", bad)
	}
	if res.PerNode[0].Executed != 0 {
		t.Fatalf("fanout root executed %d messages", res.PerNode[0].Executed)
	}
}

// TestHotspotSwapFires: the hotspot pattern performs its ried hot-swap
// mid-run and still completes the full plan, deterministically.
func TestHotspotSwapFires(t *testing.T) {
	sc := quickScenario(Hotspot, 5)
	sc.Rounds = 3
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Swapped {
		t.Fatal("hot-swap never fired")
	}
	if a.HotNode < 0 || a.HotNode >= sc.Nodes {
		t.Fatalf("hot node %d", a.HotNode)
	}
	hot := a.PerNode[a.HotNode]
	var maxOther int
	for i, nr := range a.PerNode {
		if i != a.HotNode && nr.Sent > maxOther {
			maxOther = nr.Sent
		}
	}
	if hot.Sent <= maxOther {
		t.Fatalf("hot node %d saw %d msgs, non-hot max %d — no skew", a.HotNode, hot.Sent, maxOther)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("hot-swap runs diverged: %x vs %x", a.Digest, b.Digest)
	}
}

// TestHotspotTwoNodes: the smallest legal mesh has no background
// candidates (every burst must go hot), and the plan generator must not
// spin looking for one.
func TestHotspotTwoNodes(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		sc := quickScenario(Hotspot, 2)
		sc.Seed = seed
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		other := 1 - res.HotNode
		if res.PerNode[other].Executed != 0 {
			t.Fatalf("seed %d: non-hot node executed %d", seed, res.PerNode[other].Executed)
		}
		if res.PerNode[res.HotNode].Executed != res.PerNode[res.HotNode].Sent {
			t.Fatalf("seed %d: hot node executed %d of %d", seed,
				res.PerNode[res.HotNode].Executed, res.PerNode[res.HotNode].Sent)
		}
	}
}

// TestScenarioValidation rejects degenerate scenarios.
func TestScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{Pattern: Fanout, Nodes: 1, Burst: 1, Rounds: 1}); err == nil {
		t.Error("1-node scenario accepted")
	}
	if _, err := Run(Scenario{Pattern: "zigzag", Nodes: 4, Burst: 1, Rounds: 1}); err == nil {
		t.Error("unknown pattern accepted")
	}
	if _, err := Run(Scenario{Pattern: Fanout, Nodes: 4, Burst: 0, Rounds: 1}); err == nil {
		t.Error("zero burst accepted")
	}
}
